package wackamole_test

// End-to-end forensics over a live (non-simulated) cluster: three real
// daemons on loopback UDP, each with its own tracer, HLC and flight
// recorder, exchange HLC stamps over the wire; one daemon is killed
// abruptly (socket and loop vanish, no releases, no goodbyes) while a probe
// measures the resulting coverage gap from the outside. The survivors'
// spilled bundles are then merged by internal/forensics and the merged
// timeline must explain the probe-measured gap exactly — the same
// detection/membership/state-sync/ARP decomposition the simulator reports,
// recovered from bundles alone. Run under -race this also pins the claim
// that tracer, HLC, recorder and protocol loop may interleave freely.
//
// When WACK_FORENSICS_DIR is set the bundles, the measured gaps.json and
// the merged timeline are written there instead of a temp dir, so the CI
// live job can hand them to the wackrec binary and archive them.

import (
	"bytes"
	"encoding/json"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wackamole"
	"wackamole/internal/core"
	"wackamole/internal/env/realtime"
	"wackamole/internal/forensics"
	"wackamole/internal/gcs"
	"wackamole/internal/ipmgr"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
)

func TestForensicsLiveCluster(t *testing.T) {
	peers := []string{"127.0.0.1:24940", "127.0.0.1:24941", "127.0.0.1:24942"}
	groups := []core.VIPGroup{
		{Name: "web1", Addrs: []netip.Addr{netip.MustParseAddr("10.9.1.100")}},
		{Name: "web2", Addrs: []netip.Addr{netip.MustParseAddr("10.9.1.101")}},
		{Name: "web3", Addrs: []netip.Addr{netip.MustParseAddr("10.9.1.102")}},
	}
	// The artifact directory is owned by this test: it starts fresh so the
	// bundle set is exactly this run's cluster.
	flightDir := os.Getenv("WACK_FORENSICS_DIR")
	if flightDir == "" {
		flightDir = t.TempDir()
	} else {
		if err := os.RemoveAll(flightDir); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(flightDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}

	type daemon struct {
		node     *wackamole.Node
		loop     *realtime.Loop
		recorder *obs.FlightRecorder
		cleanup  func()
	}
	daemons := make([]*daemon, len(peers))
	defer func() {
		for _, d := range daemons {
			if d != nil && d.cleanup != nil {
				d.cleanup()
			}
		}
	}()
	for i, addr := range peers {
		e, loop, cleanup, err := realtime.NewEnv(addr, peers, nil)
		if err != nil {
			t.Fatal(err)
		}
		node, err := wackamole.NewNode(e, wackamole.Config{
			GCS: gcs.Config{
				FaultDetectTimeout: 800 * time.Millisecond,
				HeartbeatInterval:  200 * time.Millisecond,
				DiscoveryTimeout:   600 * time.Millisecond,
			},
			Engine: core.Config{Groups: groups, StartMature: true, BalanceTimeout: 2 * time.Second},
		}, &ipmgr.FakeBackend{}, nil)
		if err != nil {
			cleanup()
			t.Fatal(err)
		}
		// The production wiring from cmd/wackamole: tracer, registry, HLC
		// (piggybacked on the wire by the daemon), flight recorder fed by the
		// membership stream.
		tracer := obs.New(4096, nil)
		node.SetTracer(tracer)
		registry := metrics.New()
		node.SetMetrics(registry)
		hlc := obs.NewHLCClock(nil, addr)
		hlc.SetMetrics(registry)
		node.SetHLC(hlc)
		recorder := obs.NewFlightRecorder(obs.FlightConfig{
			Dir: flightDir, Node: addr, Tracer: tracer, Registry: registry,
		})
		node.Daemon().AddMembershipHandler(func(ring gcs.RingID, members []gcs.DaemonID) {
			ms := make([]string, len(members))
			for j, m := range members {
				ms[j] = string(m)
			}
			recorder.RecordView(ring.String(), ms)
		})
		d := &daemon{node: node, loop: loop, recorder: recorder, cleanup: cleanup}
		startErr := make(chan error, 1)
		loop.Post(func() { startErr <- node.Start() })
		if err := <-startErr; err != nil {
			cleanup()
			t.Fatal(err)
		}
		daemons[i] = d
	}

	status := func(d *daemon) core.Status {
		out := make(chan core.Status, 1)
		d.loop.Post(func() { out <- d.node.Status() })
		return <-out
	}
	owns := func(d *daemon, addr string) bool {
		for _, o := range status(d).Owned {
			if o == addr {
				return true
			}
		}
		return false
	}
	waitFor := func(desc string, limit time.Duration, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(limit)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", desc)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	waitFor("cluster formation", 15*time.Second, func() bool {
		held := 0
		for _, d := range daemons {
			st := status(d)
			if st.State != core.StateRun || len(st.Members) != len(peers) {
				return false
			}
			held += len(st.Owned)
		}
		return held == len(groups)
	})

	// Pick a victim that owns at least one VIP group; the group's address is
	// what the outside world will miss when it dies. (Status.Owned lists
	// group names; trace events carry the addresses.)
	victim := -1
	var targetGroup, target string
	for i, d := range daemons {
		if owned := status(d).Owned; len(owned) > 0 {
			victim, targetGroup = i, owned[0]
			break
		}
	}
	if victim < 0 {
		t.Fatal("no daemon owns a group after formation")
	}
	for _, g := range groups {
		if g.Name == targetGroup {
			target = g.Addrs[0].String()
		}
	}
	if target == "" {
		t.Fatalf("no address for group %s", targetGroup)
	}
	survivors := make([]*daemon, 0, 2)
	for i, d := range daemons {
		if i != victim {
			survivors = append(survivors, d)
		}
	}

	// Abrupt kill: close the socket and loop out from under the protocol —
	// no Stop, no releases. The probe gap starts the instant the plug is
	// pulled and ends when any survivor covers the orphaned address.
	gapStart := time.Now()
	daemons[victim].cleanup()
	daemons[victim].cleanup = nil
	var gapEnd time.Time
	waitFor("fail-over of "+targetGroup, 15*time.Second, func() bool {
		for _, d := range survivors {
			if owns(d, targetGroup) {
				gapEnd = time.Now()
				return true
			}
		}
		return false
	})
	gap := forensics.Gap{Target: target, Start: gapStart, End: gapEnd}
	// Persist the probe's measurement before any assertion, so a failing run
	// leaves complete evidence and the CI wackrec stage gets its input.
	raw, err := json.MarshalIndent([]forensics.Gap{gap}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(flightDir, "gaps.json"), raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// Retrieve the black boxes. The victim's recorder still exists in this
	// process (its bundle is the pre-crash tail a real crash would leave on
	// disk); the survivors dump their post-failover state.
	for _, d := range daemons {
		if _, err := d.recorder.Dump("live-test"); err != nil {
			t.Fatal(err)
		}
	}

	bundles, err := forensics.LoadBundles(flightDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 3 {
		t.Fatalf("loaded %d bundles, want 3", len(bundles))
	}
	merged := forensics.Merge(bundles)
	if len(merged.Events) == 0 {
		t.Fatal("merged timeline empty")
	}
	// Every node exchanged stamped wire messages, so every trace must carry
	// HLC stamps end to end.
	for _, n := range merged.Nodes {
		if n.Events == 0 || n.Unstamped == n.Events {
			t.Fatalf("node %s contributed no stamped events: %+v", n.Node, n)
		}
	}

	failovers := merged.Reconstruct([]forensics.Gap{gap})
	if len(failovers) != 1 {
		t.Fatalf("reconstructed %d failovers, want 1", len(failovers))
	}
	f := failovers[0]
	if f.Phases.Total() != f.Gap {
		t.Fatalf("phases sum %v != probe-measured gap %v", f.Phases.Total(), f.Gap)
	}
	if f.Phases.Detection <= 0 {
		t.Fatalf("detection phase empty: %+v (survivors suspect only after the fault-detect timeout)", f.Phases)
	}
	// The acquirer must be a survivor (core events are tagged
	// "daemon/client"; the daemon part is the bind address).
	acquirerDaemon, _, _ := strings.Cut(f.Acquirer, "/")
	if acquirerDaemon == "" || acquirerDaemon == peers[victim] {
		t.Fatalf("acquirer %q is not a survivor (victim %s)", f.Acquirer, peers[victim])
	}

	// Determinism: merging the same bundles again is byte-identical.
	var first, second bytes.Buffer
	if err := merged.WriteNDJSON(&first); err != nil {
		t.Fatal(err)
	}
	if err := forensics.Merge(bundles).WriteNDJSON(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("repeated merge not byte-identical")
	}

}

package wackamole

import (
	"fmt"
	"net/netip"
	"time"

	"wackamole/internal/core"
	"wackamole/internal/env"
	"wackamole/internal/gcs"
	"wackamole/internal/health"
	"wackamole/internal/invariant"
	"wackamole/internal/ipmgr"
	"wackamole/internal/metrics"
	"wackamole/internal/netsim"
	"wackamole/internal/obs"
	"wackamole/internal/placement"
	"wackamole/internal/sim"
)

// ClusterOptions parameterize a simulated Wackamole cluster, the programmatic
// equivalent of the paper's experimental testbed (§6): N servers on a
// 100 Mbit-class LAN behind one router, covering a set of virtual addresses.
type ClusterOptions struct {
	// Seed drives the deterministic simulation.
	Seed int64
	// Servers is the cluster size (paper: 2 to 12).
	Servers int
	// VIPs is the number of single-address virtual IP groups (paper: 10).
	VIPs int
	// GCS configures the group-communication timeouts. Zero value means
	// gcs.TunedConfig().
	GCS gcs.Config
	// BalanceTimeout, Bootstrap, DisableBalance and LazyConflictRelease
	// forward to the engine configuration. Bootstrap enables the §3.4
	// maturity bootstrap (experiments usually start mature).
	BalanceTimeout      time.Duration
	MatureTimeout       time.Duration
	Bootstrap           bool
	DisableBalance      bool
	LazyConflictRelease bool
	// RepresentativeDecisions enables the §4.2 variant where the
	// representative imposes the post-gather allocation.
	RepresentativeDecisions bool
	// Placement names the placement policy every server runs
	// (placement.NameLeastLoaded, placement.NameMinimal). Empty means the
	// historical least-loaded rule. Each server gets its own policy
	// instance — policies carry scratch state.
	Placement string
	// DisableARPSpoof suppresses gratuitous ARP after acquisition (the
	// ablation quantifying §5.1's spoofing).
	DisableARPSpoof bool
	// WithRouter adds a forwarding router and an external client segment,
	// completing the Figure 3 topology.
	WithRouter bool
	// RouterARPTTL overrides the router's ARP cache lifetime (used by the
	// ARP-spoofing ablation, where recovery waits for cache expiry).
	RouterARPTTL time.Duration
	// StartStagger delays server i's start by i×StartStagger, modelling a
	// cluster booting machine by machine (the situation the §3.4 maturity
	// bootstrap addresses).
	StartStagger time.Duration
	// Segment overrides the LAN characteristics; zero value means
	// netsim.DefaultSegmentConfig().
	Segment netsim.SegmentConfig
	// Logger receives protocol diagnostics from every node (nil: discard).
	Logger env.Logger
	// Tracer records structured protocol events from the network and every
	// node, stamped with virtual time (nil: tracing disabled).
	Tracer *obs.Tracer
	// Metrics records latency histograms and counters from the network and
	// every node (nil: measurement disabled).
	Metrics *metrics.Registry
	// ConfigureNode, if set, may adjust each server's configuration before
	// the node is built (per-server preferences, differing timeouts...).
	ConfigureNode func(i int, cfg *Config)
	// Invariants, if set, is attached to every server (before it starts, so
	// no boot event is missed): each node's view, delivery and ownership
	// hooks feed monitor slot i. The monitor must have been built with
	// Config.Nodes >= Servers.
	Invariants *invariant.Monitor
	// OnNode, if set, runs for each server after its node is built but
	// before it starts. Checkers use it to install typed observation hooks
	// (view installs, deliveries, ownership changes) without missing boot
	// events.
	OnNode func(i int, n *Node)
	// WrapBackend, if set, may decorate each server's virtual-interface
	// backend. The model checker's mutation tests use it to inject
	// deliberately broken address handling behind an otherwise unmodified
	// engine.
	WrapBackend func(i int, b ipmgr.Backend) ipmgr.Backend
	// TelemetryInterval, when positive, arms the live health plane: every
	// server gets an observe-only phi-accrual monitor and publishes health
	// frames at this period to a collector host on the cluster LAN
	// (TelemetryAddr). Frames accumulate in Cluster.TelemetryFrames.
	TelemetryInterval time.Duration
	// OnTelemetry, if set, receives every collected health frame as it
	// arrives (on the simulation loop), in addition to the accumulation.
	OnTelemetry func(f health.Frame)
}

// Server is one simulated cluster member.
type Server struct {
	Host *netsim.Host
	NIC  *netsim.NIC
	Node *Node
}

// Cluster is a fully wired simulated Wackamole deployment.
type Cluster struct {
	Sim      *sim.Sim
	Net      *netsim.Network
	Segment  *netsim.Segment
	External *netsim.Segment // nil unless WithRouter
	Router   *netsim.Host    // nil unless WithRouter
	Servers  []*Server
	Groups   []core.VIPGroup
	// TelemetryFrames accumulates every health frame received by the
	// collector host, in arrival order (empty unless TelemetryInterval was
	// set).
	TelemetryFrames []health.Frame
	opts            ClusterOptions
}

// ClusterSubnet is the simulated server LAN.
var ClusterSubnet = netip.MustParsePrefix("10.0.0.0/24")

// ExternalSubnet is the simulated client-side network behind the router.
var ExternalSubnet = netip.MustParsePrefix("192.168.1.0/24")

// ServerAddr returns server i's stationary address (10.0.0.10+i).
func ServerAddr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, 0, byte(10 + i)})
}

// VIPAddr returns virtual address j (10.0.0.100+j).
func VIPAddr(j int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, 0, byte(100 + j)})
}

// TelemetryCollectorAddr is the telemetry collector host's address on the
// cluster LAN (below the server range, which starts at 10.0.0.10).
var TelemetryCollectorAddr = netip.MustParseAddr("10.0.0.9")

// TelemetryPort is the UDP port the simulated telemetry collector listens
// on.
const TelemetryPort = 4810

// RouterInsideAddr is the router's address on the cluster LAN.
var RouterInsideAddr = netip.MustParseAddr("10.0.0.1")

// RouterOutsideAddr is the router's address on the external network.
var RouterOutsideAddr = netip.MustParseAddr("192.168.1.1")

// NewCluster builds and starts a simulated cluster. Run the simulator (for
// at least the discovery timeout) to let it form.
func NewCluster(opts ClusterOptions) (*Cluster, error) {
	if opts.Servers <= 0 {
		return nil, fmt.Errorf("wackamole: cluster needs at least one server")
	}
	if opts.VIPs <= 0 {
		return nil, fmt.Errorf("wackamole: cluster needs at least one virtual address")
	}
	if opts.Servers > 200 || opts.VIPs > 100 {
		return nil, fmt.Errorf("wackamole: cluster exceeds the simulated /24 address plan")
	}
	if opts.GCS == (gcs.Config{}) {
		opts.GCS = gcs.TunedConfig()
	}
	segCfg := opts.Segment
	if segCfg == (netsim.SegmentConfig{}) {
		segCfg = netsim.DefaultSegmentConfig()
	}

	s := sim.New(opts.Seed)
	nw := netsim.New(s)
	if opts.Logger != nil {
		nw.SetLogger(opts.Logger)
	}
	if opts.Tracer != nil {
		opts.Tracer.SetNow(s.Now)
		nw.SetEventTracer(opts.Tracer)
	}
	if opts.Metrics != nil {
		nw.SetMetrics(opts.Metrics)
	}
	c := &Cluster{
		Sim:     s,
		Net:     nw,
		Segment: nw.NewSegment("cluster", segCfg),
		opts:    opts,
	}
	for j := 0; j < opts.VIPs; j++ {
		c.Groups = append(c.Groups, core.VIPGroup{
			Name:  fmt.Sprintf("vip%02d", j),
			Addrs: []netip.Addr{VIPAddr(j)},
		})
	}

	if opts.WithRouter {
		c.External = nw.NewSegment("external", segCfg)
		c.Router = nw.NewHost("router")
		c.Router.AttachNIC(c.Segment, "inside", netip.PrefixFrom(RouterInsideAddr, ClusterSubnet.Bits()))
		c.Router.AttachNIC(c.External, "outside", netip.PrefixFrom(RouterOutsideAddr, ExternalSubnet.Bits()))
		c.Router.EnableForwarding()
		if opts.RouterARPTTL > 0 {
			c.Router.SetARPTTL(opts.RouterARPTTL)
		}
	}

	var telemetrySubs []string
	if opts.TelemetryInterval > 0 {
		collector := nw.NewHost("telemetry")
		cnic := collector.AttachNIC(c.Segment, "eth0", netip.PrefixFrom(TelemetryCollectorAddr, ClusterSubnet.Bits()))
		cep, err := collector.OpenEndpoint(cnic, TelemetryPort)
		if err != nil {
			return nil, fmt.Errorf("wackamole: telemetry collector: %w", err)
		}
		cenv := cep.Env(opts.Logger)
		cenv.Conn.SetHandler(func(from env.Addr, payload []byte) {
			f, err := health.DecodeFrame(payload)
			if err != nil {
				return
			}
			c.TelemetryFrames = append(c.TelemetryFrames, f)
			if opts.OnTelemetry != nil {
				opts.OnTelemetry(f)
			}
		})
		telemetrySubs = []string{fmt.Sprintf("%s:%d", TelemetryCollectorAddr, TelemetryPort)}
	}

	for i := 0; i < opts.Servers; i++ {
		host := nw.NewHost(fmt.Sprintf("server%02d", i))
		nic := host.AttachNIC(c.Segment, "eth0", netip.PrefixFrom(ServerAddr(i), ClusterSubnet.Bits()))
		if opts.WithRouter {
			host.SetDefaultGateway(nic, RouterInsideAddr)
		}
		placer, err := placement.New(opts.Placement)
		if err != nil {
			return nil, fmt.Errorf("wackamole: server %d: %w", i, err)
		}
		cfg := Config{
			GCS: opts.GCS,
			Engine: core.Config{
				Groups:                  c.Groups,
				BalanceTimeout:          opts.BalanceTimeout,
				MatureTimeout:           opts.MatureTimeout,
				StartMature:             !opts.Bootstrap,
				DisableBalance:          opts.DisableBalance,
				LazyConflictRelease:     opts.LazyConflictRelease,
				RepresentativeDecisions: opts.RepresentativeDecisions,
				Placer:                  placer,
			},
		}
		if opts.ConfigureNode != nil {
			opts.ConfigureNode(i, &cfg)
		}
		ep, err := host.OpenEndpoint(nic, DefaultPort)
		if err != nil {
			return nil, fmt.Errorf("wackamole: server %d: %w", i, err)
		}
		notifier := &netsim.ARPAnnouncer{Host: host, Disabled: opts.DisableARPSpoof}
		var backend ipmgr.Backend = &ipmgr.NICBackend{NIC: nic}
		if opts.WrapBackend != nil {
			backend = opts.WrapBackend(i, backend)
		}
		node, err := NewNode(ep.Env(opts.Logger), cfg, backend, notifier)
		if err != nil {
			return nil, fmt.Errorf("wackamole: server %d: %w", i, err)
		}
		if opts.Tracer != nil {
			node.SetTracer(opts.Tracer)
		}
		if opts.Metrics != nil {
			node.SetMetrics(opts.Metrics)
		}
		if opts.Invariants != nil {
			opts.Invariants.Attach(i, node)
		}
		if opts.TelemetryInterval > 0 {
			node.SetHealth(health.NewMonitor(health.Options{
				Node:    string(node.Daemon().ID()),
				Metrics: opts.Metrics,
				Tracer:  opts.Tracer,
			}))
		}
		if opts.OnNode != nil {
			opts.OnNode(i, node)
		}
		interval, subs := opts.TelemetryInterval, telemetrySubs
		if opts.StartStagger > 0 && i > 0 {
			node := node
			log := opts.Logger
			s.After(time.Duration(i)*opts.StartStagger, func() {
				if err := node.Start(); err != nil && log != nil {
					log.Logf("wackamole: staggered start of server %d: %v", i, err)
				}
				if interval > 0 {
					node.StartTelemetry(interval, subs)
				}
			})
		} else {
			if err := node.Start(); err != nil {
				return nil, fmt.Errorf("wackamole: server %d: %w", i, err)
			}
			if interval > 0 {
				node.StartTelemetry(interval, subs)
			}
		}
		c.Servers = append(c.Servers, &Server{Host: host, NIC: nic, Node: node})
	}
	return c, nil
}

// RunFor advances the simulation.
func (c *Cluster) RunFor(d time.Duration) { c.Sim.RunFor(d) }

// Settle runs the simulation long enough for a freshly started or recently
// disturbed cluster to pass discovery, install a membership and reallocate.
func (c *Cluster) Settle() {
	c.RunFor(2*c.opts.GCS.DiscoveryTimeout + c.opts.GCS.FaultDetectTimeout + time.Second)
}

// FailServer disconnects server i's interface — the paper's fault-injection
// method (§6).
func (c *Cluster) FailServer(i int) { c.Servers[i].NIC.SetUp(false) }

// RestoreServer re-enables a disconnected interface.
func (c *Cluster) RestoreServer(i int) { c.Servers[i].NIC.SetUp(true) }

// CrashServer halts server i's host entirely.
func (c *Cluster) CrashServer(i int) { c.Servers[i].Host.Crash() }

// Partition splits the cluster LAN into components of the given server
// indices. The router (if any) joins the first component.
func (c *Cluster) Partition(groups ...[]int) {
	hostGroups := make([][]*netsim.Host, len(groups))
	for gi, g := range groups {
		for _, i := range g {
			hostGroups[gi] = append(hostGroups[gi], c.Servers[i].Host)
		}
	}
	if c.Router != nil {
		hostGroups[0] = append(hostGroups[0], c.Router)
	}
	c.Segment.Partition(hostGroups...)
}

// Heal removes any partition.
func (c *Cluster) Heal() { c.Segment.Heal() }

// reachable reports whether server i can answer traffic at all.
func (c *Cluster) reachable(i int) bool {
	return c.Servers[i].Host.Alive() && c.Servers[i].NIC.Up()
}

// Reachable reports whether server i is alive with its interface up — the
// precondition for it to count as a holder of any address.
func (c *Cluster) Reachable(i int) bool { return c.reachable(i) }

// Components returns the connected components of the cluster LAN as sorted
// server-index groups, considering both segment partitions and per-server
// reachability. Unreachable servers (crashed host or downed NIC) appear in
// no component. This is the paper's notion of "connected servers": Property 1
// promises exactly-once coverage within each component independently.
func (c *Cluster) Components() [][]int {
	byGroup := map[int][]int{}
	order := []int{}
	for i, srv := range c.Servers {
		if !c.reachable(i) {
			continue
		}
		g := c.Segment.PartitionGroup(srv.NIC)
		if _, seen := byGroup[g]; !seen {
			order = append(order, g)
		}
		byGroup[g] = append(byGroup[g], i)
	}
	out := make([][]int, 0, len(order))
	for _, g := range order {
		out = append(out, byGroup[g])
	}
	return out
}

// Owner returns the index of the reachable server currently holding vip, or
// -1 with the count of reachable holders (0 or >1 during transitions; a
// failed server still carrying the address forms its own connected component
// and does not count).
func (c *Cluster) Owner(vip netip.Addr) (int, int) {
	owner, holders := -1, 0
	for i, srv := range c.Servers {
		if c.reachable(i) && srv.NIC.HasAddr(vip) {
			owner = i
			holders++
		}
	}
	if holders != 1 {
		return -1, holders
	}
	return owner, 1
}

// CoverageByServer returns how many virtual addresses each reachable server
// holds (failed servers report zero).
func (c *Cluster) CoverageByServer() []int {
	out := make([]int, len(c.Servers))
	for i, srv := range c.Servers {
		if !c.reachable(i) {
			continue
		}
		for j := 0; j < c.opts.VIPs; j++ {
			if srv.NIC.HasAddr(VIPAddr(j)) {
				out[i]++
			}
		}
	}
	return out
}

// InvariantView exposes the cluster to the settled-state invariant checks
// (invariant.SettledProblem) without giving them mutation access.
func (c *Cluster) InvariantView() invariant.ClusterView {
	return invariant.ClusterView{
		Servers:    len(c.Servers),
		VIPs:       c.opts.VIPs,
		Components: c.Components,
		InService:  func(i int) bool { return c.Servers[i].Node.Connected() },
		Reachable:  c.Reachable,
		HasVIP:     func(i, j int) bool { return c.Servers[i].NIC.HasAddr(VIPAddr(j)) },
		VIPAddr:    VIPAddr,
		GroupName:  func(j int) string { return c.Groups[j].Name },
		Status:     func(i int) core.Status { return c.Servers[i].Node.Status() },
	}
}

// VIPs lists the cluster's virtual addresses.
func (c *Cluster) VIPs() []netip.Addr {
	out := make([]netip.Addr, c.opts.VIPs)
	for j := range out {
		out[j] = VIPAddr(j)
	}
	return out
}

package wackamole_test

import (
	"fmt"
	"testing"
	"time"

	"wackamole"
	"wackamole/internal/metrics"
)

// TestClusterMetricsEndToEnd drives a fail-over with a registry installed
// and verifies that every latency family the paper's §5 components map to
// carries observations, and that the cluster-wide merged histograms are
// coherent (count > 0, quantiles within the instrument's range).
func TestClusterMetricsEndToEnd(t *testing.T) {
	reg := metrics.New()
	c := newCluster(t, wackamole.ClusterOptions{Seed: 11, Servers: 4, VIPs: 8, Metrics: reg})
	c.Settle()
	vip := c.VIPs()[0]
	victim, _ := c.Owner(vip)
	c.FailServer(victim)
	c.RunFor(10 * time.Second)
	if _, holders := c.Owner(vip); holders != 1 {
		t.Fatalf("vip %v held by %d servers after fail-over", vip, holders)
	}

	snap := reg.Snapshot()
	for _, fam := range []string{
		"gcs_token_rotation_seconds",
		"gcs_delivery_seconds",
		"gcs_membership_install_seconds",
		"gcs_retransmits_per_reconfig",
		"core_state_sync_seconds",
		"core_announce_lag_seconds",
		"netsim_frame_latency_seconds",
	} {
		h := snap.MergedHistogram(fam)
		if h.Count() == 0 {
			t.Errorf("%s: no observations after a fail-over", fam)
			continue
		}
		if q := h.Quantile(0.99); q <= 0 {
			t.Errorf("%s: P99 = %g, want > 0", fam, q)
		}
	}
	// The per-segment queue-depth gauge must exist for the cluster LAN.
	if f := snap.Family("netsim_segment_queue_depth"); f == nil {
		t.Error("netsim_segment_queue_depth family missing")
	}
	// Membership install: the fail-over reconfigured, so installs after the
	// boot round exist and took at least the discovery timeout's order.
	install := snap.MergedHistogram("gcs_membership_install_seconds")
	if d := install.QuantileDuration(0.5); d <= 0 {
		t.Errorf("membership install P50 = %v, want > 0", d)
	}
}

// TestClusterMetricsDoNotPerturbSimulation pins the no-op guarantee end to
// end: a seeded run with a registry installed produces byte-identical
// protocol activity to the same run without one.
func TestClusterMetricsDoNotPerturbSimulation(t *testing.T) {
	run := func(reg *metrics.Registry) string {
		c := newCluster(t, wackamole.ClusterOptions{Seed: 23, Servers: 3, VIPs: 6, Metrics: reg})
		c.Settle()
		c.FailServer(0)
		c.RunFor(8 * time.Second)
		var out string
		for i, srv := range c.Servers {
			ds := srv.Node.Daemon().Stats()
			es := srv.Node.Engine().Stats()
			out += fmt.Sprintf("%d %+v %+v %v\n", i, ds, es, c.CoverageByServer())
		}
		out += fmt.Sprintf("frames %+v", c.Net.Counters())
		return out
	}
	plain := run(nil)
	instrumented := run(metrics.New())
	if plain != instrumented {
		t.Fatalf("metrics perturbed the simulation:\n--- without ---\n%s\n--- with ---\n%s", plain, instrumented)
	}
}

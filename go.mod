module wackamole

go 1.22

package wackamole_test

// Chaos tests: randomized fault programs checked by the internal/check
// model checker — every run is watched by the full oracle set (Property 1
// exactly-once coverage per network component, Property 2 bounded
// convergence, virtual-synchrony view order, Agreed-delivery total order,
// interface/engine ownership agreement), not just by an end-state probe.
// Running them under `go test ./...` keeps the oracles themselves in
// tier-1. Unlike the pre-checker version of this file, the final state is
// checked without healing first: components that stay partitioned must each
// converge to full coverage on their own, which is the stronger reading of
// the paper's Property 1.

import (
	"fmt"
	"testing"
	"time"

	"wackamole"
	"wackamole/internal/check"
	"wackamole/internal/experiment"
	"wackamole/internal/load"
)

// runChecked generates the schedule for one seed and fails the test on any
// oracle violation, shrinking the offending schedule first so the failure
// message is actionable.
func runChecked(t *testing.T, seed int64, gen check.GenConfig, opts check.Options) {
	t.Helper()
	sched := check.Generate(seed, gen)
	rep, err := check.Run(sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		if rep.StepsExecuted != len(sched.Events) {
			t.Fatalf("executed %d of %d events without a violation", rep.StepsExecuted, len(sched.Events))
		}
		return
	}
	minimal, minRep, _, serr := check.Shrink(sched, opts, 0)
	if serr != nil {
		t.Fatalf("violation %v (shrink failed: %v)", rep.Violation, serr)
	}
	t.Fatalf("violation %v\nminimal schedule (%d events): %v", minRep.Violation,
		len(minimal.Events), minimal.Events)
}

func TestChaosMonkeyConvergesToExactlyOnce(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChecked(t, seed,
				check.GenConfig{Servers: 5, VIPs: 10, Steps: 12, Leaves: true},
				check.Options{BalanceTimeout: 10 * time.Second})
		})
	}
}

func TestChaosWithRepresentativeDecisions(t *testing.T) {
	for seed := int64(20); seed <= 23; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChecked(t, seed,
				check.GenConfig{Servers: 4, VIPs: 8, Steps: 8},
				check.Options{RepresentativeDecisions: true})
		})
	}
}

func TestLargerClusterScales(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 55, Servers: 20, VIPs: 40})
	c.Settle()
	checkExactlyOnce(t, c)
	for i, n := range c.CoverageByServer() {
		if n != 2 {
			t.Fatalf("server %d holds %d, want 2 (40 VIPs / 20 servers)", i, n)
		}
	}
	c.FailServer(7)
	c.FailServer(13)
	c.RunFor(10 * time.Second)
	checkExactlyOnce(t, c)
}

// TestChaosLoadDrivenNICFailure is the load-driven chaos case: a NIC failure
// under 200 concurrent closed-loop clients. Unlike the checker schedules
// above, the oracle here is the client population itself — every request must
// land in a bounded error class (ok / reset / timeout / stale, nothing
// unexplained), the damage must be proportionate to the outage, and goodput
// must recover after the takeover.
func TestChaosLoadDrivenNICFailure(t *testing.T) {
	cfg := experiment.AvailabilityConfig{
		Clients:   200,
		Mode:      load.Closed,
		ThinkTime: 200 * time.Millisecond,
		Fault:     experiment.FaultNIC,
		PreFault:  2 * time.Second,
	}
	_, res, err := experiment.AvailabilityTrial(41, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No errors of any class outside the fault window.
	if res.Before.Completions == 0 || res.Before.Completions != res.Before.OK {
		t.Fatalf("fault-free window: %d completions, %d ok — want all ok",
			res.Before.Completions, res.Before.OK)
	}
	// Error classes are bounded: a closed-loop client has at most one
	// request in flight, so each can lose its connection once and then fail
	// a handful of operations while the takeover completes. Orders of
	// magnitude more would mean requests are being misclassified or
	// double-counted.
	st := res.Stats
	errs := st.Requests[load.ClassReset] + st.Requests[load.ClassTimeout] + st.Requests[load.ClassStale]
	if errs == 0 {
		t.Fatal("a NIC failure under load produced no client-visible errors")
	}
	if max := uint64(20 * cfg.Clients); errs > max {
		t.Fatalf("%d failed requests across one fail-over of %d clients, want ≤ %d", errs, cfg.Clients, max)
	}
	if st.ConnsLost == 0 || st.ConnsLost > uint64(cfg.Clients) {
		t.Fatalf("ConnsLost = %d, want in 1..%d (each client holds one connection)", st.ConnsLost, cfg.Clients)
	}
	// Goodput recovers: the post-recovery window's ok fraction matches the
	// fault-free window's.
	if res.After.Completions == 0 || res.Recovery < 0.99 {
		t.Fatalf("goodput did not recover: after=%d completions, recovery=%v",
			res.After.Completions, res.Recovery)
	}
}

func TestFiftyServerCluster(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 99, Servers: 50, VIPs: 50})
	c.Settle()
	checkExactlyOnce(t, c)
	for i, n := range c.CoverageByServer() {
		if n != 1 {
			t.Fatalf("server %d holds %d VIPs, want 1", i, n)
		}
	}
	// Take out five servers at once.
	for i := 0; i < 5; i++ {
		c.FailServer(i * 9)
	}
	c.RunFor(10 * time.Second)
	checkExactlyOnce(t, c)
}

package wackamole_test

// Chaos tests: randomized fault programs checked by the internal/check
// model checker — every run is watched by the full oracle set (Property 1
// exactly-once coverage per network component, Property 2 bounded
// convergence, virtual-synchrony view order, Agreed-delivery total order,
// interface/engine ownership agreement), not just by an end-state probe.
// Running them under `go test ./...` keeps the oracles themselves in
// tier-1. Unlike the pre-checker version of this file, the final state is
// checked without healing first: components that stay partitioned must each
// converge to full coverage on their own, which is the stronger reading of
// the paper's Property 1.

import (
	"fmt"
	"testing"
	"time"

	"wackamole"
	"wackamole/internal/check"
)

// runChecked generates the schedule for one seed and fails the test on any
// oracle violation, shrinking the offending schedule first so the failure
// message is actionable.
func runChecked(t *testing.T, seed int64, gen check.GenConfig, opts check.Options) {
	t.Helper()
	sched := check.Generate(seed, gen)
	rep, err := check.Run(sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		if rep.StepsExecuted != len(sched.Events) {
			t.Fatalf("executed %d of %d events without a violation", rep.StepsExecuted, len(sched.Events))
		}
		return
	}
	minimal, minRep, _, serr := check.Shrink(sched, opts, 0)
	if serr != nil {
		t.Fatalf("violation %v (shrink failed: %v)", rep.Violation, serr)
	}
	t.Fatalf("violation %v\nminimal schedule (%d events): %v", minRep.Violation,
		len(minimal.Events), minimal.Events)
}

func TestChaosMonkeyConvergesToExactlyOnce(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChecked(t, seed,
				check.GenConfig{Servers: 5, VIPs: 10, Steps: 12, Leaves: true},
				check.Options{BalanceTimeout: 10 * time.Second})
		})
	}
}

func TestChaosWithRepresentativeDecisions(t *testing.T) {
	for seed := int64(20); seed <= 23; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChecked(t, seed,
				check.GenConfig{Servers: 4, VIPs: 8, Steps: 8},
				check.Options{RepresentativeDecisions: true})
		})
	}
}

func TestLargerClusterScales(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 55, Servers: 20, VIPs: 40})
	c.Settle()
	checkExactlyOnce(t, c)
	for i, n := range c.CoverageByServer() {
		if n != 2 {
			t.Fatalf("server %d holds %d, want 2 (40 VIPs / 20 servers)", i, n)
		}
	}
	c.FailServer(7)
	c.FailServer(13)
	c.RunFor(10 * time.Second)
	checkExactlyOnce(t, c)
}

func TestFiftyServerCluster(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 99, Servers: 50, VIPs: 50})
	c.Settle()
	checkExactlyOnce(t, c)
	for i, n := range c.CoverageByServer() {
		if n != 1 {
			t.Fatalf("server %d holds %d VIPs, want 1", i, n)
		}
	}
	// Take out five servers at once.
	for i := 0; i < 5; i++ {
		c.FailServer(i * 9)
	}
	c.RunFor(10 * time.Second)
	checkExactlyOnce(t, c)
}

package wackamole_test

// Chaos tests: randomized schedules of faults, partitions, heals, graceful
// leaves and session severs, asserting the paper's Property 1 (exactly-once
// coverage among reachable servers) whenever the system has had time to
// settle, and Property 2 (it always settles).

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"wackamole"
)

func TestChaosMonkeyConvergesToExactlyOnce(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const n = 5
			c := newCluster(t, wackamole.ClusterOptions{
				Seed:           seed,
				Servers:        n,
				VIPs:           10,
				BalanceTimeout: 10 * time.Second,
			})
			c.Settle()
			rng := rand.New(rand.NewSource(seed * 31))
			down := map[int]bool{}
			partitioned := false

			for step := 0; step < 12; step++ {
				switch op := rng.Intn(5); op {
				case 0: // fail a random live server (keep a majority alive)
					if len(down) < n-2 {
						for {
							i := rng.Intn(n)
							if !down[i] {
								c.FailServer(i)
								down[i] = true
								break
							}
						}
					}
				case 1: // restore a failed server
					for i := range down {
						c.RestoreServer(i)
						delete(down, i)
						break
					}
				case 2: // partition into two halves (only when whole)
					if !partitioned {
						cut := 1 + rng.Intn(n-1)
						var a, b []int
						for i := 0; i < n; i++ {
							if i < cut {
								a = append(a, i)
							} else {
								b = append(b, i)
							}
						}
						c.Partition(a, b)
						partitioned = true
					}
				case 3: // heal
					if partitioned {
						c.Heal()
						partitioned = false
					}
				case 4: // sever a live server's daemon session (§4.2 fault)
					i := rng.Intn(n)
					if !down[i] && c.Servers[i].Node.Session() != nil {
						c.Servers[i].Node.Session().Sever()
					}
				}
				c.RunFor(time.Duration(1+rng.Intn(8)) * time.Second)
			}

			// Quiesce: heal everything and let all reconfigurations finish
			// (severed sessions reconnect within a second; detection +
			// discovery + balance need the rest).
			if partitioned {
				c.Heal()
			}
			for i := range down {
				c.RestoreServer(i)
			}
			c.RunFor(45 * time.Second)
			checkExactlyOnce(t, c)

			// Tables agree everywhere (Property 1's engine-level half).
			ref := c.Servers[0].Node.Status()
			for i, srv := range c.Servers[1:] {
				st := srv.Node.Status()
				if st.ViewID != ref.ViewID {
					t.Fatalf("server %d view %q != %q", i+1, st.ViewID, ref.ViewID)
				}
				for g, owner := range ref.Table {
					if st.Table[g] != owner {
						t.Fatalf("tables diverge on %q", g)
					}
				}
			}
		})
	}
}

func TestChaosWithRepresentativeDecisions(t *testing.T) {
	for seed := int64(20); seed <= 23; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newCluster(t, wackamole.ClusterOptions{
				Seed:                    seed,
				Servers:                 4,
				VIPs:                    8,
				RepresentativeDecisions: true,
			})
			c.Settle()
			rng := rand.New(rand.NewSource(seed))
			for step := 0; step < 6; step++ {
				victim := rng.Intn(4)
				c.FailServer(victim)
				c.RunFor(time.Duration(1+rng.Intn(6)) * time.Second)
				c.RestoreServer(victim)
				c.RunFor(time.Duration(1+rng.Intn(10)) * time.Second)
			}
			c.RunFor(30 * time.Second)
			checkExactlyOnce(t, c)
		})
	}
}

func TestLargerClusterScales(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 55, Servers: 20, VIPs: 40})
	c.Settle()
	checkExactlyOnce(t, c)
	for i, n := range c.CoverageByServer() {
		if n != 2 {
			t.Fatalf("server %d holds %d, want 2 (40 VIPs / 20 servers)", i, n)
		}
	}
	c.FailServer(7)
	c.FailServer(13)
	c.RunFor(10 * time.Second)
	checkExactlyOnce(t, c)
}

func TestFiftyServerCluster(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 99, Servers: 50, VIPs: 50})
	c.Settle()
	checkExactlyOnce(t, c)
	for i, n := range c.CoverageByServer() {
		if n != 1 {
			t.Fatalf("server %d holds %d VIPs, want 1", i, n)
		}
	}
	// Take out five servers at once.
	for i := 0; i < 5; i++ {
		c.FailServer(i * 9)
	}
	c.RunFor(10 * time.Second)
	checkExactlyOnce(t, c)
}

// Arpsharing: the §5.2 ARP-cache-sharing mechanism. Some devices discard
// broadcast gratuitous ARP announcements; after a fail-over they would keep
// sending to the dead router's MAC until their cache entry expires. The
// paper's router application therefore has every Wackamole daemon
// periodically share its ARP cache with the others, so that the daemon
// taking over can spoof a unicast ARP reply to each known host.
//
// This example builds two fail-over routers and one such picky host,
// fails the active router, and shows that the picky host follows the
// virtual address only because of the shared-cache unicast spoof.
//
//	go run ./examples/arpsharing
package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	"wackamole/internal/arpshare"
	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
	"wackamole/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "arpsharing: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	s := sim.New(5)
	nw := netsim.New(s)
	lan := nw.NewSegment("lan", netsim.DefaultSegmentConfig())
	vip := netip.MustParseAddr("10.0.0.100")

	type router struct {
		host   *netsim.Host
		nic    *netsim.NIC
		sharer *arpshare.Sharer
	}
	var routers [2]router
	for i := range routers {
		h := nw.NewHost(fmt.Sprintf("router%d", i+1))
		nic := h.AttachNIC(lan, "eth0", netip.MustParsePrefix(fmt.Sprintf("10.0.0.%d/24", 2+i)))
		ep, err := h.OpenEndpoint(nic, 4803)
		if err != nil {
			return err
		}
		d, err := gcs.NewDaemon(ep.Env(nil), gcs.TunedConfig())
		if err != nil {
			return err
		}
		d.Start()
		sh, err := arpshare.New(h, d, arpshare.Config{Interval: 2 * time.Second})
		if err != nil {
			return err
		}
		sh.Start()
		routers[i] = router{host: h, nic: nic, sharer: sh}
	}

	picky := nw.NewHost("picky")
	pickyNIC := picky.AttachNIC(lan, "eth0", netip.MustParsePrefix("10.0.0.50/24"))
	picky.SetIgnoreBroadcastGratuitousARP(true)

	// router1 owns the virtual address; picky resolves it.
	if err := routers[0].nic.AddAddr(vip); err != nil {
		return err
	}
	if err := picky.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(vip, 9), []byte("hello")); err != nil {
		return err
	}
	// router2 resolves picky once, so its cache (and, shared, router1's
	// knowledge) includes it.
	if err := routers[1].host.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(netip.MustParseAddr("10.0.0.50"), 9), []byte("hi")); err != nil {
		return err
	}
	s.RunFor(10 * time.Second)

	fmt.Printf("router2's shared knowledge of the LAN: %d hosts\n", len(routers[1].sharer.Known()))
	mac, _ := pickyNIC.ARPEntry(vip)
	fmt.Printf("picky's ARP entry for %v: %v (router1)\n", vip, mac)

	fmt.Println("\nfailing router1; router2 takes the address over...")
	routers[0].nic.SetUp(false)
	if err := routers[1].nic.AddAddr(vip); err != nil {
		return err
	}

	plain := &netsim.ARPAnnouncer{Host: routers[1].host}
	plain.Announce(vip) // broadcast gratuitous ARP only
	s.RunFor(time.Second)
	mac, _ = pickyNIC.ARPEntry(vip)
	fmt.Printf("after broadcast-only announcement: picky still maps %v to %v (stale!)\n", vip, mac)

	routers[1].sharer.Notifier(plain).Announce(vip) // + unicast spoofs to known hosts
	s.RunFor(time.Second)
	mac, _ = pickyNIC.ARPEntry(vip)
	fmt.Printf("after shared-cache unicast spoof:   picky maps %v to %v (router2)\n", vip, mac)
	return nil
}

// Virtualrouter: the paper's Figure 4 application (§5.2). Two physical
// routers form one virtual router between an external network and an
// internal web network; the virtual addresses on both networks move as one
// indivisible group. We crash the active router under both §5.2 setups:
//
// The naive setup has only the active router participating in the dynamic
// routing protocol, so after fail-over the new router waits for the next
// periodic advertisement (≈30s RIP period) before it can route. The
// advertise-all setup has both routers participating continuously, so
// service resumes as soon as Wackamole reassigns the virtual addresses.
//
//	go run ./examples/virtualrouter
package main

import (
	"fmt"
	"os"
	"time"

	"wackamole/internal/experiment"
	"wackamole/internal/gcs"
	"wackamole/internal/rip"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "virtualrouter: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cfg := gcs.TunedConfig()
	ripCfg := rip.Config{AdvertisePeriod: rip.DefaultAdvertisePeriod}
	fmt.Printf("virtual router group: 198.51.100.1 (external) + 10.1.0.1 (web), moved as one unit\n")
	fmt.Printf("dynamic routing: RIP-style advertisements every %v\n\n", ripCfg.AdvertisePeriod)
	for _, mode := range []experiment.RouterMode{experiment.RouterModeNaive, experiment.RouterModeAdvertiseAll} {
		fmt.Printf("== %s setup ==\n", mode)
		s, err := experiment.RouterTrial(7, mode, cfg, ripCfg)
		if err != nil {
			return err
		}
		fmt.Printf("client-visible interruption after crashing the active router: %v\n\n",
			s.Value.Round(time.Millisecond))
	}
	fmt.Println("the advertise-all setup hands off as fast as Wackamole reconfigures;")
	fmt.Println("the naive setup additionally waits for routing reconvergence (§5.2).")
	return nil
}

package main

import "testing"

// TestRun executes the loopback example over real UDP sockets and the wall
// clock; it takes a few seconds, so it is skipped in -short mode.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock example; skipped in -short mode")
	}
	if err := run(); err != nil {
		t.Fatal(err)
	}
}

// Loopback: three real Wackamole daemons over actual UDP sockets and the
// wall clock (no simulator), on 127.0.0.1. Address acquisition uses an
// in-memory backend so the example cannot touch the machine's interfaces.
//
// The example forms the cluster, shows the allocation, gracefully stops one
// daemon (client leave: milliseconds, no daemon reconfiguration), then
// kills another abruptly and waits out fault detection + discovery.
//
//	go run ./examples/loopback
//
// Wall-clock runtime is a few seconds (timeouts are scaled down from the
// Table-1 values so the demo stays snappy).
package main

import (
	"fmt"
	"net/netip"
	"os"
	"sort"
	"time"

	"wackamole"
	"wackamole/internal/core"
	"wackamole/internal/env/realtime"
	"wackamole/internal/gcs"
	"wackamole/internal/ipmgr"
)

type daemon struct {
	node    *wackamole.Node
	loop    *realtime.Loop
	cleanup func()
	addr    string
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "loopback: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	peers := []string{"127.0.0.1:24803", "127.0.0.1:24804", "127.0.0.1:24805"}
	gcsCfg := gcs.Config{
		FaultDetectTimeout: 800 * time.Millisecond,
		HeartbeatInterval:  200 * time.Millisecond,
		DiscoveryTimeout:   600 * time.Millisecond,
	}
	groups := []core.VIPGroup{
		{Name: "web1", Addrs: []netip.Addr{netip.MustParseAddr("10.0.0.100")}},
		{Name: "web2", Addrs: []netip.Addr{netip.MustParseAddr("10.0.0.101")}},
		{Name: "web3", Addrs: []netip.Addr{netip.MustParseAddr("10.0.0.102")}},
		{Name: "web4", Addrs: []netip.Addr{netip.MustParseAddr("10.0.0.103")}},
	}

	var daemons []*daemon
	defer func() {
		for _, d := range daemons {
			d.shutdown()
		}
	}()
	for _, addr := range peers {
		d, err := startDaemon(addr, peers, gcsCfg, groups)
		if err != nil {
			return err
		}
		daemons = append(daemons, d)
	}

	fmt.Println("three daemons started on loopback UDP; waiting for the cluster to form...")
	time.Sleep(3 * time.Second)
	printStatus(daemons)

	fmt.Println("\ngracefully stopping", daemons[2].addr, "(client leave, no daemon reconfiguration)...")
	leaveStart := time.Now()
	if err := daemons[2].leave(); err != nil {
		return err
	}
	time.Sleep(500 * time.Millisecond)
	fmt.Printf("reallocated within %v of wall time\n", time.Since(leaveStart).Round(100*time.Millisecond))
	printStatus(daemons[:2])

	fmt.Println("\nkilling", daemons[1].addr, "abruptly (fault detection + discovery must run)...")
	daemons[1].shutdown()
	time.Sleep(3 * time.Second)
	printStatus(daemons[:1])

	fmt.Println("\nthe surviving daemon covers every virtual address; done.")
	return nil
}

func startDaemon(addr string, peers []string, gcsCfg gcs.Config, groups []core.VIPGroup) (*daemon, error) {
	e, loop, cleanup, err := realtime.NewEnv(addr, peers, nil)
	if err != nil {
		return nil, err
	}
	node, err := wackamole.NewNode(e, wackamole.Config{
		GCS:    gcsCfg,
		Engine: core.Config{Groups: groups, StartMature: true, BalanceTimeout: 2 * time.Second},
	}, &ipmgr.FakeBackend{}, nil)
	if err != nil {
		cleanup()
		return nil, err
	}
	startErr := make(chan error, 1)
	loop.Post(func() { startErr <- node.Start() })
	if err := <-startErr; err != nil {
		cleanup()
		return nil, err
	}
	return &daemon{node: node, loop: loop, cleanup: cleanup, addr: addr}, nil
}

func (d *daemon) status() core.Status {
	out := make(chan core.Status, 1)
	d.loop.Post(func() { out <- d.node.Status() })
	return <-out
}

func (d *daemon) leave() error {
	out := make(chan error, 1)
	d.loop.Post(func() { out <- d.node.LeaveService() })
	return <-out
}

func (d *daemon) shutdown() {
	if d.cleanup == nil {
		return
	}
	done := make(chan struct{})
	d.loop.Post(func() { d.node.Stop(); close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
	}
	d.cleanup()
	d.cleanup = nil
}

func printStatus(daemons []*daemon) {
	for _, d := range daemons {
		st := d.status()
		fmt.Printf("  %s: state=%s members=%d owned=%v\n", d.addr, st.State, len(st.Members), st.Owned)
	}
	if len(daemons) > 0 {
		st := daemons[0].status()
		names := make([]string, 0, len(st.Table))
		for g := range st.Table {
			names = append(names, g)
		}
		sort.Strings(names)
		for _, g := range names {
			fmt.Printf("    %-6s -> %s\n", g, st.Table[g])
		}
	}
}

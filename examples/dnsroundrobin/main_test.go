package main

import "testing"

// TestRun executes the example end to end under simulated time.
func TestRun(t *testing.T) {
	if err := run(); err != nil {
		t.Fatal(err)
	}
}

// Dnsroundrobin: the paper's §7 observation that "many services need high
// availability and only remedial load-balancing techniques such as multiple
// DNS A records". DNS round-robin spreads load across several virtual
// addresses but does nothing when a server dies — clients keep being handed
// the dead address until its record is removed (hours, with caching).
// Running an IP fail-over protocol "directly on the machines providing the
// service" keeps every A record alive.
//
// The example serves a site on four virtual addresses (the A records) from
// four servers, drives a client that round-robins across the records with a
// short retry, and fails one server. With Wackamole, every record keeps
// answering after one fail-over interval; the retry masks the brief gap.
//
//	go run ./examples/dnsroundrobin
package main

import (
	"fmt"
	"net/netip"
	"os"
	"time"

	"wackamole"
	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
	"wackamole/internal/probe"
)

const servicePort = 8080

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "dnsroundrobin: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cluster, err := wackamole.NewCluster(wackamole.ClusterOptions{
		Seed:       7,
		Servers:    4,
		VIPs:       4, // the four DNS A records
		GCS:        gcs.TunedConfig(),
		WithRouter: true,
	})
	if err != nil {
		return err
	}
	for _, srv := range cluster.Servers {
		if _, err := probe.NewServer(srv.Host, servicePort); err != nil {
			return err
		}
	}

	// The "DNS" zone: four A records for www.example.test.
	records := cluster.VIPs()

	client := cluster.Net.NewHost("browser")
	cnic := client.AttachNIC(cluster.External, "eth0",
		netip.MustParsePrefix("192.168.1.50/24"))
	client.SetDefaultGateway(cnic, wackamole.RouterOutsideAddr)
	rr := newRoundRobinClient(client, records, servicePort)

	cluster.Settle()
	fmt.Println("== www.example.test: 4 A records, 4 servers ==")
	runRequests(cluster, rr, 200)
	fmt.Printf("warm-up: %d/%d requests answered (retries: %d)\n\n", rr.ok, rr.total, rr.retries)

	victim, _ := cluster.Owner(records[0])
	fmt.Printf("disconnecting %s (serves %v)...\n", cluster.Servers[victim].Host.Name(), records[0])
	cluster.FailServer(victim)

	rr.reset()
	runRequests(cluster, rr, 600)
	fmt.Printf("during/after fail-over: %d/%d answered, %d needed a retry, %d failed outright\n",
		rr.ok, rr.total, rr.retries, rr.failed)

	rr.reset()
	runRequests(cluster, rr, 200)
	fmt.Printf("steady state after fail-over: %d/%d answered (retries: %d)\n", rr.ok, rr.total, rr.retries)
	fmt.Println("\nevery A record kept answering: the dead server's address moved, the zone file never changed.")
	return nil
}

func runRequests(cluster *wackamole.Cluster, rr *rrClient, n int) {
	for i := 0; i < n; i++ {
		rr.request(cluster)
		cluster.RunFor(20 * time.Millisecond)
	}
}

// rrClient round-robins requests across the A records, retrying once on the
// next record after a short timeout — what a browser effectively does with
// multiple A records.
type rrClient struct {
	host    *netsim.Host
	records []netip.Addr
	next    int

	pending  bool
	answered bool

	total, ok, retries, failed int
}

func newRoundRobinClient(host *netsim.Host, records []netip.Addr, port uint16) *rrClient {
	rr := &rrClient{host: host, records: records}
	if _, err := host.BindUDP(netip.Addr{}, 9001, func(_, _ netip.AddrPort, _ []byte) {
		rr.answered = true
	}); err != nil {
		panic(err) // example setup; cannot fail twice on one port
	}
	return rr
}

func (rr *rrClient) reset() { rr.total, rr.ok, rr.retries, rr.failed = 0, 0, 0, 0 }

// request issues one HTTP-like request with a single retry on the next
// record. The simulation advances inside to model the client's timeout.
func (rr *rrClient) request(cluster *wackamole.Cluster) {
	rr.total++
	for attempt := 0; attempt < 2; attempt++ {
		target := rr.records[rr.next%len(rr.records)]
		rr.next++
		rr.answered = false
		src := netip.AddrPortFrom(netip.Addr{}, 9001)
		if err := rr.host.SendUDP(src, netip.AddrPortFrom(target, servicePort), []byte("GET /")); err != nil {
			continue
		}
		cluster.RunFor(100 * time.Millisecond) // client timeout
		if rr.answered {
			rr.ok++
			if attempt > 0 {
				rr.retries++
			}
			return
		}
	}
	rr.failed++
}

// Quickstart: a three-server Wackamole cluster covering six virtual IP
// addresses on the deterministic simulator. We fail a server and watch the
// cluster re-cover its addresses, then bring it back and watch the
// representative re-balance the allocation.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	"wackamole"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "quickstart: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	cluster, err := wackamole.NewCluster(wackamole.ClusterOptions{
		Seed:           1,
		Servers:        3,
		VIPs:           6,
		BalanceTimeout: 5 * time.Second,
	})
	if err != nil {
		return err
	}

	cluster.Settle()
	fmt.Println("== cluster formed ==")
	printAllocation(cluster)

	fmt.Println("\n== failing server02 (interface disconnected) ==")
	cluster.FailServer(2)
	cluster.RunFor(10 * time.Second)
	printAllocation(cluster)

	fmt.Println("\n== restoring server02; waiting for re-balance ==")
	cluster.RestoreServer(2)
	cluster.RunFor(20 * time.Second)
	printAllocation(cluster)

	fmt.Printf("\nsimulated time elapsed: %v\n", cluster.Sim.Elapsed().Round(time.Millisecond))
	return nil
}

func printAllocation(cluster *wackamole.Cluster) {
	status := cluster.Servers[0].Node.Status()
	fmt.Printf("view %s, state %s\n", status.ViewID, status.State)
	for _, vip := range cluster.VIPs() {
		owner, holders := cluster.Owner(vip)
		switch holders {
		case 1:
			fmt.Printf("  %-12v -> %s\n", vip, cluster.Servers[owner].Host.Name())
		default:
			fmt.Printf("  %-12v -> %d holders\n", vip, holders)
		}
	}
	fmt.Printf("  per-server coverage: %v\n", cluster.CoverageByServer())
}

// Webcluster: the paper's Figure 3 scenario and §6 measurement, end to end.
//
// Six web servers behind a router maintain ten virtual addresses; an
// external client polls one of them every 10ms. We disconnect the interface
// of the server covering it and report the availability interruption the
// client observes — once with the default Spread timeouts (≈10–12s) and
// once with the tuned ones (≈2–2.4s), reproducing the two curves of
// Figure 5.
//
//	go run ./examples/webcluster
package main

import (
	"fmt"
	"os"
	"time"

	"wackamole/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "webcluster: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	for _, nc := range experiment.NamedConfigs() {
		fmt.Printf("== %s Spread timeouts (fault-detect %v, heartbeat %v, discovery %v) ==\n",
			nc.Name, nc.Cfg.FaultDetectTimeout, nc.Cfg.HeartbeatInterval, nc.Cfg.DiscoveryTimeout)

		wc, err := experiment.NewWebCluster(42, 6, nc.Cfg)
		if err != nil {
			return err
		}
		wc.WarmUp(nc.Cfg)
		victim, holders := wc.Owner(wc.Target)
		if holders != 1 {
			return fmt.Errorf("expected one holder of %v, found %d", wc.Target, holders)
		}
		fmt.Printf("client probing %v:%d through the router; owner is %s\n",
			wc.Target, experiment.ServicePort, wc.Cluster.Servers[victim].Host.Name())

		fmt.Printf("disconnecting %s's interface...\n", wc.Cluster.Servers[victim].Host.Name())
		wc.FailServer(victim)
		gap, err := wc.MeasureInterruption(60 * time.Second)
		if err != nil {
			return err
		}
		fmt.Printf("availability interruption: %v (last answer from %s, service resumed by %s)\n",
			gap.Duration().Round(time.Millisecond), gap.From, gap.To)

		wc.RunFor(2 * time.Second)
		fmt.Printf("responses since the fault, by server: %v\n\n", wc.Client.ByServer())
	}
	return nil
}

package wackamole_test

import (
	"sync"
	"testing"
	"time"

	"wackamole"
	"wackamole/internal/gcs"
)

// TestStatsConcurrentReadsDuringViewChange polls every node's daemon and
// engine counters from dedicated goroutines while the simulation drives a
// fail-over (membership change, state exchange, reallocation). Stats() is
// documented as safe from any goroutine — the administrative channel, the
// /metrics endpoint and wackmon all read it off-loop — so this test exists
// to fail under -race if the counters ever regress to unsynchronized fields.
func TestStatsConcurrentReadsDuringViewChange(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 7, Servers: 4, VIPs: 8})
	c.Settle()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, srv := range c.Servers {
		srv := srv
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = srv.Node.Daemon().Stats()
				_ = srv.Node.Engine().Stats()
				time.Sleep(time.Millisecond)
			}
		}()
	}

	vip := c.VIPs()[0]
	victim, _ := c.Owner(vip)
	c.FailServer(victim)
	c.RunFor(10 * time.Second)
	close(stop)
	wg.Wait()

	if _, holders := c.Owner(vip); holders != 1 {
		t.Fatalf("vip %v held by %d servers after fail-over", vip, holders)
	}
	// The fail-over must have moved the counters the readers were polling.
	var ds gcs.Stats
	var acquires uint64
	for i, srv := range c.Servers {
		if i == victim {
			continue
		}
		ds.Merge(srv.Node.Daemon().Stats())
		acquires += srv.Node.Engine().Stats().Acquires
	}
	if ds.MembershipsInstalled == 0 || ds.Reconfigurations == 0 {
		t.Fatalf("no membership activity recorded: %+v", ds)
	}
	if acquires == 0 {
		t.Fatal("no acquisitions recorded despite a fail-over")
	}
}

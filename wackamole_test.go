package wackamole_test

import (
	"fmt"
	"testing"
	"time"

	"wackamole"
	"wackamole/internal/core"
	"wackamole/internal/gcs"
)

func newCluster(t *testing.T, opts wackamole.ClusterOptions) *wackamole.Cluster {
	t.Helper()
	c, err := wackamole.NewCluster(opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// checkExactlyOnce asserts that every virtual address is held by exactly
// one reachable server (Property 1 at the network level).
func checkExactlyOnce(t *testing.T, c *wackamole.Cluster) {
	t.Helper()
	for _, vip := range c.VIPs() {
		owner, holders := c.Owner(vip)
		if holders != 1 {
			t.Fatalf("vip %v held by %d reachable servers, want 1", vip, holders)
		}
		if owner < 0 {
			t.Fatalf("vip %v has no owner", vip)
		}
	}
}

func TestClusterFormsAndCoversEverything(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 1, Servers: 5, VIPs: 10})
	c.Settle()
	checkExactlyOnce(t, c)
	// Engine tables agree across all servers.
	ref := c.Servers[0].Node.Status()
	if ref.State != core.StateRun {
		t.Fatalf("server 0 state = %v", ref.State)
	}
	for i, srv := range c.Servers[1:] {
		st := srv.Node.Status()
		if st.ViewID != ref.ViewID {
			t.Fatalf("server %d view %q != %q", i+1, st.ViewID, ref.ViewID)
		}
		for g, owner := range ref.Table {
			if st.Table[g] != owner {
				t.Fatalf("tables diverge on %q", g)
			}
		}
	}
	// Initial allocation is reasonably even (10 VIPs on 5 servers: 2 each).
	for i, n := range c.CoverageByServer() {
		if n != 2 {
			t.Fatalf("server %d holds %d VIPs, want 2 (coverage %v)", i, n, c.CoverageByServer())
		}
	}
}

func TestFailoverReallocatesWithinTunedBudget(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 2, Servers: 4, VIPs: 10})
	c.Settle()
	vip := c.VIPs()[0]
	victim, _ := c.Owner(vip)
	start := c.Sim.Elapsed()
	c.FailServer(victim)
	// Run until the address is covered again, in small steps.
	covered := time.Duration(-1)
	for d := time.Duration(0); d < 10*time.Second; d += 50 * time.Millisecond {
		c.RunFor(50 * time.Millisecond)
		if _, holders := c.Owner(vip); holders == 1 {
			covered = c.Sim.Elapsed() - start
			break
		}
	}
	if covered < 0 {
		t.Fatal("vip never reallocated after failure")
	}
	// Tuned Spread: detection in (0.6s, 1.0s], discovery 1.4s, so
	// reallocation should land between 2.0s and ~2.6s.
	if covered < 1900*time.Millisecond || covered > 2800*time.Millisecond {
		t.Fatalf("reallocation took %v, want ≈2.0-2.6s (tuned Table 1 budget)", covered)
	}
	c.RunFor(5 * time.Second)
	checkExactlyOnce(t, c)
}

func TestPartitionEachComponentCoversAllThenMergeResolves(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 3, Servers: 5, VIPs: 8})
	c.Settle()
	c.Partition([]int{0, 1, 2}, []int{3, 4})
	c.RunFor(10 * time.Second)
	// Each side must independently hold all 8 addresses: total 16 held.
	perSide := map[int]int{}
	for _, vip := range c.VIPs() {
		for i, srv := range c.Servers {
			if srv.NIC.HasAddr(vip) {
				side := 0
				if i >= 3 {
					side = 1
				}
				perSide[side]++
			}
		}
	}
	if perSide[0] != 8 || perSide[1] != 8 {
		t.Fatalf("per-side coverage = %v, want 8 and 8", perSide)
	}
	c.Heal()
	c.RunFor(15 * time.Second)
	checkExactlyOnce(t, c)
}

func TestGracefulLeaveReallocatesInMilliseconds(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 4, Servers: 3, VIPs: 9})
	c.Settle()
	leaver := 2
	ringBefore, _, _ := c.Servers[0].Node.Daemon().Ring()
	start := c.Sim.Elapsed()
	if err := c.Servers[leaver].Node.LeaveService(); err != nil {
		t.Fatal(err)
	}
	covered := time.Duration(-1)
	for d := time.Duration(0); d < time.Second; d += 5 * time.Millisecond {
		c.RunFor(5 * time.Millisecond)
		done := true
		for _, vip := range c.VIPs() {
			if _, holders := c.Owner(vip); holders != 1 {
				done = false
				break
			}
		}
		if done {
			covered = c.Sim.Elapsed() - start
			break
		}
	}
	if covered < 0 {
		t.Fatal("graceful leave never converged")
	}
	// §6: voluntary departure interrupts availability for milliseconds
	// (measurements as low as 10ms, conservative bound 250ms), because no
	// daemon-level reconfiguration happens.
	if covered > 250*time.Millisecond {
		t.Fatalf("graceful leave took %v, want ≤ 250ms", covered)
	}
	ringAfter, _, _ := c.Servers[0].Node.Daemon().Ring()
	if ringBefore != ringAfter {
		t.Fatal("graceful leave triggered daemon reconfiguration")
	}
}

func TestSeveredSessionDropsAddressesAndReconnects(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{
		Seed: 5, Servers: 3, VIPs: 6,
		BalanceTimeout: 5 * time.Second,
	})
	c.Settle()
	victim := c.Servers[0]
	if len(victim.Node.Status().Owned) == 0 {
		t.Fatal("vacuous: victim owns nothing")
	}
	victim.Node.Session().Sever()
	// §4.2: it must immediately drop its virtual interfaces...
	if got := len(victim.Node.IPs().Held()); got != 0 {
		t.Fatalf("severed node still holds %d addresses", got)
	}
	if victim.Node.Status().State != core.StateDetached {
		t.Fatalf("severed node state = %v, want detached", victim.Node.Status().State)
	}
	c.RunFor(3 * time.Second)
	checkExactlyOnce(t, c)
	// ...and periodically reconnect; after balancing it serves again.
	c.RunFor(10 * time.Second)
	if victim.Node.Status().State != core.StateRun {
		t.Fatalf("severed node did not reattach (state %v)", victim.Node.Status().State)
	}
	if len(victim.Node.Status().Owned) == 0 {
		t.Fatal("reattached node was never rebalanced back into service")
	}
	checkExactlyOnce(t, c)
}

func TestMaturityBootstrapAvoidsBootChurn(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{
		Seed: 6, Servers: 4, VIPs: 8,
		Bootstrap:     true,
		MatureTimeout: 6 * time.Second,
	})
	// After formation but before the maturity timeout, nothing is covered.
	c.RunFor(4 * time.Second)
	total := 0
	for _, n := range c.CoverageByServer() {
		total += n
	}
	if total != 0 {
		t.Fatalf("immature cluster already holds %d addresses", total)
	}
	c.RunFor(10 * time.Second)
	checkExactlyOnce(t, c)
}

func TestFailedServerRejoinsAndIsRebalanced(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{
		Seed: 7, Servers: 3, VIPs: 9,
		BalanceTimeout: 5 * time.Second,
	})
	c.Settle()
	c.FailServer(2)
	c.RunFor(8 * time.Second)
	checkExactlyOnce(t, c)
	c.RestoreServer(2)
	c.RunFor(20 * time.Second)
	checkExactlyOnce(t, c)
	cov := c.CoverageByServer()
	if cov[2] != 3 {
		t.Fatalf("rejoined server holds %d VIPs after balance, want 3 (coverage %v)", cov[2], cov)
	}
}

func TestClusterOptionValidation(t *testing.T) {
	cases := []wackamole.ClusterOptions{
		{Servers: 0, VIPs: 5},
		{Servers: 3, VIPs: 0},
		{Servers: 500, VIPs: 5},
	}
	for i, opts := range cases {
		if _, err := wackamole.NewCluster(opts); err == nil {
			t.Fatalf("case %d: invalid options accepted", i)
		}
	}
}

func TestPerNodePreferencesViaConfigureNode(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{
		Seed: 8, Servers: 2, VIPs: 4,
		BalanceTimeout: 3 * time.Second,
		ConfigureNode: func(i int, cfg *wackamole.Config) {
			if i == 1 {
				cfg.Engine.Prefer = []string{"vip00", "vip01"}
			}
		},
	})
	c.Settle()
	c.RunFor(10 * time.Second)
	srv := c.Servers[1]
	if !srv.NIC.HasAddr(wackamole.VIPAddr(0)) || !srv.NIC.HasAddr(wackamole.VIPAddr(1)) {
		t.Fatalf("preferences not honoured; coverage %v", c.CoverageByServer())
	}
	checkExactlyOnce(t, c)
}

func TestCascadingFaultsKeepExactlyOnce(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 9, Servers: 6, VIPs: 12})
	c.Settle()
	c.FailServer(5)
	c.RunFor(1200 * time.Millisecond) // mid-reconfiguration
	c.FailServer(4)
	c.RunFor(800 * time.Millisecond)
	c.FailServer(3)
	c.RunFor(15 * time.Second)
	checkExactlyOnce(t, c)
	cov := c.CoverageByServer()
	total := 0
	for _, n := range cov {
		total += n
	}
	if total != 12 {
		t.Fatalf("survivors hold %d addresses, want 12 (%v)", total, cov)
	}
}

func TestDefaultConfigClusterMatchesTable1Budget(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{
		Seed: 10, Servers: 4, VIPs: 10,
		GCS: gcs.DefaultConfig(),
	})
	c.Settle()
	vip := c.VIPs()[0]
	victim, _ := c.Owner(vip)
	start := c.Sim.Elapsed()
	c.FailServer(victim)
	covered := time.Duration(-1)
	for d := time.Duration(0); d < 30*time.Second; d += 100 * time.Millisecond {
		c.RunFor(100 * time.Millisecond)
		if _, holders := c.Owner(vip); holders == 1 {
			covered = c.Sim.Elapsed() - start
			break
		}
	}
	if covered < 0 {
		t.Fatal("never reallocated")
	}
	// Default Spread: 10s to 12s notification plus protocol slack (§6).
	if covered < 9500*time.Millisecond || covered > 13*time.Second {
		t.Fatalf("default-config reallocation took %v, want ≈10-12s", covered)
	}
}

func TestStatusAndAccessors(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{Seed: 11, Servers: 2, VIPs: 2})
	c.Settle()
	n := c.Servers[0].Node
	if n.Daemon() == nil || n.Session() == nil || n.Engine() == nil || n.IPs() == nil {
		t.Fatal("accessor returned nil")
	}
	if n.Member() == "" {
		t.Fatal("empty member identity")
	}
	st := n.Status()
	if st.State != core.StateRun || len(st.Members) != 2 {
		t.Fatalf("status = %+v", st)
	}
	if err := n.Start(); err == nil {
		t.Fatal("double Start succeeded")
	}
}

func TestRepresentativeDecisionsCluster(t *testing.T) {
	c := newCluster(t, wackamole.ClusterOptions{
		Seed: 12, Servers: 4, VIPs: 8,
		RepresentativeDecisions: true,
	})
	c.Settle()
	checkExactlyOnce(t, c)
	c.FailServer(0) // the representative itself fails
	c.RunFor(8 * time.Second)
	checkExactlyOnce(t, c)
	c.Partition([]int{0, 1, 2}, []int{3}) // failed server 0 rides along silently
	c.RunFor(10 * time.Second)
	c.Heal()
	c.RunFor(15 * time.Second)
	checkExactlyOnce(t, c)
}

func TestManySeedsConverge(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newCluster(t, wackamole.ClusterOptions{Seed: seed, Servers: 5, VIPs: 10})
			c.Settle()
			victim := int(seed) % 5
			c.FailServer(victim)
			c.RunFor(10 * time.Second)
			checkExactlyOnce(t, c)
		})
	}
}

package core_test

import (
	"testing"
	"time"

	"wackamole/internal/core"
)

func repConfig(n int) core.Config {
	cfg := matureConfig(n)
	cfg.RepresentativeDecisions = true
	return cfg
}

func TestRepresentativeModeCoversExactlyOnce(t *testing.T) {
	h := newHarness(t, 4, repConfig(10))
	h.setPartition(h.all())
	h.pump()
	h.checkComponent(h.all(), true)
}

func TestRepresentativeModeMergeResolvesConflicts(t *testing.T) {
	h := newHarness(t, 4, repConfig(8))
	h.setPartition(h.all())
	h.pump()
	h.setPartition(h.members[:2], h.members[2:])
	h.pump()
	h.checkComponent(h.members[:2], true)
	h.checkComponent(h.members[2:], true)
	h.setPartition(h.all())
	h.pump()
	h.checkComponent(h.all(), true)
	total := 0
	for _, id := range h.members {
		total += len(h.engines[id].Snapshot().Owned)
	}
	if total != 8 {
		t.Fatalf("owned %d groups in total after merge, want 8", total)
	}
}

// TestRepresentativeMatchesIndependentDecisions pins the §4.2 observation
// that the variant changes the decision *path*, not the decision: both
// modes produce identical allocations from identical histories.
func TestRepresentativeMatchesIndependentDecisions(t *testing.T) {
	run := func(rep bool) map[string]core.MemberID {
		cfg := matureConfig(12)
		cfg.RepresentativeDecisions = rep
		h := newHarness(t, 5, cfg)
		h.setPartition(h.all())
		h.pump()
		h.setPartition(h.members[:3], h.members[3:])
		h.pump()
		h.setPartition(h.all())
		h.pump()
		h.checkComponent(h.all(), true)
		return h.engines[h.members[0]].Snapshot().Table
	}
	indep, repd := run(false), run(true)
	for g := range indep {
		if indep[g] != repd[g] {
			t.Fatalf("modes disagree on %q: independent=%q representative=%q", g, indep[g], repd[g])
		}
	}
}

func TestRepresentativeModeStaysInGatherUntilAlloc(t *testing.T) {
	h := newHarness(t, 3, repConfig(6))
	h.setPartition(h.all())
	// Deliver only the STATE messages (3 of them); hold the ALLOC back.
	for i := 0; i < 3; i++ {
		m := h.queue[0]
		h.queue = h.queue[1:]
		for _, id := range h.members {
			h.engines[id].OnMessage(m.from, m.payload)
		}
	}
	for _, id := range h.members {
		if st := h.engines[id].Snapshot().State; st != core.StateGather {
			t.Fatalf("%s state = %v before ALLOC, want gather", id, st)
		}
	}
	if len(h.queue) != 1 {
		t.Fatalf("queue = %d messages, want exactly the representative's ALLOC", len(h.queue))
	}
	h.pump()
	h.checkComponent(h.all(), true)
}

func TestRepresentativeModeAllocFromNonRepIgnored(t *testing.T) {
	h := newHarness(t, 2, repConfig(4))
	h.setPartition(h.all())
	// Capture the legitimate ALLOC payload, then replay it as if from the
	// non-representative: it must be ignored in a fresh identical harness.
	var alloc []byte
	for len(h.queue) > 0 {
		m := h.queue[0]
		h.queue = h.queue[1:]
		if len(h.queue) == 0 {
			alloc = m.payload // last message is the ALLOC
		}
		for _, id := range h.members {
			h.engines[id].OnMessage(m.from, m.payload)
		}
	}
	h.checkComponent(h.all(), true)

	h2 := newHarness(t, 2, repConfig(4))
	h2.setPartition(h2.all())
	// Deliver the two STATE messages only.
	for i := 0; i < 2; i++ {
		m := h2.queue[0]
		h2.queue = h2.queue[1:]
		for _, id := range h2.members {
			h2.engines[id].OnMessage(m.from, m.payload)
		}
	}
	for _, id := range h2.members {
		h2.engines[id].OnMessage(h2.members[1], alloc) // wrong sender
	}
	for _, id := range h2.members {
		if st := h2.engines[id].Snapshot().State; st != core.StateGather {
			t.Fatalf("%s accepted an ALLOC from the non-representative", id)
		}
	}
}

func TestRepresentativeModeCascadeResends(t *testing.T) {
	h := newHarness(t, 3, repConfig(6))
	h.setPartition(h.all())
	h.pump()
	before := h.engines[h.members[0]].Snapshot().Table
	// New view; drop everything mid-gather; cascade into another view.
	h.setPartition(h.all())
	h.setPartition(h.all())
	h.pump()
	h.checkComponent(h.all(), true)
	after := h.engines[h.members[0]].Snapshot().Table
	for g := range before {
		if before[g] != after[g] {
			t.Fatalf("stable membership reshuffled %q under cascades", g)
		}
	}
}

func TestRepresentativeModeWithMaturity(t *testing.T) {
	cfg := core.Config{Groups: groups(6), MatureTimeout: 4 * time.Second, RepresentativeDecisions: true}
	h := newHarness(t, 3, cfg)
	h.setPartition(h.all())
	h.pump()
	for _, id := range h.members {
		if n := len(h.engines[id].Snapshot().Owned); n != 0 {
			t.Fatalf("%s owns %d groups while immature", id, n)
		}
	}
	h.runFor(5 * time.Second)
	h.checkComponent(h.all(), true)
}

func TestRepresentativeModeBalanceStillWorks(t *testing.T) {
	cfg := repConfig(10)
	cfg.BalanceTimeout = 5 * time.Second
	h := newHarness(t, 2, cfg)
	a, b := h.members[0], h.members[1]
	h.setPartition([]core.MemberID{a})
	h.pump()
	h.setPartition([]core.MemberID{a, b})
	h.pump()
	h.runFor(6 * time.Second)
	counts := h.engines[a].AllocationCounts()
	if counts[a] != 5 || counts[b] != 5 {
		t.Fatalf("post-balance allocation = %v, want 5/5", counts)
	}
}

package core_test

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"wackamole/internal/core"
	"wackamole/internal/ipmgr"
	"wackamole/internal/sim"
)

// harness drives a set of engines through a scripted view-synchronous group:
// casts are queued and delivered in a single total order per connected
// component, views are injected explicitly, and timers run on a simulator.
// It is the "model" group-communication layer the correctness argument of
// §3.3 assumes.
type harness struct {
	t        testing.TB
	sim      *sim.Sim
	members  []core.MemberID
	engines  map[core.MemberID]*core.Engine
	backends map[core.MemberID]*ipmgr.FakeBackend
	mgrs     map[core.MemberID]*ipmgr.Manager
	events   map[core.MemberID][]core.Event
	comp     map[core.MemberID]int
	queue    []qmsg
	viewN    int
}

type qmsg struct {
	from    core.MemberID
	payload []byte
}

func groups(n int) []core.VIPGroup {
	out := make([]core.VIPGroup, n)
	for i := range out {
		out[i] = core.VIPGroup{
			Name:  fmt.Sprintf("vip%02d", i),
			Addrs: []netip.Addr{netip.AddrFrom4([4]byte{10, 0, 1, byte(i + 1)})},
		}
	}
	return out
}

func newHarness(t testing.TB, n int, cfg core.Config) *harness {
	return newHarnessCfg(t, n, func(int) core.Config { return cfg })
}

// newHarnessCfg builds the harness with a per-member configuration —
// needed when the config carries per-engine state (a placement policy
// instance must not be shared between engines).
func newHarnessCfg(t testing.TB, n int, cfgFor func(i int) core.Config) *harness {
	t.Helper()
	h := &harness{
		t:        t,
		sim:      sim.New(1),
		engines:  map[core.MemberID]*core.Engine{},
		backends: map[core.MemberID]*ipmgr.FakeBackend{},
		mgrs:     map[core.MemberID]*ipmgr.Manager{},
		events:   map[core.MemberID][]core.Event{},
		comp:     map[core.MemberID]int{},
	}
	for i := 0; i < n; i++ {
		id := core.MemberID(fmt.Sprintf("m%02d", i))
		h.members = append(h.members, id)
		be := &ipmgr.FakeBackend{}
		mgr := ipmgr.New(be)
		e, err := core.NewEngine(cfgFor(i), core.Deps{
			Self:  id,
			Cast:  func(p []byte) error { h.queue = append(h.queue, qmsg{from: id, payload: p}); return nil },
			IPs:   mgr,
			Clock: h.sim,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.SetEventHook(func(ev core.Event) { h.events[id] = append(h.events[id], ev) })
		e.Start()
		h.engines[id] = e
		h.backends[id] = be
		h.mgrs[id] = mgr
		h.comp[id] = 0
	}
	return h
}

// clock adapts sim.Sim to env.Clock via the engines' Deps — sim.Sim already
// satisfies it structurally through AfterFunc returning *sim.Timer.

// pump delivers queued casts in order; each cast goes to every member in the
// sender's current component.
func (h *harness) pump() {
	for len(h.queue) > 0 {
		m := h.queue[0]
		h.queue = h.queue[1:]
		c := h.comp[m.from]
		for _, id := range h.members {
			if h.comp[id] == c {
				h.engines[id].OnMessage(m.from, m.payload)
			}
		}
	}
}

// setPartition installs one view per component. In-flight casts from the
// previous configuration are discarded (engines discard them anyway through
// the view-id check; dropping models the sharpest cut).
func (h *harness) setPartition(components ...[]core.MemberID) {
	h.queue = nil
	h.viewN++
	for ci, comp := range components {
		view := core.View{ID: fmt.Sprintf("v%d.%d", h.viewN, ci)}
		view.Members = append(view.Members, comp...)
		for _, id := range comp {
			h.comp[id] = h.viewN*10 + ci
		}
		for _, id := range comp {
			h.engines[id].OnView(view)
		}
	}
}

func (h *harness) all() []core.MemberID { return h.members }

func (h *harness) runFor(d time.Duration) {
	h.sim.RunFor(d)
	h.pump()
}

// checkComponent asserts Property 1 within one component whose members are
// all in RUN: identical tables, every group covered exactly once, and the
// physical address sets consistent with the table.
func (h *harness) checkComponent(comp []core.MemberID, wantCovered bool) {
	h.t.Helper()
	ref := h.engines[comp[0]].Snapshot()
	if ref.State != core.StateRun {
		h.t.Fatalf("%s state = %v, want run", comp[0], ref.State)
	}
	for _, id := range comp[1:] {
		st := h.engines[id].Snapshot()
		if st.State != core.StateRun {
			h.t.Fatalf("%s state = %v, want run", id, st.State)
		}
		if st.ViewID != ref.ViewID {
			h.t.Fatalf("%s view %q != %s view %q", id, st.ViewID, comp[0], ref.ViewID)
		}
		for g, owner := range ref.Table {
			if st.Table[g] != owner {
				h.t.Fatalf("tables diverge on %q: %s says %q, %s says %q", g, comp[0], owner, id, st.Table[g])
			}
		}
	}
	inComp := map[core.MemberID]bool{}
	for _, id := range comp {
		inComp[id] = true
	}
	for g, owner := range ref.Table {
		if wantCovered {
			if owner == "" {
				h.t.Fatalf("group %q uncovered in RUN", g)
			}
			if !inComp[owner] {
				h.t.Fatalf("group %q owned by %q outside the component", g, owner)
			}
		}
	}
	// Physical exactly-once: each address held by exactly the table owner.
	for _, id := range comp {
		st := h.engines[id].Snapshot()
		for _, g := range st.Owned {
			if ref.Table[g] != id {
				h.t.Fatalf("%s holds %q but table says %q", id, g, ref.Table[g])
			}
		}
	}
	for g, owner := range ref.Table {
		if owner == "" {
			continue
		}
		found := false
		for _, og := range h.engines[owner].Snapshot().Owned {
			if og == g {
				found = true
			}
		}
		if !found {
			h.t.Fatalf("table assigns %q to %s but it does not hold it", g, owner)
		}
	}
}

func matureConfig(n int) core.Config {
	return core.Config{Groups: groups(n), StartMature: true}
}

func TestInitialViewCoversAllGroupsExactlyOnce(t *testing.T) {
	h := newHarness(t, 3, matureConfig(10))
	h.setPartition(h.all())
	h.pump()
	h.checkComponent(h.all(), true)
	// Allocation is balanced by the deterministic least-loaded rule.
	counts := h.engines[h.members[0]].AllocationCounts()
	for _, id := range h.members {
		if counts[id] < 3 || counts[id] > 4 {
			t.Fatalf("initial allocation skewed: %v", counts)
		}
	}
}

func TestSingletonCoversEverything(t *testing.T) {
	h := newHarness(t, 1, matureConfig(5))
	h.setPartition(h.all())
	h.pump()
	h.checkComponent(h.all(), true)
	if got := len(h.engines[h.members[0]].Snapshot().Owned); got != 5 {
		t.Fatalf("singleton owns %d groups, want 5", got)
	}
}

func TestPartitionEachSideCoversAll(t *testing.T) {
	h := newHarness(t, 4, matureConfig(8))
	h.setPartition(h.all())
	h.pump()
	a := []core.MemberID{h.members[0], h.members[1]}
	b := []core.MemberID{h.members[2], h.members[3]}
	h.setPartition(a, b)
	h.pump()
	h.checkComponent(a, true)
	h.checkComponent(b, true)
	// Each side must cover the complete set independently (Property 1 per
	// maximal connected component).
	for _, side := range [][]core.MemberID{a, b} {
		total := 0
		for _, id := range side {
			total += len(h.engines[id].Snapshot().Owned)
		}
		if total != 8 {
			t.Fatalf("side %v owns %d groups in total, want 8", side, total)
		}
	}
}

func TestMergeResolvesAllConflicts(t *testing.T) {
	h := newHarness(t, 4, matureConfig(8))
	h.setPartition(h.all())
	h.pump()
	a := []core.MemberID{h.members[0], h.members[1]}
	b := []core.MemberID{h.members[2], h.members[3]}
	h.setPartition(a, b)
	h.pump()
	h.setPartition(h.all())
	h.pump()
	h.checkComponent(h.all(), true)
	// After the merge every address is held exactly once in total.
	total := 0
	for _, id := range h.members {
		total += len(h.engines[id].Snapshot().Owned)
	}
	if total != 8 {
		t.Fatalf("after merge %d groups held in total, want 8", total)
	}
	// Conflicts must actually have been detected and dropped.
	drops := 0
	for _, id := range h.members {
		for _, ev := range h.events[id] {
			if ev.Kind == core.EventConflictDrop {
				drops++
			}
		}
	}
	if drops == 0 {
		t.Fatal("merge of two full coverages produced no conflict drops")
	}
}

// TestConflictRuleEarlierMemberReleases pins the §3.3 rule: of two servers
// covering the same address, the one earlier in the ordered membership list
// releases it.
func TestConflictRuleEarlierMemberReleases(t *testing.T) {
	h := newHarness(t, 2, matureConfig(1))
	a, b := h.members[0], h.members[1]
	// Give each side full coverage in isolation.
	h.setPartition([]core.MemberID{a}, []core.MemberID{b})
	h.pump()
	// Merge: both claim vip00; a precedes b in the ordered list.
	h.setPartition([]core.MemberID{a, b})
	h.pump()
	st := h.engines[a].Snapshot()
	if st.Table["vip00"] != b {
		t.Fatalf("conflict winner = %q, want later member %q", st.Table["vip00"], b)
	}
	if len(h.engines[a].Snapshot().Owned) != 0 {
		t.Fatal("earlier member still holds the conflicted group")
	}
	if len(h.engines[b].Snapshot().Owned) != 1 {
		t.Fatal("later member does not hold the conflicted group")
	}
}

func TestCascadingViewChangeResendsState(t *testing.T) {
	h := newHarness(t, 3, matureConfig(6))
	h.setPartition(h.all())
	h.pump()
	before := h.engines[h.members[0]].Snapshot().Table
	// Start a new view but deliver nothing (interrupted GATHER), then
	// cascade into another view and let it complete.
	h.setPartition(h.all())
	if h.engines[h.members[0]].Snapshot().State != core.StateGather {
		t.Fatal("engine not in GATHER after view change")
	}
	h.setPartition(h.all())
	h.pump()
	h.checkComponent(h.all(), true)
	after := h.engines[h.members[0]].Snapshot().Table
	for g, owner := range before {
		if after[g] != owner {
			t.Fatalf("stable membership reshuffled %q: %q -> %q", g, owner, after[g])
		}
	}
}

func TestStaleStateMessagesIgnored(t *testing.T) {
	h := newHarness(t, 2, matureConfig(2))
	h.setPartition(h.all())
	// Capture the STATE_MSGs of view 1, don't deliver them.
	stale := append([]qmsg(nil), h.queue...)
	h.setPartition(h.all())
	h.pump()
	h.checkComponent(h.all(), true)
	ref := h.engines[h.members[0]].Snapshot()
	// Replay the stale messages: they must change nothing.
	for _, m := range stale {
		for _, id := range h.members {
			h.engines[id].OnMessage(m.from, m.payload)
		}
	}
	after := h.engines[h.members[0]].Snapshot()
	if after.State != ref.State || after.ViewID != ref.ViewID {
		t.Fatal("stale messages disturbed the engine")
	}
	for g := range ref.Table {
		if after.Table[g] != ref.Table[g] {
			t.Fatalf("stale message changed table entry %q", g)
		}
	}
}

func TestFailedNodeAddressesReallocated(t *testing.T) {
	h := newHarness(t, 3, matureConfig(9))
	h.setPartition(h.all())
	h.pump()
	victim := h.members[2]
	owned := h.engines[victim].Snapshot().Owned
	if len(owned) == 0 {
		t.Fatal("victim owns nothing; test is vacuous")
	}
	// The victim crashes: survivors get a view without it.
	survivors := []core.MemberID{h.members[0], h.members[1]}
	h.setPartition(survivors)
	h.pump()
	h.checkComponent(survivors, true)
	total := 0
	for _, id := range survivors {
		total += len(h.engines[id].Snapshot().Owned)
	}
	if total != 9 {
		t.Fatalf("survivors own %d groups, want 9", total)
	}
}

func TestDeterminismAcrossIdenticalRuns(t *testing.T) {
	run := func() map[string]core.MemberID {
		h := newHarness(t, 5, matureConfig(12))
		h.setPartition(h.all())
		h.pump()
		h.setPartition(h.members[:2], h.members[2:])
		h.pump()
		h.setPartition(h.all())
		h.pump()
		return h.engines[h.members[0]].Snapshot().Table
	}
	a, b := run(), run()
	for g := range a {
		if a[g] != b[g] {
			t.Fatalf("nondeterministic allocation for %q: %q vs %q", g, a[g], b[g])
		}
	}
}

func TestBalanceEvensOutSkew(t *testing.T) {
	cfg := matureConfig(10)
	cfg.BalanceTimeout = 5 * time.Second
	h := newHarness(t, 2, cfg)
	a, b := h.members[0], h.members[1]
	// a alone absorbs everything, then b arrives with nothing.
	h.setPartition([]core.MemberID{a})
	h.pump()
	h.setPartition([]core.MemberID{a, b})
	h.pump()
	counts := h.engines[a].AllocationCounts()
	if counts[a] != 10 || counts[b] != 0 {
		t.Fatalf("pre-balance allocation = %v, want all on a", counts)
	}
	h.runFor(6 * time.Second)
	h.checkComponent(h.all(), true)
	counts = h.engines[a].AllocationCounts()
	if counts[a] != 5 || counts[b] != 5 {
		t.Fatalf("post-balance allocation = %v, want 5/5", counts)
	}
}

func TestBalanceHonoursPreferences(t *testing.T) {
	cfg := matureConfig(4)
	cfg.BalanceTimeout = 5 * time.Second
	h := newHarness(t, 2, cfg)
	// Rebuild engine b with preferences for vip00 and vip01.
	prefCfg := cfg
	prefCfg.Prefer = []string{"vip00", "vip01"}
	b := h.members[1]
	be := &ipmgr.FakeBackend{}
	mgr := ipmgr.New(be)
	e, err := core.NewEngine(prefCfg, core.Deps{
		Self:  b,
		Cast:  func(p []byte) error { h.queue = append(h.queue, qmsg{from: b, payload: p}); return nil },
		IPs:   mgr,
		Clock: h.sim,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Start()
	h.engines[b] = e
	h.mgrs[b] = mgr

	a := h.members[0]
	h.setPartition([]core.MemberID{a})
	h.pump()
	h.setPartition([]core.MemberID{a, b})
	h.pump()
	h.runFor(6 * time.Second)
	h.checkComponent(h.all(), true)
	st := h.engines[a].Snapshot()
	if st.Table["vip00"] != b || st.Table["vip01"] != b {
		t.Fatalf("preferences not honoured: %v", st.Table)
	}
	counts := h.engines[a].AllocationCounts()
	if counts[a] != 2 || counts[b] != 2 {
		t.Fatalf("post-balance allocation = %v, want 2/2", counts)
	}
}

func TestBalanceDisabledLeavesSkew(t *testing.T) {
	cfg := matureConfig(10)
	cfg.BalanceTimeout = 5 * time.Second
	cfg.DisableBalance = true
	h := newHarness(t, 2, cfg)
	a, b := h.members[0], h.members[1]
	h.setPartition([]core.MemberID{a})
	h.pump()
	h.setPartition([]core.MemberID{a, b})
	h.pump()
	h.runFor(30 * time.Second)
	counts := h.engines[a].AllocationCounts()
	if counts[a] != 10 {
		t.Fatalf("allocation moved despite balancing disabled: %v", counts)
	}
}

func TestBalanceFromNonRepresentativeIgnored(t *testing.T) {
	h := newHarness(t, 2, matureConfig(4))
	h.setPartition(h.all())
	h.pump()
	before := h.engines[h.members[0]].Snapshot().Table
	// Forge a BALANCE_MSG "from" the non-representative second member by
	// replaying a legitimate payload under its identity. Build the payload
	// by triggering a balance on a parallel skewed harness.
	h2 := newHarness(t, 2, matureConfig(4))
	h2.setPartition([]core.MemberID{h2.members[0]})
	h2.pump()
	h2.setPartition(h2.all())
	h2.pump()
	if err := h2.engines[h2.members[0]].TriggerBalance(); err != nil {
		t.Fatal(err)
	}
	if len(h2.queue) == 0 {
		t.Fatal("TriggerBalance cast nothing")
	}
	payload := h2.queue[0].payload
	for _, id := range h.members {
		h.engines[id].OnMessage(h.members[1], payload)
	}
	after := h.engines[h.members[0]].Snapshot().Table
	for g := range before {
		if after[g] != before[g] {
			t.Fatal("balance from non-representative was applied")
		}
	}
}

func TestTriggerBalanceErrors(t *testing.T) {
	h := newHarness(t, 2, matureConfig(2))
	if err := h.engines[h.members[0]].TriggerBalance(); err == nil {
		t.Fatal("TriggerBalance before RUN succeeded")
	}
	h.setPartition(h.all())
	h.pump()
	if err := h.engines[h.members[1]].TriggerBalance(); err == nil {
		t.Fatal("TriggerBalance at non-representative succeeded")
	}
	if err := h.engines[h.members[0]].TriggerBalance(); err != nil {
		t.Fatal(err)
	}
}

func TestMaturityBootstrapHoldsBackAllocation(t *testing.T) {
	cfg := core.Config{Groups: groups(6), MatureTimeout: 4 * time.Second}
	h := newHarness(t, 3, cfg)
	h.setPartition(h.all())
	h.pump()
	// All immature: RUN with nothing covered (no quick reallocation while
	// the cluster reboots, §3.4).
	for _, id := range h.members {
		st := h.engines[id].Snapshot()
		if st.State != core.StateRun {
			t.Fatalf("%s state = %v", id, st.State)
		}
		if len(st.Owned) != 0 {
			t.Fatalf("%s acquired addresses while immature", id)
		}
	}
	// After the maturity timeout the component covers everything.
	h.runFor(5 * time.Second)
	h.checkComponent(h.all(), true)
}

func TestImmatureJoinerDoesNotDisturbMatureCluster(t *testing.T) {
	cfg := core.Config{Groups: groups(6), MatureTimeout: time.Hour}
	h := newHarness(t, 3, cfg)
	a, b := h.members[0], h.members[1]
	joiner := h.members[2]
	// Mature two members via a dedicated engine config.
	for _, id := range []core.MemberID{a, b} {
		mcfg := cfg
		mcfg.StartMature = true
		be := &ipmgr.FakeBackend{}
		mgr := ipmgr.New(be)
		id := id
		e, err := core.NewEngine(mcfg, core.Deps{
			Self:  id,
			Cast:  func(p []byte) error { h.queue = append(h.queue, qmsg{from: id, payload: p}); return nil },
			IPs:   mgr,
			Clock: h.sim,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Start()
		h.engines[id] = e
		h.mgrs[id] = mgr
	}
	h.setPartition([]core.MemberID{a, b})
	h.pump()
	h.setPartition(h.all())
	h.pump()
	h.checkComponent(h.all(), true)
	// The joiner matured by contact but owns nothing yet.
	st := h.engines[joiner].Snapshot()
	if !st.Mature {
		t.Fatal("joiner did not mature on contact with a mature server")
	}
	if len(st.Owned) != 0 {
		t.Fatal("joiner grabbed addresses during reallocation")
	}
}

func TestOnDisconnectDropsEverything(t *testing.T) {
	h := newHarness(t, 2, matureConfig(4))
	h.setPartition(h.all())
	h.pump()
	e := h.engines[h.members[0]]
	if len(e.Snapshot().Owned) == 0 {
		t.Fatal("vacuous: member owns nothing")
	}
	e.OnDisconnect()
	st := e.Snapshot()
	if st.State != core.StateDetached {
		t.Fatalf("state = %v, want detached", st.State)
	}
	if len(st.Owned) != 0 {
		t.Fatal("addresses survive disconnection")
	}
	if len(h.mgrs[h.members[0]].Held()) != 0 {
		t.Fatal("manager still holds addresses after disconnect")
	}
	// Reattaching via a fresh view works.
	h.setPartition(h.all())
	h.pump()
	h.checkComponent(h.all(), true)
}

func TestLazyConflictReleaseDelaysDrop(t *testing.T) {
	cfg := matureConfig(1)
	cfg.LazyConflictRelease = true
	h := newHarness(t, 2, cfg)
	a, b := h.members[0], h.members[1]
	h.setPartition([]core.MemberID{a}, []core.MemberID{b})
	h.pump()
	h.setPartition([]core.MemberID{a, b})
	h.pump()
	// Same final outcome as eager mode.
	if len(h.engines[a].Snapshot().Owned) != 0 || len(h.engines[b].Snapshot().Owned) != 1 {
		t.Fatal("lazy conflict release reached a different final state")
	}
	// But the release event must come after both state messages, i.e. the
	// conflict-drop event precedes the release in a's log with reallocation
	// in between; minimally: a released exactly once.
	releases := 0
	for _, ev := range h.events[a] {
		if ev.Kind == core.EventRelease {
			releases++
		}
	}
	if releases != 1 {
		t.Fatalf("a released %d times, want 1", releases)
	}
}

func TestViewExcludingSelfIgnored(t *testing.T) {
	h := newHarness(t, 2, matureConfig(2))
	h.setPartition(h.all())
	h.pump()
	before := h.engines[h.members[0]].Snapshot()
	h.engines[h.members[0]].OnView(core.View{ID: "bogus", Members: []core.MemberID{"someone-else"}})
	after := h.engines[h.members[0]].Snapshot()
	if after.State != before.State || after.ViewID != before.ViewID {
		t.Fatal("view excluding self was processed")
	}
}

func TestAcquireFailureSurfacesAsEvent(t *testing.T) {
	h := newHarness(t, 1, matureConfig(2))
	id := h.members[0]
	h.backends[id].FailAcquire = func(a netip.Addr) error {
		if a == netip.AddrFrom4([4]byte{10, 0, 1, 1}) {
			return fmt.Errorf("injected failure")
		}
		return nil
	}
	h.setPartition(h.all())
	h.pump()
	foundErr := false
	for _, ev := range h.events[id] {
		if ev.Kind == core.EventError {
			foundErr = true
		}
	}
	if !foundErr {
		t.Fatal("acquire failure produced no error event")
	}
}

func TestGarbageMessagesIgnored(t *testing.T) {
	h := newHarness(t, 2, matureConfig(2))
	h.setPartition(h.all())
	h.pump()
	e := h.engines[h.members[0]]
	before := e.Snapshot()
	e.OnMessage(h.members[1], nil)
	e.OnMessage(h.members[1], []byte{0xFF, 0x00})
	e.OnMessage(h.members[1], []byte("not a wackamole message"))
	after := e.Snapshot()
	if after.State != before.State || after.ViewID != before.ViewID {
		t.Fatal("garbage disturbed the engine")
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  core.Config
	}{
		{"empty", core.Config{}},
		{"unnamed group", core.Config{Groups: []core.VIPGroup{{Addrs: groups(1)[0].Addrs}}}},
		{"duplicate name", core.Config{Groups: append(groups(1), groups(1)...)}},
		{"no addrs", core.Config{Groups: []core.VIPGroup{{Name: "g"}}}},
		{"dup addr", core.Config{Groups: []core.VIPGroup{
			{Name: "a", Addrs: groups(1)[0].Addrs},
			{Name: "b", Addrs: groups(1)[0].Addrs},
		}}},
		{"unknown pref", core.Config{Groups: groups(1), Prefer: []string{"nope"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err == nil {
				t.Fatalf("config %+v validated", tc.cfg)
			}
		})
	}
	if err := matureConfig(3).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineConstructorRequiresDeps(t *testing.T) {
	if _, err := core.NewEngine(matureConfig(1), core.Deps{}); err == nil {
		t.Fatal("NewEngine with empty deps succeeded")
	}
}

// TestRandomChurnMaintainsProperties is the property-based check of the
// paper's Properties 1 and 2: under an arbitrary schedule of partitions,
// merges and crashes, every settled component in RUN covers all groups
// exactly once with identical tables.
func TestRandomChurnMaintainsProperties(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := matureConfig(10)
			cfg.BalanceTimeout = 3 * time.Second
			h := newHarness(t, 6, cfg)
			rng := sim.New(seed).Rand()
			h.setPartition(h.all())
			h.pump()
			for step := 0; step < 8; step++ {
				// Random partition of the members into 1-3 components.
				k := 1 + rng.Intn(3)
				comps := make([][]core.MemberID, k)
				for _, id := range h.members {
					c := rng.Intn(k)
					comps[c] = append(comps[c], id)
				}
				var nonEmpty [][]core.MemberID
				for _, c := range comps {
					if len(c) > 0 {
						nonEmpty = append(nonEmpty, c)
					}
				}
				h.setPartition(nonEmpty...)
				h.pump()
				if rng.Intn(2) == 0 {
					h.runFor(4 * time.Second) // let balancing kick in sometimes
				}
				for _, compMembers := range nonEmpty {
					h.checkComponent(compMembers, true)
				}
			}
			// Finally merge everything and verify global exactly-once.
			h.setPartition(h.all())
			h.pump()
			h.checkComponent(h.all(), true)
			total := 0
			for _, id := range h.members {
				total += len(h.engines[id].Snapshot().Owned)
			}
			if total != 10 {
				t.Fatalf("global coverage = %d, want 10", total)
			}
		})
	}
}

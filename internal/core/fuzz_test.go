package core

import "testing"

// FuzzDecode throws arbitrary bytes at the Wackamole message decoder; the
// engine receives whatever the group delivers, so it must never panic.
func FuzzDecode(f *testing.F) {
	f.Add(stateMsg{ViewID: "v1", Mature: true, Owned: []string{"vip00"}, Prefer: []string{"vip00"}}.encode())
	f.Add(balanceMsg{ViewID: "v1", Alloc: []allocPair{{Group: "vip00", Owner: "m00"}}}.encode())
	f.Add(balanceMsg{ViewID: "v1", Alloc: []allocPair{{Group: "vip00", Owner: "m00"}}}.encodeAs(kindAlloc))
	f.Add(matureMsg{ViewID: "v1"}.encode())
	f.Add([]byte{})
	f.Add([]byte{coreMagic, coreVer, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decode(data)
	})
}

func TestDecodeRejectsWrongMagicAndVersion(t *testing.T) {
	if _, err := decode([]byte{'x', coreVer, 1}); err == nil {
		t.Fatal("wrong magic accepted")
	}
	if _, err := decode([]byte{coreMagic, 99, 1}); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := decode([]byte{coreMagic, coreVer, 99}); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	st := stateMsg{ViewID: "ring/3:9", Mature: true, Owned: []string{"a", "b"}, Prefer: []string{"a"}}
	d, err := decode(st.encode())
	if err != nil || d.kind != kindState {
		t.Fatalf("state decode: %+v %v", d, err)
	}
	if d.state.ViewID != st.ViewID || !d.state.Mature || len(d.state.Owned) != 2 || len(d.state.Prefer) != 1 {
		t.Fatalf("state round trip: %+v", d.state)
	}

	bal := balanceMsg{ViewID: "v", Alloc: []allocPair{{Group: "g1", Owner: "m1"}, {Group: "g2", Owner: ""}}}
	d, err = decode(bal.encode())
	if err != nil || d.kind != kindBalance {
		t.Fatalf("balance decode: %+v %v", d, err)
	}
	if len(d.balance.Alloc) != 2 || d.balance.Alloc[1].Owner != "" {
		t.Fatalf("balance round trip: %+v", d.balance)
	}

	d, err = decode(bal.encodeAs(kindAlloc))
	if err != nil || d.kind != kindAlloc {
		t.Fatalf("alloc decode: %+v %v", d, err)
	}

	d, err = decode(matureMsg{ViewID: "v9"}.encode())
	if err != nil || d.kind != kindMature || d.mature.ViewID != "v9" {
		t.Fatalf("mature round trip: %+v %v", d, err)
	}
}

package core

import (
	"fmt"

	"wackamole/internal/wire"
)

// kind discriminates Wackamole's group messages.
type kind uint8

const (
	// kindState is the STATE_MSG of Algorithms 1–2: the sender's currently
	// held groups, its maturity, and its startup preferences, tagged with
	// the view it was initiated in.
	kindState kind = iota + 1
	// kindBalance is the BALANCE_MSG of Algorithm 3: the representative's
	// new allocation for the whole component.
	kindBalance
	// kindMature announces that a server declared itself mature after the
	// bootstrap timeout expired (§3.4).
	kindMature
	// kindAlloc is the representative's imposed allocation at the end of
	// GATHER (the §4.2 representative-decisions variant). Same payload as
	// kindBalance, but accepted during GATHER.
	kindAlloc
)

type stateMsg struct {
	ViewID string
	Mature bool
	Owned  []string // group names, sorted
	Prefer []string
}

type balanceMsg struct {
	ViewID string
	// Alloc lists (group, owner) pairs sorted by group name, covering every
	// configured group.
	Alloc []allocPair
}

type allocPair struct {
	Group string
	Owner MemberID
}

type matureMsg struct {
	ViewID string
}

const (
	coreMagic uint8 = 'w'
	coreVer   uint8 = 1
)

func (m stateMsg) encode() []byte {
	w := wire.NewWriter(128)
	w.U8(coreMagic)
	w.U8(coreVer)
	w.U8(uint8(kindState))
	w.String(m.ViewID)
	w.Bool(m.Mature)
	w.StringList(m.Owned)
	w.StringList(m.Prefer)
	return w.Bytes()
}

func (m balanceMsg) encode() []byte { return m.encodeAs(kindBalance) }

// encodeAs serializes the allocation under the given message kind
// (kindBalance for re-balancing, kindAlloc for representative decisions).
func (m balanceMsg) encodeAs(k kind) []byte {
	w := wire.NewWriter(128)
	w.U8(coreMagic)
	w.U8(coreVer)
	w.U8(uint8(k))
	w.String(m.ViewID)
	w.U16(uint16(len(m.Alloc)))
	for _, p := range m.Alloc {
		w.String(p.Group)
		w.String(string(p.Owner))
	}
	return w.Bytes()
}

func (m matureMsg) encode() []byte {
	w := wire.NewWriter(32)
	w.U8(coreMagic)
	w.U8(coreVer)
	w.U8(uint8(kindMature))
	w.String(m.ViewID)
	return w.Bytes()
}

// decoded is the union of the message variants.
type decoded struct {
	kind    kind
	state   stateMsg
	balance balanceMsg
	mature  matureMsg
}

func decode(b []byte) (decoded, error) {
	r := wire.NewReader(b)
	if r.U8() != coreMagic {
		return decoded{}, fmt.Errorf("core: bad magic")
	}
	if v := r.U8(); v != coreVer {
		return decoded{}, fmt.Errorf("core: unsupported message version %d", v)
	}
	k := kind(r.U8())
	switch k {
	case kindState:
		m := stateMsg{ViewID: r.String(), Mature: r.Bool(), Owned: r.StringList(), Prefer: r.StringList()}
		return decoded{kind: k, state: m}, r.Done()
	case kindBalance, kindAlloc:
		m := balanceMsg{ViewID: r.String()}
		n := int(r.U16())
		for i := 0; i < n; i++ {
			m.Alloc = append(m.Alloc, allocPair{Group: r.String(), Owner: MemberID(r.String())})
		}
		return decoded{kind: k, balance: m}, r.Done()
	case kindMature:
		return decoded{kind: k, mature: matureMsg{ViewID: r.String()}}, r.Done()
	default:
		return decoded{}, fmt.Errorf("core: unknown message kind %d", k)
	}
}

package core_test

import (
	"errors"
	"fmt"
	"net/netip"
	"testing"
	"time"

	"wackamole/internal/arp"
	"wackamole/internal/core"
	"wackamole/internal/ipmgr"
	"wackamole/internal/sim"
)

func TestStateAndEventStrings(t *testing.T) {
	for want, s := range map[string]core.State{
		"detached": core.StateDetached, "gather": core.StateGather, "run": core.StateRun,
	} {
		if s.String() != want {
			t.Fatalf("%v.String() = %q", s, s.String())
		}
	}
	if core.State(99).String() == "" {
		t.Fatal("unknown state empty")
	}
	kinds := []core.EventKind{
		core.EventStateChange, core.EventAcquire, core.EventRelease,
		core.EventConflictDrop, core.EventBalanceApplied, core.EventMatured, core.EventError,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Fatalf("EventKind %d string %q duplicated or empty", k, s)
		}
		seen[s] = true
	}
	if core.EventKind(99).String() == "" {
		t.Fatal("unknown event kind empty")
	}
}

func TestEngineSelfAndStop(t *testing.T) {
	h := newHarness(t, 1, matureConfig(2))
	e := h.engines[h.members[0]]
	if e.Self() != h.members[0] {
		t.Fatalf("Self = %q", e.Self())
	}
	e.Stop() // must be safe before any view
}

func TestSetNotifierReceivesAnnouncements(t *testing.T) {
	h := newHarness(t, 1, matureConfig(3))
	e := h.engines[h.members[0]]
	var announced []netip.Addr
	e.SetNotifier(recorder{&announced})
	h.setPartition(h.all())
	h.pump()
	if len(announced) != 3 {
		t.Fatalf("announced %d addresses, want 3", len(announced))
	}
	e.SetNotifier(nil) // must not panic on later releases
	e.OnDisconnect()
}

type recorder struct{ out *[]netip.Addr }

func (r recorder) Announce(a netip.Addr) { *r.out = append(*r.out, a) }
func (r recorder) Withdraw(netip.Addr)   {}

var _ arp.Notifier = recorder{}

func TestReleaseFailureSurfacesAsEvent(t *testing.T) {
	h := newHarness(t, 2, matureConfig(2))
	a := h.members[0]
	h.backends[a].FailRelease = func(netip.Addr) error { return errors.New("stuck address") }
	h.setPartition([]core.MemberID{a})
	h.pump()
	// Force a release via disconnect.
	h.engines[a].OnDisconnect()
	foundErr := false
	for _, ev := range h.events[a] {
		if ev.Kind == core.EventError {
			foundErr = true
		}
	}
	if !foundErr {
		t.Fatal("release failure produced no error event")
	}
}

func TestMatureMsgIdempotent(t *testing.T) {
	cfg := core.Config{Groups: groups(4), MatureTimeout: 3 * time.Second}
	h := newHarness(t, 2, cfg)
	h.setPartition(h.all())
	h.pump()
	// Both servers' timers fire in the same window: two MATURE casts, the
	// second a no-op.
	h.runFor(5 * time.Second)
	h.checkComponent(h.all(), true)
	total := 0
	for _, id := range h.members {
		total += len(h.engines[id].Snapshot().Owned)
	}
	if total != 4 {
		t.Fatalf("coverage %d, want 4", total)
	}
}

func TestBalanceTimerNoCastWhenAlreadyBalanced(t *testing.T) {
	cfg := matureConfig(4)
	cfg.BalanceTimeout = 3 * time.Second
	h := newHarness(t, 2, cfg)
	h.setPartition(h.all())
	h.pump()
	// Initial allocation is already 2/2: the timer must fire without
	// casting a BALANCE_MSG.
	h.sim.RunFor(4 * time.Second)
	if len(h.queue) != 0 {
		t.Fatalf("balanced cluster cast %d messages on the balance timer", len(h.queue))
	}
	// And the timer re-armed: skew it later and verify balancing happens.
	balances := 0
	for _, id := range h.members {
		id := id
		h.engines[id].SetEventHook(func(ev core.Event) {
			if ev.Kind == core.EventBalanceApplied {
				balances++
			}
		})
	}
	// Isolate both: each covers everything; the merge hands all conflicted
	// groups to the later member, leaving a 0/4 skew for the balancer.
	h.setPartition([]core.MemberID{h.members[0]}, []core.MemberID{h.members[1]})
	h.pump()
	h.setPartition(h.all())
	h.pump()
	counts := h.engines[h.members[0]].AllocationCounts()
	if counts[h.members[1]] != 4 {
		t.Fatalf("setup: expected full skew, got %v", counts)
	}
	h.runFor(4 * time.Second)
	if balances == 0 {
		t.Fatal("skewed cluster never rebalanced after a re-armed timer")
	}
}

func TestMatureTimeoutDefaultApplied(t *testing.T) {
	cfg := core.Config{Groups: groups(2)} // MatureTimeout zero → 5s default
	h := newHarness(t, 1, cfg)
	h.setPartition(h.all())
	h.pump()
	h.runFor(4 * time.Second)
	if n := len(h.engines[h.members[0]].Snapshot().Owned); n != 0 {
		t.Fatalf("owned %d before the default maturity timeout", n)
	}
	h.runFor(2 * time.Second)
	h.checkComponent(h.all(), true)
}

func TestCastFailureEmitsErrorEvent(t *testing.T) {
	clock := sim.New(1)
	var events []core.Event
	e, err := core.NewEngine(matureConfig(2), core.Deps{
		Self:  "m00",
		Cast:  func([]byte) error { return errors.New("network unplugged") },
		IPs:   ipmgr.New(&ipmgr.FakeBackend{}),
		Clock: clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.SetEventHook(func(ev core.Event) { events = append(events, ev) })
	e.Start()
	e.OnView(core.View{ID: "v1", Members: []core.MemberID{"m00"}})
	foundErr := false
	for _, ev := range events {
		if ev.Kind == core.EventError {
			foundErr = true
		}
	}
	if !foundErr {
		t.Fatal("cast failure produced no error event")
	}
}

func TestAllocationCountsIgnoresUncovered(t *testing.T) {
	h := newHarness(t, 2, matureConfig(4))
	h.setPartition(h.all())
	// Before any STATE delivery the table is empty.
	if n := len(h.engines[h.members[0]].AllocationCounts()); n != 0 {
		t.Fatalf("empty table yields counts %d", n)
	}
	h.pump()
	counts := h.engines[h.members[0]].AllocationCounts()
	sum := 0
	for _, n := range counts {
		sum += n
	}
	if sum != 4 {
		t.Fatalf("counts sum to %d, want 4 (%v)", sum, counts)
	}
}

func TestViewWithSingleMemberAfterLargerView(t *testing.T) {
	h := newHarness(t, 3, matureConfig(6))
	h.setPartition(h.all())
	h.pump()
	// Everyone else vanishes: three singleton components at once.
	h.setPartition([]core.MemberID{h.members[0]}, []core.MemberID{h.members[1]}, []core.MemberID{h.members[2]})
	h.pump()
	for _, id := range h.members {
		st := h.engines[id].Snapshot()
		if st.State != core.StateRun || len(st.Owned) != 6 {
			t.Fatalf("%s: state=%v owned=%d, want run with full coverage", id, st.State, len(st.Owned))
		}
	}
}

func TestQuickBalancedAllocationInvariants(t *testing.T) {
	// Property: for any churn pattern, after balancing every group is
	// covered and the per-member spread is at most one.
	for seed := int64(0); seed < 15; seed++ {
		cfg := matureConfig(9)
		cfg.BalanceTimeout = 2 * time.Second
		h := newHarness(t, 3, cfg)
		rng := sim.New(seed).Rand()
		h.setPartition(h.all())
		h.pump()
		// Random fail/merge churn.
		for i := 0; i < 3; i++ {
			k := 1 + rng.Intn(2)
			if k == 1 {
				h.setPartition(h.all())
			} else {
				cut := 1 + rng.Intn(2)
				h.setPartition(h.members[:cut], h.members[cut:])
			}
			h.pump()
		}
		h.setPartition(h.all())
		h.pump()
		h.runFor(3 * time.Second)
		h.checkComponent(h.all(), true)
		counts := h.engines[h.members[0]].AllocationCounts()
		minC, maxC := 9, 0
		for _, id := range h.members {
			n := counts[id]
			if n < minC {
				minC = n
			}
			if n > maxC {
				maxC = n
			}
		}
		if maxC-minC > 1 {
			t.Fatalf("seed %d: allocation spread %d (%v)", seed, maxC-minC, counts)
		}
	}
}

func TestOwnedSortedInSnapshot(t *testing.T) {
	h := newHarness(t, 1, matureConfig(5))
	h.setPartition(h.all())
	h.pump()
	owned := h.engines[h.members[0]].Snapshot().Owned
	for i := 1; i < len(owned); i++ {
		if owned[i-1] >= owned[i] {
			t.Fatalf("Owned not sorted: %v", owned)
		}
	}
	want := fmt.Sprintf("vip%02d", 0)
	if owned[0] != want {
		t.Fatalf("owned[0] = %q, want %q", owned[0], want)
	}
}

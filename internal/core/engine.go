package core

import (
	"fmt"
	"net/netip"
	"sort"
	"sync/atomic"
	"time"

	"wackamole/internal/arp"
	"wackamole/internal/env"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
	"wackamole/internal/placement"
)

// AddressOwner acquires and releases virtual addresses on the local machine
// (implemented by ipmgr.Manager).
type AddressOwner interface {
	Acquire(a netip.Addr) error
	Release(a netip.Addr) error
}

// Deps are the runtime dependencies handed to an Engine.
type Deps struct {
	// Self is this member's identity within the group.
	Self MemberID
	// Cast multicasts payload to the whole group with Agreed delivery,
	// including self.
	Cast func(payload []byte) error
	// IPs performs the actual address acquisition and release.
	IPs AddressOwner
	// Notify announces ownership changes (ARP spoofing, §5.1). Nil means no
	// notification.
	Notify arp.Notifier
	// Clock schedules the balance and maturity timers.
	Clock env.Clock
	// Log receives diagnostics. Nil means discard.
	Log env.Logger
}

// Engine is one server's instance of the Wackamole state-synchronization
// algorithm. Feed it OnView, OnMessage and OnDisconnect from the group
// layer; it keeps the local machine's virtual address set in line with the
// replicated allocation table.
type Engine struct {
	cfg  Config
	deps Deps

	state  State
	mature bool
	view   View

	// table is current_table: the replicated allocation. Identical at every
	// member of the view once GATHER completes (Lemma 1 of the paper).
	table map[string]MemberID
	// owned is the ground truth of what this node has actually acquired,
	// keyed by group name. It is what STATE_MSGs advertise: after a
	// cascading view change the collected table is discarded and the
	// resent STATE_MSG reflects exactly this set (Algorithm 2, lines 7–9).
	owned map[string]bool

	// Per-view gather bookkeeping.
	stateFrom map[MemberID]bool
	matureOf  map[MemberID]bool
	prefsOf   map[MemberID][]string
	// gatherComplete is set once every member's STATE_MSG arrived; in the
	// representative-decisions variant the engine then waits in GATHER for
	// the representative's ALLOC message.
	gatherComplete bool
	// pendingDrops holds conflict losses awaiting release when
	// LazyConflictRelease is set (ablation of the §3.4 eager-release
	// optimization).
	pendingDrops []string

	groupsByName map[string]VIPGroup
	sortedNames  []string

	// Placement plane: the policy that plans allocations, its reusable
	// scratch, and the per-group last-recorded owner that attributes
	// placement moves (persistent across views, unlike the table, which is
	// rebuilt every GATHER).
	placer        placement.Policy
	planScratch   []placement.Decision
	memberScratch []string
	ownerFn       func(group string) string
	prefersFn     func(member, group string) bool
	lastOwner     map[string]MemberID

	balanceTimer env.Timer
	matureTimer  env.Timer

	hook     func(Event)
	viewHook func(View)
	ownHook  func(group string, owned bool, viewID string)
	tracer   *obs.Tracer
	stats    engineCounters

	// Latency instruments (nil when no registry is installed; a nil
	// histogram's Observe is a zero-allocation no-op). gatherStart is
	// observation state for the current GATHER episode.
	mStateSync   *metrics.Histogram
	mAnnounceLag *metrics.Histogram
	mMoves       *metrics.Counter
	mSkew        *metrics.Gauge
	gatherStart  time.Time
}

// Stats counts the engine's address-management actions since Start; the
// experiment harness aggregates them across a cluster to attribute observed
// traffic and interruptions to reallocation activity.
type Stats struct {
	// Acquires and Releases count individual virtual addresses acquired
	// and released (not groups).
	Acquires uint64
	Releases uint64
	// Announces counts ownership-change notifications requested from the
	// notifier (§5.1 ARP spoofing; the notifier may suppress them).
	Announces uint64
	// Moves counts placement moves: transitions of a group's table owner
	// from one member to another (first assignments are takeovers, not
	// moves). Identical at every member of a connected component, because
	// the table transitions are replicated.
	Moves uint64
	// Skew is the current spread between the most and least loaded
	// eligible members (0 with fewer than two eligible members).
	Skew int64
}

// engineCounters are the live counters behind Stats: atomics, because
// Stats() is polled from outside the group-event loop (administrative
// channel, /metrics, wackmon).
type engineCounters struct {
	acquires  atomic.Uint64
	releases  atomic.Uint64
	announces atomic.Uint64
	moves     atomic.Uint64
	skew      atomic.Int64
}

// Stats returns a snapshot of the engine's activity counters. Unlike the
// rest of the engine's methods it is safe to call from any goroutine.
func (e *Engine) Stats() Stats {
	return Stats{
		Acquires:  e.stats.acquires.Load(),
		Releases:  e.stats.releases.Load(),
		Announces: e.stats.announces.Load(),
		Moves:     e.stats.moves.Load(),
		Skew:      e.stats.skew.Load(),
	}
}

// PlacementName reports the config-directive name of the active placement
// policy. Safe from any goroutine (the policy is fixed at construction).
func (e *Engine) PlacementName() string { return e.placer.Name() }

// SetTracer installs a structured event tracer (nil disables tracing).
// Call before Start.
func (e *Engine) SetTracer(t *obs.Tracer) { e.tracer = t }

// SetMetrics installs a latency-metrics registry (nil disables measurement).
// Call before Start.
func (e *Engine) SetMetrics(r *metrics.Registry) {
	node := metrics.L("node", string(e.deps.Self))
	e.mStateSync = r.Histogram("core_state_sync_seconds",
		"duration of the GATHER state-synchronization round, from view delivery to entering RUN", node)
	e.mAnnounceLag = r.Histogram("core_announce_lag_seconds",
		"lag from view delivery to the ownership announcement of each address acquired in that round", node)
	e.mMoves = r.Counter("placement_moves_total",
		"VIP groups whose table owner changed from one member to another (reconfiguration churn)", node)
	e.mSkew = r.Gauge("placement_skew",
		"spread between the most and least loaded eligible members of the current view", node)
}

// trace emits a core-layer event tagged with this member's identity.
func (e *Engine) trace(k obs.Kind, group, addr, detail string) {
	e.tracer.Emit(obs.Event{Source: obs.SourceCore, Kind: k,
		Node: string(e.deps.Self), Group: group, Addr: addr, Detail: detail})
}

// NewEngine validates the configuration and returns an Engine in the
// detached state. Call Start, then feed it group events.
func NewEngine(cfg Config, deps Deps) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if deps.Self == "" || deps.Cast == nil || deps.IPs == nil || deps.Clock == nil {
		return nil, fmt.Errorf("core: Deps requires Self, Cast, IPs and Clock")
	}
	if deps.Notify == nil {
		deps.Notify = arp.NopNotifier{}
	}
	if deps.Log == nil {
		deps.Log = env.NopLogger{}
	}
	placer := cfg.Placer
	if placer == nil {
		placer = placement.NewLeastLoaded()
	}
	e := &Engine{
		cfg:          cfg,
		deps:         deps,
		state:        StateDetached,
		mature:       cfg.StartMature,
		table:        map[string]MemberID{},
		owned:        map[string]bool{},
		groupsByName: map[string]VIPGroup{},
		sortedNames:  cfg.sortedGroupNames(),
		placer:       placer,
		lastOwner:    map[string]MemberID{},
	}
	for _, g := range cfg.Groups {
		e.groupsByName[g.Name] = g
	}
	// The placement closures are built once: policies read the replicated
	// state through them on every planning call without allocating.
	e.ownerFn = func(g string) string { return string(e.table[g]) }
	e.prefersFn = func(member, g string) bool {
		for _, p := range e.prefsOf[MemberID(member)] {
			if p == g {
				return true
			}
		}
		return false
	}
	return e, nil
}

// SetEventHook registers an observer for engine transitions (experiments
// and tests use it to timestamp reallocation).
func (e *Engine) SetEventHook(h func(Event)) { e.hook = h }

// SetViewHook registers a typed observer that runs once per view the engine
// installs, after the view is recorded but before any STATE_MSG exchange.
// Unlike the stringly-typed event hook it receives the full membership list,
// which is what protocol checkers need to compare installation order across
// engines. The handler receives a private copy; nil (the default) costs
// nothing. Call before Start.
func (e *Engine) SetViewHook(h func(View)) { e.viewHook = h }

// SetOwnershipHook registers a typed observer for address-group ownership
// transitions: it runs after every successful acquire (owned=true) and
// release (owned=false) with the ID of the view the engine held at that
// moment (empty when detached). Nil (the default) costs nothing. Call
// before Start.
func (e *Engine) SetOwnershipHook(h func(group string, owned bool, viewID string)) {
	e.ownHook = h
}

// AddViewHook chains h after any previously registered view hook, so
// independent observers (invariant monitor, flight recorder) can coexist
// without clobbering each other. Call before Start.
func (e *Engine) AddViewHook(h func(View)) {
	if h == nil {
		return
	}
	if prev := e.viewHook; prev != nil {
		e.viewHook = func(v View) { prev(v); h(v) }
		return
	}
	e.viewHook = h
}

// AddOwnershipHook chains h after any previously registered ownership hook.
// Call before Start.
func (e *Engine) AddOwnershipHook(h func(group string, owned bool, viewID string)) {
	if h == nil {
		return
	}
	if prev := e.ownHook; prev != nil {
		e.ownHook = func(g string, owned bool, viewID string) { prev(g, owned, viewID); h(g, owned, viewID) }
		return
	}
	e.ownHook = h
}

// SetNotifier replaces the ownership-change notifier. Applications that
// need the daemon to exist before they can build their notifier (the §5.2
// ARP-cache sharer) install it here after construction; call before Start.
func (e *Engine) SetNotifier(n arp.Notifier) {
	if n == nil {
		n = arp.NopNotifier{}
	}
	e.deps.Notify = n
}

func (e *Engine) emit(k EventKind, group, detail string) {
	if e.hook != nil {
		e.hook(Event{Kind: k, Group: group, Detail: detail})
	}
}

// Start arms the maturity bootstrap (§3.4): a fresh server manages no
// addresses until it meets a mature server or its maturity timeout expires.
func (e *Engine) Start() {
	if e.mature {
		return
	}
	e.matureTimer = e.deps.Clock.AfterFunc(e.cfg.matureTimeout(), e.onMatureTimeout)
}

// Stop cancels the engine's timers. It does not release addresses; use
// OnDisconnect for the full §4.2 teardown.
func (e *Engine) Stop() {
	stopTimer(e.balanceTimer)
	stopTimer(e.matureTimer)
}

func stopTimer(t env.Timer) {
	if t != nil {
		t.Stop()
	}
}

// Self returns this engine's member identity.
func (e *Engine) Self() MemberID { return e.deps.Self }

// Snapshot returns a copy of the engine's observable state.
func (e *Engine) Snapshot() Status {
	st := Status{
		State:  e.state,
		Mature: e.mature,
		ViewID: e.view.ID,
		Table:  make(map[string]MemberID, len(e.table)),
	}
	st.Members = append(st.Members, e.view.Members...)
	for _, name := range e.sortedNames {
		st.Table[name] = e.table[name]
	}
	for name := range e.owned {
		st.Owned = append(st.Owned, name)
	}
	sort.Strings(st.Owned)
	return st
}

// OnView handles a VIEW_CHANGE event (Algorithm 1 lines 1–4; Algorithm 2
// lines 7–9 when it cascades into an ongoing GATHER). The engine backs up
// its own coverage (the owned set), clears the collected table, multicasts
// its STATE_MSG tagged with the new view, and enters GATHER.
func (e *Engine) OnView(v View) {
	if v.indexOf(e.deps.Self) < 0 {
		// A view that excludes us carries no obligations; it can only be a
		// stale delivery racing our own departure.
		return
	}
	e.view = View{ID: v.ID, Members: append([]MemberID(nil), v.Members...)}
	e.gatherStart = e.deps.Clock.Now()
	if e.viewHook != nil {
		e.viewHook(View{ID: v.ID, Members: append([]MemberID(nil), v.Members...)})
	}
	if e.tracer.Enabled() {
		e.trace(obs.KindViewChange, v.ID, "", fmt.Sprintf("members=%d", len(v.Members)))
	}
	e.setState(StateGather)
	e.table = map[string]MemberID{}
	e.stateFrom = map[MemberID]bool{}
	e.matureOf = map[MemberID]bool{}
	e.prefsOf = map[MemberID][]string{}
	e.pendingDrops = nil
	e.gatherComplete = false
	stopTimer(e.balanceTimer)
	e.balanceTimer = nil
	e.castState()
}

func (e *Engine) castState() {
	owned := make([]string, 0, len(e.owned))
	for g := range e.owned {
		owned = append(owned, g)
	}
	sort.Strings(owned)
	e.trace(obs.KindStateCast, e.view.ID, "", "")
	msg := stateMsg{ViewID: e.view.ID, Mature: e.mature, Owned: owned, Prefer: e.cfg.Prefer}
	if err := e.deps.Cast(msg.encode()); err != nil {
		e.deps.Log.Logf("wackamole %s: cast state: %v", e.deps.Self, err)
		e.emit(EventError, "", fmt.Sprintf("cast state: %v", err))
	}
}

// OnMessage consumes one totally ordered group message.
func (e *Engine) OnMessage(from MemberID, payload []byte) {
	m, err := decode(payload)
	if err != nil {
		e.deps.Log.Logf("wackamole %s: drop message from %s: %v", e.deps.Self, from, err)
		return
	}
	switch m.kind {
	case kindState:
		e.onState(from, m.state)
	case kindBalance:
		e.onBalance(from, m.balance)
	case kindAlloc:
		e.onAlloc(from, m.balance)
	case kindMature:
		e.onMature(from, m.mature)
	}
}

// onState implements Algorithm 2 lines 1–6.
func (e *Engine) onState(from MemberID, m stateMsg) {
	if e.state != StateGather || m.ViewID != e.view.ID || e.view.indexOf(from) < 0 {
		return // only STATE_MSGs generated in the current view are considered
	}
	e.stateFrom[from] = true
	e.matureOf[from] = m.Mature
	e.prefsOf[from] = m.Prefer
	e.trace(obs.KindStateRecv, m.ViewID, "", string(from))
	if m.Mature && !e.mature {
		// Contact with a mature server matures this one (§3.4).
		e.becomeMature("state message from " + string(from))
	}
	for _, g := range m.Owned {
		if _, known := e.groupsByName[g]; !known {
			e.deps.Log.Logf("wackamole %s: %s claims unknown group %q", e.deps.Self, from, g)
			continue
		}
		e.claim(g, from)
	}
	for _, member := range e.view.Members {
		if !e.stateFrom[member] {
			return
		}
	}
	e.gatherComplete = true
	if e.cfg.LazyConflictRelease {
		for _, g := range e.pendingDrops {
			if e.owned[g] && e.table[g] != e.deps.Self {
				e.releaseGroup(g, "conflict (lazy)")
			}
		}
		e.pendingDrops = nil
	}
	if e.cfg.RepresentativeDecisions {
		// §4.2 variant: the representative decides; everyone (including the
		// representative, via self-delivery) applies the ALLOC message.
		if e.representative() == e.deps.Self {
			msg := balanceMsg{ViewID: e.view.ID, Alloc: e.computeReallocation()}
			if err := e.deps.Cast(msg.encodeAs(kindAlloc)); err != nil {
				e.deps.Log.Logf("wackamole %s: cast alloc: %v", e.deps.Self, err)
				e.emit(EventError, "", fmt.Sprintf("cast alloc: %v", err))
			}
		}
		return
	}
	e.reallocateIPs()
}

// onAlloc applies the representative's imposed allocation and completes
// GATHER (§4.2 variant).
func (e *Engine) onAlloc(from MemberID, m balanceMsg) {
	if !e.cfg.RepresentativeDecisions {
		e.deps.Log.Logf("wackamole %s: alloc from %s but representative decisions are off", e.deps.Self, from)
		return
	}
	if e.state != StateGather || m.ViewID != e.view.ID || !e.gatherComplete {
		return
	}
	if from != e.representative() {
		e.deps.Log.Logf("wackamole %s: alloc from non-representative %s ignored", e.deps.Self, from)
		return
	}
	for _, p := range m.Alloc {
		if _, known := e.groupsByName[p.Group]; !known {
			continue
		}
		if p.Owner != "" && e.view.indexOf(p.Owner) < 0 {
			continue
		}
		e.table[p.Group] = p.Owner
		e.noteOwner(p.Group, p.Owner)
		switch {
		case p.Owner == e.deps.Self && !e.owned[p.Group]:
			e.acquireGroup(p.Group, "alloc")
		case p.Owner != e.deps.Self && e.owned[p.Group]:
			e.releaseGroup(p.Group, "alloc")
		}
	}
	e.updateSkew()
	if e.tracer.Enabled() {
		e.trace(obs.KindBalanceApply, e.view.ID, "", "alloc:"+string(from))
	}
	e.setState(StateRun)
	e.armBalance()
	if e.mature && !e.matureOf[e.deps.Self] {
		e.castMature()
	}
}

// claim records that from covers g, resolving conflicts deterministically:
// of two claimants, the one earlier in the ordered membership list releases
// (§3.3). Every member applies the same rule to the same message sequence,
// so the tables stay identical.
func (e *Engine) claim(g string, from MemberID) {
	cur := e.table[g]
	if cur == "" || cur == from {
		e.table[g] = from
		e.noteOwner(g, from)
		return
	}
	winner, loser := from, cur
	if e.view.indexOf(from) < e.view.indexOf(cur) {
		winner, loser = cur, from
	}
	e.table[g] = winner
	e.noteOwner(g, winner)
	e.emit(EventConflictDrop, g, fmt.Sprintf("%s yields to %s", loser, winner))
	if loser == e.deps.Self && e.owned[g] {
		if e.cfg.LazyConflictRelease {
			e.pendingDrops = append(e.pendingDrops, g)
			return
		}
		// Eager release: restore network-level consistency as soon as the
		// conflict is discovered (§3.4).
		e.releaseGroup(g, "conflict")
	}
}

// reallocateIPs implements Reallocate_IPs(): every member deterministically
// assigns each uncovered group to the least-loaded eligible member and
// acquires the groups assigned to itself, guaranteeing complete coverage
// (Lemma 2 of the paper).
func (e *Engine) reallocateIPs() {
	for _, p := range e.computeReallocation() {
		e.table[p.Group] = p.Owner
		e.noteOwner(p.Group, p.Owner)
		if p.Owner == e.deps.Self && !e.owned[p.Group] {
			e.acquireGroup(p.Group, "reallocate")
		}
	}
	e.updateSkew()
	e.setState(StateRun)
	e.armBalance()
	// A server that matured during GATHER could not advertise it in its
	// STATE_MSG; announce now. With no eligible member this is what lets
	// the component start covering addresses; with eligible members it is
	// the admit path — the announcement makes this server eligible so the
	// next balance can hand it load (runtime join, rolling restart).
	if e.mature && !e.matureOf[e.deps.Self] {
		e.castMature()
	}
}

// eligibleMembers lists the members that may own addresses in this view:
// those whose STATE_MSG declared maturity (identical at every member).
func (e *Engine) eligibleMembers() []MemberID {
	var out []MemberID
	for _, m := range e.view.Members {
		if e.matureOf[m] {
			out = append(out, m)
		}
	}
	return out
}

// onBalance implements Change_IPs() (Algorithm 1 lines 5–6); BALANCE_MSGs
// are ignored during GATHER (Algorithm 2 lines 10–11).
func (e *Engine) onBalance(from MemberID, m balanceMsg) {
	if e.state != StateRun || m.ViewID != e.view.ID {
		return
	}
	if from != e.representative() {
		e.deps.Log.Logf("wackamole %s: balance from non-representative %s ignored", e.deps.Self, from)
		return
	}
	for _, p := range m.Alloc {
		if _, known := e.groupsByName[p.Group]; !known {
			continue
		}
		if e.view.indexOf(p.Owner) < 0 {
			continue
		}
		e.table[p.Group] = p.Owner
		e.noteOwner(p.Group, p.Owner)
		switch {
		case p.Owner == e.deps.Self && !e.owned[p.Group]:
			e.acquireGroup(p.Group, "balance")
		case p.Owner != e.deps.Self && e.owned[p.Group]:
			e.releaseGroup(p.Group, "balance")
		}
	}
	e.updateSkew()
	e.trace(obs.KindBalanceApply, e.view.ID, "", string(from))
	e.emit(EventBalanceApplied, "", string(from))
	e.armBalance()
}

// onMature handles a server's announcement that its bootstrap timeout
// expired. Delivered in total order, it makes the whole component eligible
// and triggers the same deterministic reallocation everywhere.
func (e *Engine) onMature(from MemberID, m matureMsg) {
	if e.state != StateRun || m.ViewID != e.view.ID || e.view.indexOf(from) < 0 {
		return
	}
	already := len(e.eligibleMembers()) > 0
	for _, member := range e.view.Members {
		e.matureOf[member] = true
	}
	if !e.mature {
		e.becomeMature("mature announcement from " + string(from))
	}
	if !already {
		e.reallocateUncoveredInRun()
	}
}

// reallocateUncoveredInRun covers holes discovered while already in RUN
// (after a MATURE announcement). The allocation decision is identical at
// every member because it runs on the same delivered message.
func (e *Engine) reallocateUncoveredInRun() {
	eligible := e.eligibleMembers()
	if len(eligible) == 0 {
		return
	}
	e.planScratch = e.placer.Fill(e.placementInput(eligible), e.planScratch[:0])
	for _, d := range e.planScratch {
		owner := MemberID(d.Owner)
		e.table[d.Group] = owner
		e.noteOwner(d.Group, owner)
		if owner == e.deps.Self && !e.owned[d.Group] {
			e.acquireGroup(d.Group, "mature")
		}
	}
	e.updateSkew()
	e.armBalance()
}

// ResetMaturity returns a detached engine to the immature state and
// re-arms the §3.4 maturity bootstrap, modelling a process restart: a node
// re-admitted through the runtime join path takes no load until it meets a
// mature member (instant, via the first STATE_MSG exchange) or its
// maturity timeout expires. The explicit administrative intent overrides
// StartMature. No-op unless detached — a connected engine's maturity is
// protocol state the group already observed.
func (e *Engine) ResetMaturity() {
	if e.state != StateDetached {
		return
	}
	e.mature = false
	stopTimer(e.matureTimer)
	e.matureTimer = e.deps.Clock.AfterFunc(e.cfg.matureTimeout(), e.onMatureTimeout)
}

func (e *Engine) becomeMature(why string) {
	e.mature = true
	stopTimer(e.matureTimer)
	e.matureTimer = nil
	e.emit(EventMatured, "", why)
}

func (e *Engine) onMatureTimeout() {
	if e.mature {
		return
	}
	e.becomeMature("maturity timeout")
	if e.state == StateRun && !e.matureOf[e.deps.Self] {
		e.castMature()
	}
	// If a GATHER is in flight the announcement happens when it completes
	// (see reallocateIPs).
}

func (e *Engine) castMature() {
	if err := e.deps.Cast(matureMsg{ViewID: e.view.ID}.encode()); err != nil {
		e.deps.Log.Logf("wackamole %s: cast mature: %v", e.deps.Self, err)
	}
}

// OnDisconnect implements the §4.2 rule: a Wackamole daemon that loses its
// group-communication connection drops all of its virtual interfaces,
// because it can no longer ensure correctness.
func (e *Engine) OnDisconnect() {
	for _, g := range e.ownedSorted() {
		e.releaseGroup(g, "disconnected")
	}
	e.table = map[string]MemberID{}
	e.stateFrom = nil
	e.view = View{}
	stopTimer(e.balanceTimer)
	e.balanceTimer = nil
	e.setState(StateDetached)
}

func (e *Engine) ownedSorted() []string {
	out := make([]string, 0, len(e.owned))
	for g := range e.owned {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

func (e *Engine) setState(s State) {
	if e.state == s {
		return
	}
	e.state = s
	if s == StateRun {
		if !e.gatherStart.IsZero() {
			e.mStateSync.ObserveDuration(e.deps.Clock.Now().Sub(e.gatherStart))
			e.gatherStart = time.Time{}
		}
		e.trace(obs.KindRunEnter, e.view.ID, "", "")
	}
	e.emit(EventStateChange, "", s.String())
}

func (e *Engine) acquireGroup(g, why string) {
	grp := e.groupsByName[g]
	for _, a := range grp.Addrs {
		if err := e.deps.IPs.Acquire(a); err != nil {
			e.deps.Log.Logf("wackamole %s: acquire %v (%s): %v", e.deps.Self, a, g, err)
			e.emit(EventError, g, fmt.Sprintf("acquire %v: %v", a, err))
			continue
		}
		e.stats.acquires.Add(1)
		e.stats.announces.Add(1)
		if !e.gatherStart.IsZero() {
			// Acquisitions triggered by the post-gather reallocation carry
			// the client-visible takeover lag since the view change.
			e.mAnnounceLag.ObserveDuration(e.deps.Clock.Now().Sub(e.gatherStart))
		}
		if e.tracer.Enabled() {
			e.trace(obs.KindAcquire, g, a.String(), why)
			e.trace(obs.KindAnnounce, g, a.String(), "")
		}
		e.deps.Notify.Announce(a)
	}
	e.owned[g] = true
	if e.ownHook != nil {
		e.ownHook(g, true, e.view.ID)
	}
	e.emit(EventAcquire, g, why)
}

func (e *Engine) releaseGroup(g, why string) {
	grp := e.groupsByName[g]
	for _, a := range grp.Addrs {
		if err := e.deps.IPs.Release(a); err != nil {
			e.deps.Log.Logf("wackamole %s: release %v (%s): %v", e.deps.Self, a, g, err)
			e.emit(EventError, g, fmt.Sprintf("release %v: %v", a, err))
			continue
		}
		e.stats.releases.Add(1)
		if e.tracer.Enabled() {
			e.trace(obs.KindRelease, g, a.String(), why)
		}
		e.deps.Notify.Withdraw(a)
	}
	delete(e.owned, g)
	if e.ownHook != nil {
		e.ownHook(g, false, e.view.ID)
	}
	e.emit(EventRelease, g, why)
}

// representative returns the member that executes the re-balancing
// procedure: the first of the ordered membership list (§3.4).
func (e *Engine) representative() MemberID {
	if len(e.view.Members) == 0 {
		return ""
	}
	return e.view.Members[0]
}

func (e *Engine) armBalance() {
	stopTimer(e.balanceTimer)
	e.balanceTimer = nil
	if e.cfg.DisableBalance || e.representative() != e.deps.Self {
		return
	}
	viewID := e.view.ID
	e.balanceTimer = e.deps.Clock.AfterFunc(e.cfg.balanceTimeout(), func() {
		if e.state != StateRun || e.view.ID != viewID {
			return
		}
		e.runBalance()
	})
}

// TriggerBalance runs the re-balancing procedure immediately. Only the
// representative, in the RUN state, may trigger it (exposed through the
// administrative channel, §4.2).
func (e *Engine) TriggerBalance() error {
	if e.state != StateRun {
		return fmt.Errorf("core: not in RUN state")
	}
	if e.representative() != e.deps.Self {
		return fmt.Errorf("core: only the representative (%s) may balance", e.representative())
	}
	e.runBalance()
	return nil
}

func (e *Engine) runBalance() {
	alloc, changed := e.balancedAllocation()
	if !changed {
		e.armBalance()
		return
	}
	if e.tracer.Enabled() {
		e.trace(obs.KindBalanceCast, e.view.ID, "", fmt.Sprintf("moves=%d", len(alloc)))
	}
	msg := balanceMsg{ViewID: e.view.ID, Alloc: alloc}
	if err := e.deps.Cast(msg.encode()); err != nil {
		e.deps.Log.Logf("wackamole %s: cast balance: %v", e.deps.Self, err)
		e.armBalance()
	}
	// The new allocation is applied when the BALANCE_MSG is delivered, at
	// the representative like everywhere else.
}

package core_test

// Micro-benchmarks of the engine's hot paths: the state-message merge with
// conflict resolution, the deterministic reallocation, and the balancing
// decision, at the paper's scale (10 VIPs) and well beyond it.

import (
	"fmt"
	"testing"
	"time"

	"wackamole/internal/core"
)

func BenchmarkGatherMergeAndReallocate(b *testing.B) {
	for _, vips := range []int{10, 100} {
		vips := vips
		b.Run(fmt.Sprintf("vips=%d", vips), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h := newHarness(b, 5, matureConfig(vips))
				h.setPartition(h.all())
				h.pump()
			}
		})
	}
}

func BenchmarkMergeWithConflicts(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := newHarness(b, 6, matureConfig(60))
		h.setPartition(h.all())
		h.pump()
		h.setPartition(h.members[:3], h.members[3:])
		h.pump()
		h.setPartition(h.all())
		h.pump()
	}
}

func BenchmarkBalanceDecision(b *testing.B) {
	cfg := matureConfig(100)
	cfg.BalanceTimeout = time.Second
	h := newHarness(b, 4, cfg)
	a := h.members[0]
	h.setPartition([]core.MemberID{a})
	h.pump()
	h.setPartition(h.all())
	h.pump()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.engines[a].AllocationCounts()
		if err := h.engines[a].TriggerBalance(); err != nil {
			b.Fatal(err)
		}
		h.pump()
	}
}

// Package core implements the Wackamole state-synchronization algorithm —
// the primary contribution of the paper (§3): a RUN/GATHER state machine
// over a view-synchronous group that keeps every virtual IP address covered
// exactly once per connected component, plus the practical refinements of
// §3.4 (eager conflict resolution, representative-driven load balancing with
// startup preferences, and the maturity bootstrap) and the indivisible
// virtual-address groups required by the router application (§5.2).
//
// The engine is transport-agnostic: it consumes view changes and totally
// ordered messages (from the gcs group layer, or from a scripted fake in
// tests) and drives an address owner and an ARP notifier. All methods must
// be called from a single callback loop.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"wackamole/internal/placement"
)

// MemberID identifies one Wackamole instance within the group. Members are
// compared and ordered lexicographically; the group layer guarantees every
// member sees the identical ordered list.
type MemberID string

// State is the engine's algorithm state (Figure 2 of the paper). BALANCE is
// executed atomically inside a single callback, so it never appears as a
// resting state.
type State uint8

// Engine states.
const (
	// StateDetached: not connected to a group-communication daemon; holds
	// no addresses (§4.2 behaviour after losing the daemon connection).
	StateDetached State = iota + 1
	// StateGather: collecting STATE_MSGs for the current view.
	StateGather
	// StateRun: operational; current_table is conflict-free and complete.
	StateRun
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateDetached:
		return "detached"
	case StateGather:
		return "gather"
	case StateRun:
		return "run"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// VIPGroup is the unit of allocation: an indivisible set of virtual
// addresses that always moves between servers as one entity. Web clusters
// use one address per group; the virtual-router application (§5.2) groups
// the router's addresses on all of its networks.
type VIPGroup struct {
	// Name identifies the group; unique within a configuration.
	Name string
	// Addrs are the virtual addresses in the group.
	Addrs []netip.Addr
}

// View is a group membership notification as the engine sees it: an opaque
// identifier (equal at any two members that received the same view) and the
// uniquely ordered member list.
type View struct {
	ID      string
	Members []MemberID
}

// indexOf returns m's position in the view, or -1.
func (v View) indexOf(m MemberID) int {
	for i, x := range v.Members {
		if x == m {
			return i
		}
	}
	return -1
}

// Config holds the engine's static configuration. Every member of a cluster
// must be configured with the same Groups; Prefer and the timeouts may
// differ per server.
type Config struct {
	// Groups is the universe of virtual address groups the cluster covers.
	Groups []VIPGroup
	// Prefer lists group names this server would rather own; the balancer
	// honours preferences when load allows (§3.4).
	Prefer []string
	// BalanceTimeout is how long after entering RUN the representative
	// rebalances the allocation. Zero means 30s.
	BalanceTimeout time.Duration
	// MatureTimeout is how long a freshly started server waits before
	// declaring itself mature when it cannot contact any mature server
	// (§3.4). Zero means 5s.
	MatureTimeout time.Duration
	// StartMature skips the maturity bootstrap: the server manages
	// addresses from its first view.
	StartMature bool
	// DisableBalance turns off the re-balancing procedure; coverage is
	// still complete, only the allocation may grow skewed after repeated
	// faults (used by the ablation experiments).
	DisableBalance bool
	// LazyConflictRelease delays releasing conflicting addresses until the
	// end of GATHER instead of dropping them the moment a conflict is
	// detected. The paper argues for eager release (§3.4); this switch
	// exists for the ablation experiment quantifying that choice.
	LazyConflictRelease bool
	// RepresentativeDecisions enables the §4.2 variant: instead of every
	// daemon running the deterministic reallocation independently, the
	// representative (first member of the ordered list) computes the
	// allocation and imposes it on the others with an ALLOC message. The
	// paper notes this "will enable changing the way virtual address
	// allocation decisions are made without breaking version
	// compatibility". Conflict resolution remains eager and local, since it
	// restores network-level consistency.
	RepresentativeDecisions bool
	// Placer selects the placement policy behind the balance and
	// post-gather reallocation paths. Nil means the paper's least-loaded
	// rule (exactly the historical behaviour); placement.NewMinimal()
	// bounds relocation on membership changes to ⌈V/N⌉ groups. Every
	// member of a cluster must run the same policy: the engines plan
	// independently and rely on computing identical plans (Lemma 1).
	// The engine takes ownership of the instance — policies carry scratch
	// state and must not be shared between engines.
	Placer placement.Policy
}

const (
	defaultBalanceTimeout = 30 * time.Second
	defaultMatureTimeout  = 5 * time.Second
)

func (c Config) balanceTimeout() time.Duration {
	if c.BalanceTimeout <= 0 {
		return defaultBalanceTimeout
	}
	return c.BalanceTimeout
}

func (c Config) matureTimeout() time.Duration {
	if c.MatureTimeout <= 0 {
		return defaultMatureTimeout
	}
	return c.MatureTimeout
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if len(c.Groups) == 0 {
		return fmt.Errorf("core: no virtual address groups configured")
	}
	names := map[string]bool{}
	addrs := map[netip.Addr]bool{}
	for _, g := range c.Groups {
		if g.Name == "" {
			return fmt.Errorf("core: virtual address group with empty name")
		}
		if names[g.Name] {
			return fmt.Errorf("core: duplicate group name %q", g.Name)
		}
		names[g.Name] = true
		if len(g.Addrs) == 0 {
			return fmt.Errorf("core: group %q has no addresses", g.Name)
		}
		for _, a := range g.Addrs {
			if !a.IsValid() {
				return fmt.Errorf("core: group %q has an invalid address", g.Name)
			}
			if addrs[a] {
				return fmt.Errorf("core: address %v appears in more than one group", a)
			}
			addrs[a] = true
		}
	}
	for _, p := range c.Prefer {
		if !names[p] {
			return fmt.Errorf("core: preference %q names no configured group", p)
		}
	}
	return nil
}

// sortedGroupNames returns the configured group names in canonical order.
func (c Config) sortedGroupNames() []string {
	out := make([]string, len(c.Groups))
	for i, g := range c.Groups {
		out[i] = g.Name
	}
	sort.Strings(out)
	return out
}

// Status is a point-in-time snapshot of the engine, for tooling and tests.
type Status struct {
	State   State
	Mature  bool
	ViewID  string
	Members []MemberID
	// Table maps every configured group to its owner ("" if uncovered, as
	// happens transiently during GATHER or before maturity).
	Table map[string]MemberID
	// Owned lists the groups whose addresses this node has acquired.
	Owned []string
}

// EventKind classifies engine events for observers.
type EventKind uint8

// Event kinds.
const (
	EventStateChange EventKind = iota + 1
	EventAcquire
	EventRelease
	EventConflictDrop
	EventBalanceApplied
	EventMatured
	EventError
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventStateChange:
		return "state-change"
	case EventAcquire:
		return "acquire"
	case EventRelease:
		return "release"
	case EventConflictDrop:
		return "conflict-drop"
	case EventBalanceApplied:
		return "balance-applied"
	case EventMatured:
		return "matured"
	case EventError:
		return "error"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event describes one observable engine transition.
type Event struct {
	Kind   EventKind
	Group  string // group involved, if any
	Detail string
}

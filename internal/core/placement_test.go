package core_test

import (
	"testing"
	"time"

	"wackamole/internal/core"
	"wackamole/internal/placement"
)

// minimalConfig builds a per-member config running the minimal-move
// placement policy (each engine gets its own policy instance — they carry
// scratch state).
func minimalConfig(vips int, startMature bool) func(int) core.Config {
	return func(int) core.Config {
		return core.Config{
			Groups:         groups(vips),
			StartMature:    startMature,
			BalanceTimeout: time.Second,
			Placer:         placement.NewMinimal(),
		}
	}
}

func tableOf(h *harness, id core.MemberID) map[string]core.MemberID {
	return h.engines[id].Snapshot().Table
}

// TestMinimalPolicyLeaveChurn: after a member departs, the engines repair
// the table by moving exactly the leaver's groups — at most ⌈V/N⌉ — and
// the follow-up balance has nothing left to do.
func TestMinimalPolicyLeaveChurn(t *testing.T) {
	const vips = 10
	h := newHarnessCfg(t, 4, minimalConfig(vips, true))
	h.setPartition(h.all())
	h.pump()
	h.runFor(2 * time.Second) // let the balance settle the initial allocation
	h.checkComponent(h.all(), true)

	leaver := h.members[3]
	before := tableOf(h, h.members[0])
	orphans := 0
	for _, owner := range before {
		if owner == leaver {
			orphans++
		}
	}
	movesBefore := h.engines[h.members[0]].Stats().Moves

	rest := h.members[:3]
	h.setPartition(rest, []core.MemberID{leaver})
	h.pump()
	h.runFor(3 * time.Second) // leave repair plus any follow-up balance
	h.checkComponent(rest, true)

	moves := h.engines[rest[0]].Stats().Moves - movesBefore
	if bound := uint64((vips + 3) / 4); uint64(orphans) > bound {
		t.Fatalf("leaver owned %d groups, balanced bound %d", orphans, bound)
	}
	if moves != uint64(orphans) {
		t.Fatalf("leave relocated %d groups, want exactly the %d orphans", moves, orphans)
	}
	after := tableOf(h, rest[0])
	for g, owner := range after {
		if before[g] != leaver && before[g] != owner {
			t.Fatalf("group %s moved from %s to %s although its owner survived", g, before[g], owner)
		}
	}
}

// TestMinimalPolicyJoinChurn: a freshly admitted member is handed at most
// ⌈V/N⌉ groups and nothing moves between the incumbents. The joiner runs
// the maturity bootstrap (§3.4): it is started immature, matures on
// contact, announces, and only then receives load.
func TestMinimalPolicyJoinChurn(t *testing.T) {
	const vips = 10
	cfgFor := func(i int) core.Config {
		cfg := minimalConfig(vips, true)(i)
		if i == 3 {
			cfg.StartMature = false // the joiner bootstraps via §3.4
		}
		return cfg
	}
	h := newHarnessCfg(t, 4, cfgFor)
	incumbents := h.members[:3]
	joiner := h.members[3]
	h.setPartition(incumbents, []core.MemberID{joiner})
	h.pump()
	h.runFor(2 * time.Second)
	h.checkComponent(incumbents, true)

	before := tableOf(h, incumbents[0])
	movesBefore := h.engines[incumbents[0]].Stats().Moves

	h.setPartition(h.all())
	h.pump()
	// Immediately after the gather the joiner owns nothing: it matured on
	// contact during GATHER, so it was not eligible for the fill.
	if owned := h.engines[joiner].Snapshot().Owned; len(owned) != 0 {
		t.Fatalf("joiner owns %v before the balance admitted it", owned)
	}
	h.runFor(3 * time.Second) // maturity announcement + balance
	h.checkComponent(h.all(), true)

	after := tableOf(h, h.members[0])
	joinerLoad := 0
	for g, owner := range after {
		if owner == joiner {
			joinerLoad++
		} else if before[g] != owner {
			t.Fatalf("join moved %s between incumbents (%s -> %s)", g, before[g], owner)
		}
	}
	if joinerLoad == 0 {
		t.Fatal("joiner was never handed any load")
	}
	bound := uint64((vips + 3) / 4)
	if moves := h.engines[h.members[0]].Stats().Moves - movesBefore; moves > bound {
		t.Fatalf("join relocated %d groups, bound %d", moves, bound)
	}
	if st := h.engines[joiner].Snapshot(); !st.Mature {
		t.Fatal("joiner did not mature on contact")
	}
}

// TestPlacementStats: the Moves counter attributes churn identically at
// every member, and the skew gauge reflects the balanced spread.
func TestPlacementStats(t *testing.T) {
	h := newHarnessCfg(t, 3, minimalConfig(9, true))
	h.setPartition(h.all())
	h.pump()
	h.runFor(2 * time.Second)
	// 9 groups over 3 members: perfectly balanced, skew 0, and the initial
	// assignment is takeovers, not moves.
	for _, id := range h.all() {
		st := h.engines[id].Stats()
		if st.Moves != 0 {
			t.Fatalf("%s counted %d moves on initial placement, want 0", id, st.Moves)
		}
		if st.Skew != 0 {
			t.Fatalf("%s skew %d on a 9/3 allocation, want 0", id, st.Skew)
		}
	}

	h.setPartition(h.members[:2], h.members[2:])
	h.pump()
	h.runFor(2 * time.Second)
	ref := h.engines[h.members[0]].Stats().Moves
	if ref == 0 {
		t.Fatal("no moves counted after a departure orphaned groups")
	}
	if other := h.engines[h.members[1]].Stats().Moves; other != ref {
		t.Fatalf("move counters diverge: %d vs %d", ref, other)
	}
}

// TestResetMaturity: only valid while detached; it rewinds the engine to
// the immature state and re-arms the bootstrap timer.
func TestResetMaturity(t *testing.T) {
	h := newHarness(t, 2, matureConfig(4))
	h.setPartition(h.all())
	h.pump()
	e := h.engines[h.members[0]]

	e.ResetMaturity() // connected: must be ignored
	if !e.Snapshot().Mature {
		t.Fatal("ResetMaturity rewound a connected engine")
	}

	e.OnDisconnect()
	e.ResetMaturity()
	if st := e.Snapshot(); st.Mature {
		t.Fatal("ResetMaturity left the engine mature")
	}
	// The bootstrap timer is re-armed: with nobody to contact, the engine
	// matures by timeout again.
	h.sim.RunFor(6 * time.Second)
	if st := e.Snapshot(); !st.Mature {
		t.Fatal("maturity timeout did not re-fire after ResetMaturity")
	}
}

// TestPlacementName surfaces the active policy for the status line.
func TestPlacementName(t *testing.T) {
	h := newHarnessCfg(t, 1, minimalConfig(4, true))
	if got := h.engines[h.members[0]].PlacementName(); got != placement.NameMinimal {
		t.Fatalf("PlacementName() = %q, want %q", got, placement.NameMinimal)
	}
	h2 := newHarness(t, 1, matureConfig(4))
	if got := h2.engines[h2.members[0]].PlacementName(); got != placement.NameLeastLoaded {
		t.Fatalf("default PlacementName() = %q, want %q", got, placement.NameLeastLoaded)
	}
}

package core

// balance.go implements the representative's re-balancing decision (§3.4):
// a deterministic allocation over the eligible members that evens out load
// and honours the startup preferences each server passed along through its
// STATE_MSGs, while moving as few groups as possible.

// balancedAllocation computes the representative's target allocation. It
// reports changed=false when the current table already satisfies it.
func (e *Engine) balancedAllocation() ([]allocPair, bool) {
	eligible := e.eligibleMembers()
	if len(eligible) == 0 {
		return nil, false
	}
	prefers := func(m MemberID, g string) bool {
		for _, p := range e.prefsOf[m] {
			if p == g {
				return true
			}
		}
		return false
	}
	// Capacity: n groups over k members; the first n%k members (in the
	// uniquely ordered membership list) may hold one extra.
	n, k := len(e.sortedNames), len(eligible)
	cap := map[MemberID]int{}
	for i, m := range eligible {
		cap[m] = n / k
		if i < n%k {
			cap[m]++
		}
	}
	isEligible := map[MemberID]bool{}
	for _, m := range eligible {
		isEligible[m] = true
	}

	alloc := map[string]MemberID{}
	count := map[MemberID]int{}
	for _, g := range e.sortedNames {
		owner := e.table[g]
		if !isEligible[owner] {
			owner = "" // departed or immature owner: treat as uncovered
		}
		alloc[g] = owner
		if owner != "" {
			count[owner]++
		}
	}

	move := func(g string, to MemberID) {
		if from := alloc[g]; from != "" {
			count[from]--
		}
		alloc[g] = to
		count[to]++
	}

	// Preference pass: grant each group to a member that asked for it. A
	// member may be granted up to its capacity in preferred groups, even if
	// that temporarily overfills it — the shedding pass below moves its
	// non-preferred groups away. Granted groups are protected from the
	// first shedding pass.
	grantedPref := map[MemberID]int{}
	protected := map[string]bool{}
	for _, g := range e.sortedNames {
		owner := alloc[g]
		if owner != "" && prefers(owner, g) && grantedPref[owner] < cap[owner] {
			grantedPref[owner]++
			protected[g] = true
			continue
		}
		for _, m := range eligible {
			if m != owner && prefers(m, g) && grantedPref[m] < cap[m] {
				move(g, m)
				grantedPref[m]++
				protected[g] = true
				break
			}
		}
	}

	// Shedding passes: cover holes and drain over-capacity members onto the
	// least-loaded ones — first by moving unprotected groups, then, if an
	// owner is somehow still over capacity, protected ones too.
	shed := func(sparePreferred bool) {
		for _, g := range e.sortedNames {
			owner := alloc[g]
			if owner != "" && count[owner] <= cap[owner] {
				continue
			}
			if owner != "" && sparePreferred && protected[g] {
				continue
			}
			var best MemberID
			for _, m := range eligible {
				if m == owner || count[m] >= cap[m] {
					continue
				}
				if best == "" || count[m] < count[best] {
					best = m
				}
			}
			if best != "" {
				move(g, best)
			}
		}
	}
	shed(true)
	shed(false)

	pairs := make([]allocPair, 0, len(e.sortedNames))
	changed := false
	for _, g := range e.sortedNames {
		pairs = append(pairs, allocPair{Group: g, Owner: alloc[g]})
		if alloc[g] != e.table[g] {
			changed = true
		}
	}
	return pairs, changed
}

// AllocationCounts summarizes how many groups each member of the current
// view owns according to the table; experiments use it to quantify skew.
func (e *Engine) AllocationCounts() map[MemberID]int {
	out := map[MemberID]int{}
	for _, owner := range e.table {
		if owner != "" {
			out[owner]++
		}
	}
	return out
}

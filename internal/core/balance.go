package core

// balance.go adapts the engine to the placement plane. The re-balancing
// decision (§3.4) and the post-gather hole filling both delegate to the
// configured placement.Policy; the engine's job is reduced to assembling
// the replicated inputs (canonical group list, eligible members in view
// order, the current table) and applying the returned plan. The default
// policy reproduces the historical least-loaded rule byte for byte.

import "wackamole/internal/placement"

// placementInput assembles the policy's view of the replicated state. The
// member scratch slice and the owner/prefers closures are reused across
// calls, so planning itself stays allocation-free.
func (e *Engine) placementInput(eligible []MemberID) placement.Input {
	e.memberScratch = e.memberScratch[:0]
	for _, m := range eligible {
		e.memberScratch = append(e.memberScratch, string(m))
	}
	return placement.Input{
		Groups:  e.sortedNames,
		Members: e.memberScratch,
		Owner:   e.ownerFn,
		Prefers: e.prefersFn,
	}
}

// balancedAllocation computes the representative's target allocation. It
// reports changed=false when the current table already satisfies it.
func (e *Engine) balancedAllocation() ([]allocPair, bool) {
	eligible := e.eligibleMembers()
	if len(eligible) == 0 {
		return nil, false
	}
	e.planScratch = e.placer.Balance(e.placementInput(eligible), e.planScratch[:0])
	pairs := make([]allocPair, 0, len(e.planScratch))
	changed := false
	for _, d := range e.planScratch {
		owner := MemberID(d.Owner)
		pairs = append(pairs, allocPair{Group: d.Group, Owner: owner})
		if owner != e.table[d.Group] {
			changed = true
		}
	}
	return pairs, changed
}

// computeReallocation returns the full post-gather allocation: current
// owners keep their groups, holes are filled by the placement policy among
// the eligible members.
func (e *Engine) computeReallocation() []allocPair {
	e.planScratch = e.placer.Fill(e.placementInput(e.eligibleMembers()), e.planScratch[:0])
	alloc := make([]allocPair, 0, len(e.planScratch))
	for _, d := range e.planScratch {
		alloc = append(alloc, allocPair{Group: d.Group, Owner: MemberID(d.Owner)})
	}
	return alloc
}

// AllocationCounts summarizes how many groups each member of the current
// view owns according to the table; experiments use it to quantify skew.
func (e *Engine) AllocationCounts() map[MemberID]int {
	out := map[MemberID]int{}
	for _, owner := range e.table {
		if owner != "" {
			out[owner]++
		}
	}
	return out
}

// noteOwner records that the replicated table now assigns g to owner and
// counts a placement move when that differs from the last recorded owner.
// Every member observes the same table transitions (the inputs are
// replicated), so the per-node placement_moves_total counters agree.
func (e *Engine) noteOwner(g string, owner MemberID) {
	if owner == "" {
		return
	}
	prev, seen := e.lastOwner[g]
	if seen && prev != owner {
		e.stats.moves.Add(1)
		e.mMoves.Inc()
	}
	e.lastOwner[g] = owner
}

// updateSkew refreshes the placement_skew gauge: the spread between the
// most and least loaded eligible members under the current table.
func (e *Engine) updateSkew() {
	min, max := -1, 0
	members := 0
	for _, m := range e.view.Members {
		if !e.matureOf[m] {
			continue
		}
		members++
		n := 0
		for _, owner := range e.table {
			if owner == m {
				n++
			}
		}
		if min < 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	skew := 0
	if members > 1 {
		skew = max - min
	}
	e.stats.skew.Store(int64(skew))
	e.mSkew.Set(int64(skew))
}

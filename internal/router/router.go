// Package router implements the paper's second application (§5.2): N
// physical routers acting as a single virtual router. An indivisible set of
// virtual addresses — one per network the router serves — is allocated to
// whichever physical router is currently active; Wackamole moves the whole
// set on failure. The package also wires up the two dynamic-routing
// participation modes the paper contrasts (only-active vs advertise-all)
// and, optionally, the ARP-cache-sharing notifier.
package router

import (
	"fmt"

	"wackamole"
	"wackamole/internal/arp"
	"wackamole/internal/arpshare"
	"wackamole/internal/core"
	"wackamole/internal/gcs"
	"wackamole/internal/ipmgr"
	"wackamole/internal/netsim"
	"wackamole/internal/rip"
)

// Participation says when this physical router takes part in the dynamic
// routing protocol.
type Participation uint8

// Participation modes (§5.2).
const (
	// ParticipateWhenActive: the router joins the routing protocol only
	// while it holds the virtual addresses — the naive setup whose
	// take-over stalls until the next periodic advertisement.
	ParticipateWhenActive Participation = iota + 1
	// ParticipateAlways: all fail-over routers run the routing protocol
	// continuously and advertise the same internal networks, so a take-over
	// completes as soon as Wackamole reassigns the addresses.
	ParticipateAlways
)

// Options configure one physical router.
type Options struct {
	// Host is the multi-homed forwarding host.
	Host *netsim.Host
	// GCSNIC carries the group-communication traffic (the paper notes
	// Spread must bind to addresses not subject to Wackamole's management).
	GCSNIC *netsim.NIC
	// GCS holds the daemon timeouts.
	GCS gcs.Config
	// Group is the indivisible virtual address set: the virtual router's
	// address on every network it serves.
	Group core.VIPGroup
	// RIP configures the dynamic routing process.
	RIP rip.Config
	// Participation selects the §5.2 setup; zero means ParticipateAlways.
	Participation Participation
	// ShareARP enables the §5.2 ARP-cache-sharing notifier.
	ShareARP bool
	// Port is the daemon's UDP port; zero means wackamole.DefaultPort.
	Port uint16
	// OnNode, if set, runs after the node is built but before Start, so
	// observation hooks (invariant monitors) can attach without missing
	// boot events.
	OnNode func(n *wackamole.Node)
}

// PhysicalRouter is one member of a virtual router.
type PhysicalRouter struct {
	Host   *netsim.Host
	Node   *wackamole.Node
	RIP    *rip.Process
	Sharer *arpshare.Sharer // nil unless ShareARP

	participation Participation
	started       bool
}

// New wires a physical router together. Call Start to begin operation.
func New(opts Options) (*PhysicalRouter, error) {
	if opts.Host == nil || opts.GCSNIC == nil {
		return nil, fmt.Errorf("router: Host and GCSNIC are required")
	}
	if len(opts.Group.Addrs) == 0 {
		return nil, fmt.Errorf("router: the virtual address group is empty")
	}
	if opts.Participation == 0 {
		opts.Participation = ParticipateAlways
	}
	port := opts.Port
	if port == 0 {
		port = wackamole.DefaultPort
	}
	opts.Host.EnableForwarding()

	ep, err := opts.Host.OpenEndpoint(opts.GCSNIC, port)
	if err != nil {
		return nil, fmt.Errorf("router: %w", err)
	}
	ripProc, err := rip.New(opts.Host, opts.RIP)
	if err != nil {
		return nil, err
	}

	r := &PhysicalRouter{Host: opts.Host, RIP: ripProc, participation: opts.Participation}

	var notifier arp.Notifier = &netsim.ARPAnnouncer{Host: opts.Host}
	node, err := wackamole.NewNode(ep.Env(nil), wackamole.Config{
		GCS: opts.GCS,
		Engine: core.Config{
			Groups:      []core.VIPGroup{opts.Group},
			StartMature: true,
		},
	}, &ipmgr.HostBackend{Host: opts.Host}, notifier)
	if err != nil {
		return nil, err
	}
	r.Node = node

	if opts.ShareARP {
		sharer, err := arpshare.New(opts.Host, node.Daemon(), arpshare.Config{})
		if err != nil {
			return nil, err
		}
		r.Sharer = sharer
		node.Engine().SetNotifier(sharer.Notifier(notifier))
	}

	if opts.Participation == ParticipateWhenActive {
		node.Engine().SetEventHook(func(ev core.Event) {
			switch ev.Kind {
			case core.EventAcquire:
				ripProc.Start()
			case core.EventRelease:
				ripProc.Stop()
			}
		})
	}
	if opts.OnNode != nil {
		opts.OnNode(node)
	}
	return r, nil
}

// Start launches the node and, in advertise-all mode, the routing process.
func (r *PhysicalRouter) Start() error {
	if r.started {
		return fmt.Errorf("router: already started")
	}
	r.started = true
	if r.participation == ParticipateAlways {
		r.RIP.Start()
	}
	if r.Sharer != nil {
		r.Sharer.Start()
	}
	return r.Node.Start()
}

// Stop halts everything.
func (r *PhysicalRouter) Stop() {
	if r.Sharer != nil {
		r.Sharer.Stop()
	}
	r.RIP.Stop()
	r.Node.Stop()
}

// Active reports whether this physical router currently holds the virtual
// addresses.
func (r *PhysicalRouter) Active() bool {
	return len(r.Node.Status().Owned) > 0
}

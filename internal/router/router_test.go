package router

import (
	"net/netip"
	"testing"
	"time"

	"wackamole/internal/core"
	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
	"wackamole/internal/rip"
	"wackamole/internal/sim"
)

// twoRouters builds two physical routers on ext+web networks forming one
// virtual router.
func twoRouters(t *testing.T, seed int64, participation Participation, shareARP bool) (*sim.Sim, [2]*PhysicalRouter, [2]*netsim.Host) {
	t.Helper()
	s := sim.New(seed)
	nw := netsim.New(s)
	segCfg := netsim.DefaultSegmentConfig()
	ext := nw.NewSegment("ext", segCfg)
	web := nw.NewSegment("web", segCfg)
	group := core.VIPGroup{Name: "vrouter", Addrs: []netip.Addr{
		netip.MustParseAddr("198.51.100.1"),
		netip.MustParseAddr("10.1.0.1"),
	}}
	var prs [2]*PhysicalRouter
	var hosts [2]*netsim.Host
	for i := 0; i < 2; i++ {
		h := nw.NewHost([]string{"fr1", "fr2"}[i])
		h.AttachNIC(ext, "ext", netip.MustParsePrefix(
			netip.AddrFrom4([4]byte{198, 51, 100, byte(3 + i)}).String()+"/24"))
		webNIC := h.AttachNIC(web, "web", netip.MustParsePrefix(
			netip.AddrFrom4([4]byte{10, 1, 0, byte(2 + i)}).String()+"/24"))
		pr, err := New(Options{
			Host:          h,
			GCSNIC:        webNIC,
			GCS:           gcs.TunedConfig(),
			Group:         group,
			RIP:           rip.Config{AdvertisePeriod: 5 * time.Second},
			Participation: participation,
			ShareARP:      shareARP,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := pr.Start(); err != nil {
			t.Fatal(err)
		}
		prs[i] = pr
		hosts[i] = h
	}
	return s, prs, hosts
}

func TestExactlyOneActiveRouter(t *testing.T) {
	s, prs, hosts := twoRouters(t, 1, ParticipateAlways, false)
	s.RunFor(10 * time.Second)
	actives := 0
	for _, pr := range prs {
		if pr.Active() {
			actives++
		}
	}
	if actives != 1 {
		t.Fatalf("%d active routers, want 1", actives)
	}
	// The indivisible group: both addresses on the same host.
	extVIP := netip.MustParseAddr("198.51.100.1")
	webVIP := netip.MustParseAddr("10.1.0.1")
	for _, h := range hosts {
		hasExt, hasWeb := false, false
		for _, nic := range h.NICs() {
			if nic.HasAddr(extVIP) {
				hasExt = true
			}
			if nic.HasAddr(webVIP) {
				hasWeb = true
			}
		}
		if hasExt != hasWeb {
			t.Fatalf("%s holds the group partially (ext=%v web=%v)", h.Name(), hasExt, hasWeb)
		}
	}
}

func TestFailoverMovesWholeGroup(t *testing.T) {
	s, prs, hosts := twoRouters(t, 2, ParticipateAlways, false)
	s.RunFor(10 * time.Second)
	active := 0
	if prs[1].Active() {
		active = 1
	}
	hosts[active].Crash()
	s.RunFor(10 * time.Second)
	standby := 1 - active
	if !prs[standby].Active() {
		t.Fatal("standby never took over")
	}
	for _, vip := range []string{"198.51.100.1", "10.1.0.1"} {
		held := false
		for _, nic := range hosts[standby].NICs() {
			if nic.HasAddr(netip.MustParseAddr(vip)) {
				held = true
			}
		}
		if !held {
			t.Fatalf("standby missing %s after take-over", vip)
		}
	}
}

func TestParticipateWhenActiveTogglesRIP(t *testing.T) {
	s, prs, hosts := twoRouters(t, 3, ParticipateWhenActive, false)
	s.RunFor(10 * time.Second)
	active := 0
	if prs[1].Active() {
		active = 1
	}
	standby := 1 - active
	// Drive some advertisements: only the active router's RIP should learn
	// from an upstream; approximate by checking the standby installed no
	// learned routes and the active ran. With no upstream here, check the
	// processes' running state indirectly: stopping a stopped process is a
	// no-op; a started one uninstalls. Simplest observable: after fail-over
	// the standby starts participating.
	hosts[active].Crash()
	s.RunFor(10 * time.Second)
	if !prs[standby].Active() {
		t.Fatal("standby never took over")
	}
}

func TestShareARPWiring(t *testing.T) {
	s, prs, _ := twoRouters(t, 4, ParticipateAlways, true)
	s.RunFor(15 * time.Second)
	for i, pr := range prs {
		if pr.Sharer == nil {
			t.Fatalf("router %d has no sharer", i)
		}
		if len(pr.Sharer.Known()) == 0 {
			t.Fatalf("router %d's sharer learned nothing", i)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	s := sim.New(9)
	nw := netsim.New(s)
	web := nw.NewSegment("web", netsim.DefaultSegmentConfig())
	h := nw.NewHost("fr")
	nic := h.AttachNIC(web, "web", netip.MustParsePrefix("10.1.0.2/24"))
	if _, err := New(Options{Host: h, GCSNIC: nic}); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestDoubleStartRejected(t *testing.T) {
	_, prs, _ := twoRouters(t, 5, ParticipateAlways, false)
	if err := prs[0].Start(); err == nil {
		t.Fatal("double Start succeeded")
	}
}

package metrics

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("requests_total", "requests served")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same (name, labels) returns the same instrument.
	if r.Counter("requests_total", "requests served") != c {
		t.Fatal("counter lookup is not idempotent")
	}
	g := r.Gauge("queue_depth", "frames in flight", L("segment", "lan"))
	g.Inc()
	g.Inc()
	g.Dec()
	if g.Value() != 1 {
		t.Fatalf("gauge = %d, want 1", g.Value())
	}
	g.Set(42)
	if g.Value() != 42 {
		t.Fatalf("gauge = %d, want 42", g.Value())
	}
	// Distinct labels make distinct series.
	if r.Gauge("queue_depth", "", L("segment", "ext")).Value() != 0 {
		t.Fatal("label separation failed")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestBucketIndexMatchesLinearScan(t *testing.T) {
	probes := []float64{0, 1e-9, 1e-6, 1.5e-6, 2e-6, 3.7e-4, 0.01, 1, 60, 134, 135, 1e6}
	for _, v := range probes {
		want := NumBuckets
		for i, b := range bucketBoundaries {
			if v <= b {
				want = i
				break
			}
		}
		if got := bucketIndex(v); got != want {
			t.Errorf("bucketIndex(%g) = %d, want %d", v, got, want)
		}
	}
}

func TestHistogramObserveAndQuantile(t *testing.T) {
	r := New()
	h := r.Histogram("latency_seconds", "")
	// 100 observations at ~1ms, 10 at ~1s.
	for i := 0; i < 100; i++ {
		h.ObserveDuration(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.ObserveDuration(time.Second)
	}
	s := h.Snapshot()
	if s.Count() != 110 {
		t.Fatalf("count = %d, want 110", s.Count())
	}
	wantSum := 100*0.001 + 10*1.0
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Fatalf("sum = %g, want %g", s.Sum, wantSum)
	}
	// P50 must fall in the bucket containing 1ms; P99 in the one containing 1s.
	p50 := s.Quantile(0.50)
	if p50 < 0.0005 || p50 > 0.002 {
		t.Fatalf("p50 = %g, want within the 1ms bucket", p50)
	}
	p99 := s.Quantile(0.99)
	if p99 < 0.5 || p99 > 2.0 {
		t.Fatalf("p99 = %g, want within the 1s bucket", p99)
	}
	if s.QuantileDuration(0.99) != time.Duration(p99*float64(time.Second)) {
		t.Fatal("QuantileDuration disagrees with Quantile")
	}
	if mb := s.MaxBound(); mb < 1 || mb > 2.0 {
		t.Fatalf("max bound = %g, want the 1s bucket boundary", mb)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty quantile != 0")
	}
	if empty.MaxBound() != 0 {
		t.Fatal("empty max bound != 0")
	}
	var h Histogram
	h.Observe(1e9) // beyond the last finite boundary
	s := h.Snapshot()
	if s.Counts[NumBuckets] != 1 {
		t.Fatal("overflow observation not in +Inf bucket")
	}
	if got := s.Quantile(1.0); got != bucketBoundaries[NumBuckets-1] {
		t.Fatalf("overflow quantile = %g, want last finite boundary", got)
	}
	if !math.IsInf(s.MaxBound(), 1) {
		t.Fatal("overflow max bound should be +Inf")
	}
}

// TestHistogramMergeAssociativeDeterministic exercises concurrent
// observation under -race and verifies that merging per-writer snapshots in
// any order and grouping yields identical buckets and sums.
func TestHistogramMergeAssociativeDeterministic(t *testing.T) {
	const writers = 8
	const perWriter = 1000
	r := New()
	hists := make([]*Histogram, writers)
	for i := range hists {
		hists[i] = r.Histogram("m_seconds", "", L("node", string(rune('a'+i))))
	}
	var wg sync.WaitGroup
	for i, h := range hists {
		wg.Add(1)
		go func(i int, h *Histogram) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				h.Observe(float64(i+1) * 1e-4)
			}
		}(i, h)
	}
	wg.Wait()

	snaps := make([]HistSnapshot, writers)
	for i, h := range hists {
		snaps[i] = h.Snapshot()
	}
	// Left fold.
	var left HistSnapshot
	for _, s := range snaps {
		left.Merge(s)
	}
	// Right fold, reversed order.
	var right HistSnapshot
	for i := writers - 1; i >= 0; i-- {
		right.Merge(snaps[i])
	}
	// Pairwise tree.
	var tree HistSnapshot
	for i := 0; i < writers; i += 2 {
		pair := snaps[i]
		pair.Merge(snaps[i+1])
		tree.Merge(pair)
	}
	// Bucket counts are integers, so their merge is exactly associative and
	// commutative; the float sum is associative only up to rounding.
	if left.Counts != right.Counts || left.Counts != tree.Counts {
		t.Fatalf("merge buckets not associative/commutative:\nleft  %+v\nright %+v\ntree  %+v", left, right, tree)
	}
	if math.Abs(left.Sum-right.Sum) > 1e-9 || math.Abs(left.Sum-tree.Sum) > 1e-9 {
		t.Fatalf("merge sums diverge: %g %g %g", left.Sum, right.Sum, tree.Sum)
	}
	if left.Count() != writers*perWriter {
		t.Fatalf("merged count = %d, want %d", left.Count(), writers*perWriter)
	}
	// The registry-level merged view agrees with the hand merge.
	if merged := r.Snapshot().MergedHistogram("m_seconds"); merged != left {
		t.Fatalf("MergedHistogram = %+v, want %+v", merged, left)
	}
}

func TestSnapshotMerge(t *testing.T) {
	a := New()
	a.Counter("c_total", "help").Add(2)
	a.Histogram("h_seconds", "").Observe(0.001)
	b := New()
	b.Counter("c_total", "help").Add(3)
	b.Counter("only_b_total", "").Add(7)
	b.Histogram("h_seconds", "").Observe(0.002)

	m := a.Snapshot().Merge(b.Snapshot())
	cf := m.Family("c_total")
	if cf == nil || cf.Series[0].Value != 5 {
		t.Fatalf("merged counter = %+v", cf)
	}
	if m.Family("only_b_total") == nil {
		t.Fatal("family unique to b missing after merge")
	}
	if got := m.MergedHistogram("h_seconds").Count(); got != 2 {
		t.Fatalf("merged histogram count = %d, want 2", got)
	}
	// Merge is symmetric.
	m2 := b.Snapshot().Merge(a.Snapshot())
	if m.MergedHistogram("h_seconds") != m2.MergedHistogram("h_seconds") {
		t.Fatal("snapshot merge not symmetric")
	}
}

// TestSnapshotMergeNewSeriesIntoEarlyFamily is the regression for a
// stale-pointer bug: Merge kept *FamilySnapshot pointers into out.Families
// while still appending to it, so once the slice reallocated (any merge
// involving 2+ families) a new labelled series merged into an
// already-copied family landed in the dead backing array and vanished.
// This is exactly the per-node aggregation case: the cluster snapshot has
// several families, and a node's snapshot contributes a new node label to
// the first one.
func TestSnapshotMergeNewSeriesIntoEarlyFamily(t *testing.T) {
	cluster := New()
	cluster.Counter("a_total", "", L("node", "d1")).Add(2)
	cluster.Counter("b_total", "").Add(1) // second family forces reallocation
	node := New()
	node.Counter("a_total", "", L("node", "d2")).Add(5)

	m := cluster.Snapshot().Merge(node.Snapshot())
	af := m.Family("a_total")
	if af == nil || len(af.Series) != 2 {
		t.Fatalf("a_total series = %+v, want both node series", af)
	}
	var total float64
	for _, s := range af.Series {
		total += s.Value
	}
	if total != 7 {
		t.Fatalf("a_total total = %g, want 7", total)
	}

	// Same shape for merging INTO an existing series of an early family.
	node2 := New()
	node2.Counter("a_total", "", L("node", "d1")).Add(10)
	m2 := m.Merge(node2.Snapshot())
	for _, s := range m2.Family("a_total").Series {
		if len(s.Labels) == 1 && s.Labels[0].Value == "d1" && s.Value != 12 {
			t.Fatalf("d1 series = %g, want 12", s.Value)
		}
	}
}

// TestQuantileCount pins the count-valued presentation: the shared log2
// boundaries are fractional, so quantiles of integer observations must be
// ceiled back to whole counts.
func TestQuantileCount(t *testing.T) {
	var empty HistSnapshot
	if empty.QuantileCount(0.99) != 0 {
		t.Fatal("empty QuantileCount != 0")
	}
	// Integer observations of 0 land in the first bucket; their quantile
	// must read back as 0, not ceil up to 1.
	var zeros Histogram
	zeros.Observe(0)
	zeros.Observe(0)
	if got := zeros.Snapshot().QuantileCount(0.99); got != 0 {
		t.Fatalf("all-zero p99 = %d, want 0", got)
	}
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(3)
	}
	s := h.Snapshot()
	if got := s.QuantileCount(0.50); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	p99 := s.QuantileCount(0.99)
	if p99 < 3 || p99 > 5 {
		t.Fatalf("p99 = %d, want a whole count bounding 3", p99)
	}
	// The raw interpolated quantile is fractional; the count form never is.
	if raw := s.Quantile(0.50); raw == math.Trunc(raw) {
		t.Logf("raw p50 happens to be integral: %g", raw)
	}
}

// TestNilRegistryZeroAlloc pins the disabled path: a nil registry and nil
// instruments must allocate nothing, exactly like the nil obs.Tracer, so
// instrumented and uninstrumented runs stay byte-identical.
func TestNilRegistryZeroAlloc(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry claims enabled")
	}
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned live instruments")
	}
	if avg := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(-1)
		h.Observe(0.5)
		h.ObserveDuration(time.Millisecond)
		_ = r.Counter("x_total", "")
		_ = r.Gauge("x", "")
		_ = r.Histogram("x_seconds", "")
	}); avg != 0 {
		t.Fatalf("nil-registry path allocates %.1f per run, want 0", avg)
	}
	if r.Snapshot().Families != nil {
		t.Fatal("nil registry snapshot not empty")
	}
}

// TestLiveObservationZeroAlloc pins the hot observation path on live
// instruments, which protocol code runs per token pass and per frame.
func TestLiveObservationZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("x_total", "")
	h := r.Histogram("x_seconds", "")
	if avg := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(0.001)
	}); avg != 0 {
		t.Fatalf("live observation allocates %.1f per run, want 0", avg)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	ds := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want time.Duration
	}{{0, 1}, {10, 1}, {50, 5}, {99, 10}, {100, 10}}
	for _, c := range cases {
		if got := Percentile(ds, c.q); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile != 0")
	}
}

func TestBucketBoundariesFixed(t *testing.T) {
	b := BucketBoundaries()
	if len(b) != NumBuckets {
		t.Fatalf("len = %d", len(b))
	}
	if b[0] != 1e-6 {
		t.Fatalf("first boundary = %g, want 1e-6", b[0])
	}
	for i := 1; i < len(b); i++ {
		if math.Abs(b[i]/b[i-1]-2) > 1e-12 {
			t.Fatalf("boundary %d not doubling: %g -> %g", i, b[i-1], b[i])
		}
	}
	// Mutating the copy must not affect the shared table.
	b[0] = 99
	if BucketBoundaries()[0] != 1e-6 {
		t.Fatal("BucketBoundaries returned a live reference")
	}
}

package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// parsePrometheus is a small, strict parser for the text exposition format
// 0.0.4: it accepts only `# HELP`, `# TYPE` and sample lines, enforces that
// every sample belongs to a family previously declared by TYPE, that TYPE
// values are legal, and that label syntax and float values parse exactly.
// The conformance test runs every emitted line through it.
func parsePrometheus(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = map[string]string{}
	legal := map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			if i := strings.IndexByte(rest, ' '); i <= 0 {
				t.Fatalf("line %d: HELP without docstring: %q", ln+1, line)
			}
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(fields) != 2 || !legal[fields[1]] {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			if _, dup := types[fields[0]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %s", ln+1, fields[0])
			}
			types[fields[0]] = fields[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment: %q", ln+1, line)
		}
		s := parseSample(t, ln+1, line)
		base := s.name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(s.name, suffix)
			if trimmed != s.name {
				if _, ok := types[trimmed]; ok && types[trimmed] == "histogram" {
					base = trimmed
				}
			}
		}
		if _, ok := types[base]; !ok {
			t.Fatalf("line %d: sample %s without TYPE declaration", ln+1, s.name)
		}
		samples = append(samples, s)
	}
	return types, samples
}

func parseSample(t *testing.T, ln int, line string) promSample {
	t.Helper()
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		s.name = rest[:i]
		end := strings.IndexByte(rest, '}')
		if end < i {
			t.Fatalf("line %d: unterminated label set: %q", ln, line)
		}
		for _, pair := range splitLabels(rest[i+1 : end]) {
			eq := strings.IndexByte(pair, '=')
			if eq <= 0 {
				t.Fatalf("line %d: malformed label %q", ln, pair)
			}
			key, raw := pair[:eq], pair[eq+1:]
			if !validName(key) {
				t.Fatalf("line %d: bad label name %q", ln, key)
			}
			val, err := strconv.Unquote(raw)
			if err != nil {
				t.Fatalf("line %d: bad label value %q: %v", ln, raw, err)
			}
			s.labels[key] = val
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.SplitN(rest, " ", 2)
		if len(fields) != 2 {
			t.Fatalf("line %d: malformed sample: %q", ln, line)
		}
		s.name, rest = fields[0], fields[1]
	}
	if !validName(s.name) {
		t.Fatalf("line %d: bad metric name %q", ln, s.name)
	}
	v, err := parseFloatProm(strings.TrimSpace(rest))
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", ln, rest, err)
	}
	s.value = v
	return s
}

// splitLabels splits k="v",k2="v2" on commas outside quotes.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func parseFloatProm(s string) (float64, error) {
	if s == "+Inf" {
		return math.Inf(1), nil
	}
	if s == "-Inf" {
		return math.Inf(-1), nil
	}
	return strconv.ParseFloat(s, 64)
}

// TestPrometheusConformance emits a registry with all three kinds, labels
// needing escaping and multi-series families, and runs every line through
// the strict parser.
func TestPrometheusConformance(t *testing.T) {
	r := New()
	r.Counter("gcs_retransmits_total", "retransmissions served", L("node", "d1")).Add(3)
	r.Counter("gcs_retransmits_total", "retransmissions served", L("node", "d2")).Add(4)
	r.Gauge("netsim_segment_queue_depth", "frames in flight", L("segment", `lan "0"`)).Set(7)
	h := r.Histogram("gcs_token_rotation_seconds", "time between token arrivals", L("node", "d1"))
	for i := 0; i < 5; i++ {
		h.ObserveDuration(2 * time.Millisecond)
	}
	h.Observe(1e9) // lands in +Inf

	var b strings.Builder
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	types, samples := parsePrometheus(t, text)

	if types["gcs_retransmits_total"] != "counter" ||
		types["netsim_segment_queue_depth"] != "gauge" ||
		types["gcs_token_rotation_seconds"] != "histogram" {
		t.Fatalf("types = %v", types)
	}

	bySeries := map[string]float64{}
	for _, s := range samples {
		keys := make([]string, 0, len(s.labels))
		for k, v := range s.labels {
			keys = append(keys, k+"="+v)
		}
		sort.Strings(keys)
		bySeries[s.name+"|"+strings.Join(keys, ",")] = s.value
	}
	if bySeries[`gcs_retransmits_total|node=d1`] != 3 || bySeries[`gcs_retransmits_total|node=d2`] != 4 {
		t.Fatalf("counter series wrong: %v", bySeries)
	}
	if bySeries[`netsim_segment_queue_depth|segment=lan "0"`] != 7 {
		t.Fatalf("escaped gauge label did not round-trip: %v", bySeries)
	}
	if bySeries[`gcs_token_rotation_seconds_count|node=d1`] != 6 {
		t.Fatalf("histogram count = %v", bySeries[`gcs_token_rotation_seconds_count|node=d1`])
	}
	if bySeries[`gcs_token_rotation_seconds_bucket|le=+Inf,node=d1`] != 6 {
		t.Fatalf("+Inf bucket = %v", bySeries[`gcs_token_rotation_seconds_bucket|le=+Inf,node=d1`])
	}

	// Bucket series must be cumulative and non-decreasing in le order.
	var buckets []promSample
	for _, s := range samples {
		if s.name == "gcs_token_rotation_seconds_bucket" {
			buckets = append(buckets, s)
		}
	}
	if len(buckets) != NumBuckets+1 {
		t.Fatalf("bucket series = %d, want %d", len(buckets), NumBuckets+1)
	}
	sort.Slice(buckets, func(i, j int) bool {
		li, _ := parseFloatProm(buckets[i].labels["le"])
		lj, _ := parseFloatProm(buckets[j].labels["le"])
		return li < lj
	})
	prev := -1.0
	for _, b := range buckets {
		if b.value < prev {
			t.Fatalf("bucket counts not cumulative: %v", buckets)
		}
		prev = b.value
	}

	// The sum line must carry the exact observation sum.
	wantSum := 5*0.002 + 1e9
	var sumLine string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "gcs_token_rotation_seconds_sum") {
			sumLine = line
		}
	}
	fields := strings.Fields(sumLine)
	got, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil || math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum line %q, want %g", sumLine, wantSum)
	}
}

// TestPrometheusDeterministic pins byte-for-byte determinism of the
// exposition across snapshots of identical registries.
func TestPrometheusDeterministic(t *testing.T) {
	build := func() string {
		r := New()
		// Insert in scrambled order; output must sort.
		r.Gauge("zz", "").Set(1)
		r.Counter("aa_total", "", L("b", "2")).Add(1)
		r.Counter("aa_total", "", L("a", "1")).Add(2)
		r.Histogram("mm_seconds", "").Observe(0.5)
		var b strings.Builder
		if err := WritePrometheus(&b, r.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a, bb := build(), build()
	if a != bb {
		t.Fatalf("exposition not deterministic:\n%s\n---\n%s", a, bb)
	}
	if strings.Index(a, "aa_total") > strings.Index(a, "zz") {
		t.Fatalf("families not sorted:\n%s", a)
	}
	if !strings.Contains(a, fmt.Sprintf("le=%q", "1e-06")) {
		t.Fatalf("le formatting changed:\n%s", a)
	}
}

package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// prometheus.go renders a registry snapshot in the Prometheus text
// exposition format, version 0.0.4 — the one format every scraping and
// alerting stack ingests. Families emit deterministically (sorted by name,
// series sorted by label signature), histograms expose cumulative
// `_bucket{le=...}` series plus `_sum` and `_count`, and the writer never
// touches live instruments, so serving an exposition cannot perturb the
// protocol it observes.

// ContentType is the HTTP Content-Type of the text exposition format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeHelp escapes a HELP annotation (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value (backslash, quote, newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatValue renders a sample value the shortest way that round-trips.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders {k="v",...}; extra pairs (the histogram `le`) append
// after the series' own labels. Returns "" for a bare series.
func labelString(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	parts := make([]string, len(all))
	for i, l := range all {
		parts[i] = l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// WritePrometheus writes the snapshot in text exposition format 0.0.4.
func WritePrometheus(w io.Writer, snap Snapshot) error {
	for _, f := range snap.Families {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, escapeHelp(f.Help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Kind); err != nil {
			return err
		}
		for _, s := range f.Series {
			switch f.Kind {
			case KindCounter, KindGauge:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, labelString(s.Labels), formatValue(s.Value)); err != nil {
					return err
				}
			case KindHistogram:
				if s.Hist == nil {
					continue
				}
				var cum uint64
				for i := 0; i < NumBuckets; i++ {
					cum += s.Hist.Counts[i]
					le := formatValue(bucketBoundaries[i])
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
						f.Name, labelString(s.Labels, L("le", le)), cum); err != nil {
						return err
					}
				}
				cum += s.Hist.Counts[NumBuckets]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.Name, labelString(s.Labels, L("le", "+Inf")), cum); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
					f.Name, labelString(s.Labels), formatValue(s.Hist.Sum)); err != nil {
					return err
				}
				if _, err := fmt.Fprintf(w, "%s_count%s %d\n",
					f.Name, labelString(s.Labels), cum); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

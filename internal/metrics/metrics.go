// Package metrics is the latency-and-activity instrumentation layer shared
// by every subsystem in this repository. The paper's entire evaluation (§5,
// Figure 5, Table 1) is about time — detection latency, membership-install
// latency, state-sync and ARP-takeover duration — so the protocol layers
// need first-class latency measurement, not just event counts.
//
// A Registry holds typed instruments: monotone Counters, integer Gauges and
// log-bucketed latency Histograms, each optionally tagged with label pairs
// (node, group, segment). Histogram bucket boundaries are fixed and shared
// by every histogram, so merging two snapshots is a plain element-wise sum —
// lock-free, associative and deterministic regardless of merge order.
//
// Like obs.Tracer, a nil *Registry is a valid, permanently disabled
// registry: instrument getters on nil return nil instruments whose
// observation methods are zero-allocation no-ops, so protocol code calls
// them unconditionally on hot paths (token passes, frame deliveries) without
// a feature flag, and traced/untraced runs stay byte-identical.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind types an instrument family.
type Kind uint8

// Instrument kinds.
const (
	KindCounter Kind = iota + 1
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus TYPE vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Label is one name=value pair attached to an instrument.
type Label struct {
	Key, Value string
}

// L builds a Label; it keeps instrument-creation call sites short.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// NumBuckets is the number of finite histogram buckets. With boundaries
// starting at 1µs and doubling, the last finite boundary is
// 1µs·2^27 ≈ 134s — wide enough for every duration the evaluation measures
// (frame latencies of ~100µs up to multi-second fail-over interruptions)
// and for small event counts (retransmits per reconfiguration).
const NumBuckets = 28

// bucketBoundaries are the shared upper bounds (in seconds for duration
// histograms; dimensionless for count histograms), fixed so that any two
// histograms merge element-wise.
var bucketBoundaries = func() [NumBuckets]float64 {
	var b [NumBuckets]float64
	v := 1e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// BucketBoundaries returns a copy of the shared finite bucket upper bounds,
// ascending. Observations above the last boundary land in the implicit
// +Inf bucket.
func BucketBoundaries() []float64 {
	out := make([]float64, NumBuckets)
	copy(out[:], bucketBoundaries[:])
	return out
}

// bucketIndex locates v's bucket: the first boundary >= v, or NumBuckets
// (the +Inf bucket) when v exceeds them all.
func bucketIndex(v float64) int {
	if v <= bucketBoundaries[0] {
		return 0
	}
	if v > bucketBoundaries[NumBuckets-1] {
		return NumBuckets
	}
	// Buckets double, so the index is a logarithm; binary search avoids
	// floating-point log edge cases.
	lo, hi := 1, NumBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= bucketBoundaries[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Counter is a monotonically increasing count. A nil *Counter is a valid
// disabled instrument.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. On a nil counter it is a zero-allocation no-op.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer level that can rise and fall (queue depths, in-flight
// frames). A nil *Gauge is a valid disabled instrument.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the level.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add moves the level by delta (negative deltas lower it).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc raises the level by one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec lowers the level by one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current level (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a log-bucketed distribution with fixed, shared bucket
// boundaries. Observations are lock-free (per-bucket atomics plus a CAS
// loop for the sum), so hot protocol paths observe without contention. A
// nil *Histogram is a valid disabled instrument.
type Histogram struct {
	buckets [NumBuckets + 1]atomic.Uint64 // last slot is the +Inf bucket
	sumBits atomic.Uint64                 // math.Float64bits of the running sum
}

// Observe records v. On a nil histogram it is a zero-allocation no-op.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.buckets[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		newSum := math.Float64frombits(old) + v
		if h.sumBits.CompareAndSwap(old, math.Float64bits(newSum)) {
			return
		}
	}
}

// ObserveDuration records d in seconds, the unit of every *_seconds family.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h == nil {
		return
	}
	h.Observe(d.Seconds())
}

// Snapshot copies the histogram's current state. On nil it returns a zero
// snapshot.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	if h == nil {
		return s
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Sum = math.Float64frombits(h.sumBits.Load())
	return s
}

// HistSnapshot is an immutable copy of a histogram: cumulative-free bucket
// counts (index i counts observations in (boundary[i-1], boundary[i]]; the
// last slot is the +Inf bucket) plus the observation sum.
type HistSnapshot struct {
	Counts [NumBuckets + 1]uint64
	Sum    float64
}

// Count totals the observations.
func (s HistSnapshot) Count() uint64 {
	var n uint64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Merge sums other into s element-wise. Because every histogram shares the
// same fixed boundaries, Merge is associative and commutative: merging
// per-node or per-trial snapshots in any order yields identical buckets.
func (s *HistSnapshot) Merge(other HistSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += other.Counts[i]
	}
	s.Sum += other.Sum
}

// Quantile estimates the q-th quantile (0 < q <= 1) from the buckets: the
// nearest-rank bucket is located exactly, then the value is interpolated
// linearly within it (the same estimator Prometheus' histogram_quantile
// uses). Returns 0 for an empty histogram; an observation in the +Inf
// bucket reports the last finite boundary, the tightest bound the buckets
// can give.
func (s HistSnapshot) Quantile(q float64) float64 {
	total := s.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum < rank {
			continue
		}
		if i >= NumBuckets {
			return bucketBoundaries[NumBuckets-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bucketBoundaries[i-1]
		}
		hi := bucketBoundaries[i]
		// Position of the rank within this bucket's count.
		inBucket := float64(rank-(cum-c)) / float64(c)
		return lo + (hi-lo)*inBucket
	}
	return bucketBoundaries[NumBuckets-1]
}

// QuantileDuration is Quantile for *_seconds histograms.
func (s HistSnapshot) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q) * float64(time.Second))
}

// QuantileCount is Quantile for count-valued histograms (retransmits per
// reconfiguration, queue depths). The shared log2 boundaries are fractional
// (1.05, 2.10, 4.19, ...), so raw interpolation reports non-integer counts;
// rounding up restores an integer that still bounds the estimated quantile.
// A quantile inside the first bucket (≤ 1e-6) can only come from integer
// observations of 0, so it reports 0 rather than ceiling to 1.
func (s HistSnapshot) QuantileCount(q float64) uint64 {
	v := s.Quantile(q)
	if v <= bucketBoundaries[0] {
		return 0
	}
	return uint64(math.Ceil(v))
}

// MaxBound returns the upper boundary of the highest non-empty bucket — a
// deterministic upper bound on the largest observation (0 when empty).
func (s HistSnapshot) MaxBound() float64 {
	for i := NumBuckets; i >= 0; i-- {
		if s.Counts[i] == 0 {
			continue
		}
		if i >= NumBuckets {
			return math.Inf(1)
		}
		return bucketBoundaries[i]
	}
	return 0
}

// Percentile returns the nearest-rank q-th percentile (q in [0,100]) of an
// ascending-sorted sample. This is the one exact-sample quantile
// implementation in the repository: the experiment layer's Stat and every
// offline analyzer use it, so sample and histogram quantiles can never
// disagree on their definition.
func Percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// seriesKey identifies one labelled series within a family.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + "\x00" + l.Value
	}
	sort.Strings(parts)
	return strings.Join(parts, "\x01")
}

// family is one named instrument family with its labelled series.
type family struct {
	name   string
	help   string
	kind   Kind
	series map[string]*series
}

type series struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// Registry holds instrument families. A nil *Registry is a valid,
// permanently disabled registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Enabled reports whether instruments are live (false on nil).
func (r *Registry) Enabled() bool { return r != nil }

// lookup returns the series for (name, labels), creating family and series
// as needed. It panics if name was previously registered with a different
// kind — a programming error that would corrupt the exposition.
func (r *Registry) lookup(name, help string, kind Kind, labels []Label) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	key := seriesKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		switch kind {
		case KindCounter:
			s.ctr = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		case KindHistogram:
			s.hist = &Histogram{}
		}
		f.series[key] = s
	}
	return s
}

// Counter returns the counter (name, labels), creating it on first use.
// On a nil registry it returns a nil (disabled) counter without allocating.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, labels).ctr
}

// Gauge returns the gauge (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, labels).gauge
}

// Histogram returns the histogram (name, labels), creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindHistogram, labels).hist
}

// SeriesSnapshot is one labelled series' state within a family snapshot.
type SeriesSnapshot struct {
	Labels []Label
	// Value holds counter counts and gauge levels; unused for histograms.
	Value float64
	// Hist holds the histogram state; nil for counters and gauges.
	Hist *HistSnapshot
}

// FamilySnapshot is one family's state: name, help, kind and every series,
// sorted by label signature for deterministic iteration.
type FamilySnapshot struct {
	Name   string
	Help   string
	Kind   Kind
	Series []SeriesSnapshot
}

// Snapshot is a point-in-time copy of a whole registry, families sorted by
// name.
type Snapshot struct {
	Families []FamilySnapshot
}

// Snapshot copies the registry's current state. On nil it returns an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := Snapshot{Families: make([]FamilySnapshot, 0, len(r.families))}
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := r.families[n]
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.series[k]
			ss := SeriesSnapshot{Labels: append([]Label(nil), s.labels...)}
			switch f.kind {
			case KindCounter:
				ss.Value = float64(s.ctr.Value())
			case KindGauge:
				ss.Value = float64(s.gauge.Value())
			case KindHistogram:
				h := s.hist.Snapshot()
				ss.Hist = &h
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}

// Family returns the named family snapshot, or nil when absent.
func (s Snapshot) Family(name string) *FamilySnapshot {
	for i := range s.Families {
		if s.Families[i].Name == name {
			return &s.Families[i]
		}
	}
	return nil
}

// MergedHistogram merges every series of the named histogram family into
// one distribution — the cluster-wide view of a per-node family. Returns a
// zero snapshot when the family is absent or not a histogram.
func (s Snapshot) MergedHistogram(name string) HistSnapshot {
	var out HistSnapshot
	f := s.Family(name)
	if f == nil || f.Kind != KindHistogram {
		return out
	}
	for _, ser := range f.Series {
		if ser.Hist != nil {
			out.Merge(*ser.Hist)
		}
	}
	return out
}

// Merge folds other into s: same-name families merge series-wise (counters
// and gauges sum, histograms merge buckets), new families and series append
// in sorted position. Merging snapshots of disjoint trials in any order
// yields identical results, which is what lets the parallel trial runner
// aggregate without coordination.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	// byName maps family name to index in out.Families — indexes, not
	// pointers, because copyFam keeps appending and a reallocation would
	// leave pointers aimed at the stale backing array.
	byName := map[string]int{}
	var out Snapshot
	copyFam := func(f FamilySnapshot) {
		nf := FamilySnapshot{Name: f.Name, Help: f.Help, Kind: f.Kind}
		for _, ser := range f.Series {
			ns := SeriesSnapshot{Labels: append([]Label(nil), ser.Labels...), Value: ser.Value}
			if ser.Hist != nil {
				h := *ser.Hist
				ns.Hist = &h
			}
			nf.Series = append(nf.Series, ns)
		}
		out.Families = append(out.Families, nf)
		byName[nf.Name] = len(out.Families) - 1
	}
	for _, f := range s.Families {
		copyFam(f)
	}
	for _, f := range other.Families {
		idx, ok := byName[f.Name]
		if !ok {
			copyFam(f)
			continue
		}
		dst := &out.Families[idx]
		for _, ser := range f.Series {
			key := seriesKey(ser.Labels)
			merged := false
			for i := range dst.Series {
				if seriesKey(dst.Series[i].Labels) != key {
					continue
				}
				dst.Series[i].Value += ser.Value
				if ser.Hist != nil {
					if dst.Series[i].Hist == nil {
						dst.Series[i].Hist = &HistSnapshot{}
					}
					dst.Series[i].Hist.Merge(*ser.Hist)
				}
				merged = true
				break
			}
			if !merged {
				ns := SeriesSnapshot{Labels: append([]Label(nil), ser.Labels...), Value: ser.Value}
				if ser.Hist != nil {
					h := *ser.Hist
					ns.Hist = &h
				}
				dst.Series = append(dst.Series, ns)
			}
		}
	}
	sort.Slice(out.Families, func(i, j int) bool { return out.Families[i].Name < out.Families[j].Name })
	for i := range out.Families {
		f := &out.Families[i]
		sort.Slice(f.Series, func(a, b int) bool {
			return seriesKey(f.Series[a].Labels) < seriesKey(f.Series[b].Labels)
		})
	}
	return out
}

package arpshare

import (
	"net/netip"
	"testing"
	"time"

	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
	"wackamole/internal/sim"
)

// rig builds two router-like hosts with gcs daemons and sharers, plus a
// picky peer that ignores broadcast gratuitous ARP.
type rig struct {
	sim     *sim.Sim
	hosts   [2]*netsim.Host
	daemons [2]*gcs.Daemon
	sharers [2]*Sharer
	picky   *netsim.Host
}

func buildRig(t *testing.T, seed int64) *rig {
	t.Helper()
	s := sim.New(seed)
	nw := netsim.New(s)
	lan := nw.NewSegment("lan", netsim.DefaultSegmentConfig())
	r := &rig{sim: s}
	for i := 0; i < 2; i++ {
		h := nw.NewHost([]string{"fr1", "fr2"}[i])
		nic := h.AttachNIC(lan, "eth0", netip.MustParsePrefix(
			netip.AddrFrom4([4]byte{10, 0, 0, byte(2 + i)}).String()+"/24"))
		ep, err := h.OpenEndpoint(nic, 4803)
		if err != nil {
			t.Fatal(err)
		}
		d, err := gcs.NewDaemon(ep.Env(nil), gcs.TunedConfig())
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		sh, err := New(h, d, Config{Interval: 2 * time.Second, HoldTime: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		sh.Start()
		r.hosts[i] = h
		r.daemons[i] = d
		r.sharers[i] = sh
	}
	r.picky = nw.NewHost("picky")
	r.picky.AttachNIC(lan, "eth0", netip.MustParsePrefix("10.0.0.50/24"))
	r.picky.SetIgnoreBroadcastGratuitousARP(true)
	return r
}

func TestSharersLearnEachOthersCaches(t *testing.T) {
	r := buildRig(t, 1)
	// fr1 resolves picky (so picky lands in fr1's cache), then shares it.
	if err := r.hosts[0].SendUDP(netip.AddrPort{}, netip.AddrPortFrom(netip.MustParseAddr("10.0.0.50"), 9), []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.sim.RunFor(10 * time.Second)
	found := false
	for _, e := range r.sharers[1].Known() {
		if e.IP == netip.MustParseAddr("10.0.0.50") {
			found = true
		}
	}
	if !found {
		t.Fatalf("fr2 never learned picky from fr1's cache share; known=%v", r.sharers[1].Known())
	}
	// And both learn each other's stationary addresses.
	foundPeer := false
	for _, e := range r.sharers[0].Known() {
		if e.IP == netip.MustParseAddr("10.0.0.3") {
			foundPeer = true
		}
	}
	if !foundPeer {
		t.Fatal("fr1 never learned fr2's stationary address")
	}
}

func TestUnicastSpoofReachesBroadcastIgnorer(t *testing.T) {
	r := buildRig(t, 2)
	vip := netip.MustParseAddr("10.0.0.100")
	fr1, fr2 := r.hosts[0], r.hosts[1]

	// picky talks to the VIP while fr1 owns it, caching fr1's MAC.
	if err := fr1.NICs()[0].AddAddr(vip); err != nil {
		t.Fatal(err)
	}
	if err := r.picky.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(vip, 9), []byte("x")); err != nil {
		t.Fatal(err)
	}
	// fr2 resolves picky so the share includes it.
	if err := fr2.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(netip.MustParseAddr("10.0.0.50"), 9), []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.sim.RunFor(10 * time.Second)
	mac, ok := r.picky.NICs()[0].ARPEntry(vip)
	if !ok || mac != fr1.NICs()[0].MAC() {
		t.Fatalf("setup: picky's entry = %v ok=%v", mac, ok)
	}

	// Fail over to fr2. A plain broadcast gratuitous ARP must NOT update
	// picky (it ignores broadcast announcements)...
	fr1.NICs()[0].SetUp(false)
	if err := fr2.NICs()[0].AddAddr(vip); err != nil {
		t.Fatal(err)
	}
	plain := &netsim.ARPAnnouncer{Host: fr2}
	plain.Announce(vip)
	r.sim.RunFor(time.Second)
	if mac, _ := r.picky.NICs()[0].ARPEntry(vip); mac == fr2.NICs()[0].MAC() {
		t.Fatal("broadcast gratuitous ARP updated a host configured to ignore it")
	}

	// ...but the sharing notifier's unicast spoof must.
	r.sharers[1].Notifier(plain).Announce(vip)
	r.sim.RunFor(time.Second)
	mac, ok = r.picky.NICs()[0].ARPEntry(vip)
	if !ok || mac != fr2.NICs()[0].MAC() {
		t.Fatalf("unicast spoof did not update picky (mac=%v ok=%v)", mac, ok)
	}
}

func TestGarbageCollectionExpiresStaleEntries(t *testing.T) {
	r := buildRig(t, 3)
	if err := r.hosts[0].SendUDP(netip.AddrPort{}, netip.AddrPortFrom(netip.MustParseAddr("10.0.0.50"), 9), []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.sim.RunFor(10 * time.Second)
	if len(r.sharers[1].Known()) == 0 {
		t.Fatal("nothing learned")
	}
	// Silence fr1; with a 10s hold time its contributions must expire from
	// fr2's set. fr1's own stationary address keeps being announced by its
	// own cache entries on fr2's side only via fr1, so it expires too.
	r.hosts[0].Crash()
	r.sim.RunFor(30 * time.Second)
	for _, e := range r.sharers[1].Known() {
		if e.IP == netip.MustParseAddr("10.0.0.50") {
			t.Fatalf("stale shared entry survived garbage collection: %v", r.sharers[1].Known())
		}
	}
}

func TestStopLeavesGroup(t *testing.T) {
	r := buildRig(t, 4)
	r.sim.RunFor(5 * time.Second)
	r.sharers[0].Stop()
	r.sim.RunFor(5 * time.Second)
	// The remaining sharer keeps operating alone.
	r.sharers[1].announce()
	r.sim.RunFor(time.Second)
}

func TestShareCodecRoundTrip(t *testing.T) {
	in := []Entry{
		{IP: netip.MustParseAddr("10.0.0.1"), MAC: netsim.MAC(0x0A0000000001)},
		{IP: netip.MustParseAddr("192.168.1.254"), MAC: netsim.MAC(0xFFFFFFFFFFFF)},
	}
	out, err := decodeShare(encodeShare(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) || out[0] != in[0] || out[1] != in[1] {
		t.Fatalf("round trip = %v, want %v", out, in)
	}
	if _, err := decodeShare([]byte{0xFF}); err == nil {
		t.Fatal("truncated share accepted")
	}
}

// Package arpshare implements the ARP-cache-sharing mechanism of the
// paper's router application (§5.2): "each Wackamole daemon periodically
// sends data from its ARP cache to all other daemons. This makes it
// possible for a daemon to approximately know the set of machines that must
// be notified when it assumes responsibility for a virtual IP address."
// When this node acquires an address, it spoofs a unicast ARP reply to
// every known host on that address's network in addition to the broadcast
// gratuitous announcement — reaching devices that discard broadcast
// gratuitous ARP.
//
// The paper leaves "garbage collection techniques to make the ARP spoof
// notification more accurately targeted" as future work; this
// implementation includes one: shared entries expire after HoldTime unless
// re-announced, bounding the notification set on large LANs.
package arpshare

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"wackamole/internal/arp"
	"wackamole/internal/env"
	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
	"wackamole/internal/wire"
)

// DefaultGroup is the process group the sharers exchange caches on,
// distinct from the main Wackamole group so the two wire protocols never
// mix.
const DefaultGroup = "wackamole-arp"

// Defaults.
const (
	DefaultInterval = 10 * time.Second
	DefaultHoldTime = 60 * time.Second
)

// ClientName is the sharer's client name on the local daemon.
const ClientName = "arpshare"

// Config parameterizes a Sharer.
type Config struct {
	// Group overrides the sharing group name.
	Group string
	// Interval between cache announcements; zero means 10s.
	Interval time.Duration
	// HoldTime after which an entry not re-announced is garbage-collected;
	// zero means 60s.
	HoldTime time.Duration
}

func (c Config) group() string {
	if c.Group == "" {
		return DefaultGroup
	}
	return c.Group
}

func (c Config) interval() time.Duration {
	if c.Interval <= 0 {
		return DefaultInterval
	}
	return c.Interval
}

func (c Config) holdTime() time.Duration {
	if c.HoldTime <= 0 {
		return DefaultHoldTime
	}
	return c.HoldTime
}

// Entry is one known <IP, MAC> binding on the LAN.
type Entry struct {
	IP  netip.Addr
	MAC netsim.MAC
}

type knownEntry struct {
	mac      netsim.MAC
	lastSeen time.Time
}

// Sharer periodically announces this host's ARP cache to the group and
// aggregates everyone's announcements into the set of hosts to notify on
// take-over.
type Sharer struct {
	host    *netsim.Host
	cfg     Config
	sess    *gcs.Session
	known   map[netip.Addr]knownEntry
	timer   env.Timer
	running bool
}

// New connects a sharer to the host's local daemon. Call Start to begin
// sharing.
func New(host *netsim.Host, daemon *gcs.Daemon, cfg Config) (*Sharer, error) {
	sess, err := daemon.Connect(ClientName)
	if err != nil {
		return nil, fmt.Errorf("arpshare: %w", err)
	}
	s := &Sharer{host: host, cfg: cfg, sess: sess, known: map[netip.Addr]knownEntry{}}
	sess.SetMessageHandler(func(from gcs.GroupMember, _ string, payload []byte) {
		if from.Daemon == daemon.ID() {
			return // our own announcement
		}
		s.onShare(payload)
	})
	if err := sess.Join(cfg.group()); err != nil {
		return nil, fmt.Errorf("arpshare: %w", err)
	}
	return s, nil
}

// Start begins the periodic announcements.
func (s *Sharer) Start() {
	if s.running {
		return
	}
	s.running = true
	var tick func()
	tick = func() {
		if !s.running {
			return
		}
		s.announce()
		s.collect()
		s.timer = s.host.AfterFunc(s.cfg.interval(), tick)
	}
	tick()
}

// Stop halts sharing; the session leaves the group.
func (s *Sharer) Stop() {
	if !s.running {
		return
	}
	s.running = false
	if s.timer != nil {
		s.timer.Stop()
	}
	if err := s.sess.Disconnect(); err != nil {
		_ = err // already severed
	}
}

// announce multicasts this host's fresh ARP entries.
func (s *Sharer) announce() {
	var entries []Entry
	for _, nic := range s.host.NICs() {
		for ip, mac := range nic.ARPEntries() {
			entries = append(entries, Entry{IP: ip, MAC: mac})
		}
		// This host itself is notification-worthy for its peers.
		entries = append(entries, Entry{IP: nic.Primary(), MAC: nic.MAC()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].IP.Less(entries[j].IP) })
	if err := s.sess.Multicast(s.cfg.group(), encodeShare(entries)); err != nil {
		_ = err // session severed; Stop will follow
	}
}

// onShare merges a peer's announcement.
func (s *Sharer) onShare(payload []byte) {
	entries, err := decodeShare(payload)
	if err != nil {
		return // garbage from a confused peer; ignore
	}
	now := s.host.Now()
	for _, e := range entries {
		s.known[e.IP] = knownEntry{mac: e.MAC, lastSeen: now}
	}
}

// collect garbage-collects entries that have not been re-announced within
// the hold time.
func (s *Sharer) collect() {
	cutoff := s.host.Now().Add(-s.cfg.holdTime())
	for ip, e := range s.known {
		if e.lastSeen.Before(cutoff) {
			delete(s.known, ip)
		}
	}
}

// Known returns the current notification set, sorted by address.
func (s *Sharer) Known() []Entry {
	out := make([]Entry, 0, len(s.known))
	for ip, e := range s.known {
		out = append(out, Entry{IP: ip, MAC: e.mac})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP.Less(out[j].IP) })
	return out
}

// Notifier wraps inner so that every announcement is followed by unicast
// spoofed ARP replies to each known host on the virtual address's network.
func (s *Sharer) Notifier(inner arp.Notifier) arp.Notifier {
	if inner == nil {
		inner = arp.NopNotifier{}
	}
	return &sharingNotifier{sharer: s, inner: inner}
}

type sharingNotifier struct {
	sharer *Sharer
	inner  arp.Notifier
}

// Announce implements arp.Notifier.
func (n *sharingNotifier) Announce(vip netip.Addr) {
	n.inner.Announce(vip)
	s := n.sharer
	for _, nic := range s.host.NICs() {
		if !nic.Prefix().Contains(vip) {
			continue
		}
		for ip, e := range s.known {
			if !nic.Prefix().Contains(ip) || nic.HasAddr(ip) {
				continue
			}
			if err := s.host.SendSpoofedARP(nic, vip, e.mac); err != nil {
				_ = err // interface mid-failure
			}
		}
		return
	}
}

// Withdraw implements arp.Notifier.
func (n *sharingNotifier) Withdraw(vip netip.Addr) { n.inner.Withdraw(vip) }

var _ arp.Notifier = (*sharingNotifier)(nil)

// encodeShare serializes entries as count-prefixed (IPv4, MAC) pairs.
func encodeShare(entries []Entry) []byte {
	w := wire.NewWriter(4 + 10*len(entries))
	w.U16(uint16(len(entries)))
	for _, e := range entries {
		a := e.IP.As4()
		w.U8(a[0])
		w.U8(a[1])
		w.U8(a[2])
		w.U8(a[3])
		m := e.MAC.Bytes()
		for _, b := range m {
			w.U8(b)
		}
	}
	return w.Bytes()
}

func decodeShare(payload []byte) ([]Entry, error) {
	r := wire.NewReader(payload)
	n := int(r.U16())
	entries := make([]Entry, 0, n)
	for i := 0; i < n; i++ {
		a := [4]byte{r.U8(), r.U8(), r.U8(), r.U8()}
		var m [6]byte
		for j := range m {
			m[j] = r.U8()
		}
		entries = append(entries, Entry{IP: netip.AddrFrom4(a), MAC: netsim.MACFromBytes(m)})
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return entries, nil
}

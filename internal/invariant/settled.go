package invariant

import (
	"fmt"
	"net/netip"
	"time"

	"wackamole/internal/core"
)

// ClusterView is the read-only slice of a cluster the settled-state checks
// need: reachability partition, per-server service/interface state and the
// VIP-group naming scheme. It is a bundle of closures rather than an
// interface so harnesses (the simulated cluster, future sharded layouts)
// can expose it without a dependency on this package's consumers;
// wackamole.(*Cluster).InvariantView builds one.
type ClusterView struct {
	// Servers and VIPs size the cluster.
	Servers int
	VIPs    int
	// Components partitions the reachable servers; singleton components for
	// isolated servers, ordered by first-seen server index.
	Components func() [][]int
	// InService reports whether server i's node is connected to its daemon
	// and serving.
	InService func(i int) bool
	// Reachable reports whether server i's host is up and attached.
	Reachable func(i int) bool
	// HasVIP reports whether server i's interface currently answers for
	// virtual address j.
	HasVIP func(i, j int) bool
	// VIPAddr is virtual address j as an IP (for messages).
	VIPAddr func(j int) netip.Addr
	// GroupName is the VIP group name allocated to address j.
	GroupName func(j int) string
	// Status is server i's engine status snapshot.
	Status func(i int) core.Status
}

// SettledProblem demands the settled-state properties of a quiescent
// cluster: Property 1 (exactly-once coverage per component), Property 2
// (one view, one table per component) and interface/engine agreement —
// the paper's correctness claims at rest, complementing the online oracles
// that watch the event streams. It returns the violated oracle name and a
// description, or ("", "") when the cluster is clean. Callers own the
// retry policy: a transient failure is legitimate while a balance is
// mid-flight, so the checker re-runs the probe once after an extra second
// before declaring a violation.
func SettledProblem(cv ClusterView) (oracle, detail string) {
	for _, comp := range cv.Components() {
		var serving []int
		for _, i := range comp {
			if cv.InService(i) {
				serving = append(serving, i)
			}
		}
		if len(serving) == 0 {
			// A component with no in-service node must hold nothing: its
			// engines released (or never had) every address.
			for _, i := range comp {
				for j := 0; j < cv.VIPs; j++ {
					if cv.HasVIP(i, j) {
						return OracleForeignClaim, fmt.Sprintf(
							"server %d holds %v although no node in component %v is in service",
							i, cv.VIPAddr(j), comp)
					}
				}
			}
			continue
		}

		// Property 2: every in-service member of the component has settled
		// on the same view and the same allocation table.
		ref := cv.Status(serving[0])
		if ref.State != core.StateRun {
			return OracleConvergence, fmt.Sprintf(
				"server %d still in state %v after the settle bound (component %v)",
				serving[0], ref.State, comp)
		}
		for _, i := range serving[1:] {
			st := cv.Status(i)
			if st.State != core.StateRun {
				return OracleConvergence, fmt.Sprintf(
					"server %d still in state %v after the settle bound (component %v)",
					i, st.State, comp)
			}
			if st.ViewID != ref.ViewID {
				return OracleConvergence, fmt.Sprintf(
					"servers %d and %d settled on different views %q and %q in component %v",
					serving[0], i, ref.ViewID, st.ViewID, comp)
			}
			if !tablesEqual(ref.Table, st.Table) {
				return OracleConvergence, fmt.Sprintf(
					"servers %d and %d settled on different tables in view %q: %v vs %v",
					serving[0], i, ref.ViewID, ref.Table, st.Table)
			}
		}

		// Property 1: exactly one holder per virtual address within the
		// component — counting every reachable interface, in service or
		// not, because a stale interface answering ARP is a real conflict.
		for j := 0; j < cv.VIPs; j++ {
			var holders []int
			for _, i := range comp {
				if cv.HasVIP(i, j) {
					holders = append(holders, i)
				}
			}
			if len(holders) != 1 {
				return OracleExactlyOnce, fmt.Sprintf(
					"%v has %d holders %v in component %v (want exactly one)",
					cv.VIPAddr(j), len(holders), holders, comp)
			}
		}
	}

	// Oracle (e), settled half: every reachable interface holds exactly the
	// addresses its engine believes it owns.
	for i := 0; i < cv.Servers; i++ {
		if !cv.Reachable(i) {
			continue
		}
		owned := map[string]bool{}
		for _, g := range cv.Status(i).Owned {
			owned[g] = true
		}
		for j := 0; j < cv.VIPs; j++ {
			has := cv.HasVIP(i, j)
			wants := owned[cv.GroupName(j)]
			if has != wants {
				return OracleForeignClaim, fmt.Sprintf(
					"server %d interface and engine disagree on %v: interface=%v engine=%v",
					i, cv.VIPAddr(j), has, wants)
			}
		}
	}
	return "", ""
}

// CheckSettled runs SettledProblem with the standard one-retry policy: a
// transient failure is tolerated once (an in-flight balance legitimately
// moves an address between two interfaces in a sub-millisecond window),
// with runFor advancing the cluster the extra second between probes;
// persistent failures are recorded on the monitor.
func (m *Monitor) CheckSettled(cv ClusterView, runFor func(time.Duration)) {
	if m == nil {
		return
	}
	oracle, detail := SettledProblem(cv)
	if oracle == "" {
		return
	}
	if runFor != nil {
		runFor(time.Second)
		oracle, detail = SettledProblem(cv)
	}
	if oracle != "" {
		m.Fail(oracle, "%s", detail)
	}
}

func tablesEqual(a, b map[string]core.MemberID) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// Package invariant is the always-on protocol-invariant monitor layer: the
// five oracles the model checker introduced (exactly-once coverage, bounded
// convergence, view order, Agreed delivery order, foreign claim) plus the
// two gray-failure oracles (bounded ownership ping-pong under flap, bounded
// false-detection rate on lossy-but-alive links) and the placement-plane
// churn oracle (bounded VIP relocations per reconfiguration) packaged as a
// Monitor that
// attaches to any set of nodes through the existing nil-safe observation
// hooks (core.SetViewHook, core.SetOwnershipHook, gcs.SetDeliveryHandler). The checker consumes it in Strict mode, where
// state is unbounded and findings are byte-identical to the original
// internal/check oracles; every other consumer — wackload traffic sweeps,
// wacksim experiments, a live wackamole daemon — arms it in online mode,
// where per-node and per-ring state is pre-sized and bounded so the hot
// path (one callback per Agreed delivery) allocates nothing, the way the
// Derecho runtime-checking work runs its predicates continuously in
// production-shaped deployments rather than only under a checker.
//
// A Monitor is safe for concurrent hook callbacks: under the deterministic
// simulator everything runs on one goroutine, but the realtime environment
// drives each node from its own loop goroutine and the monitor is the one
// piece of state they share.
package invariant

import (
	"fmt"
	"sync"
	"time"

	"wackamole/internal/core"
	"wackamole/internal/gcs"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
)

// Defaults for the online mode's bounded state.
const (
	// DefaultWindow is the per-ring cross-node origin-agreement window: how
	// many recent (ring, seq) slots are retained for the delivery-order
	// oracle. Deliveries more than a window behind the newest one on their
	// ring fall out of the comparison (they can no longer conflict in a
	// live system — every attached daemon has long moved past them).
	DefaultWindow = 1024
	// DefaultHistory is the per-node view-installation history retained for
	// the cross-node view-order oracle.
	DefaultHistory = 64
	// DefaultMaxRings bounds how many rings keep an origin window; the
	// least recently delivering ring is evicted first. Rings are created by
	// membership changes, so the bound is generous for any real run.
	DefaultMaxRings = 128
	// DefaultMaxViews bounds the view-identity table (view ID → member
	// list) in online mode; the oldest pinned view is forgotten first.
	DefaultMaxViews = 1024
	// maxShards bounds dynamically registered per-VIP-group shard state.
	maxShards = 1024
)

// Node is the slice of a cluster member the monitor needs to attach its
// hooks; *wackamole.Node satisfies it.
type Node interface {
	Engine() *core.Engine
	Daemon() *gcs.Daemon
	Member() core.MemberID
}

// Config parameterizes a Monitor.
type Config struct {
	// Nodes is the number of attachable node slots (required, >= 1).
	Nodes int
	// Strict selects the model checker's unbounded mode: full view
	// histories, an unbounded origin table, and the batch CheckOrder sweep.
	// Findings in strict mode are byte-identical to the PR-4 oracles. The
	// default (online) mode bounds every structure (Window, History,
	// MaxRings, MaxViews) and checks view order incrementally on each
	// install, so steady-state events allocate nothing.
	Strict bool
	// Window, History, MaxRings and MaxViews size the online mode's
	// bounded state; zero means the Default* constants.
	Window   int
	History  int
	MaxRings int
	MaxViews int
	// Shards pre-registers per-VIP-group ownership state (one shard per
	// group name). Groups observed at runtime but not listed here are
	// registered on first sight, so listing is an allocation warm-up, not a
	// requirement.
	Shards []string
	// Now stamps violations with an offset from the start of the run:
	// virtual time under the simulator, wall time since New otherwise
	// (nil). SetNow may replace it after construction.
	Now func() time.Duration
	// Metrics receives the invariant_* counter families (nil disables).
	Metrics *metrics.Registry
	// Tracer receives one invariant-violation event per detected violation
	// and supplies the trace tail dumped next to a violation artifact (nil
	// disables both).
	Tracer *obs.Tracer
	// ArtifactDir, when set, receives a replayable JSON artifact (plus the
	// trace tail as NDJSON) on the first violation.
	ArtifactDir string
	// Name stems artifact file names and tags trace events; empty means
	// "invariant".
	Name string
	// Meta annotates the violation artifact with enough context to re-run
	// the workload that tripped it (seed, topology, fault, ...).
	Meta map[string]string
	// OnViolation, if set, runs once with the first violation (after the
	// counters, trace event and artifact are recorded).
	OnViolation func(*Violation)

	// PingPongBound arms the ping-pong oracle: a violation trips when any
	// single VIP group is claimed (false→true ownership transition) more
	// than PingPongBound times within PingPongWindow. Zero disables the
	// oracle, so existing consumers are unaffected. Harnesses injecting
	// flap shapes derive the bound from the flap period — each down/up
	// cycle legitimately forces up to two re-claims.
	PingPongBound int
	// PingPongWindow is the sliding window for PingPongBound; zero with a
	// nonzero bound means 10s.
	PingPongWindow time.Duration
	// FalseSuspectBound arms the false-suspicion oracle: a violation trips
	// when attached nodes report more than FalseSuspectBound false
	// detections via OnFalseSuspicion (the caller judges ground truth —
	// the suspected peer was alive and reachable). Zero disables.
	FalseSuspectBound int
	// ChurnBound arms the churn oracle from construction: a violation trips
	// when any single view relocates more than ChurnBound VIP groups
	// between live owners. Zero disables. Harnesses that must exclude
	// cluster formation (whose incremental views legitimately exceed a
	// single-change bound) leave this zero and call ArmChurn once the
	// cluster has settled.
	ChurnBound int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = DefaultWindow
	}
	if c.History <= 0 {
		c.History = DefaultHistory
	}
	if c.MaxRings <= 0 {
		c.MaxRings = DefaultMaxRings
	}
	if c.MaxViews <= 0 {
		c.MaxViews = DefaultMaxViews
	}
	if c.Name == "" {
		c.Name = "invariant"
	}
	if c.PingPongBound > 0 && c.PingPongWindow <= 0 {
		c.PingPongWindow = 10 * time.Second
	}
	return c
}

type delivKey struct {
	ring gcs.RingID
	seq  uint64
}

// churnViewWindow is how many recent views keep a relocation count; views
// complete one at a time, so a handful covers any cross-node install skew.
const churnViewWindow = 8

// churnView is one view's relocation tally.
type churnView struct {
	id    string
	moves int
}

// originSlot is one retained (seq, origin) attribution in a ring's window.
type originSlot struct {
	seq    uint64
	origin gcs.DaemonID
	set    bool
}

// ringState is the online mode's bounded per-ring origin window.
type ringState struct {
	window []originSlot
	touch  uint64 // monotone recency stamp for eviction
}

// Monitor validates the typed hook streams from every attached node
// online. All exported methods are safe for concurrent use and are no-ops
// on a nil receiver, mirroring the tracer/registry idiom.
type Monitor struct {
	mu   sync.Mutex
	cfg  Config
	now  func() time.Duration
	step int

	selfs       []core.MemberID
	currentView []core.View
	installs    uint64
	delivers    uint64

	// viewMembers pins the member list first seen for each view ID; in
	// online mode viewEvict bounds it to MaxViews entries.
	viewMembers  map[string][]core.MemberID
	viewEvict    []string
	viewEvictPos int

	// Strict mode: full per-node installation history and unbounded
	// (ring, seq) → origin table, exactly the PR-4 oracle state.
	installsAll [][]core.View
	origins     map[delivKey]gcs.DaemonID

	// Online mode: bounded per-node view-history rings and per-ring origin
	// windows.
	hist      [][]string
	histStart []int
	histLen   []int
	rings     map[gcs.RingID]*ringState
	ringTick  uint64

	// lastSeq is each daemon's last delivered seq per ring (both modes).
	lastSeq []map[gcs.RingID]uint64

	// Shard-aware ownership state: one claim bitmap per VIP group, so
	// sharded ownership (ROADMAP item 1) is checked per shard rather than
	// whole-table.
	shardIdx    map[string]int
	shardNames  []string
	shardClaims [][]bool
	shardCount  []int
	multiOwner  int

	// Ping-pong oracle state: per-shard ring of the PingPongBound+1 most
	// recent claim times (allocated per shard only when the oracle is
	// armed), plus head cursor and fill count.
	claimTimes [][]time.Duration
	claimHead  []int
	claimLen   []int

	// False-suspicion oracle state: detections judged false by callers.
	falseSuspects int

	// Churn oracle state: per-shard last acquiring node slot (-1 until the
	// first acquisition) and the view that last counted the shard as
	// relocated, plus a small ring of per-view relocation counts. The owner
	// history is maintained even while the oracle is disarmed, so ArmChurn
	// can arm it mid-run with full context.
	churnBound    int
	lastOwner     []int
	lastMovedView []string
	churnViews    [churnViewWindow]churnView
	churnViewPos  int

	violation         *Violation
	violationReported bool

	viewsC, delivC, ownC, violC *metrics.Counter
	oracleC                     map[string]*metrics.Counter
	multiG                      *metrics.Gauge

	artifactPath, tracePath string
	artifactErr             error
}

// New builds a Monitor for cfg.Nodes attachable nodes.
func New(cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	if cfg.Nodes < 1 {
		cfg.Nodes = 1
	}
	m := &Monitor{
		cfg:         cfg,
		now:         cfg.Now,
		selfs:       make([]core.MemberID, cfg.Nodes),
		currentView: make([]core.View, cfg.Nodes),
		viewMembers: make(map[string][]core.MemberID),
		lastSeq:     make([]map[gcs.RingID]uint64, cfg.Nodes),
		shardIdx:    make(map[string]int),
	}
	for i := range m.lastSeq {
		m.lastSeq[i] = map[gcs.RingID]uint64{}
	}
	m.churnBound = cfg.ChurnBound
	if m.now == nil {
		start := time.Now()
		m.now = func() time.Duration { return time.Since(start) }
	}
	if cfg.Strict {
		m.installsAll = make([][]core.View, cfg.Nodes)
		m.origins = map[delivKey]gcs.DaemonID{}
	} else {
		m.viewEvict = make([]string, 0, cfg.MaxViews)
		m.hist = make([][]string, cfg.Nodes)
		for i := range m.hist {
			m.hist[i] = make([]string, cfg.History)
		}
		m.histStart = make([]int, cfg.Nodes)
		m.histLen = make([]int, cfg.Nodes)
		m.rings = make(map[gcs.RingID]*ringState, cfg.MaxRings)
	}
	for _, name := range cfg.Shards {
		m.registerShardLocked(name)
	}
	// Counters are resolved once here so the per-event path is a single
	// nil-safe atomic add.
	reg := cfg.Metrics
	m.viewsC = reg.Counter("invariant_view_events_total", "engine view installations observed by invariant monitors")
	m.delivC = reg.Counter("invariant_delivery_events_total", "Agreed deliveries observed by invariant monitors")
	m.ownC = reg.Counter("invariant_ownership_events_total", "ownership changes observed by invariant monitors")
	m.violC = reg.Counter("invariant_violations_total", "protocol-invariant violations detected")
	// Pre-registered per-oracle so /metrics (and wackactl's invariants
	// line) always exposes every oracle at zero instead of materializing
	// series only after the first trip.
	m.oracleC = make(map[string]*metrics.Counter, len(Oracles))
	for _, o := range Oracles {
		m.oracleC[o] = reg.Counter("invariant_oracle_violations_total",
			"protocol-invariant violations detected, by oracle", metrics.L("oracle", o))
	}
	m.multiG = reg.Gauge("invariant_shard_multi_owner", "VIP-group shards currently claimed by more than one attached node")
	return m
}

// SetNow replaces the violation timestamp source; harnesses point it at
// virtual time once the simulation exists. Call before events flow.
func (m *Monitor) SetNow(now func() time.Duration) {
	if m == nil || now == nil {
		return
	}
	m.mu.Lock()
	m.now = now
	m.mu.Unlock()
}

// Attach installs the monitor's observation hooks on node slot i. Call
// after the node is built and before it starts, so no boot event is
// missed; wackamole.ClusterOptions.Invariants does exactly that for every
// simulated server.
func (m *Monitor) Attach(i int, n Node) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.selfs[i] = n.Member()
	m.mu.Unlock()
	n.Engine().AddViewHook(func(v core.View) { m.OnView(i, v) })
	n.Engine().AddOwnershipHook(func(g string, owned bool, viewID string) {
		m.OnOwnership(i, g, owned, viewID)
	})
	n.Daemon().AddDeliveryHandler(func(r gcs.RingID, seq uint64, origin gcs.DaemonID) {
		m.OnDelivery(i, r, seq, origin)
	})
}

// SetSelf records node slot i's member identity without attaching hooks;
// tests driving the event methods directly use it in place of Attach.
func (m *Monitor) SetSelf(i int, self core.MemberID) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.selfs[i] = self
	m.mu.Unlock()
}

// SetStep tags subsequent violations with the schedule step the checker is
// executing; meaningless (and left at zero) outside the checker.
func (m *Monitor) SetStep(step int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.step = step
	m.mu.Unlock()
}

// Violation returns the first oracle failure observed, or nil.
func (m *Monitor) Violation() *Violation {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.violation
}

// Installs totals engine view installations across the attached nodes; the
// convergence oracle uses it to assert membership has stopped changing.
func (m *Monitor) Installs() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return int(m.installs)
}

// Deliveries totals Agreed deliveries observed across the attached nodes.
func (m *Monitor) Deliveries() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.delivers
}

// Fail records a violation found outside the hook streams (the settled
// checks); the first violation wins, later ones are ignored.
func (m *Monitor) Fail(oracle, format string, args ...any) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.failLocked(oracle, format, args...)
	v := m.takeNewViolationLocked()
	m.mu.Unlock()
	m.report(v)
}

// failLocked records the first violation; later ones are ignored so the
// reported failure is always the earliest observable contradiction.
func (m *Monitor) failLocked(oracle, format string, args ...any) *Violation {
	if m.violation != nil {
		return nil
	}
	m.violation = &Violation{
		Oracle: oracle,
		Detail: fmt.Sprintf(format, args...),
		Step:   m.step,
		At:     m.now(),
	}
	return m.violation
}

// report performs the first-violation side effects outside the monitor
// lock: counter, trace event, artifact dump, callback.
func (m *Monitor) report(v *Violation) {
	if v == nil {
		return
	}
	m.violC.Inc()
	m.oracleC[v.Oracle].Inc()
	if m.cfg.Tracer.Enabled() {
		m.cfg.Tracer.Emit(obs.Event{
			Source: obs.SourceInvariant,
			Kind:   obs.KindInvariantViolation,
			Node:   m.cfg.Name,
			Group:  v.Oracle,
			Detail: v.Detail,
		})
	}
	if m.cfg.ArtifactDir != "" {
		m.dumpArtifact(v)
	}
	if m.cfg.OnViolation != nil {
		m.cfg.OnViolation(v)
	}
}

// OnView is the engine view hook for node slot i: the identity half of the
// view-order oracle — the same view ID must always carry the same member
// list — plus history upkeep for the cross-node half.
func (m *Monitor) OnView(i int, v core.View) {
	if m == nil {
		return
	}
	m.viewsC.Inc()
	m.mu.Lock()
	m.installs++
	if prev, ok := m.viewMembers[v.ID]; ok {
		if !sameMembers(prev, v.Members) {
			m.failLocked(OracleViewOrder,
				"view %s installed with diverging member lists: %v vs %v (server %d)",
				v.ID, prev, v.Members, i)
		}
	} else if m.cfg.Strict {
		m.viewMembers[v.ID] = append([]core.MemberID(nil), v.Members...)
	} else {
		// The hook contract hands each node a fresh member-list copy, so
		// pinning the slice directly allocates nothing here.
		m.rememberViewLocked(v.ID, v.Members)
	}
	if m.cfg.Strict {
		m.installsAll[i] = append(m.installsAll[i], v)
		m.currentView[i] = v
	} else {
		// Engines install each view once; a re-observation of the current
		// view is idempotent for ordering purposes and skips the history.
		if v.ID != m.currentView[i].ID {
			m.histAppendLocked(i, v.ID)
			m.currentView[i] = v
			m.orderCheckNodeLocked(i)
		} else {
			m.currentView[i] = v
		}
	}
	viol := m.takeNewViolationLocked()
	m.mu.Unlock()
	m.report(viol)
}

// OnDelivery is the daemon delivery hook for node slot i: each daemon must
// deliver a ring's sequence numbers in increasing order, and no two
// daemons may attribute the same (ring, seq) to different origins —
// together, prefix consistency of the Agreed total order.
func (m *Monitor) OnDelivery(i int, ring gcs.RingID, seq uint64, origin gcs.DaemonID) {
	if m == nil {
		return
	}
	m.delivC.Inc()
	m.mu.Lock()
	m.delivers++
	if last, ok := m.lastSeq[i][ring]; ok && seq <= last {
		m.failLocked(OracleDeliveryOrder,
			"server %d delivered ring %s seq %d after seq %d", i, ring, seq, last)
	}
	m.lastSeq[i][ring] = seq
	if m.cfg.Strict {
		key := delivKey{ring: ring, seq: seq}
		if prev, ok := m.origins[key]; ok {
			if prev != origin {
				m.failLocked(OracleDeliveryOrder,
					"ring %s seq %d delivered from origin %s at server %d but %s elsewhere",
					ring, seq, origin, i, prev)
			}
		} else {
			m.origins[key] = origin
		}
	} else {
		rs := m.rings[ring]
		if rs == nil {
			rs = m.addRingLocked(ring)
		}
		m.ringTick++
		rs.touch = m.ringTick
		slot := &rs.window[seq%uint64(len(rs.window))]
		switch {
		case slot.set && slot.seq == seq:
			if slot.origin != origin {
				m.failLocked(OracleDeliveryOrder,
					"ring %s seq %d delivered from origin %s at server %d but %s elsewhere",
					ring, seq, origin, i, slot.origin)
			}
		case !slot.set || seq > slot.seq:
			slot.seq, slot.origin, slot.set = seq, origin, true
		default:
			// seq fell behind the window: every attached daemon has moved
			// past it, so it can no longer conflict.
		}
	}
	viol := m.takeNewViolationLocked()
	m.mu.Unlock()
	m.report(viol)
}

// OnOwnership is the engine ownership hook for node slot i: the online
// half of the foreign-claim oracle — an engine may only acquire while it
// is a member of its installed view — plus per-shard claim upkeep.
func (m *Monitor) OnOwnership(i int, group string, owned bool, viewID string) {
	if m == nil {
		return
	}
	m.ownC.Inc()
	m.mu.Lock()
	m.trackShardLocked(i, group, owned)
	if !owned {
		m.mu.Unlock()
		return
	}
	m.trackChurnLocked(i, group, viewID)
	v := m.currentView[i]
	if v.ID == "" || v.ID != viewID {
		m.failLocked(OracleForeignClaim,
			"server %d acquired %s under view %q but last installed view is %q",
			i, group, viewID, v.ID)
	} else {
		self := m.selfs[i]
		member := false
		for _, mm := range v.Members {
			if mm == self {
				member = true
				break
			}
		}
		if !member {
			m.failLocked(OracleForeignClaim,
				"server %d acquired %s outside its view %s (members %v)", i, group, v.ID, v.Members)
		}
	}
	viol := m.takeNewViolationLocked()
	m.mu.Unlock()
	m.report(viol)
}

// CheckOrder validates the cross-node half of the view-order oracle: any
// two engines must have installed their common views in the same relative
// order. In strict mode this is the checker's O(nodes² × installs) batch
// sweep over the full histories; online mode re-sweeps the bounded
// histories (each install already checked incrementally, so this is a
// consistency backstop for explicit callers).
func (m *Monitor) CheckOrder() {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.violation == nil {
		if m.cfg.Strict {
			m.checkOrderStrictLocked()
		} else {
			for i := 0; i < m.cfg.Nodes && m.violation == nil; i++ {
				m.orderCheckNodeLocked(i)
			}
		}
	}
	viol := m.takeNewViolationLocked()
	m.mu.Unlock()
	m.report(viol)
}

func (m *Monitor) checkOrderStrictLocked() {
	for a := 0; a < m.cfg.Nodes; a++ {
		pos := make(map[string]int, len(m.installsAll[a]))
		for idx, v := range m.installsAll[a] {
			pos[v.ID] = idx
		}
		for b := a + 1; b < m.cfg.Nodes; b++ {
			lastPos := -1
			var lastID string
			for _, v := range m.installsAll[b] {
				p, ok := pos[v.ID]
				if !ok {
					continue
				}
				if p <= lastPos {
					m.failLocked(OracleViewOrder,
						"servers %d and %d installed views %s and %s in opposite orders",
						a, b, lastID, v.ID)
					return
				}
				lastPos, lastID = p, v.ID
			}
		}
	}
}

// orderCheckNodeLocked runs the pairwise order check between node i and
// every other node over the bounded histories, allocation-free.
func (m *Monitor) orderCheckNodeLocked(i int) {
	for j := 0; j < m.cfg.Nodes; j++ {
		if j == i {
			continue
		}
		a, b := i, j
		if b < a {
			a, b = b, a
		}
		if m.pairOrderLocked(a, b); m.violation != nil {
			return
		}
	}
}

// pairOrderLocked checks one node pair: walk b's retained history and
// demand that the positions (in a's history) of their common views are
// strictly increasing — the same predicate as the strict batch sweep,
// restricted to the bounded windows.
func (m *Monitor) pairOrderLocked(a, b int) {
	lastPos := -1
	var lastID string
	for bi := 0; bi < m.histLen[b]; bi++ {
		id := m.histAtLocked(b, bi)
		p := -1
		for ai := m.histLen[a] - 1; ai >= 0; ai-- {
			if m.histAtLocked(a, ai) == id {
				p = ai
				break
			}
		}
		if p < 0 {
			continue
		}
		if p <= lastPos {
			m.failLocked(OracleViewOrder,
				"servers %d and %d installed views %s and %s in opposite orders",
				a, b, lastID, id)
			return
		}
		lastPos, lastID = p, id
	}
}

func (m *Monitor) histAtLocked(n, k int) string {
	h := m.hist[n]
	return h[(m.histStart[n]+k)%len(h)]
}

func (m *Monitor) histAppendLocked(i int, id string) {
	h := m.hist[i]
	if m.histLen[i] < len(h) {
		h[(m.histStart[i]+m.histLen[i])%len(h)] = id
		m.histLen[i]++
	} else {
		h[m.histStart[i]] = id
		m.histStart[i] = (m.histStart[i] + 1) % len(h)
	}
}

// rememberViewLocked pins a view's member list, evicting the oldest pinned
// view once MaxViews are retained (online mode only).
func (m *Monitor) rememberViewLocked(id string, members []core.MemberID) {
	if len(m.viewEvict) < cap(m.viewEvict) {
		m.viewEvict = append(m.viewEvict, id)
	} else {
		delete(m.viewMembers, m.viewEvict[m.viewEvictPos])
		m.viewEvict[m.viewEvictPos] = id
		m.viewEvictPos = (m.viewEvictPos + 1) % len(m.viewEvict)
	}
	m.viewMembers[id] = members
}

// addRingLocked creates a ring's origin window, evicting the least
// recently delivering ring beyond MaxRings.
func (m *Monitor) addRingLocked(ring gcs.RingID) *ringState {
	if len(m.rings) >= m.cfg.MaxRings {
		var oldest gcs.RingID
		var oldestTouch uint64
		first := true
		for id, rs := range m.rings {
			if first || rs.touch < oldestTouch {
				oldest, oldestTouch, first = id, rs.touch, false
			}
		}
		delete(m.rings, oldest)
	}
	rs := &ringState{window: make([]originSlot, m.cfg.Window)}
	m.rings[ring] = rs
	return rs
}

// registerShardLocked allocates claim state for one VIP group.
func (m *Monitor) registerShardLocked(name string) int {
	if idx, ok := m.shardIdx[name]; ok {
		return idx
	}
	idx := len(m.shardNames)
	m.shardIdx[name] = idx
	m.shardNames = append(m.shardNames, name)
	m.shardClaims = append(m.shardClaims, make([]bool, m.cfg.Nodes))
	m.shardCount = append(m.shardCount, 0)
	m.lastOwner = append(m.lastOwner, -1)
	m.lastMovedView = append(m.lastMovedView, "")
	if m.cfg.PingPongBound > 0 {
		m.claimTimes = append(m.claimTimes, make([]time.Duration, m.cfg.PingPongBound+1))
		m.claimHead = append(m.claimHead, 0)
		m.claimLen = append(m.claimLen, 0)
	}
	return idx
}

// trackShardLocked maintains the per-shard claim bitmaps and the
// multi-owner gauge. Transient multi-ownership is legitimate during
// partitions and handoffs, so it is surfaced as a gauge rather than a
// violation; the settled exactly-once check is the hard oracle.
func (m *Monitor) trackShardLocked(i int, group string, owned bool) {
	idx, ok := m.shardIdx[group]
	if !ok {
		if len(m.shardNames) >= maxShards {
			return
		}
		idx = m.registerShardLocked(group)
	}
	claims := m.shardClaims[idx]
	if claims[i] == owned {
		return
	}
	claims[i] = owned
	before := m.shardCount[idx]
	if owned {
		m.shardCount[idx]++
		if m.cfg.PingPongBound > 0 {
			m.recordClaimLocked(idx)
		}
	} else {
		m.shardCount[idx]--
	}
	after := m.shardCount[idx]
	if before <= 1 && after > 1 {
		m.multiOwner++
		m.multiG.Set(int64(m.multiOwner))
	} else if before > 1 && after <= 1 {
		m.multiOwner--
		m.multiG.Set(int64(m.multiOwner))
	}
}

// recordClaimLocked feeds one claim (false→true ownership transition) into
// the shard's timestamp ring and trips the ping-pong oracle when the ring —
// PingPongBound+1 claims — fits inside PingPongWindow: more re-claims than
// the bound allows, the ownership livelock a flapping link induces.
func (m *Monitor) recordClaimLocked(idx int) {
	ring := m.claimTimes[idx]
	now := m.now()
	ring[m.claimHead[idx]] = now
	m.claimHead[idx] = (m.claimHead[idx] + 1) % len(ring)
	if m.claimLen[idx] < len(ring) {
		m.claimLen[idx]++
	}
	if m.claimLen[idx] < len(ring) {
		return
	}
	// Ring full: the next write position holds the oldest retained claim.
	oldest := ring[m.claimHead[idx]]
	if span := now - oldest; span <= m.cfg.PingPongWindow {
		m.failLocked(OraclePingPong,
			"group %s claimed %d times within %v (bound %d per %v) — ownership ping-pong",
			m.shardNames[idx], len(ring), span, m.cfg.PingPongBound, m.cfg.PingPongWindow)
	}
}

// ArmChurn arms (or re-arms) the churn oracle with a fresh bound: from now
// on, any single view relocating more than bound VIP groups between live
// owners trips the oracle. Per-view relocation counts accumulated before
// arming are discarded — rolling-restart harnesses arm after the cluster
// has settled, so formation churn never counts against the bound — while
// the per-shard owner history is retained. Zero or negative disarms.
func (m *Monitor) ArmChurn(bound int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.churnBound = bound
	m.churnViews = [churnViewWindow]churnView{}
	m.churnViewPos = 0
	// The per-view dedup marks restart with the tallies (a shard that moved
	// before arming may legitimately move once more in the same view); only
	// the owner history itself survives.
	for i := range m.lastMovedView {
		m.lastMovedView[i] = ""
	}
	m.mu.Unlock()
}

// trackChurnLocked feeds one acquisition into the churn oracle: a
// relocation is an acquire of a group last acquired by a different node.
// Each shard counts at most once per view (a re-claim inside one view is
// ping-pong, not placement churn), and the count is kept per view so the
// bound applies to a single reconfiguration, not a whole run.
func (m *Monitor) trackChurnLocked(i int, group, viewID string) {
	idx, ok := m.shardIdx[group]
	if !ok {
		return
	}
	prev := m.lastOwner[idx]
	m.lastOwner[idx] = i
	if prev < 0 || prev == i || viewID == "" {
		return
	}
	if m.lastMovedView[idx] == viewID {
		return
	}
	m.lastMovedView[idx] = viewID
	moves := m.bumpChurnViewLocked(viewID)
	if m.churnBound > 0 && moves > m.churnBound {
		m.failLocked(OracleChurn,
			"view %s relocated %d VIP groups (bound %d): %s moved from server %d to server %d",
			viewID, moves, m.churnBound, group, prev, i)
	}
}

// bumpChurnViewLocked increments viewID's relocation count, recycling the
// ring slot after the oldest view when the window is full.
func (m *Monitor) bumpChurnViewLocked(viewID string) int {
	for k := range m.churnViews {
		if m.churnViews[k].id == viewID {
			m.churnViews[k].moves++
			return m.churnViews[k].moves
		}
	}
	m.churnViews[m.churnViewPos] = churnView{id: viewID, moves: 1}
	m.churnViewPos = (m.churnViewPos + 1) % churnViewWindow
	return 1
}

// ViewMoves reports how many relocations the churn oracle has counted for
// viewID (0 if the view fell out of the window or never moved anything).
func (m *Monitor) ViewMoves(viewID string) int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for k := range m.churnViews {
		if m.churnViews[k].id == viewID {
			return m.churnViews[k].moves
		}
	}
	return 0
}

// OnFalseSuspicion records that node slot i declared peer failed while
// ground truth — judged by the caller, which knows whether the peer's host
// was alive, its interface up and both sides in the same partition — says
// the peer was reachable. Trips the false-suspect oracle once more than
// FalseSuspectBound false detections accumulate across all attached nodes.
func (m *Monitor) OnFalseSuspicion(i int, peer string) {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.cfg.FalseSuspectBound <= 0 {
		m.mu.Unlock()
		return
	}
	m.falseSuspects++
	if m.falseSuspects > m.cfg.FalseSuspectBound {
		m.failLocked(OracleFalseSuspect,
			"server %d falsely declared %s failed (%d false detections exceed bound %d)",
			i, peer, m.falseSuspects, m.cfg.FalseSuspectBound)
	}
	viol := m.takeNewViolationLocked()
	m.mu.Unlock()
	m.report(viol)
}

// FalseSuspicions reports how many false detections have been recorded via
// OnFalseSuspicion (0 when the oracle is disarmed).
func (m *Monitor) FalseSuspicions() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.falseSuspects
}

// ShardOwners reports how many attached nodes currently claim group (0 if
// the group has produced no ownership event yet).
func (m *Monitor) ShardOwners(group string) int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if idx, ok := m.shardIdx[group]; ok {
		return m.shardCount[idx]
	}
	return 0
}

// takeNewViolationLocked hands the violation to the caller exactly once
// for side-effect reporting.
func (m *Monitor) takeNewViolationLocked() *Violation {
	if m.violation != nil && !m.violationReported {
		m.violationReported = true
		return m.violation
	}
	return nil
}

func sameMembers(a, b []core.MemberID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package invariant

import (
	"strings"
	"testing"
)

// churnMonitor builds a 2-node monitor with the churn oracle armed at
// bound, both nodes in view v1, and node 0 owning g1..gN under v1 (first
// acquisitions are free — there is no previous owner to move from).
func churnMonitor(bound int, groups ...string) *Monitor {
	m := onlineMonitor(2, Config{Shards: groups, ChurnBound: bound})
	m.OnView(0, view("v1", "a", "b"))
	m.OnView(1, view("v1", "a", "b"))
	for _, g := range groups {
		m.OnOwnership(0, g, true, "v1")
	}
	return m
}

func installView(m *Monitor, id string) {
	m.OnView(0, view(id, "a", "b"))
	m.OnView(1, view(id, "a", "b"))
}

func TestChurnOracleTrips(t *testing.T) {
	m := churnMonitor(2, "g1", "g2", "g3")
	if v := m.Violation(); v != nil {
		t.Fatalf("initial acquisitions tripped an oracle: %v", v)
	}

	installView(m, "v2")
	m.OnOwnership(0, "g1", false, "v2")
	m.OnOwnership(1, "g1", true, "v2")
	m.OnOwnership(0, "g2", false, "v2")
	m.OnOwnership(1, "g2", true, "v2")
	if v := m.Violation(); v != nil {
		t.Fatalf("2 relocations with bound 2 tripped: %v", v)
	}
	if got := m.ViewMoves("v2"); got != 2 {
		t.Fatalf("ViewMoves(v2) = %d, want 2", got)
	}

	m.OnOwnership(0, "g3", false, "v2")
	m.OnOwnership(1, "g3", true, "v2")
	v := m.Violation()
	if v == nil {
		t.Fatal("3 relocations in one view with bound 2 did not trip the churn oracle")
	}
	if v.Oracle != OracleChurn {
		t.Fatalf("oracle = %q, want %q", v.Oracle, OracleChurn)
	}
	if !strings.Contains(v.Detail, "v2") || !strings.Contains(v.Detail, "g3") {
		t.Fatalf("violation detail names neither view nor group: %q", v.Detail)
	}
}

// The bound applies per view: relocations in successive reconfigurations
// never accumulate against each other.
func TestChurnOraclePerView(t *testing.T) {
	m := churnMonitor(1, "g1")
	for k, id := range []string{"v2", "v3", "v4"} {
		installView(m, id)
		from, to := k%2, (k+1)%2
		m.OnOwnership(from, "g1", false, id)
		m.OnOwnership(to, "g1", true, id)
	}
	if v := m.Violation(); v != nil {
		t.Fatalf("one relocation per view with bound 1 tripped: %v", v)
	}
}

// A shard counts once per view, however often it is re-claimed inside it —
// intra-view ping-pong is the ping-pong oracle's jurisdiction.
func TestChurnOracleDedupsWithinView(t *testing.T) {
	m := churnMonitor(1, "g1")
	installView(m, "v2")
	for k := 0; k < 4; k++ {
		from, to := k%2, (k+1)%2
		m.OnOwnership(from, "g1", false, "v2")
		m.OnOwnership(to, "g1", true, "v2")
	}
	if v := m.Violation(); v != nil {
		t.Fatalf("re-claims of one shard within one view tripped churn: %v", v)
	}
	if got := m.ViewMoves("v2"); got != 1 {
		t.Fatalf("ViewMoves(v2) = %d, want 1", got)
	}
}

func TestChurnOracleDisarmedByDefault(t *testing.T) {
	m := churnMonitor(0, "g1", "g2", "g3")
	installView(m, "v2")
	for _, g := range []string{"g1", "g2", "g3"} {
		m.OnOwnership(0, g, false, "v2")
		m.OnOwnership(1, g, true, "v2")
	}
	if v := m.Violation(); v != nil {
		t.Fatalf("disarmed churn oracle tripped: %v", v)
	}
	// Disarmed still counts, so late armers can inspect history.
	if got := m.ViewMoves("v2"); got != 3 {
		t.Fatalf("ViewMoves(v2) = %d while disarmed, want 3", got)
	}
}

// ArmChurn discards pre-arm view counts (formation churn is free) but keeps
// the owner history, so the first post-arm relocation is still recognized.
func TestArmChurnMidRun(t *testing.T) {
	m := churnMonitor(0, "g1", "g2")
	installView(m, "v2")
	m.OnOwnership(0, "g1", false, "v2")
	m.OnOwnership(1, "g1", true, "v2")

	m.ArmChurn(1)
	if got := m.ViewMoves("v2"); got != 0 {
		t.Fatalf("ViewMoves(v2) = %d after arming, want 0", got)
	}
	// One relocation in the same view: within bound, because arming wiped
	// the view's tally.
	m.OnOwnership(1, "g2", true, "v2")
	m.OnOwnership(0, "g2", false, "v2")
	if v := m.Violation(); v != nil {
		t.Fatalf("single post-arm relocation with bound 1 tripped: %v", v)
	}
	// A second relocated shard in the same view exceeds the bound. g1 moves
	// back to node 0: the owner history survived arming, so this is
	// recognized as a relocation.
	m.OnOwnership(1, "g1", false, "v2")
	m.OnOwnership(0, "g1", true, "v2")
	v := m.Violation()
	if v == nil {
		t.Fatal("2 post-arm relocations with bound 1 did not trip")
	}
	if v.Oracle != OracleChurn {
		t.Fatalf("oracle = %q, want %q", v.Oracle, OracleChurn)
	}
}

// The armed churn path must stay allocation-free in steady state: shard
// owner history is pre-sized at registration and the view ring is fixed.
func TestChurnSteadyStateAllocationFree(t *testing.T) {
	m := churnMonitor(1000, "g1")
	installView(m, "v2")
	k := 0
	if avg := testing.AllocsPerRun(200, func() {
		from, to := k%2, (k+1)%2
		m.OnOwnership(from, "g1", false, "v2")
		m.OnOwnership(to, "g1", true, "v2")
		k++
	}); avg != 0 {
		t.Errorf("armed churn ownership path allocates %v per event, want 0", avg)
	}
}

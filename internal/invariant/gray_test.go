package invariant

import (
	"strings"
	"testing"
	"time"
)

// claimRelease drives one full ownership cycle on node 0 so the next claim
// is a fresh false→true transition.
func claimRelease(m *Monitor, group string) {
	m.OnOwnership(0, group, true, "v1")
	m.OnOwnership(0, group, false, "v1")
}

func pingPongMonitor(bound int, window time.Duration, now *time.Duration) *Monitor {
	m := onlineMonitor(2, Config{
		Shards:         []string{"web1"},
		PingPongBound:  bound,
		PingPongWindow: window,
		Now:            func() time.Duration { return *now },
	})
	m.OnView(0, view("v1", "a", "b"))
	m.OnView(1, view("v1", "a", "b"))
	return m
}

func TestPingPongOracleTrips(t *testing.T) {
	var now time.Duration
	m := pingPongMonitor(3, time.Second, &now)

	// Three claims inside the window stay within the bound.
	for k := 0; k < 3; k++ {
		claimRelease(m, "web1")
		now += 100 * time.Millisecond
	}
	if v := m.Violation(); v != nil {
		t.Fatalf("bound-respecting claims tripped an oracle: %v", v)
	}

	// The fourth claim lands 300ms after the first: bound+1 claims in 1s.
	claimRelease(m, "web1")
	v := m.Violation()
	if v == nil {
		t.Fatal("4 claims in 300ms with bound 3/1s did not trip the ping-pong oracle")
	}
	if v.Oracle != OraclePingPong {
		t.Fatalf("oracle = %q, want %q", v.Oracle, OraclePingPong)
	}
	if !strings.Contains(v.Detail, "web1") {
		t.Fatalf("violation detail does not name the group: %q", v.Detail)
	}
}

func TestPingPongOracleRespectsWindow(t *testing.T) {
	var now time.Duration
	m := pingPongMonitor(3, time.Second, &now)

	// Claims 600ms apart: any 4 consecutive claims span 1.8s > window.
	for k := 0; k < 10; k++ {
		claimRelease(m, "web1")
		now += 600 * time.Millisecond
	}
	if v := m.Violation(); v != nil {
		t.Fatalf("slow re-claims tripped the ping-pong oracle: %v", v)
	}
}

func TestPingPongOracleDisarmedByDefault(t *testing.T) {
	var now time.Duration
	m := onlineMonitor(2, Config{
		Shards: []string{"web1"},
		Now:    func() time.Duration { return *(&now) },
	})
	m.OnView(0, view("v1", "a", "b"))
	for k := 0; k < 50; k++ {
		claimRelease(m, "web1")
	}
	if v := m.Violation(); v != nil {
		t.Fatalf("disarmed ping-pong oracle tripped: %v", v)
	}
}

// Ping-pong state is per shard: churn on one group must not charge another.
func TestPingPongOraclePerShard(t *testing.T) {
	var now time.Duration
	m := pingPongMonitor(3, time.Second, &now)
	for k := 0; k < 2; k++ {
		claimRelease(m, "web1")
		claimRelease(m, "web2") // registered on first sight
	}
	if v := m.Violation(); v != nil {
		t.Fatalf("2 claims per group with bound 3 tripped: %v", v)
	}
}

func TestFalseSuspectOracle(t *testing.T) {
	m := onlineMonitor(3, Config{FalseSuspectBound: 2})
	m.OnFalseSuspicion(0, "10.0.0.11:4803")
	m.OnFalseSuspicion(1, "10.0.0.11:4803")
	if v := m.Violation(); v != nil {
		t.Fatalf("bound-respecting false suspicions tripped: %v", v)
	}
	m.OnFalseSuspicion(2, "10.0.0.12:4803")
	v := m.Violation()
	if v == nil {
		t.Fatal("3 false suspicions with bound 2 did not trip the oracle")
	}
	if v.Oracle != OracleFalseSuspect {
		t.Fatalf("oracle = %q, want %q", v.Oracle, OracleFalseSuspect)
	}
	if got := m.FalseSuspicions(); got != 3 {
		t.Fatalf("FalseSuspicions() = %d, want 3", got)
	}
}

func TestFalseSuspectOracleDisarmedByDefault(t *testing.T) {
	m := onlineMonitor(2, Config{})
	for k := 0; k < 10; k++ {
		m.OnFalseSuspicion(0, "peer")
	}
	if v := m.Violation(); v != nil {
		t.Fatalf("disarmed false-suspect oracle tripped: %v", v)
	}
	if got := m.FalseSuspicions(); got != 0 {
		t.Fatalf("disarmed monitor counted %d false suspicions, want 0", got)
	}
	var nilMon *Monitor
	nilMon.OnFalseSuspicion(0, "peer") // nil-safe like every hook
	if got := nilMon.FalseSuspicions(); got != 0 {
		t.Fatalf("nil monitor FalseSuspicions() = %d", got)
	}
}

// The armed ping-pong path must stay allocation-free in steady state — the
// ring is pre-sized at shard registration.
func TestPingPongSteadyStateAllocationFree(t *testing.T) {
	var now time.Duration
	m := pingPongMonitor(4, time.Millisecond, &now) // tiny window: never trips
	claimRelease(m, "web1")
	owned := true
	if avg := testing.AllocsPerRun(200, func() {
		now += time.Second
		owned = !owned
		m.OnOwnership(0, "web1", owned, "v1")
	}); avg != 0 {
		t.Errorf("armed ping-pong ownership path allocates %v per event, want 0", avg)
	}
}

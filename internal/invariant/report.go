package invariant

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"wackamole/internal/obs"
)

// MonitorArtifact is the replayable record a Monitor dumps on its first
// violation: the violation itself plus the metadata a human (or harness)
// needs to reconstruct the run that tripped it. It mirrors the checker's
// artifact shape — the checker's own artifacts stay richer because they
// embed the full fault schedule; a monitor observing an arbitrary workload
// can only record what it was told via Config.Meta (seed, topology, fault
// plan, CLI flags).
type MonitorArtifact struct {
	// Name is the monitor's Config.Name.
	Name string `json:"name"`
	// Meta is the caller-supplied run context (Config.Meta).
	Meta map[string]string `json:"meta,omitempty"`
	// Violation is the first oracle failure (same wire shape as checker
	// artifacts, so wacktrace/wackcheck tooling reads it unchanged).
	Violation *Violation `json:"violation"`
	// Installs and Deliveries summarize how much protocol activity the
	// monitor had observed when the violation fired.
	Installs   uint64 `json:"installs"`
	Deliveries uint64 `json:"deliveries"`
}

// dumpArtifact writes the violation artifact (and, when a tracer is
// armed, the trace tail as NDJSON) into cfg.ArtifactDir. Called once, on
// the first violation, outside the monitor lock.
func (m *Monitor) dumpArtifact(v *Violation) {
	m.mu.Lock()
	art := MonitorArtifact{
		Name:       m.cfg.Name,
		Meta:       m.cfg.Meta,
		Violation:  v,
		Installs:   m.installs,
		Deliveries: m.delivers,
	}
	m.mu.Unlock()

	record := func(artifact, trace string, err error) {
		m.mu.Lock()
		m.artifactPath, m.tracePath, m.artifactErr = artifact, trace, err
		m.mu.Unlock()
	}

	if err := os.MkdirAll(m.cfg.ArtifactDir, 0o755); err != nil {
		record("", "", fmt.Errorf("invariant: artifact dir: %w", err))
		return
	}
	data, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		record("", "", fmt.Errorf("invariant: marshal artifact: %w", err))
		return
	}
	apath := filepath.Join(m.cfg.ArtifactDir, m.cfg.Name+"-violation.json")
	if err := os.WriteFile(apath, append(data, '\n'), 0o644); err != nil {
		record("", "", fmt.Errorf("invariant: write artifact: %w", err))
		return
	}

	tpath := ""
	if m.cfg.Tracer.Enabled() {
		tpath = filepath.Join(m.cfg.ArtifactDir, m.cfg.Name+"-trace.ndjson")
		f, err := os.Create(tpath)
		if err != nil {
			record(apath, "", fmt.Errorf("invariant: write trace: %w", err))
			return
		}
		werr := obs.WriteNDJSON(f, m.cfg.Tracer.Snapshot())
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			record(apath, "", fmt.Errorf("invariant: write trace: %w", werr))
			return
		}
	}
	record(apath, tpath, nil)
}

// ArtifactPaths reports where the violation artifact and trace tail were
// written ("" when not written), plus any write error.
func (m *Monitor) ArtifactPaths() (artifact, trace string, err error) {
	if m == nil {
		return "", "", nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.artifactPath, m.tracePath, m.artifactErr
}

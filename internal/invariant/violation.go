package invariant

import (
	"encoding/json"
	"fmt"
	"time"
)

// Oracle names, stable across versions because artifacts and shrinking key
// on them.
const (
	OracleExactlyOnce   = "exactly-once"
	OracleConvergence   = "convergence"
	OracleViewOrder     = "view-order"
	OracleDeliveryOrder = "delivery-order"
	OracleForeignClaim  = "foreign-claim"
	// OraclePingPong trips when one VIP group is re-claimed more than a
	// configured bound of times within a sliding window — ownership
	// ping-pong, the livelock a flapping link can induce.
	OraclePingPong = "ping-pong"
	// OracleFalseSuspect trips when attached nodes declare live, reachable
	// peers failed more than a configured bound of times — the
	// false-detection rate a lossy-but-alive link must not exceed.
	OracleFalseSuspect = "false-suspect"
	// OracleChurn trips when one reconfiguration (one view) relocates more
	// VIP groups between live owners than the armed bound — the
	// minimal-move guarantee of the placement plane. A relocation is a
	// group acquired by a node that previously saw it owned by a different
	// node; first-time acquisitions of fresh or orphaned groups are free.
	OracleChurn = "churn"
)

// Oracles lists every oracle name; the monitor pre-registers one labeled
// violation counter per entry and tooling (wackactl status) iterates it.
var Oracles = []string{
	OracleExactlyOnce,
	OracleConvergence,
	OracleViewOrder,
	OracleDeliveryOrder,
	OracleForeignClaim,
	OraclePingPong,
	OracleFalseSuspect,
	OracleChurn,
}

// Violation is the first oracle failure observed during a run.
type Violation struct {
	// Oracle is one of the Oracle* constants.
	Oracle string
	// Detail is a human-readable description of the contradiction.
	Detail string
	// Step is how many schedule events had executed when the violation was
	// detected (0 = during initial formation; always 0 outside the checker).
	Step int
	// At is the virtual time offset from the start of the run.
	At time.Duration
}

func (v *Violation) String() string {
	if v == nil {
		return "<none>"
	}
	return fmt.Sprintf("%s at step %d (+%v): %s", v.Oracle, v.Step, v.At, v.Detail)
}

// violationJSON keeps the serialized violation shape explicit and stable.
type violationJSON struct {
	Oracle string `json:"oracle"`
	Detail string `json:"detail"`
	Step   int    `json:"step"`
	AtNS   int64  `json:"at_ns"`
}

// MarshalJSON implements json.Marshaler.
func (v *Violation) MarshalJSON() ([]byte, error) {
	return json.Marshal(violationJSON{
		Oracle: v.Oracle, Detail: v.Detail, Step: v.Step, AtNS: v.At.Nanoseconds(),
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Violation) UnmarshalJSON(b []byte) error {
	var in violationJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	*v = Violation{Oracle: in.Oracle, Detail: in.Detail, Step: in.Step,
		At: time.Duration(in.AtNS)}
	return nil
}

// Equal reports whether two violations match exactly (same oracle, same
// detail, same step, same virtual time). Replays key on it.
func (v *Violation) Equal(o *Violation) bool {
	if (v == nil) != (o == nil) {
		return false
	}
	if v == nil {
		return true
	}
	return v.Oracle == o.Oracle && v.Detail == o.Detail && v.Step == o.Step && v.At == o.At
}

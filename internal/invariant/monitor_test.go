package invariant

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"wackamole/internal/core"
	"wackamole/internal/gcs"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
)

func onlineMonitor(nodes int, cfg Config) *Monitor {
	cfg.Nodes = nodes
	if cfg.Now == nil {
		cfg.Now = func() time.Duration { return 0 }
	}
	m := New(cfg)
	for i := 0; i < nodes; i++ {
		m.SetSelf(i, core.MemberID(string(rune('a'+i))))
	}
	return m
}

func view(id string, members ...core.MemberID) core.View {
	return core.View{ID: id, Members: members}
}

// The hot path must not allocate once warmed up: steady-state re-observation
// of the current view, in-window deliveries and ownership flips on a known
// shard are the events an always-on production monitor sees millions of
// times. This is the PR's allocation pin.
func TestOnlineHotPathAllocationFree(t *testing.T) {
	reg := metrics.New()
	m := onlineMonitor(2, Config{Metrics: reg, Shards: []string{"web1"}})
	v1 := view("v1", "a", "b")
	ring := gcs.RingID{Coord: "10.0.0.1:4803", Epoch: 1}

	// Warm-up: first sight of the view, the ring and the shard allocates
	// (window, pinned member list, lastSeq entries); afterwards it must not.
	m.OnView(0, v1)
	m.OnView(1, v1)
	var seq uint64
	for k := 0; k < 8; k++ {
		seq++
		m.OnDelivery(0, ring, seq, "10.0.0.1:4803")
		m.OnDelivery(1, ring, seq, "10.0.0.1:4803")
	}
	m.OnOwnership(0, "web1", true, "v1")

	if avg := testing.AllocsPerRun(200, func() { m.OnView(0, v1) }); avg != 0 {
		t.Errorf("OnView steady state allocates %v per event, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		seq++
		m.OnDelivery(0, ring, seq, "10.0.0.1:4803")
	}); avg != 0 {
		t.Errorf("OnDelivery steady state allocates %v per event, want 0", avg)
	}
	owned := true
	if avg := testing.AllocsPerRun(200, func() {
		owned = !owned
		m.OnOwnership(0, "web1", owned, "v1")
	}); avg != 0 {
		t.Errorf("OnOwnership steady state allocates %v per event, want 0", avg)
	}
	if v := m.Violation(); v != nil {
		t.Fatalf("pin workload tripped an oracle: %v", v)
	}
	if got := reg.Counter("invariant_violations_total", "").Value(); got != 0 {
		t.Fatalf("invariant_violations_total = %d, want 0", got)
	}
	if got := reg.Counter("invariant_delivery_events_total", "").Value(); got == 0 {
		t.Fatal("invariant_delivery_events_total not exported")
	}
}

func TestOnlineDeliveryRegression(t *testing.T) {
	m := onlineMonitor(1, Config{})
	ring := gcs.RingID{Coord: "c", Epoch: 1}
	m.OnDelivery(0, ring, 5, "c")
	m.OnDelivery(0, ring, 5, "c")
	v := m.Violation()
	if v == nil || v.Oracle != OracleDeliveryOrder {
		t.Fatalf("violation = %v, want delivery-order", v)
	}
	if want := "server 0 delivered ring c/1 seq 5 after seq 5"; v.Detail != want {
		t.Fatalf("detail = %q, want %q", v.Detail, want)
	}
}

func TestOnlineOriginConflict(t *testing.T) {
	m := onlineMonitor(2, Config{})
	ring := gcs.RingID{Coord: "c", Epoch: 1}
	m.OnDelivery(0, ring, 7, "x")
	m.OnDelivery(1, ring, 7, "y")
	v := m.Violation()
	if v == nil || v.Oracle != OracleDeliveryOrder || !strings.Contains(v.Detail, "but x elsewhere") {
		t.Fatalf("violation = %v, want origin conflict", v)
	}
}

// A seq that has already fallen out of the window cannot conflict anymore;
// the bounded monitor must stay silent rather than compare against a
// recycled slot.
func TestOnlineWindowForgetsOldSeqs(t *testing.T) {
	m := onlineMonitor(2, Config{Window: 8})
	ring := gcs.RingID{Coord: "c", Epoch: 1}
	for seq := uint64(1); seq <= 20; seq++ {
		m.OnDelivery(0, ring, seq, "x")
	}
	// Node 1 trails far behind the window with a different origin: stale,
	// not a conflict.
	m.OnDelivery(1, ring, 2, "y")
	if v := m.Violation(); v != nil {
		t.Fatalf("stale delivery outside the window tripped: %v", v)
	}
}

func TestOnlineViewOrderIncremental(t *testing.T) {
	m := onlineMonitor(2, Config{})
	m.OnView(0, view("v1", "a"))
	m.OnView(0, view("v2", "a", "b"))
	m.OnView(1, view("v2", "a", "b"))
	m.OnView(1, view("v1", "a"))
	v := m.Violation()
	if v == nil || v.Oracle != OracleViewOrder {
		t.Fatalf("violation = %v, want view-order", v)
	}
	if want := "servers 0 and 1 installed views v2 and v1 in opposite orders"; v.Detail != want {
		t.Fatalf("detail = %q, want %q", v.Detail, want)
	}
}

func TestOnlineViewIdentity(t *testing.T) {
	m := onlineMonitor(2, Config{})
	m.OnView(0, view("v1", "a", "b"))
	m.OnView(1, view("v1", "a"))
	v := m.Violation()
	if v == nil || v.Oracle != OracleViewOrder || !strings.Contains(v.Detail, "diverging member lists") {
		t.Fatalf("violation = %v, want diverging member lists", v)
	}
}

func TestOnlineForeignClaim(t *testing.T) {
	t.Run("stale view", func(t *testing.T) {
		m := onlineMonitor(1, Config{})
		m.OnView(0, view("v2", "a"))
		m.OnOwnership(0, "web1", true, "v1")
		v := m.Violation()
		if v == nil || v.Oracle != OracleForeignClaim {
			t.Fatalf("violation = %v, want foreign-claim", v)
		}
	})
	t.Run("not a member", func(t *testing.T) {
		m := onlineMonitor(1, Config{})
		m.SetSelf(0, "z")
		m.OnView(0, view("v1", "a", "b"))
		m.OnOwnership(0, "web1", true, "v1")
		v := m.Violation()
		if v == nil || v.Oracle != OracleForeignClaim || !strings.Contains(v.Detail, "outside its view") {
			t.Fatalf("violation = %v, want outside-view claim", v)
		}
	})
}

func TestShardTracking(t *testing.T) {
	reg := metrics.New()
	m := onlineMonitor(3, Config{Metrics: reg, Shards: []string{"web1", "web2"}})
	gauge := reg.Gauge("invariant_shard_multi_owner", "")
	m.OnView(0, view("v1", "a", "b", "c"))
	m.OnView(1, view("v1", "a", "b", "c"))
	m.OnOwnership(0, "web1", true, "v1")
	if got := m.ShardOwners("web1"); got != 1 {
		t.Fatalf("ShardOwners(web1) = %d, want 1", got)
	}
	if gauge.Value() != 0 {
		t.Fatalf("multi-owner gauge = %d, want 0", gauge.Value())
	}
	m.OnOwnership(1, "web1", true, "v1")
	if got := m.ShardOwners("web1"); got != 2 {
		t.Fatalf("ShardOwners(web1) = %d, want 2", got)
	}
	if gauge.Value() != 1 {
		t.Fatalf("multi-owner gauge = %d, want 1", gauge.Value())
	}
	m.OnOwnership(0, "web1", false, "v1")
	if gauge.Value() != 0 {
		t.Fatalf("multi-owner gauge after release = %d, want 0", gauge.Value())
	}
	if got := m.ShardOwners("web3"); got != 0 {
		t.Fatalf("ShardOwners(unseen) = %d, want 0", got)
	}
}

func TestFirstViolationWins(t *testing.T) {
	var calls []string
	m := onlineMonitor(1, Config{OnViolation: func(v *Violation) { calls = append(calls, v.Detail) }})
	m.Fail(OracleConvergence, "first")
	m.Fail(OracleExactlyOnce, "second")
	ring := gcs.RingID{Coord: "c", Epoch: 1}
	m.OnDelivery(0, ring, 3, "c")
	m.OnDelivery(0, ring, 3, "c") // would be a violation on its own
	if v := m.Violation(); v == nil || v.Detail != "first" {
		t.Fatalf("violation = %v, want the first failure", v)
	}
	if len(calls) != 1 || calls[0] != "first" {
		t.Fatalf("OnViolation calls = %v, want exactly [first]", calls)
	}
}

func TestArtifactDump(t *testing.T) {
	dir := t.TempDir()
	tracer := obs.New(64, nil)
	m := onlineMonitor(1, Config{
		Tracer:      tracer,
		ArtifactDir: dir,
		Name:        "unit",
		Meta:        map[string]string{"seed": "7"},
	})
	m.OnView(0, view("v1", "a"))
	m.Fail(OracleExactlyOnce, "deliberate")
	artifact, trace, err := m.ArtifactPaths()
	if err != nil {
		t.Fatalf("artifact dump: %v", err)
	}
	if artifact != filepath.Join(dir, "unit-violation.json") {
		t.Fatalf("artifact path = %q", artifact)
	}
	raw, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	var got MonitorArtifact
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("artifact not valid JSON: %v", err)
	}
	if got.Name != "unit" || got.Meta["seed"] != "7" || !got.Violation.Equal(m.Violation()) {
		t.Fatalf("artifact round-trip mismatch: %+v", got)
	}
	if got.Installs != 1 {
		t.Fatalf("artifact installs = %d, want 1", got.Installs)
	}
	if _, err := os.Stat(trace); err != nil {
		t.Fatalf("trace tail missing: %v", err)
	}
	// The trace tail must include the invariant-violation event itself.
	tail, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("trace tail unreadable: %v", err)
	}
	found := false
	for _, line := range strings.Split(strings.TrimSpace(string(tail)), "\n") {
		var e obs.Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("trace tail line %q: %v", line, err)
		}
		if e.Kind == obs.KindInvariantViolation && e.Group == OracleExactlyOnce {
			found = true
		}
	}
	if !found {
		t.Fatal("trace tail lacks the invariant-violation event")
	}
}

// Every exported method must be a no-op on a nil monitor, so call sites can
// arm monitors conditionally without branching.
func TestNilMonitor(t *testing.T) {
	var m *Monitor
	m.OnView(0, view("v1", "a"))
	m.OnDelivery(0, gcs.RingID{Coord: "c", Epoch: 1}, 1, "c")
	m.OnOwnership(0, "web1", true, "v1")
	m.CheckOrder()
	m.SetStep(3)
	m.SetNow(func() time.Duration { return 0 })
	m.SetSelf(0, "a")
	m.Fail(OracleConvergence, "x")
	if m.Violation() != nil || m.Installs() != 0 || m.Deliveries() != 0 || m.ShardOwners("g") != 0 {
		t.Fatal("nil monitor reported state")
	}
}

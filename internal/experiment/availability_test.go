package experiment

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"wackamole/internal/load"
	"wackamole/internal/metrics"
)

// quickAvailability keeps unit-test trials small and fast.
func quickAvailability() AvailabilityConfig {
	return AvailabilityConfig{
		Clients:   50,
		Mode:      load.Closed,
		ThinkTime: 200 * time.Millisecond,
		PreFault:  2 * time.Second,
	}
}

func TestAvailabilityTrialWebTakeover(t *testing.T) {
	reg := metrics.New()
	cfg := quickAvailability()
	cfg.Metrics = reg
	sample, res, err := AvailabilityTrial(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sample.Value != res.Interruption || res.Interruption <= 0 {
		t.Fatalf("sample value %v vs interruption %v, want equal and positive", sample.Value, res.Interruption)
	}
	// The fault-free window must be clean.
	if res.Before.Completions == 0 || res.Before.Completions != res.Before.OK {
		t.Fatalf("fault-free window: %d completions, %d ok — want all ok", res.Before.Completions, res.Before.OK)
	}
	// The paper's connection-loss claim: established connections to the
	// failed server are lost (reset), and clients recover afterwards.
	if res.Stats.ConnsLost == 0 {
		t.Error("no connections lost at takeover")
	}
	if res.Stats.Requests[load.ClassReset] == 0 {
		t.Error("no requests classified reset at takeover")
	}
	if res.Recovery < 0.99 {
		t.Errorf("recovery = %v, want ≥ 0.99", res.Recovery)
	}
	if res.After.OK == 0 {
		t.Error("no ok completions after recovery")
	}
	// Traffic must have shifted to a different server after the takeover.
	if len(res.ByServer) < 2 {
		t.Errorf("responses came from %d servers, want ≥ 2 (takeover shifts traffic)", len(res.ByServer))
	}
	// The latency family the CLI exposes via -prom must be populated.
	if hist := reg.Snapshot().MergedHistogram("load_request_latency_seconds"); hist.Count() == 0 {
		t.Error("load_request_latency_seconds histogram family empty")
	}
	// Protocol activity was captured from the cluster.
	if sample.Metrics.ARPSpoofs == 0 {
		t.Error("no ARP spoofs recorded across a takeover")
	}
}

func TestAvailabilityTrialRouter(t *testing.T) {
	cfg := quickAvailability()
	cfg.Topology = TopologyRouter
	cfg.Fault = FaultCrash
	_, res, err := AvailabilityTrial(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Before.Completions == 0 || res.Before.Completions != res.Before.OK {
		t.Fatalf("fault-free window: %d completions, %d ok — want all ok", res.Before.Completions, res.Before.OK)
	}
	if res.Interruption <= 0 {
		t.Fatal("no interruption measured across the router crash")
	}
	// The server never died, so flows survive the routing fail-over: the
	// interruption shows up as timeouts/stale responses, not resets.
	if res.Stats.ConnsLost != 0 {
		t.Errorf("ConnsLost = %d across a router fail-over, want 0 (server state intact)", res.Stats.ConnsLost)
	}
	if res.Recovery < 0.99 {
		t.Errorf("recovery = %v, want ≥ 0.99", res.Recovery)
	}
}

func TestAvailabilityTrialGraceful(t *testing.T) {
	cfg := quickAvailability()
	cfg.Fault = FaultGraceful
	_, res, err := AvailabilityTrial(3, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A graceful leave hands the address over before departing; the
	// disruption must be far below a crash-detection fail-over, and the
	// old server's connections are still reset by the new owner.
	if res.Interruption > 2*time.Second {
		t.Errorf("graceful-leave interruption = %v, implausibly large", res.Interruption)
	}
	if res.Recovery < 0.99 {
		t.Errorf("recovery = %v, want ≥ 0.99", res.Recovery)
	}
}

func TestAvailabilityTrialRolling(t *testing.T) {
	for _, pol := range []string{"least-loaded", "minimal"} {
		t.Run(pol, func(t *testing.T) {
			cfg := quickAvailability()
			cfg.Fault = FaultRolling
			cfg.Placement = pol
			cfg.Servers = 3
			cfg.Invariants = true
			_, res, err := AvailabilityTrial(11, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("invariant violation during rolling restart: %v", res.Violation)
			}
			if len(res.Phases) != 3 {
				t.Fatalf("phases = %d, want one per server (3)", len(res.Phases))
			}
			for i, ph := range res.Phases {
				if ph.Server != i {
					t.Errorf("phase %d restarted server %d, want in-order schedule", i, ph.Server)
				}
				if !ph.End.After(ph.Start) {
					t.Errorf("phase %d window [%v, %v] is empty", i, ph.Start, ph.End)
				}
				// Draining one of three servers must never stall the whole
				// cluster: survivors keep serving through every phase.
				if ph.OK == 0 {
					t.Errorf("phase %d: no ok completions while server %d restarted", i, ph.Server)
				}
				if ph.MaxOKGap <= 0 {
					t.Errorf("phase %d: no ok-gap measured", i)
				}
			}
			if res.Recovery < 0.99 {
				t.Errorf("recovery = %v after the full rolling schedule, want ≥ 0.99", res.Recovery)
			}
		})
	}
}

func TestAvailabilityRollingJSONCarriesPhases(t *testing.T) {
	cfg := quickAvailability()
	cfg.Fault = FaultRolling
	cfg.Placement = "minimal"
	cfg.Servers = 2
	row, err := Availability(13, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rows := AvailabilityJSON(row)
	if len(rows) != 2 {
		t.Fatalf("JSON rows = %d, want aggregate + trial", len(rows))
	}
	for _, r := range rows {
		if r.Extra["disruption_total_s"] <= 0 {
			t.Errorf("%s: disruption_total_s = %v, want > 0", r.Point, r.Extra["disruption_total_s"])
		}
		if _, okk := r.Extra["phase0_max_gap_s"]; !okk {
			t.Errorf("%s: missing phase0_max_gap_s", r.Point)
		}
	}
	if out := RenderAvailability(row); !strings.Contains(out, "rolling phases") {
		t.Errorf("rendered table missing rolling-phase section:\n%s", out)
	}
}

func TestAvailabilityDeterministic(t *testing.T) {
	cfg := quickAvailability()
	run := func() (time.Duration, uint64, uint64) {
		_, res, err := AvailabilityTrial(7, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Interruption, res.Stats.Total(), res.Stats.Requests[load.ClassReset]
	}
	i1, t1, r1 := run()
	i2, t2, r2 := run()
	if i1 != i2 || t1 != t2 || r1 != r2 {
		t.Fatalf("same seed diverged: interruption %v/%v, total %d/%d, resets %d/%d", i1, i2, t1, t2, r1, r2)
	}
}

func TestAvailabilitySweepAndJSON(t *testing.T) {
	rowData, err := Availability(1, 2, quickAvailability(), Parallel(2))
	if err != nil {
		t.Fatal(err)
	}
	if rowData.Stat.N != 2 || len(rowData.Results) != 2 {
		t.Fatalf("stat N = %d, results = %d, want 2 trials", rowData.Stat.N, len(rowData.Results))
	}
	rows := AvailabilityJSON(rowData)
	if len(rows) != 3 {
		t.Fatalf("JSON rows = %d, want 1 aggregate + 2 per-trial", len(rows))
	}
	if rows[0].Extra["reset"] == 0 {
		t.Error("aggregate row carries no reset count")
	}
	for _, r := range rows[1:] {
		if r.Extra["before_requests"] == 0 || r.Extra["before_requests"] != r.Extra["before_ok"] {
			t.Errorf("%s: fault-free window not clean: %+v", r.Point, r.Extra)
		}
	}
	var b bytes.Buffer
	if err := WriteNDJSON(&b, rows); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), "\n"); got != 3 {
		t.Errorf("NDJSON lines = %d, want 3", got)
	}
	if out := RenderAvailability(rowData); !strings.Contains(out, "conns lost") {
		t.Errorf("rendered table missing header: %q", out)
	}
}

func TestAvailabilityTraced(t *testing.T) {
	cfg := quickAvailability()
	row, err := Availability(5, 1, cfg, WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(row.Samples) != 1 || row.Samples[0].Trace == nil {
		t.Fatal("traced sweep produced no trace")
	}
	if len(row.Samples[0].Trace.Events) == 0 {
		t.Fatal("trace carries no events")
	}
	// Flow events must appear in the stream.
	found := false
	for _, e := range row.Samples[0].Trace.Events {
		if e.Source.String() == "flow" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no flow-source events in the trace")
	}
	var b bytes.Buffer
	if err := WriteAvailabilityTrace(&b, row); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"record":"trial"`) || !strings.Contains(b.String(), `"flow-`) {
		t.Error("trace NDJSON missing trial record or flow events")
	}
}

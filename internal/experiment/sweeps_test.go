package experiment

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"wackamole/internal/experiment/runner"
	"wackamole/internal/gcs"
	"wackamole/internal/rip"
)

// These tests exercise every sweep and renderer end to end with one trial
// per point; the shape assertions (paper agreement) live with the per-trial
// tests, and cmd/wacksim provides the full-trial runs.

func TestFigure5SweepAndRender(t *testing.T) {
	rows, err := Figure5(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(Figure5Sizes) {
		t.Fatalf("%d rows, want %d", len(rows), 2*len(Figure5Sizes))
	}
	for _, r := range rows {
		switch r.Config {
		case ConfigDefault:
			if r.Stat.Mean < 9*time.Second || r.Stat.Mean > 13*time.Second {
				t.Fatalf("default n=%d mean %v out of band", r.Size, r.Stat.Mean)
			}
		case ConfigTuned:
			if r.Stat.Mean < 1900*time.Millisecond || r.Stat.Mean > 2800*time.Millisecond {
				t.Fatalf("tuned n=%d mean %v out of band", r.Size, r.Stat.Mean)
			}
		}
		if r.Metrics.MembershipsInstalled == 0 || r.Metrics.FramesSent == 0 {
			t.Fatalf("row %s/n=%d missing metrics: %+v", r.Config, r.Size, r.Metrics)
		}
	}
	out := RenderFigure5(rows)
	if !strings.Contains(out, "cluster size") || strings.Count(out, "\n") < len(rows) {
		t.Fatalf("render:\n%s", out)
	}
	if !strings.Contains(out, "p50") || !strings.Contains(out, "p99") {
		t.Fatalf("render missing percentiles:\n%s", out)
	}
}

func TestTable1SweepAndRender(t *testing.T) {
	rows, err := Table1(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		slack := 200 * time.Millisecond
		if r.Measured.Mean < r.PredictedMin-slack || r.Measured.Mean > r.PredictedMax+slack {
			t.Fatalf("%s measured %v outside predicted [%v, %v]",
				r.Config, r.Measured.Mean, r.PredictedMin, r.PredictedMax)
		}
	}
	out := RenderTable1(rows)
	for _, want := range []string{"Fault-detection", "heartbeat", "Discovery", "Predicted", "Measured", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBaselineSweepAndRender(t *testing.T) {
	rows, err := Baselines(400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	byName := map[string]time.Duration{}
	for _, r := range rows {
		byName[r.System] = r.Stat.Mean
	}
	// Ordering claims from the paper's §7 discussion.
	if byName["wackamole (tuned)"] >= byName["hsrp"] {
		t.Fatalf("tuned wackamole (%v) not faster than hsrp (%v)", byName["wackamole (tuned)"], byName["hsrp"])
	}
	if byName["vrrp"] >= byName["hsrp"] {
		t.Fatalf("vrrp (%v) not faster than hsrp (%v)", byName["vrrp"], byName["hsrp"])
	}
	out := RenderBaselines(rows)
	if !strings.Contains(out, "vrrp") || !strings.Contains(out, "fake") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRouterComparisonAndRender(t *testing.T) {
	rows, err := RouterComparison(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	var naive, all time.Duration
	for _, r := range rows {
		if r.Mode == RouterModeNaive {
			naive = r.Stat.Mean
		} else {
			all = r.Stat.Mean
		}
	}
	if all > 3*time.Second {
		t.Fatalf("advertise-all mean %v, want ≈ fail-over time", all)
	}
	if naive <= all {
		t.Fatalf("naive (%v) not slower than advertise-all (%v)", naive, all)
	}
	out := RenderRouterComparison(rows)
	if !strings.Contains(out, "naive") || !strings.Contains(out, "advertise-all") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAblationSweepAndRender(t *testing.T) {
	rows, err := Ablations(600, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	get := func(experiment, variant string) time.Duration {
		for _, r := range rows {
			if r.Experiment == experiment && strings.HasPrefix(r.Variant, variant) {
				return r.Stat.Mean
			}
		}
		t.Fatalf("row %s/%s missing", experiment, variant)
		return 0
	}
	if get("arp-spoofing (§5.1)", "spoof on") >= get("arp-spoofing (§5.1)", "spoof off") {
		t.Fatal("spoofing did not help")
	}
	if get("re-balancing (§3.4)", "enabled") >= get("re-balancing (§3.4)", "disabled") {
		t.Fatal("balancing did not reduce skew")
	}
	if get("maturity bootstrap (§3.4)", "enabled") >= get("maturity bootstrap (§3.4)", "disabled") {
		t.Fatal("maturity bootstrap did not reduce churn")
	}
	out := RenderAblations(rows)
	if !strings.Contains(out, "duplicate coverage") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRouterTrialNaiveSlowerSameSeed(t *testing.T) {
	cfg := gcs.TunedConfig()
	ripCfg := rip.Config{AdvertisePeriod: rip.DefaultAdvertisePeriod}
	naive, err := RouterTrial(9, RouterModeNaive, cfg, ripCfg)
	if err != nil {
		t.Fatal(err)
	}
	all, err := RouterTrial(9, RouterModeAdvertiseAll, cfg, ripCfg)
	if err != nil {
		t.Fatal(err)
	}
	if naive.Value < all.Value {
		t.Fatalf("naive %v faster than advertise-all %v", naive.Value, all.Value)
	}
}

func TestLoadSensitivityShape(t *testing.T) {
	quiet, err := LoadTrial(11, 0, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Metrics.ViewChanges != 0 {
		t.Fatalf("unloaded cluster had %d false reconfigurations", quiet.Metrics.ViewChanges)
	}
	if quiet.Value > 100*time.Millisecond {
		t.Fatalf("unloaded max gap %v", quiet.Value)
	}
	loaded, err := LoadTrial(11, 600*time.Millisecond, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Metrics.ViewChanges == 0 {
		t.Fatal("heavy jitter produced no false reconfigurations")
	}
}

// TestGracefulParallelMatchesSerial pins the acceptance criterion that the
// worker count never changes a sweep's rows: for the same seeds, a serial
// and a heavily parallel run are identical.
func TestGracefulParallelMatchesSerial(t *testing.T) {
	serial, err := Graceful(77, 2, []int{2, 3}, Parallel(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Graceful(77, 2, []int{2, 3}, Parallel(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel sweep diverged from serial:\n%+v\n---\n%+v", serial, parallel)
	}
}

// TestSweepToleratesPartialPointFailures is the regression test for the
// old Graceful behaviour of aborting the whole sweep on a single trial
// error: with the shared runner, a point keeps its row (with the error
// counted) as long as one trial survives, and only an all-failed point is
// fatal.
func TestSweepToleratesPartialPointFailures(t *testing.T) {
	flaky := runner.Point{
		Label: "flaky",
		Seeds: []int64{1, 2, 3, 4},
		Run: func(seed int64) (runner.Sample, error) {
			if seed%2 == 0 {
				return runner.Sample{}, fmt.Errorf("induced failure")
			}
			return runner.Sample{Value: time.Duration(seed) * time.Second}, nil
		},
	}
	res := runSweep([]runner.Point{flaky}, nil)
	stat, _, errs, err := collectPoint(res[0])
	if err != nil {
		t.Fatalf("partial failures aborted the sweep: %v", err)
	}
	if stat.N != 2 || errs != 2 {
		t.Fatalf("stat.N = %d, errors = %d, want 2 and 2", stat.N, errs)
	}

	dead := flaky
	dead.Label = "dead"
	dead.Run = func(int64) (runner.Sample, error) { return runner.Sample{}, fmt.Errorf("always fails") }
	res = runSweep([]runner.Point{dead}, nil)
	if _, _, _, err := collectPoint(res[0]); err == nil {
		t.Fatal("an all-failed point must abort the sweep")
	} else if !strings.Contains(err.Error(), "all 4 trials failed") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestProgressSinkObservesSweep verifies the pluggable sink sees every
// trial of a real sweep.
func TestProgressSinkObservesSweep(t *testing.T) {
	var events int
	var last runner.Progress
	sink := runner.SinkFunc(func(p runner.Progress) {
		events++
		last = p
	})
	if _, err := Graceful(91, 2, []int{2}, WithSink(sink), Parallel(2)); err != nil {
		t.Fatal(err)
	}
	if events != 2 {
		t.Fatalf("sink saw %d events, want 2", events)
	}
	if last.Done != 2 || last.Total != 2 || !strings.HasPrefix(last.Point, "graceful/") {
		t.Fatalf("last progress event = %+v", last)
	}
}

package experiment

import (
	"strings"
	"testing"
	"time"

	"wackamole/internal/gcs"
	"wackamole/internal/rip"
)

// These tests exercise every sweep and renderer end to end with one trial
// per point; the shape assertions (paper agreement) live with the per-trial
// tests, and cmd/wacksim provides the full-trial runs.

func TestFigure5SweepAndRender(t *testing.T) {
	rows, err := Figure5(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*len(Figure5Sizes) {
		t.Fatalf("%d rows, want %d", len(rows), 2*len(Figure5Sizes))
	}
	for _, r := range rows {
		switch r.Config {
		case ConfigDefault:
			if r.Stat.Mean < 9*time.Second || r.Stat.Mean > 13*time.Second {
				t.Fatalf("default n=%d mean %v out of band", r.Size, r.Stat.Mean)
			}
		case ConfigTuned:
			if r.Stat.Mean < 1900*time.Millisecond || r.Stat.Mean > 2800*time.Millisecond {
				t.Fatalf("tuned n=%d mean %v out of band", r.Size, r.Stat.Mean)
			}
		}
	}
	out := RenderFigure5(rows)
	if !strings.Contains(out, "cluster size") || strings.Count(out, "\n") < len(rows) {
		t.Fatalf("render:\n%s", out)
	}
}

func TestTable1SweepAndRender(t *testing.T) {
	rows, err := Table1(300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	for _, r := range rows {
		slack := 200 * time.Millisecond
		if r.Measured.Mean < r.PredictedMin-slack || r.Measured.Mean > r.PredictedMax+slack {
			t.Fatalf("%s measured %v outside predicted [%v, %v]",
				r.Config, r.Measured.Mean, r.PredictedMin, r.PredictedMax)
		}
	}
	out := RenderTable1(rows)
	for _, want := range []string{"Fault-detection", "heartbeat", "Discovery", "Predicted", "Measured"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestBaselineSweepAndRender(t *testing.T) {
	rows, err := Baselines(400, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	byName := map[string]time.Duration{}
	for _, r := range rows {
		byName[r.System] = r.Stat.Mean
	}
	// Ordering claims from the paper's §7 discussion.
	if byName["wackamole (tuned)"] >= byName["hsrp"] {
		t.Fatalf("tuned wackamole (%v) not faster than hsrp (%v)", byName["wackamole (tuned)"], byName["hsrp"])
	}
	if byName["vrrp"] >= byName["hsrp"] {
		t.Fatalf("vrrp (%v) not faster than hsrp (%v)", byName["vrrp"], byName["hsrp"])
	}
	out := RenderBaselines(rows)
	if !strings.Contains(out, "vrrp") || !strings.Contains(out, "fake") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRouterComparisonAndRender(t *testing.T) {
	rows, err := RouterComparison(500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	var naive, all time.Duration
	for _, r := range rows {
		if r.Mode == RouterModeNaive {
			naive = r.Stat.Mean
		} else {
			all = r.Stat.Mean
		}
	}
	if all > 3*time.Second {
		t.Fatalf("advertise-all mean %v, want ≈ fail-over time", all)
	}
	if naive <= all {
		t.Fatalf("naive (%v) not slower than advertise-all (%v)", naive, all)
	}
	out := RenderRouterComparison(rows)
	if !strings.Contains(out, "naive") || !strings.Contains(out, "advertise-all") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestAblationSweepAndRender(t *testing.T) {
	rows, err := Ablations(600, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("%d rows, want 8", len(rows))
	}
	get := func(experiment, variant string) time.Duration {
		for _, r := range rows {
			if r.Experiment == experiment && strings.HasPrefix(r.Variant, variant) {
				return r.Stat.Mean
			}
		}
		t.Fatalf("row %s/%s missing", experiment, variant)
		return 0
	}
	if get("arp-spoofing (§5.1)", "spoof on") >= get("arp-spoofing (§5.1)", "spoof off") {
		t.Fatal("spoofing did not help")
	}
	if get("re-balancing (§3.4)", "enabled") >= get("re-balancing (§3.4)", "disabled") {
		t.Fatal("balancing did not reduce skew")
	}
	if get("maturity bootstrap (§3.4)", "enabled") >= get("maturity bootstrap (§3.4)", "disabled") {
		t.Fatal("maturity bootstrap did not reduce churn")
	}
	out := RenderAblations(rows)
	if !strings.Contains(out, "duplicate coverage") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestRouterTrialNaiveSlowerSameSeed(t *testing.T) {
	cfg := gcs.TunedConfig()
	ripCfg := rip.Config{AdvertisePeriod: rip.DefaultAdvertisePeriod}
	naive, err := RouterTrial(9, RouterModeNaive, cfg, ripCfg)
	if err != nil {
		t.Fatal(err)
	}
	all, err := RouterTrial(9, RouterModeAdvertiseAll, cfg, ripCfg)
	if err != nil {
		t.Fatal(err)
	}
	if naive < all {
		t.Fatalf("naive %v faster than advertise-all %v", naive, all)
	}
}

func TestLoadSensitivityShape(t *testing.T) {
	quiet, quietGap, err := LoadTrial(11, 0, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if quiet != 0 {
		t.Fatalf("unloaded cluster had %d false reconfigurations", quiet)
	}
	if quietGap > 100*time.Millisecond {
		t.Fatalf("unloaded max gap %v", quietGap)
	}
	loaded, _, err := LoadTrial(11, 600*time.Millisecond, 60*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if loaded == 0 {
		t.Fatal("heavy jitter produced no false reconfigurations")
	}
}

package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"wackamole/internal/obs"
)

// tracedFigure5 runs a small traced sweep: one cluster size, both
// configurations, `trials` seeds each.
func tracedFigure5(t *testing.T, trials, workers int) []Figure5Row {
	t.Helper()
	rows, err := Figure5Over(300, trials, []int{4}, Parallel(workers), WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2 (default and tuned)", len(rows))
	}
	return rows
}

func TestTracedTrialPhasesPartitionTheInterruption(t *testing.T) {
	rows := tracedFigure5(t, 2, 1)
	for _, r := range rows {
		if len(r.Samples) != 2 {
			t.Fatalf("%s/n=%d: samples = %d, want 2", r.Config, r.Size, len(r.Samples))
		}
		for _, s := range r.Samples {
			if s.Trace == nil {
				t.Fatalf("%s/n=%d seed %d: traced sweep lost its trace", r.Config, r.Size, s.Seed)
			}
			if len(s.Trace.Events) == 0 {
				t.Fatalf("%s/n=%d seed %d: no events captured", r.Config, r.Size, s.Seed)
			}
			// The phase boundaries are clamped into the measured gap, so the
			// four phases partition the interruption exactly.
			if got := s.Trace.Phases.Total(); got != s.Value {
				t.Fatalf("%s/n=%d seed %d: phases sum to %v, interruption is %v",
					r.Config, r.Size, s.Seed, got, s.Value)
			}
			// A real fail-over spends measurable time in detection and
			// membership (the Table-1 timeouts dominate the interruption).
			if s.Trace.Phases.Detection <= 0 || s.Trace.Phases.Membership <= 0 {
				t.Fatalf("%s/n=%d seed %d: degenerate breakdown %+v",
					r.Config, r.Size, s.Seed, s.Trace.Phases)
			}
		}
	}
}

func TestTracingDoesNotPerturbTheMeasurement(t *testing.T) {
	plain, err := Figure5Over(300, 2, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	traced := tracedFigure5(t, 2, 1)
	for i := range plain {
		if plain[i].Stat != traced[i].Stat {
			t.Fatalf("row %d: tracing changed the statistics:\nplain  %+v\ntraced %+v",
				i, plain[i].Stat, traced[i].Stat)
		}
	}
}

func TestTracedSweepParallelMatchesSerial(t *testing.T) {
	serial := tracedFigure5(t, 3, 1)
	parallel := tracedFigure5(t, 3, 8)

	var serialJSON, parallelJSON bytes.Buffer
	if err := WriteNDJSON(&serialJSON, Figure5JSON(serial)); err != nil {
		t.Fatal(err)
	}
	if err := WriteNDJSON(&parallelJSON, Figure5JSON(parallel)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialJSON.Bytes(), parallelJSON.Bytes()) {
		t.Fatalf("parallel JSON rows differ from serial:\nserial:\n%s\nparallel:\n%s",
			serialJSON.String(), parallelJSON.String())
	}

	var serialTrace, parallelTrace bytes.Buffer
	if err := WriteFigure5Trace(&serialTrace, serial); err != nil {
		t.Fatal(err)
	}
	if err := WriteFigure5Trace(&parallelTrace, parallel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serialTrace.Bytes(), parallelTrace.Bytes()) {
		t.Fatal("parallel trace stream differs from serial")
	}
}

func TestWriteFigure5TraceShape(t *testing.T) {
	rows := tracedFigure5(t, 1, 1)
	var buf bytes.Buffer
	if err := WriteFigure5Trace(&buf, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	trials, events := 0, 0
	var lastTrialPoint string
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad NDJSON line: %v\n%s", err, line)
		}
		switch rec["record"] {
		case "trial":
			trials++
			lastTrialPoint, _ = rec["point"].(string)
			if rec["experiment"] != "figure5" {
				t.Fatalf("trial record: %s", line)
			}
			phases, ok := rec["phases"].(map[string]any)
			if !ok {
				t.Fatalf("trial record has no phases: %s", line)
			}
			sum := phases["detection_s"].(float64) + phases["membership_s"].(float64) +
				phases["state_sync_s"].(float64) + phases["arp_takeover_s"].(float64)
			if diff := sum - rec["value_s"].(float64); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial phases sum %v != value %v", sum, rec["value_s"])
			}
		case "event":
			events++
			// Every event is joined to its trial by (point, seed).
			if rec["point"] != lastTrialPoint {
				t.Fatalf("event before its trial record: %s", line)
			}
			if _, err := time.Parse(time.RFC3339Nano, rec["at"].(string)); err != nil {
				t.Fatalf("event timestamp: %v\n%s", err, line)
			}
		default:
			t.Fatalf("unknown record type: %s", line)
		}
	}
	if trials != 2 {
		t.Fatalf("trial records = %d, want 2", trials)
	}
	if events == 0 {
		t.Fatal("no event records")
	}
	// Untraced rows write nothing.
	plain, err := Figure5Over(300, 1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFigure5Trace(&buf, plain); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("untraced sweep produced trace output: %q", buf.String())
	}
}

func TestTraceCapturesTheFailoverNarrative(t *testing.T) {
	rows := tracedFigure5(t, 1, 1)
	for _, r := range rows {
		tr := r.Samples[0].Trace
		kinds := map[obs.Kind]int{}
		for _, e := range tr.Events {
			kinds[e.Kind]++
		}
		for _, want := range []obs.Kind{
			obs.KindFault, obs.KindGatherEnter, obs.KindInstall,
			obs.KindAcquire, obs.KindAnnounce, obs.KindARPSpoof, obs.KindTokenPass,
		} {
			if kinds[want] == 0 {
				t.Errorf("%s/n=%d: no %v event in the trace (kinds: %v)", r.Config, r.Size, want, kinds)
			}
		}
		// The ownership timeline must show the probed address changing hands.
		timeline := obs.OwnershipTimeline(tr.Events)
		var target string
		for addr, spans := range timeline {
			if len(spans) >= 2 {
				target = addr
			}
		}
		if target == "" {
			t.Errorf("%s/n=%d: no address changed hands in the timeline", r.Config, r.Size)
		}
	}
}

package experiment

import (
	"fmt"
	"time"

	"wackamole"
	"wackamole/internal/experiment/runner"
	"wackamole/internal/gcs"
)

// Table1Row reports one configuration of the paper's Table 1 together with
// the measured membership-notification time it induces: the delay between a
// fault and the surviving daemons installing the new configuration. The
// paper predicts [T−H, T] + D: 10–12s for the defaults, 2–2.4s tuned.
type Table1Row struct {
	Config ConfigName
	// The three configured timeouts (the columns of Table 1).
	FaultDetect time.Duration
	Heartbeat   time.Duration
	Discovery   time.Duration
	// Predicted notification bounds.
	PredictedMin time.Duration
	PredictedMax time.Duration
	// Measured notification delay over the trials.
	Measured Stat
	// Metrics sums the protocol activity of the successful trials.
	Metrics runner.Metrics
	Errors  int
}

// Table1Trial measures one membership-notification delay: disconnect a
// member at a seed-derived phase of the heartbeat cycle and time a
// survivor's installation of the shrunken membership.
func Table1Trial(seed int64, n int, cfg gcs.Config) (runner.Sample, error) {
	c, err := wackamole.NewCluster(wackamole.ClusterOptions{
		Seed:    seed,
		Servers: n,
		VIPs:    10,
		GCS:     cfg,
	})
	if err != nil {
		return runner.Sample{}, err
	}
	c.Settle()
	// Uniformly distribute the fault phase within the heartbeat interval.
	c.RunFor(time.Duration(c.Sim.Rand().Int63n(int64(cfg.HeartbeatInterval))))

	var installedAt time.Duration
	observer := c.Servers[0].Node.Daemon()
	observer.SetMembershipHandler(func(_ gcs.RingID, members []gcs.DaemonID) {
		if len(members) == n-1 && installedAt == 0 {
			installedAt = c.Sim.Elapsed()
		}
	})
	faultAt := c.Sim.Elapsed()
	c.FailServer(n - 1)
	maxWait := 3 * (cfg.FaultDetectTimeout + cfg.DiscoveryTimeout)
	for waited := time.Duration(0); waited < maxWait && installedAt == 0; waited += 100 * time.Millisecond {
		c.RunFor(100 * time.Millisecond)
	}
	if installedAt == 0 {
		return runner.Sample{}, fmt.Errorf("experiment: no membership installed within %v", maxWait)
	}
	return runner.Sample{Value: installedAt - faultAt, Metrics: clusterMetrics(c)}, nil
}

// Table1 reproduces the paper's Table 1, augmenting the configured timeout
// values with the measured notification-time distribution each induces.
func Table1(baseSeed int64, trials int, opts ...Option) ([]Table1Row, error) {
	const n = 5
	configs := NamedConfigs()
	var points []runner.Point
	for _, nc := range configs {
		nc := nc
		points = append(points, runner.Point{
			Label: fmt.Sprintf("table1/%s", nc.Name),
			Seeds: Seeds(baseSeed, trials),
			Run: func(seed int64) (runner.Sample, error) {
				return Table1Trial(seed, n, nc.Cfg)
			},
		})
	}
	var rows []Table1Row
	for i, res := range runSweep(points, opts) {
		stat, metrics, errs, err := collectPoint(res)
		if err != nil {
			return nil, err
		}
		nc := configs[i]
		rows = append(rows, Table1Row{
			Config:       nc.Name,
			FaultDetect:  nc.Cfg.FaultDetectTimeout,
			Heartbeat:    nc.Cfg.HeartbeatInterval,
			Discovery:    nc.Cfg.DiscoveryTimeout,
			PredictedMin: nc.Cfg.FaultDetectTimeout - nc.Cfg.HeartbeatInterval + nc.Cfg.DiscoveryTimeout,
			PredictedMax: nc.Cfg.FaultDetectTimeout + nc.Cfg.DiscoveryTimeout,
			Measured:     stat,
			Metrics:      metrics,
			Errors:       errs,
		})
	}
	return rows, nil
}

// RenderTable1 formats the rows, mirroring the layout of the paper's
// Table 1 with the measured column appended.
func RenderTable1(rows []Table1Row) string {
	header := []string{"parameter / measurement", "Default Spread", "Tuned Spread"}
	var cells [][]string
	row := func(label string, f func(Table1Row) string) {
		line := []string{label}
		for _, r := range rows {
			line = append(line, f(r))
		}
		cells = append(cells, line)
	}
	row("Fault-detection timeout (s)", func(r Table1Row) string { return fmt.Sprintf("%g", r.FaultDetect.Seconds()) })
	row("Distributed heartbeat timeout (s)", func(r Table1Row) string { return fmt.Sprintf("%g", r.Heartbeat.Seconds()) })
	row("Discovery timeout (s)", func(r Table1Row) string { return fmt.Sprintf("%g", r.Discovery.Seconds()) })
	row("Predicted notification range (s)", func(r Table1Row) string {
		return fmt.Sprintf("%g – %g", r.PredictedMin.Seconds(), r.PredictedMax.Seconds())
	})
	row("Measured notification mean", func(r Table1Row) string { return Seconds(r.Measured.Mean) })
	row("Measured notification min", func(r Table1Row) string { return Seconds(r.Measured.Min) })
	row("Measured notification p50", func(r Table1Row) string { return Seconds(r.Measured.P50) })
	row("Measured notification p99", func(r Table1Row) string { return Seconds(r.Measured.P99) })
	row("Measured notification max", func(r Table1Row) string { return Seconds(r.Measured.Max) })
	row("Trials", func(r Table1Row) string { return fmt.Sprintf("%d", r.Measured.N) })
	return Table(header, cells)
}

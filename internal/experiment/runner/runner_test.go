package runner

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// slowTrial derives a deterministic value from the seed while sleeping a
// seed-dependent amount, so parallel executions finish out of order.
func slowTrial(seed int64) (Sample, error) {
	time.Sleep(time.Duration(seed%7) * time.Millisecond)
	return Sample{
		Value:   time.Duration(seed) * time.Microsecond,
		Metrics: Metrics{FramesSent: uint64(seed)},
	}, nil
}

func grid(points, seeds int) []Point {
	var out []Point
	for p := 0; p < points; p++ {
		pt := Point{Label: fmt.Sprintf("point%d", p), Run: slowTrial}
		for s := 0; s < seeds; s++ {
			pt.Seeds = append(pt.Seeds, int64(p*100+s))
		}
		out = append(out, pt)
	}
	return out
}

func TestParallelRunMatchesSerialRun(t *testing.T) {
	serial := Run(grid(4, 6), Options{Workers: 1})
	parallel := Run(grid(4, 6), Options{Workers: 8})
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel run diverged from serial run:\n%+v\n---\n%+v", serial, parallel)
	}
	if len(serial) != 4 || len(serial[0].Values) != 6 {
		t.Fatalf("unexpected result shape: %+v", serial)
	}
	// Ordering is by seed position, not completion time.
	for si, v := range serial[1].Values {
		if v != time.Duration(100+si)*time.Microsecond {
			t.Fatalf("values out of seed order: %v", serial[1].Values)
		}
	}
	if serial[0].Metrics.FramesSent != 0+1+2+3+4+5 {
		t.Fatalf("metrics not aggregated: %+v", serial[0].Metrics)
	}
}

func TestErrorAndPanicIsolation(t *testing.T) {
	sentinel := errors.New("trial failed")
	pt := Point{
		Label: "mixed",
		Seeds: []int64{1, 2, 3, 4},
		Run: func(seed int64) (Sample, error) {
			switch seed {
			case 2:
				return Sample{}, sentinel
			case 3:
				panic("divergent trial")
			}
			return Sample{Value: time.Duration(seed) * time.Second}, nil
		},
	}
	results := Run([]Point{pt}, Options{Workers: 4})
	res := results[0]
	if len(res.Values) != 2 || res.Values[0] != time.Second || res.Values[1] != 4*time.Second {
		t.Fatalf("surviving values = %v", res.Values)
	}
	if len(res.Errors) != 2 {
		t.Fatalf("errors = %v", res.Errors)
	}
	if res.Errors[0].Seed != 2 || !errors.Is(res.Errors[0], sentinel) {
		t.Fatalf("error 0 = %+v", res.Errors[0])
	}
	if res.Errors[1].Seed != 3 || res.Errors[1].Err == nil {
		t.Fatalf("panic not captured: %+v", res.Errors[1])
	}
}

func TestWorkerPoolIsBounded(t *testing.T) {
	const workers = 3
	var inFlight, maxSeen int64
	pt := Point{
		Label: "bounded",
		Seeds: make([]int64, 24),
		Run: func(int64) (Sample, error) {
			n := atomic.AddInt64(&inFlight, 1)
			for {
				m := atomic.LoadInt64(&maxSeen)
				if n <= m || atomic.CompareAndSwapInt64(&maxSeen, m, n) {
					break
				}
			}
			time.Sleep(2 * time.Millisecond)
			atomic.AddInt64(&inFlight, -1)
			return Sample{}, nil
		},
	}
	for i := range pt.Seeds {
		pt.Seeds[i] = int64(i)
	}
	Run([]Point{pt}, Options{Workers: workers})
	if got := atomic.LoadInt64(&maxSeen); got > workers {
		t.Fatalf("observed %d concurrent trials, worker bound is %d", got, workers)
	}
	if got := atomic.LoadInt64(&maxSeen); got < 2 {
		t.Fatalf("observed %d concurrent trials, expected parallelism", got)
	}
}

func TestSinkSeesEveryTrial(t *testing.T) {
	var mu sync.Mutex
	var events []Progress
	sink := SinkFunc(func(p Progress) {
		mu.Lock()
		events = append(events, p)
		mu.Unlock()
	})
	points := grid(2, 3)
	points[1].Run = func(int64) (Sample, error) { return Sample{}, errors.New("boom") }
	Run(points, Options{Workers: 4, Sink: sink})
	if len(events) != 6 {
		t.Fatalf("sink saw %d events, want 6", len(events))
	}
	failures := 0
	for _, ev := range events {
		if ev.Total != 6 || ev.Done < 1 || ev.Done > 6 {
			t.Fatalf("bad progress event: %+v", ev)
		}
		if ev.Err != nil {
			failures++
		}
	}
	if failures != 3 {
		t.Fatalf("sink saw %d failures, want 3", failures)
	}
}

func TestZeroJobs(t *testing.T) {
	if res := Run(nil, Options{}); len(res) != 0 {
		t.Fatalf("Run(nil) = %+v", res)
	}
	res := Run([]Point{{Label: "empty"}}, Options{})
	if len(res) != 1 || len(res[0].Values) != 0 || len(res[0].Errors) != 0 {
		t.Fatalf("empty point = %+v", res)
	}
}

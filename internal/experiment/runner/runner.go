// Package runner executes sweeps of independent, deterministically seeded
// simulation trials on a bounded worker pool. Every evaluation in
// internal/experiment — each table and figure of the paper's §6 — is a grid
// of (configuration × size) points, each measured over many seeded trials;
// since every trial builds its own simulator instance, the campaign is
// embarrassingly parallel. The runner provides the one harness all sweeps
// share: deterministic result ordering by (point, seed) regardless of worker
// count, per-trial error and panic capture that never aborts the sweep, a
// per-trial protocol-activity metrics struct aggregated into every result,
// and a pluggable progress sink.
package runner

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"wackamole/internal/metrics"
	"wackamole/internal/obs"
)

// Metrics counts protocol activity observed during one trial, aggregated
// from the counters exposed by internal/gcs (daemon stats), internal/core
// (engine stats) and internal/netsim (network counters). Sweeps sum the
// metrics of every successful trial into their result rows, giving each
// data point the observability needed to debug divergent trials.
type Metrics struct {
	// MembershipsInstalled counts daemon-level configuration deliveries.
	MembershipsInstalled uint64 `json:"memberships_installed"`
	// ViewChanges counts entries into the discovery (gather) state.
	ViewChanges uint64 `json:"view_changes"`
	// TokenRotations counts token passes on the gcs ring.
	TokenRotations uint64 `json:"token_rotations"`
	// MessagesDelivered counts totally ordered messages handed to the
	// group layer.
	MessagesDelivered uint64 `json:"messages_delivered"`
	// Acquires and Releases count virtual-address movements driven by the
	// core engine.
	Acquires uint64 `json:"acquires"`
	Releases uint64 `json:"releases"`
	// ARPSpoofs counts unsolicited (gratuitous or targeted) ARP replies
	// actually injected into the simulated network (§5.1).
	ARPSpoofs uint64 `json:"arp_spoofs"`
	// FramesSent and FramesDropped count segment-level transmissions and
	// explicit loss draws across the whole simulated network.
	FramesSent    uint64 `json:"frames_sent"`
	FramesDropped uint64 `json:"frames_dropped"`
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.MembershipsInstalled += other.MembershipsInstalled
	m.ViewChanges += other.ViewChanges
	m.TokenRotations += other.TokenRotations
	m.MessagesDelivered += other.MessagesDelivered
	m.Acquires += other.Acquires
	m.Releases += other.Releases
	m.ARPSpoofs += other.ARPSpoofs
	m.FramesSent += other.FramesSent
	m.FramesDropped += other.FramesDropped
}

// Sample is one trial's outcome: the measured quantity plus the protocol
// activity observed while measuring it.
type Sample struct {
	Value   time.Duration
	Metrics Metrics
	// Seed is the seed the trial ran under; the runner fills it in, so
	// trial functions may leave it zero.
	Seed int64
	// Trace carries the trial's structured event stream and fail-over
	// phase breakdown when the sweep requested tracing; nil otherwise.
	Trace *obs.TrialTrace
	// Latency carries the trial's latency-histogram registry snapshot when
	// the sweep requested tracing; zero otherwise. Snapshots of disjoint
	// trials merge associatively, so aggregation order never matters.
	Latency metrics.Snapshot
}

// Trial runs one isolated, seeded simulation and returns its measurement.
// Trials must be self-contained (build their own simulator from the seed)
// so the runner may execute them concurrently.
type Trial func(seed int64) (Sample, error)

// Point is one grid point of a sweep: a labelled trial function and the
// seeds to measure it under.
type Point struct {
	// Label identifies the point in progress reports and errors
	// (e.g. "figure5/tuned/n=4").
	Label string
	Seeds []int64
	Run   Trial
}

// TrialError records one failed trial without aborting the sweep.
type TrialError struct {
	Point string
	Seed  int64
	Err   error
}

// Error implements error.
func (e TrialError) Error() string {
	return fmt.Sprintf("%s seed=%d: %v", e.Point, e.Seed, e.Err)
}

// Unwrap exposes the underlying trial error.
func (e TrialError) Unwrap() error { return e.Err }

// Result collects one point's outcomes in deterministic (seed) order.
type Result struct {
	Label string
	// Values holds the successful samples, ordered by their seed's position
	// in Point.Seeds — identical whatever the worker count.
	Values []time.Duration
	// Metrics sums the metrics of every successful trial.
	Metrics Metrics
	// Errors holds the failed trials (including recovered panics), ordered
	// by seed position.
	Errors []TrialError
	// Samples holds the successful trials' full samples in the same order
	// as Values (seed order), for callers that need per-trial metrics or
	// traces rather than the point aggregate.
	Samples []Sample
}

// Progress describes one completed trial, for progress sinks.
type Progress struct {
	Point string
	Seed  int64
	Err   error
	// Done of Total trials across the whole sweep have completed.
	Done, Total int
}

// Sink observes per-trial completion. The runner serializes calls, so
// implementations need no locking of their own.
type Sink interface {
	TrialDone(p Progress)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Progress)

// TrialDone implements Sink.
func (f SinkFunc) TrialDone(p Progress) { f(p) }

// Options configure a sweep execution.
type Options struct {
	// Workers bounds the number of concurrently executing trials;
	// values < 1 mean GOMAXPROCS.
	Workers int
	// Sink, if set, observes every trial completion.
	Sink Sink
}

// outcome is one trial's slot in the result grid.
type outcome struct {
	sample Sample
	err    error
}

// Run executes every (point, seed) trial of the grid on a bounded worker
// pool and returns one Result per point, in point order. A failing or
// panicking trial is recorded in its point's Errors and never aborts the
// sweep; callers decide whether a point with no successful trials is fatal.
func Run(points []Point, opts Options) []Result {
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct{ point, seed int }
	var jobs []job
	for pi, p := range points {
		for si := range p.Seeds {
			jobs = append(jobs, job{pi, si})
		}
	}
	grid := make([][]outcome, len(points))
	for pi, p := range points {
		grid[pi] = make([]outcome, len(p.Seeds))
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		mu   sync.Mutex // serializes sink calls
		done int
	)
	report := func(j job, err error) {
		if opts.Sink == nil {
			return
		}
		mu.Lock()
		done++
		opts.Sink.TrialDone(Progress{
			Point: points[j.point].Label,
			Seed:  points[j.point].Seeds[j.seed],
			Err:   err,
			Done:  done,
			Total: len(jobs),
		})
		mu.Unlock()
	}

	queue := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range queue {
				p := points[j.point]
				s, err := runTrial(p.Run, p.Seeds[j.seed])
				s.Seed = p.Seeds[j.seed]
				grid[j.point][j.seed] = outcome{sample: s, err: err}
				report(j, err)
			}
		}()
	}
	for _, j := range jobs {
		queue <- j
	}
	close(queue)
	wg.Wait()

	results := make([]Result, len(points))
	for pi, p := range points {
		res := Result{Label: p.Label}
		for si, o := range grid[pi] {
			if o.err != nil {
				res.Errors = append(res.Errors, TrialError{Point: p.Label, Seed: p.Seeds[si], Err: o.err})
				continue
			}
			res.Values = append(res.Values, o.sample.Value)
			res.Samples = append(res.Samples, o.sample)
			res.Metrics.Add(o.sample.Metrics)
		}
		results[pi] = res
	}
	return results
}

// runTrial invokes t, converting a panic into an error so one diverging
// trial cannot kill the whole campaign.
func runTrial(t Trial, seed int64) (s Sample, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("runner: trial panicked: %v", r)
		}
	}()
	return t(seed)
}

package experiment

import (
	"fmt"
	"time"

	"wackamole/internal/experiment/runner"
	"wackamole/internal/gcs"
)

// load.go quantifies the paper's §6 remark that on highly loaded machines
// the daemons should run with (real-time) priority "in order to avoid false
// positive errors": as scheduling delay approaches the heartbeat interval,
// healthy daemons start missing each other's heartbeats and the cluster
// reconfigures without any actual fault.

// LoadRow reports one scheduling-jitter level.
type LoadRow struct {
	// Jitter is the per-host scheduling delay bound (0 models daemons
	// running at real-time priority).
	Jitter time.Duration
	// FalseReconfigs is the mean number of daemon reconfigurations beyond
	// the boot-time one, over a fault-free observation window.
	FalseReconfigs float64
	// MaxGap is the largest client-visible inter-response gap observed
	// (service hiccups caused purely by the false positives).
	MaxGap Stat
	// Metrics sums the protocol activity within the observation window
	// (boot-time activity excluded); its ViewChanges are the false
	// reconfigurations.
	Metrics runner.Metrics
	Errors  int
}

// LoadTrial runs a fault-free web cluster whose servers suffer scheduling
// jitter over the window. The sample's value is the largest client-visible
// gap; its metrics are the in-window activity delta, whose ViewChanges
// count the spurious reconfigurations.
func LoadTrial(seed int64, jitter time.Duration, window time.Duration) (runner.Sample, error) {
	cfg := gcs.TunedConfig()
	wc, err := NewWebCluster(seed, 4, cfg)
	if err != nil {
		return runner.Sample{}, err
	}
	wc.Settle()
	before := clusterMetrics(wc.Cluster)
	// Load appears on the servers only; the client and router machines
	// (the measurement apparatus) stay unloaded.
	for _, srv := range wc.Cluster.Servers {
		srv.Host.SetProcessingJitter(jitter)
	}
	wc.Client.Start()
	wc.RunFor(time.Second)
	wc.Client.ResetStats()
	wc.RunFor(window)
	return runner.Sample{
		Value:   wc.Client.MaxGap(),
		Metrics: metricsDelta(before, clusterMetrics(wc.Cluster)),
	}, nil
}

// LoadSensitivity sweeps the jitter bound. The heartbeat interval (400ms
// tuned) is the natural scale: false positives appear as the jitter
// approaches the fault-detection margin (T − H = 600ms).
func LoadSensitivity(baseSeed int64, trials int, opts ...Option) ([]LoadRow, error) {
	jitters := []time.Duration{
		0,
		100 * time.Millisecond,
		300 * time.Millisecond,
		600 * time.Millisecond,
	}
	const window = 60 * time.Second
	var points []runner.Point
	for _, j := range jitters {
		j := j
		points = append(points, runner.Point{
			Label: fmt.Sprintf("load/jitter=%v", j),
			Seeds: Seeds(baseSeed, trials),
			Run: func(seed int64) (runner.Sample, error) {
				return LoadTrial(seed, j, window)
			},
		})
	}
	var rows []LoadRow
	for i, res := range runSweep(points, opts) {
		stat, metrics, errs, err := collectPoint(res)
		if err != nil {
			return nil, err
		}
		rows = append(rows, LoadRow{
			Jitter:         jitters[i],
			FalseReconfigs: float64(metrics.ViewChanges) / float64(stat.N),
			MaxGap:         stat,
			Metrics:        metrics,
			Errors:         errs,
		})
	}
	return rows, nil
}

// RenderLoadSensitivity formats the sweep.
func RenderLoadSensitivity(rows []LoadRow) string {
	header := []string{"scheduling jitter", "false reconfigurations / min", "max client gap (mean)", "max client gap (max)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Jitter.String(),
			fmt.Sprintf("%.1f", r.FalseReconfigs),
			Seconds(r.MaxGap.Mean),
			Seconds(r.MaxGap.Max),
		})
	}
	return Table(header, cells)
}

package experiment

import (
	"fmt"
	"time"

	"wackamole/internal/gcs"
)

// load.go quantifies the paper's §6 remark that on highly loaded machines
// the daemons should run with (real-time) priority "in order to avoid false
// positive errors": as scheduling delay approaches the heartbeat interval,
// healthy daemons start missing each other's heartbeats and the cluster
// reconfigures without any actual fault.

// LoadRow reports one scheduling-jitter level.
type LoadRow struct {
	// Jitter is the per-host scheduling delay bound (0 models daemons
	// running at real-time priority).
	Jitter time.Duration
	// FalseReconfigs is the mean number of daemon reconfigurations beyond
	// the boot-time one, over a fault-free observation window.
	FalseReconfigs float64
	// MaxGap is the largest client-visible inter-response gap observed
	// (service hiccups caused purely by the false positives).
	MaxGap Stat
}

// LoadTrial runs a fault-free web cluster whose servers suffer scheduling
// jitter, and counts spurious reconfigurations over the window.
func LoadTrial(seed int64, jitter time.Duration, window time.Duration) (int, time.Duration, error) {
	cfg := gcs.TunedConfig()
	wc, err := NewWebCluster(seed, 4, cfg)
	if err != nil {
		return 0, 0, err
	}
	wc.Settle()
	reconfigsAtStart := 0
	for _, srv := range wc.Cluster.Servers {
		reconfigsAtStart += int(srv.Node.Daemon().Stats().Reconfigurations)
	}
	// Load appears on the servers only; the client and router machines
	// (the measurement apparatus) stay unloaded.
	for _, srv := range wc.Cluster.Servers {
		srv.Host.SetProcessingJitter(jitter)
	}
	wc.Client.Start()
	wc.RunFor(time.Second)
	wc.Client.ResetStats()
	wc.RunFor(window)
	reconfigs := 0
	for _, srv := range wc.Cluster.Servers {
		reconfigs += int(srv.Node.Daemon().Stats().Reconfigurations)
	}
	return reconfigs - reconfigsAtStart, wc.Client.MaxGap(), nil
}

// LoadSensitivity sweeps the jitter bound. The heartbeat interval (400ms
// tuned) is the natural scale: false positives appear as the jitter
// approaches the fault-detection margin (T − H = 600ms).
func LoadSensitivity(baseSeed int64, trials int) ([]LoadRow, error) {
	jitters := []time.Duration{
		0,
		100 * time.Millisecond,
		300 * time.Millisecond,
		600 * time.Millisecond,
	}
	const window = 60 * time.Second
	var rows []LoadRow
	for _, j := range jitters {
		totalReconfigs := 0
		var gaps []time.Duration
		for _, seed := range Seeds(baseSeed, trials) {
			n, gap, err := LoadTrial(seed, j, window)
			if err != nil {
				return nil, fmt.Errorf("jitter %v: %w", j, err)
			}
			totalReconfigs += n
			gaps = append(gaps, gap)
		}
		rows = append(rows, LoadRow{
			Jitter:         j,
			FalseReconfigs: float64(totalReconfigs) / float64(trials),
			MaxGap:         Summarize(gaps),
		})
	}
	return rows, nil
}

// RenderLoadSensitivity formats the sweep.
func RenderLoadSensitivity(rows []LoadRow) string {
	header := []string{"scheduling jitter", "false reconfigurations / min", "max client gap (mean)", "max client gap (max)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Jitter.String(),
			fmt.Sprintf("%.1f", r.FalseReconfigs),
			Seconds(r.MaxGap.Mean),
			Seconds(r.MaxGap.Max),
		})
	}
	return Table(header, cells)
}

package experiment

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"wackamole/internal/experiment/runner"
	"wackamole/internal/obs"
)

// trace.go writes the -trace output of cmd/wacksim: an NDJSON stream
// interleaving one "trial" summary record per traced trial with the trial's
// "event" records, in deterministic (point, seed, event-sequence) order.
// The stream is self-describing — every line names its record type, point
// and seed — so it can be split, grepped and joined without side tables.

// traceTrialRecord summarizes one traced trial. GapStart/GapEnd/Target let
// offline analyzers re-run obs.FailoverBreakdown on the event lines and
// cross-check the result against Phases and ValueSec.
type traceTrialRecord struct {
	Record     string        `json:"record"` // "trial"
	Experiment string        `json:"experiment"`
	Point      string        `json:"point"`
	Seed       int64         `json:"seed"`
	ValueSec   float64       `json:"value_s"`
	Phases     obs.Breakdown `json:"phases"`
	Events     int           `json:"events"`
	GapStart   string        `json:"gap_start,omitempty"`
	GapEnd     string        `json:"gap_end,omitempty"`
	Target     string        `json:"target,omitempty"`
}

// traceEventRecord is one event line, tagged with its trial.
type traceEventRecord struct {
	Record string `json:"record"` // "event"
	Point  string `json:"point"`
	Seed   int64  `json:"seed"`
	Seq    uint64 `json:"seq"`
	At     string `json:"at"`
	Source string `json:"source"`
	Kind   string `json:"kind"`
	Node   string `json:"node,omitempty"`
	Group  string `json:"group,omitempty"`
	Addr   string `json:"addr,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// WriteFigure5Trace writes the traced trials of a Figure 5 sweep as NDJSON.
// Rows from an untraced sweep produce no output.
func WriteFigure5Trace(w io.Writer, rows []Figure5Row) error {
	for _, r := range rows {
		point := fmt.Sprintf("%s/n=%d", r.Config, r.Size)
		if err := writeTrialTraces(w, "figure5", point, r.Samples); err != nil {
			return err
		}
	}
	return nil
}

// writeTrialTraces writes one point's traced samples as the interleaved
// trial/event NDJSON stream. Untraced samples produce no output.
func writeTrialTraces(w io.Writer, experiment, point string, samples []runner.Sample) error {
	enc := json.NewEncoder(w)
	for _, s := range samples {
		if s.Trace == nil {
			continue
		}
		if err := enc.Encode(traceTrialRecord{
			Record:     "trial",
			Experiment: experiment,
			Point:      point,
			Seed:       s.Seed,
			ValueSec:   s.Value.Seconds(),
			Phases:     s.Trace.Phases,
			Events:     len(s.Trace.Events),
			GapStart:   s.Trace.GapStart.Format(time.RFC3339Nano),
			GapEnd:     s.Trace.GapEnd.Format(time.RFC3339Nano),
			Target:     s.Trace.Target,
		}); err != nil {
			return err
		}
		for _, e := range s.Trace.Events {
			if err := enc.Encode(traceEventRecord{
				Record: "event",
				Point:  point,
				Seed:   s.Seed,
				Seq:    e.Seq,
				At:     e.At.Format(time.RFC3339Nano),
				Source: e.Source.String(),
				Kind:   e.Kind.String(),
				Node:   e.Node,
				Group:  e.Group,
				Addr:   e.Addr,
				Detail: e.Detail,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

package experiment

import (
	"fmt"
	"time"

	"wackamole"
	"wackamole/internal/core"
	"wackamole/internal/experiment/runner"
	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
)

// AblationRow is one line of the design-choice ablation report.
type AblationRow struct {
	Experiment string
	Variant    string
	Metric     string
	Stat       Stat
	Metrics    runner.Metrics
	Errors     int
}

// ARPSpoofTrial measures the fail-over interruption with and without the
// §5.1 gratuitous-ARP notification. Without it, the router keeps forwarding
// to the failed server's MAC until its ARP cache entry expires (ttl).
func ARPSpoofTrial(seed int64, spoof bool, ttl time.Duration) (runner.Sample, error) {
	cfg := gcs.TunedConfig()
	wc, err := NewWebCluster(seed, 4, cfg, func(o *wackamole.ClusterOptions) {
		o.DisableARPSpoof = !spoof
		o.RouterARPTTL = ttl
	})
	if err != nil {
		return runner.Sample{}, err
	}
	wc.WarmUp(cfg)
	// Randomize the fault phase against the ARP entry's lifetime too.
	wc.RunFor(time.Duration(wc.Sim.Rand().Int63n(int64(ttl))))
	victim, holders := wc.Owner(wc.Target)
	if holders != 1 {
		return runner.Sample{}, fmt.Errorf("experiment: %d holders before fault", holders)
	}
	wc.FailServer(victim)
	maxWait := 2*ttl + 4*(cfg.FaultDetectTimeout+cfg.DiscoveryTimeout)
	gap, err := wc.MeasureInterruption(maxWait)
	if err != nil {
		return runner.Sample{}, err
	}
	return runner.Sample{Value: gap.Duration(), Metrics: clusterMetrics(wc.Cluster)}, nil
}

// ConflictReleaseTrial integrates the amount of duplicate coverage
// (address-seconds during which a virtual address is answerable on both
// sides of a healed partition) for the eager release of §3.4 versus the
// lazy variant that waits for GATHER to complete.
func ConflictReleaseTrial(seed int64, lazy bool) (runner.Sample, error) {
	// A congested-LAN latency profile spreads the STATE_MSG exchange over a
	// measurable window; on a quiet LAN both variants resolve within one
	// token rotation and the difference drowns in the (identical)
	// detection+discovery time.
	seg := netsim.SegmentConfig{LatencyMin: 20 * time.Millisecond, LatencyMax: 50 * time.Millisecond}
	c, err := wackamole.NewCluster(wackamole.ClusterOptions{
		Seed:                seed,
		Servers:             6,
		VIPs:                20,
		GCS:                 gcs.TunedConfig(),
		LazyConflictRelease: lazy,
		Segment:             seg,
	})
	if err != nil {
		return runner.Sample{}, err
	}
	c.Settle()
	c.Partition([]int{0, 1, 2}, []int{3, 4, 5})
	c.RunFor(10 * time.Second)
	c.Heal()
	var duplicate time.Duration
	const step = time.Millisecond
	for elapsed := time.Duration(0); elapsed < 10*time.Second; elapsed += step {
		c.RunFor(step)
		for _, vip := range c.VIPs() {
			if _, holders := c.Owner(vip); holders > 1 {
				duplicate += step
			}
		}
	}
	return runner.Sample{Value: duplicate, Metrics: clusterMetrics(c)}, nil
}

// BalanceChurnTrial puts the cluster through fail/restore churn and
// reports the final allocation skew (max−min addresses per live server),
// with or without the §3.4 re-balancing procedure.
func BalanceChurnTrial(seed int64, disabled bool) (runner.Sample, error) {
	c, err := wackamole.NewCluster(wackamole.ClusterOptions{
		Seed:           seed,
		Servers:        4,
		VIPs:           12,
		GCS:            gcs.TunedConfig(),
		BalanceTimeout: 5 * time.Second,
		DisableBalance: disabled,
	})
	if err != nil {
		return runner.Sample{}, err
	}
	c.Settle()
	for _, victim := range []int{3, 2} {
		c.FailServer(victim)
		c.RunFor(8 * time.Second)
		c.RestoreServer(victim)
		c.RunFor(20 * time.Second)
	}
	cov := c.CoverageByServer()
	minC, maxC := cov[0], cov[0]
	for _, n := range cov[1:] {
		if n < minC {
			minC = n
		}
		if n > maxC {
			maxC = n
		}
	}
	// Encode the skew as a duration of whole units so the shared Stat
	// machinery applies (1 "second" = 1 address of skew).
	return runner.Sample{Value: time.Duration(maxC-minC) * time.Second, Metrics: clusterMetrics(c)}, nil
}

// MaturityBootTrial boots a cluster one server every two seconds and counts
// address movements (releases) during the boot window — the churn the §3.4
// maturity bootstrap exists to avoid. Re-balancing runs aggressively, as a
// production cluster would configure for steady state.
func MaturityBootTrial(seed int64, bootstrap bool) (runner.Sample, error) {
	c, err := wackamole.NewCluster(wackamole.ClusterOptions{
		Seed:           seed,
		Servers:        5,
		VIPs:           10,
		GCS:            gcs.TunedConfig(),
		Bootstrap:      bootstrap,
		MatureTimeout:  12 * time.Second,
		BalanceTimeout: 3 * time.Second,
		StartStagger:   2 * time.Second,
	})
	if err != nil {
		return runner.Sample{}, err
	}
	releases := 0
	for _, srv := range c.Servers {
		srv.Node.Engine().SetEventHook(func(ev core.Event) {
			if ev.Kind == core.EventRelease {
				releases++
			}
		})
	}
	c.RunFor(25 * time.Second)
	// The cluster must end fully covered either way.
	for _, vip := range c.VIPs() {
		if _, holders := c.Owner(vip); holders != 1 {
			return runner.Sample{}, fmt.Errorf("experiment: %v held by %d after boot", vip, holders)
		}
	}
	return runner.Sample{Value: time.Duration(releases) * time.Second, Metrics: clusterMetrics(c)}, nil
}

// ablationSteps enumerates every design-choice experiment in presentation
// order.
func ablationSteps() []struct {
	experiment, variant, metric string
	f                           runner.Trial
} {
	const ttl = 30 * time.Second
	return []struct {
		experiment, variant, metric string
		f                           runner.Trial
	}{
		{"arp-spoofing (§5.1)", "spoof on", "client interruption",
			func(s int64) (runner.Sample, error) { return ARPSpoofTrial(s, true, ttl) }},
		{"arp-spoofing (§5.1)", "spoof off (30s ARP TTL)", "client interruption",
			func(s int64) (runner.Sample, error) { return ARPSpoofTrial(s, false, ttl) }},
		{"conflict release (§3.4)", "eager", "duplicate coverage (addr·time)",
			func(s int64) (runner.Sample, error) { return ConflictReleaseTrial(s, false) }},
		{"conflict release (§3.4)", "lazy (end of GATHER)", "duplicate coverage (addr·time)",
			func(s int64) (runner.Sample, error) { return ConflictReleaseTrial(s, true) }},
		{"re-balancing (§3.4)", "enabled", "allocation skew (addresses)",
			func(s int64) (runner.Sample, error) { return BalanceChurnTrial(s, false) }},
		{"re-balancing (§3.4)", "disabled", "allocation skew (addresses)",
			func(s int64) (runner.Sample, error) { return BalanceChurnTrial(s, true) }},
		{"maturity bootstrap (§3.4)", "enabled", "boot-time address movements",
			func(s int64) (runner.Sample, error) { return MaturityBootTrial(s, true) }},
		{"maturity bootstrap (§3.4)", "disabled", "boot-time address movements",
			func(s int64) (runner.Sample, error) { return MaturityBootTrial(s, false) }},
	}
}

// Ablations runs every design-choice experiment.
func Ablations(baseSeed int64, trials int, opts ...Option) ([]AblationRow, error) {
	steps := ablationSteps()
	var points []runner.Point
	for _, st := range steps {
		points = append(points, runner.Point{
			Label: fmt.Sprintf("ablations/%s/%s", st.experiment, st.variant),
			Seeds: Seeds(baseSeed, trials),
			Run:   st.f,
		})
	}
	var rows []AblationRow
	for i, res := range runSweep(points, opts) {
		stat, metrics, errs, err := collectPoint(res)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Experiment: steps[i].experiment,
			Variant:    steps[i].variant,
			Metric:     steps[i].metric,
			Stat:       stat,
			Metrics:    metrics,
			Errors:     errs,
		})
	}
	return rows, nil
}

// RenderAblations formats the ablation report. Metrics that are counts are
// encoded as whole seconds by their trials; render them as plain numbers.
func RenderAblations(rows []AblationRow) string {
	header := []string{"experiment", "variant", "metric", "mean", "min", "max"}
	var cells [][]string
	for _, r := range rows {
		format := Seconds
		if r.Metric == "allocation skew (addresses)" || r.Metric == "boot-time address movements" {
			format = func(d time.Duration) string { return fmt.Sprintf("%.1f", d.Seconds()) }
		}
		cells = append(cells, []string{
			r.Experiment, r.Variant, r.Metric,
			format(r.Stat.Mean), format(r.Stat.Min), format(r.Stat.Max),
		})
	}
	return Table(header, cells)
}

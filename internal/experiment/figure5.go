package experiment

import (
	"fmt"
	"strings"
	"time"

	"wackamole"
	"wackamole/internal/experiment/runner"
	"wackamole/internal/gcs"
	"wackamole/internal/invariant"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
)

// ConfigName labels the two Spread configurations of Table 1.
type ConfigName string

// The two evaluated configurations.
const (
	ConfigDefault ConfigName = "default"
	ConfigTuned   ConfigName = "tuned"
)

// NamedConfigs returns the paper's two configurations in presentation
// order.
func NamedConfigs() []struct {
	Name ConfigName
	Cfg  gcs.Config
} {
	return []struct {
		Name ConfigName
		Cfg  gcs.Config
	}{
		{ConfigDefault, gcs.DefaultConfig()},
		{ConfigTuned, gcs.TunedConfig()},
	}
}

// Figure5Sizes are the cluster sizes of the paper's Figure 5.
var Figure5Sizes = []int{2, 4, 6, 8, 10, 12}

// Figure5Trial measures one availability interruption: a web cluster of n
// servers maintaining 10 virtual addresses, a client probing one of them
// every 10ms, and a fault disconnecting the interface of the server
// covering it.
func Figure5Trial(seed int64, n int, cfg gcs.Config) (runner.Sample, error) {
	return figure5Trial(seed, n, cfg, false, false)
}

// armMonitor builds an online invariant monitor attached to a web
// cluster's servers via the cluster-option hook, stamping violations with
// virtual time once the cluster exists.
func armMonitor(n int, mods *[]func(*wackamole.ClusterOptions)) *invariant.Monitor {
	mon := invariant.New(invariant.Config{Nodes: n})
	*mods = append(*mods, func(o *wackamole.ClusterOptions) { o.Invariants = mon })
	return mon
}

// settleAndVerify runs the cluster to a resting state and applies the
// settled-state oracles plus the batch order sweep. Call after the
// measured value is extracted: the extra simulated time is
// monitoring-only and cannot perturb the sample.
func settleAndVerify(mon *invariant.Monitor, wc *WebCluster, cfg gcs.Config) error {
	if mon == nil {
		return nil
	}
	wc.RunFor(4*(cfg.FaultDetectTimeout+cfg.DiscoveryTimeout) + 2*time.Second)
	mon.CheckOrder()
	mon.CheckSettled(wc.Cluster.InvariantView(), wc.RunFor)
	if v := mon.Violation(); v != nil {
		return fmt.Errorf("experiment: invariant violation: %v", v)
	}
	return nil
}

// figure5Trial is Figure5Trial with optional event tracing: when trace is
// set the whole cluster (network, daemons, engines) records structured
// events under virtual time, and the sample carries the stream plus its
// fail-over phase breakdown. The tracer only observes — it draws no
// randomness and schedules no simulator events — so the measured value is
// bit-identical with tracing on or off.
func figure5Trial(seed int64, n int, cfg gcs.Config, trace, invariants bool) (runner.Sample, error) {
	var tr *obs.Tracer
	var reg *metrics.Registry
	var mods []func(*wackamole.ClusterOptions)
	if trace {
		tr = obs.New(0, nil)
		reg = metrics.New()
		mods = append(mods, func(o *wackamole.ClusterOptions) {
			o.Tracer = tr
			o.Metrics = reg
		})
	}
	var mon *invariant.Monitor
	if invariants {
		mon = armMonitor(n, &mods)
	}
	wc, err := NewWebCluster(seed, n, cfg, mods...)
	if err != nil {
		return runner.Sample{}, err
	}
	if mon != nil {
		epoch := wc.Sim.Now()
		mon.SetNow(func() time.Duration { return wc.Sim.Now().Sub(epoch) })
	}
	wc.WarmUp(cfg)
	victim, holders := wc.Owner(wc.Target)
	if holders != 1 {
		return runner.Sample{}, fmt.Errorf("experiment: %d holders of the target before fault", holders)
	}
	wc.FailServer(victim)
	maxWait := 4 * (cfg.FaultDetectTimeout + cfg.DiscoveryTimeout)
	gap, err := wc.MeasureInterruption(maxWait)
	if err != nil {
		return runner.Sample{}, err
	}
	if gap.To == gap.From {
		return runner.Sample{}, fmt.Errorf("experiment: service resumed on the failed server %q", gap.To)
	}
	sample := runner.Sample{Value: gap.Duration(), Metrics: clusterMetrics(wc.Cluster)}
	if err := settleAndVerify(mon, wc, cfg); err != nil {
		return runner.Sample{}, err
	}
	if trace {
		events := tr.Snapshot()
		sample.Trace = &obs.TrialTrace{
			Events:   events,
			Phases:   obs.FailoverBreakdown(events, gap.Start, gap.End, wc.Target.String()),
			GapStart: gap.Start,
			GapEnd:   gap.End,
			Target:   wc.Target.String(),
		}
		sample.Latency = reg.Snapshot()
	}
	return sample, nil
}

// Figure5Row is one point of Figure 5.
type Figure5Row struct {
	Config  ConfigName
	Size    int
	Stat    Stat
	Metrics runner.Metrics
	Errors  int
	// Samples holds the point's successful trials in seed order; when the
	// sweep ran with WithTrace each carries its event stream and phase
	// breakdown.
	Samples []runner.Sample
}

// Figure5 sweeps cluster size × configuration with `trials` seeded runs per
// point, reproducing the paper's Figure 5 ("Average Availability
// Interruption with Varying Cluster Size").
func Figure5(baseSeed int64, trials int, opts ...Option) ([]Figure5Row, error) {
	return Figure5Over(baseSeed, trials, Figure5Sizes, opts...)
}

// Figure5Over is Figure5 restricted to the given cluster sizes (CI uses a
// single-point run to produce a small sample trace artifact).
func Figure5Over(baseSeed int64, trials int, sizes []int, opts ...Option) ([]Figure5Row, error) {
	cfg := resolveOptions(opts)
	type key struct {
		cfg  ConfigName
		size int
	}
	var keys []key
	var points []runner.Point
	for _, nc := range NamedConfigs() {
		for _, n := range sizes {
			nc, n := nc, n
			keys = append(keys, key{nc.Name, n})
			points = append(points, runner.Point{
				Label: fmt.Sprintf("figure5/%s/n=%d", nc.Name, n),
				Seeds: Seeds(baseSeed+int64(n), trials),
				Run: func(seed int64) (runner.Sample, error) {
					return figure5Trial(seed, n, nc.Cfg, cfg.trace, cfg.invariants)
				},
			})
		}
	}
	var rows []Figure5Row
	for i, res := range runner.Run(points, cfg.Options) {
		stat, metrics, errs, err := collectPoint(res)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Figure5Row{Config: keys[i].cfg, Size: keys[i].size,
			Stat: stat, Metrics: metrics, Errors: errs, Samples: res.Samples})
	}
	return rows, nil
}

// RenderFigure5 formats the rows as the two series of the paper's figure.
func RenderFigure5(rows []Figure5Row) string {
	header := []string{"config", "cluster size", "trials", "mean interruption", "min", "p50", "p99", "max", "stddev"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			string(r.Config), fmt.Sprintf("%d", r.Size), fmt.Sprintf("%d", r.Stat.N),
			Seconds(r.Stat.Mean), Seconds(r.Stat.Min), Seconds(r.Stat.P50), Seconds(r.Stat.P99),
			Seconds(r.Stat.Max), Seconds(r.Stat.StdDev),
		})
	}
	return Table(header, cells)
}

// RenderFigure5CSV formats the rows as two plottable series (the exact
// shape of the paper's figure: x = cluster size, y = mean interruption in
// seconds, one series per configuration).
func RenderFigure5CSV(rows []Figure5Row) string {
	var b strings.Builder
	b.WriteString("config,cluster_size,trials,mean_s,min_s,p50_s,p99_s,max_s,stddev_s\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%s,%d,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f\n",
			r.Config, r.Size, r.Stat.N,
			r.Stat.Mean.Seconds(), r.Stat.Min.Seconds(), r.Stat.P50.Seconds(), r.Stat.P99.Seconds(),
			r.Stat.Max.Seconds(), r.Stat.StdDev.Seconds())
	}
	return b.String()
}

// GracefulRow reports the voluntary-departure measurement of §6.
type GracefulRow struct {
	Size    int
	Stat    Stat
	Metrics runner.Metrics
	Errors  int
}

// GracefulTrial measures the availability interruption when the server
// covering the probed address leaves voluntarily (administrative
// departure): the client-visible gap, bounded below by the 10ms probe
// interval.
func GracefulTrial(seed int64, n int, cfg gcs.Config) (runner.Sample, error) {
	return gracefulTrial(seed, n, cfg, false)
}

func gracefulTrial(seed int64, n int, cfg gcs.Config, invariants bool) (runner.Sample, error) {
	var mods []func(*wackamole.ClusterOptions)
	var mon *invariant.Monitor
	if invariants {
		mon = armMonitor(n, &mods)
	}
	wc, err := NewWebCluster(seed, n, cfg, mods...)
	if err != nil {
		return runner.Sample{}, err
	}
	if mon != nil {
		epoch := wc.Sim.Now()
		mon.SetNow(func() time.Duration { return wc.Sim.Now().Sub(epoch) })
	}
	wc.WarmUp(cfg)
	victim, holders := wc.Owner(wc.Target)
	if holders != 1 {
		return runner.Sample{}, fmt.Errorf("experiment: %d holders of the target before leave", holders)
	}
	if err := wc.Servers[victim].Node.LeaveService(); err != nil {
		return runner.Sample{}, err
	}
	wc.RunFor(2 * time.Second)
	if _, holders := wc.Owner(wc.Target); holders != 1 {
		return runner.Sample{}, fmt.Errorf("experiment: target not reallocated after graceful leave")
	}
	// The interruption may be too short to register as a gap; the largest
	// inter-response spacing bounds it either way.
	sample := runner.Sample{Value: wc.Client.MaxGap(), Metrics: clusterMetrics(wc.Cluster)}
	if err := settleAndVerify(mon, wc, cfg); err != nil {
		return runner.Sample{}, err
	}
	return sample, nil
}

// Graceful sweeps the graceful-leave measurement over cluster sizes.
// Individual failing trials are tolerated and counted per point, exactly
// like Figure5; only a point with no surviving trial aborts the sweep.
func Graceful(baseSeed int64, trials int, sizes []int, opts ...Option) ([]GracefulRow, error) {
	cfg := gcs.TunedConfig()
	sc := resolveOptions(opts)
	var points []runner.Point
	for _, n := range sizes {
		n := n
		points = append(points, runner.Point{
			Label: fmt.Sprintf("graceful/n=%d", n),
			Seeds: Seeds(baseSeed+int64(n)*13, trials),
			Run: func(seed int64) (runner.Sample, error) {
				return gracefulTrial(seed, n, cfg, sc.invariants)
			},
		})
	}
	var rows []GracefulRow
	for i, res := range runner.Run(points, sc.Options) {
		stat, metrics, errs, err := collectPoint(res)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GracefulRow{Size: sizes[i], Stat: stat, Metrics: metrics, Errors: errs})
	}
	return rows, nil
}

// RenderGraceful formats the graceful-leave results.
func RenderGraceful(rows []GracefulRow) string {
	header := []string{"cluster size", "trials", "mean interruption", "min", "max", "errors"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Size), fmt.Sprintf("%d", r.Stat.N),
			fmt.Sprintf("%.1fms", float64(r.Stat.Mean.Microseconds())/1000),
			fmt.Sprintf("%.1fms", float64(r.Stat.Min.Microseconds())/1000),
			fmt.Sprintf("%.1fms", float64(r.Stat.Max.Microseconds())/1000),
			fmt.Sprintf("%d", r.Errors),
		})
	}
	return Table(header, cells)
}

// Package experiment builds the paper's evaluation scenarios and
// regenerates every table and figure of §6 (plus the §5.2 router claim, the
// §7 baseline comparisons, and ablations of the §3.4 design choices) on the
// deterministic simulator. cmd/wacksim is its command-line front end;
// bench_test.go exposes the same runs as Go benchmarks.
package experiment

import (
	"fmt"
	"net/netip"
	"time"

	"wackamole"
	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
	"wackamole/internal/probe"
)

// Service and client ports used by all scenarios.
const (
	ServicePort = 8080
	ClientPort  = 9001
)

// ClientAddr is the probing client's address on the external network.
var ClientAddr = netip.MustParseAddr("192.168.1.50")

// WebCluster is the Figure 3 topology: N Wackamole web servers on one LAN,
// a router, and an external client probing one virtual address through it.
type WebCluster struct {
	*wackamole.Cluster
	ClientHost *netsim.Host
	Client     *probe.Client
	Probes     []*probe.Server
	// Target is the probed virtual address.
	Target netip.Addr
}

// NewWebCluster builds the scenario with the paper's parameters (10 virtual
// addresses) unless mods say otherwise.
func NewWebCluster(seed int64, servers int, cfg gcs.Config, mods ...func(*wackamole.ClusterOptions)) (*WebCluster, error) {
	opts := wackamole.ClusterOptions{
		Seed:       seed,
		Servers:    servers,
		VIPs:       10,
		GCS:        cfg,
		WithRouter: true,
	}
	for _, mod := range mods {
		mod(&opts)
	}
	cluster, err := wackamole.NewCluster(opts)
	if err != nil {
		return nil, err
	}
	wc := &WebCluster{Cluster: cluster, Target: wackamole.VIPAddr(0)}
	for _, srv := range cluster.Servers {
		ps, err := probe.NewServer(srv.Host, ServicePort)
		if err != nil {
			return nil, err
		}
		wc.Probes = append(wc.Probes, ps)
	}
	wc.ClientHost = cluster.Net.NewHost("client")
	cnic := wc.ClientHost.AttachNIC(cluster.External, "eth0",
		netip.PrefixFrom(ClientAddr, wackamole.ExternalSubnet.Bits()))
	wc.ClientHost.SetDefaultGateway(cnic, wackamole.RouterOutsideAddr)
	wc.Client, err = probe.NewClient(wc.ClientHost, probe.ClientConfig{
		Target:    netip.AddrPortFrom(wc.Target, ServicePort),
		LocalPort: ClientPort,
	})
	if err != nil {
		return nil, err
	}
	return wc, nil
}

// WarmUp settles the cluster, starts the client and runs traffic long
// enough to populate every ARP cache on the path, then clears the client's
// statistics and advances by a seed-derived fraction of the heartbeat
// interval so the fault phase is uniformly distributed — the reason the
// paper's measured notification time ranges over (T−H, T].
func (wc *WebCluster) WarmUp(cfg gcs.Config) {
	wc.Settle()
	wc.Client.Start()
	wc.RunFor(time.Second)
	offset := time.Duration(wc.Sim.Rand().Int63n(int64(cfg.HeartbeatInterval)))
	wc.RunFor(offset)
	wc.Client.ResetStats()
	wc.RunFor(100 * time.Millisecond)
}

// MeasureInterruption runs until the client records a service interruption
// (or maxWait passes) and returns it.
func (wc *WebCluster) MeasureInterruption(maxWait time.Duration) (probe.Gap, error) {
	step := 50 * time.Millisecond
	for waited := time.Duration(0); waited < maxWait; waited += step {
		wc.RunFor(step)
		if gaps := wc.Client.Gaps(); len(gaps) > 0 {
			return gaps[0], nil
		}
	}
	return probe.Gap{}, fmt.Errorf("experiment: no interruption observed within %v", maxWait)
}

package experiment

import (
	"fmt"

	"wackamole/internal/experiment/runner"
)

// sweep.go is the experiment layer's thin veneer over the shared trial
// runner: option plumbing shared by every sweep's signature, and the common
// policy for turning one grid point's raw results into a Stat row (tolerate
// and count per-trial errors; a point where every trial failed is fatal).

// Option adjusts how a sweep executes its trials (parallelism, progress
// reporting). Measurement semantics never depend on options: for the same
// seeds, any worker count produces identical rows.
type Option func(*runner.Options)

// Parallel bounds the number of concurrently executing trials; values < 1
// mean GOMAXPROCS.
func Parallel(workers int) Option {
	return func(o *runner.Options) { o.Workers = workers }
}

// WithSink installs a per-trial progress observer.
func WithSink(s runner.Sink) Option {
	return func(o *runner.Options) { o.Sink = s }
}

// runSweep executes the grid under the collected options.
func runSweep(points []runner.Point, opts []Option) []runner.Result {
	var ro runner.Options
	for _, opt := range opts {
		opt(&ro)
	}
	return runner.Run(points, ro)
}

// collectPoint summarizes one point's results. Per-trial errors are
// tolerated and counted; only a point with no surviving trial aborts the
// sweep, reporting the first error as the cause.
func collectPoint(res runner.Result) (Stat, runner.Metrics, int, error) {
	if len(res.Values) == 0 {
		n := len(res.Errors)
		if n == 0 {
			return Stat{}, runner.Metrics{}, 0, fmt.Errorf("experiment: %s: no trials", res.Label)
		}
		return Stat{}, runner.Metrics{}, n, fmt.Errorf("experiment: %s: all %d trials failed: %w", res.Label, n, res.Errors[0])
	}
	return Summarize(res.Values), res.Metrics, len(res.Errors), nil
}

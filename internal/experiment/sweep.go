package experiment

import (
	"fmt"

	"wackamole/internal/experiment/runner"
)

// sweep.go is the experiment layer's thin veneer over the shared trial
// runner: option plumbing shared by every sweep's signature, and the common
// policy for turning one grid point's raw results into a Stat row (tolerate
// and count per-trial errors; a point where every trial failed is fatal).

// sweepConfig collects the resolved options of one sweep invocation: the
// runner's execution options plus experiment-layer behaviour (tracing).
type sweepConfig struct {
	runner.Options
	trace      bool
	invariants bool
}

// Option adjusts how a sweep executes its trials (parallelism, progress
// reporting, tracing). Measurement semantics never depend on options: for
// the same seeds, any worker count — traced or not — produces identical
// rows.
type Option func(*sweepConfig)

// Parallel bounds the number of concurrently executing trials; values < 1
// mean GOMAXPROCS.
func Parallel(workers int) Option {
	return func(c *sweepConfig) { c.Workers = workers }
}

// WithSink installs a per-trial progress observer.
func WithSink(s runner.Sink) Option {
	return func(c *sweepConfig) { c.Sink = s }
}

// WithTrace makes every trial capture a structured event stream and attach
// it — with its fail-over phase breakdown — to the trial's Sample. Sweeps
// that do not support tracing ignore it. Tracing is observation-only: it
// consumes no randomness and schedules nothing, so traced statistics are
// identical to untraced ones.
func WithTrace() Option {
	return func(c *sweepConfig) { c.trace = true }
}

// WithInvariants arms an always-on invariant.Monitor (the five model-
// checker oracles) on every trial's cluster. Like tracing it is
// observation-only — hooks consume no randomness and schedule nothing, so
// measured rows are identical with monitoring on or off; a violation turns
// the trial into a counted per-trial error. Sweeps that do not support
// monitoring ignore it.
func WithInvariants() Option {
	return func(c *sweepConfig) { c.invariants = true }
}

// resolveOptions folds the option list into a sweepConfig.
func resolveOptions(opts []Option) sweepConfig {
	var c sweepConfig
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// runSweep executes the grid under the collected options.
func runSweep(points []runner.Point, opts []Option) []runner.Result {
	return runner.Run(points, resolveOptions(opts).Options)
}

// collectPoint summarizes one point's results. Per-trial errors are
// tolerated and counted; only a point with no surviving trial aborts the
// sweep, reporting the first error as the cause.
func collectPoint(res runner.Result) (Stat, runner.Metrics, int, error) {
	if len(res.Values) == 0 {
		n := len(res.Errors)
		if n == 0 {
			return Stat{}, runner.Metrics{}, 0, fmt.Errorf("experiment: %s: no trials", res.Label)
		}
		return Stat{}, runner.Metrics{}, n, fmt.Errorf("experiment: %s: all %d trials failed: %w", res.Label, n, res.Errors[0])
	}
	return Summarize(res.Values), res.Metrics, len(res.Errors), nil
}

package experiment

import (
	"strings"
	"testing"
	"time"

	"wackamole/internal/gcs"
)

func TestFigure5TrialTunedMatchesPaperBand(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		s, err := Figure5Trial(seed, 4, gcs.TunedConfig())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Paper: 2s–2.4s plus small protocol overheads.
		if s.Value < 1900*time.Millisecond || s.Value > 2800*time.Millisecond {
			t.Fatalf("seed %d: tuned interruption %v outside the paper band", seed, s.Value)
		}
	}
}

func TestFigure5TrialDefaultMatchesPaperBand(t *testing.T) {
	s, err := Figure5Trial(5, 4, gcs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 10s–12s plus small protocol overheads.
	if s.Value < 9500*time.Millisecond || s.Value > 13*time.Second {
		t.Fatalf("default interruption %v outside the paper band", s.Value)
	}
}

func TestFigure5TrialReportsMetrics(t *testing.T) {
	s, err := Figure5Trial(2, 4, gcs.TunedConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := s.Metrics
	if m.MembershipsInstalled == 0 || m.TokenRotations == 0 || m.FramesSent == 0 {
		t.Fatalf("trial metrics missing protocol activity: %+v", m)
	}
	if m.ViewChanges == 0 {
		t.Fatalf("a fail-over trial must record a view change: %+v", m)
	}
	if m.ARPSpoofs == 0 {
		t.Fatalf("a take-over must spoof ARP (§5.1): %+v", m)
	}
	if m.Acquires == 0 {
		t.Fatalf("a take-over must acquire addresses: %+v", m)
	}
}

func TestFaultPhaseSpreadsDetectionTime(t *testing.T) {
	// With the fault phase uniform in the heartbeat interval, the measured
	// interruptions should not all be identical.
	var min, max time.Duration
	for seed := int64(10); seed < 18; seed++ {
		s, err := Figure5Trial(seed, 2, gcs.TunedConfig())
		if err != nil {
			t.Fatal(err)
		}
		d := s.Value
		if min == 0 || d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max-min < 50*time.Millisecond {
		t.Fatalf("interruptions suspiciously uniform: min=%v max=%v", min, max)
	}
	if max-min > gcs.TunedConfig().HeartbeatInterval+200*time.Millisecond {
		t.Fatalf("interruption spread %v exceeds the heartbeat interval", max-min)
	}
}

func TestGracefulTrialIsMilliseconds(t *testing.T) {
	s, err := GracefulTrial(3, 3, gcs.TunedConfig())
	if err != nil {
		t.Fatal(err)
	}
	// §6: typically ~10ms, conservative upper bound 250ms.
	if s.Value > 250*time.Millisecond {
		t.Fatalf("graceful-leave interruption %v exceeds the paper's 250ms bound", s.Value)
	}
	if s.Value < probeFloor() {
		t.Fatalf("interruption %v below the probe interval floor", s.Value)
	}
}

func probeFloor() time.Duration { return 9 * time.Millisecond }

func TestTable1TrialBands(t *testing.T) {
	cfg := gcs.TunedConfig()
	s, err := Table1Trial(7, 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lo := cfg.FaultDetectTimeout - cfg.HeartbeatInterval + cfg.DiscoveryTimeout - 100*time.Millisecond
	hi := cfg.FaultDetectTimeout + cfg.DiscoveryTimeout + 500*time.Millisecond
	if s.Value < lo || s.Value > hi {
		t.Fatalf("notification delay %v outside [%v, %v]", s.Value, lo, hi)
	}
}

func TestRenderingProducesTables(t *testing.T) {
	rows, err := Graceful(1, 2, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	out := RenderGraceful(rows)
	if !strings.Contains(out, "cluster size") || !strings.Contains(out, "|") {
		t.Fatalf("unexpected table output:\n%s", out)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{time.Second, 3 * time.Second, 2 * time.Second})
	if s.N != 3 || s.Mean != 2*time.Second || s.Min != time.Second || s.Max != 3*time.Second || s.Median != 2*time.Second {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.StdDev != time.Second {
		t.Fatalf("StdDev = %v, want 1s", s.StdDev)
	}
	if s.P50 != 2*time.Second || s.P99 != 3*time.Second {
		t.Fatalf("percentiles = p50 %v p99 %v", s.P50, s.P99)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("Summarize(nil) = %+v", z)
	}
}

func TestPercentiles(t *testing.T) {
	var ds []time.Duration
	for i := 1; i <= 100; i++ {
		ds = append(ds, time.Duration(i)*time.Millisecond)
	}
	s := Summarize(ds)
	if s.P50 != 50*time.Millisecond {
		t.Fatalf("P50 = %v, want 50ms", s.P50)
	}
	if s.P99 != 99*time.Millisecond {
		t.Fatalf("P99 = %v, want 99ms", s.P99)
	}
	if one := Summarize(ds[:1]); one.P50 != time.Millisecond || one.P99 != time.Millisecond {
		t.Fatalf("single-sample percentiles = %+v", one)
	}
}

func TestSeedsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for _, s := range Seeds(42, 10) {
		if seen[s] {
			t.Fatal("duplicate seed")
		}
		seen[s] = true
	}
}

// TestPartitionWithRouterServesMajoritySide pins the Figure 3 behaviour
// under a partition: the component that still reaches the router keeps
// serving every address (each side covers the full set; the client can only
// see the router's side).
func TestPartitionWithRouterServesMajoritySide(t *testing.T) {
	cfg := gcs.TunedConfig()
	wc, err := NewWebCluster(21, 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wc.WarmUp(cfg)
	before := wc.Client.Responses()
	if before == 0 {
		t.Fatal("no traffic before the partition")
	}
	// Servers 0,1 stay with the router; 2,3 are cut off.
	wc.Partition([]int{0, 1}, []int{2, 3})
	wc.RunFor(10 * time.Second)
	wc.Client.ResetStats()
	wc.RunFor(2 * time.Second)
	if wc.Client.Responses() < 150 {
		t.Fatalf("router-side component barely serving: %d responses in 2s", wc.Client.Responses())
	}
	for name := range wc.Client.ByServer() {
		if name != "server00" && name != "server01" {
			t.Fatalf("response from the cut-off side: %v", wc.Client.ByServer())
		}
	}
	wc.Heal()
	wc.RunFor(15 * time.Second)
	if _, holders := wc.Owner(wc.Target); holders != 1 {
		t.Fatalf("target held by %d servers after heal", holders)
	}
}

package experiment

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"wackamole/internal/metrics"
)

// Stat summarizes a sample of durations.
type Stat struct {
	N              int
	Mean, Min, Max time.Duration
	Median         time.Duration
	P50, P99       time.Duration
	StdDev         time.Duration
}

// Summarize computes a Stat over ds.
func Summarize(ds []time.Duration) Stat {
	if len(ds) == 0 {
		return Stat{}
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	mean := sum / time.Duration(len(sorted))
	var varSum float64
	for _, d := range sorted {
		diff := float64(d - mean)
		varSum += diff * diff
	}
	std := time.Duration(0)
	if len(sorted) > 1 {
		std = time.Duration(sqrt(varSum / float64(len(sorted)-1)))
	}
	return Stat{
		N:      len(sorted),
		Mean:   mean,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Median: sorted[len(sorted)/2],
		P50:    metrics.Percentile(sorted, 50),
		P99:    metrics.Percentile(sorted, 99),
		StdDev: std,
	}
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Seconds formats a duration as seconds with millisecond precision, the
// unit of the paper's Figure 5 axis.
func Seconds(d time.Duration) string {
	return fmt.Sprintf("%.3fs", d.Seconds())
}

// Table renders rows as a GitHub-style markdown table.
func Table(header []string, rows [][]string) string {
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" ")
			b.WriteString(c)
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Seeds returns n deterministic seeds derived from base.
func Seeds(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)*7919 // spaced by a prime to avoid overlap
	}
	return out
}

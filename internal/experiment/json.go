package experiment

import (
	"encoding/json"
	"fmt"
	"io"

	"wackamole/internal/experiment/runner"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
)

// json.go renders every sweep's rows as machine-readable records (one JSON
// object per line, the shape benchmark-archival tooling ingests), so the
// evaluation can be diffed, plotted and regression-tracked without parsing
// markdown. cmd/wacksim's -json flag is the front end.

// JSONRow is one machine-readable result row.
type JSONRow struct {
	Experiment string `json:"experiment"`
	Point      string `json:"point"`
	// Unit names the measured quantity (what the *_s statistics are).
	Unit   string `json:"unit"`
	Trials int    `json:"trials"`
	Errors int    `json:"errors"`
	// The measured distribution in seconds.
	MeanSec   float64 `json:"mean_s"`
	MinSec    float64 `json:"min_s"`
	P50Sec    float64 `json:"p50_s"`
	P99Sec    float64 `json:"p99_s"`
	MaxSec    float64 `json:"max_s"`
	StdDevSec float64 `json:"stddev_s"`
	// Extra carries experiment-specific scalars (e.g. false
	// reconfigurations per minute for the load sweep).
	Extra map[string]float64 `json:"extra,omitempty"`
	// Metrics sums the per-trial protocol-activity counters of the
	// point's successful trials.
	Metrics runner.Metrics `json:"metrics"`
	// PerTrial holds per-trial rows — present only when the sweep ran with
	// tracing, which is what makes per-trial phase breakdowns available.
	PerTrial []TrialJSON `json:"per_trial,omitempty"`
}

// TrialJSON is one traced trial within a point: its seed, measured value
// and fail-over phase breakdown. The phases partition the measured
// interruption, so they sum to value_s.
type TrialJSON struct {
	Seed     int64         `json:"seed"`
	ValueSec float64       `json:"value_s"`
	Phases   obs.Breakdown `json:"phases"`
	Events   int           `json:"events"`
	// Latency summarizes the trial's protocol latency histograms (present
	// only when the trial carried a metrics registry).
	Latency *LatencyJSON `json:"latency,omitempty"`
}

// LatencyJSON is the per-trial protocol latency summary, quantiles estimated
// from the trial's cluster-wide (all nodes merged) latency histograms.
type LatencyJSON struct {
	TokenRotationP50Sec float64 `json:"token_rotation_p50_s"`
	TokenRotationP99Sec float64 `json:"token_rotation_p99_s"`
	TokenRotationObs    uint64  `json:"token_rotation_obs"`
	DeliveryP99Sec      float64 `json:"delivery_p99_s"`
	DeliveryObs         uint64  `json:"delivery_obs"`
	InstallP50Sec       float64 `json:"membership_install_p50_s"`
	StateSyncP50Sec     float64 `json:"state_sync_p50_s"`
}

// latencyRow summarizes a trial's registry snapshot; nil when the snapshot
// is empty (untraced trial).
func latencyRow(snap metrics.Snapshot) *LatencyJSON {
	if len(snap.Families) == 0 {
		return nil
	}
	rot := snap.MergedHistogram("gcs_token_rotation_seconds")
	del := snap.MergedHistogram("gcs_delivery_seconds")
	inst := snap.MergedHistogram("gcs_membership_install_seconds")
	sync := snap.MergedHistogram("core_state_sync_seconds")
	return &LatencyJSON{
		TokenRotationP50Sec: rot.Quantile(0.50),
		TokenRotationP99Sec: rot.Quantile(0.99),
		TokenRotationObs:    rot.Count(),
		DeliveryP99Sec:      del.Quantile(0.99),
		DeliveryObs:         del.Count(),
		InstallP50Sec:       inst.Quantile(0.50),
		StateSyncP50Sec:     sync.Quantile(0.50),
	}
}

// trialRows extracts the per-trial rows of a point's traced samples.
func trialRows(samples []runner.Sample) []TrialJSON {
	var out []TrialJSON
	for _, s := range samples {
		if s.Trace == nil {
			continue
		}
		out = append(out, TrialJSON{
			Seed:     s.Seed,
			ValueSec: s.Value.Seconds(),
			Phases:   s.Trace.Phases,
			Events:   len(s.Trace.Events),
			Latency:  latencyRow(s.Latency),
		})
	}
	return out
}

// jsonRow fills the common fields from a Stat.
func jsonRow(experiment, point, unit string, st Stat, errs int, m runner.Metrics) JSONRow {
	return JSONRow{
		Experiment: experiment,
		Point:      point,
		Unit:       unit,
		Trials:     st.N,
		Errors:     errs,
		MeanSec:    st.Mean.Seconds(),
		MinSec:     st.Min.Seconds(),
		P50Sec:     st.P50.Seconds(),
		P99Sec:     st.P99.Seconds(),
		MaxSec:     st.Max.Seconds(),
		StdDevSec:  st.StdDev.Seconds(),
		Metrics:    m,
	}
}

// Figure5JSON converts Figure 5 rows. Rows from a traced sweep additionally
// carry one entry per trial with its phase breakdown.
func Figure5JSON(rows []Figure5Row) []JSONRow {
	var out []JSONRow
	for _, r := range rows {
		row := jsonRow("figure5", fmt.Sprintf("%s/n=%d", r.Config, r.Size),
			"interruption", r.Stat, r.Errors, r.Metrics)
		row.PerTrial = trialRows(r.Samples)
		out = append(out, row)
	}
	return out
}

// Table1JSON converts Table 1 rows.
func Table1JSON(rows []Table1Row) []JSONRow {
	var out []JSONRow
	for _, r := range rows {
		row := jsonRow("table1", string(r.Config), "notification", r.Measured, r.Errors, r.Metrics)
		row.Extra = map[string]float64{
			"fault_detect_s":  r.FaultDetect.Seconds(),
			"heartbeat_s":     r.Heartbeat.Seconds(),
			"discovery_s":     r.Discovery.Seconds(),
			"predicted_min_s": r.PredictedMin.Seconds(),
			"predicted_max_s": r.PredictedMax.Seconds(),
		}
		out = append(out, row)
	}
	return out
}

// GracefulJSON converts graceful-leave rows.
func GracefulJSON(rows []GracefulRow) []JSONRow {
	var out []JSONRow
	for _, r := range rows {
		out = append(out, jsonRow("graceful", fmt.Sprintf("n=%d", r.Size),
			"interruption", r.Stat, r.Errors, r.Metrics))
	}
	return out
}

// RouterJSON converts §5.2 comparison rows.
func RouterJSON(rows []RouterRow) []JSONRow {
	var out []JSONRow
	for _, r := range rows {
		out = append(out, jsonRow("router", string(r.Mode), "interruption", r.Stat, r.Errors, r.Metrics))
	}
	return out
}

// BaselinesJSON converts §7 baseline rows.
func BaselinesJSON(rows []BaselineRow) []JSONRow {
	var out []JSONRow
	for _, r := range rows {
		out = append(out, jsonRow("baselines", r.System, "failover", r.Stat, r.Errors, r.Metrics))
	}
	return out
}

// LoadJSON converts load-sensitivity rows.
func LoadJSON(rows []LoadRow) []JSONRow {
	var out []JSONRow
	for _, r := range rows {
		row := jsonRow("load", fmt.Sprintf("jitter=%v", r.Jitter), "max_client_gap", r.MaxGap, r.Errors, r.Metrics)
		row.Extra = map[string]float64{"false_reconfigs_per_min": r.FalseReconfigs}
		out = append(out, row)
	}
	return out
}

// AblationsJSON converts ablation rows.
func AblationsJSON(rows []AblationRow) []JSONRow {
	var out []JSONRow
	for _, r := range rows {
		out = append(out, jsonRow("ablations", fmt.Sprintf("%s/%s", r.Experiment, r.Variant),
			r.Metric, r.Stat, r.Errors, r.Metrics))
	}
	return out
}

// WriteNDJSON writes one JSON object per row (newline-delimited JSON).
func WriteNDJSON(w io.Writer, rows []JSONRow) error {
	enc := json.NewEncoder(w)
	for _, r := range rows {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

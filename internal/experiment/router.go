package experiment

import (
	"fmt"
	"net/netip"
	"time"

	"wackamole"
	"wackamole/internal/core"
	"wackamole/internal/experiment/runner"
	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
	"wackamole/internal/probe"
	"wackamole/internal/rip"
	"wackamole/internal/router"
	"wackamole/internal/sim"
)

// RouterMode selects between the two §5.2 setups.
type RouterMode string

// The two setups the paper contrasts.
const (
	// RouterModeNaive: only the active fail-over router participates in the
	// dynamic routing protocol; after a take-over the new router must wait
	// for the next periodic advertisement — "this usually takes around 30
	// seconds".
	RouterModeNaive RouterMode = "naive"
	// RouterModeAdvertiseAll: all fail-over routers participate
	// continuously and advertise the same internal networks, so a take-over
	// completes as soon as Wackamole reassigns the virtual addresses.
	RouterModeAdvertiseAll RouterMode = "advertise-all"
)

// Figure-4-style address plan.
var (
	clientNetPrefix = netip.MustParsePrefix("203.0.113.0/24")
	extVIP          = netip.MustParseAddr("198.51.100.1")
	webVIP          = netip.MustParseAddr("10.1.0.1")
	webNetPrefix    = netip.MustParsePrefix("10.1.0.0/24")
)

// virtualRouterScenario is the Figure 4 topology: two physical routers
// acting as one virtual router between an external network (with an
// upstream RIP router towards the client) and an internal web network.
type virtualRouterScenario struct {
	sim     *sim.Sim
	net     *netsim.Network
	frHosts [2]*netsim.Host
	frs     [2]*router.PhysicalRouter
	client  *probe.Client
	// server and clientHost are the endpoints of the probed path; the
	// request-level availability trial attaches a flow server and a load
	// engine to them.
	server     *netsim.Host
	clientHost *netsim.Host
}

// metrics snapshots the scenario's protocol activity: network-wide traffic
// plus the two fail-over routers' daemon and engine counters.
func (sc *virtualRouterScenario) metrics() runner.Metrics {
	m := networkMetrics(sc.net)
	for _, fr := range sc.frs {
		nodeMetrics(&m, fr.Node)
	}
	return m
}

// newVirtualRouterScenario builds (and starts) the topology. The optional
// onNode callbacks run for each fail-over router's node after it is built
// and before it starts — the attachment window invariant monitors need.
func newVirtualRouterScenario(seed int64, mode RouterMode, cfg gcs.Config, ripCfg rip.Config, onNode ...func(i int, n *wackamole.Node)) (*virtualRouterScenario, error) {
	s := sim.New(seed)
	nw := netsim.New(s)
	segCfg := netsim.DefaultSegmentConfig()
	clientNet := nw.NewSegment("client", segCfg)
	extNet := nw.NewSegment("ext", segCfg)
	webNet := nw.NewSegment("web", segCfg)

	// Upstream router: connects the client network to the external network
	// and participates in the routing protocol.
	u := nw.NewHost("upstream")
	u.AttachNIC(clientNet, "c", netip.MustParsePrefix("203.0.113.1/24"))
	uExt := u.AttachNIC(extNet, "e", netip.MustParsePrefix("198.51.100.2/24"))
	u.EnableForwarding()
	// Static route towards the internal network via the virtual router.
	u.AddRoute(webNetPrefix, uExt, extVIP)
	uRIP, err := rip.New(u, ripCfg)
	if err != nil {
		return nil, err
	}
	uRIP.Start()

	sc := &virtualRouterScenario{sim: s, net: nw}

	// The indivisible virtual address group spanning both networks (§5.2).
	group := core.VIPGroup{Name: "vrouter", Addrs: []netip.Addr{extVIP, webVIP}}
	participation := router.ParticipateAlways
	if mode == RouterModeNaive {
		participation = router.ParticipateWhenActive
	}
	for i := 0; i < 2; i++ {
		fr := nw.NewHost(fmt.Sprintf("fr%d", i+1))
		fr.AttachNIC(extNet, "ext", netip.MustParsePrefix(fmt.Sprintf("198.51.100.%d/24", 3+i)))
		webNIC := fr.AttachNIC(webNet, "web", netip.MustParsePrefix(fmt.Sprintf("10.1.0.%d/24", 2+i)))
		sc.frHosts[i] = fr

		pr, err := router.New(router.Options{
			Host:          fr,
			GCSNIC:        webNIC,
			GCS:           cfg,
			Group:         group,
			RIP:           ripCfg,
			Participation: participation,
			OnNode: func(n *wackamole.Node) {
				for _, f := range onNode {
					f(i, n)
				}
			},
		})
		if err != nil {
			return nil, err
		}
		if err := pr.Start(); err != nil {
			return nil, err
		}
		sc.frs[i] = pr
	}

	// Internal web server, reached through the virtual router.
	server := nw.NewHost("webserver")
	srvNIC := server.AttachNIC(webNet, "eth0", netip.MustParsePrefix("10.1.0.10/24"))
	server.SetDefaultGateway(srvNIC, webVIP)
	if _, err := probe.NewServer(server, ServicePort); err != nil {
		return nil, err
	}
	sc.server = server

	// External client behind the upstream router.
	client := nw.NewHost("client")
	cNIC := client.AttachNIC(clientNet, "eth0", netip.MustParsePrefix("203.0.113.50/24"))
	client.SetDefaultGateway(cNIC, netip.MustParseAddr("203.0.113.1"))
	sc.clientHost = client
	sc.client, err = probe.NewClient(client, probe.ClientConfig{
		Target:    netip.AddrPortFrom(netip.MustParseAddr("10.1.0.10"), ServicePort),
		LocalPort: ClientPort,
	})
	if err != nil {
		return nil, err
	}
	return sc, nil
}

// activeRouter returns the index of the physical router holding the
// virtual addresses.
func (sc *virtualRouterScenario) activeRouter() (int, error) {
	for i, fr := range sc.frHosts {
		holds := false
		for _, nic := range fr.NICs() {
			if nic.HasAddr(extVIP) || nic.HasAddr(webVIP) {
				holds = true
			}
		}
		if holds && fr.Alive() {
			return i, nil
		}
	}
	return 0, fmt.Errorf("experiment: no active virtual router")
}

// RouterTrial measures the client-visible interruption when the active
// physical router crashes, under the given §5.2 setup.
func RouterTrial(seed int64, mode RouterMode, cfg gcs.Config, ripCfg rip.Config) (runner.Sample, error) {
	sc, err := newVirtualRouterScenario(seed, mode, cfg, ripCfg)
	if err != nil {
		return runner.Sample{}, err
	}
	// Warm-up: let memberships form, the active router join the routing
	// protocol and learn the client network (first periodic advertisement),
	// and the probe path populate every ARP cache.
	sc.sim.RunFor(2*cfg.DiscoveryTimeout + 2*time.Second)
	sc.client.Start()
	sc.sim.RunFor(ripCfg.AdvertisePeriod + 5*time.Second)
	if sc.client.Responses() == 0 {
		return runner.Sample{}, fmt.Errorf("experiment: no responses during warm-up")
	}
	// Random fault phase relative to the advertisement period.
	sc.sim.RunFor(time.Duration(sc.sim.Rand().Int63n(int64(ripCfg.AdvertisePeriod))))
	sc.client.ResetStats()
	sc.sim.RunFor(200 * time.Millisecond)

	active, err := sc.activeRouter()
	if err != nil {
		return runner.Sample{}, err
	}
	sc.frHosts[active].Crash()
	maxWait := 3*ripCfg.AdvertisePeriod + 4*(cfg.FaultDetectTimeout+cfg.DiscoveryTimeout)
	step := 100 * time.Millisecond
	for waited := time.Duration(0); waited < maxWait; waited += step {
		sc.sim.RunFor(step)
		if gaps := sc.client.Gaps(); len(gaps) > 0 {
			return runner.Sample{Value: gaps[0].Duration(), Metrics: sc.metrics()}, nil
		}
	}
	return runner.Sample{}, fmt.Errorf("experiment: router fail-over never completed within %v", maxWait)
}

// RouterRow is one line of the §5.2 comparison.
type RouterRow struct {
	Mode    RouterMode
	Stat    Stat
	Metrics runner.Metrics
	Errors  int
}

// RouterComparison contrasts the naive setup against advertise-all, with
// tuned Wackamole timeouts and 30s RIP advertisements.
func RouterComparison(baseSeed int64, trials int, opts ...Option) ([]RouterRow, error) {
	cfg := gcs.TunedConfig()
	ripCfg := rip.Config{AdvertisePeriod: rip.DefaultAdvertisePeriod}
	modes := []RouterMode{RouterModeNaive, RouterModeAdvertiseAll}
	var points []runner.Point
	for _, mode := range modes {
		mode := mode
		points = append(points, runner.Point{
			Label: fmt.Sprintf("router/%s", mode),
			Seeds: Seeds(baseSeed, trials),
			Run: func(seed int64) (runner.Sample, error) {
				return RouterTrial(seed, mode, cfg, ripCfg)
			},
		})
	}
	var rows []RouterRow
	for i, res := range runSweep(points, opts) {
		stat, metrics, errs, err := collectPoint(res)
		if err != nil {
			return nil, err
		}
		rows = append(rows, RouterRow{Mode: modes[i], Stat: stat, Metrics: metrics, Errors: errs})
	}
	return rows, nil
}

// RenderRouterComparison formats the §5.2 results.
func RenderRouterComparison(rows []RouterRow) string {
	header := []string{"setup", "trials", "mean interruption", "min", "max"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			string(r.Mode), fmt.Sprintf("%d", r.Stat.N),
			Seconds(r.Stat.Mean), Seconds(r.Stat.Min), Seconds(r.Stat.Max),
		})
	}
	return Table(header, cells)
}

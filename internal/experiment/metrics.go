package experiment

import (
	"wackamole"
	"wackamole/internal/experiment/runner"
	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
)

// metrics.go collects the per-trial protocol-activity counters exposed by
// internal/gcs (daemon stats), internal/core (engine stats) and
// internal/netsim (network counters) into the runner's Metrics struct, so
// every Stat row of the evaluation carries the observability needed to
// debug a divergent trial.

// networkMetrics snapshots the simulated network's traffic counters.
func networkMetrics(nw *netsim.Network) runner.Metrics {
	c := nw.Counters()
	return runner.Metrics{
		ARPSpoofs:     c.ARPSpoofs,
		FramesSent:    c.FramesSent,
		FramesDropped: c.FramesDropped,
	}
}

// nodeMetrics folds one Wackamole node's daemon and engine counters into m.
func nodeMetrics(m *runner.Metrics, n *wackamole.Node) {
	var ds gcs.Stats
	ds.Merge(n.Daemon().Stats())
	m.MembershipsInstalled += ds.MembershipsInstalled
	m.ViewChanges += ds.Reconfigurations
	m.TokenRotations += ds.TokensForwarded
	m.MessagesDelivered += ds.DataDelivered
	es := n.Engine().Stats()
	m.Acquires += es.Acquires
	m.Releases += es.Releases
}

// clusterMetrics snapshots a whole simulated cluster: every member's daemon
// and engine counters plus the network totals.
func clusterMetrics(c *wackamole.Cluster) runner.Metrics {
	m := networkMetrics(c.Net)
	for _, srv := range c.Servers {
		nodeMetrics(&m, srv.Node)
	}
	return m
}

// metricsDelta returns the activity between two snapshots of the same
// world (counters are monotone, so a plain field-wise difference).
func metricsDelta(before, after runner.Metrics) runner.Metrics {
	return runner.Metrics{
		MembershipsInstalled: after.MembershipsInstalled - before.MembershipsInstalled,
		ViewChanges:          after.ViewChanges - before.ViewChanges,
		TokenRotations:       after.TokenRotations - before.TokenRotations,
		MessagesDelivered:    after.MessagesDelivered - before.MessagesDelivered,
		Acquires:             after.Acquires - before.Acquires,
		Releases:             after.Releases - before.Releases,
		ARPSpoofs:            after.ARPSpoofs - before.ARPSpoofs,
		FramesSent:           after.FramesSent - before.FramesSent,
		FramesDropped:        after.FramesDropped - before.FramesDropped,
	}
}

package experiment

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// TestFigure5JSONLatencySchemaRoundTrip checks that the -json per-trial rows
// carry the latency summary and that the schema survives a decode/encode
// cycle: what a downstream consumer parses is exactly what was written.
func TestFigure5JSONLatencySchemaRoundTrip(t *testing.T) {
	rows := tracedFigure5(t, 2, 1)
	jsonRows := Figure5JSON(rows)

	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, jsonRows); err != nil {
		t.Fatal(err)
	}

	dec := json.NewDecoder(&buf)
	var decoded []JSONRow
	for dec.More() {
		var r JSONRow
		if err := dec.Decode(&r); err != nil {
			t.Fatal(err)
		}
		decoded = append(decoded, r)
	}
	if len(decoded) != len(jsonRows) {
		t.Fatalf("decoded %d rows, wrote %d", len(decoded), len(jsonRows))
	}

	for i, r := range decoded {
		if len(r.PerTrial) != 2 {
			t.Fatalf("row %d: per_trial = %d, want 2", i, len(r.PerTrial))
		}
		for _, tr := range r.PerTrial {
			if tr.Latency == nil {
				t.Fatalf("row %d seed %d: traced trial without latency summary", i, tr.Seed)
			}
			// The latency summary is all plain floats/ints, so the round
			// trip must be bit-exact.
			if !reflect.DeepEqual(tr.Latency, jsonRows[i].perTrialLatency(tr.Seed)) {
				t.Fatalf("row %d seed %d: latency changed in round trip:\nwrote %+v\nread  %+v",
					i, tr.Seed, jsonRows[i].perTrialLatency(tr.Seed), tr.Latency)
			}
			// Sanity of the measured quantities: the token rotated during the
			// trial and quantiles are ordered.
			if tr.Latency.TokenRotationObs == 0 {
				t.Fatalf("row %d seed %d: no token rotation observations", i, tr.Seed)
			}
			if tr.Latency.TokenRotationP50Sec <= 0 ||
				tr.Latency.TokenRotationP99Sec < tr.Latency.TokenRotationP50Sec {
				t.Fatalf("row %d seed %d: bad rotation quantiles %+v", i, tr.Seed, tr.Latency)
			}
			if tr.Latency.InstallP50Sec <= 0 {
				t.Fatalf("row %d seed %d: no membership-install latency", i, tr.Seed)
			}
		}
	}

	// Untraced sweeps omit the latency summary entirely (no "latency" key).
	plain, err := Figure5Over(300, 1, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteNDJSON(&buf, Figure5JSON(plain)); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(buf.Bytes(), []byte(`"latency"`)) {
		t.Fatalf("untraced rows leak a latency field:\n%s", buf.String())
	}
	if bytes.Contains(buf.Bytes(), []byte(`"per_trial"`)) {
		t.Fatalf("untraced rows leak per_trial:\n%s", buf.String())
	}
}

// perTrialLatency finds the written latency summary for a seed.
func (r JSONRow) perTrialLatency(seed int64) *LatencyJSON {
	for _, tr := range r.PerTrial {
		if tr.Seed == seed {
			return tr.Latency
		}
	}
	return nil
}

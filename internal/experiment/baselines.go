package experiment

import (
	"fmt"
	"net/netip"
	"time"

	"wackamole/internal/fake"
	"wackamole/internal/gcs"
	"wackamole/internal/hsrp"
	"wackamole/internal/netsim"
	"wackamole/internal/probe"
	"wackamole/internal/sim"
	"wackamole/internal/vrrp"
)

// BaselineRow is one line of the §7 baseline fail-over comparison.
type BaselineRow struct {
	System string
	Detail string
	Stat   Stat
}

// pairTopology is a two-server fail-over pair behind a router with an
// external probing client — the smallest instance of the Figure 3 layout,
// used to measure every baseline with the same §6 methodology.
type pairTopology struct {
	sim       *sim.Sim
	main      *netsim.Host
	backup    *netsim.Host
	mainNIC   *netsim.NIC
	backupNIC *netsim.NIC
	client    *probe.Client
	vip       netip.Addr
}

func newPairTopology(seed int64) (*pairTopology, error) {
	s := sim.New(seed)
	nw := netsim.New(s)
	segCfg := netsim.DefaultSegmentConfig()
	lan := nw.NewSegment("cluster", segCfg)
	ext := nw.NewSegment("external", segCfg)

	router := nw.NewHost("router")
	router.AttachNIC(lan, "in", netip.MustParsePrefix("10.0.0.1/24"))
	router.AttachNIC(ext, "out", netip.MustParsePrefix("192.168.1.1/24"))
	router.EnableForwarding()

	p := &pairTopology{sim: s, vip: netip.MustParseAddr("10.0.0.100")}
	p.main = nw.NewHost("main")
	p.mainNIC = p.main.AttachNIC(lan, "eth0", netip.MustParsePrefix("10.0.0.10/24"))
	p.main.SetDefaultGateway(p.mainNIC, netip.MustParseAddr("10.0.0.1"))
	p.backup = nw.NewHost("backup")
	p.backupNIC = p.backup.AttachNIC(lan, "eth0", netip.MustParsePrefix("10.0.0.11/24"))
	p.backup.SetDefaultGateway(p.backupNIC, netip.MustParseAddr("10.0.0.1"))
	for _, h := range []*netsim.Host{p.main, p.backup} {
		if _, err := probe.NewServer(h, ServicePort); err != nil {
			return nil, err
		}
	}

	clientHost := nw.NewHost("client")
	cnic := clientHost.AttachNIC(ext, "eth0", netip.MustParsePrefix("192.168.1.50/24"))
	clientHost.SetDefaultGateway(cnic, netip.MustParseAddr("192.168.1.1"))
	client, err := probe.NewClient(clientHost, probe.ClientConfig{
		Target:    netip.AddrPortFrom(p.vip, ServicePort),
		LocalPort: ClientPort,
	})
	if err != nil {
		return nil, err
	}
	p.client = client
	return p, nil
}

// measureFailover warms the probe path up, fails the main server and
// returns the client-visible interruption.
func (p *pairTopology) measureFailover(maxWait time.Duration) (time.Duration, error) {
	p.client.Start()
	p.sim.RunFor(2 * time.Second)
	if p.client.Responses() == 0 {
		return 0, fmt.Errorf("experiment: service never answered before the fault")
	}
	// Uniform fault phase relative to the protocols' periodic timers.
	p.sim.RunFor(time.Duration(p.sim.Rand().Int63n(int64(3 * time.Second))))
	p.client.ResetStats()
	p.sim.RunFor(100 * time.Millisecond)
	p.mainNIC.SetUp(false)
	step := 50 * time.Millisecond
	for waited := time.Duration(0); waited < maxWait; waited += step {
		p.sim.RunFor(step)
		if gaps := p.client.Gaps(); len(gaps) > 0 {
			return gaps[0].Duration(), nil
		}
	}
	return 0, fmt.Errorf("experiment: no fail-over within %v", maxWait)
}

// VRRPTrial measures VRRP fail-over with RFC 2338 defaults (1s adverts).
func VRRPTrial(seed int64) (time.Duration, error) {
	p, err := newPairTopology(seed)
	if err != nil {
		return 0, err
	}
	master, err := vrrp.New(p.main, p.mainNIC, vrrp.Config{VRID: 1, Priority: 200, VIP: p.vip, Preempt: true})
	if err != nil {
		return 0, err
	}
	backup, err := vrrp.New(p.backup, p.backupNIC, vrrp.Config{VRID: 1, Priority: 100, VIP: p.vip, Preempt: true})
	if err != nil {
		return 0, err
	}
	master.Start()
	backup.Start()
	p.sim.RunFor(8 * time.Second) // initial election
	if master.State() != vrrp.StateMaster {
		return 0, fmt.Errorf("experiment: vrrp election failed (main %v)", master.State())
	}
	return p.measureFailover(30 * time.Second)
}

// HSRPTrial measures HSRP fail-over with the defaults the paper quotes
// (hello 3s, timeouts 10s).
func HSRPTrial(seed int64) (time.Duration, error) {
	p, err := newPairTopology(seed)
	if err != nil {
		return 0, err
	}
	active, err := hsrp.New(p.main, p.mainNIC, hsrp.Config{Group: 1, Priority: 200, VIP: p.vip})
	if err != nil {
		return 0, err
	}
	standby, err := hsrp.New(p.backup, p.backupNIC, hsrp.Config{Group: 1, Priority: 100, VIP: p.vip})
	if err != nil {
		return 0, err
	}
	active.Start()
	standby.Start()
	p.sim.RunFor(25 * time.Second) // initial election resolves after hold
	if active.Role() != hsrp.RoleActive {
		return 0, fmt.Errorf("experiment: hsrp election failed (main %v)", active.Role())
	}
	return p.measureFailover(40 * time.Second)
}

// FakeTrial measures the Linux Fake scheme: the backup probes the main's
// service every second and takes over after three consecutive misses.
func FakeTrial(seed int64) (time.Duration, error) {
	p, err := newPairTopology(seed)
	if err != nil {
		return 0, err
	}
	if err := p.mainNIC.AddAddr(p.vip); err != nil {
		return 0, err
	}
	mon, err := fake.New(p.backup, p.backupNIC, fake.Config{
		Target:    netip.AddrPortFrom(p.vip, ServicePort),
		VIP:       p.vip,
		LocalPort: 9100,
	})
	if err != nil {
		return 0, err
	}
	mon.Start()
	return p.measureFailover(30 * time.Second)
}

// Baselines runs the fail-over comparison: Wackamole under both Table 1
// configurations against VRRP, HSRP and Fake, all measured identically.
func Baselines(baseSeed int64, trials int) ([]BaselineRow, error) {
	type system struct {
		name   string
		detail string
		run    func(seed int64) (time.Duration, error)
	}
	systems := []system{
		{"wackamole (tuned)", "Table 1 tuned timeouts", func(s int64) (time.Duration, error) {
			return Figure5Trial(s, 2, gcs.TunedConfig())
		}},
		{"wackamole (default)", "Table 1 default timeouts", func(s int64) (time.Duration, error) {
			return Figure5Trial(s, 2, gcs.DefaultConfig())
		}},
		{"vrrp", "RFC 2338 defaults: 1s adverts, 3×+skew master-down", VRRPTrial},
		{"hsrp", "hello 3s, hold 10s (§7)", HSRPTrial},
		{"fake", "1s service probes, 3-miss threshold", FakeTrial},
	}
	var rows []BaselineRow
	for _, sys := range systems {
		var samples []time.Duration
		for _, seed := range Seeds(baseSeed, trials) {
			d, err := sys.run(seed)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", sys.name, err)
			}
			samples = append(samples, d)
		}
		rows = append(rows, BaselineRow{System: sys.name, Detail: sys.detail, Stat: Summarize(samples)})
	}
	return rows, nil
}

// RenderBaselines formats the comparison.
func RenderBaselines(rows []BaselineRow) string {
	header := []string{"system", "configuration", "trials", "mean fail-over", "min", "max"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.System, r.Detail, fmt.Sprintf("%d", r.Stat.N),
			Seconds(r.Stat.Mean), Seconds(r.Stat.Min), Seconds(r.Stat.Max),
		})
	}
	return Table(header, cells)
}

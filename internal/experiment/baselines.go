package experiment

import (
	"fmt"
	"net/netip"
	"time"

	"wackamole/internal/experiment/runner"
	"wackamole/internal/fake"
	"wackamole/internal/gcs"
	"wackamole/internal/hsrp"
	"wackamole/internal/netsim"
	"wackamole/internal/probe"
	"wackamole/internal/sim"
	"wackamole/internal/vrrp"
)

// BaselineRow is one line of the §7 baseline fail-over comparison.
type BaselineRow struct {
	System  string
	Detail  string
	Stat    Stat
	Metrics runner.Metrics
	Errors  int
}

// pairTopology is a two-server fail-over pair behind a router with an
// external probing client — the smallest instance of the Figure 3 layout,
// used to measure every baseline with the same §6 methodology.
type pairTopology struct {
	sim       *sim.Sim
	net       *netsim.Network
	main      *netsim.Host
	backup    *netsim.Host
	mainNIC   *netsim.NIC
	backupNIC *netsim.NIC
	client    *probe.Client
	vip       netip.Addr
}

func newPairTopology(seed int64) (*pairTopology, error) {
	s := sim.New(seed)
	nw := netsim.New(s)
	segCfg := netsim.DefaultSegmentConfig()
	lan := nw.NewSegment("cluster", segCfg)
	ext := nw.NewSegment("external", segCfg)

	router := nw.NewHost("router")
	router.AttachNIC(lan, "in", netip.MustParsePrefix("10.0.0.1/24"))
	router.AttachNIC(ext, "out", netip.MustParsePrefix("192.168.1.1/24"))
	router.EnableForwarding()

	p := &pairTopology{sim: s, net: nw, vip: netip.MustParseAddr("10.0.0.100")}
	p.main = nw.NewHost("main")
	p.mainNIC = p.main.AttachNIC(lan, "eth0", netip.MustParsePrefix("10.0.0.10/24"))
	p.main.SetDefaultGateway(p.mainNIC, netip.MustParseAddr("10.0.0.1"))
	p.backup = nw.NewHost("backup")
	p.backupNIC = p.backup.AttachNIC(lan, "eth0", netip.MustParsePrefix("10.0.0.11/24"))
	p.backup.SetDefaultGateway(p.backupNIC, netip.MustParseAddr("10.0.0.1"))
	for _, h := range []*netsim.Host{p.main, p.backup} {
		if _, err := probe.NewServer(h, ServicePort); err != nil {
			return nil, err
		}
	}

	clientHost := nw.NewHost("client")
	cnic := clientHost.AttachNIC(ext, "eth0", netip.MustParsePrefix("192.168.1.50/24"))
	clientHost.SetDefaultGateway(cnic, netip.MustParseAddr("192.168.1.1"))
	client, err := probe.NewClient(clientHost, probe.ClientConfig{
		Target:    netip.AddrPortFrom(p.vip, ServicePort),
		LocalPort: ClientPort,
	})
	if err != nil {
		return nil, err
	}
	p.client = client
	return p, nil
}

// measureFailover warms the probe path up, fails the main server and
// returns the client-visible interruption together with the topology's
// traffic counters.
func (p *pairTopology) measureFailover(maxWait time.Duration) (runner.Sample, error) {
	p.client.Start()
	p.sim.RunFor(2 * time.Second)
	if p.client.Responses() == 0 {
		return runner.Sample{}, fmt.Errorf("experiment: service never answered before the fault")
	}
	// Uniform fault phase relative to the protocols' periodic timers.
	p.sim.RunFor(time.Duration(p.sim.Rand().Int63n(int64(3 * time.Second))))
	p.client.ResetStats()
	p.sim.RunFor(100 * time.Millisecond)
	p.mainNIC.SetUp(false)
	step := 50 * time.Millisecond
	for waited := time.Duration(0); waited < maxWait; waited += step {
		p.sim.RunFor(step)
		if gaps := p.client.Gaps(); len(gaps) > 0 {
			return runner.Sample{Value: gaps[0].Duration(), Metrics: networkMetrics(p.net)}, nil
		}
	}
	return runner.Sample{}, fmt.Errorf("experiment: no fail-over within %v", maxWait)
}

// VRRPTrial measures VRRP fail-over with RFC 2338 defaults (1s adverts).
func VRRPTrial(seed int64) (runner.Sample, error) {
	p, err := newPairTopology(seed)
	if err != nil {
		return runner.Sample{}, err
	}
	master, err := vrrp.New(p.main, p.mainNIC, vrrp.Config{VRID: 1, Priority: 200, VIP: p.vip, Preempt: true})
	if err != nil {
		return runner.Sample{}, err
	}
	backup, err := vrrp.New(p.backup, p.backupNIC, vrrp.Config{VRID: 1, Priority: 100, VIP: p.vip, Preempt: true})
	if err != nil {
		return runner.Sample{}, err
	}
	master.Start()
	backup.Start()
	p.sim.RunFor(8 * time.Second) // initial election
	if master.State() != vrrp.StateMaster {
		return runner.Sample{}, fmt.Errorf("experiment: vrrp election failed (main %v)", master.State())
	}
	return p.measureFailover(30 * time.Second)
}

// HSRPTrial measures HSRP fail-over with the defaults the paper quotes
// (hello 3s, timeouts 10s).
func HSRPTrial(seed int64) (runner.Sample, error) {
	p, err := newPairTopology(seed)
	if err != nil {
		return runner.Sample{}, err
	}
	active, err := hsrp.New(p.main, p.mainNIC, hsrp.Config{Group: 1, Priority: 200, VIP: p.vip})
	if err != nil {
		return runner.Sample{}, err
	}
	standby, err := hsrp.New(p.backup, p.backupNIC, hsrp.Config{Group: 1, Priority: 100, VIP: p.vip})
	if err != nil {
		return runner.Sample{}, err
	}
	active.Start()
	standby.Start()
	p.sim.RunFor(25 * time.Second) // initial election resolves after hold
	if active.Role() != hsrp.RoleActive {
		return runner.Sample{}, fmt.Errorf("experiment: hsrp election failed (main %v)", active.Role())
	}
	return p.measureFailover(40 * time.Second)
}

// FakeTrial measures the Linux Fake scheme: the backup probes the main's
// service every second and takes over after three consecutive misses.
func FakeTrial(seed int64) (runner.Sample, error) {
	p, err := newPairTopology(seed)
	if err != nil {
		return runner.Sample{}, err
	}
	if err := p.mainNIC.AddAddr(p.vip); err != nil {
		return runner.Sample{}, err
	}
	mon, err := fake.New(p.backup, p.backupNIC, fake.Config{
		Target:    netip.AddrPortFrom(p.vip, ServicePort),
		VIP:       p.vip,
		LocalPort: 9100,
	})
	if err != nil {
		return runner.Sample{}, err
	}
	mon.Start()
	return p.measureFailover(30 * time.Second)
}

// baselineSystems enumerates the §7 comparison in presentation order.
func baselineSystems() []struct {
	name   string
	detail string
	run    runner.Trial
} {
	return []struct {
		name   string
		detail string
		run    runner.Trial
	}{
		{"wackamole (tuned)", "Table 1 tuned timeouts", func(s int64) (runner.Sample, error) {
			return Figure5Trial(s, 2, gcs.TunedConfig())
		}},
		{"wackamole (default)", "Table 1 default timeouts", func(s int64) (runner.Sample, error) {
			return Figure5Trial(s, 2, gcs.DefaultConfig())
		}},
		{"vrrp", "RFC 2338 defaults: 1s adverts, 3×+skew master-down", VRRPTrial},
		{"hsrp", "hello 3s, hold 10s (§7)", HSRPTrial},
		{"fake", "1s service probes, 3-miss threshold", FakeTrial},
	}
}

// Baselines runs the fail-over comparison: Wackamole under both Table 1
// configurations against VRRP, HSRP and Fake, all measured identically.
func Baselines(baseSeed int64, trials int, opts ...Option) ([]BaselineRow, error) {
	systems := baselineSystems()
	var points []runner.Point
	for _, sys := range systems {
		points = append(points, runner.Point{
			Label: fmt.Sprintf("baselines/%s", sys.name),
			Seeds: Seeds(baseSeed, trials),
			Run:   sys.run,
		})
	}
	var rows []BaselineRow
	for i, res := range runSweep(points, opts) {
		stat, metrics, errs, err := collectPoint(res)
		if err != nil {
			return nil, err
		}
		rows = append(rows, BaselineRow{System: systems[i].name, Detail: systems[i].detail, Stat: stat, Metrics: metrics, Errors: errs})
	}
	return rows, nil
}

// RenderBaselines formats the comparison.
func RenderBaselines(rows []BaselineRow) string {
	header := []string{"system", "configuration", "trials", "mean fail-over", "min", "max"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.System, r.Detail, fmt.Sprintf("%d", r.Stat.N),
			Seconds(r.Stat.Mean), Seconds(r.Stat.Min), Seconds(r.Stat.Max),
		})
	}
	return Table(header, cells)
}

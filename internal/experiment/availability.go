package experiment

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"sync"
	"time"

	"wackamole"
	"wackamole/internal/experiment/runner"
	"wackamole/internal/faults"
	"wackamole/internal/flow"
	"wackamole/internal/gcs"
	"wackamole/internal/health"
	"wackamole/internal/invariant"
	"wackamole/internal/load"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
	"wackamole/internal/placement"
	"wackamole/internal/rip"
)

// availability.go is the request-level availability experiment: where
// figure5.go measures a fault through a single 10ms probe, this experiment
// drives a whole client population over flow connections and reports what
// that population experiences across the fault — goodput and error-rate
// timeline, per-class request counts, latency before/during/after the
// fail-over, and the number of established connections lost at takeover
// (the paper's §2/§6 connection-loss claim, observed rather than asserted).
// cmd/wackload is its command-line front end.

// FlowPort is the connection-oriented service port every cluster server
// answers on (distinct from ServicePort, the probe's datagram echo).
const FlowPort = 8090

// LoadClientPort is the workload engine's client-side UDP port (distinct
// from ClientPort, the probe client's).
const LoadClientPort = 9100

// FaultKind selects the injected fault.
type FaultKind string

// The fault injections the experiment supports: the paper's three clean
// faults plus the three gray-failure shapes of internal/faults.
const (
	// FaultNIC disconnects the victim's interface — the paper's §6 method.
	FaultNIC FaultKind = "nic"
	// FaultCrash halts the victim host entirely.
	FaultCrash FaultKind = "crash"
	// FaultGraceful makes the victim leave service voluntarily.
	FaultGraceful FaultKind = "graceful"
	// FaultFlap cycles the victim's interface down and up on a duty cycle
	// for GrayWindow, then clears (web topology only).
	FaultFlap FaultKind = "flap"
	// FaultGrayLink leaves the victim up but drops and delays its frames
	// per direction for GrayWindow — the lossy-but-alive link.
	FaultGrayLink FaultKind = "graylink"
	// FaultSlowNode starves the victim's daemon of CPU for GrayWindow: it
	// holds the token late without ever being down.
	FaultSlowNode FaultKind = "slownode"
	// FaultRolling restarts every server in sequence — drain (graceful
	// leave), wait RollingGap, rejoin, wait RollingGap — under continuous
	// traffic: the rolling-upgrade schedule. Web topology only; disruption
	// is reported per phase on AvailabilityResult.Phases.
	FaultRolling FaultKind = "rolling"
)

// ParseFaultKind converts a CLI spelling into a FaultKind.
func ParseFaultKind(s string) (FaultKind, error) {
	switch FaultKind(s) {
	case FaultNIC, FaultCrash, FaultGraceful, FaultFlap, FaultGrayLink, FaultSlowNode, FaultRolling:
		return FaultKind(s), nil
	default:
		return "", fmt.Errorf("experiment: unknown fault %q (want nic, crash, graceful, flap, graylink, slownode or rolling)", s)
	}
}

// Gray reports whether the fault is an ongoing gray shape rather than an
// instantaneous injection.
func (f FaultKind) Gray() bool {
	switch f {
	case FaultFlap, FaultGrayLink, FaultSlowNode:
		return true
	}
	return false
}

// defaultShapeSpec is the fault program a gray FaultKind applies when
// AvailabilityConfig.Shape does not override it.
func defaultShapeSpec(f FaultKind) string {
	switch f {
	case FaultFlap:
		return "flap(period=800ms,duty=0.5,jitter=20ms)"
	case FaultGrayLink:
		return "graylink(rxloss=0.3,txloss=0.3,rxdelay=1ms,txdelay=1ms)"
	case FaultSlowNode:
		return "slownode(stall=60ms)"
	}
	return ""
}

// Topology selects the application scenario the workload runs against.
type Topology string

// The two application scenarios of the paper.
const (
	// TopologyWeb is the Figure 3 web cluster: the workload targets a
	// virtual address that fails over between servers.
	TopologyWeb Topology = "web"
	// TopologyRouter is the Figure 4 virtual router: the workload targets a
	// stationary web server reached through a fail-over router pair.
	TopologyRouter Topology = "router"
)

// ParseTopology converts a CLI spelling into a Topology.
func ParseTopology(s string) (Topology, error) {
	switch Topology(s) {
	case TopologyWeb, TopologyRouter:
		return Topology(s), nil
	default:
		return "", fmt.Errorf("experiment: unknown topology %q (want web or router)", s)
	}
}

// AvailabilityConfig parameterizes one availability trial.
type AvailabilityConfig struct {
	// Topology selects the scenario (default web).
	Topology Topology
	// Servers is the web-cluster size (default 4; the router topology is
	// fixed at two fail-over routers).
	Servers int
	// Clients, Mode, RPS and ThinkTime forward to the workload engine.
	Clients   int
	Mode      load.Mode
	RPS       float64
	ThinkTime time.Duration
	// Fault selects the injection (default nic). The router topology
	// supports nic and crash.
	Fault FaultKind
	// Shape overrides the fault program a gray FaultKind applies
	// (internal/faults spec syntax; "" means the kind's default).
	Shape string
	// GrayWindow is how long a gray fault stays applied before it is
	// cleared and the cluster re-converges (default: half of PostFault).
	// Ignored for instantaneous faults.
	GrayWindow time.Duration
	// Placement names the VIP placement policy every server runs
	// (placement.Names(); "" means least-loaded, the paper's rule). The
	// rolling fault compares policies with it; it applies to every web
	// trial.
	Placement string
	// RollingGap is the settle period after each drain and each rejoin of
	// the rolling schedule (default 2s). Rolling trials shorten the engines'
	// balance timeout to one second so a rejoined node is re-admitted
	// within the gap.
	RollingGap time.Duration
	// GCS configures the group-communication timeouts (zero: tuned).
	GCS gcs.Config
	// Warmup is the traffic-settling period after cluster formation and
	// before measurement starts (default 2s).
	Warmup time.Duration
	// PreFault is the measured fault-free window (default 4s); the post-
	// recovery goodput window has the same width.
	PreFault time.Duration
	// PostFault is how long the trial runs after the fault (default: the
	// fail-over bound plus a PreFault-wide recovery window).
	PostFault time.Duration
	// Trace captures a structured event stream per trial.
	Trace bool
	// Invariants arms an always-on invariant.Monitor on every trial's
	// nodes: the five model-checker oracles watch the trial's view,
	// delivery and ownership streams, and the settled-state properties are
	// probed after the measured window closes. Monitoring is
	// observation-only — a violation is recorded on the trial's
	// AvailabilityResult (and its artifact written) without perturbing the
	// measured sample.
	Invariants bool
	// InvariantArtifacts is the directory a violating trial's replay
	// artifact (and trace tail, when tracing) is written into ("" disables
	// artifact dumps).
	InvariantArtifacts string
	// Metrics receives the flow and load instrument families from every
	// trial (shared across trials; the registry serializes access). Nil
	// disables. With Invariants set it also receives the invariant_*
	// families.
	Metrics *metrics.Registry
	// Telemetry arms the live health plane on every server: per-peer phi
	// monitors plus the streaming frame publisher, collected in-simulation
	// and returned on AvailabilityResult.Frames. Web topology only (the
	// router scenario has no wackamole.Cluster to host the collector). The
	// publish interval is half the heartbeat interval, so every frame
	// window sees fresh arrivals.
	Telemetry bool
}

func (c AvailabilityConfig) withDefaults() AvailabilityConfig {
	if c.Topology == "" {
		c.Topology = TopologyWeb
	}
	if c.Servers <= 0 {
		c.Servers = 4
	}
	if c.Clients <= 0 {
		c.Clients = 200
	}
	if c.Mode == 0 {
		c.Mode = load.Closed
	}
	if c.Fault == "" {
		c.Fault = FaultNIC
	}
	if c.GCS == (gcs.Config{}) {
		c.GCS = gcs.TunedConfig()
	}
	if c.Warmup <= 0 {
		c.Warmup = 2 * time.Second
	}
	if c.PreFault <= 0 {
		c.PreFault = 4 * time.Second
	}
	if c.PostFault <= 0 {
		c.PostFault = 4*(c.GCS.FaultDetectTimeout+c.GCS.DiscoveryTimeout) + c.PreFault + time.Second
	}
	if c.GrayWindow <= 0 {
		c.GrayWindow = c.PostFault / 2
	}
	if c.RollingGap <= 0 {
		c.RollingGap = 2 * time.Second
	}
	return c
}

// Label names the configuration the way sweep points and NDJSON rows do.
func (c AvailabilityConfig) Label() string {
	c = c.withDefaults()
	l := fmt.Sprintf("%s/%s/%s/c=%d", c.Topology, c.Mode, c.Fault, c.Clients)
	if c.GCS.Detector != gcs.DetectorFixed {
		l += "/det=" + c.GCS.Detector.String()
	}
	if c.Placement != "" {
		l += "/p=" + c.Placement
	}
	return l
}

// LatencyWindow summarizes client-observed request latency over one phase
// of the trial. Quantiles cover responses (ok and stale); Completions
// counts every request that terminated in the window.
type LatencyWindow struct {
	Completions uint64
	OK          uint64
	P50         time.Duration
	P99         time.Duration
	Max         time.Duration
}

// AvailabilityResult is the rich per-trial outcome backing one sample.
type AvailabilityResult struct {
	Seed int64
	// Interruption is the longest gap between consecutive ok completions —
	// the request-level service interruption (the trial's sample value).
	Interruption time.Duration
	// Stats is the engine's full counter snapshot for the measured window.
	Stats load.Stats
	// FaultAt and RecoveredAt bracket the fail-over as the clients saw it
	// (RecoveredAt is the first ok completion after the interruption).
	FaultAt     time.Time
	RecoveredAt time.Time
	// Before, During and After summarize latency in the three phases
	// [epoch, fault), [fault, recovery) and [recovery, end).
	Before, During, After LatencyWindow
	// GoodputPre and GoodputPost are ok completions per second in the
	// fault-free window and in an equally wide window at the end of the
	// trial. Recovery compares the two windows' goodput normalized by
	// offered load (ok per completed request), so Poisson arrival-sampling
	// noise between the windows does not masquerade as loss — any real
	// degradation (timeouts, resets, stale responses) still depresses it.
	GoodputPre  float64
	GoodputPost float64
	Recovery    float64
	// ByServer counts responses by responding server, showing the takeover
	// shifting traffic.
	ByServer map[string]uint64
	// Buckets is the per-class completion timeline (copied; BucketWidth is
	// the engine default).
	Buckets []load.Bucket
	// Violation is the first invariant violation the trial's monitor
	// observed (nil when monitoring was off or every oracle held).
	Violation *invariant.Violation
	// Frames is the health telemetry stream captured in-simulation (empty
	// unless AvailabilityConfig.Telemetry was set).
	Frames []health.Frame
	// DetectionLatency is how long after the fault any surviving daemon
	// first declared the victim failed (0 when no detection was observed —
	// e.g. a graceful leave, or a gray shape mild enough to ride out).
	DetectionLatency time.Duration
	// DetectionVia attributes that first detection: "phi" or "fixed".
	DetectionVia string
	// FalseSuspicions counts detections of peers other than the victim
	// (plus any pre-fault detection): declarations of servers that were
	// healthy by construction.
	FalseSuspicions int
	// Phases is the per-server disruption breakdown of a rolling schedule
	// (empty for every other fault).
	Phases []RollingPhase
	// Moves counts VIP relocations across the whole cluster from the fault
	// (or the start of the rolling schedule) to the end of the trial — the
	// churn side of the churn-vs-goodput trade the placement policy
	// controls. Zero for the router topology, which has no placement engine.
	Moves uint64
}

// RollingPhase is one server's restart window within a rolling-upgrade
// schedule: drain, RollingGap, rejoin, RollingGap.
type RollingPhase struct {
	// Server is the restarted server's index.
	Server int
	// Start and End bracket the phase ([Start, End); the last phase ends at
	// the trial's last completion).
	Start, End time.Time
	// MaxOKGap is the longest interval without an ok completion inside the
	// phase, edges included — a phase with no service at all reports its
	// full width.
	MaxOKGap time.Duration
	// Completions and OK count the requests that terminated in the phase.
	Completions, OK uint64
}

// AvailabilityTrial runs one seeded trial and returns the runner sample
// (value = request-level interruption) plus the rich per-trial result.
func AvailabilityTrial(seed int64, cfg AvailabilityConfig) (runner.Sample, *AvailabilityResult, error) {
	cfg = cfg.withDefaults()
	switch cfg.Topology {
	case TopologyWeb:
		return availabilityWebTrial(seed, cfg)
	case TopologyRouter:
		if cfg.Telemetry {
			return runner.Sample{}, nil, fmt.Errorf("experiment: telemetry capture requires the web topology")
		}
		if cfg.Fault == FaultRolling {
			return runner.Sample{}, nil, fmt.Errorf("experiment: the rolling fault requires the web topology")
		}
		if cfg.Placement != "" {
			return runner.Sample{}, nil, fmt.Errorf("experiment: placement selection requires the web topology")
		}
		return availabilityRouterTrial(seed, cfg)
	default:
		return runner.Sample{}, nil, fmt.Errorf("experiment: unknown topology %q", cfg.Topology)
	}
}

func availabilityWebTrial(seed int64, cfg AvailabilityConfig) (runner.Sample, *AvailabilityResult, error) {
	var tr *obs.Tracer
	var traceReg *metrics.Registry
	var mods []func(*wackamole.ClusterOptions)
	if cfg.Trace {
		tr = obs.New(0, nil)
		traceReg = metrics.New()
		mods = append(mods, func(o *wackamole.ClusterOptions) {
			o.Tracer = tr
			o.Metrics = traceReg
		})
	}
	mon := availabilityMonitor(seed, cfg, tr)
	if mon != nil {
		mods = append(mods, func(o *wackamole.ClusterOptions) { o.Invariants = mon })
	}
	mods = append(mods, func(o *wackamole.ClusterOptions) {
		o.Placement = cfg.Placement
		if cfg.Fault == FaultRolling {
			// A rejoined node is only handed load at the next balance; a
			// one-second timeout keeps re-admission inside RollingGap.
			o.BalanceTimeout = time.Second
		}
	})
	if cfg.Fault == FaultRolling && cfg.Servers < 2 {
		return runner.Sample{}, nil, fmt.Errorf("experiment: the rolling fault needs at least 2 servers")
	}
	if cfg.Telemetry {
		mods = append(mods, func(o *wackamole.ClusterOptions) {
			o.TelemetryInterval = cfg.GCS.HeartbeatInterval / 2
		})
	}
	// Detection accounting: every daemon reports who it declares failed and
	// through which mechanism. Before the fault there is no victim, so any
	// detection is a false suspicion; afterwards, only detections of the
	// victim are genuine. The simulation is single-threaded, so the plain
	// captured variables are race-free within the trial.
	var simNow func() time.Time
	victimID := ""
	var faultTime, firstDetect time.Time
	detectVia := ""
	falseSuspects := 0
	mods = append(mods, func(o *wackamole.ClusterOptions) {
		o.OnNode = func(i int, n *wackamole.Node) {
			n.Daemon().SetDetectionHook(func(peer, detector string) {
				if victimID == "" || peer != victimID {
					falseSuspects++
					return
				}
				if firstDetect.IsZero() && simNow != nil {
					firstDetect = simNow()
					detectVia = detector
				}
			})
		}
	})
	wc, err := NewWebCluster(seed, cfg.Servers, cfg.GCS, mods...)
	if err != nil {
		return runner.Sample{}, nil, err
	}
	simNow = wc.Sim.Now
	if mon != nil {
		epoch := wc.Sim.Now()
		mon.SetNow(func() time.Duration { return wc.Sim.Now().Sub(epoch) })
	}
	for _, srv := range wc.Servers {
		if _, err := flow.NewServer(srv.Host, FlowPort, flow.ServerConfig{
			Metrics: cfg.Metrics, Tracer: tr,
		}); err != nil {
			return runner.Sample{}, nil, err
		}
	}
	engine, err := load.New(wc.ClientHost, load.Config{
		Clients:   cfg.Clients,
		Mode:      cfg.Mode,
		RPS:       cfg.RPS,
		ThinkTime: cfg.ThinkTime,
		Target:    netip.AddrPortFrom(wc.Target, FlowPort),
		LocalPort: LoadClientPort,
		Metrics:   cfg.Metrics,
		Tracer:    tr,
	})
	if err != nil {
		return runner.Sample{}, nil, err
	}

	// Settle the cluster, warm the traffic path, then start the measured
	// window at a seed-derived offset within the heartbeat interval so the
	// fault phase is uniformly distributed (as in WebCluster.WarmUp).
	wc.Settle()
	engine.Start()
	wc.RunFor(cfg.Warmup)
	wc.RunFor(time.Duration(wc.Sim.Rand().Int63n(int64(cfg.GCS.HeartbeatInterval))))
	engine.ResetStats()
	wc.RunFor(cfg.PreFault)

	faultAt := wc.Sim.Now()
	faultTime = faultAt
	movesBase := clusterVIPMoves(wc)
	var phases []RollingPhase
	if cfg.Fault == FaultRolling {
		// The churn oracle arms here — after formation and warmup, whose
		// incremental views legitimately exceed a single-change bound —
		// with the configured policy's own guarantee for one membership
		// change. Under least-loaded that bound is the per-view ceiling;
		// under minimal it has teeth: ⌈V/(N−1)⌉.
		if mon != nil {
			placer, perr := placement.New(cfg.Placement)
			if perr != nil {
				return runner.Sample{}, nil, perr
			}
			mon.ArmChurn(placer.MoveBound(len(wc.Groups), cfg.Servers-1))
		}
		if phases, err = runRollingSchedule(wc, cfg); err != nil {
			return runner.Sample{}, nil, err
		}
	} else {
		victim, holders := wc.Owner(wc.Target)
		if holders != 1 {
			return runner.Sample{}, nil, fmt.Errorf("experiment: %d holders of the target before fault", holders)
		}
		victimID = string(wc.Servers[victim].Node.Daemon().ID())
		switch cfg.Fault {
		case FaultNIC:
			wc.FailServer(victim)
		case FaultCrash:
			wc.CrashServer(victim)
		case FaultGraceful:
			if err := wc.Servers[victim].Node.LeaveService(); err != nil {
				return runner.Sample{}, nil, err
			}
		case FaultFlap, FaultGrayLink, FaultSlowNode:
			spec := cfg.Shape
			if spec == "" {
				spec = defaultShapeSpec(cfg.Fault)
			}
			b, err := faults.ApplyProgram(wc.Sim, wc.Servers[victim].NIC, spec)
			if err != nil {
				return runner.Sample{}, nil, err
			}
			// The shape stays live for GrayWindow, then clears so the
			// trial's tail measures re-convergence on a clean link.
			wc.Sim.After(cfg.GrayWindow, func() { b.Stop() })
		}
	}
	wc.RunFor(cfg.PostFault)

	res := summarizeTrial(seed, engine, faultAt)
	res.Moves = clusterVIPMoves(wc) - movesBase
	if len(phases) > 0 {
		finalizePhases(phases, engine)
		res.Phases = phases
	}
	if !firstDetect.IsZero() {
		res.DetectionLatency = firstDetect.Sub(faultTime)
		res.DetectionVia = detectVia
	}
	res.FalseSuspicions = falseSuspects
	engine.Stop()
	res.Frames = wc.TelemetryFrames
	sample := runner.Sample{Value: res.Interruption, Metrics: clusterMetrics(wc.Cluster)}
	attachTrace(&sample, tr, traceReg, res, wc.Target.String())
	if mon != nil {
		// The measured window is closed; the extra settled-state probing
		// (and its possible one-second retry) is monitoring-only.
		mon.CheckOrder()
		mon.CheckSettled(wc.Cluster.InvariantView(), wc.RunFor)
		res.Violation = mon.Violation()
	}
	return sample, res, nil
}

// clusterVIPMoves sums every server engine's placement-move counter; the
// difference across a window is the cluster's total VIP churn in it.
func clusterVIPMoves(wc *WebCluster) uint64 {
	var n uint64
	for i := range wc.Servers {
		n += wc.Servers[i].Node.Engine().Stats().Moves
	}
	return n
}

// runRollingSchedule restarts every server in sequence: drain via a
// graceful leave, wait RollingGap for the survivors to repair, rejoin via
// JoinService (which restarts the §3.4 maturity bootstrap), wait RollingGap
// for the balance to re-admit the node. Returns one phase record per server
// with its start stamped; finalizePhases closes them after the trial.
func runRollingSchedule(wc *WebCluster, cfg AvailabilityConfig) ([]RollingPhase, error) {
	phases := make([]RollingPhase, 0, len(wc.Servers))
	for i := range wc.Servers {
		phases = append(phases, RollingPhase{Server: i, Start: wc.Sim.Now()})
		if err := wc.Servers[i].Node.LeaveService(); err != nil {
			return nil, fmt.Errorf("experiment: drain server %d: %w", i, err)
		}
		wc.RunFor(cfg.RollingGap)
		if err := wc.Servers[i].Node.JoinService(); err != nil {
			return nil, fmt.Errorf("experiment: rejoin server %d: %w", i, err)
		}
		wc.RunFor(cfg.RollingGap)
	}
	return phases, nil
}

// finalizePhases closes each phase at the next one's start (the last at the
// final completion) and fills the per-phase disruption summary. Must run
// before engine.Stop (live completion slice).
func finalizePhases(phases []RollingPhase, engine *load.Engine) {
	end := engine.Epoch()
	if cs := engine.Completions(); len(cs) > 0 {
		end = cs[len(cs)-1].At.Add(time.Nanosecond)
	}
	for i := range phases {
		if i+1 < len(phases) {
			phases[i].End = phases[i+1].Start
		} else {
			phases[i].End = end
		}
		phases[i].MaxOKGap, phases[i].Completions, phases[i].OK =
			phaseWindow(engine.Completions(), phases[i].Start, phases[i].End)
	}
}

// phaseWindow computes the longest interval without an ok completion inside
// [from, to) — edge gaps included, so a phase with no ok completions at all
// reports its full width — plus the phase's completion counts.
func phaseWindow(completions []load.Completion, from, to time.Time) (gap time.Duration, total, ok uint64) {
	prev := from
	for _, c := range completions {
		if c.At.Before(from) || !c.At.Before(to) {
			continue
		}
		total++
		if c.Class == load.ClassOK {
			ok++
			if d := c.At.Sub(prev); d > gap {
				gap = d
			}
			prev = c.At
		}
	}
	if d := to.Sub(prev); d > gap {
		gap = d
	}
	return gap, total, ok
}

// availabilityMonitor builds the per-trial online monitor (nil when
// monitoring is off), annotated with enough metadata to re-run the trial
// that trips it.
func availabilityMonitor(seed int64, cfg AvailabilityConfig, tr *obs.Tracer) *invariant.Monitor {
	if !cfg.Invariants {
		return nil
	}
	nodes := cfg.Servers
	if cfg.Topology == TopologyRouter {
		nodes = 2
	}
	meta := map[string]string{
		"experiment": "availability",
		"point":      cfg.Label(),
		"seed":       fmt.Sprintf("%d", seed),
		"servers":    fmt.Sprintf("%d", nodes),
		"fault":      string(cfg.Fault),
	}
	if cfg.Placement != "" {
		meta["placement"] = cfg.Placement
	}
	return invariant.New(invariant.Config{
		Nodes:       nodes,
		Metrics:     cfg.Metrics,
		Tracer:      tr,
		ArtifactDir: cfg.InvariantArtifacts,
		Name:        fmt.Sprintf("wackload-seed%d", seed),
		Meta:        meta,
	})
}

func availabilityRouterTrial(seed int64, cfg AvailabilityConfig) (runner.Sample, *AvailabilityResult, error) {
	if cfg.Fault != FaultNIC && cfg.Fault != FaultCrash {
		return runner.Sample{}, nil, fmt.Errorf("experiment: the router topology supports only nic and crash faults, not %q", cfg.Fault)
	}
	ripCfg := rip.Config{AdvertisePeriod: rip.DefaultAdvertisePeriod}
	var tr *obs.Tracer
	if cfg.Trace {
		tr = obs.New(0, nil)
	}
	mon := availabilityMonitor(seed, cfg, tr)
	sc, err := newVirtualRouterScenario(seed, RouterModeAdvertiseAll, cfg.GCS, ripCfg,
		func(i int, n *wackamole.Node) { mon.Attach(i, n) })
	if err != nil {
		return runner.Sample{}, nil, err
	}
	if mon != nil {
		epoch := sc.sim.Now()
		mon.SetNow(func() time.Duration { return sc.sim.Now().Sub(epoch) })
	}
	if cfg.Trace {
		tr.SetNow(sc.sim.Now)
		sc.net.SetEventTracer(tr)
	}
	if _, err := flow.NewServer(sc.server, FlowPort, flow.ServerConfig{
		Metrics: cfg.Metrics, Tracer: tr,
	}); err != nil {
		return runner.Sample{}, nil, err
	}
	engine, err := load.New(sc.clientHost, load.Config{
		Clients:   cfg.Clients,
		Mode:      cfg.Mode,
		RPS:       cfg.RPS,
		ThinkTime: cfg.ThinkTime,
		Target:    netip.AddrPortFrom(netip.MustParseAddr("10.1.0.10"), FlowPort),
		LocalPort: LoadClientPort,
		Metrics:   cfg.Metrics,
		Tracer:    tr,
	})
	if err != nil {
		return runner.Sample{}, nil, err
	}

	// Let memberships form, the active router join the routing protocol and
	// the upstream's first periodic advertisement teach it the client
	// network (the reply path needs it), then warm the traffic path.
	sc.sim.RunFor(2*cfg.GCS.DiscoveryTimeout + 2*time.Second)
	sc.sim.RunFor(ripCfg.AdvertisePeriod + 5*time.Second)
	engine.Start()
	sc.sim.RunFor(cfg.Warmup)
	sc.sim.RunFor(time.Duration(sc.sim.Rand().Int63n(int64(cfg.GCS.HeartbeatInterval))))
	engine.ResetStats()
	sc.sim.RunFor(cfg.PreFault)

	active, err := sc.activeRouter()
	if err != nil {
		return runner.Sample{}, nil, err
	}
	faultAt := sc.sim.Now()
	switch cfg.Fault {
	case FaultNIC:
		for _, nic := range sc.frHosts[active].NICs() {
			nic.SetUp(false)
		}
	case FaultCrash:
		sc.frHosts[active].Crash()
	}
	sc.sim.RunFor(cfg.PostFault)

	res := summarizeTrial(seed, engine, faultAt)
	engine.Stop()
	sample := runner.Sample{Value: res.Interruption, Metrics: sc.metrics()}
	attachTrace(&sample, tr, nil, res, extVIP.String())
	if mon != nil {
		// The router topology has no wackamole.Cluster to probe at rest;
		// the online oracles (view order, delivery order, foreign claim)
		// still watched the whole trial.
		mon.CheckOrder()
		res.Violation = mon.Violation()
	}
	return sample, res, nil
}

// attachTrace fills the sample's trace and latency fields from a traced
// trial; a nil tracer leaves the sample untouched.
func attachTrace(sample *runner.Sample, tr *obs.Tracer, reg *metrics.Registry, res *AvailabilityResult, target string) {
	if tr == nil {
		return
	}
	events := tr.Snapshot()
	sample.Trace = &obs.TrialTrace{
		Events:   events,
		Phases:   obs.FailoverBreakdown(events, res.Stats.GapStart, res.Stats.GapEnd, target),
		GapStart: res.Stats.GapStart,
		GapEnd:   res.Stats.GapEnd,
		Target:   target,
	}
	if reg != nil {
		sample.Latency = reg.Snapshot()
	}
}

// summarizeTrial reduces the engine's measured window into the rich
// per-trial result. Must run before engine.Stop (live slices).
func summarizeTrial(seed int64, engine *load.Engine, faultAt time.Time) *AvailabilityResult {
	st := engine.Stats()
	end := engine.Epoch()
	if n := len(engine.Completions()); n > 0 {
		end = engine.Completions()[n-1].At
	}
	// Recovery instant: the first ok completion after the interruption. If
	// the gap never spanned the fault (e.g. graceful leave too short to
	// notice), the during-window is empty.
	recoveredAt := faultAt
	if st.GapEnd.After(faultAt) {
		recoveredAt = st.GapEnd
	}
	res := &AvailabilityResult{
		Seed:         seed,
		Interruption: st.MaxOKGap,
		Stats:        st,
		FaultAt:      faultAt,
		RecoveredAt:  recoveredAt,
		ByServer:     map[string]uint64{},
		Buckets:      append([]load.Bucket(nil), engine.Buckets()...),
	}
	for k, v := range engine.ByServer() {
		res.ByServer[k] = v
	}
	res.Before = windowOf(engine.Completions(), engine.Epoch(), faultAt)
	res.During = windowOf(engine.Completions(), faultAt, recoveredAt)
	res.After = windowOf(engine.Completions(), recoveredAt, end.Add(time.Nanosecond))

	// Goodput: ok completions per second in the fault-free window, and in
	// an equally wide window ending at the last completion.
	preW := faultAt.Sub(engine.Epoch())
	if preW > 0 {
		res.GoodputPre = float64(res.Before.OK) / preW.Seconds()
	}
	postStart := end.Add(-preW)
	if postStart.Before(recoveredAt) {
		postStart = recoveredAt
	}
	var post LatencyWindow
	if postW := end.Sub(postStart); postW > 0 {
		post = windowOf(engine.Completions(), postStart, end.Add(time.Nanosecond))
		res.GoodputPost = float64(post.OK) / postW.Seconds()
	}
	if res.Before.Completions > 0 && post.Completions > 0 {
		preFrac := float64(res.Before.OK) / float64(res.Before.Completions)
		postFrac := float64(post.OK) / float64(post.Completions)
		if preFrac > 0 {
			res.Recovery = postFrac / preFrac
		}
	}
	return res
}

// windowOf summarizes the completions with from <= At < to.
func windowOf(completions []load.Completion, from, to time.Time) LatencyWindow {
	var w LatencyWindow
	var rtts []time.Duration
	for _, c := range completions {
		if c.At.Before(from) || !c.At.Before(to) {
			continue
		}
		w.Completions++
		if c.Class == load.ClassOK {
			w.OK++
		}
		if c.Class == load.ClassOK || c.Class == load.ClassStale {
			rtts = append(rtts, c.RTT)
			if c.RTT > w.Max {
				w.Max = c.RTT
			}
		}
	}
	if len(rtts) > 0 {
		sort.Slice(rtts, func(i, j int) bool { return rtts[i] < rtts[j] })
		w.P50 = metrics.Percentile(rtts, 50)
		w.P99 = metrics.Percentile(rtts, 99)
	}
	return w
}

// AvailabilityRow is the aggregate of one availability sweep point.
type AvailabilityRow struct {
	Point   string
	Stat    Stat
	Metrics runner.Metrics
	Errors  int
	// Samples holds the point's successful trials in seed order (with event
	// traces when the sweep ran traced).
	Samples []runner.Sample
	// Results holds the rich per-trial outcomes, aligned with Samples.
	Results []*AvailabilityResult
}

// Availability measures the request-level availability of one configuration
// over `trials` seeded runs on the shared parallel trial runner.
func Availability(baseSeed int64, trials int, cfg AvailabilityConfig, opts ...Option) (AvailabilityRow, error) {
	cfg = cfg.withDefaults()
	sweep := resolveOptions(opts)
	if sweep.trace {
		cfg.Trace = true
	}
	if sweep.invariants {
		cfg.Invariants = true
	}
	var (
		mu      sync.Mutex
		bySeeds = map[int64]*AvailabilityResult{}
	)
	point := runner.Point{
		Label: "availability/" + cfg.Label(),
		Seeds: Seeds(baseSeed, trials),
		Run: func(seed int64) (runner.Sample, error) {
			sample, res, err := AvailabilityTrial(seed, cfg)
			if err != nil {
				return runner.Sample{}, err
			}
			mu.Lock()
			bySeeds[seed] = res
			mu.Unlock()
			return sample, nil
		},
	}
	res := runner.Run([]runner.Point{point}, sweep.Options)[0]
	stat, m, errs, err := collectPoint(res)
	if err != nil {
		return AvailabilityRow{}, err
	}
	row := AvailabilityRow{Point: point.Label, Stat: stat, Metrics: m, Errors: errs, Samples: res.Samples}
	for _, s := range res.Samples {
		row.Results = append(row.Results, bySeeds[s.Seed])
	}
	return row, nil
}

// RenderAvailability formats the per-trial outcomes plus the aggregate.
func RenderAvailability(row AvailabilityRow) string {
	header := []string{"seed", "interruption", "ok", "reset", "timeout", "stale",
		"conns lost", "goodput pre", "goodput post", "recovery", "p99 before", "p99 after",
		"detect", "false susp"}
	var cells [][]string
	for _, r := range row.Results {
		detect := "—"
		if r.DetectionLatency > 0 {
			detect = fmt.Sprintf("%s (%s)", Seconds(r.DetectionLatency), r.DetectionVia)
		}
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Seed), Seconds(r.Interruption),
			fmt.Sprintf("%d", r.Stats.Requests[load.ClassOK]),
			fmt.Sprintf("%d", r.Stats.Requests[load.ClassReset]),
			fmt.Sprintf("%d", r.Stats.Requests[load.ClassTimeout]),
			fmt.Sprintf("%d", r.Stats.Requests[load.ClassStale]),
			fmt.Sprintf("%d", r.Stats.ConnsLost),
			fmt.Sprintf("%.1f/s", r.GoodputPre),
			fmt.Sprintf("%.1f/s", r.GoodputPost),
			fmt.Sprintf("%.3f", r.Recovery),
			Seconds(r.Before.P99), Seconds(r.After.P99),
			detect, fmt.Sprintf("%d", r.FalseSuspicions),
		})
	}
	out := fmt.Sprintf("point: %s (trials %d, errors %d, mean interruption %s)\n\n%s",
		row.Point, row.Stat.N, row.Errors, Seconds(row.Stat.Mean), Table(header, cells))
	// Rolling trials append the per-phase disruption breakdown.
	rolling := false
	for _, r := range row.Results {
		if len(r.Phases) > 0 {
			rolling = true
			break
		}
	}
	if rolling {
		out += "\nrolling phases (max ok-gap per restarted server):\n"
		for _, r := range row.Results {
			var total time.Duration
			line := fmt.Sprintf("  seed %d:", r.Seed)
			for _, ph := range r.Phases {
				line += fmt.Sprintf(" s%d=%s", ph.Server, Seconds(ph.MaxOKGap))
				total += ph.MaxOKGap
			}
			out += line + fmt.Sprintf("  (cumulative %s)\n", Seconds(total))
		}
	}
	return out
}

// AvailabilityJSON converts the row into NDJSON records: one aggregate row
// followed by one row per trial carrying its full per-class and latency
// detail in Extra.
func AvailabilityJSON(row AvailabilityRow) []JSONRow {
	agg := jsonRow("availability", row.Point, "interruption", row.Stat, row.Errors, row.Metrics)
	agg.Extra = map[string]float64{}
	for _, r := range row.Results {
		for c := load.Class(0); c < load.NumClasses; c++ {
			agg.Extra[c.String()] += float64(r.Stats.Requests[c])
		}
		agg.Extra["conns_lost"] += float64(r.Stats.ConnsLost)
		agg.Extra["vip_moves"] += float64(r.Moves)
		agg.Extra["recovery"] += r.Recovery / float64(len(row.Results))
		agg.Extra["detect_latency_s"] += r.DetectionLatency.Seconds() / float64(len(row.Results))
		agg.Extra["false_suspicions"] += float64(r.FalseSuspicions)
		// Rolling schedules: the aggregate reports the max ok-gap of every
		// phase (mean across trials) plus the cumulative disruption — the
		// sum of per-phase gaps, the number the placement policies compete
		// on.
		for i, ph := range r.Phases {
			agg.Extra[fmt.Sprintf("phase%d_max_gap_s", i)] += ph.MaxOKGap.Seconds() / float64(len(row.Results))
			agg.Extra["disruption_total_s"] += ph.MaxOKGap.Seconds() / float64(len(row.Results))
		}
	}
	agg.PerTrial = trialRows(row.Samples)
	out := []JSONRow{agg}
	for _, r := range row.Results {
		jr := jsonRow("availability", fmt.Sprintf("%s/seed=%d", row.Point, r.Seed), "interruption",
			Stat{N: 1, Mean: r.Interruption, Min: r.Interruption, Median: r.Interruption,
				P50: r.Interruption, P99: r.Interruption, Max: r.Interruption}, 0, runner.Metrics{})
		jr.Trials = 1
		jr.Extra = map[string]float64{
			"issued":           float64(r.Stats.Issued),
			"conns_lost":       float64(r.Stats.ConnsLost),
			"dials_ok":         float64(r.Stats.DialsOK),
			"dials_failed":     float64(r.Stats.DialsFailed),
			"goodput_pre_rps":  r.GoodputPre,
			"goodput_post_rps": r.GoodputPost,
			"vip_moves":        float64(r.Moves),
			"recovery":         r.Recovery,
			"detect_latency_s": r.DetectionLatency.Seconds(),
			"false_suspicions": float64(r.FalseSuspicions),
			"before_p50_s":     r.Before.P50.Seconds(),
			"before_p99_s":     r.Before.P99.Seconds(),
			"before_max_s":     r.Before.Max.Seconds(),
			"during_p50_s":     r.During.P50.Seconds(),
			"during_p99_s":     r.During.P99.Seconds(),
			"during_max_s":     r.During.Max.Seconds(),
			"after_p50_s":      r.After.P50.Seconds(),
			"after_p99_s":      r.After.P99.Seconds(),
			"after_max_s":      r.After.Max.Seconds(),
			"before_requests":  float64(r.Before.Completions),
			"before_ok":        float64(r.Before.OK),
			"during_requests":  float64(r.During.Completions),
			"during_ok":        float64(r.During.OK),
			"after_requests":   float64(r.After.Completions),
			"after_ok":         float64(r.After.OK),
		}
		for c := load.Class(0); c < load.NumClasses; c++ {
			jr.Extra[c.String()] = float64(r.Stats.Requests[c])
		}
		if len(r.Phases) > 0 {
			jr.Extra["rolling_phases"] = float64(len(r.Phases))
			var total float64
			for i, ph := range r.Phases {
				jr.Extra[fmt.Sprintf("phase%d_max_gap_s", i)] = ph.MaxOKGap.Seconds()
				jr.Extra[fmt.Sprintf("phase%d_ok", i)] = float64(ph.OK)
				total += ph.MaxOKGap.Seconds()
			}
			jr.Extra["disruption_total_s"] = total
		}
		out = append(out, jr)
	}
	return out
}

// WriteAvailabilityTrace writes the traced trials of an availability sweep
// as the same NDJSON stream wacksim -trace produces.
func WriteAvailabilityTrace(w io.Writer, row AvailabilityRow) error {
	return writeTrialTraces(w, "availability", row.Point, row.Samples)
}

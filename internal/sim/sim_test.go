package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestNewStartsAtEpoch(t *testing.T) {
	s := New(1)
	if !s.Now().Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", s.Now(), Epoch)
	}
	if s.Elapsed() != 0 {
		t.Fatalf("Elapsed() = %v, want 0", s.Elapsed())
	}
}

func TestAfterRunsInOrder(t *testing.T) {
	s := New(1)
	var got []int
	s.After(3*time.Second, func() { got = append(got, 3) })
	s.After(1*time.Second, func() { got = append(got, 1) })
	s.After(2*time.Second, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order = %v, want %v", got, want)
		}
	}
	if s.Elapsed() != 3*time.Second {
		t.Fatalf("Elapsed = %v, want 3s", s.Elapsed())
	}
}

func TestTieBreakIsFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.After(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("tie-break order = %v, want FIFO", got)
		}
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop() = false on pending timer")
	}
	if tm.Stop() {
		t.Fatal("second Stop() = true, want false")
	}
	s.Run()
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	var tm *Timer
	tm = s.After(time.Second, func() {})
	s.Run()
	if tm.Stop() {
		t.Fatal("Stop() = true after fire, want false")
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	var at []time.Duration
	s.After(time.Second, func() {
		at = append(at, s.Elapsed())
		s.After(time.Second, func() {
			at = append(at, s.Elapsed())
		})
	})
	s.Run()
	if len(at) != 2 || at[0] != time.Second || at[1] != 2*time.Second {
		t.Fatalf("nested fire times = %v", at)
	}
}

func TestRunUntilLeavesLaterEventsPending(t *testing.T) {
	s := New(1)
	early, late := false, false
	s.After(time.Second, func() { early = true })
	s.After(10*time.Second, func() { late = true })
	s.RunUntil(Epoch.Add(5 * time.Second))
	if !early || late {
		t.Fatalf("early=%v late=%v, want true,false", early, late)
	}
	if s.Elapsed() != 5*time.Second {
		t.Fatalf("Elapsed = %v, want 5s", s.Elapsed())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.RunFor(5 * time.Second)
	if !late {
		t.Fatal("late event did not fire after RunFor")
	}
}

func TestPastDeadlineClampsToNow(t *testing.T) {
	s := New(1)
	s.RunUntil(Epoch.Add(time.Minute))
	fired := time.Time{}
	s.At(Epoch, func() { fired = s.Now() })
	s.Run()
	if !fired.Equal(Epoch.Add(time.Minute)) {
		t.Fatalf("past event fired at %v, want clamped to now", fired)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed int64) []int64 {
		s := New(seed)
		var out []int64
		var step func()
		step = func() {
			out = append(out, s.Elapsed().Milliseconds())
			if len(out) < 50 {
				d := time.Duration(s.Rand().Intn(1000)) * time.Millisecond
				s.After(d, step)
			}
		}
		s.After(0, step)
		s.Run()
		return out
	}
	a, b := trace(42), trace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRandDiffersBySeed(t *testing.T) {
	a, b := New(1).Rand().Int63(), New(2).Rand().Int63()
	if a == b {
		t.Fatal("different seeds produced identical first draw")
	}
}

// TestQuickOrdering is a property-based check: any batch of randomly timed
// events executes in nondecreasing deadline order.
func TestQuickOrdering(t *testing.T) {
	prop := func(seed int64, delaysMs []uint16) bool {
		if len(delaysMs) == 0 {
			return true
		}
		s := New(seed)
		var fired []time.Duration
		for _, d := range delaysMs {
			s.After(time.Duration(d)*time.Millisecond, func() {
				fired = append(fired, s.Elapsed())
			})
		}
		s.Run()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(delaysMs)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestStopInsideEarlierEvent(t *testing.T) {
	s := New(1)
	fired := false
	var victim *Timer
	victim = s.After(2*time.Second, func() { fired = true })
	s.After(time.Second, func() { victim.Stop() })
	s.Run()
	if fired {
		t.Fatal("timer fired despite Stop from earlier event")
	}
}

func BenchmarkScheduleAndFire(b *testing.B) {
	s := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Microsecond, func() {})
		s.Step()
	}
}

// Package sim provides a deterministic discrete-event simulation engine.
//
// All protocol code in this repository is written against the abstract
// runtime in package env; under test and in the benchmark harness that
// runtime is backed by a Sim, which executes events in virtual time on a
// single goroutine. A seeded random source makes every run reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"

	"wackamole/internal/env"
)

// Epoch is the instant at which every simulation starts. The concrete value
// is arbitrary; it only needs to be stable so that logs and traces from
// different runs line up.
var Epoch = time.Date(2003, time.June, 22, 0, 0, 0, 0, time.UTC)

// Sim is a discrete-event simulator. It is not safe for concurrent use; all
// interaction must happen from the goroutine driving Run/Step, which is also
// the goroutine on which scheduled callbacks execute.
type Sim struct {
	now    time.Time
	queue  eventQueue
	seq    uint64
	rng    *rand.Rand
	fired  uint64
	inStep bool
	// free recycles detached events (those scheduled with Post, which hand
	// out no Timer and so cannot be referenced after firing). Pooling keeps
	// the per-frame scheduling cost of busy traffic simulations
	// allocation-free in steady state.
	free []*event
}

// New returns a simulator positioned at Epoch whose random source is seeded
// with seed.
func New(seed int64) *Sim {
	return &Sim{
		now: Epoch,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() time.Time { return s.now }

// Elapsed returns how much virtual time has passed since the simulation
// started.
func (s *Sim) Elapsed() time.Duration { return s.now.Sub(Epoch) }

// Rand returns the simulator's seeded random source.
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Fired reports how many events have executed so far.
func (s *Sim) Fired() uint64 { return s.fired }

// Pending reports how many events are scheduled but not yet executed,
// including cancelled timers that have not been collected.
func (s *Sim) Pending() int { return s.queue.Len() }

// Timer is a handle to a scheduled event.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the call prevented the event
// from firing.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.cancelled || t.ev.done {
		return false
	}
	t.ev.cancelled = true
	return true
}

// At schedules fn to run at instant t. Instants in the past run as soon as
// control returns to the event loop, at the current virtual time.
func (s *Sim) At(t time.Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: At called with nil callback")
	}
	if t.Before(s.now) {
		t = s.now
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d from the current virtual time. Negative
// durations are treated as zero.
func (s *Sim) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now.Add(d), fn)
}

// Runnable is a pre-allocated scheduled callback for the Post fast path.
// Implementations are typically pooled structs carrying their own context,
// which is what lets high-rate traffic paths schedule without allocating a
// closure per event.
type Runnable interface{ Run() }

// Post schedules r to run d from the current virtual time. Unlike After it
// returns no Timer — the event cannot be cancelled — which allows the
// simulator to recycle the event record after it fires. Ordering relative
// to After-scheduled events follows the same (deadline, insertion sequence)
// rule.
func (s *Sim) Post(d time.Duration, r Runnable) {
	if r == nil {
		panic("sim: Post called with nil Runnable")
	}
	at := s.now.Add(d)
	if at.Before(s.now) {
		at = s.now
	}
	var ev *event
	if n := len(s.free); n > 0 {
		ev = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		ev = &event{}
	}
	ev.at = at
	ev.seq = s.seq
	ev.run = r
	ev.cancelled = false
	ev.done = false
	s.seq++
	heap.Push(&s.queue, ev)
}

// AfterFunc adapts After to the env.Clock interface, so a bare simulator can
// serve as the clock for protocol code that is not tied to a simulated host.
func (s *Sim) AfterFunc(d time.Duration, fn func()) env.Timer {
	return s.After(d, fn)
}

var _ env.Clock = (*Sim)(nil)

// Step executes the next pending event, advancing virtual time to its
// deadline. It reports whether an event was executed.
func (s *Sim) Step() bool {
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.cancelled {
			continue
		}
		if ev.at.Before(s.now) {
			panic(fmt.Sprintf("sim: event scheduled at %v before now %v", ev.at, s.now))
		}
		s.now = ev.at
		ev.done = true
		s.fired++
		if ev.run != nil {
			// Detached event: recycle the record before running so nested
			// Posts can reuse it immediately.
			r := ev.run
			ev.run = nil
			ev.fn = nil
			s.free = append(s.free, ev)
			r.Run()
			return true
		}
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with deadlines at or before t, then advances the
// clock to exactly t. Events scheduled beyond t remain pending.
func (s *Sim) RunUntil(t time.Time) {
	for {
		ev := s.queue.peekLive()
		if ev == nil || ev.at.After(t) {
			break
		}
		s.Step()
	}
	if t.After(s.now) {
		s.now = t
	}
}

// RunFor executes events for d of virtual time from the current instant.
func (s *Sim) RunFor(d time.Duration) {
	s.RunUntil(s.now.Add(d))
}

type event struct {
	at        time.Time
	seq       uint64
	fn        func()
	run       Runnable // set instead of fn for detached (Post) events
	cancelled bool
	done      bool
}

// eventQueue is a min-heap ordered by (deadline, insertion sequence) so that
// ties break deterministically in FIFO order.
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*event)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

func (q *eventQueue) peekLive() *event {
	for q.Len() > 0 {
		ev := (*q)[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(q)
	}
	return nil
}

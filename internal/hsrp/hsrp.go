// Package hsrp implements a simplified Hot Standby Router Protocol, the
// Cisco baseline the paper discusses (§7): one active router and one
// standby exchange hello messages; the standby takes over when the active
// timer expires without hellos from the active router. Defaults follow the
// paper's description: hellos every 3 seconds, timeouts of 10 seconds.
package hsrp

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"wackamole/internal/env"
	"wackamole/internal/netsim"
	"wackamole/internal/wire"
)

// Port carries hello messages in the simulation (real HSRP uses UDP 1985).
const Port = 1985

// Defaults from the paper: "By default, hello messages are sent every 3
// seconds and the Active and Standby timeouts are set to 10 seconds."
const (
	DefaultHello = 3 * time.Second
	DefaultHold  = 10 * time.Second
)

// Role is the router's current role.
type Role uint8

// Roles.
const (
	RoleListen Role = iota + 1
	RoleStandby
	RoleActive
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleListen:
		return "listen"
	case RoleStandby:
		return "standby"
	case RoleActive:
		return "active"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Config parameterizes one HSRP router.
type Config struct {
	// Group identifies the standby group.
	Group uint8
	// Priority is the election weight (higher wins; ties broken by higher
	// interface address).
	Priority uint8
	// VIP is the standby group's virtual address.
	VIP netip.Addr
	// Hello and Hold override the defaults when positive.
	Hello time.Duration
	Hold  time.Duration
}

func (c Config) hello() time.Duration {
	if c.Hello <= 0 {
		return DefaultHello
	}
	return c.Hello
}

func (c Config) hold() time.Duration {
	if c.Hold <= 0 {
		return DefaultHold
	}
	return c.Hold
}

// Router is one HSRP instance.
type Router struct {
	host *netsim.Host
	nic  *netsim.NIC
	cfg  Config

	role    Role
	sock    *netsim.Socket
	peers   map[netip.Addr]peerInfo
	helloT  env.Timer
	activeT env.Timer
	running bool
}

type peerInfo struct {
	priority uint8
	role     Role
}

// New binds an HSRP router on (host, nic).
func New(host *netsim.Host, nic *netsim.NIC, cfg Config) (*Router, error) {
	if !cfg.VIP.IsValid() {
		return nil, fmt.Errorf("hsrp: missing virtual address")
	}
	r := &Router{host: host, nic: nic, cfg: cfg, role: RoleListen, peers: map[netip.Addr]peerInfo{}}
	sock, err := host.BindUDP(netip.Addr{}, Port, func(src, _ netip.AddrPort, payload []byte) {
		r.onHello(src.Addr(), payload)
	})
	if err != nil {
		return nil, fmt.Errorf("hsrp: %w", err)
	}
	r.sock = sock
	return r, nil
}

// Start begins listening and helloing; the initial election resolves after
// the hold timeout.
func (r *Router) Start() {
	if r.running {
		return
	}
	r.running = true
	r.startHellos()
	r.armActiveTimer()
}

// Stop silences the router.
func (r *Router) Stop() {
	r.running = false
	stop(r.helloT)
	stop(r.activeT)
	r.sock.Close()
}

// Role returns the router's current role.
func (r *Router) Role() Role { return r.role }

func stop(t env.Timer) {
	if t != nil {
		t.Stop()
	}
}

func (r *Router) startHellos() {
	var tick func()
	tick = func() {
		if !r.running {
			return
		}
		r.sendHello()
		r.helloT = r.host.AfterFunc(r.cfg.hello(), tick)
	}
	tick()
}

func (r *Router) armActiveTimer() {
	stop(r.activeT)
	r.activeT = r.host.AfterFunc(r.cfg.hold(), func() {
		if r.running && r.role != RoleActive {
			r.onActiveDown()
		}
	})
}

// onActiveDown fires when no active-router hellos arrived for the hold
// time: the standby becomes active; with no standby either, the best
// candidate by (priority, address) takes over.
func (r *Router) onActiveDown() {
	if r.role == RoleStandby || r.bestCandidate() {
		r.becomeActive()
		return
	}
	r.role = RoleStandby
	r.armActiveTimer()
}

// bestCandidate reports whether this router wins the election among the
// peers heard recently.
func (r *Router) bestCandidate() bool {
	type cand struct {
		prio uint8
		addr netip.Addr
	}
	cands := []cand{{r.cfg.Priority, r.nic.Primary()}}
	for a, p := range r.peers {
		cands = append(cands, cand{p.priority, a})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].prio != cands[j].prio {
			return cands[i].prio > cands[j].prio
		}
		return cands[j].addr.Less(cands[i].addr)
	})
	return cands[0].addr == r.nic.Primary()
}

func (r *Router) becomeActive() {
	r.role = RoleActive
	stop(r.activeT)
	if !r.nic.HasAddr(r.cfg.VIP) {
		if err := r.nic.AddAddr(r.cfg.VIP); err != nil {
			_ = err // only duplicates fail, excluded by HasAddr
		}
	}
	if err := r.host.SendGratuitousARP(r.nic, r.cfg.VIP); err != nil {
		_ = err // interface down during fault injection
	}
	r.sendHello()
}

func (r *Router) sendHello() {
	w := wire.NewWriter(16)
	w.U8(r.cfg.Group)
	w.U8(r.cfg.Priority)
	w.U8(uint8(r.role))
	dst := netip.AddrPortFrom(r.nic.Broadcast(), Port)
	src := netip.AddrPortFrom(r.nic.Primary(), Port)
	if err := r.host.SendUDP(src, dst, w.Bytes()); err != nil {
		_ = err
	}
}

func (r *Router) onHello(from netip.Addr, payload []byte) {
	if !r.running || from == r.nic.Primary() {
		return
	}
	rd := wire.NewReader(payload)
	group := rd.U8()
	prio := rd.U8()
	role := Role(rd.U8())
	if rd.Done() != nil || group != r.cfg.Group {
		return
	}
	r.peers[from] = peerInfo{priority: prio, role: role}
	if role == RoleActive {
		if r.role == RoleActive {
			// Two actives (e.g. after a partition heal): the loser steps
			// down by (priority, address).
			if !r.bestCandidate() {
				r.stepDown()
			}
			return
		}
		r.armActiveTimer()
	}
}

func (r *Router) stepDown() {
	r.role = RoleListen
	if r.nic.HasAddr(r.cfg.VIP) {
		if err := r.nic.RemoveAddr(r.cfg.VIP); err != nil {
			_ = err
		}
	}
	r.armActiveTimer()
}

package hsrp

import (
	"net/netip"
	"testing"
	"time"

	"wackamole/internal/netsim"
	"wackamole/internal/sim"
)

func trio(t *testing.T, seed int64, prios ...uint8) (*sim.Sim, []*Router, []*netsim.NIC) {
	t.Helper()
	s := sim.New(seed)
	nw := netsim.New(s)
	lan := nw.NewSegment("lan", netsim.DefaultSegmentConfig())
	vip := netip.MustParseAddr("10.0.0.100")
	var routers []*Router
	var nics []*netsim.NIC
	for i, prio := range prios {
		h := nw.NewHost(string(rune('a' + i)))
		nic := h.AttachNIC(lan, "eth0", netip.MustParsePrefix(netip.AddrFrom4([4]byte{10, 0, 0, byte(10 + i)}).String()+"/24"))
		r, err := New(h, nic, Config{Group: 3, Priority: prio, VIP: vip})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		routers = append(routers, r)
		nics = append(nics, nic)
	}
	return s, routers, nics
}

func TestInitialElectionPicksHighestPriority(t *testing.T) {
	s, routers, nics := trio(t, 1, 100, 200)
	s.RunFor(25 * time.Second)
	if routers[1].Role() != RoleActive {
		t.Fatalf("roles = %v %v, want b active", routers[0].Role(), routers[1].Role())
	}
	if routers[0].Role() == RoleActive {
		t.Fatal("two active routers")
	}
	if !nics[1].HasAddr(netip.MustParseAddr("10.0.0.100")) {
		t.Fatal("active router does not hold the VIP")
	}
}

func TestStandbyTakesOverWithinHoldTime(t *testing.T) {
	s, routers, nics := trio(t, 2, 200, 100)
	s.RunFor(25 * time.Second)
	if routers[0].Role() != RoleActive {
		t.Fatalf("setup: main role = %v", routers[0].Role())
	}
	nics[0].SetUp(false)
	faultAt := s.Elapsed()
	for routers[1].Role() != RoleActive && s.Elapsed()-faultAt < 30*time.Second {
		s.RunFor(100 * time.Millisecond)
	}
	took := s.Elapsed() - faultAt
	if routers[1].Role() != RoleActive {
		t.Fatal("standby never took over")
	}
	// Takeover bounded by the hold timeout (10s default) plus slack.
	if took > DefaultHold+time.Second {
		t.Fatalf("takeover took %v, want within %v", took, DefaultHold)
	}
	if !nics[1].HasAddr(netip.MustParseAddr("10.0.0.100")) {
		t.Fatal("new active does not hold the VIP")
	}
}

func TestDualActiveResolvesByPriority(t *testing.T) {
	s, routers, nics := trio(t, 3, 200, 100)
	s.RunFor(25 * time.Second)
	nics[0].SetUp(false)
	s.RunFor(15 * time.Second)
	if routers[1].Role() != RoleActive {
		t.Fatal("standby never took over")
	}
	// The old active comes back: both believe they are active until the
	// next hello exchange; the lower priority must step down.
	nics[0].SetUp(true)
	s.RunFor(10 * time.Second)
	actives := 0
	for _, r := range routers {
		if r.Role() == RoleActive {
			actives++
		}
	}
	if actives != 1 {
		t.Fatalf("%d active routers after heal", actives)
	}
	if routers[0].Role() != RoleActive {
		t.Fatalf("higher-priority router lost the dual-active resolution (role %v)", routers[0].Role())
	}
	vip := netip.MustParseAddr("10.0.0.100")
	holders := 0
	for _, nic := range nics {
		if nic.HasAddr(vip) {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("VIP held by %d interfaces after resolution", holders)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.hello() != DefaultHello || c.hold() != DefaultHold {
		t.Fatalf("defaults = %v/%v", c.hello(), c.hold())
	}
	c = Config{Hello: time.Second, Hold: 4 * time.Second}
	if c.hello() != time.Second || c.hold() != 4*time.Second {
		t.Fatal("overrides ignored")
	}
}

func TestMissingVIPRejected(t *testing.T) {
	s := sim.New(9)
	nw := netsim.New(s)
	lan := nw.NewSegment("lan", netsim.DefaultSegmentConfig())
	h := nw.NewHost("a")
	nic := h.AttachNIC(lan, "eth0", netip.MustParsePrefix("10.0.0.10/24"))
	if _, err := New(h, nic, Config{Group: 1, Priority: 10}); err == nil {
		t.Fatal("missing VIP accepted")
	}
}

package gcs

import "testing"

func TestStatsMergeAddsEveryCounter(t *testing.T) {
	a := Stats{
		MembershipsInstalled: 1,
		Reconfigurations:     2,
		TokensForwarded:      3,
		DataSent:             4,
		DataRetransmitted:    5,
		DataDelivered:        6,
		RecoveryFlushes:      7,
	}
	b := Stats{
		MembershipsInstalled: 10,
		Reconfigurations:     20,
		TokensForwarded:      30,
		DataSent:             40,
		DataRetransmitted:    50,
		DataDelivered:        60,
		RecoveryFlushes:      70,
	}
	a.Merge(b)
	want := Stats{
		MembershipsInstalled: 11,
		Reconfigurations:     22,
		TokensForwarded:      33,
		DataSent:             44,
		DataRetransmitted:    55,
		DataDelivered:        66,
		RecoveryFlushes:      77,
	}
	if a != want {
		t.Fatalf("merged = %+v, want %+v", a, want)
	}
	// Merging the zero value is the identity.
	a.Merge(Stats{})
	if a != want {
		t.Fatalf("zero merge changed the sum: %+v", a)
	}
	// The argument is unchanged (Merge takes it by value).
	if b.MembershipsInstalled != 10 {
		t.Fatalf("Merge mutated its argument: %+v", b)
	}
}

func TestDaemonStatsSnapshotIsDetached(t *testing.T) {
	d := &Daemon{}
	d.stats.membershipsInstalled.Add(2)
	d.stats.dataDelivered.Add(5)
	snap := d.Stats()
	if snap.MembershipsInstalled != 2 || snap.DataDelivered != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Mutating the snapshot must not touch the live counters.
	snap.MembershipsInstalled = 99
	if d.stats.membershipsInstalled.Load() != 2 {
		t.Fatal("snapshot aliases the live counters")
	}
}

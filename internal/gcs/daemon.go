package gcs

import (
	"fmt"
	"sync/atomic"
	"time"

	"wackamole/internal/env"
	"wackamole/internal/health"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
	"wackamole/internal/wire"
)

// daemonState is the daemon's membership-protocol state.
type daemonState uint8

const (
	// stGather: discovering the currently reachable daemons.
	stGather daemonState = iota + 1
	// stCommitWait: discovery closed, waiting for the coordinator's FORM.
	stCommitWait
	// stRecover: new membership formed, flushing old-ring messages to
	// preserve Virtual Synchrony.
	stRecover
	// stOperational: on an installed ring, token circulating.
	stOperational
)

// String names the state for logs and tests.
func (s daemonState) String() string {
	switch s {
	case stGather:
		return "gather"
	case stCommitWait:
		return "commit-wait"
	case stRecover:
		return "recover"
	case stOperational:
		return "operational"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// MembershipHandler observes daemon-level membership installations. The
// paper's Table 1 timings are measured at exactly this point: the moment the
// daemon installs a new configuration after fault detection and discovery.
type MembershipHandler func(ring RingID, members []DaemonID)

// DeliveryHandler observes Agreed delivery: it runs for every data message
// the moment the daemon hands it to the group layer, identified by the ring
// that ordered it, its sequence number on that ring, and its origin daemon.
// Both the operational delivery path and the reconfiguration recovery flush
// report here, so the handler sees the complete total order each member
// observed — which is exactly what a virtual-synchrony checker needs to
// compare members against each other.
type DeliveryHandler func(ring RingID, seq uint64, origin DaemonID)

// Daemon is one group-communication daemon. It must be driven entirely from
// its Env's callback loop; none of its methods are safe for concurrent use
// from other goroutines.
type Daemon struct {
	env env.Env
	cfg Config
	id  DaemonID

	state  daemonState
	closed bool

	round          uint64 // membership-attempt counter, monotone
	installedRound uint64 // round of the currently installed ring
	maxEpoch       uint64 // highest ring epoch ever observed

	// Installed ring and its message stream.
	ring             ringInfo
	store            map[uint64]*dataMsg
	highSeq          uint64
	deliveredSeq     uint64
	sendQueue        []*dataMsg
	lastTokenSeq     uint64
	lastRingActivity time.Time

	heartbeatTimer env.Timer
	faultTimers    map[DaemonID]env.Timer
	tokenWatchdog  env.Timer
	pendingToken   env.Timer
	phiScanTimer   env.Timer

	// Ring state captured when leaving the operational state, used by the
	// Virtual Synchrony flush during recovery.
	old oldRing

	// Gather state.
	gathered       map[DaemonID]bool
	gatherDeadline env.Timer
	joinTicker     env.Timer
	formDeadline   env.Timer

	rec *recovery
	// earlyRec buffers recovery messages that race ahead of their FORM:
	// the coordinator broadcasts FORM and its RECOVER_STATE in the same
	// instant, and per-receiver latency can reorder them. Replayed on
	// enterRecovery, discarded on install or re-gather.
	earlyRec []func(*Daemon)

	groups       *groupLayer
	onMembership MembershipHandler
	onDelivery   DeliveryHandler
	onDetection  DetectionHook
	tracer       *obs.Tracer
	hlc          *obs.HLCClock
	health       *health.Monitor
	stats        daemonCounters

	// Latency instruments (nil when no registry is installed; observing on a
	// nil histogram is a zero-allocation no-op, so the uninstrumented run is
	// unchanged). The time.Time fields below are observation state only —
	// they never schedule events or draw randomness.
	mTokenRotation *metrics.Histogram
	mDelivery      *metrics.Histogram
	mInstall       *metrics.Histogram
	mRetransmits   *metrics.Histogram
	lastTokenAt    time.Time
	reconfigStart  time.Time
	retransEpisode uint64
}

// daemonCounters are the live activity counters. They are atomics — not
// plain fields guarded by the callback loop — because Stats() is read from
// outside the loop (the administrative channel, the /metrics endpoint and
// wackmon all poll it from their own goroutines).
type daemonCounters struct {
	membershipsInstalled atomic.Uint64
	reconfigurations     atomic.Uint64
	tokensForwarded      atomic.Uint64
	dataSent             atomic.Uint64
	dataRetransmitted    atomic.Uint64
	dataDelivered        atomic.Uint64
	recoveryFlushes      atomic.Uint64
}

// Stats counts protocol activity since the daemon started; useful for the
// administrative channel and for tests asserting behaviour (for example,
// that a graceful client leave causes no reconfiguration).
type Stats struct {
	// MembershipsInstalled counts daemon-level configuration installs.
	MembershipsInstalled uint64
	// Reconfigurations counts entries into the discovery (gather) state.
	Reconfigurations uint64
	// TokensForwarded counts token passes to the successor.
	TokensForwarded uint64
	// DataSent counts first transmissions of totally ordered messages.
	DataSent uint64
	// DataRetransmitted counts retransmissions due to token requests.
	DataRetransmitted uint64
	// DataDelivered counts messages handed to the group layer in order.
	DataDelivered uint64
	// RecoveryFlushes counts old-ring messages delivered during Virtual
	// Synchrony recovery.
	RecoveryFlushes uint64
}

// Merge adds other's counters into s, aggregating the activity of a whole
// cluster's daemons into one view (the experiment harness attaches the sum
// to every measured data point).
func (s *Stats) Merge(other Stats) {
	s.MembershipsInstalled += other.MembershipsInstalled
	s.Reconfigurations += other.Reconfigurations
	s.TokensForwarded += other.TokensForwarded
	s.DataSent += other.DataSent
	s.DataRetransmitted += other.DataRetransmitted
	s.DataDelivered += other.DataDelivered
	s.RecoveryFlushes += other.RecoveryFlushes
}

// maxEarlyRec bounds the early-recovery buffer; anything beyond this is
// protocol noise and the periodic resends recover it.
const maxEarlyRec = 256

func (d *Daemon) stashEarly(f func(*Daemon)) {
	if len(d.earlyRec) < maxEarlyRec {
		d.earlyRec = append(d.earlyRec, f)
	}
}

type ringInfo struct {
	id      RingID
	members []DaemonID // sorted
	selfIdx int
}

func (r ringInfo) contains(id DaemonID) bool {
	for _, m := range r.members {
		if m == id {
			return true
		}
	}
	return false
}

func (r ringInfo) successor(self DaemonID) DaemonID {
	for i, m := range r.members {
		if m == self {
			return r.members[(i+1)%len(r.members)]
		}
	}
	return self
}

type oldRing struct {
	ring         ringInfo
	store        map[uint64]*dataMsg
	highSeq      uint64
	deliveredSeq uint64
}

type recovery struct {
	form     formMsg
	mine     recoverStateMsg // snapshot broadcast at recovery entry
	states   map[DaemonID]recoverStateMsg
	done     map[DaemonID]bool
	selfDone bool
	sent     map[uint64]bool // old-ring seqs already rebroadcast by us
	timer    env.Timer
	retry    env.Timer
}

// NewDaemon creates a daemon on e. Its identity is the endpoint's stationary
// address. Call Start to begin operation.
func NewDaemon(e env.Env, cfg Config) (*Daemon, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if e.Log == nil {
		e.Log = env.NopLogger{}
	}
	d := &Daemon{
		env:         e,
		cfg:         cfg.withDefaults(),
		id:          DaemonID(e.Conn.LocalAddr()),
		faultTimers: map[DaemonID]env.Timer{},
	}
	d.groups = newGroupLayer(d)
	return d, nil
}

// ID returns the daemon's identity (its stationary address).
func (d *Daemon) ID() DaemonID { return d.id }

// Start attaches the packet handler and begins the bootstrap discovery.
func (d *Daemon) Start() {
	if d.cfg.Detector == DetectorPhi && d.health == nil {
		// The phi detector needs a suspicion source. When no instrumented
		// monitor was installed (no telemetry, no metrics), self-provision a
		// plain one so `detector phi` works in every deployment shape.
		d.SetHealth(health.NewMonitor(health.Options{
			Node:      string(d.id),
			Threshold: d.cfg.PhiThreshold,
		}))
	}
	d.env.Conn.SetHandler(d.onPacket)
	d.enterGather("boot", 0)
}

// Leave announces a graceful departure to the current ring and stops the
// daemon. Peers reconfigure as soon as the announcement arrives — skipping
// the fault-detection timeout entirely — so an administrative daemon
// shutdown costs only the discovery round, not detection + discovery.
func (d *Daemon) Leave() {
	if d.closed {
		return
	}
	if d.state == stOperational && len(d.ring.members) > 1 {
		d.broadcast(leaveMsg{Ring: d.ring.id, Sender: d.id}.encode())
	}
	d.Stop()
}

// onLeave handles a peer's graceful departure announcement.
func (d *Daemon) onLeave(m leaveMsg) {
	if d.state != stOperational || m.Sender == d.id {
		return
	}
	if m.Ring != d.ring.id || !d.ring.contains(m.Sender) {
		return
	}
	d.env.Log.Logf("gcs %s: member %s left gracefully", d.id, m.Sender)
	d.enterGather("leave:"+string(m.Sender), 0)
}

// Stop ceases all protocol activity and closes the endpoint.
func (d *Daemon) Stop() {
	if d.closed {
		return
	}
	d.closed = true
	d.cancelProtocolTimers()
	d.groups.stopAll()
	if err := d.env.Conn.Close(); err != nil {
		d.env.Log.Logf("gcs %s: close endpoint: %v", d.id, err)
	}
}

// SetMembershipHandler registers cb to run at every daemon-level membership
// installation.
func (d *Daemon) SetMembershipHandler(cb MembershipHandler) { d.onMembership = cb }

// SetDeliveryHandler registers cb to run at every Agreed delivery. A nil
// handler (the default) costs nothing on the delivery path.
func (d *Daemon) SetDeliveryHandler(cb DeliveryHandler) { d.onDelivery = cb }

// AddMembershipHandler chains cb after any previously registered membership
// handler, letting independent observers coexist. Call before Start.
func (d *Daemon) AddMembershipHandler(cb MembershipHandler) {
	if cb == nil {
		return
	}
	if prev := d.onMembership; prev != nil {
		d.onMembership = func(ring RingID, members []DaemonID) { prev(ring, members); cb(ring, members) }
		return
	}
	d.onMembership = cb
}

// AddDeliveryHandler chains cb after any previously registered delivery
// handler. Call before Start.
func (d *Daemon) AddDeliveryHandler(cb DeliveryHandler) {
	if cb == nil {
		return
	}
	if prev := d.onDelivery; prev != nil {
		d.onDelivery = func(r RingID, seq uint64, origin DaemonID) { prev(r, seq, origin); cb(r, seq, origin) }
		return
	}
	d.onDelivery = cb
}

// State returns the daemon's protocol state name (for tests and tooling).
func (d *Daemon) State() string { return d.state.String() }

// Stats returns a snapshot of the daemon's activity counters. Unlike the
// rest of the daemon's methods it is safe to call from any goroutine.
func (d *Daemon) Stats() Stats {
	return Stats{
		MembershipsInstalled: d.stats.membershipsInstalled.Load(),
		Reconfigurations:     d.stats.reconfigurations.Load(),
		TokensForwarded:      d.stats.tokensForwarded.Load(),
		DataSent:             d.stats.dataSent.Load(),
		DataRetransmitted:    d.stats.dataRetransmitted.Load(),
		DataDelivered:        d.stats.dataDelivered.Load(),
		RecoveryFlushes:      d.stats.recoveryFlushes.Load(),
	}
}

// SetTracer installs a structured event tracer (nil disables tracing).
// Call before Start.
func (d *Daemon) SetTracer(t *obs.Tracer) { d.tracer = t }

// SetHLC installs a hybrid-logical-clock (nil disables causal stamping).
// Every outbound message is stamped with the clock at transmit time and
// every inbound stamp is merged back, so traces on different daemons become
// causally comparable. Call before Start.
func (d *Daemon) SetHLC(c *obs.HLCClock) { d.hlc = c }

// DetectionHook observes every failure declaration this daemon makes
// against a ring member, before the reconfiguration it triggers: peer is
// the declared-dead member and detector names the mechanism that fired
// ("fixed" or "phi"). Checkers use it to judge detections against ground
// truth (false-suspicion accounting on lossy-but-alive links).
type DetectionHook func(peer string, detector string)

// SetDetectionHook registers fn to run at every fault declaration. Call
// before Start.
func (d *Daemon) SetDetectionHook(fn DetectionHook) { d.onDetection = fn }

// Detector returns the active detection regime.
func (d *Daemon) Detector() Detector { return d.cfg.Detector }

// PhiThreshold returns the phi level at which the phi detector fires: the
// configured threshold, or the health monitor's (default) threshold when
// none was configured.
func (d *Daemon) PhiThreshold() float64 {
	if d.cfg.PhiThreshold > 0 {
		return d.cfg.PhiThreshold
	}
	return d.health.Threshold()
}

// FaultDetectTimeout returns the fixed detection timeout T — the sole
// detection mechanism under DetectorFixed, the fallback floor under
// DetectorPhi.
func (d *Daemon) FaultDetectTimeout() time.Duration { return d.cfg.FaultDetectTimeout }

// SetHealth installs a detection-quality monitor (nil disables it). The
// daemon feeds it every heartbeat and token arrival, resets its peer set on
// each membership install, and notifies it when the fixed fault-detection
// timeout declares a member dead. Under DetectorFixed the monitor is
// observe-only; under DetectorPhi it is the authoritative suspicion source
// driving detection (with the fixed timeout as a floor). Call before
// Start.
func (d *Daemon) SetHealth(m *health.Monitor) {
	// The monitor must not model the peer faster than the cadence it is
	// guaranteed: heartbeats. Token passes still sharpen recency.
	m.SetMinMean(d.cfg.HeartbeatInterval)
	d.health = m
}

// SetMetrics installs a latency-metrics registry (nil disables measurement;
// every instrument then degrades to a no-op). Call before Start.
func (d *Daemon) SetMetrics(r *metrics.Registry) {
	node := metrics.L("node", string(d.id))
	d.mTokenRotation = r.Histogram("gcs_token_rotation_seconds",
		"time between successive token arrivals at this daemon", node)
	d.mDelivery = r.Histogram("gcs_delivery_seconds",
		"agreed-delivery latency from multicast send to in-order delivery, measured at the origin", node)
	d.mInstall = r.Histogram("gcs_membership_install_seconds",
		"duration of one reconfiguration, from entering discovery to installing the new membership", node)
	d.mRetransmits = r.Histogram("gcs_retransmits_per_reconfig",
		"retransmissions this daemon served between consecutive membership installations", node)
}

// Ring returns the installed ring id and ordered members; ok is false before
// the first installation.
func (d *Daemon) Ring() (RingID, []DaemonID, bool) {
	if d.ring.id.IsZero() {
		return RingID{}, nil, false
	}
	members := make([]DaemonID, len(d.ring.members))
	copy(members, d.ring.members)
	return d.ring.id, members, true
}

func stopTimer(t env.Timer) {
	if t != nil {
		t.Stop()
	}
}

func (d *Daemon) cancelProtocolTimers() {
	stopTimer(d.heartbeatTimer)
	d.heartbeatTimer = nil
	for id, t := range d.faultTimers {
		stopTimer(t)
		delete(d.faultTimers, id)
	}
	stopTimer(d.tokenWatchdog)
	d.tokenWatchdog = nil
	stopTimer(d.pendingToken)
	d.pendingToken = nil
	stopTimer(d.phiScanTimer)
	d.phiScanTimer = nil
	stopTimer(d.gatherDeadline)
	d.gatherDeadline = nil
	stopTimer(d.joinTicker)
	d.joinTicker = nil
	stopTimer(d.formDeadline)
	d.formDeadline = nil
	if d.rec != nil {
		stopTimer(d.rec.timer)
		stopTimer(d.rec.retry)
		d.rec = nil
	}
}

func (d *Daemon) broadcast(payload []byte) {
	if d.hlc != nil {
		stampHeader(payload, d.hlc.Now())
	}
	if err := d.env.Conn.Broadcast(payload); err != nil {
		d.env.Log.Logf("gcs %s: broadcast: %v", d.id, err)
	}
}

func (d *Daemon) sendTo(id DaemonID, payload []byte) {
	if d.hlc != nil {
		stampHeader(payload, d.hlc.Now())
	}
	if err := d.env.Conn.SendTo(addrOf(id), payload); err != nil {
		d.env.Log.Logf("gcs %s: send to %s: %v", d.id, id, err)
	}
}

// onPacket decodes and dispatches one inbound datagram. Undecodable traffic
// is logged and dropped; a daemon must survive any bytes thrown at it.
func (d *Daemon) onPacket(from env.Addr, payload []byte) {
	if d.closed {
		return
	}
	r := wire.NewReader(payload)
	t, err := readHeader(r)
	if err != nil {
		d.env.Log.Logf("gcs %s: drop packet from %s: %v", d.id, from, err)
		return
	}
	if d.hlc != nil {
		d.hlc.Observe(headerHLC(payload))
	}
	switch t {
	case mtAlive:
		m, err := decodeAlive(r)
		if err == nil {
			d.onAlive(m)
		}
	case mtJoin:
		m, err := decodeJoin(r)
		if err == nil {
			d.onJoin(m)
		}
	case mtForm:
		m, err := decodeForm(r)
		if err == nil {
			d.onForm(m)
		}
	case mtToken:
		m, err := decodeToken(r)
		if err == nil {
			d.onToken(m)
		}
	case mtData:
		m, err := decodeData(r)
		if err == nil {
			d.onData(&m)
		}
	case mtRecoverState:
		m, err := decodeRecoverState(r)
		if err == nil {
			d.onRecoverState(m)
		}
	case mtRecoverData:
		m, err := decodeRecoverData(r)
		if err == nil {
			d.onRecoverData(m)
		}
	case mtRecoverDone:
		m, err := decodeRecoverDone(r)
		if err == nil {
			d.onRecoverDone(m)
		}
	case mtLeave:
		m, err := decodeLeave(r)
		if err == nil {
			d.onLeave(m)
		}
	default:
		d.env.Log.Logf("gcs %s: drop packet from %s: unknown type %d", d.id, from, t)
	}
}

// ---- Heartbeats and fault detection -------------------------------------

func (d *Daemon) startHeartbeats() {
	var tick func()
	tick = func() {
		if d.closed || d.state != stOperational {
			return
		}
		d.broadcast(aliveMsg{Ring: d.ring.id, Sender: d.id}.encode())
		d.heartbeatTimer = d.env.Clock.AfterFunc(d.cfg.HeartbeatInterval, tick)
	}
	// First heartbeat goes out immediately so peers arm their detectors
	// from installation time.
	tick()
	for _, m := range d.ring.members {
		if m == d.id {
			continue
		}
		d.armFaultTimer(m)
	}
}

func (d *Daemon) armFaultTimer(m DaemonID) {
	stopTimer(d.faultTimers[m])
	d.faultTimers[m] = d.env.Clock.AfterFunc(d.cfg.FaultDetectTimeout, func() {
		if d.closed || d.state != stOperational {
			return
		}
		d.env.Log.Logf("gcs %s: member %s silent beyond fault-detection timeout", d.id, m)
		// Health first: if shadow phi crosses only now, its suspect event
		// must HLC-order before the heartbeat-miss it is measured against.
		d.health.Detected(string(m), d.env.Clock.Now())
		d.tracer.Emit(obs.Event{Source: obs.SourceGCS, Kind: obs.KindHeartbeatMiss, Node: string(d.id), Detail: string(m)})
		if d.onDetection != nil {
			d.onDetection(string(m), "fixed")
		}
		d.enterGather("fault:"+string(m), 0)
	})
}

// startPhiDetector arms the adaptive detection scan: every PhiCheckInterval
// it evaluates phi against each ring member and declares the first one
// whose suspicion crosses the threshold, entering the same reconfiguration
// path as the fixed timeout — just earlier. The per-member fixed timers
// stay armed underneath as the floor, so a peer whose phi never crosses
// (an under-sampled window at boot, say) is still detected at T.
func (d *Daemon) startPhiDetector() {
	if d.cfg.Detector != DetectorPhi || d.health == nil {
		return
	}
	threshold := d.PhiThreshold()
	var tick func()
	tick = func() {
		if d.closed || d.state != stOperational {
			return
		}
		now := d.env.Clock.Now()
		for _, m := range d.ring.members {
			if m == d.id {
				continue
			}
			if phi := d.health.Phi(string(m), now); phi >= threshold {
				d.env.Log.Logf("gcs %s: member %s phi %.2f crossed threshold %.2f", d.id, m, phi, threshold)
				// Mark the suspicion (emitting the phi-suspect trace event)
				// before the heartbeat-miss event, mirroring the fixed path.
				d.health.Detected(string(m), now)
				d.tracer.Emit(obs.Event{Source: obs.SourceGCS, Kind: obs.KindHeartbeatMiss,
					Node: string(d.id), Detail: string(m)})
				if d.onDetection != nil {
					d.onDetection(string(m), "phi")
				}
				d.enterGather("fault:"+string(m), 0)
				return // no longer operational; the scan dies with the state
			}
		}
		d.phiScanTimer = d.env.Clock.AfterFunc(d.cfg.PhiCheckInterval, tick)
	}
	d.phiScanTimer = d.env.Clock.AfterFunc(d.cfg.PhiCheckInterval, tick)
}

func (d *Daemon) onAlive(m aliveMsg) {
	if d.state != stOperational || m.Sender == d.id {
		return
	}
	if m.Ring == d.ring.id && d.ring.contains(m.Sender) {
		d.health.Observe(string(m.Sender), d.env.Clock.Now())
		d.armFaultTimer(m.Sender)
		return
	}
	if !d.ring.contains(m.Sender) {
		// A daemon outside our membership is alive: a merge (or a booted
		// daemon) requires full reconfiguration.
		d.env.Log.Logf("gcs %s: foreign daemon %s detected, reconfiguring", d.id, m.Sender)
		d.enterGather("foreign:"+string(m.Sender), 0)
	}
}

// ---- Gather (discovery) ---------------------------------------------------

func (d *Daemon) enterGather(reason string, minRound uint64) {
	if d.closed {
		return
	}
	if d.state == stOperational {
		// Capture the installed ring for the Virtual Synchrony flush.
		d.old = oldRing{
			ring:         d.ring,
			store:        d.store,
			highSeq:      d.highSeq,
			deliveredSeq: d.deliveredSeq,
		}
	}
	d.cancelProtocolTimers()
	d.earlyRec = nil
	d.stats.reconfigurations.Add(1)
	if d.reconfigStart.IsZero() {
		// First discovery entry of this episode; repeated gather rounds
		// before the next install extend the same measurement.
		d.reconfigStart = d.env.Clock.Now()
	}
	d.tracer.Emit(obs.Event{Source: obs.SourceGCS, Kind: obs.KindGatherEnter, Node: string(d.id), Detail: reason})
	d.state = stGather
	if minRound > d.round {
		d.round = minRound
	} else {
		d.round++
	}
	d.gathered = map[DaemonID]bool{d.id: true}
	d.env.Log.Logf("gcs %s: gather round %d (%s)", d.id, d.round, reason)
	d.sendJoin()
	var tick func()
	tick = func() {
		if d.closed || d.state != stGather {
			return
		}
		d.sendJoin()
		d.joinTicker = d.env.Clock.AfterFunc(d.cfg.joinInterval(), tick)
	}
	d.joinTicker = d.env.Clock.AfterFunc(d.cfg.joinInterval(), tick)
	d.resetGatherDeadline()
}

func (d *Daemon) resetGatherDeadline() {
	stopTimer(d.gatherDeadline)
	d.gatherDeadline = d.env.Clock.AfterFunc(d.cfg.DiscoveryTimeout, d.closeGather)
}

func (d *Daemon) sendJoin() {
	seen := make([]DaemonID, 0, len(d.gathered))
	for id := range d.gathered {
		seen = append(seen, id)
	}
	sortIDs(seen)
	d.broadcast(joinMsg{Sender: d.id, Round: d.round, Seen: seen}.encode())
}

func (d *Daemon) mergeGathered(m joinMsg) {
	d.gathered[m.Sender] = true
	for _, id := range m.Seen {
		d.gathered[id] = true
	}
}

func (d *Daemon) onJoin(m joinMsg) {
	switch d.state {
	case stOperational:
		if d.ring.contains(m.Sender) && m.Round <= d.installedRound {
			return // stale echo of the gather that formed this ring
		}
		d.enterGather("join:"+string(m.Sender), m.Round)
		d.mergeGathered(m)
	case stGather:
		switch {
		case m.Round > d.round:
			d.round = m.Round
			d.mergeGathered(m)
			d.resetGatherDeadline()
		case m.Round == d.round:
			d.mergeGathered(m)
		default:
			// Help a laggard catch up with the current round.
			if m.Sender != d.id {
				seen := make([]DaemonID, 0, len(d.gathered))
				for id := range d.gathered {
					seen = append(seen, id)
				}
				sortIDs(seen)
				d.sendTo(m.Sender, joinMsg{Sender: d.id, Round: d.round, Seen: seen}.encode())
			}
		}
	case stCommitWait:
		switch {
		case m.Round > d.round:
			d.enterGather("join:"+string(m.Sender), m.Round)
			d.mergeGathered(m)
		case m.Round == d.round && !d.gathered[m.Sender]:
			// A reachable daemon we missed during discovery: re-gather so
			// the configuration converges in one attempt instead of two.
			d.enterGather("late-join:"+string(m.Sender), 0)
			d.mergeGathered(m)
		}
	case stRecover:
		if m.Round > d.round {
			d.enterGather("join:"+string(m.Sender), m.Round)
			d.mergeGathered(m)
		}
	}
}

func (d *Daemon) closeGather() {
	if d.closed || d.state != stGather {
		return
	}
	stopTimer(d.joinTicker)
	d.joinTicker = nil
	members := make([]DaemonID, 0, len(d.gathered))
	for id := range d.gathered {
		members = append(members, id)
	}
	sortIDs(members)
	d.state = stCommitWait
	if members[0] == d.id {
		d.maxEpoch++
		form := formMsg{
			Round:   d.round,
			Ring:    RingID{Coord: d.id, Epoch: d.maxEpoch},
			Members: members,
		}
		d.env.Log.Logf("gcs %s: forming ring %s with %d members", d.id, form.Ring, len(members))
		if d.tracer.Enabled() {
			d.tracer.Emit(obs.Event{Source: obs.SourceGCS, Kind: obs.KindFormRing, Node: string(d.id),
				Group: form.Ring.String(), Detail: fmt.Sprintf("members=%d", len(members))})
		}
		d.broadcast(form.encode())
		d.onForm(form)
		return
	}
	d.formDeadline = d.env.Clock.AfterFunc(d.cfg.FormTimeout, func() {
		if d.closed || d.state != stCommitWait {
			return
		}
		d.env.Log.Logf("gcs %s: no FORM from coordinator, re-gathering", d.id)
		d.enterGather("form-timeout", 0)
	})
}

func (d *Daemon) onForm(m formMsg) {
	if d.closed {
		return
	}
	if d.rec != nil && d.rec.form.Ring == m.Ring {
		return // duplicate of the FORM we are already recovering under
	}
	selfIn := false
	for _, id := range m.Members {
		if id == d.id {
			selfIn = true
			break
		}
	}
	if !selfIn {
		return // a configuration that excludes us; our own gather continues
	}
	switch d.state {
	case stGather, stCommitWait:
		if m.Round < d.round {
			return
		}
	case stRecover:
		if m.Round <= d.rec.form.Round {
			return
		}
	case stOperational:
		if m.Round <= d.installedRound {
			return
		}
		// Someone formed a newer configuration that includes us while we
		// believed we were operational: fall back to discovery so the flush
		// state stays coherent.
		d.enterGather("stale-operational", m.Round)
		return
	}
	d.round = m.Round
	if m.Ring.Epoch > d.maxEpoch {
		d.maxEpoch = m.Ring.Epoch
	}
	stopTimer(d.gatherDeadline)
	d.gatherDeadline = nil
	stopTimer(d.joinTicker)
	d.joinTicker = nil
	stopTimer(d.formDeadline)
	d.formDeadline = nil
	d.enterRecovery(m)
}

// ---- Recovery (Virtual Synchrony flush) ----------------------------------

func (d *Daemon) enterRecovery(form formMsg) {
	if d.rec != nil {
		stopTimer(d.rec.timer)
		stopTimer(d.rec.retry)
	}
	d.state = stRecover
	if d.tracer.Enabled() {
		d.tracer.Emit(obs.Event{Source: obs.SourceGCS, Kind: obs.KindRecoverEnter, Node: string(d.id), Group: form.Ring.String()})
	}
	rec := &recovery{
		form:   form,
		states: map[DaemonID]recoverStateMsg{},
		done:   map[DaemonID]bool{},
		sent:   map[uint64]bool{},
	}
	d.rec = rec
	rec.timer = d.env.Clock.AfterFunc(d.cfg.RecoveryTimeout, func() {
		if d.closed || d.state != stRecover {
			return
		}
		d.env.Log.Logf("gcs %s: recovery for ring %s stalled, re-gathering", d.id, form.Ring)
		d.enterGather("recovery-timeout", 0)
	})
	rec.mine = recoverStateMsg{
		Ring:    form.Ring,
		Sender:  d.id,
		OldRing: d.old.ring.id,
		OldHigh: d.old.highSeq,
		Missing: d.oldMissing(),
	}
	// Recovery messages race with the FORM broadcast and with each other;
	// periodic resends make the exchange robust to reordering and loss
	// without changing its outcome (receivers are idempotent and the state
	// snapshot is immutable).
	var resend func()
	resend = func() {
		if d.closed || d.state != stRecover || d.rec != rec {
			return
		}
		if form.Members[0] == d.id {
			d.broadcast(form.encode())
		}
		d.broadcast(rec.mine.encode())
		if rec.selfDone {
			d.broadcast(recoverDoneMsg{Ring: form.Ring, Sender: d.id}.encode())
		}
		rec.retry = d.env.Clock.AfterFunc(d.cfg.RecoveryTimeout/4, resend)
	}
	rec.retry = d.env.Clock.AfterFunc(d.cfg.RecoveryTimeout/4, resend)
	d.broadcast(rec.mine.encode())
	d.onRecoverState(rec.mine)
	replay := d.earlyRec
	d.earlyRec = nil
	for _, f := range replay {
		if d.rec != rec {
			return // a replayed message changed our state; stop
		}
		f(d)
	}
}

// oldMissing lists the old-ring sequence numbers this daemon never received.
func (d *Daemon) oldMissing() []uint64 {
	if d.old.ring.id.IsZero() {
		return nil
	}
	var missing []uint64
	for s := uint64(1); s <= d.old.highSeq; s++ {
		if _, ok := d.old.store[s]; !ok {
			missing = append(missing, s)
		}
	}
	return missing
}

func (d *Daemon) onRecoverState(m recoverStateMsg) {
	if d.rec == nil || m.Ring != d.rec.form.Ring {
		if d.state == stGather || d.state == stCommitWait {
			d.stashEarly(func(d *Daemon) { d.onRecoverState(m) })
		}
		return
	}
	d.rec.states[m.Sender] = m
	d.checkRecovery()
}

func (d *Daemon) onRecoverData(m recoverDataMsg) {
	if d.rec == nil || m.Ring != d.rec.form.Ring {
		if d.state == stGather || d.state == stCommitWait {
			d.stashEarly(func(d *Daemon) { d.onRecoverData(m) })
		}
		return
	}
	if d.old.ring.id.IsZero() || m.OldRing != d.old.ring.id {
		return
	}
	if _, ok := d.old.store[m.Msg.Seq]; !ok {
		msg := m.Msg
		d.old.store[msg.Seq] = &msg
	}
	d.checkRecovery()
}

func (d *Daemon) onRecoverDone(m recoverDoneMsg) {
	if d.rec == nil || m.Ring != d.rec.form.Ring {
		if d.state == stGather || d.state == stCommitWait {
			d.stashEarly(func(d *Daemon) { d.onRecoverDone(m) })
		}
		return
	}
	d.rec.done[m.Sender] = true
	d.checkRecovery()
}

func (d *Daemon) checkRecovery() {
	rec := d.rec
	if rec == nil {
		return
	}
	if len(rec.states) < len(rec.form.Members) {
		return
	}
	if !rec.selfDone {
		if !d.flushOldRing() {
			return // still waiting for retransmissions
		}
		rec.selfDone = true
		done := recoverDoneMsg{Ring: rec.form.Ring, Sender: d.id}
		d.broadcast(done.encode())
		d.onRecoverDone(done)
		// onRecoverDone re-enters checkRecovery; avoid double work.
		return
	}
	for _, m := range rec.form.Members {
		if !rec.done[m] {
			return
		}
	}
	d.install(rec.form)
}

// flushOldRing implements the Virtual Synchrony guarantee: all members of
// the old ring that advance together into the new ring first deliver an
// identical set of old-ring messages, in sequence order. It reports whether
// the flush is complete; if retransmissions are still needed it sends the
// ones this daemon is responsible for and returns false.
func (d *Daemon) flushOldRing() bool {
	rec := d.rec
	if d.old.ring.id.IsZero() {
		return true // fresh daemon: nothing to flush
	}
	// The cohort: new-ring members that came from the same old ring.
	var cohort []DaemonID
	target := uint64(0)
	for _, m := range rec.form.Members {
		st, ok := rec.states[m]
		if !ok || st.OldRing != d.old.ring.id {
			continue
		}
		cohort = append(cohort, m)
		if st.OldHigh > target {
			target = st.OldHigh
		}
	}
	sortIDs(cohort)
	lacks := func(m DaemonID, s uint64) bool {
		st := rec.states[m]
		if s > st.OldHigh {
			return true
		}
		for _, ms := range st.Missing {
			if ms == s {
				return true
			}
		}
		return false
	}
	complete := true
	for s := uint64(1); s <= target; s++ {
		_, have := d.old.store[s]
		available := have
		var firstHolder DaemonID
		anyLacks := false
		for _, m := range cohort {
			if !lacks(m, s) {
				if firstHolder == "" {
					firstHolder = m
				}
				available = true
			} else {
				anyLacks = true
			}
		}
		// Note: "available" from states reflects reception before recovery
		// started; a message nobody in the cohort holds was never delivered
		// by anyone (Agreed delivery is contiguous) and is skipped by all.
		if !available {
			continue
		}
		if !have {
			complete = false
			continue
		}
		if anyLacks && firstHolder == d.id && !rec.sent[s] {
			rec.sent[s] = true
			d.broadcast(recoverDataMsg{Ring: rec.form.Ring, OldRing: d.old.ring.id, Msg: *d.old.store[s]}.encode())
		}
	}
	if !complete {
		return false
	}
	// Deliver every available undelivered old-ring message in sequence
	// order. All cohort members compute the same set, preserving Virtual
	// Synchrony.
	for s := d.old.deliveredSeq + 1; s <= target; s++ {
		if msg, ok := d.old.store[s]; ok {
			d.old.deliveredSeq = s
			d.stats.recoveryFlushes.Add(1)
			if d.onDelivery != nil {
				d.onDelivery(msg.Ring, msg.Seq, msg.Origin)
			}
			d.groups.deliverData(msg)
		}
	}
	return true
}

func (d *Daemon) install(form formMsg) {
	stopTimer(d.rec.timer)
	stopTimer(d.rec.retry)
	d.rec = nil
	d.earlyRec = nil
	selfIdx := 0
	for i, m := range form.Members {
		if m == d.id {
			selfIdx = i
		}
	}
	d.ring = ringInfo{id: form.Ring, members: form.Members, selfIdx: selfIdx}
	d.installedRound = form.Round
	d.round = form.Round
	d.store = map[uint64]*dataMsg{}
	d.highSeq = 0
	d.deliveredSeq = 0
	d.lastTokenSeq = 0
	d.old = oldRing{}
	d.state = stOperational
	d.lastRingActivity = d.env.Clock.Now()
	d.stats.membershipsInstalled.Add(1)
	if !d.reconfigStart.IsZero() {
		d.mInstall.ObserveDuration(d.lastRingActivity.Sub(d.reconfigStart))
		d.reconfigStart = time.Time{}
	}
	d.mRetransmits.Observe(float64(d.retransEpisode))
	d.retransEpisode = 0
	// Token rotation restarts with the new ring; the first arrival on it
	// must not be measured against the previous ring's last token.
	d.lastTokenAt = time.Time{}
	d.env.Log.Logf("gcs %s: installed ring %s members=%v", d.id, form.Ring, form.Members)
	if d.health != nil {
		peers := make([]string, 0, len(form.Members)-1)
		for _, m := range form.Members {
			if m != d.id {
				peers = append(peers, string(m))
			}
		}
		d.health.SetPeers(form.Ring.Epoch, peers, d.lastRingActivity)
	}
	if d.tracer.Enabled() {
		d.tracer.Emit(obs.Event{Source: obs.SourceGCS, Kind: obs.KindInstall, Node: string(d.id),
			Group: form.Ring.String(), Detail: fmt.Sprintf("members=%d", len(form.Members))})
	}

	d.startHeartbeats()
	d.startPhiDetector()
	d.startTokenWatchdog()
	d.groups.onInstall()
	if selfIdx == 0 {
		// The coordinator injects the first token.
		d.onToken(tokenMsg{Ring: d.ring.id, TokenSeq: 1, Seq: 0})
	}
	if d.onMembership != nil {
		members := make([]DaemonID, len(form.Members))
		copy(members, form.Members)
		d.onMembership(form.Ring, members)
	}
}

// ---- Operational ring: token and data ------------------------------------

func (d *Daemon) startTokenWatchdog() {
	interval := d.cfg.TokenLossTimeout / 2
	var tick func()
	tick = func() {
		if d.closed || d.state != stOperational {
			return
		}
		if d.env.Clock.Now().Sub(d.lastRingActivity) > d.cfg.TokenLossTimeout {
			d.env.Log.Logf("gcs %s: token lost on ring %s", d.id, d.ring.id)
			d.enterGather("token-loss", 0)
			return
		}
		d.tokenWatchdog = d.env.Clock.AfterFunc(interval, tick)
	}
	d.tokenWatchdog = d.env.Clock.AfterFunc(interval, tick)
}

// sendData queues a group-layer message for total ordering. The message is
// assigned a sequence number when the token next visits this daemon; queued
// messages survive membership changes and are sent in whatever ring is
// operational when the token arrives.
func (d *Daemon) sendData(kind dataKind, payload []byte) {
	d.sendQueue = append(d.sendQueue, &dataMsg{Origin: d.id, Kind: kind, Payload: payload, sentAt: d.env.Clock.Now()})
}

const maxRtrPerToken = 128

// maxSendQueue bounds the unsent-message backlog; Session.Multicast returns
// ErrBackpressure beyond it. Control messages (joins, leaves, groups-state)
// bypass the bound — they are few and losing them would wedge membership.
const maxSendQueue = 4096

func (d *Daemon) onToken(tok tokenMsg) {
	if d.closed || d.state != stOperational || tok.Ring != d.ring.id {
		return
	}
	if tok.TokenSeq <= d.lastTokenSeq {
		return // stale or duplicate token
	}
	d.lastTokenSeq = tok.TokenSeq
	d.lastRingActivity = d.env.Clock.Now()
	if !d.lastTokenAt.IsZero() {
		d.mTokenRotation.ObserveDuration(d.lastRingActivity.Sub(d.lastTokenAt))
	}
	d.lastTokenAt = d.lastRingActivity
	// A token arrival is a liveness signal from the ring predecessor that
	// forwarded it; heartbeats alone would halve the health plane's signal
	// rate on small rings.
	if d.health != nil && len(d.ring.members) > 1 {
		pred := d.ring.members[(d.ring.selfIdx-1+len(d.ring.members))%len(d.ring.members)]
		d.health.Observe(string(pred), d.lastRingActivity)
	}

	// Serve retransmission requests we can satisfy; keep the rest.
	var rtr []uint64
	for _, s := range tok.Rtr {
		if msg, ok := d.store[s]; ok {
			d.stats.dataRetransmitted.Add(1)
			d.retransEpisode++
			d.broadcast(msg.encode())
		} else {
			rtr = append(rtr, s)
		}
	}
	// Request our own gaps.
	for s := d.deliveredSeq + 1; s <= tok.Seq && len(rtr) < maxRtrPerToken; s++ {
		if _, ok := d.store[s]; !ok {
			rtr = append(rtr, s)
		}
	}

	// Introduce queued messages, up to the window.
	for n := 0; n < d.cfg.Window && len(d.sendQueue) > 0; n++ {
		msg := d.sendQueue[0]
		d.sendQueue = d.sendQueue[1:]
		tok.Seq++
		msg.Ring = d.ring.id
		msg.Seq = tok.Seq
		d.store[msg.Seq] = msg
		if msg.Seq > d.highSeq {
			d.highSeq = msg.Seq
		}
		d.stats.dataSent.Add(1)
		d.broadcast(msg.encode())
	}
	d.tryDeliver()

	tok.Rtr = rtr
	tok.TokenSeq++
	succ := d.ring.successor(d.id)
	ringID := d.ring.id
	fwd := tok
	stopTimer(d.pendingToken)
	d.pendingToken = d.env.Clock.AfterFunc(d.cfg.TokenInterval, func() {
		if d.closed || d.state != stOperational || d.ring.id != ringID {
			return
		}
		d.stats.tokensForwarded.Add(1)
		d.tracer.Emit(obs.Event{Source: obs.SourceGCS, Kind: obs.KindTokenPass, Node: string(d.id), Detail: string(succ)})
		d.sendTo(succ, fwd.encode())
	})
}

func (d *Daemon) onData(m *dataMsg) {
	if d.state == stOperational && m.Ring == d.ring.id {
		d.lastRingActivity = d.env.Clock.Now()
		if _, ok := d.store[m.Seq]; !ok {
			d.store[m.Seq] = m
			if m.Seq > d.highSeq {
				d.highSeq = m.Seq
			}
			d.tryDeliver()
		}
		return
	}
	// A straggler from the previous ring while we are recovering counts as
	// recovery input.
	if d.rec != nil && !d.old.ring.id.IsZero() && m.Ring == d.old.ring.id {
		if _, ok := d.old.store[m.Seq]; !ok {
			d.old.store[m.Seq] = m
		}
		d.checkRecovery()
	}
}

// tryDeliver hands contiguous messages to the group layer in sequence
// order: Agreed delivery.
func (d *Daemon) tryDeliver() {
	for {
		msg, ok := d.store[d.deliveredSeq+1]
		if !ok {
			return
		}
		d.deliveredSeq++
		d.stats.dataDelivered.Add(1)
		if !msg.sentAt.IsZero() {
			// Only the origin's own copy carries a send timestamp.
			d.mDelivery.ObserveDuration(d.env.Clock.Now().Sub(msg.sentAt))
		}
		if d.onDelivery != nil {
			d.onDelivery(msg.Ring, msg.Seq, msg.Origin)
		}
		d.groups.deliverData(msg)
	}
}

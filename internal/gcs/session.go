package gcs

import (
	"errors"
	"fmt"
)

// Errors reported by session operations.
var (
	ErrSessionClosed = errors.New("gcs: session closed")
	ErrNameInUse     = errors.New("gcs: client name already connected")
	ErrDaemonClosed  = errors.New("gcs: daemon stopped")
	ErrPayloadTooBig = errors.New("gcs: payload exceeds the message size limit")
	ErrBackpressure  = errors.New("gcs: send queue full")
)

// MaxPayload bounds one multicast payload (the wire format length-prefixes
// payloads with 16 bits, minus headroom for the envelope).
const MaxPayload = 60 * 1024

// Session is a client connection to a local daemon, the analogue of a Spread
// client connection (§4.2 of the paper). Wackamole runs as one such client.
//
// All methods and callbacks run on the daemon's callback loop; handlers must
// not block.
type Session struct {
	d      *Daemon
	name   string
	joined map[string]bool
	closed bool

	viewH func(View)
	msgH  func(from GroupMember, group string, payload []byte)
	discH func()
}

// Connect attaches a named client to the daemon. Names must be unique per
// daemon; the pair (daemon id, client name) identifies the member
// cluster-wide.
func (d *Daemon) Connect(name string) (*Session, error) {
	if d.closed {
		return nil, ErrDaemonClosed
	}
	if name == "" {
		return nil, fmt.Errorf("gcs: empty client name")
	}
	if _, ok := d.groups.sessions[name]; ok {
		return nil, fmt.Errorf("%w: %q on %s", ErrNameInUse, name, d.id)
	}
	s := &Session{d: d, name: name, joined: map[string]bool{}}
	d.groups.sessions[name] = s
	return s, nil
}

// Member returns this session's cluster-wide identity.
func (s *Session) Member() GroupMember {
	return GroupMember{Daemon: s.d.id, Client: s.name}
}

// SetViewHandler registers the group membership callback.
func (s *Session) SetViewHandler(h func(View)) { s.viewH = h }

// SetMessageHandler registers the Agreed-delivery message callback.
func (s *Session) SetMessageHandler(h func(from GroupMember, group string, payload []byte)) {
	s.msgH = h
}

// SetDisconnectHandler registers the callback invoked when the session is
// severed (daemon shutdown or simulated connection loss). A Wackamole
// client reacts by dropping all of its virtual interfaces and periodically
// reconnecting, per §4.2.
func (s *Session) SetDisconnectHandler(h func()) { s.discH = h }

// Join requests membership in group. The membership becomes effective — and
// a View is delivered — when the join is delivered in total order. A client
// join does not trigger daemon-level reconfiguration, which is why
// voluntary membership changes complete in milliseconds rather than at
// fault-detection timescales (§6).
func (s *Session) Join(group string) error {
	if s.closed {
		return ErrSessionClosed
	}
	if group == "" {
		return fmt.Errorf("gcs: empty group name")
	}
	s.d.sendData(dkGroupJoin, encodeGroupOp(s.name, group))
	return nil
}

// Leave requests departure from group.
func (s *Session) Leave(group string) error {
	if s.closed {
		return ErrSessionClosed
	}
	s.d.sendData(dkGroupLeave, encodeGroupOp(s.name, group))
	return nil
}

// Multicast sends payload to every member of group with Agreed (totally
// ordered) delivery, including this client if it is a member. Oversized
// payloads and a full daemon send queue are rejected rather than silently
// degraded (the daemon's flow control admits Window messages per token
// visit, so a persistent ErrBackpressure means the client outruns the
// ring).
func (s *Session) Multicast(group string, payload []byte) error {
	if s.closed {
		return ErrSessionClosed
	}
	if len(payload) > MaxPayload {
		return fmt.Errorf("%w: %d bytes", ErrPayloadTooBig, len(payload))
	}
	if len(s.d.sendQueue) >= maxSendQueue {
		return ErrBackpressure
	}
	s.d.sendData(dkGroupCast, encodeGroupCast(s.name, group, payload))
	return nil
}

// Joined reports whether the session's membership in group is currently
// effective (the join has been delivered).
func (s *Session) Joined(group string) bool { return s.joined[group] }

// Disconnect leaves all groups gracefully and detaches from the daemon.
func (s *Session) Disconnect() error {
	if s.closed {
		return ErrSessionClosed
	}
	for group := range s.joined {
		s.d.sendData(dkGroupLeave, encodeGroupOp(s.name, group))
	}
	s.closed = true
	delete(s.d.groups.sessions, s.name)
	return nil
}

// Sever simulates abrupt loss of the client-daemon connection: the daemon
// removes the client (broadcasting leaves on its behalf, as Spread does when
// a client socket dies) and the client's disconnect handler fires.
func (s *Session) Sever() {
	if s.closed {
		return
	}
	for group := range s.joined {
		s.d.sendData(dkGroupLeave, encodeGroupOp(s.name, group))
	}
	delete(s.d.groups.sessions, s.name)
	s.disconnected()
}

// disconnected marks the session dead and notifies the client.
func (s *Session) disconnected() {
	if s.closed {
		return
	}
	s.closed = true
	if s.discH != nil {
		s.discH()
	}
}

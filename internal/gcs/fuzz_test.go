package gcs

import (
	"testing"

	"wackamole/internal/wire"
)

// FuzzPacketDecode throws arbitrary bytes at the daemon's wire decoders;
// none may panic, whatever the input. The seed corpus covers every message
// type with valid encodings, so mutations explore the interesting
// structure.
func FuzzPacketDecode(f *testing.F) {
	ring := RingID{Coord: "10.0.0.1:4803", Epoch: 3}
	f.Add(aliveMsg{Ring: ring, Sender: "10.0.0.2:4803"}.encode())
	f.Add(leaveMsg{Ring: ring, Sender: "10.0.0.2:4803"}.encode())
	f.Add(joinMsg{Sender: "a:1", Round: 9, Seen: []DaemonID{"a:1", "b:1"}}.encode())
	f.Add(formMsg{Round: 9, Ring: ring, Members: []DaemonID{"a:1", "b:1"}}.encode())
	f.Add(tokenMsg{Ring: ring, TokenSeq: 5, Seq: 2, Rtr: []uint64{1}}.encode())
	f.Add(dataMsg{Ring: ring, Seq: 2, Origin: "a:1", Kind: dkGroupCast, Payload: []byte("x")}.encode())
	f.Add(recoverStateMsg{Ring: ring, Sender: "a:1", OldRing: ring, OldHigh: 4, Missing: []uint64{2}}.encode())
	f.Add(recoverDataMsg{Ring: ring, OldRing: ring, Msg: dataMsg{Ring: ring, Seq: 1, Origin: "a:1"}}.encode())
	f.Add(recoverDoneMsg{Ring: ring, Sender: "a:1"}.encode())
	f.Add([]byte{})
	f.Add([]byte{'W', 'G', 2, 255, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := wire.NewReader(data)
		typ, err := readHeader(r)
		if err != nil {
			return
		}
		switch typ {
		case mtAlive:
			_, _ = decodeAlive(r)
		case mtLeave:
			_, _ = decodeLeave(r)
		case mtJoin:
			_, _ = decodeJoin(r)
		case mtForm:
			_, _ = decodeForm(r)
		case mtToken:
			_, _ = decodeToken(r)
		case mtData:
			_, _ = decodeData(r)
		case mtRecoverState:
			_, _ = decodeRecoverState(r)
		case mtRecoverData:
			_, _ = decodeRecoverData(r)
		case mtRecoverDone:
			_, _ = decodeRecoverDone(r)
		}
	})
}

// FuzzGroupPayloads covers the group-layer payload codecs.
func FuzzGroupPayloads(f *testing.F) {
	f.Add(encodeGroupsState([]stateEntry{{client: "w", groups: []string{"g"}}}))
	f.Add(encodeGroupOp("w", "g"))
	f.Add(encodeGroupCast("w", "g", []byte("body")))
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeGroupsState(data)
		_, _, _ = decodeGroupOp(data)
		_, _, _, _ = decodeGroupCast(data)
	})
}

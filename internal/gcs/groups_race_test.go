package gcs_test

// Tests for the group layer's synchronization corner cases: joins, leaves
// and casts racing daemon-level membership changes must replay correctly
// after the groups-state exchange (the paper's daemons synchronize group
// state after every configuration change).

import (
	"fmt"
	"testing"
	"time"

	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
)

func TestJoinRacingDaemonReconfiguration(t *testing.T) {
	c := newCluster(t, 131, 3, gcs.TunedConfig())
	a := c.connectClient(0, "w", "wack")
	b := c.connectClient(1, "w", "wack")
	c.sim.RunFor(5 * time.Second)

	// A fourth daemon boots (forcing a reconfiguration) in the same instant
	// a third client joins: the join must survive the membership change.
	c.addDaemon(gcs.TunedConfig(), 3)
	late := c.connectClient(2, "w", "wack")
	c.sim.RunFor(10 * time.Second)

	for name, r := range map[string]*clientRec{"a": a, "b": b, "late": late} {
		v := r.lastView(t)
		if len(v.Members) != 3 {
			t.Fatalf("%s sees %d members after the racing join: %v", name, len(v.Members), v.Members)
		}
	}
	if !late.sess.Joined("wack") {
		t.Fatal("racing join never became effective")
	}
}

func TestLeaveRacingDaemonReconfiguration(t *testing.T) {
	c := newCluster(t, 137, 3, gcs.TunedConfig())
	recs := make([]*clientRec, 3)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(5 * time.Second)
	// Kill a daemon and gracefully leave from another in the same breath.
	c.hosts[2].NICs()[0].SetUp(false)
	if err := recs[1].sess.Leave("wack"); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(10 * time.Second)
	v := recs[0].lastView(t)
	if len(v.Members) != 1 || v.Members[0] != recs[0].sess.Member() {
		t.Fatalf("survivor's view = %v, want itself only", v.Members)
	}
}

func TestCastsBufferedAcrossSyncDeliverInOrder(t *testing.T) {
	c := newCluster(t, 139, 3, gcs.TunedConfig())
	recs := make([]*clientRec, 3)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(5 * time.Second)
	// Fire casts exactly while a reconfiguration is in flight.
	c.addDaemon(gcs.TunedConfig(), 3)
	c.sim.RunFor(100 * time.Millisecond)
	for i, r := range recs {
		for k := 0; k < 3; k++ {
			if err := r.sess.Multicast("wack", []byte(fmt.Sprintf("mid%d-%d", i, k))); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.sim.RunFor(10 * time.Second)
	// All clients deliver identical sequences containing all 9 casts.
	if len(recs[0].msgs) < 9 {
		t.Fatalf("client 0 delivered %d messages: %v", len(recs[0].msgs), recs[0].msgs)
	}
	for i := 1; i < 3; i++ {
		if len(recs[i].msgs) != len(recs[0].msgs) {
			t.Fatalf("client %d delivered %d, client 0 %d", i, len(recs[i].msgs), len(recs[0].msgs))
		}
		for j := range recs[0].msgs {
			if recs[i].msgs[j] != recs[0].msgs[j] {
				t.Fatalf("order differs at %d", j)
			}
		}
	}
}

func TestViewsDuringRepeatedJoinLeaveChurn(t *testing.T) {
	c := newCluster(t, 149, 2, gcs.TunedConfig())
	stable := c.connectClient(0, "w", "wack")
	c.sim.RunFor(5 * time.Second)
	for round := 0; round < 5; round++ {
		churn := c.connectClient(1, fmt.Sprintf("x%d", round), "wack")
		c.sim.RunFor(time.Second)
		if err := churn.sess.Disconnect(); err != nil {
			t.Fatal(err)
		}
		c.sim.RunFor(time.Second)
	}
	v := stable.lastView(t)
	if len(v.Members) != 1 {
		t.Fatalf("after churn, stable client sees %v", v.Members)
	}
	// Views alternated join/leave: at least 10 view changes beyond the
	// initial one.
	if len(stable.views) < 11 {
		t.Fatalf("saw %d views, want ≥ 11", len(stable.views))
	}
}

func TestGroupMembershipPersistsAcrossPartitionHeal(t *testing.T) {
	c := newCluster(t, 151, 4, gcs.TunedConfig())
	recs := make([]*clientRec, 4)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(5 * time.Second)
	c.seg.Partition(
		[]*netsim.Host{c.hosts[0], c.hosts[1]},
		[]*netsim.Host{c.hosts[2], c.hosts[3]})
	c.sim.RunFor(8 * time.Second)
	c.seg.Heal()
	c.sim.RunFor(10 * time.Second)
	ref := recs[0].lastView(t)
	if len(ref.Members) != 4 {
		t.Fatalf("post-heal view has %d members", len(ref.Members))
	}
	for i := 1; i < 4; i++ {
		v := recs[i].lastView(t)
		if v.ID != ref.ID || len(v.Members) != 4 {
			t.Fatalf("client %d view %v differs from %v", i, v.ID, ref.ID)
		}
	}
}

package gcs

import (
	"encoding/binary"
	"fmt"
	"sort"
	"time"

	"wackamole/internal/env"
	"wackamole/internal/obs"
	"wackamole/internal/wire"
)

// DaemonID identifies a daemon by its stationary address ("ip:port").
// Lexicographic order on DaemonIDs provides the uniquely ordered membership
// list the Wackamole algorithm requires.
type DaemonID string

// RingID identifies one installed daemon membership (one "ring").
type RingID struct {
	Coord DaemonID
	Epoch uint64
}

// IsZero reports whether the ring id is unset (daemon never installed).
func (r RingID) IsZero() bool { return r.Coord == "" && r.Epoch == 0 }

// String formats the ring id.
func (r RingID) String() string { return fmt.Sprintf("%s/%d", r.Coord, r.Epoch) }

// ViewID identifies one group-membership view. Ring is the daemon membership
// the view was installed in; Seq is the ring sequence number of the totally
// ordered event that created the view, so all daemons derive identical view
// identifiers.
type ViewID struct {
	Ring RingID
	Seq  uint64
}

// IsZero reports whether the view id is unset.
func (v ViewID) IsZero() bool { return v.Ring.IsZero() && v.Seq == 0 }

// String formats the view id.
func (v ViewID) String() string { return fmt.Sprintf("%s:%d", v.Ring, v.Seq) }

// msgType discriminates daemon wire messages.
type msgType uint8

const (
	mtAlive msgType = iota + 1
	mtJoin
	mtForm
	mtToken
	mtData
	mtRecoverState
	mtRecoverData
	mtRecoverDone
	mtLeave
)

// dataKind discriminates the group-layer payloads carried in mtData.
type dataKind uint8

const (
	dkGroupsState dataKind = iota + 1
	dkGroupJoin
	dkGroupLeave
	dkGroupCast
)

const (
	protoMagicA uint8 = 'W'
	protoMagicB uint8 = 'G'
	// protoVer 2 widened the header from 4 to 16 bytes: every message now
	// carries a hybrid-logical-clock stamp (8-byte wall + 4-byte logical)
	// so receivers can merge the sender's causal clock (internal/obs.HLC).
	protoVer uint8 = 2

	// hlcOffset is where the HLC stamp sits in the encoded message; encode
	// leaves it zeroed and the daemon patches it at transmit time
	// (stampHeader), so message structs stay free of clock plumbing.
	hlcOffset = 4
	// headerLen is the full v2 header: magic(2) ver(1) type(1) hlc(12).
	headerLen = hlcOffset + 12
)

type aliveMsg struct {
	Ring   RingID
	Sender DaemonID
}

// leaveMsg announces a graceful daemon departure: peers reconfigure
// immediately instead of waiting out the fault-detection timeout.
type leaveMsg struct {
	Ring   RingID
	Sender DaemonID
}

type joinMsg struct {
	Sender DaemonID
	Round  uint64
	Seen   []DaemonID
}

type formMsg struct {
	Round   uint64
	Ring    RingID
	Members []DaemonID // sorted
}

type tokenMsg struct {
	Ring     RingID
	TokenSeq uint64
	Seq      uint64
	Rtr      []uint64
}

type dataMsg struct {
	Ring    RingID
	Seq     uint64
	Origin  DaemonID
	Kind    dataKind
	Payload []byte
	// sentAt is local observation state, never encoded: the origin stamps
	// its own copy at Multicast time so delivery latency can be measured at
	// the sender; decoded copies carry the zero value.
	sentAt time.Time
}

type recoverStateMsg struct {
	Ring    RingID // new ring being formed
	Sender  DaemonID
	OldRing RingID
	OldHigh uint64
	Missing []uint64
}

type recoverDataMsg struct {
	Ring    RingID // new ring being formed
	OldRing RingID
	Msg     dataMsg
}

type recoverDoneMsg struct {
	Ring   RingID
	Sender DaemonID
}

func writeHeader(w *wire.Writer, t msgType) {
	w.U8(protoMagicA)
	w.U8(protoMagicB)
	w.U8(protoVer)
	w.U8(uint8(t))
	w.U64(0) // HLC wall, patched by stampHeader at transmit time
	w.U32(0) // HLC logical
}

func readHeader(r *wire.Reader) (msgType, error) {
	if r.U8() != protoMagicA || r.U8() != protoMagicB {
		return 0, fmt.Errorf("gcs: bad magic")
	}
	if v := r.U8(); v != protoVer {
		return 0, fmt.Errorf("gcs: unsupported protocol version %d", v)
	}
	t := msgType(r.U8())
	r.U64() // HLC wall — readers use headerHLC on the raw payload instead
	r.U32() // HLC logical
	if err := r.Err(); err != nil {
		return 0, err
	}
	return t, nil
}

// stampHeader patches ts into payload's header HLC slot in place. Stamping
// at transmit time (rather than encode time) keeps the clock read as close
// to the wire as possible and spares every message struct a clock field.
func stampHeader(payload []byte, ts obs.HLC) {
	if len(payload) < headerLen {
		return
	}
	binary.BigEndian.PutUint64(payload[hlcOffset:], uint64(ts.Wall))
	binary.BigEndian.PutUint32(payload[hlcOffset+8:], ts.Logical)
}

// headerHLC reads the sender's HLC stamp from an encoded message; the zero
// HLC means the sender had no clock armed.
func headerHLC(payload []byte) obs.HLC {
	if len(payload) < headerLen {
		return obs.HLC{}
	}
	return obs.HLC{
		Wall:    int64(binary.BigEndian.Uint64(payload[hlcOffset:])),
		Logical: binary.BigEndian.Uint32(payload[hlcOffset+8:]),
	}
}

func writeRing(w *wire.Writer, r RingID) {
	w.String(string(r.Coord))
	w.U64(r.Epoch)
}

func readRing(r *wire.Reader) RingID {
	return RingID{Coord: DaemonID(r.String()), Epoch: r.U64()}
}

func writeIDList(w *wire.Writer, ids []DaemonID) {
	ss := make([]string, len(ids))
	for i, id := range ids {
		ss[i] = string(id)
	}
	w.StringList(ss)
}

func readIDList(r *wire.Reader) []DaemonID {
	ss := r.StringList()
	ids := make([]DaemonID, len(ss))
	for i, s := range ss {
		ids[i] = DaemonID(s)
	}
	return ids
}

func (m aliveMsg) encode() []byte {
	w := wire.NewWriter(64)
	writeHeader(w, mtAlive)
	writeRing(w, m.Ring)
	w.String(string(m.Sender))
	return w.Bytes()
}

func decodeAlive(r *wire.Reader) (aliveMsg, error) {
	m := aliveMsg{Ring: readRing(r), Sender: DaemonID(r.String())}
	return m, r.Done()
}

func (m leaveMsg) encode() []byte {
	w := wire.NewWriter(64)
	writeHeader(w, mtLeave)
	writeRing(w, m.Ring)
	w.String(string(m.Sender))
	return w.Bytes()
}

func decodeLeave(r *wire.Reader) (leaveMsg, error) {
	m := leaveMsg{Ring: readRing(r), Sender: DaemonID(r.String())}
	return m, r.Done()
}

func (m joinMsg) encode() []byte {
	w := wire.NewWriter(128)
	writeHeader(w, mtJoin)
	w.String(string(m.Sender))
	w.U64(m.Round)
	writeIDList(w, m.Seen)
	return w.Bytes()
}

func decodeJoin(r *wire.Reader) (joinMsg, error) {
	m := joinMsg{Sender: DaemonID(r.String()), Round: r.U64(), Seen: readIDList(r)}
	return m, r.Done()
}

func (m formMsg) encode() []byte {
	w := wire.NewWriter(128)
	writeHeader(w, mtForm)
	w.U64(m.Round)
	writeRing(w, m.Ring)
	writeIDList(w, m.Members)
	return w.Bytes()
}

func decodeForm(r *wire.Reader) (formMsg, error) {
	m := formMsg{Round: r.U64(), Ring: readRing(r), Members: readIDList(r)}
	return m, r.Done()
}

func (m tokenMsg) encode() []byte {
	w := wire.NewWriter(128)
	writeHeader(w, mtToken)
	writeRing(w, m.Ring)
	w.U64(m.TokenSeq)
	w.U64(m.Seq)
	w.U64List(m.Rtr)
	return w.Bytes()
}

func decodeToken(r *wire.Reader) (tokenMsg, error) {
	m := tokenMsg{Ring: readRing(r), TokenSeq: r.U64(), Seq: r.U64(), Rtr: r.U64List()}
	return m, r.Done()
}

func (m dataMsg) encode() []byte {
	w := wire.NewWriter(128 + len(m.Payload))
	writeHeader(w, mtData)
	m.encodeBody(w)
	return w.Bytes()
}

func (m dataMsg) encodeBody(w *wire.Writer) {
	writeRing(w, m.Ring)
	w.U64(m.Seq)
	w.String(string(m.Origin))
	w.U8(uint8(m.Kind))
	w.Bytes16(m.Payload)
}

func decodeDataBody(r *wire.Reader) dataMsg {
	return dataMsg{
		Ring:    readRing(r),
		Seq:     r.U64(),
		Origin:  DaemonID(r.String()),
		Kind:    dataKind(r.U8()),
		Payload: r.Bytes16(),
	}
}

func decodeData(r *wire.Reader) (dataMsg, error) {
	m := decodeDataBody(r)
	return m, r.Done()
}

func (m recoverStateMsg) encode() []byte {
	w := wire.NewWriter(128)
	writeHeader(w, mtRecoverState)
	writeRing(w, m.Ring)
	w.String(string(m.Sender))
	writeRing(w, m.OldRing)
	w.U64(m.OldHigh)
	w.U64List(m.Missing)
	return w.Bytes()
}

func decodeRecoverState(r *wire.Reader) (recoverStateMsg, error) {
	m := recoverStateMsg{
		Ring:    readRing(r),
		Sender:  DaemonID(r.String()),
		OldRing: readRing(r),
		OldHigh: r.U64(),
		Missing: r.U64List(),
	}
	return m, r.Done()
}

func (m recoverDataMsg) encode() []byte {
	w := wire.NewWriter(160 + len(m.Msg.Payload))
	writeHeader(w, mtRecoverData)
	writeRing(w, m.Ring)
	writeRing(w, m.OldRing)
	m.Msg.encodeBody(w)
	return w.Bytes()
}

func decodeRecoverData(r *wire.Reader) (recoverDataMsg, error) {
	m := recoverDataMsg{Ring: readRing(r), OldRing: readRing(r), Msg: decodeDataBody(r)}
	return m, r.Done()
}

func (m recoverDoneMsg) encode() []byte {
	w := wire.NewWriter(64)
	writeHeader(w, mtRecoverDone)
	writeRing(w, m.Ring)
	w.String(string(m.Sender))
	return w.Bytes()
}

func decodeRecoverDone(r *wire.Reader) (recoverDoneMsg, error) {
	m := recoverDoneMsg{Ring: readRing(r), Sender: DaemonID(r.String())}
	return m, r.Done()
}

// sortIDs sorts daemon identifiers into the canonical membership order.
func sortIDs(ids []DaemonID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// idsEqual reports whether two sorted id lists are identical.
func idsEqual(a, b []DaemonID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// addrOf converts a daemon id back to a transport address.
func addrOf(id DaemonID) env.Addr { return env.Addr(id) }

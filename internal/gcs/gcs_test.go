package gcs_test

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
	"wackamole/internal/sim"
)

// cluster is a LAN of gcs daemons under one simulator.
type cluster struct {
	t       testing.TB
	sim     *sim.Sim
	nw      *netsim.Network
	seg     *netsim.Segment
	hosts   []*netsim.Host
	daemons []*gcs.Daemon
}

func newCluster(t testing.TB, seed int64, n int, cfg gcs.Config) *cluster {
	t.Helper()
	s := sim.New(seed)
	nw := netsim.New(s)
	seg := nw.NewSegment("lan", netsim.DefaultSegmentConfig())
	c := &cluster{t: t, sim: s, nw: nw, seg: seg}
	for i := 0; i < n; i++ {
		c.addDaemon(cfg, i)
	}
	return c
}

func (c *cluster) addDaemon(cfg gcs.Config, i int) *gcs.Daemon {
	c.t.Helper()
	host := c.nw.NewHost(fmt.Sprintf("n%02d", i+1))
	prefix := netip.MustParsePrefix(fmt.Sprintf("10.0.0.%d/24", i+10))
	nic := host.AttachNIC(c.seg, "eth0", prefix)
	ep, err := host.OpenEndpoint(nic, 4803)
	if err != nil {
		c.t.Fatal(err)
	}
	d, err := gcs.NewDaemon(ep.Env(nil), cfg)
	if err != nil {
		c.t.Fatal(err)
	}
	d.Start()
	c.hosts = append(c.hosts, host)
	c.daemons = append(c.daemons, d)
	return d
}

// sameRing asserts that all live daemons in idx share one installed ring
// with exactly the expected member count.
func (c *cluster) sameRing(idx []int, wantMembers int) {
	c.t.Helper()
	var ref gcs.RingID
	for k, i := range idx {
		id, members, ok := c.daemons[i].Ring()
		if !ok {
			c.t.Fatalf("daemon %d has no installed ring (state=%s)", i, c.daemons[i].State())
		}
		if c.daemons[i].State() != "operational" {
			c.t.Fatalf("daemon %d state = %s, want operational", i, c.daemons[i].State())
		}
		if len(members) != wantMembers {
			c.t.Fatalf("daemon %d sees %d members (%v), want %d", i, len(members), members, wantMembers)
		}
		if k == 0 {
			ref = id
			continue
		}
		if id != ref {
			c.t.Fatalf("daemon %d ring %v != daemon %d ring %v", i, id, idx[0], ref)
		}
	}
}

func TestSingletonDaemonForms(t *testing.T) {
	c := newCluster(t, 1, 1, gcs.TunedConfig())
	c.sim.RunFor(3 * time.Second)
	c.sameRing([]int{0}, 1)
}

func TestClusterForms(t *testing.T) {
	for _, n := range []int{2, 5, 12} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			c := newCluster(t, int64(n), n, gcs.TunedConfig())
			c.sim.RunFor(5 * time.Second)
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			c.sameRing(idx, n)
		})
	}
}

func TestClusterFormsWithDefaultTimeouts(t *testing.T) {
	c := newCluster(t, 3, 4, gcs.DefaultConfig())
	c.sim.RunFor(20 * time.Second)
	c.sameRing([]int{0, 1, 2, 3}, 4)
}

func TestFaultDetectionAndReconfiguration(t *testing.T) {
	cfg := gcs.TunedConfig()
	c := newCluster(t, 7, 5, cfg)
	c.sim.RunFor(5 * time.Second)
	c.sameRing([]int{0, 1, 2, 3, 4}, 5)

	var installedAt time.Duration
	c.daemons[1].SetMembershipHandler(func(_ gcs.RingID, members []gcs.DaemonID) {
		if len(members) == 4 {
			installedAt = c.sim.Elapsed()
		}
	})
	faultAt := c.sim.Elapsed()
	c.hosts[4].NICs()[0].SetUp(false)
	c.sim.RunFor(10 * time.Second)
	c.sameRing([]int{0, 1, 2, 3}, 4)

	// Notification time must fall in (T-H, T] + D plus protocol slack
	// (paper §6: 2s to 2.4s for the tuned configuration).
	delay := installedAt - faultAt
	lo := cfg.FaultDetectTimeout - cfg.HeartbeatInterval + cfg.DiscoveryTimeout - 100*time.Millisecond
	hi := cfg.FaultDetectTimeout + cfg.DiscoveryTimeout + 500*time.Millisecond
	if delay < lo || delay > hi {
		t.Fatalf("reconfiguration took %v, want within [%v, %v]", delay, lo, hi)
	}
}

func TestPartitionThenMerge(t *testing.T) {
	c := newCluster(t, 11, 5, gcs.TunedConfig())
	c.sim.RunFor(5 * time.Second)
	c.sameRing([]int{0, 1, 2, 3, 4}, 5)

	sideA := []*netsim.Host{c.hosts[0], c.hosts[1], c.hosts[2]}
	sideB := []*netsim.Host{c.hosts[3], c.hosts[4]}
	c.seg.Partition(sideA, sideB)
	c.sim.RunFor(10 * time.Second)
	c.sameRing([]int{0, 1, 2}, 3)
	c.sameRing([]int{3, 4}, 2)
	ra, _, _ := c.daemons[0].Ring()
	rb, _, _ := c.daemons[3].Ring()
	if ra == rb {
		t.Fatal("both partitions report the same ring id")
	}

	c.seg.Heal()
	c.sim.RunFor(15 * time.Second)
	c.sameRing([]int{0, 1, 2, 3, 4}, 5)
}

func TestCascadedFaults(t *testing.T) {
	c := newCluster(t, 13, 6, gcs.TunedConfig())
	c.sim.RunFor(5 * time.Second)
	// Kill daemons one after another, the second mid-reconfiguration.
	c.hosts[5].NICs()[0].SetUp(false)
	c.sim.RunFor(1500 * time.Millisecond)
	c.hosts[4].NICs()[0].SetUp(false)
	c.sim.RunFor(15 * time.Second)
	c.sameRing([]int{0, 1, 2, 3}, 4)
}

// connectClient attaches a client named name to daemon i and records its
// delivered views and messages.
type clientRec struct {
	sess  *gcs.Session
	views []gcs.View
	msgs  []string
	disc  bool
}

func (c *cluster) connectClient(i int, name, group string) *clientRec {
	c.t.Helper()
	sess, err := c.daemons[i].Connect(name)
	if err != nil {
		c.t.Fatal(err)
	}
	rec := &clientRec{sess: sess}
	sess.SetViewHandler(func(v gcs.View) { rec.views = append(rec.views, v) })
	sess.SetMessageHandler(func(from gcs.GroupMember, _ string, payload []byte) {
		rec.msgs = append(rec.msgs, from.Client+":"+string(payload))
	})
	sess.SetDisconnectHandler(func() { rec.disc = true })
	if err := sess.Join(group); err != nil {
		c.t.Fatal(err)
	}
	return rec
}

func (r *clientRec) lastView(t testing.TB) gcs.View {
	t.Helper()
	if len(r.views) == 0 {
		t.Fatal("client received no views")
	}
	return r.views[len(r.views)-1]
}

func TestGroupJoinDeliversOrderedViews(t *testing.T) {
	c := newCluster(t, 17, 3, gcs.TunedConfig())
	recs := make([]*clientRec, 3)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(5 * time.Second)
	want := c.daemons[0].ID()
	_ = want
	ref := recs[0].lastView(t)
	if len(ref.Members) != 3 {
		t.Fatalf("view has %d members, want 3: %v", len(ref.Members), ref.Members)
	}
	for i := 1; i < len(ref.Members); i++ {
		if !ref.Members[i-1].Less(ref.Members[i]) {
			t.Fatalf("view members not strictly ordered: %v", ref.Members)
		}
	}
	for i, r := range recs {
		v := r.lastView(t)
		if v.ID != ref.ID {
			t.Fatalf("client %d view id %v != %v", i, v.ID, ref.ID)
		}
		if len(v.Members) != len(ref.Members) {
			t.Fatalf("client %d member count mismatch", i)
		}
		for j := range v.Members {
			if v.Members[j] != ref.Members[j] {
				t.Fatalf("client %d member list differs: %v vs %v", i, v.Members, ref.Members)
			}
		}
	}
}

func TestAgreedDeliveryTotalOrder(t *testing.T) {
	c := newCluster(t, 19, 4, gcs.TunedConfig())
	recs := make([]*clientRec, 4)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(5 * time.Second)
	// Everyone multicasts a burst concurrently.
	for i, r := range recs {
		for k := 0; k < 5; k++ {
			if err := r.sess.Multicast("wack", []byte(fmt.Sprintf("m%d-%d", i, k))); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.sim.RunFor(3 * time.Second)
	if len(recs[0].msgs) != 20 {
		t.Fatalf("client 0 delivered %d messages, want 20: %v", len(recs[0].msgs), recs[0].msgs)
	}
	for i := 1; i < 4; i++ {
		if len(recs[i].msgs) != len(recs[0].msgs) {
			t.Fatalf("client %d delivered %d messages, client 0 delivered %d", i, len(recs[i].msgs), len(recs[0].msgs))
		}
		for j := range recs[0].msgs {
			if recs[i].msgs[j] != recs[0].msgs[j] {
				t.Fatalf("delivery order differs at %d: %q vs %q", j, recs[i].msgs[j], recs[0].msgs[j])
			}
		}
	}
	// Senders must deliver their own messages (the Wackamole proof relies
	// on servers receiving their own state messages).
	found := false
	for _, m := range recs[0].msgs {
		if m == "w:m0-0" {
			found = true
		}
	}
	if !found {
		t.Fatal("sender did not deliver its own multicast")
	}
}

func TestTotalOrderUnderMessageLoss(t *testing.T) {
	s := sim.New(23)
	nw := netsim.New(s)
	segCfg := netsim.DefaultSegmentConfig()
	segCfg.LossRate = 0.03
	seg := nw.NewSegment("lossy", segCfg)
	c := &cluster{t: t, sim: s, nw: nw, seg: seg}
	for i := 0; i < 3; i++ {
		c.addDaemon(gcs.TunedConfig(), i)
	}
	recs := make([]*clientRec, 3)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(8 * time.Second)
	for i, r := range recs {
		for k := 0; k < 10; k++ {
			if err := r.sess.Multicast("wack", []byte(fmt.Sprintf("m%d-%d", i, k))); err != nil {
				t.Fatal(err)
			}
		}
	}
	c.sim.RunFor(20 * time.Second)
	if len(recs[0].msgs) < 30 {
		t.Fatalf("client 0 delivered %d messages, want >= 30", len(recs[0].msgs))
	}
	for i := 1; i < 3; i++ {
		n := len(recs[0].msgs)
		if len(recs[i].msgs) < n {
			n = len(recs[i].msgs)
		}
		for j := 0; j < n; j++ {
			if recs[i].msgs[j] != recs[0].msgs[j] {
				t.Fatalf("order differs under loss at %d: %q vs %q", j, recs[i].msgs[j], recs[0].msgs[j])
			}
		}
	}
}

func TestGracefulLeaveIsFastAndLightweight(t *testing.T) {
	c := newCluster(t, 29, 4, gcs.TunedConfig())
	recs := make([]*clientRec, 4)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(5 * time.Second)
	ringBefore, _, _ := c.daemons[0].Ring()
	viewsBefore := len(recs[0].views)

	start := c.sim.Elapsed()
	if err := recs[3].sess.Disconnect(); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(200 * time.Millisecond)

	if len(recs[0].views) != viewsBefore+1 {
		t.Fatalf("expected exactly one new view, got %d", len(recs[0].views)-viewsBefore)
	}
	v := recs[0].lastView(t)
	if v.Reason != gcs.ReasonLeave || len(v.Members) != 3 {
		t.Fatalf("leave view = %+v, want 3 members with leave reason", v)
	}
	// The daemon membership must be untouched: voluntary client departure
	// does not trigger daemon-level reconfiguration (§4.1).
	ringAfter, _, _ := c.daemons[0].Ring()
	if ringAfter != ringBefore {
		t.Fatal("graceful client leave triggered a daemon reconfiguration")
	}
	// And it completes within milliseconds, not at timeout scale.
	elapsed := c.sim.Elapsed() - start
	if elapsed > 200*time.Millisecond {
		t.Fatalf("graceful leave took %v", elapsed)
	}
}

func TestSeveredSessionNotifiesAndLeaves(t *testing.T) {
	c := newCluster(t, 31, 3, gcs.TunedConfig())
	recs := make([]*clientRec, 3)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(5 * time.Second)
	recs[2].sess.Sever()
	c.sim.RunFor(time.Second)
	if !recs[2].disc {
		t.Fatal("severed session did not fire its disconnect handler")
	}
	v := recs[0].lastView(t)
	if len(v.Members) != 2 || v.Reason != gcs.ReasonLeave {
		t.Fatalf("survivors' view = %+v, want 2 members, leave", v)
	}
}

func TestViewsAfterPartitionShrink(t *testing.T) {
	c := newCluster(t, 37, 5, gcs.TunedConfig())
	recs := make([]*clientRec, 5)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(5 * time.Second)
	c.seg.Partition(
		[]*netsim.Host{c.hosts[0], c.hosts[1], c.hosts[2]},
		[]*netsim.Host{c.hosts[3], c.hosts[4]})
	c.sim.RunFor(10 * time.Second)
	va := recs[0].lastView(t)
	vb := recs[3].lastView(t)
	if len(va.Members) != 3 {
		t.Fatalf("side A view has %d members: %v", len(va.Members), va.Members)
	}
	if len(vb.Members) != 2 {
		t.Fatalf("side B view has %d members: %v", len(vb.Members), vb.Members)
	}
	// Same-side clients see identical views.
	for i := 1; i < 3; i++ {
		if recs[i].lastView(t).ID != va.ID {
			t.Fatalf("side A client %d view id differs", i)
		}
	}
	if recs[4].lastView(t).ID != vb.ID {
		t.Fatal("side B clients disagree on view id")
	}
}

// TestVirtualSynchronySameDelivery checks the virtual synchrony property the
// Wackamole correctness proof leans on: clients that advance together
// through the same views deliver identical message sequences, even when
// multicasts race a partition.
func TestVirtualSynchronySameDelivery(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newCluster(t, 41+seed, 4, gcs.TunedConfig())
			recs := make([]*clientRec, 4)
			for i := range recs {
				recs[i] = c.connectClient(i, "w", "wack")
			}
			c.sim.RunFor(5 * time.Second)
			// Fire multicasts and partition in the same instant.
			for i, r := range recs {
				if err := r.sess.Multicast("wack", []byte(fmt.Sprintf("pre%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			c.sim.RunFor(time.Duration(seed) * time.Millisecond)
			c.seg.Partition(
				[]*netsim.Host{c.hosts[0], c.hosts[1]},
				[]*netsim.Host{c.hosts[2], c.hosts[3]})
			for i, r := range recs {
				if err := r.sess.Multicast("wack", []byte(fmt.Sprintf("post%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			c.sim.RunFor(10 * time.Second)
			// Clients 0,1 advanced together; so did 2,3.
			pairEqual := func(a, b *clientRec) {
				t.Helper()
				if len(a.msgs) != len(b.msgs) {
					t.Fatalf("same-side delivery lengths differ: %v vs %v", a.msgs, b.msgs)
				}
				for i := range a.msgs {
					if a.msgs[i] != b.msgs[i] {
						t.Fatalf("same-side delivery differs at %d: %v vs %v", i, a.msgs, b.msgs)
					}
				}
			}
			pairEqual(recs[0], recs[1])
			pairEqual(recs[2], recs[3])
		})
	}
}

func TestLateDaemonJoinTriggersReconfiguration(t *testing.T) {
	c := newCluster(t, 43, 3, gcs.TunedConfig())
	c.sim.RunFor(5 * time.Second)
	c.sameRing([]int{0, 1, 2}, 3)
	c.addDaemon(gcs.TunedConfig(), 3)
	c.sim.RunFor(10 * time.Second)
	c.sameRing([]int{0, 1, 2, 3}, 4)
}

func TestConnectErrors(t *testing.T) {
	c := newCluster(t, 47, 1, gcs.TunedConfig())
	d := c.daemons[0]
	if _, err := d.Connect(""); err == nil {
		t.Fatal("Connect with empty name succeeded")
	}
	if _, err := d.Connect("w"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Connect("w"); err == nil {
		t.Fatal("duplicate Connect succeeded")
	}
	d.Stop()
	if _, err := d.Connect("x"); err == nil {
		t.Fatal("Connect after Stop succeeded")
	}
}

func TestSessionLifecycleErrors(t *testing.T) {
	c := newCluster(t, 53, 1, gcs.TunedConfig())
	sess, err := c.daemons[0].Connect("w")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Join(""); err == nil {
		t.Fatal("Join with empty group succeeded")
	}
	if err := sess.Disconnect(); err != nil {
		t.Fatal(err)
	}
	if err := sess.Join("g"); err == nil {
		t.Fatal("Join after Disconnect succeeded")
	}
	if err := sess.Multicast("g", nil); err == nil {
		t.Fatal("Multicast after Disconnect succeeded")
	}
	if err := sess.Disconnect(); err == nil {
		t.Fatal("double Disconnect succeeded")
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (gcs.Config{}).Validate(); err == nil {
		t.Fatal("zero config validated")
	}
	bad := gcs.DefaultConfig()
	bad.HeartbeatInterval = bad.FaultDetectTimeout
	if err := bad.Validate(); err == nil {
		t.Fatal("heartbeat >= fault-detection validated")
	}
	if err := gcs.DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := gcs.TunedConfig().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTable1ConfigValues(t *testing.T) {
	def, tuned := gcs.DefaultConfig(), gcs.TunedConfig()
	if def.FaultDetectTimeout != 5*time.Second || def.HeartbeatInterval != 2*time.Second || def.DiscoveryTimeout != 7*time.Second {
		t.Fatalf("default config %+v does not match Table 1", def)
	}
	if tuned.FaultDetectTimeout != time.Second || tuned.HeartbeatInterval != 400*time.Millisecond || tuned.DiscoveryTimeout != 1400*time.Millisecond {
		t.Fatalf("tuned config %+v does not match Table 1", tuned)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	trace := func() []string {
		c := newCluster(t, 99, 3, gcs.TunedConfig())
		recs := make([]*clientRec, 3)
		for i := range recs {
			recs[i] = c.connectClient(i, "w", "wack")
		}
		c.sim.RunFor(5 * time.Second)
		for i, r := range recs {
			if err := r.sess.Multicast("wack", []byte(fmt.Sprintf("x%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		c.hosts[2].NICs()[0].SetUp(false)
		c.sim.RunFor(10 * time.Second)
		var out []string
		for _, r := range recs {
			out = append(out, fmt.Sprintf("%v|%d", r.msgs, len(r.views)))
		}
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic run: %q vs %q", a[i], b[i])
		}
	}
}

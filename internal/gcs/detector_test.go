package gcs_test

import (
	"testing"
	"time"

	"wackamole/internal/gcs"
)

func TestParseDetector(t *testing.T) {
	for _, want := range []gcs.Detector{gcs.DetectorFixed, gcs.DetectorPhi} {
		got, err := gcs.ParseDetector(want.String())
		if err != nil {
			t.Fatalf("ParseDetector(%q): %v", want.String(), err)
		}
		if got != want {
			t.Fatalf("ParseDetector(%q) = %v, want %v", want.String(), got, want)
		}
	}
	if _, err := gcs.ParseDetector("adaptive"); err == nil {
		t.Fatal("ParseDetector accepted an unknown name")
	}
}

// TestPhiDetectorLeadsFixedTimeout pins the point of the promotion: with a
// deliberately slack fixed timeout (T = 25·H) the phi detector declares a
// crashed member long before T, and the cluster reconfigures off the phi
// path. The daemons self-provision their health monitors — no telemetry or
// metrics plumbing involved.
func TestPhiDetectorLeadsFixedTimeout(t *testing.T) {
	cfg := gcs.Config{
		FaultDetectTimeout: 5 * time.Second,
		HeartbeatInterval:  200 * time.Millisecond,
		DiscoveryTimeout:   1400 * time.Millisecond,
		Detector:           gcs.DetectorPhi,
	}
	c := newCluster(t, 11, 3, cfg)
	c.sim.RunFor(10 * time.Second) // form and accumulate inter-arrival samples
	c.sameRing([]int{0, 1, 2}, 3)

	var detectedAt time.Duration
	var mode string
	hook := func(peer, detector string) {
		if detectedAt == 0 {
			detectedAt = c.sim.Elapsed()
			mode = detector
		}
	}
	c.daemons[1].SetDetectionHook(hook)
	c.daemons[2].SetDetectionHook(hook)

	faultAt := c.sim.Elapsed()
	c.hosts[0].Crash()
	c.sim.RunFor(8 * time.Second)
	c.sameRing([]int{1, 2}, 2)

	if detectedAt == 0 {
		t.Fatal("no detection hook fired")
	}
	latency := detectedAt - faultAt
	if mode != "phi" {
		t.Fatalf("first detection came from %q (latency %v), want phi", mode, latency)
	}
	if latency >= cfg.FaultDetectTimeout {
		t.Fatalf("phi detection latency %v is not ahead of the fixed T=%v floor", latency, cfg.FaultDetectTimeout)
	}
}

// TestFixedDetectorReportsFixed checks the hook attribution on the default
// path: under DetectorFixed the only mechanism that can fire is "fixed".
func TestFixedDetectorReportsFixed(t *testing.T) {
	c := newCluster(t, 13, 3, gcs.TunedConfig())
	c.sim.RunFor(5 * time.Second)
	c.sameRing([]int{0, 1, 2}, 3)

	var mode string
	hook := func(peer, detector string) {
		if mode == "" {
			mode = detector
		}
	}
	c.daemons[1].SetDetectionHook(hook)
	c.daemons[2].SetDetectionHook(hook)
	c.hosts[0].Crash()
	c.sim.RunFor(8 * time.Second)
	c.sameRing([]int{1, 2}, 2)
	if mode != "fixed" {
		t.Fatalf("detection mechanism = %q, want fixed", mode)
	}
}

package gcs

import (
	"math/rand"
	"testing"
	"testing/quick"

	"wackamole/internal/wire"
)

func TestAliveRoundTrip(t *testing.T) {
	in := aliveMsg{Ring: RingID{Coord: "10.0.0.1:4803", Epoch: 7}, Sender: "10.0.0.2:4803"}
	r := wire.NewReader(in.encode())
	typ, err := readHeader(r)
	if err != nil || typ != mtAlive {
		t.Fatalf("header: %v %v", typ, err)
	}
	out, err := decodeAlive(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ring != in.Ring || out.Sender != in.Sender {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	in := joinMsg{Sender: "a:1", Round: 42, Seen: []DaemonID{"a:1", "b:1", "c:1"}}
	r := wire.NewReader(in.encode())
	typ, err := readHeader(r)
	if err != nil || typ != mtJoin {
		t.Fatalf("header: %v %v", typ, err)
	}
	out, err := decodeJoin(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Sender != in.Sender || out.Round != in.Round || !idsEqual(out.Seen, in.Seen) {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
}

func TestFormRoundTrip(t *testing.T) {
	in := formMsg{Round: 3, Ring: RingID{Coord: "a:1", Epoch: 9}, Members: []DaemonID{"a:1", "b:1"}}
	r := wire.NewReader(in.encode())
	if typ, err := readHeader(r); err != nil || typ != mtForm {
		t.Fatalf("header: %v %v", typ, err)
	}
	out, err := decodeForm(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Round != in.Round || out.Ring != in.Ring || !idsEqual(out.Members, in.Members) {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
}

func TestTokenRoundTrip(t *testing.T) {
	in := tokenMsg{Ring: RingID{Coord: "a:1", Epoch: 2}, TokenSeq: 100, Seq: 55, Rtr: []uint64{3, 9, 12}}
	r := wire.NewReader(in.encode())
	if typ, err := readHeader(r); err != nil || typ != mtToken {
		t.Fatalf("header: %v %v", typ, err)
	}
	out, err := decodeToken(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ring != in.Ring || out.TokenSeq != in.TokenSeq || out.Seq != in.Seq || len(out.Rtr) != 3 {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
}

func TestDataRoundTrip(t *testing.T) {
	in := dataMsg{
		Ring:    RingID{Coord: "a:1", Epoch: 4},
		Seq:     19,
		Origin:  "b:1",
		Kind:    dkGroupCast,
		Payload: []byte("hello wackamole"),
	}
	r := wire.NewReader(in.encode())
	if typ, err := readHeader(r); err != nil || typ != mtData {
		t.Fatalf("header: %v %v", typ, err)
	}
	out, err := decodeData(r)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ring != in.Ring || out.Seq != in.Seq || out.Origin != in.Origin || out.Kind != in.Kind || string(out.Payload) != string(in.Payload) {
		t.Fatalf("round trip %+v != %+v", out, in)
	}
}

func TestRecoveryMessagesRoundTrip(t *testing.T) {
	st := recoverStateMsg{
		Ring:    RingID{Coord: "a:1", Epoch: 5},
		Sender:  "b:1",
		OldRing: RingID{Coord: "a:1", Epoch: 4},
		OldHigh: 77,
		Missing: []uint64{5, 6},
	}
	r := wire.NewReader(st.encode())
	if typ, err := readHeader(r); err != nil || typ != mtRecoverState {
		t.Fatalf("header: %v %v", typ, err)
	}
	stOut, err := decodeRecoverState(r)
	if err != nil {
		t.Fatal(err)
	}
	if stOut.Ring != st.Ring || stOut.OldRing != st.OldRing || stOut.OldHigh != st.OldHigh || len(stOut.Missing) != 2 {
		t.Fatalf("round trip %+v != %+v", stOut, st)
	}

	rd := recoverDataMsg{
		Ring:    RingID{Coord: "a:1", Epoch: 5},
		OldRing: RingID{Coord: "a:1", Epoch: 4},
		Msg:     dataMsg{Ring: RingID{Coord: "a:1", Epoch: 4}, Seq: 6, Origin: "c:1", Kind: dkGroupJoin, Payload: []byte("x")},
	}
	r = wire.NewReader(rd.encode())
	if typ, err := readHeader(r); err != nil || typ != mtRecoverData {
		t.Fatalf("header: %v %v", typ, err)
	}
	rdOut, err := decodeRecoverData(r)
	if err != nil {
		t.Fatal(err)
	}
	if rdOut.Msg.Seq != 6 || rdOut.Msg.Origin != "c:1" {
		t.Fatalf("round trip %+v", rdOut)
	}

	dn := recoverDoneMsg{Ring: RingID{Coord: "a:1", Epoch: 5}, Sender: "b:1"}
	r = wire.NewReader(dn.encode())
	if typ, err := readHeader(r); err != nil || typ != mtRecoverDone {
		t.Fatalf("header: %v %v", typ, err)
	}
	dnOut, err := decodeRecoverDone(r)
	if err != nil || dnOut != dn {
		t.Fatalf("round trip %+v err=%v", dnOut, err)
	}
}

func TestHeaderRejections(t *testing.T) {
	if _, err := readHeader(wire.NewReader([]byte{'X', 'G', 1, 1})); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := readHeader(wire.NewReader([]byte{'W', 'G', 99, 1})); err == nil {
		t.Fatal("future version accepted")
	}
	if _, err := readHeader(wire.NewReader([]byte{'W'})); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestGroupPayloadCodecs(t *testing.T) {
	entries := []stateEntry{{client: "w", groups: []string{"a", "b"}}, {client: "x", groups: nil}}
	out, err := decodeGroupsState(encodeGroupsState(entries))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].client != "w" || len(out[0].groups) != 2 || out[1].client != "x" {
		t.Fatalf("groups state round trip: %+v", out)
	}

	c, g, err := decodeGroupOp(encodeGroupOp("client", "group"))
	if err != nil || c != "client" || g != "group" {
		t.Fatalf("group op round trip: %q %q %v", c, g, err)
	}

	c, g, body, err := decodeGroupCast(encodeGroupCast("client", "group", []byte("payload")))
	if err != nil || c != "client" || g != "group" || string(body) != "payload" {
		t.Fatalf("group cast round trip: %q %q %q %v", c, g, body, err)
	}
}

func TestIDOrderingHelpers(t *testing.T) {
	ids := []DaemonID{"c:1", "a:1", "b:1"}
	sortIDs(ids)
	if ids[0] != "a:1" || ids[2] != "c:1" {
		t.Fatalf("sortIDs = %v", ids)
	}
	if !idsEqual(ids, []DaemonID{"a:1", "b:1", "c:1"}) {
		t.Fatal("idsEqual false negative")
	}
	if idsEqual(ids, []DaemonID{"a:1", "b:1"}) || idsEqual(ids, []DaemonID{"a:1", "b:1", "x:1"}) {
		t.Fatal("idsEqual false positive")
	}
}

func TestIDTypes(t *testing.T) {
	ring := RingID{Coord: "a:1", Epoch: 3}
	if ring.String() != "a:1/3" {
		t.Fatalf("RingID.String = %q", ring.String())
	}
	if ring.IsZero() || !(RingID{}).IsZero() {
		t.Fatal("RingID.IsZero wrong")
	}
	view := ViewID{Ring: ring, Seq: 9}
	if view.String() != "a:1/3:9" {
		t.Fatalf("ViewID.String = %q", view.String())
	}
	if view.IsZero() || !(ViewID{}).IsZero() {
		t.Fatal("ViewID.IsZero wrong")
	}
	m := GroupMember{Daemon: "a:1", Client: "w"}
	if m.String() != "a:1/w" {
		t.Fatalf("GroupMember.String = %q", m.String())
	}
	if !m.Less(GroupMember{Daemon: "b:1", Client: "a"}) {
		t.Fatal("Less by daemon failed")
	}
	if !m.Less(GroupMember{Daemon: "a:1", Client: "x"}) {
		t.Fatal("Less by client failed")
	}
}

func TestStateAndReasonStrings(t *testing.T) {
	for want, s := range map[string]daemonState{
		"gather": stGather, "commit-wait": stCommitWait, "recover": stRecover, "operational": stOperational,
	} {
		if s.String() != want {
			t.Fatalf("%v.String() = %q", s, s.String())
		}
	}
	if daemonState(99).String() == "" {
		t.Fatal("unknown state empty")
	}
	for want, r := range map[string]ViewReason{
		"network": ReasonNetwork, "join": ReasonJoin, "leave": ReasonLeave,
	} {
		if r.String() != want {
			t.Fatalf("%v.String() = %q", r, r.String())
		}
	}
}

// TestDecodersNeverPanic feeds random bytes to the full decoder dispatch.
func TestDecodersNeverPanic(t *testing.T) {
	prop := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := wire.NewReader(b)
		typ, err := readHeader(r)
		if err != nil {
			return true
		}
		switch typ {
		case mtAlive:
			_, _ = decodeAlive(r)
		case mtJoin:
			_, _ = decodeJoin(r)
		case mtForm:
			_, _ = decodeForm(r)
		case mtToken:
			_, _ = decodeToken(r)
		case mtData:
			_, _ = decodeData(r)
		case mtRecoverState:
			_, _ = decodeRecoverState(r)
		case mtRecoverData:
			_, _ = decodeRecoverData(r)
		case mtRecoverDone:
			_, _ = decodeRecoverDone(r)
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestViewContains(t *testing.T) {
	v := View{Members: []GroupMember{{Daemon: "a:1", Client: "w"}}}
	if !v.Contains(GroupMember{Daemon: "a:1", Client: "w"}) {
		t.Fatal("Contains false negative")
	}
	if v.Contains(GroupMember{Daemon: "b:1", Client: "w"}) {
		t.Fatal("Contains false positive")
	}
}

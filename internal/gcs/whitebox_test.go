package gcs

// White-box protocol tests: drive a daemon's message handlers directly with
// crafted inputs to pin the defensive branches that normal operation rarely
// exercises (stale tokens, foreign FORMs, recovery for unknown rings,
// duplicate deliveries).

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"wackamole/internal/netsim"
	"wackamole/internal/sim"
)

// wbCluster builds n daemons on a LAN and returns them with the simulator,
// keeping package-internal access to their state.
func wbCluster(t *testing.T, seed int64, n int, cfg Config) (*sim.Sim, []*Daemon, []*netsim.Host) {
	t.Helper()
	s := sim.New(seed)
	nw := netsim.New(s)
	seg := nw.NewSegment("lan", netsim.DefaultSegmentConfig())
	var daemons []*Daemon
	var hosts []*netsim.Host
	for i := 0; i < n; i++ {
		h := nw.NewHost(fmt.Sprintf("n%02d", i))
		nic := h.AttachNIC(seg, "eth0", netip.MustParsePrefix(
			netip.AddrFrom4([4]byte{10, 0, 0, byte(10 + i)}).String()+"/24"))
		ep, err := h.OpenEndpoint(nic, 4803)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDaemon(ep.Env(nil), cfg)
		if err != nil {
			t.Fatal(err)
		}
		d.Start()
		daemons = append(daemons, d)
		hosts = append(hosts, h)
	}
	return s, daemons, hosts
}

func TestStaleTokenIgnored(t *testing.T) {
	s, daemons, _ := wbCluster(t, 1, 2, TunedConfig())
	s.RunFor(5 * time.Second)
	d := daemons[0]
	if d.state != stOperational {
		t.Fatalf("state = %v", d.state)
	}
	before := d.lastTokenSeq
	d.onToken(tokenMsg{Ring: d.ring.id, TokenSeq: 0, Seq: 0}) // ancient
	if d.lastTokenSeq != before {
		t.Fatal("stale token advanced the token sequence")
	}
	d.onToken(tokenMsg{Ring: RingID{Coord: "x", Epoch: 1}, TokenSeq: before + 10, Seq: 0}) // foreign ring
	if d.lastTokenSeq != before {
		t.Fatal("foreign-ring token accepted")
	}
}

func TestFormExcludingSelfIgnored(t *testing.T) {
	s, daemons, _ := wbCluster(t, 2, 2, TunedConfig())
	s.RunFor(5 * time.Second)
	d := daemons[0]
	ringBefore := d.ring.id
	d.onForm(formMsg{
		Round:   d.round + 10,
		Ring:    RingID{Coord: "attacker", Epoch: 99},
		Members: []DaemonID{"someone-else:1"},
	})
	if d.state != stOperational || d.ring.id != ringBefore {
		t.Fatal("a FORM excluding this daemon disturbed it")
	}
}

func TestFormWithHigherRoundWhileOperationalForcesGather(t *testing.T) {
	s, daemons, _ := wbCluster(t, 3, 2, TunedConfig())
	s.RunFor(5 * time.Second)
	d := daemons[0]
	d.onForm(formMsg{
		Round:   d.round + 5,
		Ring:    RingID{Coord: d.id, Epoch: d.maxEpoch + 5},
		Members: []DaemonID{d.id, "phantom:1"},
	})
	if d.state != stGather {
		t.Fatalf("state = %v, want gather after a newer FORM", d.state)
	}
	// The cluster must reconverge on its own afterwards.
	s.RunFor(10 * time.Second)
	if d.state != stOperational || len(d.ring.members) != 2 {
		t.Fatalf("no reconvergence: state=%v members=%v", d.state, d.ring.members)
	}
}

func TestRecoveryMessagesForUnknownRingsIgnored(t *testing.T) {
	s, daemons, _ := wbCluster(t, 4, 2, TunedConfig())
	s.RunFor(5 * time.Second)
	d := daemons[0]
	bogus := RingID{Coord: "bogus:1", Epoch: 77}
	d.onRecoverState(recoverStateMsg{Ring: bogus, Sender: "bogus:1"})
	d.onRecoverData(recoverDataMsg{Ring: bogus, OldRing: bogus})
	d.onRecoverDone(recoverDoneMsg{Ring: bogus, Sender: "bogus:1"})
	if d.state != stOperational {
		t.Fatalf("recovery noise moved the daemon to %v", d.state)
	}
	if len(d.earlyRec) != 0 {
		t.Fatal("operational daemon buffered recovery noise")
	}
}

func TestEarlyRecBufferBounded(t *testing.T) {
	s, daemons, _ := wbCluster(t, 5, 2, TunedConfig())
	s.RunFor(5 * time.Second)
	d := daemons[0]
	d.enterGather("test", 0)
	for i := 0; i < 2*maxEarlyRec; i++ {
		d.onRecoverDone(recoverDoneMsg{Ring: RingID{Coord: "x:1", Epoch: uint64(i)}, Sender: "x:1"})
	}
	if len(d.earlyRec) > maxEarlyRec {
		t.Fatalf("early buffer grew to %d (cap %d)", len(d.earlyRec), maxEarlyRec)
	}
	s.RunFor(10 * time.Second)
	if d.state != stOperational {
		t.Fatalf("daemon stuck in %v after noise", d.state)
	}
}

func TestAliveFromUnknownDaemonTriggersGather(t *testing.T) {
	s, daemons, _ := wbCluster(t, 6, 2, TunedConfig())
	s.RunFor(5 * time.Second)
	d := daemons[0]
	d.onAlive(aliveMsg{Ring: RingID{Coord: "other:1", Epoch: 3}, Sender: "other:1"})
	if d.state != stGather {
		t.Fatalf("foreign ALIVE left the daemon %v", d.state)
	}
	s.RunFor(10 * time.Second)
	if d.state != stOperational {
		t.Fatal("no reconvergence after the foreign ALIVE")
	}
}

func TestAliveFromMemberOnStaleRingIgnored(t *testing.T) {
	s, daemons, _ := wbCluster(t, 7, 2, TunedConfig())
	s.RunFor(5 * time.Second)
	d := daemons[0]
	peer := d.ring.members[1]
	if peer == d.id {
		peer = d.ring.members[0]
	}
	d.onAlive(aliveMsg{Ring: RingID{Coord: d.id, Epoch: d.ring.id.Epoch - 1}, Sender: peer})
	if d.state != stOperational {
		t.Fatalf("stale-ring ALIVE from a member moved the daemon to %v", d.state)
	}
}

func TestTokenLossWatchdogRegathers(t *testing.T) {
	s, daemons, hosts := wbCluster(t, 8, 2, TunedConfig())
	s.RunFor(5 * time.Second)
	_ = hosts
	d := daemons[0]
	installsBefore := d.stats.membershipsInstalled.Load()
	// Simulate a lost token: make every daemon treat arriving tokens as
	// stale duplicates (and cancel pending forwards), so circulation dies
	// while heartbeats keep flowing — only the token-loss watchdog can
	// notice. lastTokenSeq resets at the next install.
	for _, dd := range daemons {
		dd.lastTokenSeq += 1 << 40
		stopTimer(dd.pendingToken)
	}
	s.RunFor(10 * time.Second)
	if d.stats.membershipsInstalled.Load() <= installsBefore {
		t.Fatal("token loss never led to a reinstall")
	}
	if d.state != stOperational {
		t.Fatalf("daemon stuck in %v after token loss", d.state)
	}
}

func TestStatsProgress(t *testing.T) {
	s, daemons, hosts := wbCluster(t, 9, 3, TunedConfig())
	sess, err := daemons[0].Connect("w")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Join("g"); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * time.Second)
	st := daemons[0].Stats()
	if st.MembershipsInstalled == 0 || st.Reconfigurations == 0 {
		t.Fatalf("membership counters flat: %+v", st)
	}
	if st.TokensForwarded == 0 || st.DataSent == 0 || st.DataDelivered == 0 {
		t.Fatalf("data counters flat: %+v", st)
	}
	hosts[2].NICs()[0].SetUp(false)
	s.RunFor(10 * time.Second)
	st2 := daemons[0].Stats()
	if st2.MembershipsInstalled != st.MembershipsInstalled+1 {
		t.Fatalf("fault did not add exactly one install: %d -> %d",
			st.MembershipsInstalled, st2.MembershipsInstalled)
	}
}

func TestDoubleStopIsSafe(t *testing.T) {
	_, daemons, _ := wbCluster(t, 10, 1, TunedConfig())
	daemons[0].Stop()
	daemons[0].Stop() // idempotent
	if daemons[0].State() == "" {
		t.Fatal("state string empty after stop")
	}
}

func TestJoinHelpsLaggardCatchUp(t *testing.T) {
	s, daemons, _ := wbCluster(t, 11, 2, TunedConfig())
	s.RunFor(5 * time.Second)
	d := daemons[0]
	d.enterGather("test", 0)
	// A laggard JOIN with an old round: the daemon must answer with its
	// current round rather than regather.
	roundBefore := d.round
	d.onJoin(joinMsg{Sender: daemons[1].id, Round: 0, Seen: []DaemonID{daemons[1].id}})
	if d.round != roundBefore {
		t.Fatal("laggard JOIN changed the round")
	}
	s.RunFor(10 * time.Second)
	if d.state != stOperational {
		t.Fatalf("no reconvergence (state %v)", d.state)
	}
}

func TestOldMissingComputation(t *testing.T) {
	d := &Daemon{}
	if got := d.oldMissing(); got != nil {
		t.Fatalf("zero old ring yields %v", got)
	}
	d.old = oldRing{
		ring:    ringInfo{id: RingID{Coord: "a:1", Epoch: 1}},
		store:   map[uint64]*dataMsg{1: {}, 3: {}, 4: {}},
		highSeq: 5,
	}
	got := d.oldMissing()
	want := []uint64{2, 5}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("oldMissing = %v, want %v", got, want)
	}
}

func TestRingInfoHelpers(t *testing.T) {
	r := ringInfo{members: []DaemonID{"a:1", "b:1", "c:1"}}
	if !r.contains("b:1") || r.contains("x:1") {
		t.Fatal("contains wrong")
	}
	if r.successor("a:1") != "b:1" || r.successor("c:1") != "a:1" {
		t.Fatal("successor wrong")
	}
	if r.successor("not-a-member") != "not-a-member" {
		t.Fatal("successor of non-member should be itself")
	}
}

func TestNewDaemonRejectsInvalidConfig(t *testing.T) {
	s := sim.New(12)
	nw := netsim.New(s)
	seg := nw.NewSegment("lan", netsim.DefaultSegmentConfig())
	h := nw.NewHost("x")
	nic := h.AttachNIC(seg, "eth0", netip.MustParsePrefix("10.0.0.10/24"))
	ep, err := h.OpenEndpoint(nic, 4803)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewDaemon(ep.Env(nil), Config{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestLeaveFromStrangerIgnored(t *testing.T) {
	s, daemons, _ := wbCluster(t, 13, 2, TunedConfig())
	s.RunFor(5 * time.Second)
	d := daemons[0]
	installs := d.stats.membershipsInstalled.Load()
	// A LEAVE from a daemon outside the ring, and one for a stale ring,
	// must both be ignored.
	d.onLeave(leaveMsg{Ring: d.ring.id, Sender: "stranger:1"})
	d.onLeave(leaveMsg{Ring: RingID{Coord: d.id, Epoch: 99}, Sender: daemons[1].id})
	d.onLeave(leaveMsg{Ring: d.ring.id, Sender: d.id}) // own echo
	if d.state != stOperational || d.stats.membershipsInstalled.Load() != installs {
		t.Fatalf("bogus LEAVE disturbed the daemon (state %v)", d.state)
	}
}

func TestGarbageGroupsStateLogged(t *testing.T) {
	s, daemons, _ := wbCluster(t, 14, 1, TunedConfig())
	s.RunFor(3 * time.Second)
	d := daemons[0]
	// Inject a corrupt groups-state data message directly: it must be
	// dropped without corrupting the layer.
	d.groups.deliverData(&dataMsg{
		Ring:    d.ring.id,
		Seq:     999,
		Origin:  d.id,
		Kind:    dkGroupsState,
		Payload: []byte{0xFF, 0xFF, 0xFF},
	})
	d.groups.deliverData(&dataMsg{Ring: d.ring.id, Kind: dkGroupJoin, Payload: []byte{0xFF}})
	d.groups.deliverData(&dataMsg{Ring: d.ring.id, Kind: dkGroupCast, Payload: []byte{0xFF}})
	d.groups.deliverData(&dataMsg{Ring: d.ring.id, Kind: dataKind(77), Payload: nil})
	if d.state != stOperational {
		t.Fatalf("garbage group payloads broke the daemon: %v", d.state)
	}
}

// TestInstallFoldsInterruptedPendingOps: membership ops buffered during a
// synchronization that never completed (the ring died first) must not be
// replayed on the next ring — a daemon joining from outside the dead ring
// never received them, so replaying them at the old cohort alone diverges
// the replicated map (two daemons then emit the same view ID with
// different member lists). The install instead folds our OWN clients'
// buffered ops into the session bookkeeping, letting the state transfer
// carry their effect to every member, and discards the buffers.
func TestInstallFoldsInterruptedPendingOps(t *testing.T) {
	s, daemons, _ := wbCluster(t, 3, 2, TunedConfig())
	s.RunFor(5 * time.Second)
	d := daemons[0]
	sess, err := d.Connect("c")
	if err != nil {
		t.Fatal(err)
	}
	g := d.groups
	// Simulate a sync interrupted by ring death: unsynced, with a join from
	// our own client and one from a peer buffered under the dead ring.
	g.synced = false
	dead := RingID{Coord: d.id, Epoch: d.ring.id.Epoch + 1}
	g.pendingOps = append(g.pendingOps,
		&dataMsg{Ring: dead, Seq: 7, Origin: d.id, Kind: dkGroupJoin,
			Payload: encodeGroupOp("c", "web1")},
		&dataMsg{Ring: dead, Seq: 8, Origin: daemons[1].id, Kind: dkGroupJoin,
			Payload: encodeGroupOp("other", "web1")})
	g.pendingCasts = append(g.pendingCasts, &dataMsg{Ring: dead, Kind: dkGroupCast})
	g.onInstall()
	if len(g.pendingOps) != 0 || len(g.pendingCasts) != 0 {
		t.Fatalf("buffers survived the install: ops=%d casts=%d",
			len(g.pendingOps), len(g.pendingCasts))
	}
	if !sess.Joined("web1") {
		t.Fatal("own client's buffered join was not folded into session bookkeeping")
	}
	if g.groups["web1"] != nil {
		t.Fatal("peer's buffered op was applied locally instead of dropped")
	}
}

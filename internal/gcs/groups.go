package gcs

import (
	"fmt"
	"sort"

	"wackamole/internal/wire"
)

// GroupMember identifies one client process within one group: the daemon it
// connects through plus its client name. Members order lexicographically by
// (daemon, client), giving every daemon the identical uniquely ordered
// membership list the Wackamole algorithm requires (§3.1).
type GroupMember struct {
	Daemon DaemonID
	Client string
}

// String formats the member as daemon/client.
func (m GroupMember) String() string { return string(m.Daemon) + "/" + m.Client }

// Less orders members by (daemon, client).
func (m GroupMember) Less(o GroupMember) bool {
	if m.Daemon != o.Daemon {
		return m.Daemon < o.Daemon
	}
	return m.Client < o.Client
}

// ViewReason says why a view was delivered.
type ViewReason uint8

// View delivery reasons.
const (
	// ReasonNetwork: the daemon membership changed (fault, partition,
	// merge, or daemon boot) and the group was resynchronized.
	ReasonNetwork ViewReason = iota + 1
	// ReasonJoin: a client joined the group.
	ReasonJoin
	// ReasonLeave: a client left the group (gracefully or because its
	// session was severed).
	ReasonLeave
)

// String names the reason.
func (r ViewReason) String() string {
	switch r {
	case ReasonNetwork:
		return "network"
	case ReasonJoin:
		return "join"
	case ReasonLeave:
		return "leave"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// View is a group membership notification. Any two clients that receive a
// view with the same ID received identical, identically ordered Members —
// the property the Wackamole state synchronization depends on.
type View struct {
	ID      ViewID
	Group   string
	Reason  ViewReason
	Members []GroupMember
}

// Contains reports whether m is in the view.
func (v View) Contains(m GroupMember) bool {
	for _, x := range v.Members {
		if x == m {
			return true
		}
	}
	return false
}

// groupLayer maintains the replicated group-membership state above the
// totally ordered daemon stream. Because every daemon feeds it the same
// messages in the same order, its state and the views it emits are identical
// across daemons (a state-machine replication, as the paper notes in §7).
type groupLayer struct {
	d        *Daemon
	sessions map[string]*Session
	groups   map[string][]GroupMember

	synced        bool
	contributions map[DaemonID][]stateEntry
	pendingOps    []*dataMsg
	pendingCasts  []*dataMsg
	lastViewID    ViewID
}

type stateEntry struct {
	client string
	groups []string
}

func newGroupLayer(d *Daemon) *groupLayer {
	return &groupLayer{
		d:        d,
		sessions: map[string]*Session{},
		groups:   map[string][]GroupMember{},
		// A daemon with no installed ring is trivially synced with itself;
		// real synchronization state arrives with the first installation.
		synced:        false,
		contributions: map[DaemonID][]stateEntry{},
	}
}

// onInstall runs after every daemon membership installation: group state
// must be resynchronized by exchanging each daemon's local client list as
// the first totally ordered messages on the new ring.
func (g *groupLayer) onInstall() {
	g.synced = false
	g.contributions = map[DaemonID][]stateEntry{}
	// Ops buffered during a synchronization that never completed (the ring
	// died first) must not be replayed on the new ring: a daemon joining
	// from outside the dead ring never received them, so replaying them at
	// the old cohort alone diverges the replicated map. Instead, fold the
	// membership effect of our OWN clients' buffered ops into the session
	// bookkeeping so the state transfer below carries it to every member —
	// including the outsiders — and discard the buffers. Buffered casts are
	// dropped for the same reason: delivering them only where they were
	// buffered would break delivery agreement across the new membership.
	for _, m := range g.pendingOps {
		if m.Origin != g.d.id {
			continue
		}
		client, grp, err := decodeGroupOp(m.Payload)
		if err != nil {
			continue
		}
		if s, ok := g.sessions[client]; ok {
			if m.Kind == dkGroupJoin {
				s.joined[grp] = true
			} else {
				delete(s.joined, grp)
			}
		}
	}
	g.pendingOps = nil
	g.pendingCasts = nil
	var entries []stateEntry
	names := make([]string, 0, len(g.sessions))
	for name := range g.sessions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := g.sessions[name]
		gs := make([]string, 0, len(s.joined))
		for grp := range s.joined {
			gs = append(gs, grp)
		}
		sort.Strings(gs)
		entries = append(entries, stateEntry{client: name, groups: gs})
	}
	g.d.sendData(dkGroupsState, encodeGroupsState(entries))
}

// stopAll severs every session when the daemon shuts down.
func (g *groupLayer) stopAll() {
	for _, s := range g.sessions {
		s.disconnected()
	}
	g.sessions = map[string]*Session{}
}

// deliverData consumes one totally ordered message from the daemon.
func (g *groupLayer) deliverData(m *dataMsg) {
	switch m.Kind {
	case dkGroupsState:
		g.onGroupsState(m)
	case dkGroupJoin, dkGroupLeave:
		if !g.synced {
			g.pendingOps = append(g.pendingOps, m)
			return
		}
		g.applyMembershipOp(m, true)
	case dkGroupCast:
		if !g.synced {
			g.pendingCasts = append(g.pendingCasts, m)
			return
		}
		g.deliverCast(m)
	default:
		g.d.env.Log.Logf("gcs %s: drop data with unknown kind %d", g.d.id, m.Kind)
	}
}

func (g *groupLayer) onGroupsState(m *dataMsg) {
	if m.Ring != g.d.ring.id {
		// A groups-state from an interrupted synchronization on a previous
		// ring; the new installation superseded it.
		return
	}
	entries, err := decodeGroupsState(m.Payload)
	if err != nil {
		g.d.env.Log.Logf("gcs %s: bad groups-state from %s: %v", g.d.id, m.Origin, err)
		return
	}
	g.contributions[m.Origin] = entries
	for _, member := range g.d.ring.members {
		if _, ok := g.contributions[member]; !ok {
			return
		}
	}
	g.completeSync(m)
}

// completeSync rebuilds the replicated group map from all contributions,
// replays membership operations that were delivered before synchronization
// completed, then emits views and flushes buffered casts.
func (g *groupLayer) completeSync(last *dataMsg) {
	g.groups = map[string][]GroupMember{}
	members := make([]DaemonID, len(g.d.ring.members))
	copy(members, g.d.ring.members)
	sortIDs(members)
	for _, daemon := range members {
		for _, e := range g.contributions[daemon] {
			for _, grp := range e.groups {
				g.insertMember(grp, GroupMember{Daemon: daemon, Client: e.client})
			}
		}
	}
	g.synced = true
	g.lastViewID = ViewID{Ring: last.Ring, Seq: last.Seq}
	pendingOps := g.pendingOps
	g.pendingOps = nil
	changed := map[string]bool{}
	for grp := range g.groups {
		changed[grp] = true
	}
	for _, op := range pendingOps {
		grp := g.applyMembershipOp(op, false)
		if grp != "" {
			changed[grp] = true
		}
		g.lastViewID = ViewID{Ring: op.Ring, Seq: op.Seq}
	}
	// One coalesced view per group reflecting the final state.
	groups := make([]string, 0, len(changed))
	for grp := range changed {
		groups = append(groups, grp)
	}
	sort.Strings(groups)
	for _, grp := range groups {
		g.emitView(grp, ReasonNetwork)
	}
	casts := g.pendingCasts
	g.pendingCasts = nil
	for _, c := range casts {
		g.deliverCast(c)
	}
}

// applyMembershipOp updates the replicated map for one join/leave and, when
// emit is set, delivers the resulting view. It returns the affected group.
func (g *groupLayer) applyMembershipOp(m *dataMsg, emit bool) string {
	client, grp, err := decodeGroupOp(m.Payload)
	if err != nil {
		g.d.env.Log.Logf("gcs %s: bad group op from %s: %v", g.d.id, m.Origin, err)
		return ""
	}
	member := GroupMember{Daemon: m.Origin, Client: client}
	var mutated bool
	var reason ViewReason
	if m.Kind == dkGroupJoin {
		mutated = g.insertMember(grp, member)
		reason = ReasonJoin
	} else {
		mutated = g.removeMember(grp, member)
		reason = ReasonLeave
	}
	// Keep local session bookkeeping in step with the replicated state.
	if member.Daemon == g.d.id {
		if s, ok := g.sessions[client]; ok {
			if m.Kind == dkGroupJoin {
				s.joined[grp] = true
			} else {
				delete(s.joined, grp)
			}
		}
	}
	if !mutated {
		return ""
	}
	g.lastViewID = ViewID{Ring: m.Ring, Seq: m.Seq}
	if emit {
		g.emitView(grp, reason)
	}
	return grp
}

func (g *groupLayer) insertMember(grp string, m GroupMember) bool {
	list := g.groups[grp]
	i := sort.Search(len(list), func(i int) bool { return !list[i].Less(m) })
	if i < len(list) && list[i] == m {
		return false
	}
	list = append(list, GroupMember{})
	copy(list[i+1:], list[i:])
	list[i] = m
	g.groups[grp] = list
	return true
}

func (g *groupLayer) removeMember(grp string, m GroupMember) bool {
	list := g.groups[grp]
	for i, x := range list {
		if x == m {
			g.groups[grp] = append(list[:i], list[i+1:]...)
			if len(g.groups[grp]) == 0 {
				delete(g.groups, grp)
			}
			return true
		}
	}
	return false
}

// emitView delivers the group's current membership to every local member.
func (g *groupLayer) emitView(grp string, reason ViewReason) {
	list := g.groups[grp]
	for _, m := range list {
		if m.Daemon != g.d.id {
			continue
		}
		s, ok := g.sessions[m.Client]
		if !ok || s.closed {
			continue
		}
		view := View{
			ID:      g.lastViewID,
			Group:   grp,
			Reason:  reason,
			Members: append([]GroupMember(nil), list...),
		}
		if s.viewH != nil {
			s.viewH(view)
		}
	}
}

func (g *groupLayer) deliverCast(m *dataMsg) {
	client, grp, body, err := decodeGroupCast(m.Payload)
	if err != nil {
		g.d.env.Log.Logf("gcs %s: bad group cast from %s: %v", g.d.id, m.Origin, err)
		return
	}
	from := GroupMember{Daemon: m.Origin, Client: client}
	for _, member := range g.groups[grp] {
		if member.Daemon != g.d.id {
			continue
		}
		s, ok := g.sessions[member.Client]
		if !ok || s.closed || s.msgH == nil {
			continue
		}
		s.msgH(from, grp, append([]byte(nil), body...))
	}
}

// ---- payload encodings ----------------------------------------------------

func encodeGroupsState(entries []stateEntry) []byte {
	w := wire.NewWriter(64)
	w.U16(uint16(len(entries)))
	for _, e := range entries {
		w.String(e.client)
		w.StringList(e.groups)
	}
	return w.Bytes()
}

func decodeGroupsState(b []byte) ([]stateEntry, error) {
	r := wire.NewReader(b)
	n := int(r.U16())
	entries := make([]stateEntry, 0, n)
	for i := 0; i < n; i++ {
		entries = append(entries, stateEntry{client: r.String(), groups: r.StringList()})
	}
	return entries, r.Done()
}

func encodeGroupOp(client, group string) []byte {
	w := wire.NewWriter(64)
	w.String(client)
	w.String(group)
	return w.Bytes()
}

func decodeGroupOp(b []byte) (client, group string, err error) {
	r := wire.NewReader(b)
	client = r.String()
	group = r.String()
	return client, group, r.Done()
}

func encodeGroupCast(client, group string, body []byte) []byte {
	w := wire.NewWriter(64 + len(body))
	w.String(client)
	w.String(group)
	w.Bytes16(body)
	return w.Bytes()
}

func decodeGroupCast(b []byte) (client, group string, body []byte, err error) {
	r := wire.NewReader(b)
	client = r.String()
	group = r.String()
	body = r.Bytes16()
	return client, group, body, r.Done()
}

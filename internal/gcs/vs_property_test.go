package gcs_test

// Randomized Virtual Synchrony property suite: under arbitrary schedules of
// partitions, heals and racing multicasts, any two clients that end up in
// the same component must have delivered identical message sequences, and
// the cluster must reconverge to one ring (the liveness half).

import (
	"fmt"
	"testing"
	"time"

	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
	"wackamole/internal/sim"
)

func TestVirtualSynchronyUnderRandomChurn(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const n = 5
			c := newCluster(t, 200+seed, n, gcs.TunedConfig())
			recs := make([]*clientRec, n)
			for i := range recs {
				recs[i] = c.connectClient(i, "w", "wack")
			}
			c.sim.RunFor(5 * time.Second)

			rng := sim.New(seed).Rand()
			partitioned := false
			msgID := 0
			for step := 0; step < 10; step++ {
				switch rng.Intn(3) {
				case 0: // burst of casts from random clients
					for k := 0; k < 5; k++ {
						i := rng.Intn(n)
						msgID++
						if err := recs[i].sess.Multicast("wack", []byte(fmt.Sprintf("m%04d", msgID))); err != nil {
							// Backpressure under churn is acceptable.
							continue
						}
					}
				case 1:
					if !partitioned {
						cut := 1 + rng.Intn(n-1)
						var a, b []*netsim.Host
						for i, h := range c.hosts {
							if i < cut {
								a = append(a, h)
							} else {
								b = append(b, h)
							}
						}
						c.seg.Partition(a, b)
						partitioned = true
					}
				case 2:
					if partitioned {
						c.seg.Heal()
						partitioned = false
					}
				}
				c.sim.RunFor(time.Duration(rng.Intn(4000)) * time.Millisecond)
			}
			if partitioned {
				c.seg.Heal()
			}
			c.sim.RunFor(20 * time.Second)

			// Liveness: one ring again.
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			c.sameRing(idx, n)

			// Safety: clients sharing their final view id delivered
			// identical full sequences only if they were together the whole
			// time; that is too strong under churn. The checkable VS core:
			// for each pair, one's delivery sequence of messages from any
			// single sender is a subsequence-consistent order — since total
			// order per component fixes relative order, any two clients'
			// sequences must agree on the relative order of the messages
			// they BOTH delivered.
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					assertRelativeOrderConsistent(t, recs[i].msgs, recs[j].msgs)
				}
			}
		})
	}
}

// assertRelativeOrderConsistent fails if two delivery sequences order any
// common pair of messages differently.
func assertRelativeOrderConsistent(t *testing.T, a, b []string) {
	t.Helper()
	posB := make(map[string]int, len(b))
	for i, m := range b {
		posB[m] = i
	}
	last := -1
	for _, m := range a {
		if p, ok := posB[m]; ok {
			if p < last {
				t.Fatalf("common messages delivered in different orders (%q)", m)
			}
			last = p
		}
	}
}

func TestNoDuplicateDeliveries(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := newCluster(t, 300+seed, 3, gcs.TunedConfig())
		recs := make([]*clientRec, 3)
		for i := range recs {
			recs[i] = c.connectClient(i, "w", "wack")
		}
		c.sim.RunFor(5 * time.Second)
		for k := 0; k < 20; k++ {
			if err := recs[0].sess.Multicast("wack", []byte(fmt.Sprintf("u%02d", k))); err != nil {
				t.Fatal(err)
			}
			if k == 10 {
				// A reconfiguration in the middle of the stream.
				c.hosts[2].NICs()[0].SetUp(false)
			}
		}
		c.sim.RunFor(10 * time.Second)
		for i := 0; i < 2; i++ {
			seen := map[string]bool{}
			for _, m := range recs[i].msgs {
				if seen[m] {
					t.Fatalf("seed %d: client %d delivered %q twice", seed, i, m)
				}
				seen[m] = true
			}
		}
	}
}

package gcs_test

// Randomized Virtual Synchrony property suite: under arbitrary schedules of
// partitions, heals and racing multicasts, any two clients that end up in
// the same component must have delivered identical message sequences, and
// the cluster must reconverge to one ring (the liveness half).

import (
	"fmt"
	"testing"
	"time"

	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
	"wackamole/internal/sim"
)

func TestVirtualSynchronyUnderRandomChurn(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const n = 5
			c := newCluster(t, 200+seed, n, gcs.TunedConfig())
			recs := make([]*clientRec, n)
			for i := range recs {
				recs[i] = c.connectClient(i, "w", "wack")
			}
			c.sim.RunFor(5 * time.Second)

			rng := sim.New(seed).Rand()
			partitioned := false
			msgID := 0
			for step := 0; step < 10; step++ {
				switch rng.Intn(3) {
				case 0: // burst of casts from random clients
					for k := 0; k < 5; k++ {
						i := rng.Intn(n)
						msgID++
						if err := recs[i].sess.Multicast("wack", []byte(fmt.Sprintf("m%04d", msgID))); err != nil {
							// Backpressure under churn is acceptable.
							continue
						}
					}
				case 1:
					if !partitioned {
						cut := 1 + rng.Intn(n-1)
						var a, b []*netsim.Host
						for i, h := range c.hosts {
							if i < cut {
								a = append(a, h)
							} else {
								b = append(b, h)
							}
						}
						c.seg.Partition(a, b)
						partitioned = true
					}
				case 2:
					if partitioned {
						c.seg.Heal()
						partitioned = false
					}
				}
				c.sim.RunFor(time.Duration(rng.Intn(4000)) * time.Millisecond)
			}
			if partitioned {
				c.seg.Heal()
			}
			c.sim.RunFor(20 * time.Second)

			// Liveness: one ring again.
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			c.sameRing(idx, n)

			// Safety: clients sharing their final view id delivered
			// identical full sequences only if they were together the whole
			// time; that is too strong under churn. The checkable VS core:
			// for each pair, one's delivery sequence of messages from any
			// single sender is a subsequence-consistent order — since total
			// order per component fixes relative order, any two clients'
			// sequences must agree on the relative order of the messages
			// they BOTH delivered.
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					assertRelativeOrderConsistent(t, recs[i].msgs, recs[j].msgs)
				}
			}
		})
	}
}

func TestViewOrderIdenticalUnderSessionSevers(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const n = 4
			c := newCluster(t, 500+seed, n, gcs.TunedConfig())
			// recs accumulates every session epoch ever opened; live tracks
			// the current session per daemon.
			var recs []*clientRec
			live := make([]*clientRec, n)
			for i := 0; i < n; i++ {
				live[i] = c.connectClient(i, fmt.Sprintf("w%d", i), "wack")
				recs = append(recs, live[i])
			}
			c.sim.RunFor(5 * time.Second)

			rng := sim.New(900 + seed).Rand()
			downNIC := -1
			for step := 0; step < 8; step++ {
				switch rng.Intn(3) {
				case 0: // sever one client's session, then reconnect it
					i := rng.Intn(n)
					live[i].sess.Sever()
					c.sim.RunFor(time.Duration(500+rng.Intn(2000)) * time.Millisecond)
					live[i] = c.connectClient(i, fmt.Sprintf("w%d", i), "wack")
					recs = append(recs, live[i])
				case 1:
					if downNIC < 0 {
						downNIC = rng.Intn(n)
						c.hosts[downNIC].NICs()[0].SetUp(false)
					}
				case 2:
					if downNIC >= 0 {
						c.hosts[downNIC].NICs()[0].SetUp(true)
						downNIC = -1
					}
				}
				c.sim.RunFor(time.Duration(1000+rng.Intn(3000)) * time.Millisecond)
			}
			if downNIC >= 0 {
				c.hosts[downNIC].NICs()[0].SetUp(true)
			}
			c.sim.RunFor(20 * time.Second)

			// Safety: a view id names one immutable membership. Every client
			// that installed it — across daemons AND across session epochs —
			// must have seen the identical member list.
			byID := map[gcs.ViewID][]gcs.GroupMember{}
			for _, r := range recs {
				for _, v := range r.views {
					prev, ok := byID[v.ID]
					if !ok {
						byID[v.ID] = v.Members
						continue
					}
					if len(prev) != len(v.Members) {
						t.Fatalf("view %v has two memberships: %v vs %v", v.ID, prev, v.Members)
					}
					for k := range prev {
						if prev[k] != v.Members[k] {
							t.Fatalf("view %v has two memberships: %v vs %v", v.ID, prev, v.Members)
						}
					}
				}
			}

			// Safety: views install in the same relative order everywhere —
			// no two delivery sequences may disagree on the order of the
			// views they both installed.
			for i := 0; i < len(recs); i++ {
				for j := i + 1; j < len(recs); j++ {
					assertViewOrderConsistent(t, recs[i].views, recs[j].views)
				}
			}

			// Liveness: after the churn ends every surviving session agrees
			// on one final view holding all n clients.
			ref := live[0].lastView(t)
			if len(ref.Members) != n {
				t.Fatalf("final view has %d members, want %d: %v", len(ref.Members), n, ref.Members)
			}
			for i := 1; i < n; i++ {
				if v := live[i].lastView(t); v.ID != ref.ID {
					t.Fatalf("client %d final view %v != %v", i, v.ID, ref.ID)
				}
			}
		})
	}
}

// assertViewOrderConsistent fails if two view-install sequences order any
// common pair of view ids differently.
func assertViewOrderConsistent(t *testing.T, a, b []gcs.View) {
	t.Helper()
	posB := make(map[gcs.ViewID]int, len(b))
	for i, v := range b {
		posB[v.ID] = i
	}
	last := -1
	for _, v := range a {
		if p, ok := posB[v.ID]; ok {
			if p < last {
				t.Fatalf("common views installed in different orders (%v)", v.ID)
			}
			last = p
		}
	}
}

// assertRelativeOrderConsistent fails if two delivery sequences order any
// common pair of messages differently.
func assertRelativeOrderConsistent(t *testing.T, a, b []string) {
	t.Helper()
	posB := make(map[string]int, len(b))
	for i, m := range b {
		posB[m] = i
	}
	last := -1
	for _, m := range a {
		if p, ok := posB[m]; ok {
			if p < last {
				t.Fatalf("common messages delivered in different orders (%q)", m)
			}
			last = p
		}
	}
}

func TestNoDuplicateDeliveries(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		c := newCluster(t, 300+seed, 3, gcs.TunedConfig())
		recs := make([]*clientRec, 3)
		for i := range recs {
			recs[i] = c.connectClient(i, "w", "wack")
		}
		c.sim.RunFor(5 * time.Second)
		for k := 0; k < 20; k++ {
			if err := recs[0].sess.Multicast("wack", []byte(fmt.Sprintf("u%02d", k))); err != nil {
				t.Fatal(err)
			}
			if k == 10 {
				// A reconfiguration in the middle of the stream.
				c.hosts[2].NICs()[0].SetUp(false)
			}
		}
		c.sim.RunFor(10 * time.Second)
		for i := 0; i < 2; i++ {
			seen := map[string]bool{}
			for _, m := range recs[i].msgs {
				if seen[m] {
					t.Fatalf("seed %d: client %d delivered %q twice", seed, i, m)
				}
				seen[m] = true
			}
		}
	}
}

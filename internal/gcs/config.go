// Package gcs implements the group-communication substrate Wackamole
// depends on (the paper uses the Spread toolkit, §4.1): a daemon per host
// providing reliable, totally ordered ("Agreed") multicast over a token
// ring, a membership service with distributed heartbeats, fault-detection
// and discovery timeouts, Virtual Synchrony recovery across membership
// changes, and a client-facing process-group layer with lightweight group
// join/leave that does not trigger daemon-level reconfiguration.
//
// The three timeouts of the paper's Table 1 — fault-detection, distributed
// heartbeat, and discovery — are the dominant terms of fail-over latency and
// are exposed directly on Config; DefaultConfig and TunedConfig reproduce
// the two columns of that table.
package gcs

import (
	"fmt"
	"time"
)

// Config holds the daemon's protocol timing parameters.
type Config struct {
	// FaultDetectTimeout is how long a ring member may stay silent before
	// the daemon assumes a fault and starts reconfiguration (Table 1:
	// "Fault-detection timeout").
	FaultDetectTimeout time.Duration
	// HeartbeatInterval is how often a daemon tells the others it is still
	// in operation (Table 1: "Distributed Heartbeat timeout").
	HeartbeatInterval time.Duration
	// DiscoveryTimeout is how long reconfiguration spends determining the
	// currently reachable set of daemons before forming a new membership
	// (Table 1: "Discovery timeout").
	DiscoveryTimeout time.Duration

	// FormTimeout bounds the wait for the coordinator's FORM message after
	// discovery closes. Zero means DiscoveryTimeout/2.
	FormTimeout time.Duration
	// RecoveryTimeout bounds the Virtual Synchrony flush after a new
	// membership forms. Zero means DiscoveryTimeout/2.
	RecoveryTimeout time.Duration
	// TokenInterval paces token forwarding, bounding the ring's rotation
	// rate. Zero means 1ms.
	TokenInterval time.Duration
	// TokenLossTimeout is how long the ring may show no token or data
	// activity before the daemon reconfigures. Zero means
	// FaultDetectTimeout.
	TokenLossTimeout time.Duration
	// Window is the maximum number of messages a daemon may introduce per
	// token visit. Zero means 64.
	Window int
}

// DefaultConfig returns the "Default Spread" column of the paper's Table 1:
// timeouts designed to perform adequately on most networks.
func DefaultConfig() Config {
	return Config{
		FaultDetectTimeout: 5 * time.Second,
		HeartbeatInterval:  2 * time.Second,
		DiscoveryTimeout:   7 * time.Second,
	}
}

// TunedConfig returns the "Tuned Spread" column of the paper's Table 1:
// timeouts adjusted specifically for the Wackamole application on a
// dedicated LAN.
func TunedConfig() Config {
	return Config{
		FaultDetectTimeout: 1 * time.Second,
		HeartbeatInterval:  400 * time.Millisecond,
		DiscoveryTimeout:   1400 * time.Millisecond,
	}
}

// withDefaults fills the derived fields.
func (c Config) withDefaults() Config {
	if c.FormTimeout <= 0 {
		c.FormTimeout = c.DiscoveryTimeout / 2
	}
	if c.RecoveryTimeout <= 0 {
		c.RecoveryTimeout = c.DiscoveryTimeout / 2
	}
	if c.TokenInterval <= 0 {
		c.TokenInterval = time.Millisecond
	}
	if c.TokenLossTimeout <= 0 {
		c.TokenLossTimeout = c.FaultDetectTimeout
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	return c
}

// Validate reports configurations that cannot work.
func (c Config) Validate() error {
	if c.FaultDetectTimeout <= 0 || c.HeartbeatInterval <= 0 || c.DiscoveryTimeout <= 0 {
		return fmt.Errorf("gcs: all Table-1 timeouts must be positive (got fault=%v heartbeat=%v discovery=%v)",
			c.FaultDetectTimeout, c.HeartbeatInterval, c.DiscoveryTimeout)
	}
	if c.HeartbeatInterval >= c.FaultDetectTimeout {
		return fmt.Errorf("gcs: heartbeat interval %v must be below fault-detection timeout %v",
			c.HeartbeatInterval, c.FaultDetectTimeout)
	}
	return nil
}

// joinInterval is how often JOIN announcements repeat during discovery.
func (c Config) joinInterval() time.Duration {
	return c.DiscoveryTimeout / 5
}

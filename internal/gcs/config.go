// Package gcs implements the group-communication substrate Wackamole
// depends on (the paper uses the Spread toolkit, §4.1): a daemon per host
// providing reliable, totally ordered ("Agreed") multicast over a token
// ring, a membership service with distributed heartbeats, fault-detection
// and discovery timeouts, Virtual Synchrony recovery across membership
// changes, and a client-facing process-group layer with lightweight group
// join/leave that does not trigger daemon-level reconfiguration.
//
// The three timeouts of the paper's Table 1 — fault-detection, distributed
// heartbeat, and discovery — are the dominant terms of fail-over latency and
// are exposed directly on Config; DefaultConfig and TunedConfig reproduce
// the two columns of that table.
package gcs

import (
	"fmt"
	"time"
)

// Detector selects the failure-detection regime for ring members.
type Detector uint8

const (
	// DetectorFixed is the paper's fixed fault-detection timeout (Table 1):
	// a member is declared dead after FaultDetectTimeout of silence.
	DetectorFixed Detector = iota
	// DetectorPhi drives detection from phi-accrual suspicion
	// (internal/health): a member is declared dead as soon as its phi
	// crosses the configured threshold. The fixed T timeout stays armed as
	// a fallback floor, so phi detection can fire earlier than T but never
	// later.
	DetectorPhi
)

// String names the detector for configs, flags and status output.
func (det Detector) String() string {
	switch det {
	case DetectorFixed:
		return "fixed"
	case DetectorPhi:
		return "phi"
	default:
		return fmt.Sprintf("detector(%d)", uint8(det))
	}
}

// ParseDetector resolves a detector name from configs and flags.
func ParseDetector(s string) (Detector, error) {
	switch s {
	case "fixed":
		return DetectorFixed, nil
	case "phi":
		return DetectorPhi, nil
	}
	return 0, fmt.Errorf("gcs: unknown detector %q (want fixed or phi)", s)
}

// Config holds the daemon's protocol timing parameters.
type Config struct {
	// FaultDetectTimeout is how long a ring member may stay silent before
	// the daemon assumes a fault and starts reconfiguration (Table 1:
	// "Fault-detection timeout").
	FaultDetectTimeout time.Duration
	// HeartbeatInterval is how often a daemon tells the others it is still
	// in operation (Table 1: "Distributed Heartbeat timeout").
	HeartbeatInterval time.Duration
	// DiscoveryTimeout is how long reconfiguration spends determining the
	// currently reachable set of daemons before forming a new membership
	// (Table 1: "Discovery timeout").
	DiscoveryTimeout time.Duration

	// FormTimeout bounds the wait for the coordinator's FORM message after
	// discovery closes. Zero means DiscoveryTimeout/2.
	FormTimeout time.Duration
	// RecoveryTimeout bounds the Virtual Synchrony flush after a new
	// membership forms. Zero means DiscoveryTimeout/2.
	RecoveryTimeout time.Duration
	// TokenInterval paces token forwarding, bounding the ring's rotation
	// rate. Zero means 1ms.
	TokenInterval time.Duration
	// TokenLossTimeout is how long the ring may show no token or data
	// activity before the daemon reconfigures. Zero means
	// FaultDetectTimeout.
	TokenLossTimeout time.Duration
	// Window is the maximum number of messages a daemon may introduce per
	// token visit. Zero means 64.
	Window int

	// Detector selects how ring-member faults are detected: DetectorFixed
	// (the zero value, the paper's T timeout) or DetectorPhi (adaptive
	// phi-accrual suspicion with the T timeout retained as a floor).
	Detector Detector
	// PhiThreshold is the suspicion level at which the phi detector declares
	// a member faulty. Zero means health.DefaultThreshold. Ignored under
	// DetectorFixed.
	PhiThreshold float64
	// PhiCheckInterval is how often the phi detector re-evaluates per-peer
	// suspicion. Zero means HeartbeatInterval/2. Ignored under
	// DetectorFixed.
	PhiCheckInterval time.Duration
}

// DefaultConfig returns the "Default Spread" column of the paper's Table 1:
// timeouts designed to perform adequately on most networks.
func DefaultConfig() Config {
	return Config{
		FaultDetectTimeout: 5 * time.Second,
		HeartbeatInterval:  2 * time.Second,
		DiscoveryTimeout:   7 * time.Second,
	}
}

// TunedConfig returns the "Tuned Spread" column of the paper's Table 1:
// timeouts adjusted specifically for the Wackamole application on a
// dedicated LAN.
func TunedConfig() Config {
	return Config{
		FaultDetectTimeout: 1 * time.Second,
		HeartbeatInterval:  400 * time.Millisecond,
		DiscoveryTimeout:   1400 * time.Millisecond,
	}
}

// withDefaults fills the derived fields.
func (c Config) withDefaults() Config {
	if c.FormTimeout <= 0 {
		c.FormTimeout = c.DiscoveryTimeout / 2
	}
	if c.RecoveryTimeout <= 0 {
		c.RecoveryTimeout = c.DiscoveryTimeout / 2
	}
	if c.TokenInterval <= 0 {
		c.TokenInterval = time.Millisecond
	}
	if c.TokenLossTimeout <= 0 {
		c.TokenLossTimeout = c.FaultDetectTimeout
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.PhiCheckInterval <= 0 {
		c.PhiCheckInterval = c.HeartbeatInterval / 2
	}
	return c
}

// Validate reports configurations that cannot work.
func (c Config) Validate() error {
	if c.FaultDetectTimeout <= 0 || c.HeartbeatInterval <= 0 || c.DiscoveryTimeout <= 0 {
		return fmt.Errorf("gcs: all Table-1 timeouts must be positive (got fault=%v heartbeat=%v discovery=%v)",
			c.FaultDetectTimeout, c.HeartbeatInterval, c.DiscoveryTimeout)
	}
	if c.HeartbeatInterval >= c.FaultDetectTimeout {
		return fmt.Errorf("gcs: heartbeat interval %v must be below fault-detection timeout %v",
			c.HeartbeatInterval, c.FaultDetectTimeout)
	}
	if c.Detector > DetectorPhi {
		return fmt.Errorf("gcs: unknown detector %d", c.Detector)
	}
	if c.PhiThreshold < 0 {
		return fmt.Errorf("gcs: phi threshold must be non-negative, got %v", c.PhiThreshold)
	}
	return nil
}

// joinInterval is how often JOIN announcements repeat during discovery.
func (c Config) joinInterval() time.Duration {
	return c.DiscoveryTimeout / 5
}

package gcs_test

// Micro-benchmarks of the group-communication substrate: message ordering
// throughput through the token ring, membership formation, and
// fault-recovery latency in simulator wall-time.

import (
	"fmt"
	"testing"
	"time"

	"wackamole/internal/gcs"
)

func BenchmarkAgreedMulticastThroughput(b *testing.B) {
	for _, n := range []int{2, 5, 10} {
		n := n
		b.Run(fmt.Sprintf("daemons=%d", n), func(b *testing.B) {
			c := newClusterB(b, 1, n, gcs.TunedConfig())
			sess, err := c.daemons[0].Connect("w")
			if err != nil {
				b.Fatal(err)
			}
			if err := sess.Join("bench"); err != nil {
				b.Fatal(err)
			}
			delivered := 0
			sess.SetMessageHandler(func(gcs.GroupMember, string, []byte) { delivered++ })
			c.sim.RunFor(5 * time.Second)
			payload := make([]byte, 256)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for sess.Multicast("bench", payload) != nil {
					c.sim.RunFor(10 * time.Millisecond) // drain backpressure
				}
				if i%1000 == 999 {
					c.sim.RunFor(time.Second)
				}
			}
			for delivered < b.N {
				c.sim.RunFor(time.Second)
			}
			b.StopTimer()
			if delivered != b.N {
				b.Fatalf("delivered %d of %d", delivered, b.N)
			}
		})
	}
}

func BenchmarkMembershipFormation(b *testing.B) {
	for _, n := range []int{4, 12} {
		n := n
		b.Run(fmt.Sprintf("daemons=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				c := newClusterB(b, int64(i+1), n, gcs.TunedConfig())
				c.sim.RunFor(5 * time.Second)
				if c.daemons[0].State() != "operational" {
					b.Fatal("cluster never formed")
				}
			}
		})
	}
}

func BenchmarkFaultRecovery(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := newClusterB(b, int64(i+1), 5, gcs.TunedConfig())
		c.sim.RunFor(5 * time.Second)
		c.hosts[4].NICs()[0].SetUp(false)
		c.sim.RunFor(5 * time.Second)
		if _, members, _ := c.daemons[0].Ring(); len(members) != 4 {
			b.Fatalf("recovery incomplete: %d members", len(members))
		}
	}
}

// newClusterB adapts the test-cluster builder for benchmarks.
func newClusterB(b *testing.B, seed int64, n int, cfg gcs.Config) *cluster {
	b.Helper()
	return newCluster(b, seed, n, cfg)
}

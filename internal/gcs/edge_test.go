package gcs_test

import (
	"fmt"
	"testing"
	"time"

	"wackamole/internal/gcs"
	"wackamole/internal/netsim"
	"wackamole/internal/sim"
)

func TestThreeWayPartitionAndFullMerge(t *testing.T) {
	c := newCluster(t, 61, 6, gcs.TunedConfig())
	c.sim.RunFor(5 * time.Second)
	c.sameRing([]int{0, 1, 2, 3, 4, 5}, 6)
	c.seg.Partition(
		[]*netsim.Host{c.hosts[0], c.hosts[1]},
		[]*netsim.Host{c.hosts[2], c.hosts[3]},
		[]*netsim.Host{c.hosts[4], c.hosts[5]})
	c.sim.RunFor(10 * time.Second)
	c.sameRing([]int{0, 1}, 2)
	c.sameRing([]int{2, 3}, 2)
	c.sameRing([]int{4, 5}, 2)
	c.seg.Heal()
	c.sim.RunFor(15 * time.Second)
	c.sameRing([]int{0, 1, 2, 3, 4, 5}, 6)
}

func TestBurstBeyondWindowDeliversAllInOrder(t *testing.T) {
	c := newCluster(t, 67, 3, gcs.TunedConfig())
	recs := make([]*clientRec, 3)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(5 * time.Second)
	const burst = 200 // beyond the default 64-message token window
	for k := 0; k < burst; k++ {
		if err := recs[0].sess.Multicast("wack", []byte(fmt.Sprintf("m%03d", k))); err != nil {
			t.Fatal(err)
		}
	}
	c.sim.RunFor(5 * time.Second)
	for i, r := range recs {
		if len(r.msgs) != burst {
			t.Fatalf("client %d delivered %d of %d", i, len(r.msgs), burst)
		}
		for k, m := range r.msgs {
			if m != fmt.Sprintf("w:m%03d", k) {
				t.Fatalf("client %d out of order at %d: %q", i, k, m)
			}
		}
	}
}

func TestMulticastBeforeFormationIsQueued(t *testing.T) {
	c := newCluster(t, 71, 2, gcs.TunedConfig())
	recs := make([]*clientRec, 2)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	// Cast immediately, before any membership exists.
	if err := recs[0].sess.Multicast("wack", []byte("early")); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(5 * time.Second)
	found := false
	for _, m := range recs[1].msgs {
		if m == "w:early" {
			found = true
		}
	}
	if !found {
		t.Fatalf("pre-formation multicast lost: %v", recs[1].msgs)
	}
}

func TestTwoGroupsAreIsolated(t *testing.T) {
	c := newCluster(t, 73, 2, gcs.TunedConfig())
	a := c.connectClient(0, "w", "red")
	b := c.connectClient(1, "w", "blue")
	c.sim.RunFor(5 * time.Second)
	if err := a.sess.Multicast("red", []byte("r")); err != nil {
		t.Fatal(err)
	}
	if err := b.sess.Multicast("blue", []byte("b")); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(2 * time.Second)
	if len(a.msgs) != 1 || a.msgs[0] != "w:r" {
		t.Fatalf("red client saw %v", a.msgs)
	}
	if len(b.msgs) != 1 || b.msgs[0] != "w:b" {
		t.Fatalf("blue client saw %v", b.msgs)
	}
	av := a.lastView(t)
	if av.Group != "red" || len(av.Members) != 1 {
		t.Fatalf("red view = %+v", av)
	}
}

func TestClientInTwoGroupsSeesBoth(t *testing.T) {
	c := newCluster(t, 79, 2, gcs.TunedConfig())
	a := c.connectClient(0, "w", "red")
	if err := a.sess.Join("blue"); err != nil {
		t.Fatal(err)
	}
	b := c.connectClient(1, "w", "blue")
	c.sim.RunFor(5 * time.Second)
	if err := b.sess.Multicast("blue", []byte("to-blue")); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(2 * time.Second)
	found := false
	for _, m := range a.msgs {
		if m == "w:to-blue" {
			found = true
		}
	}
	if !found {
		t.Fatalf("dual-group client missed blue traffic: %v", a.msgs)
	}
	if !a.sess.Joined("red") || !a.sess.Joined("blue") {
		t.Fatal("Joined() inconsistent")
	}
}

func TestDaemonStopSeversItsSessions(t *testing.T) {
	c := newCluster(t, 83, 2, gcs.TunedConfig())
	recs := make([]*clientRec, 2)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(5 * time.Second)
	c.daemons[1].Stop()
	if !recs[1].disc {
		t.Fatal("session survived daemon stop")
	}
}

func TestReconnectAfterSeverReusesName(t *testing.T) {
	c := newCluster(t, 89, 2, gcs.TunedConfig())
	recs := make([]*clientRec, 2)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(5 * time.Second)
	recs[0].sess.Sever()
	c.sim.RunFor(time.Second)
	sess, err := c.daemons[0].Connect("w")
	if err != nil {
		t.Fatalf("reconnect with the same name: %v", err)
	}
	var views []gcs.View
	sess.SetViewHandler(func(v gcs.View) { views = append(views, v) })
	if err := sess.Join("wack"); err != nil {
		t.Fatal(err)
	}
	c.sim.RunFor(2 * time.Second)
	if len(views) == 0 || len(views[len(views)-1].Members) != 2 {
		t.Fatalf("rejoined member got views %v", views)
	}
}

func TestMembershipHandlerFiresPerInstall(t *testing.T) {
	c := newCluster(t, 97, 3, gcs.TunedConfig())
	installs := 0
	c.daemons[0].SetMembershipHandler(func(_ gcs.RingID, _ []gcs.DaemonID) { installs++ })
	c.sim.RunFor(5 * time.Second)
	if installs != 1 {
		t.Fatalf("boot produced %d installs at daemon 0, want 1", installs)
	}
	c.hosts[2].NICs()[0].SetUp(false)
	c.sim.RunFor(10 * time.Second)
	if installs != 2 {
		t.Fatalf("fault produced %d installs in total, want 2", installs)
	}
}

func TestHighLatencySegmentStillConverges(t *testing.T) {
	s := sim.New(101)
	nw := netsim.New(s)
	segCfg := netsim.SegmentConfig{LatencyMin: 10 * time.Millisecond, LatencyMax: 40 * time.Millisecond}
	seg := nw.NewSegment("slow", segCfg)
	c := &cluster{t: t, sim: s, nw: nw, seg: seg}
	for i := 0; i < 4; i++ {
		c.addDaemon(gcs.TunedConfig(), i)
	}
	c.sim.RunFor(15 * time.Second)
	c.sameRing([]int{0, 1, 2, 3}, 4)
	recs := make([]*clientRec, 4)
	for i := range recs {
		recs[i] = c.connectClient(i, "w", "wack")
	}
	c.sim.RunFor(10 * time.Second)
	for i, r := range recs {
		if len(r.views) == 0 {
			t.Fatalf("client %d got no view on the slow segment", i)
		}
	}
}

func TestIsolatedDaemonFormsSingletonAndRejoins(t *testing.T) {
	c := newCluster(t, 103, 3, gcs.TunedConfig())
	c.sim.RunFor(5 * time.Second)
	c.seg.Partition(
		[]*netsim.Host{c.hosts[0], c.hosts[1]},
		[]*netsim.Host{c.hosts[2]})
	c.sim.RunFor(10 * time.Second)
	c.sameRing([]int{2}, 1)
	c.sameRing([]int{0, 1}, 2)
	c.seg.Heal()
	c.sim.RunFor(15 * time.Second)
	c.sameRing([]int{0, 1, 2}, 3)
}

func TestGracefulDaemonLeaveSkipsFaultDetection(t *testing.T) {
	cfg := gcs.TunedConfig()
	c := newCluster(t, 107, 4, cfg)
	c.sim.RunFor(5 * time.Second)
	c.sameRing([]int{0, 1, 2, 3}, 4)

	var installedAt time.Duration
	c.daemons[0].SetMembershipHandler(func(_ gcs.RingID, members []gcs.DaemonID) {
		if len(members) == 3 && installedAt == 0 {
			installedAt = c.sim.Elapsed()
		}
	})
	leaveAt := c.sim.Elapsed()
	c.daemons[3].Leave()
	c.sim.RunFor(10 * time.Second)
	c.sameRing([]int{0, 1, 2}, 3)
	if installedAt == 0 {
		t.Fatal("survivors never reconfigured")
	}
	// A graceful leave needs only the discovery round — well below the
	// fault-detection path (T + D).
	took := installedAt - leaveAt
	if took > cfg.DiscoveryTimeout+500*time.Millisecond {
		t.Fatalf("graceful daemon leave took %v, want ≈ discovery %v", took, cfg.DiscoveryTimeout)
	}
	if took >= cfg.FaultDetectTimeout+cfg.DiscoveryTimeout {
		t.Fatalf("graceful leave (%v) as slow as fault detection", took)
	}
}

func TestLeaveOnSingletonJustStops(t *testing.T) {
	c := newCluster(t, 109, 1, gcs.TunedConfig())
	c.sim.RunFor(3 * time.Second)
	c.daemons[0].Leave() // must not panic or broadcast to anyone
	if c.daemons[0].State() == "" {
		t.Fatal("state empty after leave")
	}
}

func TestMulticastPayloadLimit(t *testing.T) {
	c := newCluster(t, 113, 1, gcs.TunedConfig())
	sess, err := c.daemons[0].Connect("w")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Multicast("g", make([]byte, gcs.MaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
	if err := sess.Multicast("g", make([]byte, 1024)); err != nil {
		t.Fatal(err)
	}
}

func TestMulticastBackpressure(t *testing.T) {
	c := newCluster(t, 127, 1, gcs.TunedConfig())
	sess, err := c.daemons[0].Connect("w")
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Join("g"); err != nil {
		t.Fatal(err)
	}
	// Without running the simulator, the token never drains the queue.
	overflowed := false
	for i := 0; i < 10000; i++ {
		if err := sess.Multicast("g", []byte("x")); err != nil {
			overflowed = true
			break
		}
	}
	if !overflowed {
		t.Fatal("no backpressure after 10000 undrained multicasts")
	}
	// Draining the ring restores acceptance.
	c.sim.RunFor(30 * time.Second)
	if err := sess.Multicast("g", []byte("x")); err != nil {
		t.Fatalf("multicast still rejected after draining: %v", err)
	}
}

package obs

// hlc.go implements a hybrid logical clock (Kulkarni et al., "Logical
// Physical Clocks and Consistent Snapshots in Globally Distributed
// Databases"). The paper's simulator orders every event on one virtual
// clock, so a single trace ring is already causally consistent; a live
// cluster has N wall clocks and N rings, and nothing relates "node A
// detected the fault" to "node B installed the membership" across them. An
// HLC fixes that with two integers per event: a wall component that tracks
// physical time and a logical counter that breaks ties, merged on every
// message receive so that send happens-before receive regardless of clock
// skew. Timestamps stay close to wall time (within the real skew), so a
// merged cross-node timeline reads like a wall-clock timeline while
// ordering causally related events correctly — and the merge itself
// measures the skew, exported as the obs_hlc_skew_ns gauge.

import (
	"fmt"
	"sync"
	"time"

	"wackamole/internal/metrics"
)

// HLC is one hybrid-logical-clock timestamp. The zero value means
// "unstamped" (the emitting node had no HLC clock armed); comparisons and
// merges treat it as absent, not as the epoch.
type HLC struct {
	// Wall is the physical component: nanoseconds since the Unix epoch,
	// never behind the local wall clock that produced it.
	Wall int64
	// Logical breaks ties between timestamps sharing a Wall value.
	Logical uint32
}

// IsZero reports whether the timestamp is unset.
func (h HLC) IsZero() bool { return h.Wall == 0 && h.Logical == 0 }

// Time converts the wall component back to a time.Time (UTC).
func (h HLC) Time() time.Time { return time.Unix(0, h.Wall).UTC() }

// Compare orders two timestamps: -1, 0 or +1. Ties on (Wall, Logical) are
// possible across nodes; merge layers break them with the node identity.
func (h HLC) Compare(o HLC) int {
	switch {
	case h.Wall < o.Wall:
		return -1
	case h.Wall > o.Wall:
		return 1
	case h.Logical < o.Logical:
		return -1
	case h.Logical > o.Logical:
		return 1
	}
	return 0
}

// String renders the timestamp as wall-ns.logical.
func (h HLC) String() string { return fmt.Sprintf("%d.%d", h.Wall, h.Logical) }

// HLCClock issues and merges HLC timestamps for one node. A nil *HLCClock
// is a valid, disabled clock: Now returns the zero HLC and Observe is a
// no-op, so protocol code can call both unconditionally.
//
// It is safe for concurrent use: the daemon stamps outbound packets from
// its loop goroutine while the tracer stamps events from whichever
// goroutine emits them.
type HLCClock struct {
	mu      sync.Mutex
	now     func() time.Time
	node    string
	last    HLC
	skew    *metrics.Gauge
	maxSkew int64 // largest |remote wall - local wall| observed, ns
}

// NewHLCClock returns a clock for node, reading physical time from now
// (nil means time.Now).
func NewHLCClock(now func() time.Time, node string) *HLCClock {
	if now == nil {
		now = time.Now
	}
	return &HLCClock{now: now, node: node}
}

// Node returns the identity the clock was built with.
func (c *HLCClock) Node() string {
	if c == nil {
		return ""
	}
	return c.node
}

// SetMetrics registers the obs_hlc_skew_ns gauge (signed: positive means
// the remote clock ran ahead of ours at the last merge) on r. Nil r
// disables the gauge.
func (c *HLCClock) SetMetrics(r *metrics.Registry) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.skew = r.Gauge("obs_hlc_skew_ns",
		"wall-clock skew observed at the last HLC merge: remote wall minus local wall, nanoseconds",
		metrics.L("node", c.node))
	c.mu.Unlock()
}

// Now issues the next local timestamp: wall time if it advanced past the
// last issued timestamp, otherwise the last wall value with the logical
// counter bumped. Successive calls are strictly increasing even if the
// physical clock stalls or steps backwards.
func (c *HLCClock) Now() HLC {
	if c == nil {
		return HLC{}
	}
	c.mu.Lock()
	pt := c.now().UnixNano()
	if pt > c.last.Wall {
		c.last = HLC{Wall: pt}
	} else {
		c.last.Logical++
	}
	out := c.last
	c.mu.Unlock()
	return out
}

// Observe merges a remote timestamp into the clock (the receive half of the
// HLC algorithm) and returns the merged local timestamp. The result is
// strictly after both the clock's previous timestamp and the remote one, so
// every event a node records after receiving a message sorts after the
// events the sender recorded before sending it. Zero remote timestamps
// (unstamped senders) only advance the local clock.
func (c *HLCClock) Observe(remote HLC) HLC {
	if c == nil {
		return HLC{}
	}
	if remote.IsZero() {
		return c.Now()
	}
	c.mu.Lock()
	pt := c.now().UnixNano()
	s := remote.Wall - pt
	c.skew.Set(s)
	if s < 0 {
		s = -s
	}
	if s > c.maxSkew {
		c.maxSkew = s
	}
	switch {
	case pt > c.last.Wall && pt > remote.Wall:
		c.last = HLC{Wall: pt}
	case c.last.Wall > remote.Wall:
		c.last.Logical++
	case remote.Wall > c.last.Wall:
		c.last = HLC{Wall: remote.Wall, Logical: remote.Logical + 1}
	default: // c.last.Wall == remote.Wall
		if remote.Logical > c.last.Logical {
			c.last.Logical = remote.Logical
		}
		c.last.Logical++
	}
	out := c.last
	c.mu.Unlock()
	return out
}

// Last returns the most recently issued timestamp without advancing the
// clock.
func (c *HLCClock) Last() HLC {
	if c == nil {
		return HLC{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// MaxSkew reports the largest absolute wall-clock skew seen across all
// merges (0 until the first stamped remote message arrives).
func (c *HLCClock) MaxSkew() time.Duration {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.maxSkew)
}

package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"wackamole/internal/metrics"
)

func newTestRecorder(t *testing.T, tr *Tracer, cfg FlightConfig) *FlightRecorder {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Node == "" {
		cfg.Node = "127.0.0.1:4803"
	}
	cfg.Tracer = tr
	return NewFlightRecorder(cfg)
}

func TestFlightDumpBundleContents(t *testing.T) {
	tr := New(64, nil)
	clk := NewHLCClock(nil, "127.0.0.1:4803")
	tr.SetHLC(clk)
	tr.Emit(Event{Source: SourceGCS, Kind: KindGatherEnter, Node: "127.0.0.1:4803", Detail: "boot"})
	tr.Emit(Event{Source: SourceGCS, Kind: KindInstall, Node: "127.0.0.1:4803"})

	reg := metrics.New()
	reg.Counter("test_total", "test counter").Add(7)
	f := newTestRecorder(t, tr, FlightConfig{
		Metrics:  func() map[string]uint64 { return map[string]uint64{"legacy_total": 3} },
		Registry: reg,
		Config:   "bind 127.0.0.1:4803\n",
	})
	f.RecordView("127.0.0.1:4803/1", []string{"a", "b"})

	dir, err := f.Dump("test")
	if err != nil {
		t.Fatal(err)
	}

	var man FlightManifest
	b, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &man); err != nil {
		t.Fatal(err)
	}
	if man.Node != "127.0.0.1:4803" || man.Seq != 1 || man.Reason != "test" {
		t.Fatalf("manifest: %+v", man)
	}
	if man.Events != 2 || man.Views != 1 {
		t.Fatalf("manifest counts: %+v", man)
	}
	if man.HLCWall == 0 {
		t.Fatal("manifest missing HLC state")
	}
	for _, file := range []string{BundleTrace, BundleMetrics, BundleViews, BundleConfig} {
		if _, err := os.Stat(filepath.Join(dir, file)); err != nil {
			t.Fatalf("bundle missing %s: %v", file, err)
		}
	}

	// Trace round-trips with HLC stamps intact.
	fh, err := os.Open(filepath.Join(dir, BundleTrace))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	var evs []Event
	dec := json.NewDecoder(fh)
	for dec.More() {
		var ev Event
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}
	if len(evs) != 2 || evs[0].Kind != KindGatherEnter || evs[0].HLC.IsZero() {
		t.Fatalf("trace contents: %+v", evs)
	}

	// Metrics file carries both generations.
	mb, err := os.ReadFile(filepath.Join(dir, BundleMetrics))
	if err != nil {
		t.Fatal(err)
	}
	if s := string(mb); !contains(s, "legacy_total 3") || !contains(s, "test_total 7") {
		t.Fatalf("metrics.prom contents:\n%s", s)
	}

	// No temporary directories left behind.
	entries, err := os.ReadDir(filepath.Dir(dir))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != filepath.Base(dir) {
			t.Fatalf("stray entry %s in bundle dir", e.Name())
		}
	}
}

// TestFlightConcurrentWritersAndDumps is the -race coverage the recorder
// needs: trace emission, view recording and dump triggers all racing.
func TestFlightConcurrentWritersAndDumps(t *testing.T) {
	tr := New(256, nil)
	tr.SetHLC(NewHLCClock(nil, "n1"))
	f := newTestRecorder(t, tr, FlightConfig{Node: "n1", MaxViews: 8, MaxBundles: 64})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Emit(Event{Source: SourceGCS, Kind: KindTokenPass, Node: "n1"})
				f.RecordView(fmt.Sprintf("ring-%d-%d", g, i), []string{"n1", "n2"})
			}
		}(g)
	}
	dumps := make([]string, 3)
	for d := 0; d < 3; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			dir, err := f.Dump(fmt.Sprintf("concurrent-%d", d))
			if err != nil {
				t.Errorf("dump %d: %v", d, err)
				return
			}
			dumps[d] = dir
		}(d)
	}
	wg.Wait()

	seen := map[string]bool{}
	for _, dir := range dumps {
		if dir == "" || seen[dir] {
			t.Fatalf("dumps not distinct: %v", dumps)
		}
		seen[dir] = true
		if _, err := os.Stat(filepath.Join(dir, ManifestName)); err != nil {
			t.Fatalf("bundle %s incomplete: %v", dir, err)
		}
	}
	if got := len(f.Views()); got != 8 {
		t.Fatalf("view history not bounded: %d entries, want 8", got)
	}
}

func TestFlightPruneKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	f := newTestRecorder(t, nil, FlightConfig{Dir: dir, Node: "n1", MaxBundles: 2})
	for i := 0; i < 5; i++ {
		if _, err := f.Dump("prune-test"); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 || names[0] != "n1-0004" || names[1] != "n1-0005" {
		t.Fatalf("prune kept %v, want newest two", names)
	}
}

func TestFlightInterruptionTrigger(t *testing.T) {
	base := time.Unix(100, 0)
	now := base
	var mu sync.Mutex
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	tr := New(64, clock)
	dir := t.TempDir()
	f := newTestRecorder(t, tr, FlightConfig{
		Dir: dir, Node: "n1",
		InterruptionThreshold: time.Second,
		Now:                   clock,
	})

	// Fast reconfiguration: no dump.
	tr.Emit(Event{Source: SourceGCS, Kind: KindGatherEnter, Node: "n1"})
	mu.Lock()
	now = base.Add(100 * time.Millisecond)
	mu.Unlock()
	f.RecordView("r1", []string{"n1"})

	// Slow reconfiguration: dump fires.
	tr.Emit(Event{Source: SourceGCS, Kind: KindGatherEnter, Node: "n1"})
	mu.Lock()
	now = base.Add(5 * time.Second)
	mu.Unlock()
	f.RecordView("r2", []string{"n1"})

	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, _ := os.ReadDir(dir)
		if len(entries) == 1 {
			var man FlightManifest
			b, err := os.ReadFile(filepath.Join(dir, entries[0].Name(), ManifestName))
			if err == nil {
				if json.Unmarshal(b, &man) != nil || !contains(man.Reason, "interruption") {
					t.Fatalf("unexpected manifest: %+v", man)
				}
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("interruption trigger never dumped")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFlightRestartSkipsExistingBundles pins the restart story: a new
// recorder's sequence starts at 1, but bundles a previous incarnation left
// on disk must not be overwritten or collide.
func TestFlightRestartSkipsExistingBundles(t *testing.T) {
	dir := t.TempDir()
	first := newTestRecorder(t, nil, FlightConfig{Dir: dir, Node: "n1"})
	for i := 0; i < 2; i++ {
		if _, err := first.Dump("before-restart"); err != nil {
			t.Fatal(err)
		}
	}
	second := newTestRecorder(t, nil, FlightConfig{Dir: dir, Node: "n1"})
	bdir, err := second.Dump("after-restart")
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(bdir) != "n1-0003" {
		t.Fatalf("restarted recorder dumped %s, want n1-0003", filepath.Base(bdir))
	}
}

func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.RecordView("r", nil)
	if dir, err := f.Dump("x"); dir != "" || err != nil {
		t.Fatalf("nil recorder Dump = %q, %v", dir, err)
	}
	if f.Views() != nil {
		t.Fatal("nil recorder Views must be nil")
	}
}

package obs

import (
	"encoding/json"
	"io"
	"time"
)

// eventJSON is the wire shape of one event: flat, string-typed enums,
// RFC 3339 timestamps, empty fields elided. One object per line makes the
// stream greppable and ingestible by any NDJSON tooling.
type eventJSON struct {
	Seq        uint64 `json:"seq"`
	At         string `json:"at"`
	HLCWall    int64  `json:"hlc_wall,omitempty"`
	HLCLogical uint32 `json:"hlc_logical,omitempty"`
	Source     string `json:"source"`
	Kind       string `json:"kind"`
	Node       string `json:"node,omitempty"`
	Group      string `json:"group,omitempty"`
	Addr       string `json:"addr,omitempty"`
	Detail     string `json:"detail,omitempty"`
}

// MarshalJSON renders the event in its NDJSON wire shape.
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(eventJSON{
		Seq:        e.Seq,
		At:         e.At.Format(time.RFC3339Nano),
		HLCWall:    e.HLC.Wall,
		HLCLogical: e.HLC.Logical,
		Source:     e.Source.String(),
		Kind:       e.Kind.String(),
		Node:       e.Node,
		Group:      e.Group,
		Addr:       e.Addr,
		Detail:     e.Detail,
	})
}

// UnmarshalJSON parses the wire shape back; enum strings it does not
// recognize decode to zero values rather than failing, so newer traces stay
// readable by older analyzers.
func (e *Event) UnmarshalJSON(data []byte) error {
	var w eventJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	at, err := time.Parse(time.RFC3339Nano, w.At)
	if err != nil {
		return err
	}
	*e = Event{
		Seq: w.Seq, At: at,
		HLC:  HLC{Wall: w.HLCWall, Logical: w.HLCLogical},
		Node: w.Node, Group: w.Group, Addr: w.Addr, Detail: w.Detail,
	}
	for s := SourceGCS; s <= SourceHealth; s++ {
		if s.String() == w.Source {
			e.Source = s
		}
	}
	for k := KindHeartbeatMiss; k <= KindPhiClear; k++ {
		if k.String() == w.Kind {
			e.Kind = k
		}
	}
	return nil
}

// WriteNDJSON writes the events as newline-delimited JSON, one event per
// line.
func WriteNDJSON(w io.Writer, events []Event) error {
	enc := json.NewEncoder(w)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

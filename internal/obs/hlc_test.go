package obs

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"wackamole/internal/metrics"
)

// fakeWall is a settable wall clock for driving HLC edge cases.
type fakeWall struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeWall) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeWall) set(t time.Time) {
	f.mu.Lock()
	f.t = t
	f.mu.Unlock()
}

func hat(ns int64) time.Time { return time.Unix(0, ns) }

func TestHLCNowStrictlyIncreasing(t *testing.T) {
	w := &fakeWall{t: hat(1000)}
	c := NewHLCClock(w.now, "a")

	prev := c.Now()
	// Stalled clock: logical counter must carry monotonicity.
	for i := 0; i < 100; i++ {
		ts := c.Now()
		if ts.Compare(prev) <= 0 {
			t.Fatalf("Now not strictly increasing: %v then %v", prev, ts)
		}
		prev = ts
	}
	// Clock stepping backwards must not regress timestamps.
	w.set(hat(500))
	ts := c.Now()
	if ts.Compare(prev) <= 0 {
		t.Fatalf("Now regressed after wall step back: %v then %v", prev, ts)
	}
	// Advancing wall time resets the logical counter.
	w.set(hat(5000))
	ts = c.Now()
	if ts.Wall != 5000 || ts.Logical != 0 {
		t.Fatalf("advanced wall should yield {5000,0}, got %v", ts)
	}
}

func TestHLCObserveMergesAheadRemote(t *testing.T) {
	w := &fakeWall{t: hat(1000)}
	c := NewHLCClock(w.now, "a")

	// Remote runs 9µs ahead: merged timestamp adopts the remote wall and
	// advances past the remote logical component.
	merged := c.Observe(HLC{Wall: 10000, Logical: 7})
	if merged.Wall != 10000 || merged.Logical != 8 {
		t.Fatalf("merge with ahead remote: got %v, want {10000,8}", merged)
	}
	// Local events after the receive still sort after it.
	next := c.Now()
	if next.Compare(merged) <= 0 {
		t.Fatalf("Now after Observe not increasing: %v then %v", merged, next)
	}
	if got := c.MaxSkew(); got != 9000*time.Nanosecond {
		t.Fatalf("MaxSkew = %v, want 9µs", got)
	}
}

func TestHLCObserveBehindRemoteAndEqualWalls(t *testing.T) {
	w := &fakeWall{t: hat(10000)}
	c := NewHLCClock(w.now, "a")
	first := c.Now() // {10000, 0}

	// Remote behind local: local wall dominates, logical bumps.
	w.set(hat(10000)) // stalled
	merged := c.Observe(HLC{Wall: 2000, Logical: 90})
	if merged.Wall != 10000 || merged.Logical != first.Logical+1 {
		t.Fatalf("merge with behind remote: got %v", merged)
	}

	// Equal walls: logical is max(local, remote)+1.
	merged = c.Observe(HLC{Wall: 10000, Logical: 40})
	if merged.Wall != 10000 || merged.Logical != 41 {
		t.Fatalf("merge with equal walls: got %v, want {10000,41}", merged)
	}

	// Physical clock ahead of both: wall wins, logical resets.
	w.set(hat(99000))
	merged = c.Observe(HLC{Wall: 10000, Logical: 80})
	if merged.Wall != 99000 || merged.Logical != 0 {
		t.Fatalf("merge with fresh wall: got %v, want {99000,0}", merged)
	}
}

func TestHLCObserveZeroRemoteOnlyAdvances(t *testing.T) {
	w := &fakeWall{t: hat(1000)}
	c := NewHLCClock(w.now, "a")
	first := c.Now()
	merged := c.Observe(HLC{})
	if merged.Compare(first) <= 0 {
		t.Fatalf("Observe(zero) must still advance: %v then %v", first, merged)
	}
	if c.MaxSkew() != 0 {
		t.Fatalf("zero remote must not register skew, got %v", c.MaxSkew())
	}
}

// TestHLCCausalOrderAcrossSkewedNodes is the property the forensics layer
// stands on: with node B's wall clock far behind node A's, a message-passing
// chain A→B→A still yields HLC timestamps that order send before receive.
func TestHLCCausalOrderAcrossSkewedNodes(t *testing.T) {
	wa := &fakeWall{t: hat(1_000_000)}
	wb := &fakeWall{t: hat(10)} // ~1ms behind
	a := NewHLCClock(wa.now, "a")
	b := NewHLCClock(wb.now, "b")

	send1 := a.Now()
	recv1 := b.Observe(send1)
	evB := b.Now() // an event B records after the receive
	send2 := b.Now()
	recv2 := a.Observe(send2)

	chain := []HLC{send1, recv1, evB, send2, recv2}
	for i := 1; i < len(chain); i++ {
		if chain[i].Compare(chain[i-1]) <= 0 {
			t.Fatalf("causal chain out of order at %d: %v then %v", i, chain[i-1], chain[i])
		}
	}
	// B's merged timestamps stay near A's wall time, not B's skewed one.
	if recv1.Wall < send1.Wall {
		t.Fatalf("receive wall %d fell behind send wall %d", recv1.Wall, send1.Wall)
	}
	if b.MaxSkew() == 0 {
		t.Fatal("skewed merge should have recorded nonzero MaxSkew")
	}
}

// TestHLCTieBreakByNode verifies the merge layers' total order is
// deterministic: identical (wall, logical) pairs from different nodes are
// ordered by node identity, so repeated merges of the same bundles agree.
func TestHLCTieBreakByNode(t *testing.T) {
	type stamped struct {
		ts   HLC
		node string
	}
	less := func(a, b stamped) bool {
		if c := a.ts.Compare(b.ts); c != 0 {
			return c < 0
		}
		return a.node < b.node
	}
	events := []stamped{
		{HLC{Wall: 5, Logical: 1}, "c"},
		{HLC{Wall: 5, Logical: 1}, "a"},
		{HLC{Wall: 5, Logical: 1}, "b"},
		{HLC{Wall: 5, Logical: 0}, "z"},
	}
	for trial := 0; trial < 10; trial++ {
		perm := append([]stamped(nil), events...)
		// Rotate to vary input order deterministically.
		perm = append(perm[trial%len(perm):], perm[:trial%len(perm)]...)
		sort.SliceStable(perm, func(i, j int) bool { return less(perm[i], perm[j]) })
		got := ""
		for _, e := range perm {
			got += e.node
		}
		if got != "zabc" {
			t.Fatalf("trial %d: order %q, want zabc", trial, got)
		}
	}
}

func TestHLCConcurrentUse(t *testing.T) {
	c := NewHLCClock(nil, "a")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			prev := HLC{}
			for i := 0; i < 500; i++ {
				var ts HLC
				if g%2 == 0 {
					ts = c.Now()
				} else {
					ts = c.Observe(HLC{Wall: int64(1000 + i), Logical: uint32(g)})
				}
				if ts.Compare(prev) <= 0 {
					t.Errorf("goroutine %d: non-increasing %v then %v", g, prev, ts)
					return
				}
				prev = ts
			}
		}(g)
	}
	wg.Wait()
}

func TestHLCNilSafe(t *testing.T) {
	var c *HLCClock
	if !c.Now().IsZero() || !c.Observe(HLC{Wall: 1}).IsZero() || !c.Last().IsZero() {
		t.Fatal("nil clock must issue zero timestamps")
	}
	if c.MaxSkew() != 0 || c.Node() != "" {
		t.Fatal("nil clock accessors must return zeros")
	}
	c.SetMetrics(nil) // must not panic
}

func TestHLCSkewGauge(t *testing.T) {
	w := &fakeWall{t: hat(1000)}
	c := NewHLCClock(w.now, "n1")
	reg := metrics.New()
	c.SetMetrics(reg)
	c.Observe(HLC{Wall: 4000, Logical: 0})
	snap := reg.Snapshot()
	fam := snap.Family("obs_hlc_skew_ns")
	if fam == nil || len(fam.Series) != 1 {
		t.Fatalf("obs_hlc_skew_ns not exported: %+v", fam)
	}
	if got := fam.Series[0].Value; got != 3000 {
		t.Fatalf("skew gauge = %v, want 3000", got)
	}
}

func TestTracerStampsHLC(t *testing.T) {
	w := &fakeWall{t: hat(777)}
	tr := New(16, w.now)
	c := NewHLCClock(w.now, "a")
	tr.SetHLC(c)
	tr.Emit(Event{Source: SourceGCS, Kind: KindTokenPass, Node: "a"})
	tr.Emit(Event{Source: SourceGCS, Kind: KindTokenPass, Node: "a"})
	evs := tr.Snapshot()
	if len(evs) != 2 {
		t.Fatalf("want 2 events, got %d", len(evs))
	}
	if evs[0].HLC.IsZero() || evs[1].HLC.IsZero() {
		t.Fatalf("events not HLC-stamped: %v %v", evs[0].HLC, evs[1].HLC)
	}
	if evs[1].HLC.Compare(evs[0].HLC) <= 0 {
		t.Fatalf("stamps not increasing: %v then %v", evs[0].HLC, evs[1].HLC)
	}
	if tr.HLC() != c {
		t.Fatal("Tracer.HLC accessor mismatch")
	}
}

func TestEventHLCJSONRoundTrip(t *testing.T) {
	in := Event{
		Seq: 3, At: time.Unix(0, 42).UTC(),
		HLC:    HLC{Wall: 123456789, Logical: 7},
		Source: SourceCore, Kind: KindAcquire, Node: "n1", Group: "g", Addr: "10.0.0.1",
	}
	b, err := in.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var out Event
	if err := out.UnmarshalJSON(b); err != nil {
		t.Fatal(err)
	}
	if out.HLC != in.HLC {
		t.Fatalf("HLC round trip: got %v, want %v", out.HLC, in.HLC)
	}
	// Unstamped events stay unstamped (and elide the fields entirely).
	plain := Event{Seq: 1, At: time.Unix(0, 1).UTC(), Source: SourceGCS, Kind: KindTokenPass}
	b, err = plain.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if s := string(b); contains(s, "hlc_wall") || contains(s, "hlc_logical") {
		t.Fatalf("zero HLC should be elided, got %s", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestHLCString(t *testing.T) {
	if got, want := (HLC{Wall: 12, Logical: 3}).String(), "12.3"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if got := fmt.Sprint(HLC{}); got != "0.0" {
		t.Fatalf("zero String = %q", got)
	}
}

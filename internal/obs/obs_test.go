package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedNow returns a deterministic, strictly increasing clock for tests.
func fixedNow() func() time.Time {
	t := time.Date(2003, 6, 22, 0, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func TestEmitAssignsSequenceAndTimestamp(t *testing.T) {
	tr := New(8, fixedNow())
	tr.Emit(Event{Source: SourceGCS, Kind: KindInstall, Node: "d1"})
	tr.Emit(Event{Source: SourceCore, Kind: KindAcquire, Node: "d2", Addr: "10.0.0.1"})
	got := tr.Snapshot()
	if len(got) != 2 {
		t.Fatalf("snapshot length = %d, want 2", len(got))
	}
	if got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("seqs = %d,%d, want 1,2", got[0].Seq, got[1].Seq)
	}
	if got[0].At.IsZero() || !got[1].At.After(got[0].At) {
		t.Fatalf("timestamps not stamped monotonically: %v, %v", got[0].At, got[1].At)
	}
	// A pre-stamped timestamp is preserved.
	at := time.Date(2003, 6, 22, 1, 0, 0, 0, time.UTC)
	tr.Emit(Event{Kind: KindFault, At: at})
	if got := tr.Snapshot(); !got[2].At.Equal(at) {
		t.Fatalf("explicit At overwritten: %v", got[2].At)
	}
}

func TestRingWraparoundKeepsNewestInOrder(t *testing.T) {
	const capacity, emitted = 4, 10
	tr := New(capacity, fixedNow())
	for i := 0; i < emitted; i++ {
		tr.Emit(Event{Kind: KindTokenPass, Detail: fmt.Sprintf("e%d", i)})
	}
	if tr.Len() != capacity {
		t.Fatalf("Len = %d, want %d", tr.Len(), capacity)
	}
	if tr.Emitted() != emitted {
		t.Fatalf("Emitted = %d, want %d", tr.Emitted(), emitted)
	}
	if tr.Dropped() != emitted-capacity {
		t.Fatalf("Dropped = %d, want %d", tr.Dropped(), emitted-capacity)
	}
	got := tr.Snapshot()
	for i, e := range got {
		wantSeq := uint64(emitted - capacity + i + 1)
		if e.Seq != wantSeq {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (oldest-first after wrap)", i, e.Seq, wantSeq)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Emitted() != 0 || len(tr.Snapshot()) != 0 {
		t.Fatalf("Reset left state: len=%d emitted=%d", tr.Len(), tr.Emitted())
	}
}

func TestNilTracerIsDisabledNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.SetNow(time.Now) // must not panic
	tr.Reset()
	tr.Emit(Event{Kind: KindFault})
	if tr.Snapshot() != nil || tr.Len() != 0 || tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded something")
	}
	// The disabled hot path must not allocate: protocol code calls Emit
	// unconditionally on token passes and frame transmissions.
	ev := Event{Source: SourceGCS, Kind: KindTokenPass, Node: "d1"}
	if allocs := testing.AllocsPerRun(100, func() { tr.Emit(ev) }); allocs != 0 {
		t.Fatalf("disabled Emit allocates %v per call, want 0", allocs)
	}
}

func TestConcurrentEmitAndSnapshot(t *testing.T) {
	const goroutines, perG = 8, 500
	tr := New(goroutines*perG, nil)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				tr.Emit(Event{Kind: KindTokenPass, Node: fmt.Sprintf("d%d", g)})
			}
		}(g)
	}
	// Snapshot and counter reads race with the emitters; -race checks them.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = tr.Snapshot()
			_ = tr.Len()
			_ = tr.Dropped()
		}
	}()
	wg.Wait()
	<-done
	if got := tr.Emitted(); got != goroutines*perG {
		t.Fatalf("Emitted = %d, want %d", got, goroutines*perG)
	}
	seen := map[uint64]bool{}
	for _, e := range tr.Snapshot() {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
	if len(seen) != goroutines*perG {
		t.Fatalf("snapshot holds %d distinct seqs, want %d", len(seen), goroutines*perG)
	}
}

func TestDefaultCapacityAndClock(t *testing.T) {
	tr := New(0, nil)
	tr.Emit(Event{Kind: KindFault})
	got := tr.Snapshot()
	if len(got) != 1 || got[0].At.IsZero() {
		t.Fatalf("defaulted tracer did not stamp wall time: %+v", got)
	}
	for i := 0; i < DefaultCapacity; i++ {
		tr.Emit(Event{Kind: KindTokenPass})
	}
	if tr.Len() != DefaultCapacity || tr.Dropped() != 1 {
		t.Fatalf("default capacity ring: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	events := []Event{
		{Seq: 1, At: time.Date(2003, 6, 22, 0, 0, 1, 500, time.UTC),
			Source: SourceNet, Kind: KindFault, Node: "server2", Detail: "nic0"},
		{Seq: 2, At: time.Date(2003, 6, 22, 0, 0, 2, 0, time.UTC),
			Source: SourceCore, Kind: KindAcquire, Node: "d3/wackd", Group: "web1", Addr: "10.0.0.100"},
	}
	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("NDJSON lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	for i, line := range lines {
		var got Event
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got != events[i] {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, events[i])
		}
	}
	// Empty optional fields are elided from the wire shape.
	if strings.Contains(lines[0], "addr") || strings.Contains(lines[0], "group") {
		t.Fatalf("empty fields not elided: %s", lines[0])
	}
}

func TestUnmarshalUnknownEnumsDecodeToZero(t *testing.T) {
	var e Event
	line := `{"seq":9,"at":"2003-06-22T00:00:00Z","source":"quantum","kind":"teleport","node":"d1"}`
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatal(err)
	}
	if e.Source != 0 || e.Kind != 0 {
		t.Fatalf("unknown enums decoded to %v/%v, want zero values", e.Source, e.Kind)
	}
	if e.Seq != 9 || e.Node != "d1" {
		t.Fatalf("known fields lost: %+v", e)
	}
	if err := json.Unmarshal([]byte(`{"seq":1,"at":"not-a-time"}`), &e); err == nil {
		t.Fatal("bad timestamp accepted")
	}
}

func TestEnumStringsAreDistinct(t *testing.T) {
	seen := map[string]Kind{}
	for k := KindHeartbeatMiss; k <= KindWatchdogFire; k++ {
		s := k.String()
		if strings.HasPrefix(s, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("kinds %d and %d share the name %q", prev, k, s)
		}
		seen[s] = k
	}
	if Source(99).String() == SourceGCS.String() {
		t.Fatal("out-of-range source collides with a named one")
	}
}

package obs

// flight.go is the per-daemon black-box flight recorder. The paper measures
// fail-over from the outside (a probe gap); when a live cluster misbehaves
// there is no simulator to re-run, so each daemon keeps enough recent
// evidence in memory — the trace ring, the metrics surface, a bounded
// membership history, the effective config — to explain itself after the
// fact. On a trigger (invariant trip, interruption above threshold, watchdog
// fire, SIGQUIT, `wackactl dump`) the recorder spills all of it atomically
// into one bundle directory that cmd/wackrec can merge with the other nodes'
// bundles into a causally ordered cluster timeline.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"wackamole/internal/metrics"
)

// ManifestName is the file every bundle directory carries; bundle scanners
// (cmd/wackrec) identify bundles by it.
const ManifestName = "manifest.json"

// Bundle file names. The trace is the ring tail as NDJSON, the metrics are
// the full /metrics surface, views are the bounded membership history,
// config is the effective daemon configuration verbatim.
const (
	BundleTrace   = "trace.ndjson"
	BundleMetrics = "metrics.prom"
	BundleViews   = "views.json"
	BundleConfig  = "config.conf"
	BundleHeap    = "heap.pprof"
)

// FlightConfig configures one recorder.
type FlightConfig struct {
	// Dir is the directory bundles are written under; it is created on the
	// first dump.
	Dir string
	// Node is the daemon identity stamped into manifests and used (sanitized)
	// in bundle directory names.
	Node string
	// Tracer supplies the trace tail and the HLC clock state; nil yields
	// bundles with an empty trace.
	Tracer *Tracer
	// Metrics supplies the legacy counter map; Registry the typed families.
	// Both may be nil.
	Metrics  MetricsFunc
	Registry *metrics.Registry
	// Config is the effective configuration text written verbatim into the
	// bundle.
	Config string
	// MaxViews bounds the in-memory membership history (default 128).
	MaxViews int
	// InterruptionThreshold arms the automatic trigger: when a recorded
	// membership install lands more than this long after the discovery that
	// produced it (per the trace), the recorder dumps on its own. Zero
	// disables the trigger.
	InterruptionThreshold time.Duration
	// Profile includes a heap profile in each bundle.
	Profile bool
	// MaxBundles bounds how many of this node's bundles are kept on disk;
	// older ones are pruned after each dump (default 16).
	MaxBundles int
	// Now is the wall-clock source (default time.Now); tests pin it.
	Now func() time.Time
	// Log receives dump diagnostics; nil discards them.
	Log func(format string, args ...any)
}

// ViewRecord is one entry of the recorded membership history.
type ViewRecord struct {
	At         time.Time `json:"at"`
	HLCWall    int64     `json:"hlc_wall,omitempty"`
	HLCLogical uint32    `json:"hlc_logical,omitempty"`
	Ring       string    `json:"ring"`
	Members    []string  `json:"members"`
}

// FlightManifest describes one spilled bundle.
type FlightManifest struct {
	Node   string    `json:"node"`
	Seq    int       `json:"seq"`
	Reason string    `json:"reason"`
	At     time.Time `json:"at"`
	// HLCWall/HLCLogical are the node's HLC at dump time; zero when no clock
	// was armed.
	HLCWall    int64  `json:"hlc_wall,omitempty"`
	HLCLogical uint32 `json:"hlc_logical,omitempty"`
	// MaxSkewNS is the largest wall-clock skew the node's HLC observed.
	MaxSkewNS int64 `json:"max_skew_ns,omitempty"`
	// Events is how many trace events the bundle holds; EventsDropped how
	// many older ones the ring had already overwritten.
	Events        int      `json:"events"`
	EventsDropped uint64   `json:"events_dropped"`
	Views         int      `json:"views"`
	Files         []string `json:"files"`
}

// FlightRecorder is the black box. A nil *FlightRecorder is a valid,
// disabled recorder: every method is a no-op, so wiring can be
// unconditional. All methods are safe for concurrent use.
type FlightRecorder struct {
	mu    sync.Mutex
	cfg   FlightConfig
	views []ViewRecord
	seq   int
}

// NewFlightRecorder builds a recorder; cfg.Dir and cfg.Node are required.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	if cfg.MaxViews <= 0 {
		cfg.MaxViews = 128
	}
	if cfg.MaxBundles <= 0 {
		cfg.MaxBundles = 16
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &FlightRecorder{cfg: cfg}
}

func (f *FlightRecorder) logf(format string, args ...any) {
	if f.cfg.Log != nil {
		f.cfg.Log(format, args...)
	}
}

// RecordView appends one membership installation to the bounded history and
// evaluates the interruption trigger: if the trace shows this node entered
// discovery more than InterruptionThreshold before this install, the
// failover was slow enough to auto-preserve and the recorder dumps in the
// background.
func (f *FlightRecorder) RecordView(ring string, members []string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	rec := ViewRecord{At: f.cfg.Now(), Ring: ring, Members: append([]string(nil), members...)}
	if ts := f.cfg.Tracer.HLC().Last(); !ts.IsZero() {
		rec.HLCWall, rec.HLCLogical = ts.Wall, ts.Logical
	}
	f.views = append(f.views, rec)
	if len(f.views) > f.cfg.MaxViews {
		f.views = f.views[len(f.views)-f.cfg.MaxViews:]
	}
	threshold := f.cfg.InterruptionThreshold
	f.mu.Unlock()

	if threshold <= 0 {
		return
	}
	if gap, ok := f.lastReconfigGap(rec.At); ok && gap >= threshold {
		// Off the caller's goroutine: RecordView runs on the protocol loop
		// and a dump is file I/O.
		go f.Dump(fmt.Sprintf("interruption:%v", gap.Round(time.Millisecond)))
	}
}

// lastReconfigGap scans the trace tail for the newest discovery entry
// (gather-enter) by this node and returns how long before at it happened.
func (f *FlightRecorder) lastReconfigGap(at time.Time) (time.Duration, bool) {
	evs := f.cfg.Tracer.Snapshot()
	for i := len(evs) - 1; i >= 0; i-- {
		ev := evs[i]
		if ev.Kind == KindGatherEnter && ev.Node == f.cfg.Node {
			return at.Sub(ev.At), true
		}
	}
	return 0, false
}

// Views returns a copy of the recorded membership history.
func (f *FlightRecorder) Views() []ViewRecord {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]ViewRecord(nil), f.views...)
}

// sanitizeNode makes a daemon identity ("127.0.0.1:4803") filesystem-safe.
func sanitizeNode(node string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ':', '/', '\\', ' ':
			return '_'
		}
		return r
	}, node)
}

// Dump spills one bundle and returns its directory. The bundle appears
// atomically: everything is written into a hidden temporary directory that
// is renamed into place only once complete, so a concurrent wackrec scan
// never reads a half-written bundle. Concurrent triggers serialize; each
// gets its own bundle.
func (f *FlightRecorder) Dump(reason string) (string, error) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()

	// Skip over bundle names a previous incarnation of this daemon left
	// behind: after a restart the in-memory sequence starts over, but the
	// directory may still hold the crashed process's bundles.
	f.seq++
	for {
		if _, err := os.Stat(filepath.Join(f.cfg.Dir, fmt.Sprintf("%s-%04d", sanitizeNode(f.cfg.Node), f.seq))); err != nil {
			break
		}
		f.seq++
	}
	man := FlightManifest{
		Node:   f.cfg.Node,
		Seq:    f.seq,
		Reason: reason,
		At:     f.cfg.Now(),
		Views:  len(f.views),
	}
	events := f.cfg.Tracer.Snapshot()
	man.Events = len(events)
	man.EventsDropped = f.cfg.Tracer.Dropped()
	if clk := f.cfg.Tracer.HLC(); clk != nil {
		last := clk.Last()
		man.HLCWall, man.HLCLogical = last.Wall, last.Logical
		man.MaxSkewNS = int64(clk.MaxSkew())
	}

	name := fmt.Sprintf("%s-%04d", sanitizeNode(f.cfg.Node), f.seq)
	final := filepath.Join(f.cfg.Dir, name)
	tmp := filepath.Join(f.cfg.Dir, ".tmp-"+name)
	if err := os.MkdirAll(tmp, 0o755); err != nil {
		f.logf("flight: dump %s: %v", reason, err)
		return "", err
	}
	defer os.RemoveAll(tmp) // no-op after a successful rename

	write := func(file string, fn func(*os.File) error) error {
		fh, err := os.Create(filepath.Join(tmp, file))
		if err != nil {
			return err
		}
		if err := fn(fh); err != nil {
			fh.Close()
			return fmt.Errorf("%s: %w", file, err)
		}
		if err := fh.Close(); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		man.Files = append(man.Files, file)
		return nil
	}

	err := write(BundleTrace, func(fh *os.File) error {
		return WriteNDJSON(fh, events)
	})
	if err == nil {
		err = write(BundleMetrics, func(fh *os.File) error {
			return WriteMetricsProm(fh, f.cfg.Metrics, f.cfg.Registry)
		})
	}
	if err == nil {
		err = write(BundleViews, func(fh *os.File) error {
			enc := json.NewEncoder(fh)
			enc.SetIndent("", "  ")
			views := f.views
			if views == nil {
				views = []ViewRecord{}
			}
			return enc.Encode(views)
		})
	}
	if err == nil && f.cfg.Config != "" {
		err = write(BundleConfig, func(fh *os.File) error {
			_, werr := fh.WriteString(f.cfg.Config)
			return werr
		})
	}
	if err == nil && f.cfg.Profile {
		err = write(BundleHeap, func(fh *os.File) error {
			return pprof.Lookup("heap").WriteTo(fh, 0)
		})
	}
	if err == nil {
		err = write(ManifestName, func(fh *os.File) error {
			enc := json.NewEncoder(fh)
			enc.SetIndent("", "  ")
			return enc.Encode(man)
		})
	}
	if err == nil {
		err = os.Rename(tmp, final)
	}
	if err != nil {
		f.logf("flight: dump %s: %v", reason, err)
		return "", err
	}
	f.logf("flight: dumped bundle %s (%s): %d events, %d views", final, reason, man.Events, man.Views)
	f.pruneLocked()
	return final, nil
}

// pruneLocked deletes this node's oldest bundles beyond MaxBundles.
func (f *FlightRecorder) pruneLocked() {
	prefix := sanitizeNode(f.cfg.Node) + "-"
	entries, err := os.ReadDir(f.cfg.Dir)
	if err != nil {
		return
	}
	var mine []string
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), prefix) {
			mine = append(mine, e.Name())
		}
	}
	if len(mine) <= f.cfg.MaxBundles {
		return
	}
	sort.Strings(mine) // zero-padded seq: lexicographic == chronological
	for _, name := range mine[:len(mine)-f.cfg.MaxBundles] {
		os.RemoveAll(filepath.Join(f.cfg.Dir, name))
	}
}

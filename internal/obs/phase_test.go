package obs

import (
	"testing"
	"time"
)

var phaseEpoch = time.Date(2003, 6, 22, 0, 0, 0, 0, time.UTC)

func at(d time.Duration) time.Time { return phaseEpoch.Add(d) }

// failoverEvents is a miniature but structurally faithful trial trace: a
// fault at t=1s, suspicion at 2s, install at 3s, acquire at 3.5s, with
// warm-up noise before the fault that the analyzer must ignore.
func failoverEvents() []Event {
	return []Event{
		{At: at(100 * time.Millisecond), Kind: KindGatherEnter, Node: "d1", Detail: "boot"},
		{At: at(200 * time.Millisecond), Kind: KindInstall, Node: "d1"},
		{At: at(300 * time.Millisecond), Kind: KindAcquire, Node: "d2/wackd", Addr: "10.0.0.100", Group: "web1"},
		{At: at(1 * time.Second), Kind: KindFault, Node: "server2", Detail: "nic0"},
		{At: at(2 * time.Second), Kind: KindGatherEnter, Node: "d1", Detail: "fault:d2"},
		{At: at(3 * time.Second), Kind: KindInstall, Node: "d1"},
		{At: at(3500 * time.Millisecond), Kind: KindAcquire, Node: "d1/wackd", Addr: "10.0.0.100", Group: "web1"},
	}
}

func TestFailoverBreakdownPartitionsGap(t *testing.T) {
	gapStart, gapEnd := at(1*time.Second), at(4*time.Second)
	b := FailoverBreakdown(failoverEvents(), gapStart, gapEnd, "10.0.0.100")
	want := Breakdown{
		Detection:   1 * time.Second,        // fault 1s -> gather 2s
		Membership:  1 * time.Second,        // gather 2s -> install 3s
		StateSync:   500 * time.Millisecond, // install 3s -> acquire 3.5s
		ARPTakeover: 500 * time.Millisecond, // acquire 3.5s -> gap end 4s
	}
	if b != want {
		t.Fatalf("breakdown = %+v, want %+v", b, want)
	}
	if b.Total() != gapEnd.Sub(gapStart) {
		t.Fatalf("Total = %v, want the gap %v", b.Total(), gapEnd.Sub(gapStart))
	}
}

func TestFailoverBreakdownIgnoresWarmupAcquires(t *testing.T) {
	// The pre-fault acquire of the same address (initial allocation) must
	// not be mistaken for the recovery acquire.
	gapStart, gapEnd := at(1*time.Second), at(4*time.Second)
	b := FailoverBreakdown(failoverEvents(), gapStart, gapEnd, "10.0.0.100")
	if b.StateSync != 500*time.Millisecond {
		t.Fatalf("recovery acquire misattributed: %+v", b)
	}
}

func TestFailoverBreakdownAlwaysSumsToGap(t *testing.T) {
	gapStart, gapEnd := at(1*time.Second), at(4*time.Second)
	cases := map[string][]Event{
		"no events":   nil,
		"only fault":  {{At: at(time.Second), Kind: KindFault}},
		"full trace":  failoverEvents(),
		"late marker": {{At: at(10 * time.Second), Kind: KindGatherEnter, Node: "d1"}},
		"out-of-gap acquire": {
			{At: at(time.Second), Kind: KindFault},
			{At: at(9 * time.Second), Kind: KindAcquire, Node: "d1/wackd", Addr: "10.0.0.100"},
		},
	}
	for name, events := range cases {
		b := FailoverBreakdown(events, gapStart, gapEnd, "10.0.0.100")
		if b.Total() != gapEnd.Sub(gapStart) {
			t.Errorf("%s: Total = %v, want %v (breakdown %+v)", name, b.Total(), gapEnd.Sub(gapStart), b)
		}
		if b.Detection < 0 || b.Membership < 0 || b.StateSync < 0 || b.ARPTakeover < 0 {
			t.Errorf("%s: negative phase: %+v", name, b)
		}
	}
}

func TestFailoverBreakdownMissingMarkersCollapseToZero(t *testing.T) {
	gapStart, gapEnd := at(1*time.Second), at(4*time.Second)
	b := FailoverBreakdown(nil, gapStart, gapEnd, "10.0.0.100")
	if b.Detection != 0 || b.Membership != 0 || b.StateSync != 0 {
		t.Fatalf("missing markers did not collapse: %+v", b)
	}
	if b.ARPTakeover != gapEnd.Sub(gapStart) {
		t.Fatalf("remainder phase = %v, want full gap", b.ARPTakeover)
	}
}

func TestBreakdownJSONUsesSecondsConvention(t *testing.T) {
	b := Breakdown{Detection: 1500 * time.Millisecond, ARPTakeover: 250 * time.Millisecond}
	got, err := b.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"detection_s":1.5,"membership_s":0,"state_sync_s":0,"arp_takeover_s":0.25}`
	if string(got) != want {
		t.Fatalf("json = %s, want %s", got, want)
	}
}

func TestOwnershipTimeline(t *testing.T) {
	events := []Event{
		{At: at(1 * time.Second), Kind: KindAcquire, Node: "d1", Addr: "10.0.0.1"},
		{At: at(2 * time.Second), Kind: KindAcquire, Node: "d2", Addr: "10.0.0.2"},
		// Re-acquire of an address already held is folded into the open span.
		{At: at(3 * time.Second), Kind: KindAcquire, Node: "d1", Addr: "10.0.0.1"},
		{At: at(4 * time.Second), Kind: KindRelease, Node: "d1", Addr: "10.0.0.1"},
		// Transient double ownership during a merge: d3 acquires before d2
		// releases.
		{At: at(5 * time.Second), Kind: KindAcquire, Node: "d3", Addr: "10.0.0.2"},
		{At: at(6 * time.Second), Kind: KindRelease, Node: "d2", Addr: "10.0.0.2"},
		// Release without a matching open span is ignored.
		{At: at(7 * time.Second), Kind: KindRelease, Node: "d9", Addr: "10.0.0.9"},
	}
	tl := OwnershipTimeline(events)
	if len(tl) != 2 {
		t.Fatalf("addresses = %d, want 2 (%v)", len(tl), tl)
	}
	one := tl["10.0.0.1"]
	if len(one) != 1 || one[0].Owner != "d1" || !one[0].From.Equal(at(1*time.Second)) || !one[0].To.Equal(at(4*time.Second)) {
		t.Fatalf("10.0.0.1 spans = %+v", one)
	}
	two := tl["10.0.0.2"]
	if len(two) != 2 {
		t.Fatalf("10.0.0.2 spans = %+v", two)
	}
	if two[0].Owner != "d2" || !two[0].To.Equal(at(6*time.Second)) {
		t.Fatalf("d2 span = %+v", two[0])
	}
	if two[1].Owner != "d3" || !two[1].To.IsZero() {
		t.Fatalf("d3 span should still be open: %+v", two[1])
	}
	if !two[1].From.Before(two[0].To) {
		t.Fatal("merge overlap lost")
	}
}

func TestDaemonOf(t *testing.T) {
	for in, want := range map[string]string{
		"d1/wackd": "d1", "d1": "d1", "": "", "a/b/c": "a",
	} {
		if got := daemonOf(in); got != want {
			t.Fatalf("daemonOf(%q) = %q, want %q", in, got, want)
		}
	}
}

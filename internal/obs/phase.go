package obs

import (
	"encoding/json"
	"sort"
	"strings"
	"time"
)

// phase.go reconstructs the paper's §5 decomposition of an availability
// interruption from a trial's event stream. The client observes one opaque
// gap [gapStart, gapEnd]; the trace marks the protocol instants inside it:
//
//	fault ──▶ gather-enter ──▶ install ──▶ acquire ──▶ first answered probe
//	         (detection)   (membership)  (state sync)   (ARP take-over)
//
// The four phases partition the gap exactly, so they always sum to the
// reported interruption.

// Breakdown is the per-phase decomposition of one availability
// interruption.
type Breakdown struct {
	// Detection: probe gap start until the surviving ring suspects the
	// fault (first gather-enter at or after the fault injection).
	Detection time.Duration
	// Membership: suspicion until the acquiring daemon installs the new
	// membership.
	Membership time.Duration
	// StateSync: membership install until the acquiring engine finishes
	// the STATE_MSG exchange and acquires the orphaned address.
	StateSync time.Duration
	// ARPTakeover: address acquisition until clients observe service again
	// (gratuitous ARP propagation and cache correction, §5.1).
	ARPTakeover time.Duration
}

// Total sums the phases; by construction it equals the measured gap.
func (b Breakdown) Total() time.Duration {
	return b.Detection + b.Membership + b.StateSync + b.ARPTakeover
}

// breakdownJSON is the wire shape of a Breakdown: phases in seconds,
// matching the *_s convention of the experiment layer's JSON rows.
type breakdownJSON struct {
	Detection   float64 `json:"detection_s"`
	Membership  float64 `json:"membership_s"`
	StateSync   float64 `json:"state_sync_s"`
	ARPTakeover float64 `json:"arp_takeover_s"`
}

// MarshalJSON emits the phases in seconds.
func (b Breakdown) MarshalJSON() ([]byte, error) {
	return json.Marshal(breakdownJSON{
		b.Detection.Seconds(), b.Membership.Seconds(), b.StateSync.Seconds(), b.ARPTakeover.Seconds()})
}

// UnmarshalJSON parses the wire shape back (used by offline analyzers
// reading trace streams).
func (b *Breakdown) UnmarshalJSON(data []byte) error {
	var w breakdownJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	*b = Breakdown{sec(w.Detection), sec(w.Membership), sec(w.StateSync), sec(w.ARPTakeover)}
	return nil
}

// daemonOf extracts the daemon id from a core-layer node tag. Core engines
// are tagged with their group-member id "daemon/client" (gcs.GroupMember),
// while gcs events are tagged with the bare daemon id.
func daemonOf(node string) string {
	if i := strings.IndexByte(node, '/'); i >= 0 {
		return node[:i]
	}
	return node
}

// FailoverBreakdown partitions the measured probe gap [gapStart, gapEnd]
// over target into the four fail-over phases. Phase boundaries are taken
// from the event stream and clamped monotonically into the gap, so the
// phases always partition it exactly; a boundary whose marker event is
// missing (e.g. the ring overwrote it) collapses that phase to zero rather
// than failing.
func FailoverBreakdown(events []Event, gapStart, gapEnd time.Time, target string) Breakdown {
	// The injected fault anchors the search: markers before it belong to
	// warm-up noise, not this fail-over.
	var faultAt time.Time
	for _, e := range events {
		if e.Kind == KindFault && !e.At.After(gapEnd) {
			faultAt = e.At
		}
	}
	if faultAt.IsZero() {
		faultAt = gapStart
	}

	// Suspicion: the first daemon to abandon the old ring after the fault.
	var suspectAt time.Time
	for _, e := range events {
		if e.Kind == KindGatherEnter && !e.At.Before(faultAt) {
			suspectAt = e.At
			break
		}
	}

	// Recovery: the first acquisition of the orphaned address after the
	// fault, and the membership install (by the acquiring daemon) that
	// enabled it.
	var acquireAt time.Time
	var acquirer string
	for _, e := range events {
		if e.Kind == KindAcquire && e.Addr == target && !e.At.Before(faultAt) {
			acquireAt = e.At
			acquirer = daemonOf(e.Node)
			break
		}
	}
	var installAt time.Time
	for _, e := range events {
		if e.Kind == KindInstall && daemonOf(e.Node) == acquirer &&
			!e.At.Before(faultAt) && (acquireAt.IsZero() || !e.At.After(acquireAt)) {
			installAt = e.At
		}
	}

	// Clamp the three interior boundaries into [gapStart, gapEnd] and force
	// them monotone; a missing marker inherits the previous boundary,
	// zeroing its phase.
	clamp := func(t, lo time.Time) time.Time {
		if t.Before(lo) {
			return lo
		}
		if t.After(gapEnd) {
			return gapEnd
		}
		return t
	}
	t1 := clamp(suspectAt, gapStart)
	t2 := clamp(installAt, t1)
	t3 := clamp(acquireAt, t2)
	return Breakdown{
		Detection:   t1.Sub(gapStart),
		Membership:  t2.Sub(t1),
		StateSync:   t3.Sub(t2),
		ARPTakeover: gapEnd.Sub(t3),
	}
}

// OwnershipSpan is one interval during which Owner covered an address. A
// zero To means the span was still open at the end of the trace.
type OwnershipSpan struct {
	Owner    string
	From, To time.Time
}

// OwnershipTimeline folds acquire/release events into per-address ownership
// histories, keyed by IP address, spans in chronological order. Overlapping
// spans reproduce the transient multiple-ownership window the protocol
// permits during partition merges (§3.3).
func OwnershipTimeline(events []Event) map[string][]OwnershipSpan {
	type openKey struct{ addr, owner string }
	open := map[openKey]int{} // index into out[addr]
	out := map[string][]OwnershipSpan{}
	for _, e := range events {
		switch e.Kind {
		case KindAcquire:
			k := openKey{e.Addr, e.Node}
			if _, dup := open[k]; dup {
				continue // re-announce of an address already held
			}
			open[k] = len(out[e.Addr])
			out[e.Addr] = append(out[e.Addr], OwnershipSpan{Owner: e.Node, From: e.At})
		case KindRelease:
			k := openKey{e.Addr, e.Node}
			if i, ok := open[k]; ok {
				out[e.Addr][i].To = e.At
				delete(open, k)
			}
		}
	}
	for addr := range out {
		spans := out[addr]
		sort.SliceStable(spans, func(i, j int) bool { return spans[i].From.Before(spans[j].From) })
	}
	return out
}

// TrialTrace bundles one simulated trial's captured events with its
// fail-over phase breakdown; the experiment runner attaches it to the
// trial's Sample when tracing is requested.
type TrialTrace struct {
	Events []Event
	Phases Breakdown
	// GapStart and GapEnd bound the measured interruption and Target names
	// the probed address; offline analyzers (cmd/wacktrace) re-derive Phases
	// from these and cross-check against the reported value.
	GapStart, GapEnd time.Time
	Target           string
}

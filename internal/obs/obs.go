// Package obs is the structured event-tracing layer shared by every
// subsystem in this repository. The paper's headline metric — the
// availability interruption during fail-over (§5, Figure 5, Table 1) — is
// the sum of distinct protocol phases (fault detection, membership settle,
// state exchange, ARP take-over); package obs captures the typed events that
// mark those phase boundaries so a measured interruption can be decomposed
// into an explainable timeline rather than one opaque number.
//
// The Tracer is a bounded ring buffer of typed events. It is deliberately
// cheap: a nil *Tracer is a valid, disabled tracer whose Emit is a
// zero-allocation no-op, so protocol code can call it unconditionally on hot
// paths (token passes, frame drops) without a feature flag. Events carry the
// emitting node's source tag and a timestamp from a pluggable now-function,
// which is virtual time under the simulator and wall time in the real
// daemon.
package obs

import (
	"fmt"
	"sync"
	"time"
)

// Source identifies the subsystem that emitted an event.
type Source uint8

// Event sources.
const (
	// SourceGCS: the group-communication daemon (internal/gcs).
	SourceGCS Source = iota + 1
	// SourceCore: the state-synchronization engine (internal/core).
	SourceCore
	// SourceNet: the simulated network (internal/netsim).
	SourceNet
	// SourceWatchdog: the application health watchdog (internal/watchdog).
	SourceWatchdog
	// SourceFlow: the connection-oriented traffic layer (internal/flow).
	SourceFlow
	// SourceInvariant: the always-on protocol-invariant monitor
	// (internal/invariant).
	SourceInvariant
	// SourceHealth: the live cluster health plane (internal/health).
	SourceHealth
)

// String names the source.
func (s Source) String() string {
	switch s {
	case SourceGCS:
		return "gcs"
	case SourceCore:
		return "core"
	case SourceNet:
		return "net"
	case SourceWatchdog:
		return "watchdog"
	case SourceFlow:
		return "flow"
	case SourceInvariant:
		return "invariant"
	case SourceHealth:
		return "health"
	default:
		return fmt.Sprintf("source(%d)", uint8(s))
	}
}

// Kind classifies an event within its source.
type Kind uint8

// Event kinds. The failover-phase analyzer keys on KindFault,
// KindGatherEnter, KindInstall, KindAcquire and KindARPSpoof; the rest give
// the timeline its explanatory detail.
const (
	// KindHeartbeatMiss: a ring member stayed silent beyond the
	// fault-detection timeout (gcs).
	KindHeartbeatMiss Kind = iota + 1
	// KindTokenPass: the daemon forwarded the ring token to its successor.
	KindTokenPass
	// KindGatherEnter: the daemon entered discovery; Detail is the reason
	// ("fault:<id>", "token-loss", "join:<id>", ...).
	KindGatherEnter
	// KindFormRing: the coordinator formed a new ring.
	KindFormRing
	// KindRecoverEnter: the daemon began the Virtual Synchrony flush.
	KindRecoverEnter
	// KindInstall: the daemon installed a new membership.
	KindInstall

	// KindViewChange: the engine received a VIEW_CHANGE.
	KindViewChange
	// KindStateCast: the engine multicast its STATE_MSG.
	KindStateCast
	// KindStateRecv: the engine consumed a peer's STATE_MSG.
	KindStateRecv
	// KindRunEnter: GATHER completed; the engine entered RUN.
	KindRunEnter
	// KindAcquire: one virtual address was acquired (Addr, Group set).
	KindAcquire
	// KindRelease: one virtual address was released (Addr, Group set).
	KindRelease
	// KindAnnounce: an ownership-change notification was requested (§5.1).
	KindAnnounce
	// KindBalanceCast: the representative multicast a BALANCE/ALLOC message.
	KindBalanceCast
	// KindBalanceApply: a delivered BALANCE/ALLOC message was applied.
	KindBalanceApply

	// KindARPSpoof: an unsolicited ARP reply was injected into the network.
	KindARPSpoof
	// KindFrameDrop: a frame was lost to an explicit loss draw.
	KindFrameDrop
	// KindFault: an injected fault (interface down, host crash).
	KindFault
	// KindRestore: an injected repair (interface up, host restart).
	KindRestore

	// KindWatchdogMiss: a health check failed.
	KindWatchdogMiss
	// KindWatchdogFire: the watchdog threshold was reached and its action ran.
	KindWatchdogFire

	// KindFlowOpen: a connection completed its three-way handshake.
	KindFlowOpen
	// KindFlowReset: a connection was torn down by an RST — the takeover
	// semantics the paper describes for clients of a failed server.
	KindFlowReset
	// KindFlowRetransmit: a segment's retransmission timeout fired.
	KindFlowRetransmit
	// KindFlowClose: a connection closed gracefully (FIN).
	KindFlowClose

	// KindInvariantViolation: a protocol-invariant monitor detected a
	// violated oracle (Group carries the oracle name).
	KindInvariantViolation

	// KindPhiSuspect: the observe-only phi-accrual detector crossed its
	// suspicion threshold against a peer (Detail carries the peer).
	KindPhiSuspect
	// KindPhiClear: a signal from a suspected peer cleared its suspicion.
	KindPhiClear
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindHeartbeatMiss:
		return "heartbeat-miss"
	case KindTokenPass:
		return "token-pass"
	case KindGatherEnter:
		return "gather-enter"
	case KindFormRing:
		return "form-ring"
	case KindRecoverEnter:
		return "recover-enter"
	case KindInstall:
		return "install"
	case KindViewChange:
		return "view-change"
	case KindStateCast:
		return "state-cast"
	case KindStateRecv:
		return "state-recv"
	case KindRunEnter:
		return "run-enter"
	case KindAcquire:
		return "acquire"
	case KindRelease:
		return "release"
	case KindAnnounce:
		return "announce"
	case KindBalanceCast:
		return "balance-cast"
	case KindBalanceApply:
		return "balance-apply"
	case KindARPSpoof:
		return "arp-spoof"
	case KindFrameDrop:
		return "frame-drop"
	case KindFault:
		return "fault"
	case KindRestore:
		return "restore"
	case KindWatchdogMiss:
		return "watchdog-miss"
	case KindWatchdogFire:
		return "watchdog-fire"
	case KindFlowOpen:
		return "flow-open"
	case KindFlowReset:
		return "flow-reset"
	case KindFlowRetransmit:
		return "flow-retransmit"
	case KindFlowClose:
		return "flow-close"
	case KindInvariantViolation:
		return "invariant-violation"
	case KindPhiSuspect:
		return "phi-suspect"
	case KindPhiClear:
		return "phi-clear"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one structured trace event.
type Event struct {
	// Seq is the tracer-assigned emission sequence number (1-based,
	// monotone, counting dropped events too).
	Seq uint64
	// At is the emission instant: virtual time under the simulator, wall
	// time in the real daemon.
	At time.Time
	// HLC is the hybrid-logical-clock stamp, set when the tracer has an
	// HLCClock armed. Zero under the simulator (one virtual clock already
	// orders everything) and on nodes without forensics enabled.
	HLC HLC
	// Source and Kind type the event.
	Source Source
	Kind   Kind
	// Node tags the emitting protocol instance (daemon id, member id or
	// host name).
	Node string
	// Group is the virtual-address group or ring involved, if any.
	Group string
	// Addr is the IP address involved, if any.
	Addr string
	// Detail carries event-specific context (reasons, peers, counts).
	Detail string
}

// String renders the event on one line.
func (e Event) String() string {
	return fmt.Sprintf("%d %s %s/%s node=%s group=%q addr=%q %s",
		e.Seq, e.At.Format("15:04:05.000000"), e.Source, e.Kind, e.Node, e.Group, e.Addr, e.Detail)
}

// DefaultCapacity holds several seconds of a busy cluster's events (token
// passes dominate at roughly one per TokenInterval).
const DefaultCapacity = 1 << 15

// Tracer is a bounded ring buffer of events, safe for concurrent emission
// and snapshotting. A nil *Tracer is a valid, permanently disabled tracer:
// every method is nil-safe and Emit on nil allocates nothing, so call sites
// need no enabled-check for plain literals (only guard work that itself
// allocates, like fmt.Sprintf details, with Enabled).
type Tracer struct {
	mu      sync.Mutex
	now     func() time.Time
	hlc     *HLCClock
	buf     []Event
	start   int // index of the oldest live event
	n       int // live events in buf
	emitted uint64
}

// New returns a tracer holding the last capacity events (<=0 means
// DefaultCapacity), stamping them with now (nil means time.Now).
func New(capacity int, now func() time.Time) *Tracer {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now, buf: make([]Event, capacity)}
}

// SetNow replaces the timestamp source; the simulator harness points it at
// virtual time after the simulation is constructed.
func (t *Tracer) SetNow(now func() time.Time) {
	if t == nil || now == nil {
		return
	}
	t.mu.Lock()
	t.now = now
	t.mu.Unlock()
}

// SetHLC arms hybrid-logical-clock stamping: every subsequently emitted
// event carries c.Now() in its HLC field, making this node's trace mergeable
// into a causally consistent cluster-wide timeline (cmd/wackrec). Nil
// disables stamping.
func (t *Tracer) SetHLC(c *HLCClock) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.hlc = c
	t.mu.Unlock()
}

// HLC returns the armed hybrid-logical-clock, nil when stamping is off.
func (t *Tracer) HLC() *HLCClock {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hlc
}

// Enabled reports whether events are being recorded. Call sites use it to
// skip building event details that would allocate.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records ev, stamping its Seq and (when unset) its At. On a nil
// tracer it is a zero-allocation no-op.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emitted++
	ev.Seq = t.emitted
	if ev.At.IsZero() {
		ev.At = t.now()
	}
	if t.hlc != nil && ev.HLC.IsZero() {
		ev.HLC = t.hlc.Now()
	}
	if t.n < len(t.buf) {
		t.buf[(t.start+t.n)%len(t.buf)] = ev
		t.n++
	} else {
		t.buf[t.start] = ev
		t.start = (t.start + 1) % len(t.buf)
	}
	t.mu.Unlock()
}

// Snapshot returns the buffered events, oldest first.
func (t *Tracer) Snapshot() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Len reports how many events are currently buffered.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Emitted reports the total number of events ever emitted, including those
// the ring has since overwritten.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted
}

// Dropped reports how many emitted events the ring has overwritten.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.emitted - uint64(t.n)
}

// Reset discards all buffered events and counters.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.start, t.n, t.emitted = 0, 0, 0
	t.mu.Unlock()
}

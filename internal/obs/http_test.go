package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"wackamole/internal/metrics"
)

func TestHandlerServesMetricsSorted(t *testing.T) {
	h := NewHandler(func() map[string]uint64 {
		return map[string]uint64{"zeta": 3, "alpha": 1, "mid": 2}
	}, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()
	var got map[string]uint64
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("metrics is not valid JSON: %v\n%s", err, body)
	}
	if got["alpha"] != 1 || got["mid"] != 2 || got["zeta"] != 3 {
		t.Fatalf("metrics = %v", got)
	}
	if strings.Index(body, "alpha") > strings.Index(body, "zeta") {
		t.Fatalf("keys not sorted:\n%s", body)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("content type = %q", ct)
	}
}

func TestHandlerNilCollaborators(t *testing.T) {
	h := NewHandler(nil, nil, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if strings.TrimSpace(rec.Body.String()) != "{\n}" && strings.TrimSpace(rec.Body.String()) != "{}" {
		t.Fatalf("empty metrics = %q", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/events", nil))
	if rec.Body.Len() != 0 {
		t.Fatalf("nil tracer produced events: %q", rec.Body.String())
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path code = %d", rec.Code)
	}
}

// TestHandlerPrometheusDialect pins the upgraded /metrics: with a registry
// installed the endpoint serves text exposition format 0.0.4 carrying both
// the legacy counters (as counter families) and the registry's histograms.
func TestHandlerPrometheusDialect(t *testing.T) {
	r := metrics.New()
	r.Histogram("gcs_token_rotation_seconds", "", metrics.L("node", "d1")).Observe(0.002)
	h := NewHandler(func() map[string]uint64 {
		return map[string]uint64{"gcs_tokens_forwarded": 41}
	}, nil, r)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != metrics.ContentType {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE gcs_tokens_forwarded counter",
		"gcs_tokens_forwarded 41",
		"# TYPE gcs_token_rotation_seconds histogram",
		`gcs_token_rotation_seconds_count{node="d1"} 1`,
		`le="+Inf"`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
}

// TestPrometheusLegacyCollisionsAndGauges pins two exposition rules: a
// legacy key that collides with a registry family name (or a histogram's
// derived _bucket/_sum/_count names) is dropped so no duplicate TYPE or
// sample lines reach a strict parser, and level-like legacy keys are typed
// gauge rather than counter.
func TestPrometheusLegacyCollisionsAndGauges(t *testing.T) {
	r := metrics.New()
	r.Counter("gcs_tokens_forwarded", "").Add(9)
	r.Histogram("gcs_token_rotation_seconds", "").Observe(0.002)
	h := NewHandler(func() map[string]uint64 {
		return map[string]uint64{
			"gcs_tokens_forwarded":             41, // collides with registry counter
			"gcs_token_rotation_seconds_count": 7,  // collides with histogram sample
			"obs_events_buffered":              3,  // a level, not a count
			"gcs_data_sent":                    5,  // plain counter survives
		}
	}, nil, r)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	body := rec.Body.String()

	if n := strings.Count(body, "# TYPE gcs_tokens_forwarded "); n != 1 {
		t.Fatalf("gcs_tokens_forwarded TYPE lines = %d, want 1:\n%s", n, body)
	}
	if !strings.Contains(body, "gcs_tokens_forwarded 9") || strings.Contains(body, "gcs_tokens_forwarded 41") {
		t.Fatalf("collision resolved toward legacy value:\n%s", body)
	}
	if strings.Contains(body, "# TYPE gcs_token_rotation_seconds_count") {
		t.Fatalf("legacy key shadowed a histogram sample name:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE obs_events_buffered gauge") {
		t.Fatalf("level-like legacy key not typed gauge:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE gcs_data_sent counter") || !strings.Contains(body, "gcs_data_sent 5") {
		t.Fatalf("plain legacy counter missing:\n%s", body)
	}
}

func TestServerEndToEnd(t *testing.T) {
	tr := New(16, fixedNow())
	tr.Emit(Event{Source: SourceGCS, Kind: KindInstall, Node: "d1"})
	tr.Emit(Event{Source: SourceCore, Kind: KindAcquire, Node: "d1/wackd", Addr: "10.0.0.100"})
	srv, err := Serve("127.0.0.1:0", func() map[string]uint64 {
		return map[string]uint64{"obs_events_emitted": tr.Emitted()}
	}, tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client := http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var metrics map[string]uint64
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("metrics: %v\n%s", err, body)
	}
	if metrics["obs_events_emitted"] != 2 {
		t.Fatalf("metrics = %v", metrics)
	}

	resp, err = client.Get("http://" + srv.Addr() + "/debug/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 2 {
		t.Fatalf("event lines = %d, want 2:\n%s", len(lines), body)
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Kind != KindAcquire || ev.Addr != "10.0.0.100" {
		t.Fatalf("event = %+v", ev)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get("http://" + srv.Addr() + "/metrics"); err == nil {
		t.Fatal("server still serving after Close")
	}
}

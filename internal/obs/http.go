package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"

	"wackamole/internal/metrics"
)

// http.go is the live observability surface of the real daemon: a /metrics
// endpoint and /debug/events (the tracer's ring snapshot as NDJSON). Both
// are read-only snapshots assembled per request; the stats they read are
// atomic snapshots, so serving them never blocks the protocol.
//
// /metrics speaks two dialects. Without a registry it keeps the original
// expvar-style flat JSON object of counters. With a registry installed it
// serves Prometheus text exposition format 0.0.4, rendering the legacy
// counters as counter families followed by the registry's typed families —
// one scrape returns both generations of instrumentation.

// MetricsFunc assembles the current counter values; keys should be
// snake_case and stable across releases.
type MetricsFunc func() map[string]uint64

// Handler serves /metrics and /debug/events, plus (when profiling is
// explicitly enabled) /debug/pprof/* and /debug/vars.
type Handler struct {
	metrics   MetricsFunc
	tracer    *Tracer
	registry  *metrics.Registry
	profiling bool
}

// NewHandler builds the observability handler; metrics may be nil (serves
// an empty object), tracer may be nil (serves an empty event stream) and
// registry may be nil (/metrics stays in the legacy JSON dialect).
func NewHandler(metricsFn MetricsFunc, tracer *Tracer, registry *metrics.Registry) *Handler {
	return &Handler{metrics: metricsFn, tracer: tracer, registry: registry}
}

// EnableProfiling turns on the /debug/pprof/* and /debug/vars endpoints
// (net/http/pprof and expvar). They are off by default and must stay opt-in:
// profiles expose memory contents and CPU profiling perturbs the protocol
// timing the daemon exists to keep tight, so only enable them on a loopback
// or otherwise access-controlled listener (the daemon's `pprof` config
// directive).
func (h *Handler) EnableProfiling() { h.profiling = true }

// ServeHTTP routes the endpoints.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.profiling {
		// Routed explicitly rather than importing pprof's init side effects
		// into http.DefaultServeMux, which this server never serves from.
		switch {
		case r.URL.Path == "/debug/vars":
			expvar.Handler().ServeHTTP(w, r)
			return
		case r.URL.Path == "/debug/pprof/cmdline":
			pprof.Cmdline(w, r)
			return
		case r.URL.Path == "/debug/pprof/profile":
			pprof.Profile(w, r)
			return
		case r.URL.Path == "/debug/pprof/symbol":
			pprof.Symbol(w, r)
			return
		case r.URL.Path == "/debug/pprof/trace":
			pprof.Trace(w, r)
			return
		case strings.HasPrefix(r.URL.Path, "/debug/pprof/"), r.URL.Path == "/debug/pprof":
			pprof.Index(w, r)
			return
		}
	}
	switch r.URL.Path {
	case "/metrics":
		h.serveMetrics(w)
	case "/debug/events":
		h.serveEvents(w)
	default:
		http.NotFound(w, r)
	}
}

// sortedCounters snapshots the legacy counter map with stable key order.
func (h *Handler) sortedCounters() (map[string]uint64, []string) {
	vals := map[string]uint64{}
	if h.metrics != nil {
		vals = h.metrics()
	}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return vals, keys
}

func (h *Handler) serveMetrics(w http.ResponseWriter) {
	if h.registry.Enabled() {
		h.servePrometheus(w)
		return
	}
	h.serveLegacyJSON(w)
}

// levelSuffixes mark legacy keys that report a level rather than a monotone
// count; they are typed gauge so scrapers don't compute rates over them.
var levelSuffixes = []string{"_buffered", "_depth", "_inflight", "_pending", "_queued"}

func legacyType(key string) string {
	for _, suf := range levelSuffixes {
		if strings.HasSuffix(key, suf) {
			return "gauge"
		}
	}
	return "counter"
}

// servePrometheus writes the legacy counters as counter families followed by
// the registry's families, all in text exposition format 0.0.4. A legacy key
// that collides with a registry family name (or a histogram's derived
// _bucket/_sum/_count sample names) is skipped — emitting both would yield
// duplicate TYPE/sample lines, which strict parsers reject; the registry's
// typed family is the better-specified of the two.
func (h *Handler) servePrometheus(w http.ResponseWriter) {
	w.Header().Set("Content-Type", metrics.ContentType)
	// Errors mean the connection died mid-write; nothing recoverable.
	_ = WriteMetricsProm(w, h.metrics, h.registry)
}

// WriteMetricsProm writes the full metrics surface — legacy counters as
// typed families followed by the registry's families — in Prometheus text
// exposition format 0.0.4. It is the body of the /metrics endpoint, shared
// with the flight recorder's metrics.prom bundle file. A legacy key that
// collides with a registry family name (or a histogram's derived
// _bucket/_sum/_count sample names) is skipped — emitting both would yield
// duplicate TYPE/sample lines, which strict parsers reject; the registry's
// typed family is the better-specified of the two.
func WriteMetricsProm(w io.Writer, metricsFn MetricsFunc, registry *metrics.Registry) error {
	var snap metrics.Snapshot
	if registry.Enabled() {
		snap = registry.Snapshot()
	}
	reserved := map[string]bool{}
	for _, f := range snap.Families {
		reserved[f.Name] = true
		if f.Kind == metrics.KindHistogram {
			reserved[f.Name+"_bucket"] = true
			reserved[f.Name+"_sum"] = true
			reserved[f.Name+"_count"] = true
		}
	}
	vals := map[string]uint64{}
	if metricsFn != nil {
		vals = metricsFn()
	}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if reserved[k] {
			continue
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", k, legacyType(k), k, vals[k]); err != nil {
			return err
		}
	}
	return metrics.WritePrometheus(w, snap)
}

// serveLegacyJSON writes the counters as one sorted, indented JSON object,
// expvar-style.
func (h *Handler) serveLegacyJSON(w http.ResponseWriter) {
	vals, keys := h.sortedCounters()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	// Hand-rolled so the keys stay sorted (json.Marshal of a map sorts too,
	// but an ordered write keeps the value formatting integral).
	w.Write([]byte("{\n"))
	for i, k := range keys {
		b, _ := json.Marshal(k)
		w.Write(b)
		w.Write([]byte(": "))
		v, _ := json.Marshal(vals[k])
		w.Write(v)
		if i < len(keys)-1 {
			w.Write([]byte(","))
		}
		w.Write([]byte("\n"))
	}
	w.Write([]byte("}\n"))
}

// serveEvents streams the ring snapshot as NDJSON, oldest first.
func (h *Handler) serveEvents(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	WriteNDJSON(w, h.tracer.Snapshot())
}

// Server is a minimal HTTP listener around Handler for the real daemon.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving the observability endpoints on addr (e.g.
// "127.0.0.1:4804"); it returns once the listener is bound. registry may be
// nil, keeping /metrics in the legacy JSON dialect.
func Serve(addr string, metricsFn MetricsFunc, tracer *Tracer, registry *metrics.Registry) (*Server, error) {
	return ServeHandler(addr, NewHandler(metricsFn, tracer, registry))
}

// ServeHandler starts serving a pre-built Handler on addr; callers use it
// when they need to configure the handler first (EnableProfiling).
func ServeHandler(addr string, h *Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"sort"
)

// http.go is the live observability surface of the real daemon: an
// expvar-style /metrics endpoint (flat JSON map of monotonic counters) and
// /debug/events (the tracer's ring snapshot as NDJSON). Both are read-only
// snapshots assembled per request; the stats they read are atomic
// snapshots, so serving them never blocks the protocol.

// MetricsFunc assembles the current counter values; keys should be
// snake_case and stable across releases.
type MetricsFunc func() map[string]uint64

// Handler serves /metrics and /debug/events.
type Handler struct {
	metrics MetricsFunc
	tracer  *Tracer
}

// NewHandler builds the observability handler; metrics may be nil (serves
// an empty object) and tracer may be nil (serves an empty event stream).
func NewHandler(metrics MetricsFunc, tracer *Tracer) *Handler {
	return &Handler{metrics: metrics, tracer: tracer}
}

// ServeHTTP routes the two endpoints.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/metrics":
		h.serveMetrics(w)
	case "/debug/events":
		h.serveEvents(w)
	default:
		http.NotFound(w, r)
	}
}

// serveMetrics writes the counters as one sorted, indented JSON object,
// expvar-style.
func (h *Handler) serveMetrics(w http.ResponseWriter) {
	vals := map[string]uint64{}
	if h.metrics != nil {
		vals = h.metrics()
	}
	keys := make([]string, 0, len(vals))
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	// Hand-rolled so the keys stay sorted (json.Marshal of a map sorts too,
	// but an ordered write keeps the value formatting integral).
	w.Write([]byte("{\n"))
	for i, k := range keys {
		b, _ := json.Marshal(k)
		w.Write(b)
		w.Write([]byte(": "))
		v, _ := json.Marshal(vals[k])
		w.Write(v)
		if i < len(keys)-1 {
			w.Write([]byte(","))
		}
		w.Write([]byte("\n"))
	}
	w.Write([]byte("}\n"))
}

// serveEvents streams the ring snapshot as NDJSON, oldest first.
func (h *Handler) serveEvents(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
	WriteNDJSON(w, h.tracer.Snapshot())
}

// Server is a minimal HTTP listener around Handler for the real daemon.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts serving the observability endpoints on addr (e.g.
// "127.0.0.1:4804"); it returns once the listener is bound.
func Serve(addr string, metrics MetricsFunc, tracer *Tracer) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewHandler(metrics, tracer)}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr reports the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// Package arp implements the RFC 826 Address Resolution Protocol packet
// format for Ethernet/IPv4 and the notification interface Wackamole's
// platform-specific code uses to spoof ARP replies after acquiring a virtual
// address (§5.1 of the paper).
//
// The encoder produces the exact 28-byte wire payload a real ARP
// implementation would; the simulated network (package netsim) carries these
// bytes verbatim, so the same codec serves both the simulator and a raw
// -socket deployment.
package arp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Op is the ARP operation code.
type Op uint16

// ARP operations per RFC 826.
const (
	OpRequest Op = 1
	OpReply   Op = 2
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpRequest:
		return "request"
	case OpReply:
		return "reply"
	default:
		return fmt.Sprintf("op(%d)", uint16(o))
	}
}

// PacketLen is the size of an Ethernet/IPv4 ARP payload.
const PacketLen = 28

const (
	htypeEthernet = 1
	ptypeIPv4     = 0x0800
)

// ErrMalformed reports an undecodable ARP payload.
var ErrMalformed = errors.New("arp: malformed packet")

// Packet is an Ethernet/IPv4 ARP payload.
type Packet struct {
	Op        Op
	SenderMAC [6]byte
	SenderIP  netip.Addr
	TargetMAC [6]byte
	TargetIP  netip.Addr
}

// IsGratuitous reports whether the packet is a gratuitous announcement: the
// sender speaks about its own protocol address.
func (p Packet) IsGratuitous() bool {
	return p.SenderIP == p.TargetIP
}

// Encode serializes the packet into its 28-byte RFC 826 representation.
// Both addresses must be IPv4.
func (p Packet) Encode() ([]byte, error) {
	if !p.SenderIP.Is4() || !p.TargetIP.Is4() {
		return nil, fmt.Errorf("arp: encode: addresses must be IPv4 (sender %v, target %v)", p.SenderIP, p.TargetIP)
	}
	b := make([]byte, PacketLen)
	binary.BigEndian.PutUint16(b[0:2], htypeEthernet)
	binary.BigEndian.PutUint16(b[2:4], ptypeIPv4)
	b[4] = 6 // hardware address length
	b[5] = 4 // protocol address length
	binary.BigEndian.PutUint16(b[6:8], uint16(p.Op))
	copy(b[8:14], p.SenderMAC[:])
	spa := p.SenderIP.As4()
	copy(b[14:18], spa[:])
	copy(b[18:24], p.TargetMAC[:])
	tpa := p.TargetIP.As4()
	copy(b[24:28], tpa[:])
	return b, nil
}

// Decode parses a 28-byte RFC 826 Ethernet/IPv4 ARP payload.
func Decode(b []byte) (Packet, error) {
	if len(b) < PacketLen {
		return Packet{}, fmt.Errorf("%w: %d bytes", ErrMalformed, len(b))
	}
	if binary.BigEndian.Uint16(b[0:2]) != htypeEthernet ||
		binary.BigEndian.Uint16(b[2:4]) != ptypeIPv4 ||
		b[4] != 6 || b[5] != 4 {
		return Packet{}, fmt.Errorf("%w: not Ethernet/IPv4", ErrMalformed)
	}
	var p Packet
	p.Op = Op(binary.BigEndian.Uint16(b[6:8]))
	copy(p.SenderMAC[:], b[8:14])
	p.SenderIP = netip.AddrFrom4([4]byte(b[14:18]))
	copy(p.TargetMAC[:], b[18:24])
	p.TargetIP = netip.AddrFrom4([4]byte(b[24:28]))
	return p, nil
}

// Notifier is the hook Wackamole's engine calls after acquiring a virtual
// address, so that routers and peers with stale ARP caches learn the new
// <IP, MAC> binding immediately instead of waiting for cache expiry.
type Notifier interface {
	// Announce advertises that this host now answers for vip.
	Announce(vip netip.Addr)
	// Withdraw signals that this host stopped answering for vip. Most
	// implementations need no action (the new owner announces), but probes
	// and tests use it to track intent.
	Withdraw(vip netip.Addr)
}

// NopNotifier ignores all announcements.
type NopNotifier struct{}

// Announce implements Notifier.
func (NopNotifier) Announce(netip.Addr) {}

// Withdraw implements Notifier.
func (NopNotifier) Withdraw(netip.Addr) {}

var _ Notifier = NopNotifier{}

package arp

import (
	"bytes"
	"errors"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := Packet{
		Op:        OpReply,
		SenderMAC: [6]byte{0x0A, 0, 0, 0, 0, 1},
		SenderIP:  netip.MustParseAddr("10.0.0.100"),
		TargetMAC: [6]byte{0x0A, 0, 0, 0, 0, 2},
		TargetIP:  netip.MustParseAddr("10.0.0.1"),
	}
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != PacketLen {
		t.Fatalf("encoded length = %d, want %d", len(b), PacketLen)
	}
	got, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != p {
		t.Fatalf("round trip = %+v, want %+v", got, p)
	}
}

func TestWireLayoutMatchesRFC826(t *testing.T) {
	p := Packet{
		Op:        OpRequest,
		SenderMAC: [6]byte{1, 2, 3, 4, 5, 6},
		SenderIP:  netip.MustParseAddr("192.168.0.1"),
		TargetMAC: [6]byte{},
		TargetIP:  netip.MustParseAddr("192.168.0.2"),
	}
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{
		0x00, 0x01, // htype Ethernet
		0x08, 0x00, // ptype IPv4
		0x06, 0x04, // hlen, plen
		0x00, 0x01, // oper request
		1, 2, 3, 4, 5, 6, // sha
		192, 168, 0, 1, // spa
		0, 0, 0, 0, 0, 0, // tha
		192, 168, 0, 2, // tpa
	}
	if !bytes.Equal(b, want) {
		t.Fatalf("wire bytes:\n got %v\nwant %v", b, want)
	}
}

func TestEncodeRejectsIPv6(t *testing.T) {
	p := Packet{
		Op:       OpReply,
		SenderIP: netip.MustParseAddr("::1"),
		TargetIP: netip.MustParseAddr("10.0.0.1"),
	}
	if _, err := p.Encode(); err == nil {
		t.Fatal("Encode with IPv6 sender succeeded")
	}
}

func TestDecodeRejectsShortAndForeign(t *testing.T) {
	if _, err := Decode(make([]byte, 10)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("short decode err = %v, want ErrMalformed", err)
	}
	b := make([]byte, PacketLen)
	b[0], b[1] = 0x00, 0x06 // IEEE 802 hardware type, not Ethernet
	if _, err := Decode(b); !errors.Is(err, ErrMalformed) {
		t.Fatalf("foreign htype err = %v, want ErrMalformed", err)
	}
}

func TestIsGratuitous(t *testing.T) {
	vip := netip.MustParseAddr("10.0.0.100")
	grat := Packet{Op: OpReply, SenderIP: vip, TargetIP: vip}
	if !grat.IsGratuitous() {
		t.Fatal("sender==target not reported gratuitous")
	}
	normal := Packet{Op: OpReply, SenderIP: vip, TargetIP: netip.MustParseAddr("10.0.0.1")}
	if normal.IsGratuitous() {
		t.Fatal("distinct sender/target reported gratuitous")
	}
}

func TestOpString(t *testing.T) {
	if OpRequest.String() != "request" || OpReply.String() != "reply" {
		t.Fatal("known op names wrong")
	}
	if Op(9).String() != "op(9)" {
		t.Fatalf("unknown op string = %q", Op(9).String())
	}
}

func TestQuickRoundTrip(t *testing.T) {
	prop := func(op uint16, sha, tha [6]byte, spa, tpa [4]byte) bool {
		p := Packet{
			Op:        Op(op),
			SenderMAC: sha,
			SenderIP:  netip.AddrFrom4(spa),
			TargetMAC: tha,
			TargetIP:  netip.AddrFrom4(tpa),
		}
		b, err := p.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(b)
		return err == nil && got == p
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	prop := func(b []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Decode(b)
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

package vrrp

import (
	"net/netip"
	"testing"
	"time"

	"wackamole/internal/netsim"
	"wackamole/internal/sim"
)

func pair(t *testing.T, seed int64, prios ...uint8) (*sim.Sim, []*Router, []*netsim.NIC) {
	t.Helper()
	s := sim.New(seed)
	nw := netsim.New(s)
	lan := nw.NewSegment("lan", netsim.DefaultSegmentConfig())
	vip := netip.MustParseAddr("10.0.0.100")
	var routers []*Router
	var nics []*netsim.NIC
	for i, prio := range prios {
		h := nw.NewHost(string(rune('a' + i)))
		nic := h.AttachNIC(lan, "eth0", netip.MustParsePrefix(netip.AddrFrom4([4]byte{10, 0, 0, byte(10 + i)}).String()+"/24"))
		r, err := New(h, nic, Config{VRID: 7, Priority: prio, VIP: vip, Preempt: true})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		routers = append(routers, r)
		nics = append(nics, nic)
	}
	return s, routers, nics
}

func TestHighestPriorityWinsElection(t *testing.T) {
	s, routers, nics := pair(t, 1, 100, 200, 150)
	s.RunFor(10 * time.Second)
	if routers[1].State() != StateMaster {
		t.Fatalf("router states = %v %v %v, want b master", routers[0].State(), routers[1].State(), routers[2].State())
	}
	if routers[0].State() != StateBackup || routers[2].State() != StateBackup {
		t.Fatal("non-winners are not backups")
	}
	vip := netip.MustParseAddr("10.0.0.100")
	if !nics[1].HasAddr(vip) || nics[0].HasAddr(vip) || nics[2].HasAddr(vip) {
		t.Fatal("VIP not held exclusively by the master")
	}
}

func TestBackupTakesOverWithinMasterDownInterval(t *testing.T) {
	s, routers, nics := pair(t, 2, 200, 100)
	s.RunFor(10 * time.Second)
	if routers[0].State() != StateMaster {
		t.Fatal("setup: wrong master")
	}
	nics[0].SetUp(false)
	faultAt := s.Elapsed()
	for routers[1].State() != StateMaster && s.Elapsed()-faultAt < 20*time.Second {
		s.RunFor(100 * time.Millisecond)
	}
	took := s.Elapsed() - faultAt
	cfg := Config{Priority: 100, AdvertInterval: DefaultAdvertInterval}
	if took > cfg.MasterDownInterval()+200*time.Millisecond {
		t.Fatalf("takeover took %v, want within master-down %v", took, cfg.MasterDownInterval())
	}
	if !nics[1].HasAddr(netip.MustParseAddr("10.0.0.100")) {
		t.Fatal("new master does not hold the VIP")
	}
}

func TestPreemptionOnRecovery(t *testing.T) {
	s, routers, nics := pair(t, 3, 200, 100)
	s.RunFor(10 * time.Second)
	nics[0].SetUp(false)
	s.RunFor(10 * time.Second)
	if routers[1].State() != StateMaster {
		t.Fatal("backup never took over")
	}
	nics[0].SetUp(true)
	s.RunFor(10 * time.Second)
	if routers[0].State() != StateMaster {
		t.Fatalf("high-priority router did not preempt (state %v)", routers[0].State())
	}
	if routers[1].State() != StateBackup {
		t.Fatalf("low-priority router did not step down (state %v)", routers[1].State())
	}
	vip := netip.MustParseAddr("10.0.0.100")
	if !nics[0].HasAddr(vip) || nics[1].HasAddr(vip) {
		t.Fatal("VIP not returned to the preempting master")
	}
}

func TestSkewTimeOrdersByPriority(t *testing.T) {
	hi := Config{Priority: 254}
	lo := Config{Priority: 1}
	if hi.SkewTime() >= lo.SkewTime() {
		t.Fatalf("skew(hi)=%v, skew(lo)=%v; higher priority must expire sooner", hi.SkewTime(), lo.SkewTime())
	}
	if hi.MasterDownInterval() != 3*time.Second+hi.SkewTime() {
		t.Fatalf("MasterDownInterval = %v", hi.MasterDownInterval())
	}
}

func TestConfigValidation(t *testing.T) {
	s := sim.New(9)
	nw := netsim.New(s)
	lan := nw.NewSegment("lan", netsim.DefaultSegmentConfig())
	h := nw.NewHost("a")
	nic := h.AttachNIC(lan, "eth0", netip.MustParsePrefix("10.0.0.10/24"))
	if _, err := New(h, nic, Config{VRID: 1, Priority: 100}); err == nil {
		t.Fatal("missing VIP accepted")
	}
	if _, err := New(h, nic, Config{VRID: 1, Priority: 0, VIP: netip.MustParseAddr("10.0.0.100")}); err == nil {
		t.Fatal("priority 0 accepted")
	}
	if _, err := New(h, nic, Config{VRID: 1, Priority: 255, VIP: netip.MustParseAddr("10.0.0.100")}); err == nil {
		t.Fatal("priority 255 accepted")
	}
}

// Package vrrp implements a simplified Virtual Router Redundancy Protocol
// (RFC 2338), the IETF-standard baseline the paper compares against (§7):
// an election protocol that dynamically assigns responsibility for a
// virtual router to one of the VRRP routers on a LAN. One master owns the
// virtual address and advertises periodically; backups take over when the
// master-down interval (3×advertisement + skew) expires.
//
// The implementation runs on the simulated network and is used by the
// baseline fail-over comparison experiment.
package vrrp

import (
	"fmt"
	"net/netip"
	"time"

	"wackamole/internal/env"
	"wackamole/internal/netsim"
	"wackamole/internal/wire"
)

// Port carries advertisements in the simulation (VRRP is IP protocol 112;
// the simulator models UDP only).
const Port = 112

// DefaultAdvertInterval is the RFC 2338 default of one second.
const DefaultAdvertInterval = time.Second

// State is the protocol state.
type State uint8

// Protocol states.
const (
	StateInit State = iota + 1
	StateBackup
	StateMaster
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateInit:
		return "init"
	case StateBackup:
		return "backup"
	case StateMaster:
		return "master"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Config parameterizes one VRRP router.
type Config struct {
	// VRID identifies the virtual router (1-255).
	VRID uint8
	// Priority is this router's election weight (1-254, higher wins).
	Priority uint8
	// VIP is the virtual router's address.
	VIP netip.Addr
	// AdvertInterval between master advertisements; zero means 1s.
	AdvertInterval time.Duration
	// Preempt lets a higher-priority router take over from a live master.
	Preempt bool
}

func (c Config) advertInterval() time.Duration {
	if c.AdvertInterval <= 0 {
		return DefaultAdvertInterval
	}
	return c.AdvertInterval
}

// SkewTime is (256 − priority) / 256 seconds, per RFC 2338.
func (c Config) SkewTime() time.Duration {
	return time.Duration(256-int(c.Priority)) * time.Second / 256
}

// MasterDownInterval is 3×advertisement interval + skew, per RFC 2338.
func (c Config) MasterDownInterval() time.Duration {
	return 3*c.advertInterval() + c.SkewTime()
}

// Router is one VRRP instance on a host interface.
type Router struct {
	host *netsim.Host
	nic  *netsim.NIC
	cfg  Config

	state       State
	sock        *netsim.Socket
	advertTimer env.Timer
	downTimer   env.Timer
	running     bool
}

// New binds a VRRP router on (host, nic).
func New(host *netsim.Host, nic *netsim.NIC, cfg Config) (*Router, error) {
	if !cfg.VIP.IsValid() {
		return nil, fmt.Errorf("vrrp: missing virtual address")
	}
	if cfg.Priority == 0 || cfg.Priority == 255 {
		return nil, fmt.Errorf("vrrp: priority must be 1-254, got %d", cfg.Priority)
	}
	r := &Router{host: host, nic: nic, cfg: cfg, state: StateInit}
	sock, err := host.BindUDP(netip.Addr{}, Port, func(src, _ netip.AddrPort, payload []byte) {
		r.onAdvert(src.Addr(), payload)
	})
	if err != nil {
		return nil, fmt.Errorf("vrrp: %w", err)
	}
	r.sock = sock
	return r, nil
}

// Start enters the backup state; the master-down timer elects the initial
// master (smallest skew, i.e. highest priority, first).
func (r *Router) Start() {
	if r.running {
		return
	}
	r.running = true
	r.toBackup()
}

// Stop silences the router without releasing the address (host-failure
// experiments down the interface instead).
func (r *Router) Stop() {
	r.running = false
	stop(r.advertTimer)
	stop(r.downTimer)
	r.sock.Close()
}

// State returns the protocol state.
func (r *Router) State() State { return r.state }

func stop(t env.Timer) {
	if t != nil {
		t.Stop()
	}
}

func (r *Router) toBackup() {
	r.state = StateBackup
	stop(r.advertTimer)
	r.armDownTimer()
}

func (r *Router) armDownTimer() {
	stop(r.downTimer)
	r.downTimer = r.host.AfterFunc(r.cfg.MasterDownInterval(), func() {
		if r.running && r.state == StateBackup {
			r.toMaster()
		}
	})
}

func (r *Router) toMaster() {
	r.state = StateMaster
	stop(r.downTimer)
	if !r.nic.HasAddr(r.cfg.VIP) {
		if err := r.nic.AddAddr(r.cfg.VIP); err != nil {
			_ = err // AddAddr fails only on duplicates, which HasAddr excludes
		}
	}
	if err := r.host.SendGratuitousARP(r.nic, r.cfg.VIP); err != nil {
		_ = err // interface down; the next election will recover
	}
	r.sendAdvert()
	var tick func()
	tick = func() {
		if !r.running || r.state != StateMaster {
			return
		}
		r.sendAdvert()
		r.advertTimer = r.host.AfterFunc(r.cfg.advertInterval(), tick)
	}
	r.advertTimer = r.host.AfterFunc(r.cfg.advertInterval(), tick)
}

func (r *Router) stepDown() {
	if r.state != StateMaster {
		return
	}
	if r.nic.HasAddr(r.cfg.VIP) {
		if err := r.nic.RemoveAddr(r.cfg.VIP); err != nil {
			_ = err
		}
	}
	r.toBackup()
}

func (r *Router) sendAdvert() {
	w := wire.NewWriter(16)
	w.U8(r.cfg.VRID)
	w.U8(r.cfg.Priority)
	dst := netip.AddrPortFrom(r.nic.Broadcast(), Port)
	src := netip.AddrPortFrom(r.nic.Primary(), Port)
	if err := r.host.SendUDP(src, dst, w.Bytes()); err != nil {
		_ = err // interface down during fault injection
	}
}

func (r *Router) onAdvert(from netip.Addr, payload []byte) {
	if !r.running || from == r.nic.Primary() {
		return
	}
	rd := wire.NewReader(payload)
	vrid := rd.U8()
	prio := rd.U8()
	if rd.Done() != nil || vrid != r.cfg.VRID {
		return
	}
	switch r.state {
	case StateBackup:
		if prio >= r.cfg.Priority || !r.cfg.Preempt {
			r.armDownTimer()
			return
		}
		// Preempt a lower-priority master.
		r.toMaster()
	case StateMaster:
		if prio > r.cfg.Priority {
			r.stepDown()
		}
		// Equal or lower priority: we keep mastership; the peer sees our
		// advertisements and steps down symmetrically.
	}
}

package ipmgr

import (
	"fmt"
	"net/netip"
	"os/exec"
	"strings"
	"sync"

	"wackamole/internal/netsim"
)

// NICBackend acquires and releases addresses on a simulated interface.
type NICBackend struct {
	NIC *netsim.NIC
}

// Acquire implements Backend.
func (b *NICBackend) Acquire(a netip.Addr) error { return b.NIC.AddAddr(a) }

// Release implements Backend.
func (b *NICBackend) Release(a netip.Addr) error { return b.NIC.RemoveAddr(a) }

var _ Backend = (*NICBackend)(nil)

// HostBackend acquires addresses on whichever simulated interface's subnet
// contains them. The virtual-router application (§5.2 of the paper) needs
// this: one indivisible group spans addresses on several networks.
type HostBackend struct {
	Host *netsim.Host
}

func (b *HostBackend) nicFor(a netip.Addr) (*netsim.NIC, error) {
	for _, nic := range b.Host.NICs() {
		if nic.Prefix().Contains(a) {
			return nic, nil
		}
	}
	return nil, fmt.Errorf("ipmgr: host %s has no interface on %v's subnet", b.Host.Name(), a)
}

// Acquire implements Backend.
func (b *HostBackend) Acquire(a netip.Addr) error {
	nic, err := b.nicFor(a)
	if err != nil {
		return err
	}
	return nic.AddAddr(a)
}

// Release implements Backend.
func (b *HostBackend) Release(a netip.Addr) error {
	nic, err := b.nicFor(a)
	if err != nil {
		return err
	}
	return nic.RemoveAddr(a)
}

var _ Backend = (*HostBackend)(nil)

// ExecBackend manipulates real interfaces by shelling out to iproute2, the
// moral equivalent of the paper's per-OS ifconfig code. With DryRun set it
// only records the commands it would run, which is the default posture of
// cmd/wackamole so that experimenting cannot damage a machine's networking.
type ExecBackend struct {
	// Device is the interface to alias, e.g. "eth0".
	Device string
	// PrefixBits is the netmask applied to acquired addresses (default 32).
	PrefixBits int
	// DryRun suppresses execution and records commands in Commands.
	DryRun bool

	mu       sync.Mutex
	commands []string
}

func (b *ExecBackend) run(args ...string) error {
	cmd := strings.Join(args, " ")
	b.mu.Lock()
	b.commands = append(b.commands, cmd)
	b.mu.Unlock()
	if b.DryRun {
		return nil
	}
	out, err := exec.Command(args[0], args[1:]...).CombinedOutput()
	if err != nil {
		return fmt.Errorf("ipmgr: %q: %v (%s)", cmd, err, strings.TrimSpace(string(out)))
	}
	return nil
}

func (b *ExecBackend) bits() int {
	if b.PrefixBits <= 0 || b.PrefixBits > 32 {
		return 32
	}
	return b.PrefixBits
}

// Acquire implements Backend.
func (b *ExecBackend) Acquire(a netip.Addr) error {
	return b.run("ip", "addr", "add", fmt.Sprintf("%s/%d", a, b.bits()), "dev", b.Device)
}

// Release implements Backend.
func (b *ExecBackend) Release(a netip.Addr) error {
	return b.run("ip", "addr", "del", fmt.Sprintf("%s/%d", a, b.bits()), "dev", b.Device)
}

// Commands returns the commands issued (or recorded under DryRun) so far.
func (b *ExecBackend) Commands() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]string, len(b.commands))
	copy(out, b.commands)
	return out
}

var _ Backend = (*ExecBackend)(nil)

// FakeBackend records operations and can inject failures; it backs the unit
// tests of everything above ipmgr.
type FakeBackend struct {
	// FailAcquire and FailRelease, when set, are consulted per address.
	FailAcquire func(a netip.Addr) error
	FailRelease func(a netip.Addr) error

	Ops []string
}

// Acquire implements Backend.
func (b *FakeBackend) Acquire(a netip.Addr) error {
	if b.FailAcquire != nil {
		if err := b.FailAcquire(a); err != nil {
			return err
		}
	}
	b.Ops = append(b.Ops, "acquire "+a.String())
	return nil
}

// Release implements Backend.
func (b *FakeBackend) Release(a netip.Addr) error {
	if b.FailRelease != nil {
		if err := b.FailRelease(a); err != nil {
			return err
		}
	}
	b.Ops = append(b.Ops, "release "+a.String())
	return nil
}

var _ Backend = (*FakeBackend)(nil)

// Package ipmgr implements the IP-address control mechanism of the
// Wackamole architecture (Figure 1 of the paper): acquiring and releasing
// virtual IP addresses on the local machine, behind a platform-specific
// backend. The paper's implementation carries per-OS code for FreeBSD,
// Linux and Solaris; here the backends are a simulated NIC (for the
// deterministic testbed), an exec backend that shells out to `ip addr`
// (dry-run by default), and a fake for tests.
package ipmgr

import (
	"fmt"
	"net/netip"
	"sort"

	"wackamole/internal/env"
)

// Backend performs the platform-specific address manipulation.
type Backend interface {
	// Acquire configures a on the local machine.
	Acquire(a netip.Addr) error
	// Release removes a from the local machine.
	Release(a netip.Addr) error
}

// Manager tracks the set of virtual addresses this node holds and makes
// acquire/release idempotent over a Backend.
type Manager struct {
	backend Backend
	held    map[netip.Addr]bool
}

// New returns a Manager over backend.
func New(backend Backend) *Manager {
	return &Manager{backend: backend, held: map[netip.Addr]bool{}}
}

// Acquire configures a locally. Acquiring an address already held is a
// no-op.
func (m *Manager) Acquire(a netip.Addr) error {
	if m.held[a] {
		return nil
	}
	if err := m.backend.Acquire(a); err != nil {
		return fmt.Errorf("ipmgr: acquire %v: %w", a, err)
	}
	m.held[a] = true
	return nil
}

// Release removes a locally. Releasing an address not held is a no-op.
func (m *Manager) Release(a netip.Addr) error {
	if !m.held[a] {
		return nil
	}
	if err := m.backend.Release(a); err != nil {
		return fmt.Errorf("ipmgr: release %v: %w", a, err)
	}
	delete(m.held, a)
	return nil
}

// ReleaseAll drops every held address, returning the first error while
// still attempting the rest. Wackamole calls this when it loses its
// group-communication connection (§4.2): a daemon that cannot ensure
// correctness must stop answering for any virtual address.
func (m *Manager) ReleaseAll() error {
	var first error
	for _, a := range m.Held() {
		if err := m.Release(a); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Holds reports whether a is currently held.
func (m *Manager) Holds(a netip.Addr) bool { return m.held[a] }

// Held returns the held addresses, sorted.
func (m *Manager) Held() []netip.Addr {
	out := make([]netip.Addr, 0, len(m.held))
	for a := range m.held {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// LoggingBackend wraps another backend, logging every operation. Useful for
// observing a dry run of the real daemon.
type LoggingBackend struct {
	Inner Backend
	Log   env.Logger
}

// Acquire implements Backend.
func (b *LoggingBackend) Acquire(a netip.Addr) error {
	err := b.Inner.Acquire(a)
	if err != nil {
		b.Log.Logf("ipmgr: acquire %v failed: %v", a, err)
	} else {
		b.Log.Logf("ipmgr: acquired %v", a)
	}
	return err
}

// Release implements Backend.
func (b *LoggingBackend) Release(a netip.Addr) error {
	err := b.Inner.Release(a)
	if err != nil {
		b.Log.Logf("ipmgr: release %v failed: %v", a, err)
	} else {
		b.Log.Logf("ipmgr: released %v", a)
	}
	return err
}

var _ Backend = (*LoggingBackend)(nil)

package ipmgr

import (
	"errors"
	"fmt"
	"net/netip"
	"strings"
	"testing"

	"wackamole/internal/netsim"
	"wackamole/internal/sim"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func TestManagerIdempotency(t *testing.T) {
	be := &FakeBackend{}
	m := New(be)
	a := addr("10.0.1.1")
	if err := m.Acquire(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(a); err != nil {
		t.Fatal(err)
	}
	if len(be.Ops) != 1 {
		t.Fatalf("backend saw %d ops, want 1: %v", len(be.Ops), be.Ops)
	}
	if !m.Holds(a) {
		t.Fatal("Holds = false after acquire")
	}
	if err := m.Release(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(a); err != nil {
		t.Fatal(err)
	}
	if len(be.Ops) != 2 {
		t.Fatalf("backend saw %d ops, want 2: %v", len(be.Ops), be.Ops)
	}
	if m.Holds(a) {
		t.Fatal("Holds = true after release")
	}
}

func TestManagerHeldSorted(t *testing.T) {
	m := New(&FakeBackend{})
	for _, s := range []string{"10.0.1.9", "10.0.1.1", "10.0.1.5"} {
		if err := m.Acquire(addr(s)); err != nil {
			t.Fatal(err)
		}
	}
	held := m.Held()
	if len(held) != 3 || held[0] != addr("10.0.1.1") || held[2] != addr("10.0.1.9") {
		t.Fatalf("Held() = %v, want sorted", held)
	}
}

func TestManagerAcquireFailureNotHeld(t *testing.T) {
	injected := errors.New("nope")
	be := &FakeBackend{FailAcquire: func(netip.Addr) error { return injected }}
	m := New(be)
	if err := m.Acquire(addr("10.0.1.1")); !errors.Is(err, injected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if m.Holds(addr("10.0.1.1")) {
		t.Fatal("failed acquire left the address held")
	}
}

func TestReleaseAllContinuesPastErrors(t *testing.T) {
	bad := addr("10.0.1.2")
	injected := errors.New("stuck")
	be := &FakeBackend{FailRelease: func(a netip.Addr) error {
		if a == bad {
			return injected
		}
		return nil
	}}
	m := New(be)
	for _, s := range []string{"10.0.1.1", "10.0.1.2", "10.0.1.3"} {
		if err := m.Acquire(addr(s)); err != nil {
			t.Fatal(err)
		}
	}
	err := m.ReleaseAll()
	if !errors.Is(err, injected) {
		t.Fatalf("ReleaseAll err = %v, want injected", err)
	}
	if m.Holds(addr("10.0.1.1")) || m.Holds(addr("10.0.1.3")) {
		t.Fatal("ReleaseAll did not release the healthy addresses")
	}
	if !m.Holds(bad) {
		t.Fatal("failed release should leave the address held")
	}
}

func TestNICBackend(t *testing.T) {
	s := sim.New(1)
	nw := netsim.New(s)
	seg := nw.NewSegment("lan", netsim.DefaultSegmentConfig())
	h := nw.NewHost("a")
	nic := h.AttachNIC(seg, "eth0", netip.MustParsePrefix("10.0.0.1/24"))
	m := New(&NICBackend{NIC: nic})
	vip := addr("10.0.0.100")
	if err := m.Acquire(vip); err != nil {
		t.Fatal(err)
	}
	if !nic.HasAddr(vip) {
		t.Fatal("NIC missing acquired address")
	}
	if err := m.Release(vip); err != nil {
		t.Fatal(err)
	}
	if nic.HasAddr(vip) {
		t.Fatal("NIC kept released address")
	}
}

func TestExecBackendDryRunRecordsCommands(t *testing.T) {
	be := &ExecBackend{Device: "eth0", DryRun: true}
	m := New(be)
	if err := m.Acquire(addr("192.0.2.10")); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(addr("192.0.2.10")); err != nil {
		t.Fatal(err)
	}
	cmds := be.Commands()
	if len(cmds) != 2 {
		t.Fatalf("recorded %d commands, want 2: %v", len(cmds), cmds)
	}
	if cmds[0] != "ip addr add 192.0.2.10/32 dev eth0" {
		t.Fatalf("add command = %q", cmds[0])
	}
	if cmds[1] != "ip addr del 192.0.2.10/32 dev eth0" {
		t.Fatalf("del command = %q", cmds[1])
	}
}

func TestExecBackendPrefixBits(t *testing.T) {
	be := &ExecBackend{Device: "bond0", PrefixBits: 24, DryRun: true}
	if err := be.Acquire(addr("192.0.2.10")); err != nil {
		t.Fatal(err)
	}
	if got := be.Commands()[0]; !strings.Contains(got, "192.0.2.10/24") {
		t.Fatalf("command = %q, want /24", got)
	}
}

type failLogSink struct{ lines []string }

func (s *failLogSink) Logf(format string, args ...any) {
	s.lines = append(s.lines, fmt.Sprintf(format, args...))
}

func TestLoggingBackendPassesThroughAndLogs(t *testing.T) {
	sink := &failLogSink{}
	be := &LoggingBackend{Inner: &FakeBackend{}, Log: sink}
	if err := be.Acquire(addr("10.0.1.1")); err != nil {
		t.Fatal(err)
	}
	if err := be.Release(addr("10.0.1.1")); err != nil {
		t.Fatal(err)
	}
	if len(sink.lines) != 2 {
		t.Fatalf("logged %d lines, want 2: %v", len(sink.lines), sink.lines)
	}
	failing := &LoggingBackend{
		Inner: &FakeBackend{FailAcquire: func(netip.Addr) error { return errors.New("boom") }},
		Log:   sink,
	}
	if err := failing.Acquire(addr("10.0.1.2")); err == nil {
		t.Fatal("error swallowed")
	}
	if !strings.Contains(sink.lines[len(sink.lines)-1], "failed") {
		t.Fatal("failure not logged")
	}
}

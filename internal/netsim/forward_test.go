package netsim

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"testing"
	"time"

	"wackamole/internal/sim"
)

type logSink struct {
	mu    sync.Mutex
	lines []string
}

func (l *logSink) Logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logSink) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, line := range l.lines {
		if strings.Contains(line, sub) {
			return true
		}
	}
	return false
}

func TestRoutingLoopTerminatesViaTTL(t *testing.T) {
	s := sim.New(1)
	nw := New(s)
	sink := &logSink{}
	nw.SetLogger(sink)
	seg := nw.NewSegment("lan", DefaultSegmentConfig())

	// Two routers pointing their default routes at each other: a packet to
	// an off-link destination must bounce until TTL expiry, not forever.
	a := nw.NewHost("a")
	an := a.AttachNIC(seg, "eth0", netip.MustParsePrefix("10.0.0.1/24"))
	a.EnableForwarding()
	a.SetDefaultGateway(an, netip.MustParseAddr("10.0.0.2"))
	b := nw.NewHost("b")
	bn := b.AttachNIC(seg, "eth0", netip.MustParsePrefix("10.0.0.2/24"))
	b.EnableForwarding()
	b.SetDefaultGateway(bn, netip.MustParseAddr("10.0.0.1"))

	if err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(netip.MustParseAddr("203.0.113.9"), 80), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * time.Second)
	if !sink.contains("TTL expired") {
		t.Fatal("loop did not terminate with a TTL expiry")
	}
	if s.Pending() != 0 {
		t.Fatalf("%d events still pending after the loop should have died", s.Pending())
	}
}

func TestForwardWithoutRouteIsLogged(t *testing.T) {
	s := sim.New(2)
	nw := New(s)
	sink := &logSink{}
	nw.SetLogger(sink)
	inside := nw.NewSegment("inside", DefaultSegmentConfig())
	outside := nw.NewSegment("outside", DefaultSegmentConfig())

	r := nw.NewHost("router")
	r.AttachNIC(inside, "in", netip.MustParsePrefix("10.0.0.1/24"))
	r.AttachNIC(outside, "out", netip.MustParsePrefix("192.168.1.1/24"))
	r.EnableForwarding()

	h := nw.NewHost("h")
	hn := h.AttachNIC(inside, "eth0", netip.MustParsePrefix("10.0.0.10/24"))
	h.SetDefaultGateway(hn, netip.MustParseAddr("10.0.0.1"))

	// Destination outside both connected subnets and with no route at the
	// router.
	if err := h.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(netip.MustParseAddr("203.0.113.9"), 80), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.RunFor(2 * time.Second)
	if !sink.contains("no route") {
		t.Fatalf("router silently dropped an unroutable packet; log=%v", sink.lines)
	}
}

func TestRemoveRoute(t *testing.T) {
	s := sim.New(3)
	nw := New(s)
	seg := nw.NewSegment("lan", DefaultSegmentConfig())
	h := nw.NewHost("h")
	nic := h.AttachNIC(seg, "eth0", netip.MustParsePrefix("10.0.0.1/24"))
	pfx := netip.MustParsePrefix("203.0.113.0/24")
	gw := netip.MustParseAddr("10.0.0.254")
	h.AddRoute(pfx, nic, gw)
	if !h.RemoveRoute(pfx, gw) {
		t.Fatal("RemoveRoute failed to find the route")
	}
	if h.RemoveRoute(pfx, gw) {
		t.Fatal("RemoveRoute removed a nonexistent route")
	}
}

func TestARPPendingQueueFlushedOnReply(t *testing.T) {
	s, _, _, hosts := lan(t, 4, 2)
	a, b := hosts[0], hosts[1]
	got := 0
	if _, err := b.BindUDP(netip.Addr{}, 7000, func(_, _ netip.AddrPort, _ []byte) { got++ }); err != nil {
		t.Fatal(err)
	}
	// Three packets queued behind one ARP resolution must all arrive.
	dst := netip.AddrPortFrom(addr("10.0.0.2"), 7000)
	for i := 0; i < 3; i++ {
		if err := a.SendUDP(netip.AddrPort{}, dst, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run()
	if got != 3 {
		t.Fatalf("delivered %d of 3 queued packets", got)
	}
}

func TestARPResolutionGivesUpAfterRetries(t *testing.T) {
	s := sim.New(5)
	nw := New(s)
	sink := &logSink{}
	nw.SetLogger(sink)
	seg := nw.NewSegment("lan", DefaultSegmentConfig())
	a := nw.NewHost("a")
	a.AttachNIC(seg, "eth0", netip.MustParsePrefix("10.0.0.1/24"))
	// Nobody answers for this address.
	if err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.99"), 7000), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * time.Second)
	if !sink.contains("ARP for 10.0.0.99 timed out") {
		t.Fatalf("no give-up log; lines=%v", sink.lines)
	}
	if s.Pending() != 0 {
		t.Fatal("retry timers leaked")
	}
}

func TestCrashedHostDoesNotAnswerARP(t *testing.T) {
	s, _, _, hosts := lan(t, 6, 2)
	a, b := hosts[0], hosts[1]
	b.Crash()
	if err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 7000), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * time.Second)
	if _, ok := a.NICs()[0].ARPEntry(addr("10.0.0.2")); ok {
		t.Fatal("resolved a crashed host")
	}
	b.Restart()
	if err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 7000), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.RunFor(5 * time.Second)
	if _, ok := a.NICs()[0].ARPEntry(addr("10.0.0.2")); !ok {
		t.Fatal("could not resolve the restarted host")
	}
}

func TestSendThroughDownNICFails(t *testing.T) {
	_, _, _, hosts := lan(t, 7, 2)
	a := hosts[0]
	a.NICs()[0].SetUp(false)
	// Cached-entry path: force an entry so egress reaches the NIC check.
	a.NICs()[0].arp[addr("10.0.0.2")] = arpEntry{mac: 1, expires: a.Now().Add(time.Hour)}
	err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.255"), 7000), []byte("x"))
	if err == nil {
		t.Fatal("broadcast through a downed NIC succeeded")
	}
	if err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 7000), []byte("x")); err == nil {
		t.Fatal("unicast through a downed NIC succeeded")
	}
}

func TestCrashedHostSendFails(t *testing.T) {
	_, _, _, hosts := lan(t, 8, 1)
	hosts[0].Crash()
	if err := hosts[0].SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 7000), []byte("x")); err == nil {
		t.Fatal("crashed host sent a packet")
	}
	if err := hosts[0].SendGratuitousARP(hosts[0].NICs()[0], addr("10.0.0.100")); err == nil {
		t.Fatal("crashed host sent gratuitous ARP")
	}
}

func TestPacketTrace(t *testing.T) {
	s, nw, _, hosts := lanNet(t, 9, 2)
	var events []TraceEvent
	nw.SetPacketTrace(func(ev TraceEvent) { events = append(events, ev) })
	if err := hosts[0].SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 7000), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	kinds := map[TraceKind]int{}
	sawARP, sawIP := false, false
	for _, ev := range events {
		kinds[ev.Kind]++
		if ev.ARP {
			sawARP = true
		} else if ev.Kind == TraceSend {
			sawIP = true
		}
		if ev.String() == "" {
			t.Fatal("empty trace line")
		}
	}
	if kinds[TraceSend] == 0 || kinds[TraceDeliver] == 0 {
		t.Fatalf("trace kinds = %v", kinds)
	}
	if !sawARP || !sawIP {
		t.Fatalf("expected both ARP and IP traffic in the trace (arp=%v ip=%v)", sawARP, sawIP)
	}
	// Disabling stops the stream.
	nw.SetPacketTrace(nil)
	n := len(events)
	if err := hosts[0].SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 7000), []byte("y")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(events) != n {
		t.Fatal("trace hook fired after being disabled")
	}
}

// lanNet is like lan but also returns the Network for trace installation.
func lanNet(t *testing.T, seed int64, n int) (*sim.Sim, *Network, *Segment, []*Host) {
	t.Helper()
	s := sim.New(seed)
	nw := New(s)
	seg := nw.NewSegment("lan", DefaultSegmentConfig())
	hosts := make([]*Host, n)
	for i := range hosts {
		h := nw.NewHost(string(rune('a' + i)))
		h.AttachNIC(seg, "eth0", mustPrefix(t, netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}).String()+"/24"))
		hosts[i] = h
	}
	return s, nw, seg, hosts
}

func TestARPAnnouncerPicksNICBySubnet(t *testing.T) {
	s := sim.New(10)
	nw := New(s)
	segA := nw.NewSegment("a", DefaultSegmentConfig())
	segB := nw.NewSegment("b", DefaultSegmentConfig())

	r := nw.NewHost("router")
	r.AttachNIC(segA, "a", mustPrefix(t, "10.0.0.2/24"))
	r.AttachNIC(segB, "b", mustPrefix(t, "192.168.1.2/24"))

	// Observers with stale entries on each segment.
	obsA := nw.NewHost("obsA")
	na := obsA.AttachNIC(segA, "eth0", mustPrefix(t, "10.0.0.50/24"))
	obsB := nw.NewHost("obsB")
	nb := obsB.AttachNIC(segB, "eth0", mustPrefix(t, "192.168.1.50/24"))
	vipA := addr("10.0.0.100")
	vipB := addr("192.168.1.100")
	na.arp[vipA] = arpEntry{mac: 0xDEAD, expires: s.Now().Add(time.Hour)}
	nb.arp[vipB] = arpEntry{mac: 0xBEEF, expires: s.Now().Add(time.Hour)}

	ann := &ARPAnnouncer{Host: r}
	ann.Announce(vipA)
	ann.Announce(vipB)
	s.Run()
	if mac, _ := na.ARPEntry(vipA); mac != r.NICs()[0].MAC() {
		t.Fatalf("segment-a observer has %v, want the router's a-side MAC", mac)
	}
	if mac, _ := nb.ARPEntry(vipB); mac != r.NICs()[1].MAC() {
		t.Fatalf("segment-b observer has %v, want the router's b-side MAC", mac)
	}
	// Cross-segment announcements must not leak.
	if _, ok := na.ARPEntry(vipB); ok {
		t.Fatal("b-side VIP announced on segment a")
	}
}

func TestARPAnnouncerDisabledAndOffSubnet(t *testing.T) {
	s := sim.New(11)
	nw := New(s)
	seg := nw.NewSegment("lan", DefaultSegmentConfig())
	h := nw.NewHost("h")
	obs := nw.NewHost("obs")
	on := obs.AttachNIC(seg, "eth0", mustPrefix(t, "10.0.0.50/24"))
	h.AttachNIC(seg, "eth0", mustPrefix(t, "10.0.0.2/24"))
	vip := addr("10.0.0.100")
	on.arp[vip] = arpEntry{mac: 0xDEAD, expires: s.Now().Add(time.Hour)}

	disabled := &ARPAnnouncer{Host: h, Disabled: true}
	disabled.Announce(vip)
	s.Run()
	if mac, _ := on.ARPEntry(vip); mac != 0xDEAD {
		t.Fatal("disabled announcer still announced")
	}
	// An address on no local subnet is a no-op (logged), not a panic.
	(&ARPAnnouncer{Host: h}).Announce(addr("203.0.113.9"))
	(&ARPAnnouncer{Host: h}).Withdraw(vip)
	s.Run()
}

func TestAccessors(t *testing.T) {
	s, nw, seg, hosts := lanNet(t, 12, 2)
	h := hosts[0]
	nic := h.NICs()[0]
	if h.Name() != "a" || !h.Alive() || nic.Name() != "eth0" || !nic.Up() {
		t.Fatal("basic accessors wrong")
	}
	if nic.Host() != h || nic.Segment() != seg || seg.Name() != "lan" {
		t.Fatal("topology accessors wrong")
	}
	if nw.Sim() != s || len(nw.Hosts()) != 2 {
		t.Fatal("network accessors wrong")
	}
	if err := nic.AddAddr(addr("10.0.0.200")); err != nil {
		t.Fatal(err)
	}
	addrs := nic.Addrs()
	if len(addrs) != 2 || addrs[0] != addr("10.0.0.1") || addrs[1] != addr("10.0.0.200") {
		t.Fatalf("Addrs = %v", addrs)
	}
	// ARPEntries + FlushARP round trip.
	if err := h.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 7000), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(nic.ARPEntries()) == 0 {
		t.Fatal("ARPEntries empty after resolution")
	}
	nic.FlushARP()
	if len(nic.ARPEntries()) != 0 {
		t.Fatal("FlushARP left entries")
	}
	// Nil logger resets to the no-op logger.
	nw.SetLogger(nil)
	// Trace kind strings.
	for _, k := range []TraceKind{TraceSend, TraceDeliver, TraceDrop, TraceForward, TraceKind(99)} {
		if k.String() == "" {
			t.Fatal("empty trace kind string")
		}
	}
	// Inverted latency bounds are normalized.
	inv := nw.NewSegment("weird", SegmentConfig{LatencyMin: time.Millisecond, LatencyMax: 0})
	if inv.cfg.LatencyMax != time.Millisecond {
		t.Fatalf("latency bounds not normalized: %+v", inv.cfg)
	}
}

package netsim

import (
	"fmt"
	"net/netip"
	"time"
)

// TraceKind classifies packet-trace events.
type TraceKind uint8

// Trace event kinds.
const (
	// TraceSend: a frame entered a segment.
	TraceSend TraceKind = iota + 1
	// TraceDeliver: a frame reached a NIC.
	TraceDeliver
	// TraceDrop: a frame was lost (segment loss or unreachable receiver is
	// not traced — only explicit loss draws).
	TraceDrop
	// TraceForward: a router forwarded an IP packet.
	TraceForward
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceDeliver:
		return "deliver"
	case TraceDrop:
		return "drop"
	case TraceForward:
		return "forward"
	default:
		return fmt.Sprintf("trace(%d)", uint8(k))
	}
}

// TraceEvent describes one packet-level event, for protocol debugging and
// for assertions on traffic shape in tests.
type TraceEvent struct {
	At      time.Time
	Kind    TraceKind
	Segment string
	Host    string // receiving or forwarding host ("" for sends)
	Src     MAC
	Dst     MAC
	// IP layer, when the frame carries an IP packet.
	SrcIP, DstIP netip.Addr
	ARP          bool
}

// String renders the event on one line.
func (e TraceEvent) String() string {
	layer := "ip"
	if e.ARP {
		layer = "arp"
	}
	return fmt.Sprintf("%-8s %-8s %s %s->%s %v->%v host=%s",
		e.Kind, e.Segment, layer, e.Src, e.Dst, e.SrcIP, e.DstIP, e.Host)
}

// SetPacketTrace installs a packet-trace hook (nil disables). The hook runs
// synchronously inside the simulation loop; keep it cheap.
func (n *Network) SetPacketTrace(hook func(TraceEvent)) { n.trace = hook }

func (n *Network) emitTrace(ev TraceEvent) {
	if n.trace != nil {
		ev.At = n.sim.Now()
		n.trace(ev)
	}
}

func traceOf(seg *Segment, fr frame, kind TraceKind, host string) TraceEvent {
	ev := TraceEvent{
		Kind:    kind,
		Segment: seg.name,
		Host:    host,
		Src:     fr.src,
		Dst:     fr.dst,
		ARP:     fr.kind == frameARP,
	}
	if fr.pkt != nil {
		ev.SrcIP = fr.pkt.src
		ev.DstIP = fr.pkt.dst
	}
	return ev
}

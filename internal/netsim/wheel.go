package netsim

import (
	"time"

	"wackamole/internal/sim"
)

// TimerWheel is a deterministic timing wheel for high-volume, coarse
// timeouts — per-connection retransmission timers, chiefly. A busy workload
// arms and cancels one timer per in-flight request; scheduling each of
// those individually on the simulator's heap would allocate a Timer and an
// event per request and bloat the event queue. The wheel instead keeps one
// simulator event per tick while it has work, and pools its per-timeout
// entries, so steady-state arm/cancel cycles allocate nothing.
//
// Deadlines are rounded UP to the next tick boundary (tick coalescing): a
// timeout never fires early, and fires at most one tick late. Within a
// tick, timers fire in arming order, preserving determinism.
//
// The wheel is bound to a host: ticks stop firing callbacks while the host
// is down (the pending entries are discarded, matching how a crashed
// machine loses its soft state).
type TimerWheel struct {
	host  *Host
	tick  time.Duration
	slots [][]*WheelTimer
	free  []*WheelTimer
	// spare is the sweep's scratch slice: Run swaps it in for the slot
	// being swept so that callbacks which Schedule mid-sweep append to a
	// live slice instead of one about to be overwritten. The old backing
	// array becomes the next spare, so capacity circulates instead of
	// being reallocated each sweep.
	spare []*WheelTimer

	armed   bool
	active  int   // entries currently residing in slots (including stopped ones not yet swept)
	curTick int64 // absolute tick index the next Run will sweep
}

// WheelTimer is one scheduled timeout. Handles are pooled: a handle is
// valid only until its callback fires or Stop is called, after which it
// must not be touched — the wheel will reuse it for a later Schedule.
type WheelTimer struct {
	fn       func()
	deadline int64 // absolute tick index
	stopped  bool
}

// Stop cancels the timeout. It must only be called on a handle whose
// callback has not yet fired (callers clear their reference when the
// callback runs, which makes the discipline local and mechanical).
func (t *WheelTimer) Stop() {
	if !t.stopped {
		t.stopped = true
	}
}

// NewTimerWheel creates a wheel on h with the given tick and slot count.
// The slot count bounds nothing semantically — timers farther out than one
// revolution simply survive extra sweeps — but should comfortably exceed
// the common timeout divided by tick so most entries are examined once.
func NewTimerWheel(h *Host, tick time.Duration, slots int) *TimerWheel {
	if tick <= 0 {
		panic("netsim: timer wheel tick must be positive")
	}
	if slots < 2 {
		slots = 2
	}
	return &TimerWheel{host: h, tick: tick, slots: make([][]*WheelTimer, slots)}
}

// tickOf converts an absolute virtual time to a tick index, rounding up so
// deadlines never fire early.
func (w *TimerWheel) tickOf(t time.Time) int64 {
	d := t.Sub(sim.Epoch)
	n := int64(d / w.tick)
	if d%w.tick != 0 {
		n++
	}
	return n
}

// Schedule arms fn to fire no earlier than d from now (rounded up to the
// wheel's tick). The returned handle may be Stopped until the callback
// fires; after firing it is invalid.
func (w *TimerWheel) Schedule(d time.Duration, fn func()) *WheelTimer {
	if fn == nil {
		panic("netsim: Schedule called with nil callback")
	}
	now := w.host.net.sim.Now()
	deadline := w.tickOf(now.Add(d))
	if !w.armed {
		// Align the next sweep to the first tick boundary strictly after
		// now, then keep ticking from there.
		w.curTick = w.tickOf(now)
		if boundary := sim.Epoch.Add(time.Duration(w.curTick) * w.tick); !boundary.After(now) {
			w.curTick++
		}
		w.armed = true
		w.host.net.sim.Post(sim.Epoch.Add(time.Duration(w.curTick)*w.tick).Sub(now), w)
	}
	if deadline < w.curTick {
		deadline = w.curTick
	}
	var t *WheelTimer
	if l := len(w.free); l > 0 {
		t = w.free[l-1]
		w.free[l-1] = nil
		w.free = w.free[:l-1]
	} else {
		t = &WheelTimer{}
	}
	t.fn = fn
	t.deadline = deadline
	t.stopped = false
	slot := int(deadline % int64(len(w.slots)))
	w.slots[slot] = append(w.slots[slot], t)
	w.active++
	return t
}

// Active reports how many scheduled timeouts are currently pending.
func (w *TimerWheel) Active() int { return w.active }

// Run sweeps the current slot, firing due entries, and re-arms the wheel
// for the next tick while any entry remains. It is the sim.Runnable hook;
// callers never invoke it directly.
func (w *TimerWheel) Run() {
	slot := int(w.curTick % int64(len(w.slots)))
	entries := w.slots[slot]
	// Swap in the scratch slice before firing anything: callbacks may
	// Schedule new timers into this very slot, and those must land in the
	// slice that survives the sweep.
	w.slots[slot] = w.spare[:0]
	for _, t := range entries {
		switch {
		case t.stopped:
			w.active--
			w.recycle(t)
		case t.deadline > w.curTick:
			// Later revolution; carry over.
			w.slots[slot] = append(w.slots[slot], t)
		case !w.host.alive:
			// A dead host's soft timers die with it.
			w.active--
			w.recycle(t)
		default:
			fn := t.fn
			w.active--
			w.recycle(t)
			fn()
		}
	}
	for i := range entries {
		entries[i] = nil
	}
	w.spare = entries[:0]
	w.curTick++
	if w.active > 0 {
		w.host.net.sim.Post(w.tick, w)
	} else {
		w.armed = false
	}
}

func (w *TimerWheel) recycle(t *WheelTimer) {
	t.fn = nil
	t.stopped = false
	w.free = append(w.free, t)
}

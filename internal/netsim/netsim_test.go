package netsim

import (
	"net/netip"
	"testing"
	"time"

	"wackamole/internal/env"
	"wackamole/internal/sim"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatalf("ParsePrefix(%q): %v", s, err)
	}
	return p
}

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// lan builds a single-segment network with n hosts 10.0.0.1..n/24.
func lan(t *testing.T, seed int64, n int) (*sim.Sim, *Network, *Segment, []*Host) {
	t.Helper()
	s := sim.New(seed)
	nw := New(s)
	seg := nw.NewSegment("lan", DefaultSegmentConfig())
	hosts := make([]*Host, n)
	for i := range hosts {
		h := nw.NewHost(string(rune('a' + i)))
		h.AttachNIC(seg, "eth0", mustPrefix(t, netip.AddrFrom4([4]byte{10, 0, 0, byte(i + 1)}).String()+"/24"))
		hosts[i] = h
	}
	return s, nw, seg, hosts
}

func TestUnicastUDPWithARP(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 2)
	a, b := hosts[0], hosts[1]
	var got []byte
	var gotSrc netip.AddrPort
	if _, err := b.BindUDP(netip.Addr{}, 9000, func(src, dst netip.AddrPort, payload []byte) {
		got = payload
		gotSrc = src
	}); err != nil {
		t.Fatal(err)
	}
	err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 9000), []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if string(got) != "hello" {
		t.Fatalf("payload = %q, want hello", got)
	}
	if gotSrc.Addr() != addr("10.0.0.1") {
		t.Fatalf("src = %v, want 10.0.0.1", gotSrc)
	}
	// ARP resolution should have populated both caches (b learns a from the
	// request it answered).
	if _, ok := a.NICs()[0].ARPEntry(addr("10.0.0.2")); !ok {
		t.Error("sender did not cache the resolved entry")
	}
	if _, ok := b.NICs()[0].ARPEntry(addr("10.0.0.1")); !ok {
		t.Error("responder did not learn the requester's entry")
	}
}

func TestSecondSendUsesCache(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 2)
	a, b := hosts[0], hosts[1]
	count := 0
	if _, err := b.BindUDP(netip.Addr{}, 9000, func(_, _ netip.AddrPort, _ []byte) { count++ }); err != nil {
		t.Fatal(err)
	}
	dst := netip.AddrPortFrom(addr("10.0.0.2"), 9000)
	if err := a.SendUDP(netip.AddrPort{}, dst, []byte("1")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	first := s.Fired()
	if err := a.SendUDP(netip.AddrPort{}, dst, []byte("2")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if count != 2 {
		t.Fatalf("delivered %d, want 2", count)
	}
	// The cached send needs exactly one frame event; the first needed the
	// ARP exchange too.
	if delta := s.Fired() - first; delta != 1 {
		t.Fatalf("cached send used %d events, want 1", delta)
	}
}

func TestBroadcastReachesAllIncludingSender(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 4)
	got := map[string]int{}
	for _, h := range hosts {
		h := h
		if _, err := h.BindUDP(netip.Addr{}, 7000, func(_, _ netip.AddrPort, _ []byte) {
			got[h.Name()]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	err := hosts[0].SendUDP(
		netip.AddrPortFrom(addr("10.0.0.1"), 7000),
		netip.AddrPortFrom(addr("10.0.0.255"), 7000),
		[]byte("all"))
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	for _, h := range hosts {
		if got[h.Name()] != 1 {
			t.Fatalf("host %s received %d, want 1 (got map %v)", h.Name(), got[h.Name()], got)
		}
	}
}

func TestLossRateOneDropsEverything(t *testing.T) {
	s := sim.New(1)
	nw := New(s)
	cfg := DefaultSegmentConfig()
	cfg.LossRate = 1.0
	seg := nw.NewSegment("lossy", cfg)
	a := nw.NewHost("a")
	a.AttachNIC(seg, "eth0", mustPrefix(t, "10.0.0.1/24"))
	b := nw.NewHost("b")
	b.AttachNIC(seg, "eth0", mustPrefix(t, "10.0.0.2/24"))
	delivered := false
	if _, err := b.BindUDP(netip.Addr{}, 7000, func(_, _ netip.AddrPort, _ []byte) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	if err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.255"), 7000), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if delivered {
		t.Fatal("frame delivered on a segment with 100% loss")
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	s, _, seg, hosts := lan(t, 1, 3)
	a, b, c := hosts[0], hosts[1], hosts[2]
	recv := map[string]int{}
	for _, h := range []*Host{b, c} {
		h := h
		if _, err := h.BindUDP(netip.Addr{}, 7000, func(_, _ netip.AddrPort, _ []byte) { recv[h.Name()]++ }); err != nil {
			t.Fatal(err)
		}
	}
	seg.Partition([]*Host{a, b}, []*Host{c})
	if err := a.SendUDP(netip.AddrPortFrom(addr("10.0.0.1"), 7000), netip.AddrPortFrom(addr("10.0.0.255"), 7000), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if recv["b"] != 1 || recv["c"] != 0 {
		t.Fatalf("partitioned delivery = %v, want b only", recv)
	}
	seg.Heal()
	if err := a.SendUDP(netip.AddrPortFrom(addr("10.0.0.1"), 7000), netip.AddrPortFrom(addr("10.0.0.255"), 7000), []byte("y")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if recv["b"] != 2 || recv["c"] != 1 {
		t.Fatalf("post-heal delivery = %v, want b:2 c:1", recv)
	}
}

func TestPartitionRequiresFullCoverage(t *testing.T) {
	_, _, seg, hosts := lan(t, 1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("Partition missing a host did not panic")
		}
	}()
	seg.Partition([]*Host{hosts[0], hosts[1]}) // hosts[2] omitted
}

func TestNICDownBlocksTraffic(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 2)
	a, b := hosts[0], hosts[1]
	delivered := false
	if _, err := b.BindUDP(netip.Addr{}, 7000, func(_, _ netip.AddrPort, _ []byte) { delivered = true }); err != nil {
		t.Fatal(err)
	}
	b.NICs()[0].SetUp(false)
	if err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 7000), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.RunFor(10 * time.Second)
	if delivered {
		t.Fatal("delivered through a downed NIC")
	}
}

func TestCrashStopsTimers(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 1)
	h := hosts[0]
	fired := false
	h.AfterFunc(time.Second, func() { fired = true })
	h.Crash()
	s.Run()
	if fired {
		t.Fatal("timer fired on crashed host")
	}
	h.Restart()
	h.AfterFunc(time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("timer did not fire after restart")
	}
}

func TestRouterForwardsBetweenSegments(t *testing.T) {
	s := sim.New(1)
	nw := New(s)
	inside := nw.NewSegment("inside", DefaultSegmentConfig())
	outside := nw.NewSegment("outside", DefaultSegmentConfig())

	server := nw.NewHost("server")
	server.AttachNIC(inside, "eth0", mustPrefix(t, "10.0.0.10/24"))
	server.SetDefaultGateway(server.NICs()[0], addr("10.0.0.1"))

	router := nw.NewHost("router")
	rIn := router.AttachNIC(inside, "in", mustPrefix(t, "10.0.0.1/24"))
	_ = rIn
	router.AttachNIC(outside, "out", mustPrefix(t, "192.168.1.1/24"))
	router.EnableForwarding()

	client := nw.NewHost("client")
	client.AttachNIC(outside, "eth0", mustPrefix(t, "192.168.1.50/24"))
	client.SetDefaultGateway(client.NICs()[0], addr("192.168.1.1"))

	var reply []byte
	if _, err := server.BindUDP(netip.Addr{}, 8000, func(src, dst netip.AddrPort, payload []byte) {
		if err := server.SendUDP(netip.AddrPortFrom(dst.Addr(), dst.Port()), src, append([]byte("re:"), payload...)); err != nil {
			t.Errorf("server reply: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.BindUDP(netip.Addr{}, 8001, func(_, _ netip.AddrPort, payload []byte) {
		reply = payload
	}); err != nil {
		t.Fatal(err)
	}

	err := client.SendUDP(
		netip.AddrPortFrom(addr("192.168.1.50"), 8001),
		netip.AddrPortFrom(addr("10.0.0.10"), 8000),
		[]byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if string(reply) != "re:ping" {
		t.Fatalf("reply = %q, want re:ping", reply)
	}
}

// TestStaleARPBlackholeAndSpoofRecovery reproduces the core network
// mechanism of the paper: after a virtual address moves hosts, traffic keeps
// flowing to the dead MAC until a spoofed ARP reply updates the router's
// cache (§5.1).
func TestStaleARPBlackholeAndSpoofRecovery(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 3)
	a, b, probe := hosts[0], hosts[1], hosts[2]
	vip := addr("10.0.0.100")

	if err := a.NICs()[0].AddAddr(vip); err != nil {
		t.Fatal(err)
	}
	responses := 0
	for _, h := range []*Host{a, b} {
		h := h
		if _, err := h.BindUDP(netip.Addr{}, 8000, func(src, dst netip.AddrPort, payload []byte) {
			if err := h.SendUDP(dst, src, []byte(h.Name())); err != nil {
				t.Errorf("%s reply: %v", h.Name(), err)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	var last string
	if _, err := probe.BindUDP(netip.Addr{}, 8001, func(_, _ netip.AddrPort, payload []byte) {
		responses++
		last = string(payload)
	}); err != nil {
		t.Fatal(err)
	}

	send := func() {
		if err := probe.SendUDP(netip.AddrPortFrom(addr("10.0.0.3"), 8001), netip.AddrPortFrom(vip, 8000), []byte("q")); err != nil {
			t.Fatalf("probe send: %v", err)
		}
	}
	send()
	s.RunFor(time.Second)
	if responses != 1 || last != "a" {
		t.Fatalf("initial probe: responses=%d last=%q, want 1 from a", responses, last)
	}

	// Fail a; move the VIP to b without telling anyone.
	a.NICs()[0].SetUp(false)
	if err := b.NICs()[0].AddAddr(vip); err != nil {
		t.Fatal(err)
	}
	send()
	s.RunFor(time.Second)
	if responses != 1 {
		t.Fatalf("blackholed probe got a response (stale ARP should blackhole); responses=%d", responses)
	}

	// Spoofed ARP reply from b fixes the probe's cache.
	if err := b.SendGratuitousARP(b.NICs()[0], vip); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Second)
	send()
	s.RunFor(time.Second)
	if responses != 2 || last != "b" {
		t.Fatalf("post-spoof probe: responses=%d last=%q, want 2 from b", responses, last)
	}
}

func TestGratuitousARPUpdateOnlyByDefault(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 2)
	a, b := hosts[0], hosts[1]
	vip := addr("10.0.0.100")
	// b has never resolved vip; a's gratuitous ARP must not create an entry.
	if err := a.SendGratuitousARP(a.NICs()[0], vip); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if _, ok := b.NICs()[0].ARPEntry(vip); ok {
		t.Fatal("gratuitous ARP created an entry on a host with update-only policy")
	}
	b.SetAcceptUnsolicitedARP(true)
	if err := a.SendGratuitousARP(a.NICs()[0], vip); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if _, ok := b.NICs()[0].ARPEntry(vip); !ok {
		t.Fatal("gratuitous ARP ignored despite unsolicited learning enabled")
	}
}

func TestARPEntryExpires(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 2)
	a, b := hosts[0], hosts[1]
	a.SetARPTTL(time.Second)
	if _, err := b.BindUDP(netip.Addr{}, 7000, func(_, _ netip.AddrPort, _ []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 7000), []byte("x")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if _, ok := a.NICs()[0].ARPEntry(addr("10.0.0.2")); !ok {
		t.Fatal("entry missing immediately after resolution")
	}
	s.RunFor(2 * time.Second)
	if _, ok := a.NICs()[0].ARPEntry(addr("10.0.0.2")); ok {
		t.Fatal("entry still fresh after TTL expiry")
	}
}

func TestAddrManagement(t *testing.T) {
	_, _, _, hosts := lan(t, 1, 1)
	nic := hosts[0].NICs()[0]
	vip := addr("10.0.0.200")
	if err := nic.AddAddr(vip); err != nil {
		t.Fatal(err)
	}
	if err := nic.AddAddr(vip); err == nil {
		t.Fatal("duplicate AddAddr succeeded")
	}
	if !nic.HasAddr(vip) {
		t.Fatal("HasAddr = false after AddAddr")
	}
	if err := nic.RemoveAddr(vip); err != nil {
		t.Fatal(err)
	}
	if err := nic.RemoveAddr(vip); err == nil {
		t.Fatal("double RemoveAddr succeeded")
	}
	if err := nic.RemoveAddr(nic.Primary()); err == nil {
		t.Fatal("RemoveAddr(primary) succeeded")
	}
	if got := nic.Broadcast(); got != addr("10.0.0.255") {
		t.Fatalf("Broadcast() = %v, want 10.0.0.255", got)
	}
}

func TestBindUDPPortInUse(t *testing.T) {
	_, _, _, hosts := lan(t, 1, 1)
	h := hosts[0]
	sock, err := h.BindUDP(netip.Addr{}, 7000, func(_, _ netip.AddrPort, _ []byte) {})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.BindUDP(netip.Addr{}, 7000, func(_, _ netip.AddrPort, _ []byte) {}); err == nil {
		t.Fatal("double bind succeeded")
	}
	sock.Close()
	if _, err := h.BindUDP(netip.Addr{}, 7000, func(_, _ netip.AddrPort, _ []byte) {}); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
}

func TestEndpointRoundTrip(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 3)
	eps := make([]*Endpoint, len(hosts))
	var err error
	for i, h := range hosts {
		eps[i], err = h.OpenEndpoint(h.NICs()[0], 4803)
		if err != nil {
			t.Fatal(err)
		}
	}
	type rcv struct {
		from env.Addr
		data string
	}
	inbox := map[int][]rcv{}
	for i, ep := range eps {
		i := i
		ep.SetHandler(func(from env.Addr, payload []byte) {
			inbox[i] = append(inbox[i], rcv{from, string(payload)})
		})
	}
	if got := eps[0].LocalAddr(); got != "10.0.0.1:4803" {
		t.Fatalf("LocalAddr = %q", got)
	}
	if err := eps[0].SendTo(eps[1].LocalAddr(), []byte("uni")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if len(inbox[1]) != 1 || inbox[1][0].data != "uni" || inbox[1][0].from != "10.0.0.1:4803" {
		t.Fatalf("unicast inbox = %v", inbox[1])
	}
	if err := eps[2].Broadcast([]byte("bc")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	for i := range eps {
		found := false
		for _, r := range inbox[i] {
			if r.data == "bc" {
				found = true
			}
		}
		if !found {
			t.Fatalf("endpoint %d missed broadcast; inbox=%v", i, inbox[i])
		}
	}
	if err := eps[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := eps[0].SendTo(eps[1].LocalAddr(), []byte("x")); err == nil {
		t.Fatal("SendTo after Close succeeded")
	}
}

func TestUnicastToSelfLoopsBack(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 1)
	h := hosts[0]
	ep, err := h.OpenEndpoint(h.NICs()[0], 4803)
	if err != nil {
		t.Fatal(err)
	}
	var got string
	ep.SetHandler(func(_ env.Addr, payload []byte) { got = string(payload) })
	if err := ep.SendTo(ep.LocalAddr(), []byte("self")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got != "self" {
		t.Fatalf("self unicast = %q", got)
	}
}

func TestLatencyWithinConfiguredBounds(t *testing.T) {
	s := sim.New(7)
	nw := New(s)
	cfg := SegmentConfig{LatencyMin: time.Millisecond, LatencyMax: 2 * time.Millisecond}
	seg := nw.NewSegment("lan", cfg)
	a := nw.NewHost("a")
	an := a.AttachNIC(seg, "eth0", mustPrefix(t, "10.0.0.1/24"))
	b := nw.NewHost("b")
	bn := b.AttachNIC(seg, "eth0", mustPrefix(t, "10.0.0.2/24"))
	// Pre-seed ARP to isolate the data frame latency.
	an.arp[addr("10.0.0.2")] = arpEntry{mac: bn.mac, expires: s.Now().Add(time.Hour)}
	var when time.Duration
	if _, err := b.BindUDP(netip.Addr{}, 7000, func(_, _ netip.AddrPort, _ []byte) {
		when = s.Elapsed()
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		start := s.Elapsed()
		if err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 7000), []byte("x")); err != nil {
			t.Fatal(err)
		}
		s.Run()
		d := when - start
		if d < cfg.LatencyMin || d > cfg.LatencyMax {
			t.Fatalf("latency %v outside [%v, %v]", d, cfg.LatencyMin, cfg.LatencyMax)
		}
	}
}

func TestNoRouteError(t *testing.T) {
	_, _, _, hosts := lan(t, 1, 1)
	err := hosts[0].SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("203.0.113.9"), 80), []byte("x"))
	if err == nil {
		t.Fatal("SendUDP off-subnet without a route succeeded")
	}
}

func TestMACFormatting(t *testing.T) {
	m := MAC(0x0A0000000001)
	if got := m.String(); got != "0a:00:00:00:00:01" {
		t.Fatalf("MAC.String() = %q", got)
	}
	if MACFromBytes(m.Bytes()) != m {
		t.Fatal("MAC byte round-trip failed")
	}
	if BroadcastMAC.String() != "ff:ff:ff:ff:ff:ff" {
		t.Fatalf("broadcast MAC = %q", BroadcastMAC.String())
	}
}

package netsim

import (
	"net/netip"

	"wackamole/internal/arp"
)

// ARPAnnouncer implements arp.Notifier over a simulated host: acquiring a
// virtual address is followed by a gratuitous ARP reply on the segment the
// address belongs to, forcing routers and peers with stale cache entries to
// relearn the <IP, MAC> binding immediately (§5.1 of the paper).
type ARPAnnouncer struct {
	Host *Host
	// Disabled suppresses announcements; the ARP-spoofing ablation
	// experiment uses it to show the cost of waiting for cache expiry.
	Disabled bool
}

// Announce implements arp.Notifier.
func (a *ARPAnnouncer) Announce(vip netip.Addr) {
	if a.Disabled {
		return
	}
	for _, nic := range a.Host.NICs() {
		if nic.Prefix().Contains(vip) {
			if err := a.Host.SendGratuitousARP(nic, vip); err != nil {
				a.Host.net.log.Logf("netsim: %s: gratuitous ARP for %v: %v", a.Host.Name(), vip, err)
			}
			return
		}
	}
	a.Host.net.log.Logf("netsim: %s: no interface on %v's subnet to announce from", a.Host.Name(), vip)
}

// Withdraw implements arp.Notifier. Nothing to do: the next owner's
// announcement supersedes the binding.
func (a *ARPAnnouncer) Withdraw(netip.Addr) {}

var _ arp.Notifier = (*ARPAnnouncer)(nil)

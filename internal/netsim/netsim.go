// Package netsim simulates the local-area network testbed of the Wackamole
// paper (§6) under deterministic virtual time: Ethernet-like segments with
// MAC addressing and broadcast domains, ARP with per-interface caches and
// TTLs, UDP sockets, an IP forwarding path for routers, network partitions,
// and interface/host fault injection.
//
// The simulation operates at the level the paper's mechanisms need: frames
// are addressed by MAC, IP-to-MAC resolution uses real ARP request/reply
// exchanges (encoded in RFC 826 wire format by package arp), and stale ARP
// cache entries blackhole traffic exactly the way they would on a real
// segment — which is what makes Wackamole's ARP spoofing observable.
package netsim

import (
	"fmt"
	"net/netip"
	"time"

	"wackamole/internal/env"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
	"wackamole/internal/sim"
)

// MAC is a 48-bit Ethernet address stored in the low bits of a uint64.
type MAC uint64

// BroadcastMAC is the all-ones Ethernet broadcast address.
const BroadcastMAC MAC = 0xFFFFFFFFFFFF

// String formats the MAC in colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
		byte(m>>40), byte(m>>32), byte(m>>24), byte(m>>16), byte(m>>8), byte(m))
}

// Bytes returns the 6-byte big-endian representation.
func (m MAC) Bytes() [6]byte {
	return [6]byte{byte(m >> 40), byte(m >> 32), byte(m >> 24), byte(m >> 16), byte(m >> 8), byte(m)}
}

// MACFromBytes builds a MAC from its 6-byte representation.
func MACFromBytes(b [6]byte) MAC {
	return MAC(uint64(b[0])<<40 | uint64(b[1])<<32 | uint64(b[2])<<24 |
		uint64(b[3])<<16 | uint64(b[4])<<8 | uint64(b[5]))
}

type frameKind uint8

const (
	frameARP frameKind = iota + 1
	frameIPv4
)

// frame is an Ethernet-level datagram on a segment.
type frame struct {
	src  MAC
	dst  MAC
	kind frameKind
	arp  []byte    // RFC 826 payload when kind == frameARP
	pkt  *ipPacket // when kind == frameIPv4
}

// ipPacket is a simulated IPv4+UDP datagram. Only UDP is modelled; that is
// all the paper's protocols and measurement workload use.
type ipPacket struct {
	src     netip.Addr
	dst     netip.Addr
	ttl     uint8
	srcPort uint16
	dstPort uint16
	payload []byte
	// owned marks a packet whose struct and payload buffer came from the
	// network's pools (the SendUDPOwned fast path). Owned packets have
	// exactly one consumer — they are only ever unicast — and are recycled
	// at their terminal consumption point (after the socket handler
	// returns, or on a drop decision in the forwarding path). Packets lost
	// to link faults simply fall to the garbage collector; the pools
	// replenish themselves, so leaks under fault injection are harmless.
	owned bool
}

// SegmentConfig holds per-broadcast-domain link characteristics.
type SegmentConfig struct {
	// LatencyMin and LatencyMax bound one-way frame latency; each frame
	// draws uniformly from the interval.
	LatencyMin time.Duration
	LatencyMax time.Duration
	// LossRate is the probability, per receiver, that a frame is dropped.
	LossRate float64
}

// DefaultSegmentConfig models a lightly loaded switched 100 Mbit LAN.
func DefaultSegmentConfig() SegmentConfig {
	return SegmentConfig{
		LatencyMin: 100 * time.Microsecond,
		LatencyMax: 300 * time.Microsecond,
	}
}

// Network is a collection of segments and hosts driven by one simulator.
type Network struct {
	sim      *sim.Sim
	nextMAC  MAC
	hosts    []*Host
	log      env.Logger
	trace    func(TraceEvent)
	tracer   *obs.Tracer
	metrics  *metrics.Registry
	counters Counters

	// Freelists for the zero-allocation traffic fast path. The simulation
	// loop is single-goroutine, so plain slices suffice — no locking, no
	// sync.Pool churn.
	freePackets []*ipPacket
	freeBufs    [][]byte
	freeJobs    []*deliveryJob
}

// maxPooledBuf caps the payload buffers the network keeps; anything larger
// is left to the garbage collector so a single jumbo payload cannot pin
// memory for the rest of a trial.
const maxPooledBuf = 64 << 10

// GetBuf returns a payload buffer of length n from the network's pool,
// allocating if the pool is dry. The buffer's contents are unspecified.
// Callers hand the buffer to SendUDPOwned, which assumes ownership; the
// network returns it to the pool after final delivery.
func (n *Network) GetBuf(size int) []byte {
	if l := len(n.freeBufs); l > 0 {
		b := n.freeBufs[l-1]
		n.freeBufs[l-1] = nil
		n.freeBufs = n.freeBufs[:l-1]
		if cap(b) >= size {
			return b[:size]
		}
	}
	if size < 128 {
		return make([]byte, size, 128)
	}
	return make([]byte, size)
}

// PutBuf returns a buffer to the pool. Only buffers no longer referenced
// anywhere else may be returned.
func (n *Network) PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	n.freeBufs = append(n.freeBufs, b[:0])
}

// getPacket draws a zeroed pooled packet marked owned.
func (n *Network) getPacket() *ipPacket {
	if l := len(n.freePackets); l > 0 {
		p := n.freePackets[l-1]
		n.freePackets[l-1] = nil
		n.freePackets = n.freePackets[:l-1]
		return p
	}
	return &ipPacket{}
}

// putPacket recycles an owned packet and its payload buffer.
func (n *Network) putPacket(p *ipPacket) {
	n.PutBuf(p.payload)
	*p = ipPacket{}
	n.freePackets = append(n.freePackets, p)
}

// SetMetrics installs a latency-metrics registry; segments then record
// per-segment queue depth and frame latency (nil disables measurement).
func (n *Network) SetMetrics(r *metrics.Registry) { n.metrics = r }

// SetEventTracer installs a structured event tracer recording ARP spoofs,
// frame drops and injected faults (nil disables). This is distinct from
// SetPacketTrace, which observes every frame; the event tracer captures
// only protocol-relevant occurrences.
func (n *Network) SetEventTracer(t *obs.Tracer) { n.tracer = t }

// Counters aggregates network-wide traffic totals since construction. The
// simulation loop is single-threaded, so plain integers suffice; callers
// snapshot them between RunFor calls.
type Counters struct {
	// FramesSent counts frames entering a segment (one per transmit, not
	// per receiver).
	FramesSent uint64
	// FramesDropped counts explicit per-receiver loss draws.
	FramesDropped uint64
	// ARPSpoofs counts unsolicited ARP replies injected by hosts —
	// gratuitous broadcasts after a take-over and the §5.2 targeted
	// variants alike.
	ARPSpoofs uint64
}

// Counters returns a snapshot of the network's traffic totals.
func (n *Network) Counters() Counters { return n.counters }

// New returns an empty network on s.
func New(s *sim.Sim) *Network {
	return &Network{sim: s, nextMAC: 0x0A0000000001, log: env.NopLogger{}}
}

// SetLogger routes network-level diagnostics (drops, unroutable packets) to l.
func (n *Network) SetLogger(l env.Logger) {
	if l == nil {
		l = env.NopLogger{}
	}
	n.log = l
}

// Sim returns the simulator driving this network.
func (n *Network) Sim() *sim.Sim { return n.sim }

// Hosts returns all hosts created on the network, in creation order.
func (n *Network) Hosts() []*Host {
	out := make([]*Host, len(n.hosts))
	copy(out, n.hosts)
	return out
}

// NewSegment creates a broadcast domain with the given link characteristics.
func (n *Network) NewSegment(name string, cfg SegmentConfig) *Segment {
	if cfg.LatencyMax < cfg.LatencyMin {
		cfg.LatencyMax = cfg.LatencyMin
	}
	return &Segment{net: n, name: name, cfg: cfg, partition: map[*NIC]int{}}
}

// Segment is an Ethernet broadcast domain (one switch). Partitioning a
// segment models a switch failure splitting it into isolated port groups, as
// footnote 1 of the paper describes.
type Segment struct {
	net       *Network
	name      string
	cfg       SegmentConfig
	nics      []*NIC
	partition map[*NIC]int

	// Instruments are created lazily on the first transmit because the
	// registry may be installed after segment construction; nil instruments
	// are no-ops.
	mQueueDepth   *metrics.Gauge
	mFrameLatency *metrics.Histogram
	instrumented  bool
}

// Name returns the segment's label.
func (s *Segment) Name() string { return s.name }

// Partition splits the segment so that only hosts within the same group can
// exchange frames. Every host with a NIC on this segment must appear in
// exactly one group; Partition panics otherwise, because a silently missing
// host would invalidate an experiment.
func (s *Segment) Partition(groups ...[]*Host) {
	assigned := make(map[*NIC]int, len(s.nics))
	for gi, group := range groups {
		for _, h := range group {
			found := false
			for _, nic := range h.nics {
				if nic.seg == s {
					if _, dup := assigned[nic]; dup {
						panic(fmt.Sprintf("netsim: host %s listed in multiple partition groups", h.name))
					}
					assigned[nic] = gi + 1
					found = true
				}
			}
			if !found {
				panic(fmt.Sprintf("netsim: host %s has no NIC on segment %s", h.name, s.name))
			}
		}
	}
	if len(assigned) != len(s.nics) {
		panic(fmt.Sprintf("netsim: partition of %s covers %d of %d NICs", s.name, len(assigned), len(s.nics)))
	}
	s.partition = assigned
}

// Heal removes any partition, restoring full connectivity.
func (s *Segment) Heal() {
	s.partition = map[*NIC]int{}
}

// PartitionGroup returns the partition group nic currently belongs to (0 for
// every NIC when the segment is whole). Two NICs on the segment can exchange
// frames iff their groups are equal; checkers use this to reason about
// reachable network components without re-deriving the partition.
func (s *Segment) PartitionGroup(nic *NIC) int {
	return s.partition[nic]
}

func (s *Segment) reachable(a, b *NIC) bool {
	return s.partition[a] == s.partition[b]
}

func (s *Segment) latency() time.Duration {
	spread := s.cfg.LatencyMax - s.cfg.LatencyMin
	if spread <= 0 {
		return s.cfg.LatencyMin
	}
	return s.cfg.LatencyMin + time.Duration(s.net.sim.Rand().Int63n(int64(spread)))
}

// transmit schedules delivery of fr from src to all matching reachable NICs.
func (s *Segment) transmit(src *NIC, fr frame) {
	s.net.counters.FramesSent++
	if !s.instrumented && s.net.metrics.Enabled() {
		s.instrumented = true
		seg := metrics.L("segment", s.name)
		s.mQueueDepth = s.net.metrics.Gauge("netsim_segment_queue_depth",
			"frames currently in flight on the segment (scheduled, not yet delivered)", seg)
		s.mFrameLatency = s.net.metrics.Histogram("netsim_frame_latency_seconds",
			"one-way frame latency drawn for each scheduled delivery, including receiver jitter", seg)
	}
	s.net.emitTrace(traceOf(s, fr, TraceSend, src.host.name))
	// Transmit-side impairment: the frame dies at the sending NIC, before
	// any receiver sees it. Gated on the knob so un-impaired runs draw the
	// same RNG sequence as ever.
	if src.txLoss > 0 && s.net.sim.Rand().Float64() < src.txLoss {
		s.net.counters.FramesDropped++
		s.net.log.Logf("netsim: %s impaired tx drop %s -> %s", s.name, fr.src, fr.dst)
		s.net.tracer.Emit(obs.Event{Source: obs.SourceNet, Kind: obs.KindFrameDrop,
			Node: src.host.name, Group: s.name, Detail: "tx-impair"})
		s.net.emitTrace(traceOf(s, fr, TraceDrop, src.host.name))
		return
	}
	for _, nic := range s.nics {
		if nic == src || !nic.up || !nic.host.alive {
			continue
		}
		if !s.reachable(src, nic) {
			continue
		}
		if fr.dst != BroadcastMAC && fr.dst != nic.mac {
			continue
		}
		if s.cfg.LossRate > 0 && s.net.sim.Rand().Float64() < s.cfg.LossRate {
			s.net.counters.FramesDropped++
			s.net.log.Logf("netsim: %s dropped frame %s -> %s", s.name, fr.src, fr.dst)
			s.net.tracer.Emit(obs.Event{Source: obs.SourceNet, Kind: obs.KindFrameDrop,
				Node: nic.host.name, Group: s.name})
			s.net.emitTrace(traceOf(s, fr, TraceDrop, nic.host.name))
			continue
		}
		// Receive-side impairment, drawn after the segment's own loss so the
		// base draw order is preserved.
		if nic.rxLoss > 0 && s.net.sim.Rand().Float64() < nic.rxLoss {
			s.net.counters.FramesDropped++
			s.net.log.Logf("netsim: %s impaired rx drop %s -> %s", s.name, fr.src, fr.dst)
			s.net.tracer.Emit(obs.Event{Source: obs.SourceNet, Kind: obs.KindFrameDrop,
				Node: nic.host.name, Group: s.name, Detail: "rx-impair"})
			s.net.emitTrace(traceOf(s, fr, TraceDrop, nic.host.name))
			continue
		}
		// Draw the latency exactly as before instrumentation existed (one
		// latency draw plus one jitter draw, in that order) so seeded runs
		// stay byte-identical whether or not metrics are enabled.
		delay := s.latency() + nic.host.jitter()
		if d := src.txDelay + nic.rxDelay; d > 0 {
			delay += d
		}
		s.mFrameLatency.ObserveDuration(delay)
		s.mQueueDepth.Inc()
		var j *deliveryJob
		if l := len(s.net.freeJobs); l > 0 {
			j = s.net.freeJobs[l-1]
			s.net.freeJobs[l-1] = nil
			s.net.freeJobs = s.net.freeJobs[:l-1]
		} else {
			j = &deliveryJob{}
		}
		j.seg, j.nic, j.fr = s, nic, fr
		s.net.sim.Post(delay, j)
	}
}

// deliveryJob is the pooled, pre-allocated form of the frame-delivery
// callback; together with sim.Post it keeps per-frame scheduling free of
// closure and timer allocations on busy segments.
type deliveryJob struct {
	seg *Segment
	nic *NIC
	fr  frame
}

// Run delivers the frame. The job recycles itself before touching the host
// so that sends performed inside the receive path can reuse it immediately.
func (j *deliveryJob) Run() {
	seg, nic, fr := j.seg, j.nic, j.fr
	j.seg, j.nic, j.fr = nil, nil, frame{}
	seg.net.freeJobs = append(seg.net.freeJobs, j)

	seg.mQueueDepth.Dec()
	if nic.up && nic.host.alive {
		seg.net.emitTrace(traceOf(seg, fr, TraceDeliver, nic.host.name))
		nic.host.receiveFrame(nic, fr)
	} else if fr.kind == frameIPv4 && fr.pkt != nil && fr.pkt.owned {
		// The receiver vanished between transmit and delivery; reclaim the
		// owned packet here since no consumption point will see it.
		seg.net.putPacket(fr.pkt)
	}
}

package netsim

import (
	"fmt"
	"net/netip"
	"sync/atomic"

	"wackamole/internal/env"
)

// Endpoint adapts a host UDP socket to env.PacketConn so that protocol code
// written against the abstract runtime can run unchanged on the simulator.
// The endpoint's stationary address is the NIC's primary address; Broadcast
// sends to the NIC's subnet broadcast (and, per the env contract, the sender
// also receives its own broadcasts).
type Endpoint struct {
	host    *Host
	nic     *NIC
	port    uint16
	sock    *Socket
	handler env.Handler
	// closed is atomic so that tear-down from outside the simulation
	// goroutine cannot race a concurrent frame delivery into a
	// closed-endpoint handler invocation.
	closed atomic.Bool
}

// OpenEndpoint binds (nic.Primary(), port) and returns the packet endpoint.
func (h *Host) OpenEndpoint(nic *NIC, port uint16) (*Endpoint, error) {
	ep := &Endpoint{host: h, nic: nic, port: port}
	sock, err := h.BindUDP(netip.Addr{}, port, func(src, dst netip.AddrPort, payload []byte) {
		if ep.closed.Load() || ep.handler == nil {
			return
		}
		ep.handler(env.Addr(src.String()), payload)
	})
	if err != nil {
		return nil, err
	}
	ep.sock = sock
	return ep, nil
}

// LocalAddr implements env.PacketConn.
func (e *Endpoint) LocalAddr() env.Addr {
	return env.Addr(netip.AddrPortFrom(e.nic.primary, e.port).String())
}

// SendTo implements env.PacketConn.
func (e *Endpoint) SendTo(to env.Addr, payload []byte) error {
	if e.closed.Load() {
		return fmt.Errorf("netsim: endpoint %s closed", e.LocalAddr())
	}
	dst, err := netip.ParseAddrPort(string(to))
	if err != nil {
		return fmt.Errorf("netsim: bad address %q: %w", to, err)
	}
	return e.host.SendUDP(netip.AddrPortFrom(e.nic.primary, e.port), dst, payload)
}

// Broadcast implements env.PacketConn.
func (e *Endpoint) Broadcast(payload []byte) error {
	if e.closed.Load() {
		return fmt.Errorf("netsim: endpoint %s closed", e.LocalAddr())
	}
	dst := netip.AddrPortFrom(e.nic.Broadcast(), e.port)
	return e.host.SendUDP(netip.AddrPortFrom(e.nic.primary, e.port), dst, payload)
}

// SetHandler implements env.PacketConn.
func (e *Endpoint) SetHandler(h env.Handler) { e.handler = h }

// Close implements env.PacketConn. It is safe to call from any goroutine; a
// frame delivered concurrently observes the flag and is dropped without
// invoking the handler.
func (e *Endpoint) Close() error {
	e.closed.Store(true)
	e.sock.Close()
	return nil
}

var _ env.PacketConn = (*Endpoint)(nil)

// Env returns a complete protocol runtime for this endpoint, logging through
// log (nil means discard).
func (e *Endpoint) Env(log env.Logger) env.Env {
	if log == nil {
		log = env.NopLogger{}
	}
	return env.Env{Clock: e.host, Conn: e, Log: log}
}

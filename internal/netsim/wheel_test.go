package netsim

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"wackamole/internal/env"
	"wackamole/internal/sim"
)

func TestWheelFiresInOrderWithCoalescing(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 1)
	h := hosts[0]
	w := NewTimerWheel(h, 10*time.Millisecond, 64)

	var fired []int
	var at []time.Duration
	for i, d := range []time.Duration{
		25 * time.Millisecond, // rounds up to 30ms
		5 * time.Millisecond,  // rounds up to 10ms
		30 * time.Millisecond, // exact boundary
	} {
		i := i
		w.Schedule(d, func() {
			fired = append(fired, i)
			at = append(at, s.Elapsed())
		})
	}
	s.RunFor(time.Second)

	if len(fired) != 3 {
		t.Fatalf("fired %d timers, want 3", len(fired))
	}
	// 5ms fires first; the two 30ms-boundary timers fire at the same tick in
	// arming order.
	if fired[0] != 1 || fired[1] != 0 || fired[2] != 2 {
		t.Fatalf("fire order = %v, want [1 0 2]", fired)
	}
	if at[0] != 10*time.Millisecond {
		t.Errorf("5ms timer fired at %v, want coalesced to 10ms", at[0])
	}
	if at[1] != 30*time.Millisecond || at[2] != 30*time.Millisecond {
		t.Errorf("30ms timers fired at %v and %v, want 30ms", at[1], at[2])
	}
	if w.Active() != 0 {
		t.Errorf("Active() = %d after drain, want 0", w.Active())
	}
}

func TestWheelStopPreventsFire(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 1)
	w := NewTimerWheel(hosts[0], 10*time.Millisecond, 64)

	fired := false
	tm := w.Schedule(50*time.Millisecond, func() { fired = true })
	s.RunFor(20 * time.Millisecond)
	tm.Stop()
	s.RunFor(time.Second)
	if fired {
		t.Fatal("stopped timer fired")
	}
	if w.Active() != 0 {
		t.Errorf("Active() = %d, want 0 after stopped entry swept", w.Active())
	}
}

func TestWheelMultipleRevolutions(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 1)
	// 4 slots × 10ms tick = one revolution per 40ms; a 100ms timeout needs
	// to survive two sweeps of its slot before firing.
	w := NewTimerWheel(hosts[0], 10*time.Millisecond, 4)

	var firedAt time.Duration
	w.Schedule(100*time.Millisecond, func() { firedAt = s.Elapsed() })
	s.RunFor(time.Second)
	if firedAt != 100*time.Millisecond {
		t.Fatalf("fired at %v, want 100ms", firedAt)
	}
}

func TestWheelRearmAfterIdle(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 1)
	w := NewTimerWheel(hosts[0], 10*time.Millisecond, 16)

	n := 0
	w.Schedule(10*time.Millisecond, func() { n++ })
	s.RunFor(200 * time.Millisecond) // wheel drains and disarms
	w.Schedule(15*time.Millisecond, func() { n++ })
	s.RunFor(200 * time.Millisecond)
	if n != 2 {
		t.Fatalf("fired %d timers across re-arm, want 2", n)
	}
	if got := s.Pending(); got != 0 {
		t.Errorf("%d events still pending after idle wheel, want 0 (wheel should disarm)", got)
	}
}

func TestWheelDeadHostDropsTimers(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 1)
	h := hosts[0]
	w := NewTimerWheel(h, 10*time.Millisecond, 16)

	fired := false
	w.Schedule(50*time.Millisecond, func() { fired = true })
	s.RunFor(20 * time.Millisecond)
	h.Crash()
	s.RunFor(time.Second)
	if fired {
		t.Fatal("timer fired on a crashed host")
	}
	if w.Active() != 0 {
		t.Errorf("Active() = %d, want 0 (dead host's timers discarded)", w.Active())
	}
}

func TestWheelSteadyStateDoesNotGrowEventQueue(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 1)
	w := NewTimerWheel(hosts[0], 10*time.Millisecond, 64)

	// Continuously re-arm: each firing schedules a replacement, modelling a
	// steady flow of per-request RTO timers. The simulator queue must stay
	// at one wheel event, not accumulate.
	count := 0
	var rearm func()
	rearm = func() {
		count++
		if count < 100 {
			w.Schedule(30*time.Millisecond, rearm)
		}
	}
	w.Schedule(30*time.Millisecond, rearm)
	s.RunFor(10 * time.Second)
	if count != 100 {
		t.Fatalf("fired %d, want 100", count)
	}
}

// TestSendUDPOwnedRoundTrip exercises the pooled fast path end to end,
// including reuse of the same packet and buffer records across sends.
func TestSendUDPOwnedRoundTrip(t *testing.T) {
	s, nw, _, hosts := lan(t, 1, 2)
	a, b := hosts[0], hosts[1]
	var got []string
	if _, err := b.BindUDP(netip.Addr{}, 9000, func(src, dst netip.AddrPort, payload []byte) {
		got = append(got, string(payload)) // copies before the buffer is recycled
	}); err != nil {
		t.Fatal(err)
	}
	dst := netip.AddrPortFrom(addr("10.0.0.2"), 9000)
	for i := 0; i < 3; i++ {
		buf := nw.GetBuf(5)
		copy(buf, "msg-")
		buf[4] = byte('0' + i)
		if err := a.SendUDPOwned(netip.AddrPort{}, dst, buf); err != nil {
			t.Fatal(err)
		}
		s.Run()
	}
	if len(got) != 3 || got[0] != "msg-0" || got[2] != "msg-2" {
		t.Fatalf("got %v, want [msg-0 msg-1 msg-2]", got)
	}
	// After the third round trip both pools should have their records back.
	if len(nw.freePackets) == 0 {
		t.Error("packet pool empty after deliveries; owned packets not recycled")
	}
	if len(nw.freeBufs) == 0 {
		t.Error("buffer pool empty after deliveries; payload buffers not recycled")
	}
}

func TestSendUDPOwnedThroughRouter(t *testing.T) {
	s := sim.New(1)
	nw := New(s)
	left := nw.NewSegment("left", DefaultSegmentConfig())
	right := nw.NewSegment("right", DefaultSegmentConfig())

	r := nw.NewHost("router")
	r.EnableForwarding()
	rl := r.AttachNIC(left, "eth0", netip.MustParsePrefix("10.0.0.1/24"))
	_ = rl
	r.AttachNIC(right, "eth1", netip.MustParsePrefix("10.0.1.1/24"))

	a := nw.NewHost("a")
	an := a.AttachNIC(left, "eth0", netip.MustParsePrefix("10.0.0.2/24"))
	a.SetDefaultGateway(an, addr("10.0.0.1"))
	b := nw.NewHost("b")
	bn := b.AttachNIC(right, "eth0", netip.MustParsePrefix("10.0.1.2/24"))
	b.SetDefaultGateway(bn, addr("10.0.1.1"))

	var got string
	if _, err := b.BindUDP(netip.Addr{}, 9000, func(_, _ netip.AddrPort, payload []byte) {
		got = string(payload)
	}); err != nil {
		t.Fatal(err)
	}
	buf := nw.GetBuf(7)
	copy(buf, "via-rtr")
	if err := a.SendUDPOwned(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.1.2"), 9000), buf); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got != "via-rtr" {
		t.Fatalf("payload = %q, want via-rtr", got)
	}
	if len(nw.freePackets) == 0 {
		t.Error("owned packet not recycled after forwarding hop")
	}
}

// TestEndpointCloseVsDeliver drives a frame delivery concurrently with
// Close from another goroutine: the handler must never run after Close wins
// the race, and nothing may panic under -race.
func TestEndpointCloseVsDeliver(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		s, _, _, hosts := lan(t, int64(trial+1), 2)
		a, b := hosts[0], hosts[1]
		bNIC := b.NICs()[0]

		ep, err := b.OpenEndpoint(bNIC, 9000)
		if err != nil {
			t.Fatal(err)
		}
		closed := make(chan struct{})
		ep.SetHandler(func(from env.Addr, payload []byte) {
			select {
			case <-closed:
				t.Error("handler invoked after Close completed")
			default:
			}
		})

		if err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 9000), []byte("x")); err != nil {
			t.Fatal(err)
		}
		// Race Close (foreign goroutine) against the delivery running on
		// the simulation goroutine.
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep.Close()
			close(closed)
		}()
		s.Run()
		wg.Wait()

		// After Close has fully completed no later delivery may reach the
		// handler at all.
		if err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 9000), []byte("y")); err != nil {
			t.Fatal(err)
		}
		s.Run()
	}
}

// TestBindAfterCloseReclaimsPort covers the port-reuse path now that Close
// no longer deletes from the socket map.
func TestBindAfterCloseReclaimsPort(t *testing.T) {
	s, _, _, hosts := lan(t, 1, 2)
	a, b := hosts[0], hosts[1]

	first, err := b.BindUDP(netip.Addr{}, 9000, func(_, _ netip.AddrPort, _ []byte) {
		t.Error("closed socket's handler invoked")
	})
	if err != nil {
		t.Fatal(err)
	}
	first.Close()

	var got string
	if _, err := b.BindUDP(netip.Addr{}, 9000, func(_, _ netip.AddrPort, payload []byte) {
		got = string(payload)
	}); err != nil {
		t.Fatalf("rebinding closed port: %v", err)
	}
	if err := a.SendUDP(netip.AddrPort{}, netip.AddrPortFrom(addr("10.0.0.2"), 9000), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if got != "fresh" {
		t.Fatalf("payload = %q, want fresh", got)
	}
}

package netsim

import (
	"errors"
	"fmt"
	"net/netip"
	"sort"
	"sync/atomic"
	"time"

	"wackamole/internal/arp"
	"wackamole/internal/env"
	"wackamole/internal/obs"
	"wackamole/internal/sim"
)

// Errors reported by host networking operations.
var (
	ErrHostDown    = errors.New("netsim: host is down")
	ErrNICDown     = errors.New("netsim: interface is down")
	ErrNoRoute     = errors.New("netsim: no route to destination")
	ErrPortInUse   = errors.New("netsim: port already bound")
	ErrAddrInUse   = errors.New("netsim: address already configured")
	ErrAddrMissing = errors.New("netsim: address not configured")
)

// defaultARPTTL is how long a learned ARP entry stays valid. Real stacks use
// anywhere from tens of seconds to hours; ten minutes makes the cost of a
// stale entry visible in fail-over experiments without spoofing.
const defaultARPTTL = 10 * time.Minute

const (
	arpRetryInterval = 500 * time.Millisecond
	arpMaxRetries    = 3
	defaultTTL       = 64
)

// UDPHandler consumes a datagram delivered to a bound socket.
type UDPHandler func(src, dst netip.AddrPort, payload []byte)

// Host is a simulated machine: a set of interfaces, a routing table, UDP
// sockets, and ARP state. Routers are Hosts with forwarding enabled.
type Host struct {
	net        *Network
	name       string
	nics       []*NIC
	alive      bool
	forwarding bool
	routes     []route
	sockets    map[uint16]*Socket
	arpTTL     time.Duration
	// procJitter models a loaded machine: every timer firing and inbound
	// frame is delayed by a uniform draw from [0, procJitter]. The paper's
	// §6 notes that on highly loaded machines the daemons should run with
	// real-time priority to avoid false-positive failure detections; this
	// knob reproduces the effect of not doing so.
	procJitter time.Duration
	// acceptUnsolicitedARP controls whether ARP replies create new cache
	// entries (in addition to updating existing ones). Hosts that must learn
	// bindings they never asked for — cluster peers receiving spoofed
	// announcements — enable it.
	acceptUnsolicitedARP bool
	// ignoreBroadcastGratuitousARP models devices that discard gratuitous
	// announcements arriving as broadcast frames but honour unicast ARP
	// replies addressed to them — the reason the paper's router application
	// shares ARP caches between daemons and spoofs each known host
	// individually (§5.2).
	ignoreBroadcastGratuitousARP bool
}

type route struct {
	prefix netip.Prefix
	nic    *NIC
	gw     netip.Addr // invalid ⇒ on-link
}

// Socket is a bound UDP endpoint on a host.
type Socket struct {
	host    *Host
	addr    netip.Addr // invalid ⇒ wildcard
	port    uint16
	handler UDPHandler
	// closed is atomic so that Close may race with a frame delivery running
	// on the simulation goroutine: tear-down code sometimes runs off-loop,
	// and a delivery that observes the flag must simply drop the datagram
	// rather than invoke the handler of a dead socket.
	closed atomic.Bool
}

// NewHost creates a live host with no interfaces.
func (n *Network) NewHost(name string) *Host {
	h := &Host{
		net:     n,
		name:    name,
		alive:   true,
		sockets: map[uint16]*Socket{},
		arpTTL:  defaultARPTTL,
	}
	n.hosts = append(n.hosts, h)
	return h
}

// Name returns the host's label (also used as the probe server identity).
func (h *Host) Name() string { return h.name }

// Alive reports whether the host is running.
func (h *Host) Alive() bool { return h.alive }

// SetARPTTL overrides the ARP cache entry lifetime for all interfaces.
func (h *Host) SetARPTTL(ttl time.Duration) { h.arpTTL = ttl }

// SetProcessingJitter makes the host behave like a loaded machine: timers
// and inbound frames are delayed by up to max.
func (h *Host) SetProcessingJitter(max time.Duration) { h.procJitter = max }

// jitter draws one scheduling delay.
func (h *Host) jitter() time.Duration {
	if h.procJitter <= 0 {
		return 0
	}
	return time.Duration(h.net.sim.Rand().Int63n(int64(h.procJitter)))
}

// SetAcceptUnsolicitedARP controls whether replies may create cache entries.
func (h *Host) SetAcceptUnsolicitedARP(v bool) { h.acceptUnsolicitedARP = v }

// SetIgnoreBroadcastGratuitousARP makes the host discard broadcast-frame
// gratuitous announcements (unicast ARP replies still update its cache).
func (h *Host) SetIgnoreBroadcastGratuitousARP(v bool) { h.ignoreBroadcastGratuitousARP = v }

// EnableForwarding turns the host into a packet-forwarding router.
func (h *Host) EnableForwarding() { h.forwarding = true }

// Crash stops the host: interfaces go silent, timers stop firing, sockets
// deliver nothing. State is retained for a later Restart.
func (h *Host) Crash() {
	h.alive = false
	h.net.tracer.Emit(obs.Event{Source: obs.SourceNet, Kind: obs.KindFault, Node: h.name, Detail: "crash"})
}

// Restart brings a crashed host back with its configuration intact.
// Protocol state machines running on the host are responsible for their own
// recovery.
func (h *Host) Restart() {
	h.alive = true
	h.net.tracer.Emit(obs.Event{Source: obs.SourceNet, Kind: obs.KindRestore, Node: h.name, Detail: "restart"})
}

// Now returns the current virtual time.
func (h *Host) Now() time.Time { return h.net.sim.Now() }

// AfterFunc schedules f on the simulator, gated on the host being alive at
// fire time. It satisfies env.Clock together with Now.
func (h *Host) AfterFunc(d time.Duration, f func()) env.Timer {
	return h.net.sim.After(d+h.jitter(), func() {
		if h.alive {
			f()
		}
	})
}

var _ env.Clock = (*Host)(nil)

// NIC is a network interface: one MAC, one subnet, and a set of IPv4
// addresses (the stationary address plus any virtual addresses currently
// held). Virtual IP acquire/release in the paper's IP-address-control
// mechanism maps to AddAddr/RemoveAddr here.
type NIC struct {
	host    *Host
	seg     *Segment
	name    string
	mac     MAC
	up      bool
	prefix  netip.Prefix
	primary netip.Addr
	addrs   map[netip.Addr]bool
	arp     map[netip.Addr]arpEntry
	pending map[netip.Addr]*arpPending
	// Directional gray-failure impairments (armed by internal/faults).
	// txLoss/txDelay apply to frames this interface transmits, rxLoss/rxDelay
	// to frames it would receive — modelling asymmetric reachability, where a
	// link passes traffic one way but not the other. All four default to
	// zero, and every use in the transmit path is gated on the knob being
	// nonzero, so the default path draws exactly the same RNG sequence as it
	// did before the fault plane existed.
	txLoss  float64
	rxLoss  float64
	txDelay time.Duration
	rxDelay time.Duration
}

type arpEntry struct {
	mac     MAC
	expires time.Time
}

type arpPending struct {
	packets []*ipPacket
	retries int
	timer   env.Timer
}

// AttachNIC connects the host to seg with primary address addr (which also
// defines the subnet). The NIC comes up immediately.
func (h *Host) AttachNIC(seg *Segment, name string, addr netip.Prefix) *NIC {
	if !addr.Addr().Is4() {
		panic(fmt.Sprintf("netsim: %s: only IPv4 is modelled, got %v", h.name, addr))
	}
	mac := h.net.nextMAC
	h.net.nextMAC++
	nic := &NIC{
		host:    h,
		seg:     seg,
		name:    name,
		mac:     mac,
		up:      true,
		prefix:  addr.Masked(),
		primary: addr.Addr(),
		addrs:   map[netip.Addr]bool{addr.Addr(): true},
		arp:     map[netip.Addr]arpEntry{},
		pending: map[netip.Addr]*arpPending{},
	}
	h.nics = append(h.nics, nic)
	seg.nics = append(seg.nics, nic)
	// Connected route for the subnet.
	h.routes = append(h.routes, route{prefix: nic.prefix, nic: nic})
	return nic
}

// Name returns the interface label.
func (nic *NIC) Name() string { return nic.name }

// MAC returns the interface's hardware address.
func (nic *NIC) MAC() MAC { return nic.mac }

// Primary returns the stationary address.
func (nic *NIC) Primary() netip.Addr { return nic.primary }

// Prefix returns the interface's subnet.
func (nic *NIC) Prefix() netip.Prefix { return nic.prefix }

// Segment returns the broadcast domain the NIC is attached to.
func (nic *NIC) Segment() *Segment { return nic.seg }

// Host returns the owning host.
func (nic *NIC) Host() *Host { return nic.host }

// Up reports whether the interface is enabled.
func (nic *NIC) Up() bool { return nic.up }

// SetUp enables or disables the interface. Disabling models the paper's
// fault-injection method: "disconnecting the interface through which Spread,
// Wackamole, and the experimental server access the network".
func (nic *NIC) SetUp(up bool) {
	if nic.up == up {
		return
	}
	nic.up = up
	kind := obs.KindFault
	if up {
		kind = obs.KindRestore
	}
	nic.host.net.tracer.Emit(obs.Event{Source: obs.SourceNet, Kind: kind,
		Node: nic.host.name, Detail: nic.name})
}

// SetTxImpairment installs a loss probability and an added fixed delay on
// frames the interface transmits. Zero values clear the direction.
func (nic *NIC) SetTxImpairment(loss float64, delay time.Duration) {
	nic.txLoss, nic.txDelay = loss, delay
}

// SetRxImpairment installs a loss probability and an added fixed delay on
// frames the interface receives. Zero values clear the direction.
func (nic *NIC) SetRxImpairment(loss float64, delay time.Duration) {
	nic.rxLoss, nic.rxDelay = loss, delay
}

// ClearImpairments removes all directional loss and delay from the
// interface, restoring the clean-link behaviour.
func (nic *NIC) ClearImpairments() {
	nic.txLoss, nic.rxLoss, nic.txDelay, nic.rxDelay = 0, 0, 0, 0
}

// Impaired reports whether any directional impairment is active.
func (nic *NIC) Impaired() bool {
	return nic.txLoss > 0 || nic.rxLoss > 0 || nic.txDelay > 0 || nic.rxDelay > 0
}

// AddAddr configures an additional (virtual) address on the interface.
func (nic *NIC) AddAddr(a netip.Addr) error {
	if nic.addrs[a] {
		return fmt.Errorf("%w: %v on %s/%s", ErrAddrInUse, a, nic.host.name, nic.name)
	}
	nic.addrs[a] = true
	return nil
}

// RemoveAddr drops an address from the interface. The primary address cannot
// be removed.
func (nic *NIC) RemoveAddr(a netip.Addr) error {
	if a == nic.primary {
		return fmt.Errorf("netsim: cannot remove primary address %v from %s/%s", a, nic.host.name, nic.name)
	}
	if !nic.addrs[a] {
		return fmt.Errorf("%w: %v on %s/%s", ErrAddrMissing, a, nic.host.name, nic.name)
	}
	delete(nic.addrs, a)
	return nil
}

// HasAddr reports whether the interface currently answers for a.
func (nic *NIC) HasAddr(a netip.Addr) bool { return nic.addrs[a] }

// Addrs returns all configured addresses, sorted.
func (nic *NIC) Addrs() []netip.Addr {
	out := make([]netip.Addr, 0, len(nic.addrs))
	for a := range nic.addrs {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Broadcast returns the subnet broadcast address for the NIC.
func (nic *NIC) Broadcast() netip.Addr {
	bits := nic.prefix.Bits()
	a4 := nic.prefix.Addr().As4()
	var mask uint32 = 0xFFFFFFFF >> bits
	v := uint32(a4[0])<<24 | uint32(a4[1])<<16 | uint32(a4[2])<<8 | uint32(a4[3])
	v |= mask
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// ARPEntry reports the cached binding for ip, if present and fresh.
func (nic *NIC) ARPEntry(ip netip.Addr) (MAC, bool) {
	e, ok := nic.arp[ip]
	if !ok || nic.host.net.sim.Now().After(e.expires) {
		return 0, false
	}
	return e.mac, true
}

// ARPEntries returns a copy of the interface's fresh cache entries. The
// ARP-cache-sharing mechanism of the paper's router application (§5.2)
// reads these, standing in for /proc/net/arp.
func (nic *NIC) ARPEntries() map[netip.Addr]MAC {
	now := nic.host.net.sim.Now()
	out := make(map[netip.Addr]MAC, len(nic.arp))
	for ip, e := range nic.arp {
		if !now.After(e.expires) {
			out[ip] = e.mac
		}
	}
	return out
}

// FlushARP clears the interface's ARP cache.
func (nic *NIC) FlushARP() {
	nic.arp = map[netip.Addr]arpEntry{}
}

// AddRoute installs a static route. A valid gw makes it a gateway route;
// an invalid gw means on-link.
func (h *Host) AddRoute(prefix netip.Prefix, nic *NIC, gw netip.Addr) {
	h.routes = append(h.routes, route{prefix: prefix.Masked(), nic: nic, gw: gw})
}

// RemoveRoute deletes the first route exactly matching prefix and gateway.
// It reports whether a route was removed.
func (h *Host) RemoveRoute(prefix netip.Prefix, gw netip.Addr) bool {
	prefix = prefix.Masked()
	for i, r := range h.routes {
		if r.prefix == prefix && r.gw == gw {
			h.routes = append(h.routes[:i], h.routes[i+1:]...)
			return true
		}
	}
	return false
}

// SetDefaultGateway installs a 0.0.0.0/0 route via gw out of nic.
func (h *Host) SetDefaultGateway(nic *NIC, gw netip.Addr) {
	h.AddRoute(netip.PrefixFrom(netip.AddrFrom4([4]byte{}), 0), nic, gw)
}

// lookupRoute performs longest-prefix match.
func (h *Host) lookupRoute(dst netip.Addr) (nic *NIC, nexthop netip.Addr, ok bool) {
	best := -1
	for _, r := range h.routes {
		if r.prefix.Contains(dst) && r.prefix.Bits() > best {
			best = r.prefix.Bits()
			nic = r.nic
			if r.gw.IsValid() {
				nexthop = r.gw
			} else {
				nexthop = dst
			}
			ok = true
		}
	}
	return nic, nexthop, ok
}

// hasLocalAddr reports whether any interface answers for a.
func (h *Host) hasLocalAddr(a netip.Addr) bool {
	for _, nic := range h.nics {
		if nic.addrs[a] {
			return true
		}
	}
	return false
}

// NICs returns the host's interfaces in attachment order.
func (h *Host) NICs() []*NIC {
	out := make([]*NIC, len(h.nics))
	copy(out, h.nics)
	return out
}

// BindUDP registers a handler for datagrams to (addr, port). An invalid addr
// binds the wildcard. One socket per port is supported, matching what the
// simulated workloads need.
func (h *Host) BindUDP(addr netip.Addr, port uint16, fn UDPHandler) (*Socket, error) {
	if s, ok := h.sockets[port]; ok && !s.closed.Load() {
		return nil, fmt.Errorf("%w: %s port %d", ErrPortInUse, h.name, port)
	}
	s := &Socket{host: h, addr: addr, port: port, handler: fn}
	h.sockets[port] = s
	return s, nil
}

// Close unbinds the socket. Close only flips the atomic flag — it does not
// touch the host's socket map — so it is safe to call concurrently with the
// simulation loop; BindUDP reclaims the port by overwriting the closed
// socket's slot.
func (s *Socket) Close() {
	s.closed.Store(true)
}

// SendUDP transmits a datagram. The source address may be invalid, in which
// case the egress interface's primary address is used. Destinations equal to
// a local address are delivered locally (loopback); subnet broadcast
// destinations fan out on the segment and also loop back to local sockets.
func (h *Host) SendUDP(src, dst netip.AddrPort, payload []byte) error {
	if !h.alive {
		return ErrHostDown
	}
	p := &ipPacket{
		src:     src.Addr(),
		dst:     dst.Addr(),
		ttl:     defaultTTL,
		srcPort: src.Port(),
		dstPort: dst.Port(),
		payload: append([]byte(nil), payload...),
	}
	// Local delivery.
	if h.hasLocalAddr(p.dst) {
		if !p.src.IsValid() {
			p.src = p.dst
		}
		h.net.sim.After(10*time.Microsecond, func() {
			if h.alive {
				h.deliverUDP(p)
			}
		})
		return nil
	}
	nic, nexthop, ok := h.lookupRoute(p.dst)
	if !ok {
		// Maybe a broadcast to a directly attached subnet.
		if bnic := h.broadcastNIC(p.dst); bnic != nil {
			nic, nexthop, ok = bnic, p.dst, true
		}
	}
	if !ok {
		return fmt.Errorf("%w: %v from %s", ErrNoRoute, p.dst, h.name)
	}
	if !p.src.IsValid() {
		p.src = nic.primary
		if p.srcPort == 0 {
			p.srcPort = src.Port()
		}
	}
	return h.egress(nic, nexthop, p)
}

// Network returns the network this host belongs to. Traffic generators use
// it to reach the payload-buffer pool that pairs with SendUDPOwned.
func (h *Host) Network() *Network { return h.net }

// SendUDPOwned transmits a datagram whose payload buffer the caller hands
// over to the network, typically one obtained from Network.GetBuf. Unlike
// SendUDP no defensive copy is made; the buffer and the packet record are
// recycled after the receiving socket's handler returns. Two contracts
// follow: the caller must not touch payload after a successful call, and
// receiving handlers must not retain the payload slice past their return.
// Only unicast destinations take the owned fast path — broadcast and local
// loopback destinations fall back to SendUDP's copy-free-of-pools
// semantics. On error the caller retains ownership of payload.
func (h *Host) SendUDPOwned(src, dst netip.AddrPort, payload []byte) error {
	if !h.alive {
		return ErrHostDown
	}
	if h.hasLocalAddr(dst.Addr()) {
		return h.SendUDP(src, dst, payload)
	}
	nic, nexthop, ok := h.lookupRoute(dst.Addr())
	if !ok || h.isBroadcastFor(nic, dst.Addr()) {
		// Unroutable (possibly a limited broadcast) or subnet broadcast:
		// both are off the fast path.
		return h.SendUDP(src, dst, payload)
	}
	p := h.net.getPacket()
	p.src = src.Addr()
	p.dst = dst.Addr()
	p.ttl = defaultTTL
	p.srcPort = src.Port()
	p.dstPort = dst.Port()
	p.payload = payload
	p.owned = true
	if !p.src.IsValid() {
		p.src = nic.primary
	}
	if err := h.egress(nic, nexthop, p); err != nil {
		p.payload = nil // caller keeps the buffer on error
		h.net.putPacket(p)
		return err
	}
	return nil
}

// broadcastNIC returns the NIC whose subnet broadcast (or the limited
// broadcast address) matches dst.
func (h *Host) broadcastNIC(dst netip.Addr) *NIC {
	for _, nic := range h.nics {
		if dst == nic.Broadcast() || dst == netip.AddrFrom4([4]byte{255, 255, 255, 255}) {
			return nic
		}
	}
	return nil
}

func (h *Host) isBroadcastFor(nic *NIC, dst netip.Addr) bool {
	return dst == nic.Broadcast() || dst == netip.AddrFrom4([4]byte{255, 255, 255, 255})
}

// egress pushes p out of nic towards nexthop, resolving ARP as needed.
func (h *Host) egress(nic *NIC, nexthop netip.Addr, p *ipPacket) error {
	if !nic.up {
		return fmt.Errorf("%w: %s/%s", ErrNICDown, h.name, nic.name)
	}
	if h.isBroadcastFor(nic, p.dst) {
		// Broadcast fans out to many receivers; an owned packet would be
		// recycled once per receiver, so release ownership first (the one
		// extra garbage-collected packet is irrelevant off the fast path).
		p.owned = false
		nic.seg.transmit(nic, frame{src: nic.mac, dst: BroadcastMAC, kind: frameIPv4, pkt: p})
		// Local sockets also hear subnet broadcasts.
		h.net.sim.After(10*time.Microsecond, func() {
			if h.alive && nic.up {
				h.deliverUDP(p)
			}
		})
		return nil
	}
	if mac, ok := nic.ARPEntry(nexthop); ok {
		nic.seg.transmit(nic, frame{src: nic.mac, dst: mac, kind: frameIPv4, pkt: p})
		return nil
	}
	h.arpResolve(nic, nexthop, p)
	return nil
}

// arpResolve queues p and issues an ARP request for ip, with bounded retry.
func (h *Host) arpResolve(nic *NIC, ip netip.Addr, p *ipPacket) {
	pend, ok := nic.pending[ip]
	if ok {
		pend.packets = append(pend.packets, p)
		return
	}
	pend = &arpPending{packets: []*ipPacket{p}}
	nic.pending[ip] = pend
	h.sendARPRequest(nic, ip)
	var retry func()
	retry = func() {
		cur, still := nic.pending[ip]
		if !still || cur != pend {
			return
		}
		if pend.retries >= arpMaxRetries {
			delete(nic.pending, ip)
			h.net.log.Logf("netsim: %s: ARP for %v timed out, dropping %d packets", h.name, ip, len(pend.packets))
			return
		}
		pend.retries++
		h.sendARPRequest(nic, ip)
		pend.timer = h.AfterFunc(arpRetryInterval, retry)
	}
	pend.timer = h.AfterFunc(arpRetryInterval, retry)
}

func (h *Host) sendARPRequest(nic *NIC, ip netip.Addr) {
	if !nic.up {
		return
	}
	req := arp.Packet{
		Op:        arp.OpRequest,
		SenderMAC: nic.mac.Bytes(),
		SenderIP:  nic.primary,
		TargetIP:  ip,
	}
	payload, err := req.Encode()
	if err != nil {
		h.net.log.Logf("netsim: %s: encode ARP request: %v", h.name, err)
		return
	}
	nic.seg.transmit(nic, frame{src: nic.mac, dst: BroadcastMAC, kind: frameARP, arp: payload})
}

// SendGratuitousARP broadcasts a gratuitous ARP reply announcing that this
// interface answers for ip. This is the mechanism Wackamole's
// platform-specific code uses to update router caches after a take-over.
func (h *Host) SendGratuitousARP(nic *NIC, ip netip.Addr) error {
	return h.SendSpoofedARP(nic, ip, BroadcastMAC)
}

// SendSpoofedARP sends an unsolicited ARP reply claiming <ip, nic.mac> to a
// specific destination MAC (or broadcast). The paper's §5.1 describes
// exactly this: "spoofing of ARP reply packets to force updates to the
// router ARP cache".
func (h *Host) SendSpoofedARP(nic *NIC, ip netip.Addr, dst MAC) error {
	if !h.alive {
		return ErrHostDown
	}
	if !nic.up {
		return fmt.Errorf("%w: %s/%s", ErrNICDown, h.name, nic.name)
	}
	rep := arp.Packet{
		Op:        arp.OpReply,
		SenderMAC: nic.mac.Bytes(),
		SenderIP:  ip,
		TargetMAC: dst.Bytes(),
		TargetIP:  ip, // gratuitous form: sender == target
	}
	payload, err := rep.Encode()
	if err != nil {
		return fmt.Errorf("netsim: encode spoofed ARP: %w", err)
	}
	h.net.counters.ARPSpoofs++
	if h.net.tracer.Enabled() {
		detail := "unicast"
		if dst == BroadcastMAC {
			detail = "broadcast"
		}
		h.net.tracer.Emit(obs.Event{Source: obs.SourceNet, Kind: obs.KindARPSpoof,
			Node: h.name, Addr: ip.String(), Detail: detail})
	}
	nic.seg.transmit(nic, frame{src: nic.mac, dst: dst, kind: frameARP, arp: payload})
	return nil
}

// receiveFrame is the inbound path for a frame accepted by nic.
func (h *Host) receiveFrame(nic *NIC, fr frame) {
	switch fr.kind {
	case frameARP:
		h.receiveARP(nic, fr)
	case frameIPv4:
		h.receiveIP(nic, fr)
	}
}

func (h *Host) receiveARP(nic *NIC, fr frame) {
	p, err := arp.Decode(fr.arp)
	if err != nil {
		h.net.log.Logf("netsim: %s: drop ARP frame: %v", h.name, err)
		return
	}
	senderMAC := MACFromBytes(p.SenderMAC)
	now := h.net.sim.Now()
	targetIsUs := nic.addrs[p.TargetIP]

	_, known := nic.arp[p.SenderIP]
	// Standard cache maintenance: update an existing entry on any ARP
	// traffic from the sender; create a new entry when we are the target,
	// when the packet answers an outstanding resolution, or when the host
	// opts into unsolicited learning.
	_, awaited := nic.pending[p.SenderIP]
	discard := h.ignoreBroadcastGratuitousARP && p.IsGratuitous() && fr.dst == BroadcastMAC && !awaited
	if !discard && (known || targetIsUs || awaited || h.acceptUnsolicitedARP) {
		nic.arp[p.SenderIP] = arpEntry{mac: senderMAC, expires: now.Add(h.arpTTL)}
	}
	if awaited {
		h.flushPending(nic, p.SenderIP, senderMAC)
	}

	if p.Op == arp.OpRequest && targetIsUs {
		rep := arp.Packet{
			Op:        arp.OpReply,
			SenderMAC: nic.mac.Bytes(),
			SenderIP:  p.TargetIP,
			TargetMAC: p.SenderMAC,
			TargetIP:  p.SenderIP,
		}
		payload, err := rep.Encode()
		if err != nil {
			h.net.log.Logf("netsim: %s: encode ARP reply: %v", h.name, err)
			return
		}
		nic.seg.transmit(nic, frame{src: nic.mac, dst: senderMAC, kind: frameARP, arp: payload})
	}
}

func (h *Host) flushPending(nic *NIC, ip netip.Addr, mac MAC) {
	pend, ok := nic.pending[ip]
	if !ok {
		return
	}
	delete(nic.pending, ip)
	if pend.timer != nil {
		pend.timer.Stop()
	}
	for _, p := range pend.packets {
		if nic.up {
			nic.seg.transmit(nic, frame{src: nic.mac, dst: mac, kind: frameIPv4, pkt: p})
		}
	}
}

func (h *Host) receiveIP(nic *NIC, fr frame) {
	p := fr.pkt
	if nic.addrs[p.dst] || h.isBroadcastFor(nic, p.dst) {
		h.deliverUDP(p)
		return
	}
	if h.forwarding {
		h.forward(p)
		return
	}
	// Not for us and not forwarding: drop silently, as a real stack would.
	if p.owned {
		h.net.putPacket(p)
	}
}

func (h *Host) forward(p *ipPacket) {
	h.net.emitTrace(TraceEvent{Kind: TraceForward, Host: h.name, SrcIP: p.src, DstIP: p.dst})
	if p.ttl <= 1 {
		h.net.log.Logf("netsim: %s: TTL expired for %v -> %v", h.name, p.src, p.dst)
		if p.owned {
			h.net.putPacket(p)
		}
		return
	}
	nic, nexthop, ok := h.lookupRoute(p.dst)
	if !ok {
		h.net.log.Logf("netsim: %s: no route for %v", h.name, p.dst)
		if p.owned {
			h.net.putPacket(p)
		}
		return
	}
	out := p
	if !p.owned {
		// A broadcast frame shares its packet between receivers, so the
		// hop count must not be decremented in place. Owned packets are
		// unicast with a single consumer and forward without copying.
		cp := *p
		out = &cp
	}
	out.ttl--
	if err := h.egress(nic, nexthop, out); err != nil {
		h.net.log.Logf("netsim: %s: forward %v -> %v: %v", h.name, p.src, p.dst, err)
		if out.owned {
			h.net.putPacket(out)
		}
	}
}

func (h *Host) deliverUDP(p *ipPacket) {
	if s, ok := h.sockets[p.dstPort]; ok && !s.closed.Load() &&
		(!s.addr.IsValid() || s.addr == p.dst) {
		src := netip.AddrPortFrom(p.src, p.srcPort)
		dst := netip.AddrPortFrom(p.dst, p.dstPort)
		s.handler(src, dst, p.payload)
	}
	// Terminal consumption point for owned packets: whether or not a
	// handler ran, the datagram's life ends here. Handlers must not retain
	// the payload past their return — SendUDPOwned documents the contract.
	if p.owned {
		h.net.putPacket(p)
	}
}

// Ensure sim.Timer satisfies env.Timer (compile-time interface check).
var _ env.Timer = (*sim.Timer)(nil)

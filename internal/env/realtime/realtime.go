// Package realtime implements the env runtime over wall-clock time and real
// UDP sockets, so the same protocol code that runs under the deterministic
// simulator also runs as an actual daemon (cmd/wackamole, the loopback
// example).
//
// Each node gets one Loop goroutine; inbound datagrams and timer firings
// are posted onto it, preserving the env contract that all callbacks are
// serialized.
package realtime

import (
	"fmt"
	"net"
	"sync"
	"time"

	"wackamole/internal/env"
)

// Loop serializes callbacks for one node.
type Loop struct {
	mu     sync.Mutex
	ch     chan func()
	closed bool
	done   chan struct{}
}

// NewLoop starts the callback goroutine.
func NewLoop() *Loop {
	l := &Loop{ch: make(chan func(), 256), done: make(chan struct{})}
	go func() {
		defer close(l.done)
		for f := range l.ch {
			f()
		}
	}()
	return l
}

// Post enqueues f for serialized execution. Posts after Close are dropped.
func (l *Loop) Post(f func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.ch <- f
}

// Close stops the loop after draining queued callbacks and waits for the
// goroutine to exit.
func (l *Loop) Close() {
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		close(l.ch)
	}
	l.mu.Unlock()
	<-l.done
}

// Clock is a wall clock whose timers fire on the loop.
type Clock struct {
	loop *Loop
}

// NewClock returns a Clock posting to loop.
func NewClock(loop *Loop) *Clock { return &Clock{loop: loop} }

// Now implements env.Clock.
func (c *Clock) Now() time.Time { return time.Now() }

// AfterFunc implements env.Clock.
func (c *Clock) AfterFunc(d time.Duration, f func()) env.Timer {
	t := time.AfterFunc(d, func() { c.loop.Post(f) })
	return timerWrapper{t}
}

type timerWrapper struct{ t *time.Timer }

func (w timerWrapper) Stop() bool { return w.t.Stop() }

var _ env.Clock = (*Clock)(nil)

// Conn is an env.PacketConn over a UDP socket. Broadcast fans out to a
// configured peer list (which should include this node), making it usable
// on loopback and on networks where IP broadcast is unavailable.
type Conn struct {
	udp   *net.UDPConn
	loop  *Loop
	local env.Addr
	peers []env.Addr

	mu      sync.Mutex
	handler env.Handler
	closed  bool
	rdDone  chan struct{}
}

// Listen binds listen ("ip:port") and returns a Conn whose Broadcast sends
// to every address in peers.
func Listen(loop *Loop, listen string, peers []string) (*Conn, error) {
	addr, err := net.ResolveUDPAddr("udp", listen)
	if err != nil {
		return nil, fmt.Errorf("realtime: resolve %q: %w", listen, err)
	}
	udp, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("realtime: listen %q: %w", listen, err)
	}
	c := &Conn{
		udp:    udp,
		loop:   loop,
		local:  env.Addr(udp.LocalAddr().String()),
		rdDone: make(chan struct{}),
	}
	for _, p := range peers {
		c.peers = append(c.peers, env.Addr(p))
	}
	go c.readLoop()
	return c, nil
}

func (c *Conn) readLoop() {
	defer close(c.rdDone)
	buf := make([]byte, 64*1024)
	for {
		n, from, err := c.udp.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		src := env.Addr(from.String())
		c.loop.Post(func() {
			c.mu.Lock()
			h := c.handler
			closed := c.closed
			c.mu.Unlock()
			if h != nil && !closed {
				h(src, payload)
			}
		})
	}
}

// LocalAddr implements env.PacketConn.
func (c *Conn) LocalAddr() env.Addr { return c.local }

// SendTo implements env.PacketConn.
func (c *Conn) SendTo(to env.Addr, payload []byte) error {
	dst, err := net.ResolveUDPAddr("udp", string(to))
	if err != nil {
		return fmt.Errorf("realtime: resolve %q: %w", to, err)
	}
	if _, err := c.udp.WriteToUDP(payload, dst); err != nil {
		return fmt.Errorf("realtime: send to %s: %w", to, err)
	}
	return nil
}

// Broadcast implements env.PacketConn by unicasting to every configured
// peer, including this node when it appears in the list.
func (c *Conn) Broadcast(payload []byte) error {
	var first error
	for _, p := range c.peers {
		if err := c.SendTo(p, payload); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// SetHandler implements env.PacketConn.
func (c *Conn) SetHandler(h env.Handler) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handler = h
}

// Close implements env.PacketConn.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.udp.Close()
	<-c.rdDone
	return err
}

var _ env.PacketConn = (*Conn)(nil)

// NewEnv assembles a complete runtime for one real node. The returned
// cleanup closes the connection and stops the loop.
func NewEnv(listen string, peers []string, log env.Logger) (env.Env, *Loop, func(), error) {
	loop := NewLoop()
	conn, err := Listen(loop, listen, peers)
	if err != nil {
		loop.Close()
		return env.Env{}, nil, nil, err
	}
	if log == nil {
		log = env.NopLogger{}
	}
	e := env.Env{Clock: NewClock(loop), Conn: conn, Log: log}
	cleanup := func() {
		if err := conn.Close(); err != nil {
			log.Logf("realtime: close: %v", err)
		}
		loop.Close()
	}
	return e, loop, cleanup, nil
}

package realtime

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"wackamole/internal/env"
)

func TestLoopSerializesCallbacks(t *testing.T) {
	loop := NewLoop()
	defer loop.Close()
	var mu sync.Mutex
	inside := false
	violations := 0
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		loop.Post(func() {
			defer wg.Done()
			mu.Lock()
			if inside {
				violations++
			}
			inside = true
			mu.Unlock()
			mu.Lock()
			inside = false
			mu.Unlock()
		})
	}
	wg.Wait()
	if violations != 0 {
		t.Fatalf("%d concurrent callback executions", violations)
	}
}

func TestPostAfterCloseDropped(t *testing.T) {
	loop := NewLoop()
	loop.Close()
	loop.Post(func() { t.Error("callback ran after Close") }) // must not panic
	time.Sleep(10 * time.Millisecond)
}

func TestClockAfterFuncFiresOnLoop(t *testing.T) {
	loop := NewLoop()
	defer loop.Close()
	clock := NewClock(loop)
	done := make(chan struct{})
	clock.AfterFunc(5*time.Millisecond, func() { close(done) })
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
}

func TestClockTimerStop(t *testing.T) {
	loop := NewLoop()
	defer loop.Close()
	clock := NewClock(loop)
	fired := make(chan struct{}, 1)
	tm := clock.AfterFunc(50*time.Millisecond, func() { fired <- struct{}{} })
	if !tm.Stop() {
		t.Fatal("Stop returned false on pending timer")
	}
	select {
	case <-fired:
		t.Fatal("stopped timer fired")
	case <-time.After(150 * time.Millisecond):
	}
}

func TestUDPUnicastAndBroadcast(t *testing.T) {
	const n = 3
	loops := make([]*Loop, n)
	conns := make([]*Conn, n)
	// Bind ephemeral ports first, then share the peer list.
	for i := range conns {
		loops[i] = NewLoop()
		c, err := Listen(loops[i], "127.0.0.1:0", nil)
		if err != nil {
			t.Fatal(err)
		}
		conns[i] = c
	}
	var peers []string
	for _, c := range conns {
		peers = append(peers, string(c.LocalAddr()))
	}
	for _, c := range conns {
		for _, p := range peers {
			c.peers = append(c.peers, env.Addr(p))
		}
	}
	defer func() {
		for i := range conns {
			if err := conns[i].Close(); err != nil {
				t.Error(err)
			}
			loops[i].Close()
		}
	}()

	type msg struct {
		to   int
		from env.Addr
		data string
	}
	got := make(chan msg, 64)
	for i, c := range conns {
		i := i
		c.SetHandler(func(from env.Addr, payload []byte) {
			got <- msg{to: i, from: from, data: string(payload)}
		})
	}

	if err := conns[0].SendTo(conns[1].LocalAddr(), []byte("uni")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.to != 1 || m.data != "uni" || m.from != conns[0].LocalAddr() {
			t.Fatalf("unexpected message %+v", m)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("unicast never arrived")
	}

	if err := conns[2].Broadcast([]byte("bc")); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	deadline := time.After(2 * time.Second)
	for len(seen) < n {
		select {
		case m := <-got:
			if m.data == "bc" {
				seen[m.to] = true
			}
		case <-deadline:
			t.Fatalf("broadcast reached %d of %d (self-delivery required)", len(seen), n)
		}
	}
}

func TestNewEnvLifecycle(t *testing.T) {
	e, loop, cleanup, err := NewEnv("127.0.0.1:0", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if e.Clock == nil || e.Conn == nil || e.Log == nil {
		t.Fatal("incomplete env")
	}
	ran := make(chan struct{})
	loop.Post(func() { close(ran) })
	select {
	case <-ran:
	case <-time.After(time.Second):
		t.Fatal("loop not running")
	}
	cleanup()
	// Cleanup is idempotent at the conn level.
	if err := e.Conn.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestListenBadAddress(t *testing.T) {
	loop := NewLoop()
	defer loop.Close()
	if _, err := Listen(loop, "not-an-address", nil); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestManyMessagesNoLossOnLoopback(t *testing.T) {
	loopA, loopB := NewLoop(), NewLoop()
	defer loopA.Close()
	defer loopB.Close()
	a, err := Listen(loopA, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := Listen(loopB, "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	var mu sync.Mutex
	count := 0
	b.SetHandler(func(_ env.Addr, _ []byte) {
		mu.Lock()
		count++
		mu.Unlock()
	})
	const total = 200
	for i := 0; i < total; i++ {
		if err := a.SendTo(b.LocalAddr(), []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		mu.Lock()
		c := count
		mu.Unlock()
		if c >= total*9/10 { // UDP: allow a sliver of kernel-buffer loss
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("received %d of %d", c, total)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Package env defines the abstract runtime that every protocol in this
// repository is written against: a clock, a packet endpoint with unicast and
// LAN-broadcast primitives, and a logger.
//
// Two implementations exist. The simulated one (package netsim) runs under
// virtual time on a single goroutine; the real-time one (package
// env/realtime) runs over UDP sockets and the wall clock, serializing all
// callbacks onto one loop per node.
//
// Concurrency contract: for a given Env, all callbacks — packet handlers and
// timer functions — are invoked serially, never concurrently. Protocol code
// therefore needs no internal locking as long as it touches its state only
// from those callbacks.
package env

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Addr identifies a protocol endpoint, formatted as "ip:port". The zero
// value is not a valid address.
type Addr string

// Timer is a handle to a scheduled callback.
type Timer interface {
	// Stop cancels the timer, reporting whether it prevented the callback
	// from running.
	Stop() bool
}

// Clock supplies time to protocol code.
type Clock interface {
	// Now returns the current instant (virtual or wall time).
	Now() time.Time
	// AfterFunc schedules f to run once after d, serialized with all other
	// callbacks of the same Env.
	AfterFunc(d time.Duration, f func()) Timer
}

// Handler consumes an inbound datagram.
type Handler func(from Addr, payload []byte)

// PacketConn is an unreliable datagram endpoint on a LAN.
type PacketConn interface {
	// LocalAddr returns this endpoint's stationary address.
	LocalAddr() Addr
	// SendTo transmits payload to a single peer. Delivery is best-effort.
	SendTo(to Addr, payload []byte) error
	// Broadcast transmits payload to every endpoint on the local broadcast
	// domain, including this one. Delivery is best-effort.
	Broadcast(payload []byte) error
	// SetHandler installs the inbound datagram callback. It must be called
	// before any datagram can be delivered and at most once.
	SetHandler(h Handler)
	// Close releases the endpoint; no callbacks run after Close returns.
	Close() error
}

// Logger receives diagnostic output from protocol code.
type Logger interface {
	Logf(format string, args ...any)
}

// Env bundles the runtime facilities handed to a protocol instance.
type Env struct {
	Clock Clock
	Conn  PacketConn
	Log   Logger
}

// NopLogger discards all output.
type NopLogger struct{}

// Logf implements Logger by discarding its arguments.
func (NopLogger) Logf(string, ...any) {}

var _ Logger = NopLogger{}

// PrefixLogger writes one line per Logf call to W, prefixed with the
// clock-relative elapsed time and a fixed tag. It is safe for concurrent use.
type PrefixLogger struct {
	mu     sync.Mutex
	w      io.Writer
	clock  Clock
	base   time.Time
	prefix string
}

// NewPrefixLogger returns a logger stamping lines with time elapsed on clock
// since its creation.
func NewPrefixLogger(w io.Writer, clock Clock, prefix string) *PrefixLogger {
	return &PrefixLogger{w: w, clock: clock, base: clock.Now(), prefix: prefix}
}

// Logf implements Logger.
func (l *PrefixLogger) Logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	elapsed := l.clock.Now().Sub(l.base)
	fmt.Fprintf(l.w, "%12s %-14s ", elapsed.Round(time.Microsecond), l.prefix)
	fmt.Fprintf(l.w, format, args...)
	fmt.Fprintln(l.w)
}

var _ Logger = (*PrefixLogger)(nil)

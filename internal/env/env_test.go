package env

import (
	"strings"
	"testing"
	"time"
)

type fixedClock struct {
	now time.Time
}

func (c *fixedClock) Now() time.Time { return c.now }

func (c *fixedClock) AfterFunc(time.Duration, func()) Timer { return nopTimer{} }

type nopTimer struct{}

func (nopTimer) Stop() bool { return false }

func TestNopLoggerDiscards(t *testing.T) {
	NopLogger{}.Logf("anything %d", 42) // must not panic
}

func TestPrefixLoggerStampsElapsedTime(t *testing.T) {
	clock := &fixedClock{now: time.Unix(1000, 0)}
	var buf strings.Builder
	l := NewPrefixLogger(&buf, clock, "node-a")
	clock.now = clock.now.Add(1500 * time.Millisecond)
	l.Logf("hello %s", "world")
	out := buf.String()
	if !strings.Contains(out, "1.5s") {
		t.Fatalf("missing elapsed stamp: %q", out)
	}
	if !strings.Contains(out, "node-a") || !strings.Contains(out, "hello world") {
		t.Fatalf("log line = %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Fatal("log line not newline-terminated")
	}
}

func TestPrefixLoggerMultipleLines(t *testing.T) {
	clock := &fixedClock{now: time.Unix(0, 0)}
	var buf strings.Builder
	l := NewPrefixLogger(&buf, clock, "x")
	l.Logf("one")
	l.Logf("two")
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("%d lines, want 2", got)
	}
}

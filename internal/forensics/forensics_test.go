package forensics

import (
	"bytes"
	"testing"
	"time"

	"wackamole/internal/obs"
)

// base anchors all test timestamps; HLC walls are UnixNano values.
var base = time.Unix(1_700_000_000, 0).UTC()

func hlcAt(d time.Duration) obs.HLC {
	return obs.HLC{Wall: base.Add(d).UnixNano()}
}

// writeBundle dumps one flight bundle holding events for node under dir and
// returns the bundle directory. Events pass through a real Tracer and
// FlightRecorder so the test exercises the actual producer format.
func writeBundle(t *testing.T, dir, node string, events []obs.Event, clk *obs.HLCClock) string {
	t.Helper()
	tr := obs.New(256, func() time.Time { return base })
	if clk != nil {
		tr.SetHLC(clk)
	}
	for _, ev := range events {
		tr.Emit(ev)
	}
	f := obs.NewFlightRecorder(obs.FlightConfig{
		Dir: dir, Node: node, Tracer: tr,
		Now: func() time.Time { return base.Add(time.Hour) },
	})
	bdir, err := f.Dump("test")
	if err != nil {
		t.Fatal(err)
	}
	return bdir
}

// failoverEvents builds the three-node scenario the live cluster produces:
// node b owned the target and died; a and c detect, reform, and a acquires.
// Node a's local wall clock runs 5s fast — its At fields are wrong, its HLC
// stamps are right — which is exactly the disagreement the merge must fix.
func failoverEvents(target string) (aEvs, cEvs []obs.Event) {
	skewed := func(d time.Duration) time.Time { return base.Add(d + 5*time.Second) }
	aEvs = []obs.Event{
		{At: skewed(200 * time.Millisecond), HLC: hlcAt(200 * time.Millisecond),
			Source: obs.SourceGCS, Kind: obs.KindGatherEnter, Node: "a"},
		{At: skewed(500 * time.Millisecond), HLC: hlcAt(500 * time.Millisecond),
			Source: obs.SourceGCS, Kind: obs.KindInstall, Node: "a"},
		{At: skewed(800 * time.Millisecond), HLC: hlcAt(800 * time.Millisecond),
			Source: obs.SourceCore, Kind: obs.KindAcquire, Node: "a", Addr: target},
	}
	cEvs = []obs.Event{
		{At: base.Add(250 * time.Millisecond), HLC: hlcAt(250 * time.Millisecond),
			Source: obs.SourceGCS, Kind: obs.KindGatherEnter, Node: "c"},
		{At: base.Add(500 * time.Millisecond), HLC: obs.HLC{Wall: base.Add(500 * time.Millisecond).UnixNano(), Logical: 1},
			Source: obs.SourceGCS, Kind: obs.KindInstall, Node: "c"},
	}
	return aEvs, cEvs
}

func loadFailoverBundles(t *testing.T) []*Bundle {
	t.Helper()
	dir := t.TempDir()
	aEvs, cEvs := failoverEvents("10.0.0.100")
	writeBundle(t, dir, "a", aEvs, nil)
	writeBundle(t, dir, "c", cEvs, nil)
	bundles, err := LoadBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 2 {
		t.Fatalf("loaded %d bundles, want 2", len(bundles))
	}
	return bundles
}

func TestMergeOrdersByHLCAndRewritesAt(t *testing.T) {
	bundles := loadFailoverBundles(t)
	m := Merge(bundles)
	if len(m.Events) != 5 {
		t.Fatalf("merged %d events, want 5", len(m.Events))
	}
	// Causal order, not node-a's fast local clock: a@200ms, c@250ms,
	// a@500ms, c@500ms.1 (logical breaks the tie), a@800ms.
	wantNodes := []string{"a", "c", "a", "c", "a"}
	for i, ev := range m.Events {
		if ev.Node != wantNodes[i] {
			t.Fatalf("merged order: event %d from %s, want %s (%+v)", i, ev.Node, wantNodes[i], m.Events)
		}
	}
	// At rewritten from the HLC: node a's 5s-fast wall time is gone.
	if got := m.Events[0].At; !got.Equal(base.Add(200 * time.Millisecond)) {
		t.Fatalf("At not rewritten from HLC: %v", got)
	}
	// Equal walls: logical component orders install a before install c.
	if m.Events[2].Kind != obs.KindInstall || m.Events[2].Node != "a" ||
		m.Events[3].Kind != obs.KindInstall || m.Events[3].Node != "c" {
		t.Fatalf("tie-break order wrong: %+v / %+v", m.Events[2], m.Events[3])
	}
}

func TestMergeUnstampedFallsBackToLocalWall(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "a", []obs.Event{
		{At: base.Add(100 * time.Millisecond), HLC: hlcAt(100 * time.Millisecond),
			Source: obs.SourceGCS, Kind: obs.KindTokenPass, Node: "a"},
		{At: base.Add(300 * time.Millisecond), // no HLC: pre-upgrade event
			Source: obs.SourceGCS, Kind: obs.KindTokenPass, Node: "a"},
		{At: base.Add(600 * time.Millisecond), HLC: hlcAt(500 * time.Millisecond),
			Source: obs.SourceGCS, Kind: obs.KindTokenPass, Node: "a"},
	}, nil)
	bundles, err := LoadBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := Merge(bundles)
	if len(m.Events) != 3 {
		t.Fatalf("merged %d events, want 3", len(m.Events))
	}
	if m.Events[1].HLC.IsZero() != true || !m.Events[1].At.Equal(base.Add(300*time.Millisecond)) {
		t.Fatalf("unstamped event misplaced: %+v", m.Events)
	}
	if m.Nodes[0].Unstamped != 1 || m.Nodes[0].Events != 3 {
		t.Fatalf("skew diagnostics: %+v", m.Nodes[0])
	}
}

func TestMergeDeterministicByteIdentical(t *testing.T) {
	bundles := loadFailoverBundles(t)
	render := func(bs []*Bundle) []byte {
		var buf bytes.Buffer
		if err := Merge(bs).WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := render(bundles)
	if len(first) == 0 {
		t.Fatal("empty merge output")
	}
	// Repeated merges and reversed bundle order must be byte-identical.
	if again := render(bundles); !bytes.Equal(first, again) {
		t.Fatal("repeated merge differs")
	}
	reversed := []*Bundle{bundles[1], bundles[0]}
	if swapped := render(reversed); !bytes.Equal(first, swapped) {
		t.Fatal("merge depends on bundle argument order")
	}
}

func TestMergeDeduplicatesRepeatedDumpsOfOneNode(t *testing.T) {
	dir := t.TempDir()
	tr := obs.New(256, func() time.Time { return base })
	tr.Emit(obs.Event{At: base, HLC: hlcAt(0), Source: obs.SourceGCS, Kind: obs.KindTokenPass, Node: "a"})
	f := obs.NewFlightRecorder(obs.FlightConfig{
		Dir: dir, Node: "a", Tracer: tr, Now: func() time.Time { return base },
	})
	if _, err := f.Dump("first"); err != nil {
		t.Fatal(err)
	}
	tr.Emit(obs.Event{At: base.Add(time.Second), HLC: hlcAt(time.Second),
		Source: obs.SourceGCS, Kind: obs.KindTokenPass, Node: "a"})
	if _, err := f.Dump("second"); err != nil {
		t.Fatal(err)
	}
	bundles, err := LoadBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 2 {
		t.Fatalf("loaded %d bundles, want 2", len(bundles))
	}
	m := Merge(bundles)
	if len(m.Events) != 2 {
		t.Fatalf("dedup failed: %d events, want 2 (event 1 appears in both dumps)", len(m.Events))
	}
}

func TestMergeSkewDiagnosticsFromManifest(t *testing.T) {
	dir := t.TempDir()
	clk := obs.NewHLCClock(func() time.Time { return base }, "a")
	// A peer 3ms ahead: the clock records the skew, the dump manifests it.
	clk.Observe(obs.HLC{Wall: base.Add(3 * time.Millisecond).UnixNano()})
	writeBundle(t, dir, "a", []obs.Event{
		{Source: obs.SourceGCS, Kind: obs.KindTokenPass, Node: "a"},
	}, clk)
	bundles, err := LoadBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := Merge(bundles)
	if len(m.Nodes) != 1 || m.Nodes[0].MaxSkew != 3*time.Millisecond {
		t.Fatalf("skew diagnostics: %+v", m.Nodes)
	}
	if m.Nodes[0].LastHLC.IsZero() {
		t.Fatal("LastHLC not taken from manifest")
	}
}

func TestReconstructPhasesPartitionGap(t *testing.T) {
	bundles := loadFailoverBundles(t)
	m := Merge(bundles)
	gap := Gap{Target: "10.0.0.100", Start: base, End: base.Add(900 * time.Millisecond)}
	fos := m.Reconstruct([]Gap{gap})
	if len(fos) != 1 {
		t.Fatalf("reconstructed %d failovers, want 1", len(fos))
	}
	f := fos[0]
	want := obs.Breakdown{
		Detection:   200 * time.Millisecond, // gap start → a's gather-enter
		Membership:  300 * time.Millisecond, // → a's install
		StateSync:   300 * time.Millisecond, // → a's acquire
		ARPTakeover: 100 * time.Millisecond, // → gap end
	}
	if f.Phases != want {
		t.Fatalf("phases %+v, want %+v", f.Phases, want)
	}
	if f.Phases.Total() != f.Gap {
		t.Fatalf("phases sum %v != gap %v", f.Phases.Total(), f.Gap)
	}
	if f.Detector != "a" || f.Acquirer != "a" {
		t.Fatalf("detector=%q acquirer=%q, want a/a", f.Detector, f.Acquirer)
	}
}

func TestDetectGaps(t *testing.T) {
	dir := t.TempDir()
	writeBundle(t, dir, "a", []obs.Event{
		{At: base, HLC: hlcAt(0), Source: obs.SourceCore, Kind: obs.KindAcquire, Node: "a", Addr: "10.0.0.100"},
		{At: base.Add(time.Second), HLC: hlcAt(time.Second),
			Source: obs.SourceCore, Kind: obs.KindRelease, Node: "a", Addr: "10.0.0.100"},
	}, nil)
	writeBundle(t, dir, "b", []obs.Event{
		{At: base.Add(1500 * time.Millisecond), HLC: hlcAt(1500 * time.Millisecond),
			Source: obs.SourceCore, Kind: obs.KindAcquire, Node: "b", Addr: "10.0.0.100"},
	}, nil)
	bundles, err := LoadBundles(dir)
	if err != nil {
		t.Fatal(err)
	}
	m := Merge(bundles)
	gaps := m.DetectGaps(100 * time.Millisecond)
	if len(gaps) != 1 {
		t.Fatalf("detected %d gaps, want 1: %+v", len(gaps), gaps)
	}
	g := gaps[0]
	if g.Target != "10.0.0.100" || g.End.Sub(g.Start) != 500*time.Millisecond {
		t.Fatalf("gap: %+v", g)
	}
	// Below the floor: no gap.
	if got := m.DetectGaps(time.Second); len(got) != 0 {
		t.Fatalf("minGap filter failed: %+v", got)
	}
}

func TestLoadBundlesDirectAndScan(t *testing.T) {
	dir := t.TempDir()
	aEvs, _ := failoverEvents("10.0.0.100")
	bdir := writeBundle(t, dir, "a", aEvs, nil)

	// Direct bundle path and parent scan find the same bundle once, even when
	// both are given.
	bundles, err := LoadBundles(bdir, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundles) != 1 {
		t.Fatalf("loaded %d bundles, want 1 (dedup by path)", len(bundles))
	}
	if bundles[0].Manifest.Node != "a" || len(bundles[0].Events) != 3 {
		t.Fatalf("bundle contents: %+v", bundles[0].Manifest)
	}

	if _, err := LoadBundles(t.TempDir()); err == nil {
		t.Fatal("empty directory must error")
	}
}

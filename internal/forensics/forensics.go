// Package forensics reconstructs cluster-wide failover timelines from
// per-daemon flight-recorder bundles (internal/obs.FlightRecorder). Each
// live daemon records its own bounded trace on its own wall clock; this
// package merges N such bundles into one causally consistent event stream by
// ordering on the hybrid-logical-clock stamps the daemons piggybacked on
// every wire message, then re-derives the paper's §5 fail-over decomposition
// (detection / membership / state-sync / ARP take-over — obs.Breakdown) from
// live multi-daemon evidence, exactly as obs.FailoverBreakdown does inside
// the simulator where a single virtual clock makes it trivial.
//
// The merge is deterministic: events sort by (effective wall, logical, node,
// per-node sequence), so repeated merges of the same bundles are
// byte-identical — a property cmd/wackrec's CI gate asserts.
package forensics

import (
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"wackamole/internal/obs"
)

// Bundle is one loaded flight-recorder bundle.
type Bundle struct {
	// Dir is the bundle directory it was loaded from.
	Dir string
	// Manifest identifies the node, dump reason and clock state.
	Manifest obs.FlightManifest
	// Events is the node's trace tail, as recorded (node-local order).
	Events []obs.Event
	// Views is the node's membership history.
	Views []obs.ViewRecord
}

// LoadBundle reads one bundle directory (it must contain manifest.json).
func LoadBundle(dir string) (*Bundle, error) {
	b := &Bundle{Dir: dir}
	raw, err := os.ReadFile(filepath.Join(dir, obs.ManifestName))
	if err != nil {
		return nil, fmt.Errorf("forensics: %w", err)
	}
	if err := json.Unmarshal(raw, &b.Manifest); err != nil {
		return nil, fmt.Errorf("forensics: %s: %w", dir, err)
	}
	if fh, err := os.Open(filepath.Join(dir, obs.BundleTrace)); err == nil {
		dec := json.NewDecoder(fh)
		for dec.More() {
			var ev obs.Event
			if derr := dec.Decode(&ev); derr != nil {
				fh.Close()
				return nil, fmt.Errorf("forensics: %s/%s: %w", dir, obs.BundleTrace, derr)
			}
			b.Events = append(b.Events, ev)
		}
		fh.Close()
	}
	if raw, err := os.ReadFile(filepath.Join(dir, obs.BundleViews)); err == nil {
		if uerr := json.Unmarshal(raw, &b.Views); uerr != nil {
			return nil, fmt.Errorf("forensics: %s/%s: %w", dir, obs.BundleViews, uerr)
		}
	}
	return b, nil
}

// LoadBundles loads every bundle found at or under each path: a path that is
// itself a bundle directory loads directly, a parent directory is scanned
// recursively for manifest.json files. Bundles are returned sorted by (node,
// dump sequence) so downstream processing is order-independent of the
// arguments.
func LoadBundles(paths ...string) ([]*Bundle, error) {
	seen := map[string]bool{}
	var out []*Bundle
	for _, p := range paths {
		var dirs []string
		if _, err := os.Stat(filepath.Join(p, obs.ManifestName)); err == nil {
			dirs = []string{p}
		} else {
			werr := filepath.WalkDir(p, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() && d.Name() == obs.ManifestName {
					dirs = append(dirs, filepath.Dir(path))
				}
				return nil
			})
			if werr != nil {
				return nil, fmt.Errorf("forensics: %w", werr)
			}
		}
		for _, dir := range dirs {
			abs, err := filepath.Abs(dir)
			if err != nil {
				abs = dir
			}
			if seen[abs] {
				continue
			}
			seen[abs] = true
			b, err := LoadBundle(dir)
			if err != nil {
				return nil, err
			}
			out = append(out, b)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("forensics: no bundles found under %s", strings.Join(paths, " "))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Manifest.Node != out[j].Manifest.Node {
			return out[i].Manifest.Node < out[j].Manifest.Node
		}
		return out[i].Manifest.Seq < out[j].Manifest.Seq
	})
	return out, nil
}

// NodeSkew is the per-node clock diagnostic of a merge.
type NodeSkew struct {
	// Node is the daemon identity.
	Node string
	// Events and Unstamped count the node's merged events and how many of
	// them carried no HLC stamp (ordered by local wall clock only).
	Events    int
	Unstamped int
	// MaxSkew is the largest wall-clock divergence the node's HLC observed
	// against any peer.
	MaxSkew time.Duration
	// LastHLC is the node's clock at dump time.
	LastHLC obs.HLC
}

// Merged is the causally ordered union of N bundles.
type Merged struct {
	// Events in cluster-wide causal order. Each event's At is rewritten to
	// its HLC wall component when stamped, so every consumer of the merged
	// stream (breakdown, timelines, rendering) works on the one clock the
	// nodes agreed on; unstamped events keep their local wall time.
	Events []obs.Event
	// Nodes holds per-node skew diagnostics, sorted by node.
	Nodes []NodeSkew
}

// mergeKey orders events: HLC-stamped events by (wall, logical), unstamped
// ones by local wall time; ties break by node then per-node sequence, making
// the total order deterministic across repeated merges.
type mergeKey struct {
	wall    int64
	logical uint32
	node    string
	seq     uint64
}

func (k mergeKey) less(o mergeKey) bool {
	if k.wall != o.wall {
		return k.wall < o.wall
	}
	if k.logical != o.logical {
		return k.logical < o.logical
	}
	if k.node != o.node {
		return k.node < o.node
	}
	return k.seq < o.seq
}

// Merge combines the bundles into one causally ordered stream. Bundles from
// the same node (repeated dumps with overlapping trace rings) are
// deduplicated by per-node (sequence, timestamp) — the timestamp
// disambiguates incarnations of a restarted daemon, whose sequence numbers
// start over.
func Merge(bundles []*Bundle) *Merged {
	m := &Merged{}
	type keyed struct {
		key mergeKey
		ev  obs.Event
	}
	type evKey struct {
		seq  uint64
		wall int64
	}
	var all []keyed
	skews := map[string]*NodeSkew{}
	seen := map[string]map[evKey]bool{} // node → events already taken

	// Deterministic bundle order regardless of argument order.
	ordered := append([]*Bundle(nil), bundles...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].Manifest.Node != ordered[j].Manifest.Node {
			return ordered[i].Manifest.Node < ordered[j].Manifest.Node
		}
		return ordered[i].Manifest.Seq < ordered[j].Manifest.Seq
	})
	for _, b := range ordered {
		node := b.Manifest.Node
		sk := skews[node]
		if sk == nil {
			sk = &NodeSkew{Node: node}
			skews[node] = sk
		}
		if d := time.Duration(b.Manifest.MaxSkewNS); d > sk.MaxSkew {
			sk.MaxSkew = d
		}
		last := obs.HLC{Wall: b.Manifest.HLCWall, Logical: b.Manifest.HLCLogical}
		if last.Compare(sk.LastHLC) > 0 {
			sk.LastHLC = last
		}
		taken := seen[node]
		if taken == nil {
			taken = map[evKey]bool{}
			seen[node] = taken
		}
		for _, ev := range b.Events {
			k := mergeKey{node: node, seq: ev.Seq}
			unstamped := ev.HLC.IsZero()
			if unstamped {
				k.wall = ev.At.UnixNano()
			} else {
				k.wall, k.logical = ev.HLC.Wall, ev.HLC.Logical
				ev.At = ev.HLC.Time()
			}
			if taken[evKey{ev.Seq, k.wall}] {
				continue
			}
			taken[evKey{ev.Seq, k.wall}] = true
			sk.Events++
			if unstamped {
				sk.Unstamped++
			}
			all = append(all, keyed{key: k, ev: ev})
		}
	}
	sort.Slice(all, func(i, j int) bool { return all[i].key.less(all[j].key) })
	m.Events = make([]obs.Event, len(all))
	for i, k := range all {
		m.Events[i] = k.ev
	}
	for _, sk := range skews {
		m.Nodes = append(m.Nodes, *sk)
	}
	sort.Slice(m.Nodes, func(i, j int) bool { return m.Nodes[i].Node < m.Nodes[j].Node })
	return m
}

// WriteNDJSON writes the merged stream as NDJSON. The output is a pure
// function of the input bundles — no generation timestamps, no map
// iteration — so repeated merges are byte-identical.
func (m *Merged) WriteNDJSON(w io.Writer) error {
	return obs.WriteNDJSON(w, m.Events)
}

// Gap is one externally measured availability interruption to explain: the
// probe (or test harness) saw target unreachable during [Start, End].
type Gap struct {
	Target string    `json:"target"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
}

// ReadGaps parses a JSON array of gaps.
func ReadGaps(r io.Reader) ([]Gap, error) {
	var gaps []Gap
	if err := json.NewDecoder(r).Decode(&gaps); err != nil {
		return nil, fmt.Errorf("forensics: gaps: %w", err)
	}
	return gaps, nil
}

// Failover is one reconstructed fail-over.
type Failover struct {
	Target   string        `json:"target"`
	GapStart time.Time     `json:"gap_start"`
	GapEnd   time.Time     `json:"gap_end"`
	Gap      time.Duration `json:"gap_ns"`
	// Phases is the paper's §5 decomposition, re-derived from the merged
	// stream; Phases.Total() equals Gap by construction.
	Phases obs.Breakdown `json:"phases"`
	// Detector is the daemon whose discovery entry (gather-enter) anchors
	// the detection phase; Acquirer the node that claimed the target.
	Detector string `json:"detector,omitempty"`
	Acquirer string `json:"acquirer,omitempty"`
}

// Reconstruct explains each measured gap from the merged stream: the same
// detection/membership/state-sync/ARP partition obs.FailoverBreakdown
// produces in simulation, now over the HLC-merged multi-daemon trace. Live
// traces carry no fault-injection marker, so detection is anchored at the
// gap start (the instant the outside world measured the target gone).
func (m *Merged) Reconstruct(gaps []Gap) []Failover {
	out := make([]Failover, 0, len(gaps))
	for _, g := range gaps {
		// Round(0) strips any monotonic reading a live probe's time.Now()
		// carried, so the gap and the phase boundaries (wall-clock event
		// times) subtract in the same clock domain and partition exactly.
		start, end := g.Start.Round(0), g.End.Round(0)
		f := Failover{
			Target:   g.Target,
			GapStart: start.UTC(),
			GapEnd:   end.UTC(),
			Gap:      end.Sub(start),
		}
		f.Phases = obs.FailoverBreakdown(m.Events, start, end, g.Target)
		for _, ev := range m.Events {
			if ev.At.Before(start) || ev.At.After(end) {
				continue
			}
			if f.Detector == "" && ev.Kind == obs.KindGatherEnter {
				f.Detector = ev.Node
			}
			if f.Acquirer == "" && ev.Kind == obs.KindAcquire && ev.Addr == g.Target {
				f.Acquirer = ev.Node
			}
		}
		out = append(out, f)
	}
	return out
}

// DetectGaps infers coverage gaps from the merged ownership events: for each
// address, a window between one owner's release (or last evidence) and the
// next owner's acquisition longer than minGap becomes a candidate gap. It is
// the fallback when no externally measured gaps are supplied; an outside
// probe remains the ground truth the paper measures.
func (m *Merged) DetectGaps(minGap time.Duration) []Gap {
	spans := obs.OwnershipTimeline(m.Events)
	addrs := make([]string, 0, len(spans))
	for a := range spans {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	var gaps []Gap
	for _, addr := range addrs {
		ss := spans[addr]
		for i := 0; i+1 < len(ss); i++ {
			if ss[i].To.IsZero() {
				continue // still held; overlapping owners, not a gap
			}
			if d := ss[i+1].From.Sub(ss[i].To); d >= minGap {
				gaps = append(gaps, Gap{Target: addr, Start: ss[i].To, End: ss[i+1].From})
			}
		}
	}
	return gaps
}

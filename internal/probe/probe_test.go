package probe

import (
	"net/netip"
	"testing"
	"time"

	"wackamole/internal/metrics"
	"wackamole/internal/netsim"
	"wackamole/internal/sim"
)

func setup(t *testing.T) (*sim.Sim, *netsim.Network, *netsim.Host, *netsim.Host) {
	t.Helper()
	s := sim.New(1)
	nw := netsim.New(s)
	lan := nw.NewSegment("lan", netsim.DefaultSegmentConfig())
	server := nw.NewHost("alpha")
	server.AttachNIC(lan, "eth0", netip.MustParsePrefix("10.0.0.10/24"))
	client := nw.NewHost("client")
	client.AttachNIC(lan, "eth0", netip.MustParsePrefix("10.0.0.50/24"))
	return s, nw, server, client
}

func TestServerEchoesHostname(t *testing.T) {
	s, _, server, client := setup(t)
	if _, err := NewServer(server, 8080); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(client, ClientConfig{
		Target:    netip.AddrPortFrom(netip.MustParseAddr("10.0.0.10"), 8080),
		LocalPort: 9001,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	s.RunFor(time.Second)
	c.Stop()
	if c.Responses() < 90 {
		t.Fatalf("got %d responses in 1s at 10ms interval", c.Responses())
	}
	if c.ByServer()["alpha"] != c.Responses() {
		t.Fatalf("ByServer = %v", c.ByServer())
	}
	if c.LastFrom() != "alpha" {
		t.Fatalf("LastFrom = %q", c.LastFrom())
	}
	if len(c.Gaps()) != 0 {
		t.Fatalf("unexpected gaps on a healthy path: %v", c.Gaps())
	}
}

func TestClientRecordsGapAcrossOutage(t *testing.T) {
	s, _, server, client := setup(t)
	if _, err := NewServer(server, 8080); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(client, ClientConfig{
		Target:    netip.AddrPortFrom(netip.MustParseAddr("10.0.0.10"), 8080),
		LocalPort: 9001,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	s.RunFor(time.Second)
	server.NICs()[0].SetUp(false)
	s.RunFor(2 * time.Second)
	server.NICs()[0].SetUp(true)
	s.RunFor(time.Second)
	c.Stop()
	gaps := c.Gaps()
	if len(gaps) != 1 {
		t.Fatalf("gaps = %v, want exactly one", gaps)
	}
	d := gaps[0].Duration()
	if d < 1900*time.Millisecond || d > 2300*time.Millisecond {
		t.Fatalf("gap duration = %v, want ≈2s", d)
	}
	if gaps[0].From != "alpha" || gaps[0].To != "alpha" {
		t.Fatalf("gap endpoints = %q -> %q", gaps[0].From, gaps[0].To)
	}
	if c.MaxGap() < d {
		t.Fatal("MaxGap smaller than the recorded gap")
	}
}

func TestResetStatsKeepsGapContinuity(t *testing.T) {
	s, _, server, client := setup(t)
	if _, err := NewServer(server, 8080); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(client, ClientConfig{
		Target:    netip.AddrPortFrom(netip.MustParseAddr("10.0.0.10"), 8080),
		LocalPort: 9001,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	s.RunFor(time.Second)
	c.ResetStats()
	if c.Responses() != 0 || len(c.Gaps()) != 0 || c.MaxGap() != 0 {
		t.Fatal("ResetStats left statistics behind")
	}
	// An outage that begins immediately after the reset must still be
	// measured against the pre-reset last response.
	server.NICs()[0].SetUp(false)
	s.RunFor(time.Second)
	server.NICs()[0].SetUp(true)
	s.RunFor(500 * time.Millisecond)
	c.Stop()
	if len(c.Gaps()) != 1 {
		t.Fatalf("gap across a reset not recorded: %v", c.Gaps())
	}
}

func TestGapThresholdConfigurable(t *testing.T) {
	s, _, server, client := setup(t)
	if _, err := NewServer(server, 8080); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(client, ClientConfig{
		Target:       netip.AddrPortFrom(netip.MustParseAddr("10.0.0.10"), 8080),
		LocalPort:    9001,
		Interval:     50 * time.Millisecond,
		GapThreshold: time.Hour, // nothing registers
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	s.RunFor(time.Second)
	server.NICs()[0].SetUp(false)
	s.RunFor(2 * time.Second)
	server.NICs()[0].SetUp(true)
	s.RunFor(time.Second)
	if len(c.Gaps()) != 0 {
		t.Fatal("gap recorded despite a one-hour threshold")
	}
	if c.MaxGap() < 2*time.Second {
		t.Fatalf("MaxGap = %v, want ≥ outage", c.MaxGap())
	}
}

func TestPortCollisionSurfaces(t *testing.T) {
	_, _, server, _ := setup(t)
	if _, err := NewServer(server, 8080); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(server, 8080); err == nil {
		t.Fatal("double server bind succeeded")
	}
}

func TestServerRepliesFromRequestedAddress(t *testing.T) {
	// The server must answer from the virtual address the request targeted,
	// not its stationary address — clients track the service, not the host.
	s, _, server, client := setup(t)
	vip := netip.MustParseAddr("10.0.0.100")
	if err := server.NICs()[0].AddAddr(vip); err != nil {
		t.Fatal(err)
	}
	if _, err := NewServer(server, 8080); err != nil {
		t.Fatal(err)
	}
	var gotSrc netip.Addr
	if _, err := client.BindUDP(netip.Addr{}, 9002, func(src, _ netip.AddrPort, _ []byte) {
		gotSrc = src.Addr()
	}); err != nil {
		t.Fatal(err)
	}
	err := client.SendUDP(
		netip.AddrPortFrom(netip.MustParseAddr("10.0.0.50"), 9002),
		netip.AddrPortFrom(vip, 8080), []byte("q"))
	if err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Second)
	if gotSrc != vip {
		t.Fatalf("reply source = %v, want the virtual address %v", gotSrc, vip)
	}
}

// TestClientCountsSendErrors breaks the client's own interface: every probe
// the host refuses to transmit must increment probe_send_errors_total
// instead of being silently dropped, and probing must resume afterwards.
func TestClientCountsSendErrors(t *testing.T) {
	s, _, server, client := setup(t)
	if _, err := NewServer(server, 8080); err != nil {
		t.Fatal(err)
	}
	reg := metrics.New()
	c, err := NewClient(client, ClientConfig{
		Target:    netip.AddrPortFrom(netip.MustParseAddr("10.0.0.10"), 8080),
		LocalPort: 9001,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	s.RunFor(500 * time.Millisecond)
	if sendErrors(reg) != 0 {
		t.Fatalf("send errors on a healthy path: %v", sendErrors(reg))
	}
	client.NICs()[0].SetUp(false)
	s.RunFor(500 * time.Millisecond)
	client.NICs()[0].SetUp(true)
	got := sendErrors(reg)
	// ~50 probes at 10ms across the 500ms outage.
	if got < 40 {
		t.Fatalf("send errors = %v across a 500ms client-side outage, want ≈50", got)
	}
	before := c.Responses()
	s.RunFor(500 * time.Millisecond)
	c.Stop()
	if c.Responses() <= before {
		t.Fatal("probing did not resume after the client interface came back")
	}
	if sendErrors(reg) != got {
		t.Fatalf("send errors kept growing after restore: %v -> %v", got, sendErrors(reg))
	}
}

// sendErrors sums the probe_send_errors_total family.
func sendErrors(reg *metrics.Registry) float64 {
	var v float64
	for _, f := range reg.Snapshot().Families {
		if f.Name == "probe_send_errors_total" {
			for _, series := range f.Series {
				v += series.Value
			}
		}
	}
	return v
}

// TestFirstProbeLostGapCorrect starts probing before any server answers: the
// leading lost probes must not fabricate a gap (service was never observed
// up), and a later real outage must still be measured exactly.
func TestFirstProbeLostGapCorrect(t *testing.T) {
	s, _, server, client := setup(t)
	c, err := NewClient(client, ClientConfig{
		Target:    netip.AddrPortFrom(netip.MustParseAddr("10.0.0.10"), 8080),
		LocalPort: 9001,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	// The first ~10 probes reach a host with no server bound and vanish.
	s.RunFor(95 * time.Millisecond)
	if _, err := NewServer(server, 8080); err != nil {
		t.Fatal(err)
	}
	s.RunFor(time.Second)
	if len(c.Gaps()) != 0 {
		t.Fatalf("lost leading probes fabricated a gap: %v", c.Gaps())
	}
	if c.MaxGap() > 3*DefaultInterval {
		t.Fatalf("MaxGap = %v includes the pre-service period", c.MaxGap())
	}
	// A real outage afterwards measures only itself.
	server.NICs()[0].SetUp(false)
	s.RunFor(300 * time.Millisecond)
	server.NICs()[0].SetUp(true)
	s.RunFor(500 * time.Millisecond)
	c.Stop()
	gaps := c.Gaps()
	if len(gaps) != 1 {
		t.Fatalf("gaps = %v, want exactly one", gaps)
	}
	if d := gaps[0].Duration(); d < 290*time.Millisecond || d > 400*time.Millisecond {
		t.Fatalf("gap = %v, want ≈300ms (not inflated by the lost first probes)", d)
	}
}

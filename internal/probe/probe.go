// Package probe implements the measurement workload of the paper's §6: a
// trivial UDP server that answers every request with its hostname, and a
// client that polls one virtual address at a fixed interval (10ms in the
// paper), recording which server answers and how long any interruption in
// service lasts. The availability-interruption metric — the time between
// the last response from the failed server and the first response from the
// server that took over — is exactly what Figure 5 plots.
package probe

import (
	"fmt"
	"net/netip"
	"time"

	"wackamole/internal/env"
	"wackamole/internal/metrics"
	"wackamole/internal/netsim"
)

// DefaultInterval is the paper's probe period: "we used a 10ms interval
// between requests", their practical minimum.
const DefaultInterval = 10 * time.Millisecond

// Server answers UDP requests with the host's name.
type Server struct {
	sock *netsim.Socket
}

// NewServer binds a hostname-echo responder on (wildcard, port) of h, so it
// answers on whatever virtual addresses the host currently holds.
func NewServer(h *netsim.Host, port uint16) (*Server, error) {
	var srv Server
	sock, err := h.BindUDP(netip.Addr{}, port, func(src, dst netip.AddrPort, _ []byte) {
		// Reply from the address the request was sent to (the virtual
		// address), so the client's view is of the service, not the host.
		if err := h.SendUDP(dst, src, []byte(h.Name())); err != nil {
			// The interface may be mid-failure; nothing to do.
			_ = err
		}
	})
	if err != nil {
		return nil, fmt.Errorf("probe: server on %s: %w", h.Name(), err)
	}
	srv.sock = sock
	return &srv, nil
}

// Close unbinds the server.
func (s *Server) Close() { s.sock.Close() }

// Gap is one observed service interruption.
type Gap struct {
	// Start is the time of the last response before the interruption; End
	// is the first response after it.
	Start, End time.Time
	// From and To are the hostnames that answered before and after.
	From, To string
}

// Duration returns the length of the interruption.
func (g Gap) Duration() time.Duration { return g.End.Sub(g.Start) }

// Client polls a virtual address and records responses and gaps.
type Client struct {
	host     *netsim.Host
	target   netip.AddrPort
	interval time.Duration
	// gapThreshold: consecutive responses farther apart than this are
	// recorded as a Gap.
	gapThreshold time.Duration

	sock      *netsim.Socket
	localPort uint16
	timer     env.Timer
	running   bool

	responses int
	havePrev  bool
	byServer  map[string]int
	lastAt    time.Time
	lastFrom  string
	maxGap    time.Duration
	gaps      []Gap

	// RTT observation state: each response is measured against the most
	// recent request; a nil histogram makes this a no-op.
	mRTT       *metrics.Histogram
	lastSentAt time.Time
	awaiting   bool

	// mSendErrors counts probes the host refused to send (interface down,
	// no route, host dead). In-network losses are invisible here; a growing
	// counter means the *client side* of the measurement path is broken —
	// which would otherwise masquerade as a service interruption.
	mSendErrors *metrics.Counter
}

// ClientConfig parameterizes a Client.
type ClientConfig struct {
	// Target is the probed service address (vip:port).
	Target netip.AddrPort
	// LocalPort is the client's UDP port.
	LocalPort uint16
	// Interval between requests; zero means DefaultInterval (10ms).
	Interval time.Duration
	// GapThreshold above which an inter-response gap counts as an
	// interruption; zero means 5×Interval.
	GapThreshold time.Duration
	// Metrics, when set, records request→response round-trip times in the
	// probe_rtt_seconds histogram labeled with the client host's name.
	Metrics *metrics.Registry
}

// NewClient builds a probing client on h. Call Start to begin probing.
func NewClient(h *netsim.Host, cfg ClientConfig) (*Client, error) {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.GapThreshold <= 0 {
		cfg.GapThreshold = 5 * cfg.Interval
	}
	c := &Client{
		host:         h,
		target:       cfg.Target,
		interval:     cfg.Interval,
		gapThreshold: cfg.GapThreshold,
		byServer:     map[string]int{},
		mRTT: cfg.Metrics.Histogram("probe_rtt_seconds",
			"round-trip time from probe request to response", metrics.L("node", h.Name())),
		mSendErrors: cfg.Metrics.Counter("probe_send_errors_total",
			"probe requests the client host failed to transmit", metrics.L("node", h.Name())),
	}
	sock, err := h.BindUDP(netip.Addr{}, cfg.LocalPort, func(_, _ netip.AddrPort, payload []byte) {
		c.onResponse(string(payload))
	})
	if err != nil {
		return nil, fmt.Errorf("probe: client on %s: %w", h.Name(), err)
	}
	c.sock = sock
	c.localPort = cfg.LocalPort
	return c, nil
}

func (c *Client) onResponse(from string) {
	now := c.host.Now()
	if c.awaiting {
		c.awaiting = false
		c.mRTT.ObserveDuration(now.Sub(c.lastSentAt))
	}
	if c.havePrev {
		gap := now.Sub(c.lastAt)
		if gap > c.maxGap {
			c.maxGap = gap
		}
		if gap > c.gapThreshold {
			c.gaps = append(c.gaps, Gap{Start: c.lastAt, End: now, From: c.lastFrom, To: from})
		}
	}
	c.responses++
	c.havePrev = true
	c.byServer[from]++
	c.lastAt = now
	c.lastFrom = from
}

// Start begins the probe loop.
func (c *Client) Start() {
	if c.running {
		return
	}
	c.running = true
	var tick func()
	tick = func() {
		if !c.running {
			return
		}
		src := netip.AddrPortFrom(netip.Addr{}, c.localPort)
		c.lastSentAt = c.host.Now()
		c.awaiting = true
		if err := c.host.SendUDP(src, c.target, []byte("q")); err != nil {
			// Host-side failures (no route, interface down) occur during
			// fault experiments; count them and keep probing. A probe that
			// was never sent cannot be answered, so the RTT observation for
			// this round is cancelled rather than left pending.
			c.awaiting = false
			c.mSendErrors.Inc()
		}
		c.timer = c.host.AfterFunc(c.interval, tick)
	}
	tick()
}

// Stop halts the probe loop; recorded statistics remain readable.
func (c *Client) Stop() {
	c.running = false
	if c.timer != nil {
		c.timer.Stop()
	}
}

// Responses returns the total number of responses received.
func (c *Client) Responses() int { return c.responses }

// ByServer returns a copy of the per-hostname response counts.
func (c *Client) ByServer() map[string]int {
	out := make(map[string]int, len(c.byServer))
	for k, v := range c.byServer {
		out[k] = v
	}
	return out
}

// Gaps returns the recorded interruptions.
func (c *Client) Gaps() []Gap {
	out := make([]Gap, len(c.gaps))
	copy(out, c.gaps)
	return out
}

// MaxGap returns the largest inter-response spacing observed, which bounds
// the interruption even when it stayed below the gap threshold (the
// paper's ≈10ms graceful-leave measurements are of this kind).
func (c *Client) MaxGap() time.Duration { return c.maxGap }

// LastFrom returns the hostname that answered most recently.
func (c *Client) LastFrom() string { return c.lastFrom }

// ResetStats clears counters, gaps and the max-gap tracker while keeping
// the probe loop and its last-response timestamp intact. Experiments call
// it after warm-up so measurements cover only the fault window.
func (c *Client) ResetStats() {
	c.responses = 0
	c.byServer = map[string]int{}
	c.maxGap = 0
	c.gaps = nil
}

// Package check is a deterministic-simulation model checker for the
// Wackamole protocol stack, in the style FoundationDB made famous: a seeded
// generator produces randomized fault programs (schedules), a driver runs
// them against a real simulated cluster over virtual time while online
// oracles watch every membership installation, Agreed delivery and address
// acquisition, and any violation is delta-debugged down to a minimal failing
// schedule and written out as a replayable artifact.
//
// The oracles encode the paper's two correctness properties plus the
// virtual-synchrony guarantees the protocol relies on:
//
//	exactly-once    Property 1 — within each reachable network component,
//	                every virtual address has exactly one holder after the
//	                settle bound.
//	convergence     Property 2 — every component's in-service members agree
//	                on one view and one allocation table within a bound
//	                computed from the gcs timeouts, and membership stops
//	                changing afterwards.
//	view-order      Virtual Synchrony safety — all engines install
//	                identical views (same ID ⇒ same member list) in
//	                mutually consistent order.
//	delivery-order  Agreed delivery — per-ring sequence numbers are
//	                delivered in increasing order and no two daemons
//	                disagree on the origin of any (ring, seq).
//	foreign-claim   No node's interface holds a virtual address its engine
//	                does not own, and no engine acquires outside a view
//	                containing itself.
//	ping-pong       Gray-failure liveness — no VIP group's ownership
//	                oscillates faster than the fault program justifies
//	                (armed when the schedule carries fault shapes).
//	false-suspect   Gray-failure accuracy — nodes may not declare live,
//	                reachable peers failed more often than the injected
//	                impairments can explain.
package check

import (
	"encoding/json"
	"fmt"
	"time"
)

// Op is one fault-program operation.
type Op uint8

// Schedule operations. Each drives the cluster's fault-injection surface:
// the paper's own testbed method (§6) plus the §4.2 session faults.
const (
	// OpFail takes server A's interface down (the paper's fault injection).
	OpFail Op = iota + 1
	// OpRestore brings server A's interface back up.
	OpRestore
	// OpPartition splits the LAN: servers with bit i set in Mask form one
	// side, the rest the other. Replaces any partition already in effect.
	OpPartition
	// OpHeal removes any partition.
	OpHeal
	// OpSever abruptly kills server A's daemon session (§4.2); the node
	// reconnects automatically after its reconnect interval.
	OpSever
	// OpLeave gracefully leaves service on server A, permanently. The
	// daemon keeps running; the node never rejoins.
	OpLeave
	// OpJitter opens a bounded window of scheduling delay on server A's
	// host, modelling the clock skew that makes probe/heartbeat timeouts
	// fire spuriously. The window closes by itself after JitterWindow.
	OpJitter
	// OpShape applies an internal/faults gray-failure program (Event.Shape,
	// spec syntax) to server A's interface: flapping links, lossy-but-alive
	// links, CPU-starved daemons. Replaces any program already on A.
	OpShape
	// OpClear stops the fault program on server A, restoring the clean
	// interface.
	OpClear
)

var opNames = map[Op]string{
	OpFail:      "fail",
	OpRestore:   "restore",
	OpPartition: "partition",
	OpHeal:      "heal",
	OpSever:     "sever",
	OpLeave:     "leave",
	OpJitter:    "jitter",
	OpShape:     "shape",
	OpClear:     "clear",
}

var opValues = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, s := range opNames {
		m[s] = op
	}
	return m
}()

// String returns the operation's wire name.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Event is one timed operation of a fault program. At is the virtual-time
// offset from the start of the schedule (the cluster is formed and settled
// before the first event fires).
type Event struct {
	At     time.Duration
	Op     Op
	Server int    // target for Fail/Restore/Sever/Leave/Jitter/Shape/Clear
	Mask   uint64 // Partition: servers on side A
	Shape  string // Shape: fault program in internal/faults spec syntax
}

func (e Event) String() string {
	switch e.Op {
	case OpPartition:
		return fmt.Sprintf("@%v %s mask=%#x", e.At, e.Op, e.Mask)
	case OpHeal:
		return fmt.Sprintf("@%v %s", e.At, e.Op)
	case OpShape:
		return fmt.Sprintf("@%v %s server=%d %s", e.At, e.Op, e.Server, e.Shape)
	default:
		return fmt.Sprintf("@%v %s server=%d", e.At, e.Op, e.Server)
	}
}

// Schedule is a complete fault program: the simulation seed, the cluster
// shape, and a time-ordered event list. Together with Options it determines
// a run byte-for-byte.
type Schedule struct {
	Seed    int64
	Servers int
	VIPs    int
	Events  []Event
}

// eventJSON is the wire shape of an Event; offsets travel as integer
// nanoseconds because replay demands exact times (the generator emits
// millisecond-round offsets, so artifacts stay readable in practice).
type eventJSON struct {
	AtNS   int64  `json:"at_ns"`
	Op     string `json:"op"`
	Server int    `json:"server,omitempty"`
	Mask   uint64 `json:"mask,omitempty"`
	Shape  string `json:"shape,omitempty"`
}

type scheduleJSON struct {
	Seed    int64       `json:"seed"`
	Servers int         `json:"servers"`
	VIPs    int         `json:"vips"`
	Events  []eventJSON `json:"events"`
}

// MarshalJSON implements json.Marshaler.
func (s Schedule) MarshalJSON() ([]byte, error) {
	out := scheduleJSON{Seed: s.Seed, Servers: s.Servers, VIPs: s.VIPs,
		Events: make([]eventJSON, 0, len(s.Events))}
	for _, e := range s.Events {
		out.Events = append(out.Events, eventJSON{
			AtNS: e.At.Nanoseconds(), Op: e.Op.String(), Server: e.Server, Mask: e.Mask,
			Shape: e.Shape,
		})
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Schedule) UnmarshalJSON(b []byte) error {
	var in scheduleJSON
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	out := Schedule{Seed: in.Seed, Servers: in.Servers, VIPs: in.VIPs}
	for _, e := range in.Events {
		op, ok := opValues[e.Op]
		if !ok {
			return fmt.Errorf("check: unknown op %q", e.Op)
		}
		out.Events = append(out.Events, Event{
			At: time.Duration(e.AtNS), Op: op, Server: e.Server, Mask: e.Mask,
			Shape: e.Shape,
		})
	}
	*s = out
	return nil
}

// withEvents returns a copy of s holding exactly events (shared backing is
// never mutated, so aliasing is fine).
func (s Schedule) withEvents(events []Event) Schedule {
	s.Events = events
	return s
}

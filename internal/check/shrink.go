package check

import "fmt"

// DefaultShrinkBudget bounds how many re-runs a shrink may spend.
const DefaultShrinkBudget = 200

// Shrink delta-debugs a violating schedule down to a locally minimal event
// list: the classic ddmin loop, removing ever-smaller chunks and keeping
// any candidate that still trips the same oracle. The returned report is
// the run of the minimal schedule; iterations counts checker re-runs
// (also accumulated into check_shrink_iterations_total when opts.Metrics
// is set). budget <= 0 means DefaultShrinkBudget.
func Shrink(s Schedule, opts Options, budget int) (Schedule, *Report, int, error) {
	if budget <= 0 {
		budget = DefaultShrinkBudget
	}
	shrinkIters := opts.withDefaults().Metrics.Counter(
		"check_shrink_iterations_total", "checker re-runs spent minimizing counterexamples")

	rep, err := Run(s, opts)
	if err != nil {
		return s, nil, 0, err
	}
	if rep.Violation == nil {
		return s, rep, 0, fmt.Errorf("check: schedule does not violate, nothing to shrink")
	}
	oracle := rep.Violation.Oracle

	events := s.Events
	iterations := 0
	granularity := 2
	for len(events) > 0 {
		if granularity > len(events) {
			granularity = len(events)
		}
		chunk := (len(events) + granularity - 1) / granularity
		reduced := false
		for from := 0; from < len(events); from += chunk {
			if iterations >= budget {
				return s.withEvents(events), rep, iterations, nil
			}
			to := from + chunk
			if to > len(events) {
				to = len(events)
			}
			cand := make([]Event, 0, len(events)-(to-from))
			cand = append(cand, events[:from]...)
			cand = append(cand, events[to:]...)
			iterations++
			shrinkIters.Inc()
			candRep, err := Run(s.withEvents(cand), opts)
			if err != nil {
				return s.withEvents(events), rep, iterations, err
			}
			if candRep.Violation != nil && candRep.Violation.Oracle == oracle {
				events, rep = cand, candRep
				if granularity > 2 {
					granularity--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if granularity >= len(events) {
				break
			}
			granularity *= 2
			if granularity > len(events) {
				granularity = len(events)
			}
		}
	}
	return s.withEvents(events), rep, iterations, nil
}

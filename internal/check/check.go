package check

import (
	"fmt"
	"time"

	"wackamole"
	"wackamole/internal/flow"
	"wackamole/internal/gcs"
	"wackamole/internal/invariant"
	"wackamole/internal/load"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
)

// Options parameterize one checked run. The zero value is usable: tuned
// timeouts, computed settle/stability bounds, no trace, no metrics, no
// mutation.
type Options struct {
	// GCS sets the group-communication timeouts (zero: gcs.TunedConfig).
	GCS gcs.Config
	// BalanceTimeout forwards to the engine (zero: 5s, short enough that
	// balancing completes well inside the settle bound).
	BalanceTimeout time.Duration
	// RepresentativeDecisions enables the §4.2 variant.
	RepresentativeDecisions bool
	// SettleBound is how long after the last schedule event the oracles
	// wait before demanding Property 1 and 2. Zero computes a bound from
	// the gcs timeouts: token-loss detection plus four full
	// reconfiguration rounds (discovery, form, recovery) plus session
	// reconnect and slack — generous, but a function of the
	// configuration, not a magic constant.
	SettleBound time.Duration
	// StabilityWindow is the extra quiet period after the settle check in
	// which no further view installation may occur (zero: computed).
	StabilityWindow time.Duration
	// JitterWindow bounds how long an OpJitter scheduling-delay window
	// stays open (zero: 2s). The delay magnitude is half the detection
	// margin, so skewed probes can time out spuriously but the system
	// must always re-converge.
	JitterWindow time.Duration
	// Trace captures the structured event stream into the report (and
	// thence into artifacts).
	Trace bool
	// Metrics, when set, receives the checker counters: check_schedules_total,
	// check_steps_total, check_violations_total, check_shrink_iterations_total.
	Metrics *metrics.Registry
	// Mutation injects a deliberate defect (checker self-tests only).
	Mutation Mutation
}

func (o Options) withDefaults() Options {
	if o.GCS == (gcs.Config{}) {
		o.GCS = gcs.TunedConfig()
	}
	if o.BalanceTimeout <= 0 {
		o.BalanceTimeout = 5 * time.Second
	}
	if o.SettleBound <= 0 {
		o.SettleBound = SettleBound(o.GCS)
	}
	if o.StabilityWindow <= 0 {
		o.StabilityWindow = o.GCS.FaultDetectTimeout + o.GCS.DiscoveryTimeout + 2*time.Second
	}
	if o.JitterWindow <= 0 {
		o.JitterWindow = 2 * time.Second
	}
	return o
}

// SettleBound computes the convergence deadline the checker grants after
// the last fault: how long a correct cluster can possibly need to detect
// the change and re-form. Token-loss and fault detection run first, then up
// to four cascaded reconfiguration rounds (merges can restart discovery),
// then the session reconnect interval and reallocation slack.
func SettleBound(cfg gcs.Config) time.Duration {
	form := cfg.FormTimeout
	if form <= 0 {
		form = cfg.DiscoveryTimeout / 2
	}
	rec := cfg.RecoveryTimeout
	if rec <= 0 {
		rec = cfg.DiscoveryTimeout / 2
	}
	tokenLoss := cfg.TokenLossTimeout
	if tokenLoss <= 0 {
		tokenLoss = cfg.FaultDetectTimeout
	}
	round := cfg.DiscoveryTimeout + form + rec
	return tokenLoss + cfg.FaultDetectTimeout + 4*round + 2*time.Second + 3*time.Second
}

// Report is the outcome of one checked run.
type Report struct {
	Schedule Schedule
	// Violation is nil when every oracle held.
	Violation *Violation
	// StepsExecuted counts schedule events actually applied (the run stops
	// at the first violation).
	StepsExecuted int
	// Elapsed is the virtual time the run covered.
	Elapsed time.Duration
	// Installs and Deliveries summarize how much protocol activity the
	// oracles observed — useful to confirm a "clean" run actually
	// exercised something.
	Installs   int
	Deliveries uint64
	// Trace holds the structured event stream when Options.Trace was set.
	Trace []obs.Event
}

// Run executes one fault program under the oracles. The error return is for
// malformed schedules and harness failures only; protocol misbehaviour is
// reported in Report.Violation.
func Run(s Schedule, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if s.Servers < 2 {
		return nil, fmt.Errorf("check: schedule needs at least two servers, got %d", s.Servers)
	}
	if s.VIPs < 1 {
		return nil, fmt.Errorf("check: schedule needs at least one VIP, got %d", s.VIPs)
	}
	for _, ev := range s.Events {
		switch ev.Op {
		case OpPartition, OpHeal:
		default:
			if ev.Server < 0 || ev.Server >= s.Servers {
				return nil, fmt.Errorf("check: event %s targets server outside 0..%d", ev, s.Servers-1)
			}
		}
	}

	opts.Metrics.Counter("check_schedules_total", "fault programs executed by the checker").Inc()
	steps := opts.Metrics.Counter("check_steps_total", "schedule events applied by the checker")
	violations := opts.Metrics.Counter("check_violations_total", "oracle violations detected")
	// Pre-register the traffic-subsystem counter families so wackcheck's
	// counter report (which flattens every counter in the registry, -mutate
	// runs included) sees a stable family set whether or not a schedule
	// drives flow traffic.
	flow.RegisterClientMetrics(opts.Metrics)
	flow.RegisterServerMetrics(opts.Metrics)
	load.Register(opts.Metrics)

	var tracer *obs.Tracer
	if opts.Trace {
		tracer = obs.New(1<<15, nil)
	}

	var c *wackamole.Cluster
	var start time.Time
	// The checker's monitor runs in Strict mode (full unbounded histories,
	// batch order sweeps) with no metrics registry or tracer of its own:
	// wackcheck's counter report flattens every registry family and its
	// trace artifacts must stay workload-only, so the monitor's own
	// instrumentation is for the online consumers.
	o := invariant.New(invariant.Config{
		Nodes:  s.Servers,
		Strict: true,
		Now: func() time.Duration {
			if c == nil {
				return 0
			}
			return c.Sim.Now().Sub(start)
		},
	})

	copts := wackamole.ClusterOptions{
		Seed:                    s.Seed,
		Servers:                 s.Servers,
		VIPs:                    s.VIPs,
		GCS:                     opts.GCS,
		BalanceTimeout:          opts.BalanceTimeout,
		RepresentativeDecisions: opts.RepresentativeDecisions,
		Tracer:                  tracer,
		Invariants:              o,
	}
	if opts.Mutation != nil {
		copts.WrapBackend = opts.Mutation.wrap
	}
	var err error
	c, err = wackamole.NewCluster(copts)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	start = c.Sim.Now()

	// The delay magnitude an OpJitter window applies: half the margin
	// between heartbeats and detection, so skew can push individual probes
	// past their deadline without making detection permanently impossible.
	jitterMax := (opts.GCS.FaultDetectTimeout - opts.GCS.HeartbeatInterval) / 2

	report := func() *Report {
		rep := &Report{
			Schedule:   s,
			Violation:  o.Violation(),
			Elapsed:    c.Sim.Now().Sub(start),
			Installs:   o.Installs(),
			Deliveries: o.Deliveries(),
		}
		if tracer != nil {
			rep.Trace = tracer.Snapshot()
		}
		if rep.Violation != nil {
			violations.Inc()
		}
		return rep
	}

	c.Settle()
	o.CheckOrder()
	if o.Violation() != nil {
		return report(), nil
	}

	base := c.Sim.Now()
	executed := 0
	for idx, ev := range s.Events {
		o.SetStep(idx)
		c.Sim.RunUntil(base.Add(ev.At))
		if o.Violation() != nil {
			break
		}
		apply(c, ev, jitterMax, opts.JitterWindow)
		executed++
		steps.Inc()
		o.SetStep(executed)
		o.CheckOrder()
		if o.Violation() != nil {
			break
		}
	}

	if o.Violation() == nil {
		o.SetStep(executed)
		c.RunFor(opts.SettleBound)
		o.CheckOrder()
	}
	if o.Violation() == nil {
		o.CheckSettled(c.InvariantView(), c.RunFor)
	}
	if o.Violation() == nil {
		before := o.Installs()
		c.RunFor(opts.StabilityWindow)
		o.CheckOrder()
		if o.Violation() == nil && o.Installs() != before {
			o.Fail(OracleConvergence,
				"membership still changing after the settle bound: %d further view installations during the %v stability window",
				o.Installs()-before, opts.StabilityWindow)
		}
		if o.Violation() == nil {
			o.CheckSettled(c.InvariantView(), c.RunFor)
		}
	}

	rep := report()
	rep.StepsExecuted = executed
	return rep, nil
}

// apply executes one schedule event against the cluster. Inapplicable
// events (restoring an up interface, severing an already-detached session)
// degrade to deterministic no-ops so shrunk schedules stay runnable.
func apply(c *wackamole.Cluster, ev Event, jitterMax, jitterWindow time.Duration) {
	switch ev.Op {
	case OpFail:
		c.FailServer(ev.Server)
	case OpRestore:
		c.RestoreServer(ev.Server)
	case OpPartition:
		var sideA, sideB []int
		for i := range c.Servers {
			if ev.Mask&(1<<uint(i)) != 0 {
				sideA = append(sideA, i)
			} else {
				sideB = append(sideB, i)
			}
		}
		if len(sideA) == 0 || len(sideB) == 0 {
			c.Heal()
			return
		}
		c.Partition(sideA, sideB)
	case OpHeal:
		c.Heal()
	case OpSever:
		if sess := c.Servers[ev.Server].Node.Session(); sess != nil {
			sess.Sever()
		}
	case OpLeave:
		if c.Servers[ev.Server].Node.Connected() {
			// Error is impossible under the Connected guard; a failed
			// leave would surface as an oracle violation anyway.
			_ = c.Servers[ev.Server].Node.LeaveService()
		}
	case OpJitter:
		host := c.Servers[ev.Server].Host
		host.SetProcessingJitter(jitterMax)
		c.Sim.After(jitterWindow, func() { host.SetProcessingJitter(0) })
	}
}

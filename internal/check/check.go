package check

import (
	"fmt"
	"time"

	"wackamole"
	"wackamole/internal/faults"
	"wackamole/internal/flow"
	"wackamole/internal/gcs"
	"wackamole/internal/invariant"
	"wackamole/internal/load"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
)

// Options parameterize one checked run. The zero value is usable: tuned
// timeouts, computed settle/stability bounds, no trace, no metrics, no
// mutation.
type Options struct {
	// GCS sets the group-communication timeouts (zero: gcs.TunedConfig).
	GCS gcs.Config
	// BalanceTimeout forwards to the engine (zero: 5s, short enough that
	// balancing completes well inside the settle bound).
	BalanceTimeout time.Duration
	// RepresentativeDecisions enables the §4.2 variant.
	RepresentativeDecisions bool
	// SettleBound is how long after the last schedule event the oracles
	// wait before demanding Property 1 and 2. Zero computes a bound from
	// the gcs timeouts: token-loss detection plus four full
	// reconfiguration rounds (discovery, form, recovery) plus session
	// reconnect and slack — generous, but a function of the
	// configuration, not a magic constant.
	SettleBound time.Duration
	// StabilityWindow is the extra quiet period after the settle check in
	// which no further view installation may occur (zero: computed).
	StabilityWindow time.Duration
	// JitterWindow bounds how long an OpJitter scheduling-delay window
	// stays open (zero: 2s). The delay magnitude is half the detection
	// margin, so skewed probes can time out spuriously but the system
	// must always re-converge.
	JitterWindow time.Duration
	// Trace captures the structured event stream into the report (and
	// thence into artifacts).
	Trace bool
	// Metrics, when set, receives the checker counters: check_schedules_total,
	// check_steps_total, check_violations_total, check_shrink_iterations_total.
	Metrics *metrics.Registry
	// Mutation injects a deliberate defect (checker self-tests only).
	Mutation Mutation

	// PingPongBound and PingPongWindow arm the ping-pong oracle (bounded
	// ownership re-claims per VIP group per window). Zero: computed from
	// the schedule's shape events, disarmed when the schedule has none.
	PingPongBound  int
	PingPongWindow time.Duration
	// FalseSuspectBound arms the false-suspicion oracle (bounded false
	// detections of live, reachable peers). Zero: computed from the
	// schedule's shape events, disarmed when the schedule has none.
	FalseSuspectBound int
	// ChurnBound arms the churn oracle (bounded VIP relocations per view).
	// Zero: armed at the schedule's per-view ceiling, s.VIPs — under the
	// default least-loaded policy a single reconfiguration may legitimately
	// reshuffle everything, so the ceiling guards the relocation accounting
	// rather than the policy; harnesses running the minimal policy pass the
	// policy's MoveBound for a bound with teeth.
	ChurnBound int
}

func (o Options) withDefaults() Options {
	if o.GCS == (gcs.Config{}) {
		o.GCS = gcs.TunedConfig()
	}
	if o.BalanceTimeout <= 0 {
		o.BalanceTimeout = 5 * time.Second
	}
	if o.SettleBound <= 0 {
		o.SettleBound = SettleBound(o.GCS)
	}
	if o.StabilityWindow <= 0 {
		o.StabilityWindow = o.GCS.FaultDetectTimeout + o.GCS.DiscoveryTimeout + 2*time.Second
	}
	if o.JitterWindow <= 0 {
		o.JitterWindow = 2 * time.Second
	}
	return o
}

// SettleBound computes the convergence deadline the checker grants after
// the last fault: how long a correct cluster can possibly need to detect
// the change and re-form. Token-loss and fault detection run first, then up
// to four cascaded reconfiguration rounds (merges can restart discovery),
// then the session reconnect interval and reallocation slack.
func SettleBound(cfg gcs.Config) time.Duration {
	form := cfg.FormTimeout
	if form <= 0 {
		form = cfg.DiscoveryTimeout / 2
	}
	rec := cfg.RecoveryTimeout
	if rec <= 0 {
		rec = cfg.DiscoveryTimeout / 2
	}
	tokenLoss := cfg.TokenLossTimeout
	if tokenLoss <= 0 {
		tokenLoss = cfg.FaultDetectTimeout
	}
	round := cfg.DiscoveryTimeout + form + rec
	return tokenLoss + cfg.FaultDetectTimeout + 4*round + 2*time.Second + 3*time.Second
}

// Report is the outcome of one checked run.
type Report struct {
	Schedule Schedule
	// Violation is nil when every oracle held.
	Violation *Violation
	// StepsExecuted counts schedule events actually applied (the run stops
	// at the first violation).
	StepsExecuted int
	// Elapsed is the virtual time the run covered.
	Elapsed time.Duration
	// Installs and Deliveries summarize how much protocol activity the
	// oracles observed — useful to confirm a "clean" run actually
	// exercised something.
	Installs   int
	Deliveries uint64
	// Trace holds the structured event stream when Options.Trace was set.
	Trace []obs.Event
}

// Run executes one fault program under the oracles. The error return is for
// malformed schedules and harness failures only; protocol misbehaviour is
// reported in Report.Violation.
func Run(s Schedule, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if s.Servers < 2 {
		return nil, fmt.Errorf("check: schedule needs at least two servers, got %d", s.Servers)
	}
	if s.VIPs < 1 {
		return nil, fmt.Errorf("check: schedule needs at least one VIP, got %d", s.VIPs)
	}
	for _, ev := range s.Events {
		switch ev.Op {
		case OpPartition, OpHeal:
		default:
			if ev.Server < 0 || ev.Server >= s.Servers {
				return nil, fmt.Errorf("check: event %s targets server outside 0..%d", ev, s.Servers-1)
			}
		}
		if ev.Op == OpShape {
			if _, err := faults.ParseProgram(ev.Shape); err != nil {
				return nil, fmt.Errorf("check: event %s: %w", ev, err)
			}
		}
	}

	opts.Metrics.Counter("check_schedules_total", "fault programs executed by the checker").Inc()
	steps := opts.Metrics.Counter("check_steps_total", "schedule events applied by the checker")
	violations := opts.Metrics.Counter("check_violations_total", "oracle violations detected")
	// Pre-register the traffic-subsystem counter families so wackcheck's
	// counter report (which flattens every counter in the registry, -mutate
	// runs included) sees a stable family set whether or not a schedule
	// drives flow traffic.
	flow.RegisterClientMetrics(opts.Metrics)
	flow.RegisterServerMetrics(opts.Metrics)
	load.Register(opts.Metrics)

	var tracer *obs.Tracer
	if opts.Trace {
		tracer = obs.New(1<<15, nil)
	}

	var c *wackamole.Cluster
	var start time.Time
	ppBound, ppWindow, fsBound := grayBounds(s, opts)
	// The checker's monitor runs in Strict mode (full unbounded histories,
	// batch order sweeps) with no metrics registry or tracer of its own:
	// wackcheck's counter report flattens every registry family and its
	// trace artifacts must stay workload-only, so the monitor's own
	// instrumentation is for the online consumers.
	o := invariant.New(invariant.Config{
		Nodes:  s.Servers,
		Strict: true,
		Now: func() time.Duration {
			if c == nil {
				return 0
			}
			return c.Sim.Now().Sub(start)
		},
		PingPongBound:     ppBound,
		PingPongWindow:    ppWindow,
		FalseSuspectBound: fsBound,
		ChurnBound:        churnBound(s, opts),
	})

	gray := &grayState{
		bindings:    map[int]*faults.Binding{},
		flapActive:  make([]bool, s.Servers),
		jitterUntil: make([]time.Time, s.Servers),
	}
	daemonIdx := make(map[string]int, s.Servers)

	copts := wackamole.ClusterOptions{
		Seed:                    s.Seed,
		Servers:                 s.Servers,
		VIPs:                    s.VIPs,
		GCS:                     opts.GCS,
		BalanceTimeout:          opts.BalanceTimeout,
		RepresentativeDecisions: opts.RepresentativeDecisions,
		Tracer:                  tracer,
		Invariants:              o,
	}
	if fsBound > 0 {
		// Each daemon reports its detections; the judge compares against
		// ground truth the harness alone can see (host liveness, interface
		// state, partition sides, live fault programs) and charges the
		// false-suspect oracle only for detections of reachable peers.
		copts.OnNode = func(i int, n *wackamole.Node) {
			daemonIdx[string(n.Daemon().ID())] = i
			n.Daemon().SetDetectionHook(func(peer, detector string) {
				j, ok := daemonIdx[peer]
				if !ok {
					return
				}
				if judgeFalseSuspicion(c, gray, i, j) {
					o.OnFalseSuspicion(i, peer)
				}
			})
		}
	}
	if opts.Mutation != nil {
		copts.WrapBackend = opts.Mutation.wrap
	}
	var err error
	c, err = wackamole.NewCluster(copts)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	start = c.Sim.Now()

	// The delay magnitude an OpJitter window applies: half the margin
	// between heartbeats and detection, so skew can push individual probes
	// past their deadline without making detection permanently impossible.
	jitterMax := (opts.GCS.FaultDetectTimeout - opts.GCS.HeartbeatInterval) / 2

	report := func() *Report {
		rep := &Report{
			Schedule:   s,
			Violation:  o.Violation(),
			Elapsed:    c.Sim.Now().Sub(start),
			Installs:   o.Installs(),
			Deliveries: o.Deliveries(),
		}
		if tracer != nil {
			rep.Trace = tracer.Snapshot()
		}
		if rep.Violation != nil {
			violations.Inc()
		}
		return rep
	}

	c.Settle()
	o.CheckOrder()
	if o.Violation() != nil {
		return report(), nil
	}

	base := c.Sim.Now()
	executed := 0
	for idx, ev := range s.Events {
		o.SetStep(idx)
		c.Sim.RunUntil(base.Add(ev.At))
		if o.Violation() != nil {
			break
		}
		apply(c, ev, jitterMax, opts.JitterWindow, gray)
		executed++
		steps.Inc()
		o.SetStep(executed)
		o.CheckOrder()
		if o.Violation() != nil {
			break
		}
	}

	// Any fault program still live is stopped before the settle bound: the
	// oracles judge a cluster that has been allowed to re-converge on clean
	// links (shrunk schedules may have lost their clear events).
	for i, b := range gray.bindings {
		b.Stop()
		gray.flapActive[i] = false
	}

	if o.Violation() == nil {
		o.SetStep(executed)
		c.RunFor(opts.SettleBound)
		o.CheckOrder()
	}
	if o.Violation() == nil {
		o.CheckSettled(c.InvariantView(), c.RunFor)
	}
	if o.Violation() == nil {
		before := o.Installs()
		c.RunFor(opts.StabilityWindow)
		o.CheckOrder()
		if o.Violation() == nil && o.Installs() != before {
			o.Fail(OracleConvergence,
				"membership still changing after the settle bound: %d further view installations during the %v stability window",
				o.Installs()-before, opts.StabilityWindow)
		}
		if o.Violation() == nil {
			o.CheckSettled(c.InvariantView(), c.RunFor)
		}
	}

	rep := report()
	rep.StepsExecuted = executed
	return rep, nil
}

// grayState tracks live fault bindings plus the ground-truth context the
// false-suspicion judge needs: which servers are flapping (their silence is
// genuine) and which sit in an OpJitter skew window (their spurious probe
// timeouts are the jitter model working, not a detector defect).
type grayState struct {
	bindings    map[int]*faults.Binding
	flapActive  []bool
	jitterUntil []time.Time
}

// judgeFalseSuspicion decides whether observer declaring peer failed
// contradicts ground truth: the peer's host alive, its interface up, both
// sides of the claim in the same partition component, and neither side
// flapping or inside a jitter window.
func judgeFalseSuspicion(c *wackamole.Cluster, gray *grayState, observer, peer int) bool {
	if c == nil {
		return false
	}
	po, pp := c.Servers[observer], c.Servers[peer]
	if !pp.Host.Alive() || !pp.NIC.Up() || !po.NIC.Up() {
		return false
	}
	if gray.flapActive[observer] || gray.flapActive[peer] {
		return false
	}
	now := c.Sim.Now()
	if now.Before(gray.jitterUntil[observer]) || now.Before(gray.jitterUntil[peer]) {
		return false
	}
	return c.Segment.PartitionGroup(po.NIC) == c.Segment.PartitionGroup(pp.NIC)
}

// churnBound derives the churn-oracle arming: an explicit Options value
// wins; otherwise the schedule's per-view ceiling (every VIP group counts
// at most once per view).
func churnBound(s Schedule, opts Options) int {
	if opts.ChurnBound > 0 {
		return opts.ChurnBound
	}
	return s.VIPs
}

// grayBounds derives the gray-oracle arming from the schedule: explicit
// Options values win; otherwise bounds are computed from the shape events
// (flap cadence for ping-pong, cumulative impaired time for false
// suspicion) and both oracles stay disarmed for shape-free schedules.
func grayBounds(s Schedule, opts Options) (ppBound int, ppWindow time.Duration, fsBound int) {
	ppBound, ppWindow, fsBound = opts.PingPongBound, opts.PingPongWindow, opts.FalseSuspectBound
	var minFlap, grayDur, lastAt time.Duration
	started := map[int]time.Duration{}
	anyShape := false
	for _, ev := range s.Events {
		if ev.At > lastAt {
			lastAt = ev.At
		}
		switch ev.Op {
		case OpShape:
			anyShape = true
			if t, ok := started[ev.Server]; ok {
				grayDur += ev.At - t
			}
			started[ev.Server] = ev.At
			shapes, err := faults.ParseProgram(ev.Shape)
			if err != nil {
				continue // Run validates upfront; unreachable there
			}
			for _, sh := range shapes {
				if sh.Kind == faults.Flap && (minFlap == 0 || sh.Period < minFlap) {
					minFlap = sh.Period
				}
			}
		case OpClear:
			if t, ok := started[ev.Server]; ok {
				grayDur += ev.At - t
				delete(started, ev.Server)
			}
		}
	}
	if !anyShape {
		return
	}
	// Programs never cleared stay live until Run stops them at the settle
	// boundary.
	for _, t := range started {
		grayDur += lastAt + opts.SettleBound - t
	}
	if ppWindow <= 0 {
		ppWindow = 10 * time.Second
	}
	if ppBound <= 0 {
		// Per window, a correct cluster re-claims a group at most ~twice
		// per flap cycle (loss and reclamation) plus up to two transitions
		// per non-shape event; real ping-pong livelock oscillates per token
		// rotation and blows through any such bound.
		cycles := 0
		if minFlap > 0 {
			cycles = int(ppWindow/minFlap) + 1
		}
		ppBound = 8 + 2*len(s.Events) + 4*cycles
	}
	if fsBound <= 0 {
		// A lossy-but-alive or stalled member can legitimately be suspected
		// about once per fault-detection timeout of impaired time; allow a
		// 3x margin before calling the detector defective.
		fsBound = 3 + 3*(int(grayDur/opts.GCS.FaultDetectTimeout)+1)
	}
	return
}

// apply executes one schedule event against the cluster. Inapplicable
// events (restoring an up interface, severing an already-detached session)
// degrade to deterministic no-ops so shrunk schedules stay runnable.
func apply(c *wackamole.Cluster, ev Event, jitterMax, jitterWindow time.Duration, gray *grayState) {
	switch ev.Op {
	case OpFail:
		c.FailServer(ev.Server)
	case OpRestore:
		c.RestoreServer(ev.Server)
	case OpPartition:
		var sideA, sideB []int
		for i := range c.Servers {
			if ev.Mask&(1<<uint(i)) != 0 {
				sideA = append(sideA, i)
			} else {
				sideB = append(sideB, i)
			}
		}
		if len(sideA) == 0 || len(sideB) == 0 {
			c.Heal()
			return
		}
		c.Partition(sideA, sideB)
	case OpHeal:
		c.Heal()
	case OpSever:
		if sess := c.Servers[ev.Server].Node.Session(); sess != nil {
			sess.Sever()
		}
	case OpLeave:
		if c.Servers[ev.Server].Node.Connected() {
			// Error is impossible under the Connected guard; a failed
			// leave would surface as an oracle violation anyway.
			_ = c.Servers[ev.Server].Node.LeaveService()
		}
	case OpJitter:
		host := c.Servers[ev.Server].Host
		host.SetProcessingJitter(jitterMax)
		gray.jitterUntil[ev.Server] = c.Sim.Now().Add(jitterWindow)
		c.Sim.After(jitterWindow, func() { host.SetProcessingJitter(0) })
	case OpShape:
		if b := gray.bindings[ev.Server]; b != nil {
			b.Stop()
		}
		b, err := faults.ApplyProgram(c.Sim, c.Servers[ev.Server].NIC, ev.Shape)
		if err != nil { // Run validates upfront, so this cannot fire
			delete(gray.bindings, ev.Server)
			gray.flapActive[ev.Server] = false
			return
		}
		gray.bindings[ev.Server] = b
		gray.flapActive[ev.Server] = b.HasFlap()
	case OpClear:
		if b := gray.bindings[ev.Server]; b != nil {
			b.Stop()
			delete(gray.bindings, ev.Server)
			gray.flapActive[ev.Server] = false
		}
	}
}

package check

import (
	"fmt"
	"time"

	"wackamole"
	"wackamole/internal/core"
	"wackamole/internal/flow"
	"wackamole/internal/gcs"
	"wackamole/internal/load"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
)

// Options parameterize one checked run. The zero value is usable: tuned
// timeouts, computed settle/stability bounds, no trace, no metrics, no
// mutation.
type Options struct {
	// GCS sets the group-communication timeouts (zero: gcs.TunedConfig).
	GCS gcs.Config
	// BalanceTimeout forwards to the engine (zero: 5s, short enough that
	// balancing completes well inside the settle bound).
	BalanceTimeout time.Duration
	// RepresentativeDecisions enables the §4.2 variant.
	RepresentativeDecisions bool
	// SettleBound is how long after the last schedule event the oracles
	// wait before demanding Property 1 and 2. Zero computes a bound from
	// the gcs timeouts: token-loss detection plus four full
	// reconfiguration rounds (discovery, form, recovery) plus session
	// reconnect and slack — generous, but a function of the
	// configuration, not a magic constant.
	SettleBound time.Duration
	// StabilityWindow is the extra quiet period after the settle check in
	// which no further view installation may occur (zero: computed).
	StabilityWindow time.Duration
	// JitterWindow bounds how long an OpJitter scheduling-delay window
	// stays open (zero: 2s). The delay magnitude is half the detection
	// margin, so skewed probes can time out spuriously but the system
	// must always re-converge.
	JitterWindow time.Duration
	// Trace captures the structured event stream into the report (and
	// thence into artifacts).
	Trace bool
	// Metrics, when set, receives the checker counters: check_schedules_total,
	// check_steps_total, check_violations_total, check_shrink_iterations_total.
	Metrics *metrics.Registry
	// Mutation injects a deliberate defect (checker self-tests only).
	Mutation Mutation
}

func (o Options) withDefaults() Options {
	if o.GCS == (gcs.Config{}) {
		o.GCS = gcs.TunedConfig()
	}
	if o.BalanceTimeout <= 0 {
		o.BalanceTimeout = 5 * time.Second
	}
	if o.SettleBound <= 0 {
		o.SettleBound = SettleBound(o.GCS)
	}
	if o.StabilityWindow <= 0 {
		o.StabilityWindow = o.GCS.FaultDetectTimeout + o.GCS.DiscoveryTimeout + 2*time.Second
	}
	if o.JitterWindow <= 0 {
		o.JitterWindow = 2 * time.Second
	}
	return o
}

// SettleBound computes the convergence deadline the checker grants after
// the last fault: how long a correct cluster can possibly need to detect
// the change and re-form. Token-loss and fault detection run first, then up
// to four cascaded reconfiguration rounds (merges can restart discovery),
// then the session reconnect interval and reallocation slack.
func SettleBound(cfg gcs.Config) time.Duration {
	form := cfg.FormTimeout
	if form <= 0 {
		form = cfg.DiscoveryTimeout / 2
	}
	rec := cfg.RecoveryTimeout
	if rec <= 0 {
		rec = cfg.DiscoveryTimeout / 2
	}
	tokenLoss := cfg.TokenLossTimeout
	if tokenLoss <= 0 {
		tokenLoss = cfg.FaultDetectTimeout
	}
	round := cfg.DiscoveryTimeout + form + rec
	return tokenLoss + cfg.FaultDetectTimeout + 4*round + 2*time.Second + 3*time.Second
}

// Report is the outcome of one checked run.
type Report struct {
	Schedule Schedule
	// Violation is nil when every oracle held.
	Violation *Violation
	// StepsExecuted counts schedule events actually applied (the run stops
	// at the first violation).
	StepsExecuted int
	// Elapsed is the virtual time the run covered.
	Elapsed time.Duration
	// Installs and Deliveries summarize how much protocol activity the
	// oracles observed — useful to confirm a "clean" run actually
	// exercised something.
	Installs   int
	Deliveries uint64
	// Trace holds the structured event stream when Options.Trace was set.
	Trace []obs.Event
}

// Run executes one fault program under the oracles. The error return is for
// malformed schedules and harness failures only; protocol misbehaviour is
// reported in Report.Violation.
func Run(s Schedule, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if s.Servers < 2 {
		return nil, fmt.Errorf("check: schedule needs at least two servers, got %d", s.Servers)
	}
	if s.VIPs < 1 {
		return nil, fmt.Errorf("check: schedule needs at least one VIP, got %d", s.VIPs)
	}
	for _, ev := range s.Events {
		switch ev.Op {
		case OpPartition, OpHeal:
		default:
			if ev.Server < 0 || ev.Server >= s.Servers {
				return nil, fmt.Errorf("check: event %s targets server outside 0..%d", ev, s.Servers-1)
			}
		}
	}

	opts.Metrics.Counter("check_schedules_total", "fault programs executed by the checker").Inc()
	steps := opts.Metrics.Counter("check_steps_total", "schedule events applied by the checker")
	violations := opts.Metrics.Counter("check_violations_total", "oracle violations detected")
	// Pre-register the traffic-subsystem counter families so wackcheck's
	// counter report (which flattens every counter in the registry, -mutate
	// runs included) sees a stable family set whether or not a schedule
	// drives flow traffic.
	flow.RegisterClientMetrics(opts.Metrics)
	flow.RegisterServerMetrics(opts.Metrics)
	load.Register(opts.Metrics)

	var tracer *obs.Tracer
	if opts.Trace {
		tracer = obs.New(1<<15, nil)
	}

	var c *wackamole.Cluster
	var start time.Time
	o := newOracles(s.Servers, func() time.Duration {
		if c == nil {
			return 0
		}
		return c.Sim.Now().Sub(start)
	})

	copts := wackamole.ClusterOptions{
		Seed:                    s.Seed,
		Servers:                 s.Servers,
		VIPs:                    s.VIPs,
		GCS:                     opts.GCS,
		BalanceTimeout:          opts.BalanceTimeout,
		RepresentativeDecisions: opts.RepresentativeDecisions,
		Tracer:                  tracer,
		OnNode: func(i int, n *wackamole.Node) {
			self := n.Member()
			n.Engine().SetViewHook(func(v core.View) { o.onViewInstall(i, v) })
			n.Engine().SetOwnershipHook(func(g string, owned bool, viewID string) {
				o.onOwnership(i, g, owned, viewID, self)
			})
			n.Daemon().SetDeliveryHandler(func(r gcs.RingID, seq uint64, origin gcs.DaemonID) {
				o.onDelivery(i, r, seq, origin)
			})
		},
	}
	if opts.Mutation != nil {
		copts.WrapBackend = opts.Mutation.wrap
	}
	var err error
	c, err = wackamole.NewCluster(copts)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	start = c.Sim.Now()

	// The delay magnitude an OpJitter window applies: half the margin
	// between heartbeats and detection, so skew can push individual probes
	// past their deadline without making detection permanently impossible.
	jitterMax := (opts.GCS.FaultDetectTimeout - opts.GCS.HeartbeatInterval) / 2

	report := func() *Report {
		rep := &Report{
			Schedule:   s,
			Violation:  o.violation,
			Elapsed:    c.Sim.Now().Sub(start),
			Installs:   o.installCount(),
			Deliveries: o.delivers,
		}
		if tracer != nil {
			rep.Trace = tracer.Snapshot()
		}
		if rep.Violation != nil {
			violations.Inc()
		}
		return rep
	}

	c.Settle()
	o.checkOrder()
	if o.violation != nil {
		return report(), nil
	}

	base := c.Sim.Now()
	executed := 0
	for idx, ev := range s.Events {
		o.step = idx
		c.Sim.RunUntil(base.Add(ev.At))
		if o.violation != nil {
			break
		}
		apply(c, ev, jitterMax, opts.JitterWindow)
		executed++
		steps.Inc()
		o.step = executed
		o.checkOrder()
		if o.violation != nil {
			break
		}
	}

	if o.violation == nil {
		o.step = executed
		c.RunFor(opts.SettleBound)
		o.checkOrder()
	}
	if o.violation == nil {
		checkSettled(c, s, o)
	}
	if o.violation == nil {
		before := o.installCount()
		c.RunFor(opts.StabilityWindow)
		o.checkOrder()
		if o.violation == nil && o.installCount() != before {
			o.fail(OracleConvergence,
				"membership still changing after the settle bound: %d further view installations during the %v stability window",
				o.installCount()-before, opts.StabilityWindow)
		}
		if o.violation == nil {
			checkSettled(c, s, o)
		}
	}

	rep := report()
	rep.StepsExecuted = executed
	return rep, nil
}

// apply executes one schedule event against the cluster. Inapplicable
// events (restoring an up interface, severing an already-detached session)
// degrade to deterministic no-ops so shrunk schedules stay runnable.
func apply(c *wackamole.Cluster, ev Event, jitterMax, jitterWindow time.Duration) {
	switch ev.Op {
	case OpFail:
		c.FailServer(ev.Server)
	case OpRestore:
		c.RestoreServer(ev.Server)
	case OpPartition:
		var sideA, sideB []int
		for i := range c.Servers {
			if ev.Mask&(1<<uint(i)) != 0 {
				sideA = append(sideA, i)
			} else {
				sideB = append(sideB, i)
			}
		}
		if len(sideA) == 0 || len(sideB) == 0 {
			c.Heal()
			return
		}
		c.Partition(sideA, sideB)
	case OpHeal:
		c.Heal()
	case OpSever:
		if sess := c.Servers[ev.Server].Node.Session(); sess != nil {
			sess.Sever()
		}
	case OpLeave:
		if c.Servers[ev.Server].Node.Connected() {
			// Error is impossible under the Connected guard; a failed
			// leave would surface as an oracle violation anyway.
			_ = c.Servers[ev.Server].Node.LeaveService()
		}
	case OpJitter:
		host := c.Servers[ev.Server].Host
		host.SetProcessingJitter(jitterMax)
		c.Sim.After(jitterWindow, func() { host.SetProcessingJitter(0) })
	}
}

// checkSettled demands the settled-state properties: Property 1
// (exactly-once coverage per component), Property 2 (one view, one table
// per component) and interface/engine agreement. A failure is retried once
// after one extra second, because an in-flight balance legitimately moves
// an address between two interfaces in a sub-millisecond window and the
// settled properties are about resting states; persistent failures are
// violations.
func checkSettled(c *wackamole.Cluster, s Schedule, o *oracles) {
	oracle, detail := settledProblem(c, s)
	if oracle == "" {
		return
	}
	c.RunFor(time.Second)
	oracle, detail = settledProblem(c, s)
	if oracle != "" {
		o.fail(oracle, "%s", detail)
	}
}

func settledProblem(c *wackamole.Cluster, s Schedule) (oracle, detail string) {
	for _, comp := range c.Components() {
		var serving []int
		for _, i := range comp {
			if c.Servers[i].Node.Connected() {
				serving = append(serving, i)
			}
		}
		if len(serving) == 0 {
			// A component with no in-service node must hold nothing: its
			// engines released (or never had) every address.
			for _, i := range comp {
				for j := 0; j < s.VIPs; j++ {
					if c.Servers[i].NIC.HasAddr(wackamole.VIPAddr(j)) {
						return OracleForeignClaim, fmt.Sprintf(
							"server %d holds %v although no node in component %v is in service",
							i, wackamole.VIPAddr(j), comp)
					}
				}
			}
			continue
		}

		// Property 2: every in-service member of the component has settled
		// on the same view and the same allocation table.
		ref := c.Servers[serving[0]].Node.Status()
		if ref.State != core.StateRun {
			return OracleConvergence, fmt.Sprintf(
				"server %d still in state %v after the settle bound (component %v)",
				serving[0], ref.State, comp)
		}
		for _, i := range serving[1:] {
			st := c.Servers[i].Node.Status()
			if st.State != core.StateRun {
				return OracleConvergence, fmt.Sprintf(
					"server %d still in state %v after the settle bound (component %v)",
					i, st.State, comp)
			}
			if st.ViewID != ref.ViewID {
				return OracleConvergence, fmt.Sprintf(
					"servers %d and %d settled on different views %q and %q in component %v",
					serving[0], i, ref.ViewID, st.ViewID, comp)
			}
			if !tablesEqual(ref.Table, st.Table) {
				return OracleConvergence, fmt.Sprintf(
					"servers %d and %d settled on different tables in view %q: %v vs %v",
					serving[0], i, ref.ViewID, ref.Table, st.Table)
			}
		}

		// Property 1: exactly one holder per virtual address within the
		// component — counting every reachable interface, in service or
		// not, because a stale interface answering ARP is a real conflict.
		for j := 0; j < s.VIPs; j++ {
			var holders []int
			for _, i := range comp {
				if c.Servers[i].NIC.HasAddr(wackamole.VIPAddr(j)) {
					holders = append(holders, i)
				}
			}
			if len(holders) != 1 {
				return OracleExactlyOnce, fmt.Sprintf(
					"%v has %d holders %v in component %v (want exactly one)",
					wackamole.VIPAddr(j), len(holders), holders, comp)
			}
		}
	}

	// Oracle (e), settled half: every reachable interface holds exactly the
	// addresses its engine believes it owns.
	for i := range c.Servers {
		if !c.Reachable(i) {
			continue
		}
		owned := map[string]bool{}
		for _, g := range c.Servers[i].Node.Status().Owned {
			owned[g] = true
		}
		for j := 0; j < s.VIPs; j++ {
			has := c.Servers[i].NIC.HasAddr(wackamole.VIPAddr(j))
			wants := owned[fmt.Sprintf("vip%02d", j)]
			if has != wants {
				return OracleForeignClaim, fmt.Sprintf(
					"server %d interface and engine disagree on %v: interface=%v engine=%v",
					i, wackamole.VIPAddr(j), has, wants)
			}
		}
	}
	return "", ""
}

func tablesEqual(a, b map[string]core.MemberID) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

package check

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"

	"wackamole/internal/ipmgr"
)

// Mutation deliberately breaks one node's behaviour so the oracles can be
// validated against known-bad implementations (the checker's own mutation
// tests). Mutations live entirely in the checker: the production path is
// untouched, only the simulated cluster wiring is decorated.
type Mutation interface {
	// String returns the parseable form ("keep-on-release:2"); artifacts
	// record it so replays reproduce the mutated run.
	String() string
	// wrap decorates server i's address backend.
	wrap(i int, b ipmgr.Backend) ipmgr.Backend
}

// KeepOnRelease returns a mutation under which the given server silently
// ignores every address release: the engine believes the balance or
// conflict-resolution release succeeded, but the interface keeps answering
// for the address. This breaks the paper's balance rule in exactly the way
// a buggy per-OS ifconfig layer would, and must be caught by the
// exactly-once oracle.
func KeepOnRelease(server int) Mutation {
	return keepOnRelease{server: server}
}

type keepOnRelease struct{ server int }

func (m keepOnRelease) String() string { return fmt.Sprintf("keep-on-release:%d", m.server) }

func (m keepOnRelease) wrap(i int, b ipmgr.Backend) ipmgr.Backend {
	if i != m.server {
		return b
	}
	return keepBackend{inner: b}
}

type keepBackend struct{ inner ipmgr.Backend }

func (k keepBackend) Acquire(a netip.Addr) error { return k.inner.Acquire(a) }
func (k keepBackend) Release(netip.Addr) error   { return nil }

// ParseMutation parses the String form of a mutation; the empty string
// parses to nil (no mutation).
func ParseMutation(s string) (Mutation, error) {
	if s == "" {
		return nil, nil
	}
	name, arg, _ := strings.Cut(s, ":")
	switch name {
	case "keep-on-release":
		i, err := strconv.Atoi(arg)
		if err != nil || i < 0 {
			return nil, fmt.Errorf("check: mutation %q needs a server index", s)
		}
		return KeepOnRelease(i), nil
	default:
		return nil, fmt.Errorf("check: unknown mutation %q", s)
	}
}

package check

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"wackamole/internal/faults"
	"wackamole/internal/gcs"
)

func TestGenerateGrayProducesValidShapes(t *testing.T) {
	s := Generate(21, GenConfig{Servers: 5, VIPs: 10, Steps: 20, Gray: true})
	shapes := 0
	active := map[int]bool{}
	for _, ev := range s.Events {
		switch ev.Op {
		case OpShape:
			shapes++
			if active[ev.Server] {
				t.Fatalf("second shape on server %d before a clear: %v", ev.Server, ev)
			}
			active[ev.Server] = true
			if _, err := faults.ParseProgram(ev.Shape); err != nil {
				t.Fatalf("generated shape does not parse: %v: %v", ev, err)
			}
		case OpClear:
			delete(active, ev.Server)
		}
	}
	if shapes == 0 {
		t.Fatal("20-step gray schedule generated no shape events")
	}
	if len(active) != 0 {
		t.Fatalf("schedule ends with %d uncleaned shapes (trailing clears missing)", len(active))
	}

	// Gray generation stays deterministic, and JSON round-trips the Shape
	// field.
	if b := Generate(21, GenConfig{Servers: 5, VIPs: 10, Steps: 20, Gray: true}); !reflect.DeepEqual(s, b) {
		t.Fatal("same seed produced different gray schedules")
	}
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatal("gray schedule changed across a JSON round trip")
	}
}

// Non-gray generation must not change for existing seeds: the gray draw
// range widening is gated on GenConfig.Gray.
func TestGenerateWithoutGrayHasNoShapes(t *testing.T) {
	s := Generate(7, GenConfig{Servers: 5, VIPs: 10, Steps: 12, Leaves: true})
	for _, ev := range s.Events {
		if ev.Op == OpShape || ev.Op == OpClear || ev.Shape != "" {
			t.Fatalf("non-gray schedule contains gray event: %v", ev)
		}
	}
}

// TestGrayScheduleSatisfiesOracles is the gray plane's clean-run gate: a
// generated schedule of flap/graylink/slownode programs must pass every
// oracle, including the two gray ones armed from the schedule itself.
func TestGrayScheduleSatisfiesOracles(t *testing.T) {
	s := Generate(31, GenConfig{Servers: 4, VIPs: 8, Steps: 8, Gray: true})
	hasShape := false
	for _, ev := range s.Events {
		if ev.Op == OpShape {
			hasShape = true
		}
	}
	if !hasShape {
		t.Skip("seed produced no shape events; adjust seed")
	}
	rep, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("gray schedule reported violation: %v", rep.Violation)
	}
	if rep.StepsExecuted != len(s.Events) {
		t.Fatalf("executed %d of %d events", rep.StepsExecuted, len(s.Events))
	}
}

// TestGraylinkRegatherKeepsViewsConsistent pins a regression the gray
// sweep found (shrunk from generated seed 21): 15% symmetric loss on one
// daemon's link forces token-loss re-gathers, and one of the intermediate
// rings dies before its group synchronization completes — the lossy daemon
// never installs it. Membership ops buffered under that dead ring used to
// be replayed into the next ring's sync at the old cohort only, so the
// cohort and the outsider emitted the same view ID with diverging member
// lists (a view-order violation). The run must now be violation-free.
func TestGraylinkRegatherKeepsViewsConsistent(t *testing.T) {
	s := Schedule{Seed: 21, Servers: 5, VIPs: 10, Events: []Event{
		{At: 10564 * time.Millisecond, Op: OpShape, Server: 4,
			Shape: "graylink(rxloss=0.15,txloss=0.15,rxdelay=0s,txdelay=5ms)"},
		{At: 13745 * time.Millisecond, Op: OpSever, Server: 0},
		{At: 17815 * time.Millisecond, Op: OpSever, Server: 4},
	}}
	rep, err := Run(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("interrupted-sync replay regression: %v", rep.Violation)
	}
}

// Artifacts must round-trip the detection regime: a phi-sweep artifact
// replayed under the fixed detector runs a different schedule and fails to
// reproduce.
func TestArtifactRoundTripsDetector(t *testing.T) {
	opts := Options{GCS: gcs.Config{Detector: gcs.DetectorPhi}}.withDefaults()
	rep := &Report{Schedule: Schedule{Seed: 3, Servers: 3, VIPs: 4}}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, NewArtifact(rep, opts, 0)); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.RunOptions()
	if err != nil {
		t.Fatal(err)
	}
	if got.GCS.Detector != gcs.DetectorPhi {
		t.Fatalf("detector lost in artifact round trip: %v", got.GCS.Detector)
	}
	if got.GCS.PhiThreshold != opts.GCS.PhiThreshold ||
		got.GCS.PhiCheckInterval != opts.GCS.PhiCheckInterval {
		t.Fatalf("phi tuning lost: threshold %v/%v interval %v/%v",
			got.GCS.PhiThreshold, opts.GCS.PhiThreshold,
			got.GCS.PhiCheckInterval, opts.GCS.PhiCheckInterval)
	}

	// Fixed-detector artifacts omit the field entirely, so artifacts
	// written before it existed keep replaying bit-identically.
	buf.Reset()
	if err := WriteArtifact(&buf, NewArtifact(rep, Options{}.withDefaults(), 0)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "detector") {
		t.Fatalf("fixed-detector artifact mentions the detector field:\n%s", buf.String())
	}
}

// A malformed shape spec is a harness error, not a violation.
func TestRunRejectsMalformedShape(t *testing.T) {
	s := Schedule{Seed: 1, Servers: 3, VIPs: 4, Events: []Event{
		{At: time.Second, Op: OpShape, Server: 0, Shape: "flap(duty=2)"},
	}}
	if _, err := Run(s, Options{}); err == nil {
		t.Fatal("malformed shape spec accepted")
	}
}

func TestGrayBoundsDerivation(t *testing.T) {
	opts := Options{}.withDefaults()
	s := Schedule{Seed: 1, Servers: 3, VIPs: 4, Events: []Event{
		{At: 1 * time.Second, Op: OpShape, Server: 0, Shape: "flap(period=800ms,duty=0.5,jitter=0s)"},
		{At: 9 * time.Second, Op: OpClear, Server: 0},
	}}
	pp, window, fs := grayBounds(s, opts)
	if pp <= 0 || fs <= 0 || window <= 0 {
		t.Fatalf("gray schedule left oracles disarmed: pp=%d window=%v fs=%d", pp, window, fs)
	}

	// Shape-free schedules keep both oracles disarmed unless Options set
	// explicit bounds.
	plain := Schedule{Seed: 1, Servers: 3, VIPs: 4, Events: []Event{
		{At: time.Second, Op: OpFail, Server: 0},
	}}
	pp, _, fs = grayBounds(plain, opts)
	if pp != 0 || fs != 0 {
		t.Fatalf("shape-free schedule armed gray oracles: pp=%d fs=%d", pp, fs)
	}
	explicit := opts
	explicit.PingPongBound, explicit.FalseSuspectBound = 5, 7
	pp, _, fs = grayBounds(plain, explicit)
	if pp != 5 || fs != 7 {
		t.Fatalf("explicit bounds not honored: pp=%d fs=%d", pp, fs)
	}
}

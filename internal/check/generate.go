package check

import (
	"math/rand"
	"sort"
	"time"
)

// GenConfig shapes schedule generation.
type GenConfig struct {
	// Servers and VIPs set the cluster size (defaults 5 and 10).
	Servers int
	VIPs    int
	// Steps is the number of fault events to generate (default 12).
	Steps int
	// MinGap and MaxGap bound the spacing between consecutive events
	// (defaults 500ms and 5s). Gaps shorter than the fault-detection
	// timeout deliberately overlap reconfigurations.
	MinGap time.Duration
	MaxGap time.Duration
	// Leaves enables graceful-departure events (at most one per schedule,
	// and only while more than two servers remain in service).
	Leaves bool
	// Gray enables gray-failure shape events (OpShape/OpClear): flapping
	// links, lossy-but-alive links and CPU-starved daemons drawn from a
	// fixed parameter table. The generator keeps at most one program per
	// server and appends trailing clears so every schedule ends clean.
	// Leaving Gray off keeps generation byte-identical to earlier versions
	// for any given seed.
	Gray bool
}

func (g GenConfig) withDefaults() GenConfig {
	if g.Servers <= 0 {
		g.Servers = 5
	}
	if g.VIPs <= 0 {
		g.VIPs = 10
	}
	if g.Steps <= 0 {
		g.Steps = 12
	}
	if g.MinGap <= 0 {
		g.MinGap = 500 * time.Millisecond
	}
	if g.MaxGap <= g.MinGap {
		g.MaxGap = g.MinGap + 5*time.Second
	}
	return g
}

// Generate derives a valid-by-construction fault program from seed alone:
// the same (seed, config) pair always yields the same schedule, and the
// generator's random source is private to it, so generation never perturbs
// the simulation's own randomness. Validity means the program keeps a
// majority-free invariant the oracles rely on: at most servers-2 interfaces
// down at once, partitions always two-sided and non-empty, restores only of
// servers actually down.
func Generate(seed int64, cfg GenConfig) Schedule {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	n := cfg.Servers

	down := map[int]bool{}
	left := map[int]bool{}
	shaped := map[int]bool{}
	partitioned := false
	inService := n
	leftAllowed := cfg.Leaves
	// Gray mode widens the draw range by two (shape, clear); non-gray
	// configs keep the historical range so existing seeds replay unchanged.
	ops := 7
	if cfg.Gray {
		ops = 9
	}

	s := Schedule{Seed: seed, Servers: n, VIPs: cfg.VIPs}
	at := time.Duration(0)
	for step := 0; step < cfg.Steps; step++ {
		// Millisecond-round offsets keep serialized schedules readable
		// without costing any generality.
		gap := cfg.MinGap + time.Duration(rng.Int63n(int64(cfg.MaxGap-cfg.MinGap)))
		at += gap.Truncate(time.Millisecond)
		ev := Event{At: at}
		// Draw until an applicable operation comes up; every state admits
		// fail/sever/jitter targets as long as two servers remain up, so
		// this terminates.
		for {
			switch rng.Intn(ops) {
			case 0: // fail
				cand := pickServer(rng, n, func(i int) bool { return !down[i] && !shaped[i] })
				if len(down) >= n-2 || cand < 0 {
					continue
				}
				down[cand] = true
				ev.Op, ev.Server = OpFail, cand
			case 1: // restore
				cand := pickServer(rng, n, func(i int) bool { return down[i] })
				if cand < 0 {
					continue
				}
				delete(down, cand)
				ev.Op, ev.Server = OpRestore, cand
			case 2: // partition
				if partitioned || n < 2 {
					continue
				}
				mask := uint64(rng.Int63n(int64(1)<<uint(n)-2) + 1)
				partitioned = true
				ev.Op, ev.Mask = OpPartition, mask
			case 3: // heal
				if !partitioned {
					continue
				}
				partitioned = false
				ev.Op = OpHeal
			case 4: // sever
				cand := pickServer(rng, n, func(i int) bool { return !down[i] && !left[i] })
				if cand < 0 {
					continue
				}
				ev.Op, ev.Server = OpSever, cand
			case 5: // leave
				cand := pickServer(rng, n, func(i int) bool { return !down[i] && !left[i] })
				if !leftAllowed || inService <= 2 || cand < 0 {
					continue
				}
				left[cand] = true
				inService--
				leftAllowed = false
				ev.Op, ev.Server = OpLeave, cand
			case 6: // jitter window
				cand := pickServer(rng, n, func(i int) bool { return !left[i] && !shaped[i] })
				if cand < 0 {
					continue
				}
				ev.Op, ev.Server = OpJitter, cand
			case 7: // gray shape (Gray mode only)
				cand := pickServer(rng, n, func(i int) bool { return !down[i] && !left[i] && !shaped[i] })
				if cand < 0 {
					continue
				}
				shaped[cand] = true
				ev.Op, ev.Server = OpShape, cand
				ev.Shape = grayShapes[rng.Intn(len(grayShapes))]
			case 8: // clear shape (Gray mode only)
				cand := pickServer(rng, n, func(i int) bool { return shaped[i] })
				if cand < 0 {
					continue
				}
				delete(shaped, cand)
				ev.Op, ev.Server = OpClear, cand
			}
			break
		}
		s.Events = append(s.Events, ev)
	}
	// Trailing clears: every schedule ends with clean interfaces, so the
	// settle-bound oracles judge a cluster that is allowed to re-converge.
	// (Run stops leftover bindings anyway — this keeps the invariant visible
	// in the serialized schedule itself, shrunk variants included.)
	for _, i := range sortedKeys(shaped) {
		gap := cfg.MinGap + time.Duration(rng.Int63n(int64(cfg.MaxGap-cfg.MinGap)))
		at += gap.Truncate(time.Millisecond)
		s.Events = append(s.Events, Event{At: at, Op: OpClear, Server: i})
	}
	return s
}

// grayShapes is the fixed parameter table gray generation draws from:
// two flap cadences bracketing the tuned fault-detection timeout, two
// asymmetric lossy-but-alive links, and two CPU-starvation strengths.
var grayShapes = []string{
	"flap(period=800ms,duty=0.5,jitter=20ms)",
	"flap(period=2.4s,duty=0.67,jitter=50ms)",
	"graylink(rxloss=0.3,txloss=0.05,rxdelay=2ms,txdelay=0s)",
	"graylink(rxloss=0.15,txloss=0.15,rxdelay=0s,txdelay=5ms)",
	"slownode(stall=40ms)",
	"slownode(stall=90ms)",
}

func sortedKeys(m map[int]bool) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// pickServer draws uniformly among the servers satisfying ok, or -1 when
// none do. Candidates are collected in sorted index order so the draw is
// deterministic.
func pickServer(rng *rand.Rand, n int, ok func(int) bool) int {
	cand := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if ok(i) {
			cand = append(cand, i)
		}
	}
	if len(cand) == 0 {
		return -1
	}
	sort.Ints(cand)
	return cand[rng.Intn(len(cand))]
}

package check

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"wackamole/internal/core"
	"wackamole/internal/gcs"
	"wackamole/internal/invariant"
	"wackamole/internal/metrics"
)

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(7, GenConfig{Servers: 5, VIPs: 10, Steps: 12, Leaves: true})
	b := Generate(7, GenConfig{Servers: 5, VIPs: 10, Steps: 12, Leaves: true})
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", a, b)
	}
	c := Generate(8, GenConfig{Servers: 5, VIPs: 10, Steps: 12, Leaves: true})
	if reflect.DeepEqual(a.Events, c.Events) {
		t.Fatalf("different seeds produced identical event lists")
	}
	if len(a.Events) != 12 {
		t.Fatalf("wanted 12 events, got %d", len(a.Events))
	}
	for i := 1; i < len(a.Events); i++ {
		if a.Events[i].At <= a.Events[i-1].At {
			t.Fatalf("events out of order: %v then %v", a.Events[i-1], a.Events[i])
		}
	}
}

func TestScheduleJSONRoundTrip(t *testing.T) {
	s := Generate(3, GenConfig{Servers: 4, VIPs: 6, Steps: 10, Leaves: true})
	blob, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Schedule
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, back) {
		t.Fatalf("round trip changed the schedule:\n%v\n%v", s, back)
	}
}

func TestCleanScheduleSatisfiesOracles(t *testing.T) {
	reg := metrics.New()
	s := Generate(1, GenConfig{Servers: 5, VIPs: 10, Steps: 8, Leaves: true})
	rep, err := Run(s, Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation != nil {
		t.Fatalf("clean schedule reported violation: %v", rep.Violation)
	}
	if rep.StepsExecuted != len(s.Events) {
		t.Fatalf("executed %d of %d events", rep.StepsExecuted, len(s.Events))
	}
	if rep.Installs == 0 || rep.Deliveries == 0 {
		t.Fatalf("oracles observed nothing: installs=%d deliveries=%d", rep.Installs, rep.Deliveries)
	}
	snap := reg.Snapshot()
	if f := snap.Family("check_schedules_total"); f == nil || f.Series[0].Value != 1 {
		t.Fatalf("check_schedules_total not recorded: %+v", f)
	}
	if f := snap.Family("check_steps_total"); f == nil || f.Series[0].Value != float64(len(s.Events)) {
		t.Fatalf("check_steps_total not recorded: %+v", f)
	}
	// The traffic-subsystem families must be pre-registered even though a
	// checker schedule drives no flow traffic: wackcheck's counter report
	// flattens the whole registry, and -mutate comparisons depend on the
	// family set being identical across runs.
	for _, name := range []string{
		"flow_conns_opened_total", "flow_conns_reset_total", "flow_retransmits_total",
		"flow_conns_timeout_total", "flow_accepts_total", "flow_responses_total",
		"flow_rsts_sent_total", "load_requests_total",
	} {
		if snap.Family(name) == nil {
			t.Errorf("traffic counter family %q not pre-registered", name)
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	s := Generate(5, GenConfig{Servers: 4, VIPs: 6, Steps: 6})
	a, err := Run(s, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.Elapsed != b.Elapsed || a.Installs != b.Installs || a.Deliveries != b.Deliveries {
		t.Fatalf("two runs of the same schedule diverged: %+v vs %+v", a, b)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i].String() != b.Trace[i].String() {
			t.Fatalf("trace diverges at event %d: %v vs %v", i, a.Trace[i], b.Trace[i])
		}
	}
}

// TestMutationCaughtShrunkAndReplayed is the checker's acceptance self-test:
// a deliberately broken release rule (server 1 keeps every address its
// engine releases) must be caught by the exactly-once oracle, shrunk to a
// minimal schedule of at most 6 events, and the emitted artifact must
// replay to the identical violation.
func TestMutationCaughtShrunkAndReplayed(t *testing.T) {
	reg := metrics.New()
	// Noise events surround the one sequence that matters: failing and
	// restoring the mutated server forces it to release conflicting
	// addresses on merge, which the mutation silently skips.
	s := Schedule{
		Seed: 42, Servers: 3, VIPs: 6,
		Events: []Event{
			{At: 1 * time.Second, Op: OpJitter, Server: 2},
			{At: 2 * time.Second, Op: OpFail, Server: 1},
			{At: 4 * time.Second, Op: OpSever, Server: 0},
			{At: 9 * time.Second, Op: OpRestore, Server: 1},
			{At: 11 * time.Second, Op: OpSever, Server: 2},
			{At: 13 * time.Second, Op: OpHeal},
		},
	}
	opts := Options{Mutation: KeepOnRelease(1), Metrics: reg}

	rep, err := Run(s, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Violation == nil {
		t.Fatalf("broken release rule went undetected")
	}
	if rep.Violation.Oracle != OracleExactlyOnce && rep.Violation.Oracle != OracleForeignClaim {
		t.Fatalf("unexpected oracle %s: %v", rep.Violation.Oracle, rep.Violation)
	}

	minimal, minRep, iters, err := Shrink(s, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if minRep.Violation == nil {
		t.Fatalf("shrunk schedule no longer violates")
	}
	if len(minimal.Events) > 6 {
		t.Fatalf("shrink left %d events (want <= 6): %v", len(minimal.Events), minimal.Events)
	}
	if iters == 0 {
		t.Fatalf("shrink reported zero iterations")
	}
	snap := reg.Snapshot()
	if f := snap.Family("check_shrink_iterations_total"); f == nil || f.Series[0].Value != float64(iters) {
		t.Fatalf("check_shrink_iterations_total not recorded: %+v", f)
	}
	if f := snap.Family("check_violations_total"); f == nil || f.Series[0].Value == 0 {
		t.Fatalf("check_violations_total not recorded: %+v", f)
	}

	art := NewArtifact(minRep, opts, iters)
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, art); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayRep, match, err := Replay(back)
	if err != nil {
		t.Fatal(err)
	}
	if !match {
		t.Fatalf("replay mismatch: artifact %v, replay %v", back.Violation, replayRep.Violation)
	}
}

// strictMonitor builds the checker-mode oracle state machine the way Run
// does, for driving its event methods directly.
func strictMonitor(nodes int) *invariant.Monitor {
	return invariant.New(invariant.Config{
		Nodes: nodes, Strict: true, Now: func() time.Duration { return 0 },
	})
}

// TestOracleViewOrderDetectsDivergence feeds the oracle state machine two
// engines that disagree on a view's membership.
func TestOracleViewOrderDetectsDivergence(t *testing.T) {
	o := strictMonitor(2)
	o.OnView(0, core.View{ID: "v1", Members: []core.MemberID{"a", "b"}})
	o.OnView(1, core.View{ID: "v1", Members: []core.MemberID{"a"}})
	if v := o.Violation(); v == nil || v.Oracle != OracleViewOrder {
		t.Fatalf("diverging member lists not caught: %v", v)
	}
}

func TestOracleViewOrderDetectsReordering(t *testing.T) {
	o := strictMonitor(2)
	o.OnView(0, core.View{ID: "v1", Members: []core.MemberID{"a"}})
	o.OnView(0, core.View{ID: "v2", Members: []core.MemberID{"a", "b"}})
	o.OnView(1, core.View{ID: "v2", Members: []core.MemberID{"a", "b"}})
	o.OnView(1, core.View{ID: "v1", Members: []core.MemberID{"a"}})
	o.CheckOrder()
	if v := o.Violation(); v == nil || v.Oracle != OracleViewOrder {
		t.Fatalf("opposite install orders not caught: %v", v)
	}
}

func TestOracleDeliveryOrderDetectsConflicts(t *testing.T) {
	ring := gcs.RingID{Coord: "d0", Epoch: 1}
	o := strictMonitor(2)
	o.OnDelivery(0, ring, 1, "d0")
	o.OnDelivery(1, ring, 1, "d1")
	if v := o.Violation(); v == nil || v.Oracle != OracleDeliveryOrder {
		t.Fatalf("conflicting origins not caught: %v", v)
	}

	o = strictMonitor(1)
	o.OnDelivery(0, ring, 2, "d0")
	o.OnDelivery(0, ring, 1, "d0")
	if v := o.Violation(); v == nil || v.Oracle != OracleDeliveryOrder {
		t.Fatalf("out-of-order delivery not caught: %v", v)
	}
}

func TestParseMutation(t *testing.T) {
	m, err := ParseMutation("keep-on-release:2")
	if err != nil || m == nil || m.String() != "keep-on-release:2" {
		t.Fatalf("parse failed: %v %v", m, err)
	}
	if m, err := ParseMutation(""); err != nil || m != nil {
		t.Fatalf("empty mutation should parse to nil, got %v %v", m, err)
	}
	if _, err := ParseMutation("definitely-not-a-mutation"); err == nil {
		t.Fatalf("unknown mutation accepted")
	}
}

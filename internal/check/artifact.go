package check

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"wackamole/internal/gcs"
	"wackamole/internal/obs"
)

// Artifact is the replayable record of a checker finding: the (possibly
// shrunk) schedule, everything needed to reconstruct the run options, and
// the violation the run produced. Artifacts marshal to a stable JSON shape;
// the structured event trace travels separately as NDJSON (see WriteTrace)
// because it is bulky and line-oriented.
type Artifact struct {
	Schedule         Schedule   `json:"schedule"`
	Options          OptionsDoc `json:"options"`
	Violation        *Violation `json:"violation,omitempty"`
	ShrinkIterations int        `json:"shrink_iterations,omitempty"`
}

// OptionsDoc is the serialized form of the Options fields that affect
// execution. Durations travel as integer nanoseconds so reconstruction is
// exact.
type OptionsDoc struct {
	FaultDetectNS  int64  `json:"fault_detect_ns"`
	HeartbeatNS    int64  `json:"heartbeat_ns"`
	DiscoveryNS    int64  `json:"discovery_ns"`
	BalanceNS      int64  `json:"balance_ns"`
	SettleNS       int64  `json:"settle_ns"`
	StabilityNS    int64  `json:"stability_ns"`
	JitterWindowNS int64  `json:"jitter_window_ns"`
	Representative bool   `json:"representative,omitempty"`
	Mutation       string `json:"mutation,omitempty"`
	// Detector names the failure-detection regime ("fixed" or "phi");
	// absent means fixed, so artifacts from before the field existed
	// replay unchanged. Detection timing shifts the whole schedule, so a
	// phi artifact replayed under fixed would not reproduce.
	Detector        string  `json:"detector,omitempty"`
	PhiThreshold    float64 `json:"phi_threshold,omitempty"`
	PhiCheckNS      int64   `json:"phi_check_ns,omitempty"`
}

// NewArtifact packages a report and the options that produced it. The
// violation's stable JSON wire shape (oracle/detail/step/at_ns) is defined
// on invariant.Violation.
func NewArtifact(rep *Report, opts Options, shrinkIterations int) Artifact {
	opts = opts.withDefaults()
	doc := OptionsDoc{
		FaultDetectNS:  opts.GCS.FaultDetectTimeout.Nanoseconds(),
		HeartbeatNS:    opts.GCS.HeartbeatInterval.Nanoseconds(),
		DiscoveryNS:    opts.GCS.DiscoveryTimeout.Nanoseconds(),
		BalanceNS:      opts.BalanceTimeout.Nanoseconds(),
		SettleNS:       opts.SettleBound.Nanoseconds(),
		StabilityNS:    opts.StabilityWindow.Nanoseconds(),
		JitterWindowNS: opts.JitterWindow.Nanoseconds(),
		Representative: opts.RepresentativeDecisions,
	}
	if opts.Mutation != nil {
		doc.Mutation = opts.Mutation.String()
	}
	if opts.GCS.Detector != gcs.DetectorFixed {
		doc.Detector = opts.GCS.Detector.String()
		doc.PhiThreshold = opts.GCS.PhiThreshold
		doc.PhiCheckNS = opts.GCS.PhiCheckInterval.Nanoseconds()
	}
	return Artifact{
		Schedule:         rep.Schedule,
		Options:          doc,
		Violation:        rep.Violation,
		ShrinkIterations: shrinkIterations,
	}
}

// RunOptions reconstructs execution options from the artifact.
func (a Artifact) RunOptions() (Options, error) {
	mut, err := ParseMutation(a.Options.Mutation)
	if err != nil {
		return Options{}, err
	}
	var det gcs.Detector
	if a.Options.Detector != "" {
		if det, err = gcs.ParseDetector(a.Options.Detector); err != nil {
			return Options{}, err
		}
	}
	return Options{
		GCS: gcs.Config{
			FaultDetectTimeout: time.Duration(a.Options.FaultDetectNS),
			HeartbeatInterval:  time.Duration(a.Options.HeartbeatNS),
			DiscoveryTimeout:   time.Duration(a.Options.DiscoveryNS),
			Detector:           det,
			PhiThreshold:       a.Options.PhiThreshold,
			PhiCheckInterval:   time.Duration(a.Options.PhiCheckNS),
		},
		BalanceTimeout:          time.Duration(a.Options.BalanceNS),
		SettleBound:             time.Duration(a.Options.SettleNS),
		StabilityWindow:         time.Duration(a.Options.StabilityNS),
		JitterWindow:            time.Duration(a.Options.JitterWindowNS),
		RepresentativeDecisions: a.Options.Representative,
		Mutation:                mut,
	}.withDefaults(), nil
}

// WriteArtifact writes a as indented JSON.
func WriteArtifact(w io.Writer, a Artifact) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// ReadArtifact parses an artifact written by WriteArtifact.
func ReadArtifact(r io.Reader) (Artifact, error) {
	var a Artifact
	if err := json.NewDecoder(r).Decode(&a); err != nil {
		return Artifact{}, fmt.Errorf("check: parse artifact: %w", err)
	}
	return a, nil
}

// WriteTrace writes a report's structured event stream as NDJSON (one
// obs.Event per line), the same wire shape wacksim and wacktrace use.
func WriteTrace(w io.Writer, rep *Report) error {
	return obs.WriteNDJSON(w, rep.Trace)
}

// Replay re-executes an artifact's schedule under its recorded options and
// reports whether the outcome — violation or clean pass — matches the
// artifact exactly (same oracle, same detail, same step, same virtual
// time). The simulation is deterministic, so a faithful artifact always
// matches.
func Replay(a Artifact) (*Report, bool, error) {
	opts, err := a.RunOptions()
	if err != nil {
		return nil, false, err
	}
	rep, err := Run(a.Schedule, opts)
	if err != nil {
		return nil, false, err
	}
	return rep, a.Violation.Equal(rep.Violation), nil
}

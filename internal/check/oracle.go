package check

import "wackamole/internal/invariant"

// The five oracle state machines were extracted into internal/invariant so
// they run always-on under any workload (wackload sweeps, wacksim
// experiments, a live daemon), not only inside the checker. The checker
// arms an invariant.Monitor in Strict mode, which keeps full unbounded
// histories and reproduces the original findings byte-for-byte. The
// aliases below keep the checker's public API — artifacts embed
// Violation, callers switch on the Oracle* names — source-compatible.

// Violation is the first oracle failure observed during a run.
type Violation = invariant.Violation

// Oracle names, stable across versions because artifacts and shrinking key
// on them.
const (
	OracleExactlyOnce   = invariant.OracleExactlyOnce
	OracleConvergence   = invariant.OracleConvergence
	OracleViewOrder     = invariant.OracleViewOrder
	OracleDeliveryOrder = invariant.OracleDeliveryOrder
	OracleForeignClaim  = invariant.OracleForeignClaim
	OraclePingPong      = invariant.OraclePingPong
	OracleFalseSuspect  = invariant.OracleFalseSuspect
)

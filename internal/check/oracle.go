package check

import (
	"fmt"
	"time"

	"wackamole/internal/core"
	"wackamole/internal/gcs"
)

// Oracle names, stable across versions because artifacts and shrinking key
// on them.
const (
	OracleExactlyOnce   = "exactly-once"
	OracleConvergence   = "convergence"
	OracleViewOrder     = "view-order"
	OracleDeliveryOrder = "delivery-order"
	OracleForeignClaim  = "foreign-claim"
)

// Violation is the first oracle failure observed during a run.
type Violation struct {
	// Oracle is one of the Oracle* constants.
	Oracle string
	// Detail is a human-readable description of the contradiction.
	Detail string
	// Step is how many schedule events had executed when the violation was
	// detected (0 = during initial formation).
	Step int
	// At is the virtual time offset from the start of the run.
	At time.Duration
}

func (v *Violation) String() string {
	if v == nil {
		return "<none>"
	}
	return fmt.Sprintf("%s at step %d (+%v): %s", v.Oracle, v.Step, v.At, v.Detail)
}

type delivKey struct {
	ring gcs.RingID
	seq  uint64
}

// oracles accumulates the typed hook streams from every node and validates
// them online. All methods run on the single simulation goroutine.
type oracles struct {
	servers int
	now     func() time.Duration // virtual offset from run start
	step    int                  // schedule events executed so far

	// Engine view installations, per server, in installation order.
	installs [][]core.View
	// viewMembers pins the member list first seen for each view ID.
	viewMembers map[string][]core.MemberID
	// currentView tracks each engine's latest installed view.
	currentView []core.View

	// Agreed delivery: origin first seen for each (ring, seq), and each
	// daemon's last delivered seq per ring (prefix/monotonicity check).
	origins  map[delivKey]gcs.DaemonID
	lastSeq  []map[gcs.RingID]uint64
	delivers uint64

	violation *Violation
}

func newOracles(servers int, now func() time.Duration) *oracles {
	o := &oracles{
		servers:     servers,
		now:         now,
		installs:    make([][]core.View, servers),
		viewMembers: map[string][]core.MemberID{},
		currentView: make([]core.View, servers),
		origins:     map[delivKey]gcs.DaemonID{},
		lastSeq:     make([]map[gcs.RingID]uint64, servers),
	}
	for i := range o.lastSeq {
		o.lastSeq[i] = map[gcs.RingID]uint64{}
	}
	return o
}

// fail records the first violation; later ones are ignored so the reported
// failure is always the earliest observable contradiction.
func (o *oracles) fail(oracle, format string, args ...any) {
	if o.violation != nil {
		return
	}
	o.violation = &Violation{
		Oracle: oracle,
		Detail: fmt.Sprintf(format, args...),
		Step:   o.step,
		At:     o.now(),
	}
}

// onViewInstall is the engine view hook for server i: oracle (c), the
// identity half — the same view ID must always carry the same member list.
func (o *oracles) onViewInstall(i int, v core.View) {
	if prev, ok := o.viewMembers[v.ID]; ok {
		if !sameMembers(prev, v.Members) {
			o.fail(OracleViewOrder,
				"view %s installed with diverging member lists: %v vs %v (server %d)",
				v.ID, prev, v.Members, i)
		}
	} else {
		o.viewMembers[v.ID] = append([]core.MemberID(nil), v.Members...)
	}
	o.installs[i] = append(o.installs[i], v)
	o.currentView[i] = v
}

// onDelivery is the daemon delivery hook for server i: oracle (d). Each
// daemon must deliver a ring's sequence numbers in increasing order, and no
// two daemons may attribute the same (ring, seq) to different origins —
// together, prefix consistency of the Agreed total order.
func (o *oracles) onDelivery(i int, ring gcs.RingID, seq uint64, origin gcs.DaemonID) {
	o.delivers++
	if last, ok := o.lastSeq[i][ring]; ok && seq <= last {
		o.fail(OracleDeliveryOrder,
			"server %d delivered ring %s seq %d after seq %d", i, ring, seq, last)
	}
	o.lastSeq[i][ring] = seq
	key := delivKey{ring: ring, seq: seq}
	if prev, ok := o.origins[key]; ok {
		if prev != origin {
			o.fail(OracleDeliveryOrder,
				"ring %s seq %d delivered from origin %s at server %d but %s elsewhere",
				ring, seq, origin, i, prev)
		}
		return
	}
	o.origins[key] = origin
}

// onOwnership is the engine ownership hook for server i: the online half of
// oracle (e) — an engine may only acquire while it is a member of its
// installed view.
func (o *oracles) onOwnership(i int, group string, owned bool, viewID string, self core.MemberID) {
	if !owned {
		return
	}
	v := o.currentView[i]
	if v.ID == "" || v.ID != viewID {
		o.fail(OracleForeignClaim,
			"server %d acquired %s under view %q but last installed view is %q",
			i, group, viewID, v.ID)
		return
	}
	for _, m := range v.Members {
		if m == self {
			return
		}
	}
	o.fail(OracleForeignClaim,
		"server %d acquired %s outside its view %s (members %v)", i, group, v.ID, v.Members)
}

// checkOrder validates the cross-member half of oracle (c): any two engines
// must have installed their common views in the same relative order. Runs at
// step boundaries; O(servers² × installs).
func (o *oracles) checkOrder() {
	if o.violation != nil {
		return
	}
	for a := 0; a < o.servers; a++ {
		pos := make(map[string]int, len(o.installs[a]))
		for idx, v := range o.installs[a] {
			pos[v.ID] = idx
		}
		for b := a + 1; b < o.servers; b++ {
			lastPos := -1
			var lastID string
			for _, v := range o.installs[b] {
				p, ok := pos[v.ID]
				if !ok {
					continue
				}
				if p <= lastPos {
					o.fail(OracleViewOrder,
						"servers %d and %d installed views %s and %s in opposite orders",
						a, b, lastID, v.ID)
					return
				}
				lastPos, lastID = p, v.ID
			}
		}
	}
}

// installCount totals engine view installations across the cluster; the
// convergence oracle uses it to assert membership has stopped changing.
func (o *oracles) installCount() int {
	n := 0
	for _, ins := range o.installs {
		n += len(ins)
	}
	return n
}

func sameMembers(a, b []core.MemberID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

package health

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"

	"wackamole/internal/env"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
)

func sampleFrame() Frame {
	return Frame{
		Node:       "10.0.0.10:4803",
		Seq:        42,
		HLC:        obs.HLC{Wall: 1700000000123456789, Logical: 7},
		SkewNS:     -250000,
		View:       "10.0.0.10:4803/3",
		State:      "run",
		Mature:     true,
		Generation: 3,
		Members:    []string{"10.0.0.10:4803", "10.0.0.11:4803", "10.0.0.12:4803"},
		Owned:      []string{"web1", "web3"},
		Peers: []PeerStatus{
			{Peer: "10.0.0.11:4803", PhiMilli: 312, LastHeardNS: 150_000_000, Samples: 64},
			{Peer: "10.0.0.12:4803", PhiMilli: 12400, LastHeardNS: 900_000_000, Samples: 64, Suspected: true},
		},
		Installs:        5,
		Reconfigs:       4,
		Delivered:       991,
		FramesPublished: 120,
		FramesDropped:   1,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := sampleFrame()
	enc := AppendFrame(nil, &f)
	if !IsFrame(enc) {
		t.Fatal("encoded frame fails its own magic check")
	}
	got, err := DecodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, f)
	}

	// Empty lists survive as nil.
	minimal := Frame{Node: "n", Seq: 1}
	got, err = DecodeFrame(AppendFrame(nil, &minimal))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(minimal, got) {
		t.Fatalf("minimal round trip mismatch: %+v", got)
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	f := sampleFrame()
	enc := AppendFrame(nil, &f)
	cases := map[string][]byte{
		"empty":         nil,
		"short":         enc[:1],
		"wrong magic":   append([]byte{'W', 'G'}, enc[2:]...),
		"wrong version": append([]byte{'W', 'H', 99}, enc[3:]...),
		"truncated":     enc[:len(enc)-3],
		"trailing":      append(bytes.Clone(enc), 0xff),
	}
	for name, data := range cases {
		if _, err := DecodeFrame(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// A hostile count field must fail before allocating the list.
	hostile := []byte{'W', 'H', FrameVersion, 0, 1, 'n'}
	hostile = append(hostile, make([]byte, 8+8+4+8)...) // seq, hlc, skew
	hostile = append(hostile, 0, 1, 'v', 0, 1, 's', 1)  // view, state, mature
	hostile = append(hostile, make([]byte, 8)...)       // generation
	hostile = append(hostile, 0xff, 0xff)               // members count 65535
	if _, err := DecodeFrame(hostile); err == nil {
		t.Fatal("hostile list count accepted")
	}
}

func TestPeerStatusPhi(t *testing.T) {
	if got := (PeerStatus{PhiMilli: 1500}).Phi(); got != 1.5 {
		t.Fatalf("Phi() = %v", got)
	}
	if PhiMilli(-1) != 0 || PhiMilli(2.5) != 2500 || PhiMilli(1e9) != maxPhi*1000 {
		t.Fatal("PhiMilli clamping wrong")
	}
}

func TestFrameJSON(t *testing.T) {
	f := sampleFrame()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back Frame
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, back) {
		t.Fatalf("JSON round trip mismatch: %+v", back)
	}
}

// TestAppendFrameZeroAlloc pins the publisher's encode path: with a warm
// reused buffer, encoding allocates nothing.
func TestAppendFrameZeroAlloc(t *testing.T) {
	f := sampleFrame()
	buf := AppendFrame(nil, &f)
	if avg := testing.AllocsPerRun(1000, func() {
		buf = AppendFrame(buf[:0], &f)
	}); avg > 0 {
		t.Fatalf("AppendFrame allocates %.2f/op with a warm buffer", avg)
	}
}

func BenchmarkTelemetryFrame(b *testing.B) {
	f := sampleFrame()
	buf := AppendFrame(nil, &f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendFrame(buf[:0], &f)
	}
	_ = buf
}

// fakeClock drives a Publisher deterministically.
type fakeClock struct {
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at      time.Time
	f       func()
	stopped bool
}

func (c *fakeClock) Now() time.Time { return c.now }
func (c *fakeClock) AfterFunc(d time.Duration, f func()) env.Timer {
	t := &fakeTimer{at: c.now.Add(d), f: f}
	c.timers = append(c.timers, t)
	return t
}
func (t *fakeTimer) Stop() bool {
	was := t.stopped
	t.stopped = true
	return !was
}

// advance runs all timers due at or before the new instant.
func (c *fakeClock) advance(d time.Duration) {
	c.now = c.now.Add(d)
	for {
		fired := false
		for _, t := range c.timers {
			if !t.stopped && !t.at.After(c.now) {
				t.stopped = true
				t.f()
				fired = true
			}
		}
		if !fired {
			return
		}
	}
}

func TestPublisher(t *testing.T) {
	clock := &fakeClock{now: t0}
	reg := metrics.New()
	var sent []Frame
	fail := false
	p := NewPublisher(PublisherOptions{
		Node:        "a",
		Interval:    100 * time.Millisecond,
		Subscribers: []string{"sub1", "sub2"},
		Clock:       clock,
		Send: func(to string, payload []byte) error {
			if fail {
				return errSendFailed
			}
			f, err := DecodeFrame(payload)
			if err != nil {
				t.Fatalf("publisher sent undecodable frame: %v", err)
			}
			sent = append(sent, f)
			return nil
		},
		Frame:   func(now time.Time) Frame { return Frame{View: "v1"} },
		Metrics: reg,
	})
	p.Start()
	clock.advance(100 * time.Millisecond)
	clock.advance(100 * time.Millisecond)
	if len(sent) != 4 { // 2 ticks x 2 subscribers
		t.Fatalf("sent %d frames, want 4", len(sent))
	}
	if sent[0].Node != "a" || sent[0].Seq != 1 || sent[2].Seq != 2 || sent[0].View != "v1" {
		t.Fatalf("frame stamping wrong: %+v", sent[0])
	}
	if p.Published() != 4 || p.Dropped() != 0 {
		t.Fatalf("published=%d dropped=%d", p.Published(), p.Dropped())
	}

	fail = true
	clock.advance(100 * time.Millisecond)
	if p.Dropped() != 2 {
		t.Fatalf("dropped=%d, want 2", p.Dropped())
	}

	p.Stop()
	fail = false
	clock.advance(time.Second)
	if len(sent) != 4 {
		t.Fatal("publisher kept sending after Stop")
	}

	// Disabled configurations yield a nil, inert publisher.
	var nilPub *Publisher
	nilPub.Start()
	nilPub.Stop()
	if nilPub.Published() != 0 || nilPub.Dropped() != 0 {
		t.Fatal("nil publisher not inert")
	}
	if NewPublisher(PublisherOptions{Clock: clock}) != nil {
		t.Fatal("publisher without subscribers should be nil")
	}
}

var errSendFailed = errTest("send failed")

type errTest string

func (e errTest) Error() string { return string(e) }

package health

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecodeFrame feeds arbitrary bytes through the telemetry decoder. Any
// input the decoder accepts must re-encode and re-decode to the identical
// frame (a fixed point), and the decoder must never panic or allocate
// unboundedly on hostile input — the same contract internal/gcs enforces for
// its wire messages.
func FuzzDecodeFrame(f *testing.F) {
	valid := sampleFrame()
	f.Add(AppendFrame(nil, &valid))
	minimal := Frame{Node: "n"}
	f.Add(AppendFrame(nil, &minimal))
	f.Add([]byte{})
	f.Add([]byte{'W', 'H', FrameVersion})
	f.Add([]byte{'W', 'H', 99, 0, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		frame, err := DecodeFrame(data)
		if err != nil {
			return
		}
		enc := AppendFrame(nil, &frame)
		back, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !reflect.DeepEqual(frame, back) {
			t.Fatalf("decode/encode not a fixed point:\n got %+v\nwant %+v", back, frame)
		}
	})
}

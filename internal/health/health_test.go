package health

import (
	"testing"
	"time"

	"wackamole/internal/metrics"
	"wackamole/internal/obs"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// feed installs one peer and feeds n perfectly regular arrivals at the given
// interval, returning the monitor and the instant of the last arrival.
func feed(m *Monitor, peer string, interval time.Duration, n int) time.Time {
	m.SetPeers(1, []string{peer}, t0)
	now := t0
	for i := 0; i < n; i++ {
		now = now.Add(interval)
		m.Observe(peer, now)
	}
	return now
}

// TestPhiBands pins the estimator's shape on a known distribution: constant
// 100ms arrivals give mean 100ms, effective std 25ms (the mean/4 floor) and
// an acceptable-pause center of 150ms, so phi is analytically computable.
func TestPhiBands(t *testing.T) {
	m := NewMonitor(Options{Node: "a"})
	last := feed(m, "b", 100*time.Millisecond, 20)
	cases := []struct {
		silence  time.Duration
		min, max float64
	}{
		// At the center the tail probability is exactly 0.5: phi = log10(2).
		{150 * time.Millisecond, 0.25, 0.35},
		// One effective std past the center.
		{175 * time.Millisecond, 0.70, 0.90},
		// One whole lost beat (200ms of silence = 2x the mean): suspicious
		// but nowhere near the threshold — a single drop must not suspect.
		{200 * time.Millisecond, 1.2, 2.2},
		{250 * time.Millisecond, 3.5, 5.5},
		// Four means of silence: far past any default threshold.
		{400 * time.Millisecond, 8, maxPhi},
	}
	prev := 0.0
	for _, tc := range cases {
		phi := m.Phi("b", last.Add(tc.silence))
		if phi < tc.min || phi > tc.max {
			t.Errorf("phi after %v silence = %.3f, want [%v, %v]", tc.silence, phi, tc.min, tc.max)
		}
		if phi <= prev {
			t.Errorf("phi after %v silence = %.3f not monotone (prev %.3f)", tc.silence, phi, prev)
		}
		prev = phi
	}
	if phi := m.Phi("b", last.Add(time.Hour)); phi != maxPhi {
		t.Errorf("phi after an hour = %v, want cap %v", phi, maxPhi)
	}
}

func TestPhiNeedsMinSamples(t *testing.T) {
	m := NewMonitor(Options{Node: "a"})
	last := feed(m, "b", 100*time.Millisecond, 2)
	if phi := m.Phi("b", last.Add(time.Hour)); phi != 0 {
		t.Fatalf("phi with %d samples = %v, want 0", 2, phi)
	}
	if phi := m.Phi("nope", t0); phi != 0 {
		t.Fatalf("phi for unknown peer = %v, want 0", phi)
	}
	var nilMon *Monitor
	nilMon.Observe("b", t0)
	nilMon.SetPeers(1, []string{"b"}, t0)
	nilMon.Detected("b", t0)
	if nilMon.Phi("b", t0) != 0 || nilMon.Snapshot(t0) != nil {
		t.Fatal("nil monitor must be inert")
	}
}

// TestJitteredArrivals checks the estimator adapts its deviation: noisy
// inter-arrivals widen the distribution, lowering phi for the same silence.
func TestJitteredArrivals(t *testing.T) {
	reg := NewMonitor(Options{Node: "a"})
	last := feed(reg, "b", 100*time.Millisecond, 30)
	regular := reg.Phi("b", last.Add(300*time.Millisecond))

	jit := NewMonitor(Options{Node: "a"})
	jit.SetPeers(1, []string{"b"}, t0)
	now := t0
	for i := 0; i < 30; i++ {
		d := 100 * time.Millisecond
		if i%2 == 0 {
			d = 40 * time.Millisecond
		} else {
			d = 160 * time.Millisecond
		}
		now = now.Add(d)
		jit.Observe("b", now)
	}
	jittered := jit.Phi("b", now.Add(300*time.Millisecond))
	if jittered >= regular {
		t.Fatalf("jittered phi %.3f should be below regular phi %.3f", jittered, regular)
	}
}

// TestMinMeanFloor: a token-dominated window (1ms arrivals) models the peer
// as a kilohertz emitter and would suspect it during any few-dozen-ms stall;
// flooring the mean at the guaranteed heartbeat cadence keeps sub-cadence
// stalls unsuspicious while real heartbeat-scale silence still crosses.
func TestMinMeanFloor(t *testing.T) {
	fast := NewMonitor(Options{Node: "a"})
	last := feed(fast, "b", time.Millisecond, 30)
	if phi := fast.Phi("b", last.Add(100*time.Millisecond)); phi < DefaultThreshold {
		t.Fatalf("setup: unfloored token-dominated phi = %.2f, want >= threshold", phi)
	}

	floored := NewMonitor(Options{Node: "a"})
	floored.SetMinMean(200 * time.Millisecond)
	last = feed(floored, "b", time.Millisecond, 30)
	if phi := floored.Phi("b", last.Add(100*time.Millisecond)); phi >= 1 {
		t.Fatalf("floored phi after a 100ms token stall = %.2f, want < 1", phi)
	}
	if phi := floored.Phi("b", last.Add(time.Second)); phi < DefaultThreshold {
		t.Fatalf("floored phi after 1s of true silence = %.2f, want >= threshold", phi)
	}

	var nilMon *Monitor
	nilMon.SetMinMean(time.Second) // nil monitor stays inert
}

func TestSuspectAndClearEvents(t *testing.T) {
	tr := obs.New(64, func() time.Time { return t0 })
	m := NewMonitor(Options{Node: "a", Tracer: tr})
	last := feed(m, "b", 100*time.Millisecond, 10)

	// Steady state: no suspicion.
	snap := m.Snapshot(last.Add(50 * time.Millisecond))
	if len(snap) != 1 || snap[0].Suspected {
		t.Fatalf("steady-state snapshot: %+v", snap)
	}

	// Long silence: the periodic evaluation crosses the threshold once.
	snap = m.Snapshot(last.Add(time.Second))
	if !snap[0].Suspected {
		t.Fatalf("no suspicion after 1s silence: %+v", snap)
	}
	m.Snapshot(last.Add(2 * time.Second)) // still suspected, no second event
	if n := countKind(tr, obs.KindPhiSuspect); n != 1 {
		t.Fatalf("phi-suspect events = %d, want 1", n)
	}

	// The peer comes back: suspicion clears with an event.
	m.Observe("b", last.Add(3*time.Second))
	if n := countKind(tr, obs.KindPhiClear); n != 1 {
		t.Fatalf("phi-clear events = %d, want 1", n)
	}
	snap = m.Snapshot(last.Add(3*time.Second + 50*time.Millisecond))
	if snap[0].Suspected {
		t.Fatalf("suspicion not cleared: %+v", snap)
	}
}

func countKind(tr *obs.Tracer, k obs.Kind) int {
	n := 0
	for _, ev := range tr.Snapshot() {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// TestGenerationReset: a new membership install must discard windows,
// last-heard ages and suspicion — the restart/generation reset.
func TestGenerationReset(t *testing.T) {
	m := NewMonitor(Options{Node: "a"})
	last := feed(m, "b", 100*time.Millisecond, 10)
	m.Snapshot(last.Add(time.Second)) // drive into suspicion
	if snap := m.Snapshot(last.Add(time.Second)); !snap[0].Suspected {
		t.Fatal("setup: peer should be suspected")
	}

	reinstall := last.Add(2 * time.Second)
	m.SetPeers(2, []string{"b", "c"}, reinstall)
	if m.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", m.Generation())
	}
	snap := m.Snapshot(reinstall.Add(10 * time.Millisecond))
	if len(snap) != 2 {
		t.Fatalf("snapshot rows = %d, want 2", len(snap))
	}
	for _, ph := range snap {
		if ph.Suspected || ph.Samples != 0 || ph.Phi != 0 {
			t.Fatalf("state carried across generations: %+v", ph)
		}
		if ph.LastHeard > 20*time.Millisecond {
			t.Fatalf("last-heard not reset at install: %+v", ph)
		}
	}

	// A departed peer is dropped entirely.
	m.SetPeers(3, []string{"c"}, reinstall.Add(time.Second))
	if snap := m.Snapshot(reinstall.Add(time.Second)); len(snap) != 1 || snap[0].Peer != "c" {
		t.Fatalf("departed peer still tracked: %+v", snap)
	}
}

// TestDetectedLead: when the fixed detector fires after phi already
// suspected the peer, the lead lands in the histogram; when phi had not
// crossed, the unsuspected counter ticks instead.
func TestDetectedLead(t *testing.T) {
	reg := metrics.New()
	m := NewMonitor(Options{Node: "a", Metrics: reg})
	last := feed(m, "b", 100*time.Millisecond, 10)

	m.Snapshot(last.Add(500 * time.Millisecond)) // phi crosses here
	m.Detected("b", last.Add(800*time.Millisecond))
	lead := reg.Snapshot().MergedHistogram("health_detection_lead_seconds")
	if lead.Count() != 1 {
		t.Fatalf("lead observations = %d, want 1", lead.Count())
	}
	// The recorded lead is 300ms, in the [256ms, 512ms) log2 bucket.
	if q := lead.QuantileDuration(0.5); q < 200*time.Millisecond || q > 600*time.Millisecond {
		t.Fatalf("lead p50 = %v, want ~300ms", q)
	}

	// Fresh monitor, detector fires during normal traffic: phi never crossed.
	m2 := NewMonitor(Options{Node: "a", Metrics: reg})
	last2 := feed(m2, "b", 100*time.Millisecond, 10)
	m2.Detected("b", last2.Add(120*time.Millisecond))
	missed := reg.Snapshot().Family("health_detections_unsuspected_total")
	if missed == nil || len(missed.Series) == 0 || missed.Series[0].Value != 1 {
		t.Fatalf("unsuspected detections not counted: %+v", missed)
	}
}

// TestDetectedCrossesLate: the Detected backstop itself performs the
// crossing (zero lead) when the periodic evaluator never ran during the
// silence, and emits the suspect event before returning — the ordering the
// gcs hook relies on.
func TestDetectedCrossesLate(t *testing.T) {
	tr := obs.New(64, func() time.Time { return t0 })
	m := NewMonitor(Options{Node: "a", Tracer: tr})
	last := feed(m, "b", 100*time.Millisecond, 10)
	m.Detected("b", last.Add(800*time.Millisecond))
	if n := countKind(tr, obs.KindPhiSuspect); n != 1 {
		t.Fatalf("phi-suspect events = %d, want 1", n)
	}
}

func TestInterarrivalHistogram(t *testing.T) {
	m := NewMonitor(Options{Node: "a"})
	last := feed(m, "b", 100*time.Millisecond, 10)
	snap := m.Snapshot(last)
	want := histBucket(uint64(100 * time.Millisecond))
	var total uint64
	for i, c := range snap[0].Hist {
		total += c
		if c > 0 && i != want {
			t.Fatalf("count in bucket %d, want all in %d", i, want)
		}
	}
	// 10 intervals: SetPeers counts as heard-at-install, so the first
	// arrival already closes an interval.
	if total != 10 {
		t.Fatalf("histogram total = %d, want 10", total)
	}
	if lo := HistBucketLow(want); lo > 100*time.Millisecond || lo < 50*time.Millisecond {
		t.Fatalf("bucket %d lower bound %v does not cover 100ms", want, lo)
	}
}

// TestObserveZeroAlloc pins the steady-state hot path: observing a known
// peer with metrics armed and no tracer event must not allocate.
func TestObserveZeroAlloc(t *testing.T) {
	reg := metrics.New()
	tr := obs.New(64, func() time.Time { return t0 })
	m := NewMonitor(Options{Node: "a", Metrics: reg, Tracer: tr})
	now := feed(m, "b", 100*time.Millisecond, 200)
	if avg := testing.AllocsPerRun(1000, func() {
		now = now.Add(100 * time.Millisecond)
		m.Observe("b", now)
	}); avg > 0 {
		t.Fatalf("Observe allocates %.2f/op on the steady-state path", avg)
	}
}

func BenchmarkHealthObserve(b *testing.B) {
	reg := metrics.New()
	m := NewMonitor(Options{Node: "a", Metrics: reg})
	now := feed(m, "b", 100*time.Millisecond, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(100 * time.Millisecond)
		m.Observe("b", now)
	}
}

// Package health is the live cluster health plane: per-peer
// detection-quality instrumentation (inter-arrival histograms, last-heard
// ages, observe-only phi-accrual suspicion) and a streaming telemetry
// publisher that ships each daemon's view of the cluster to subscribers
// such as cmd/wackmon.
//
// The phi-accrual estimator (Hayashibara et al., after the Cassandra GMS
// lineage) is strictly observational in this layer: it runs beside the
// paper's fixed T/H timeouts (§3, Table 1) and records how much earlier an
// adaptive detector would have suspected a dead peer, without changing
// detection behavior. ROADMAP item 4 can later flip it from shadow to
// authoritative.
//
// Like the tracer and the metrics registry, a nil *Monitor and a nil
// *Publisher are valid disabled instruments: every method is a cheap no-op.
package health

import (
	"math"
	"math/bits"
	"sync"
	"time"

	"wackamole/internal/metrics"
	"wackamole/internal/obs"
)

// Defaults for Options fields left zero.
const (
	DefaultWindow     = 64
	DefaultThreshold  = 8.0
	DefaultMinSamples = 3
	DefaultMinStdDev  = 10 * time.Millisecond

	// maxPhi caps the suspicion level once the tail probability underflows
	// float64 (erfc ≈ 0); it also bounds the milli-phi gauge.
	maxPhi = 300.0

	// HistBuckets is the number of log2 inter-arrival buckets per peer:
	// bucket i counts intervals with bits.Len64(ns) == i, spanning 1ns to
	// ~9.2s and beyond (the last bucket absorbs the tail).
	HistBuckets = 40
)

// Options configures a Monitor.
type Options struct {
	// Node names the observer in metrics labels and trace events.
	Node string
	// Window is the number of recent inter-arrival samples kept per peer
	// (default DefaultWindow).
	Window int
	// Threshold is the phi level at which a peer becomes suspected
	// (default DefaultThreshold). Observe-only: nothing is evicted.
	Threshold float64
	// MinStdDev floors the estimator's standard deviation so that perfectly
	// regular arrivals (the simulator's) don't make phi explode on the first
	// microsecond of jitter (default DefaultMinStdDev).
	MinStdDev time.Duration
	// MinSamples is the number of inter-arrival samples required before phi
	// is computed at all (default DefaultMinSamples).
	MinSamples int
	// Metrics receives the health_* families; nil disables metric export.
	Metrics *metrics.Registry
	// Tracer receives phi-suspect/clear events; nil disables tracing.
	Tracer *obs.Tracer
}

// PeerHealth is one peer's row in a Monitor snapshot.
type PeerHealth struct {
	// Peer is the observed daemon's identity ("ip:port").
	Peer string
	// Phi is the current suspicion level (0 when under MinSamples).
	Phi float64
	// LastHeard is the age of the most recent signal from the peer (zero if
	// never heard).
	LastHeard time.Duration
	// Samples is the number of inter-arrival samples in the window.
	Samples int
	// MeanInterval is the window's mean inter-arrival time.
	MeanInterval time.Duration
	// Suspected reports whether phi has crossed the threshold without a
	// subsequent arrival clearing it.
	Suspected bool
	// Hist is the log2 inter-arrival histogram (bucket i counts intervals
	// whose nanosecond value has bit-length i).
	Hist [HistBuckets]uint64
}

type peerState struct {
	samples   []int64 // ring buffer of inter-arrival nanoseconds
	n, idx    int
	lastHeard time.Time
	suspected bool
	// suspectedAt is the instant phi first crossed the threshold for the
	// current suspicion episode; Detected turns it into a lead time.
	suspectedAt time.Time
	hist        [HistBuckets]uint64

	gPhi     *metrics.Gauge
	gInter   *metrics.Gauge
	cSuspect *metrics.Counter
}

// Monitor tracks detection quality for every peer of one observer. All
// methods are safe for concurrent use and safe on a nil receiver.
type Monitor struct {
	mu         sync.Mutex
	node       string
	window     int
	threshold  float64
	minStdNs   float64
	minMeanNs  float64
	minSamples int
	tracer     *obs.Tracer
	reg        *metrics.Registry
	generation uint64
	peers      map[string]*peerState
	order      []string // sorted peer names for deterministic snapshots

	cObserve *metrics.Counter
	hLead    *metrics.Histogram
	cMissed  *metrics.Counter
}

// NewMonitor returns a Monitor with no peers; call SetPeers to populate it.
func NewMonitor(o Options) *Monitor {
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.Threshold <= 0 {
		o.Threshold = DefaultThreshold
	}
	if o.MinStdDev <= 0 {
		o.MinStdDev = DefaultMinStdDev
	}
	if o.MinSamples <= 0 {
		o.MinSamples = DefaultMinSamples
	}
	m := &Monitor{
		node:       o.Node,
		window:     o.Window,
		threshold:  o.Threshold,
		minStdNs:   float64(o.MinStdDev.Nanoseconds()),
		minSamples: o.MinSamples,
		tracer:     o.Tracer,
		reg:        o.Metrics,
		peers:      make(map[string]*peerState),
	}
	m.cObserve = o.Metrics.Counter("health_observations_total",
		"peer signals (heartbeats, tokens) observed by the health monitor",
		metrics.L("node", o.Node))
	m.hLead = o.Metrics.Histogram("health_detection_lead_seconds",
		"time by which shadow phi suspicion preceded the fixed T-timeout detection",
		metrics.L("node", o.Node))
	m.cMissed = o.Metrics.Counter("health_detections_unsuspected_total",
		"T-timeout detections that fired before shadow phi crossed its threshold",
		metrics.L("node", o.Node))
	return m
}

// Node returns the observer identity the monitor was built with.
func (m *Monitor) Node() string {
	if m == nil {
		return ""
	}
	return m.node
}

// Threshold returns the phi suspicion threshold.
func (m *Monitor) Threshold() float64 {
	if m == nil {
		return DefaultThreshold
	}
	return m.threshold
}

// SetMinMean floors the modeled mean inter-arrival time. A daemon observes
// both its guaranteed cadence (heartbeats) and opportunistic extras (token
// passes, often orders of magnitude faster); without a floor a
// token-dominated window models the peer as a kilohertz emitter and any
// token stall a few dozen milliseconds long crosses the threshold. Flooring
// the mean at the heartbeat interval keeps opportunistic signals sharpening
// recency (lastHeard) without tightening the model below the cadence the
// peer is actually obligated to meet. gcs.Daemon.SetHealth wires this to
// its configured heartbeat interval automatically.
func (m *Monitor) SetMinMean(d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.minMeanNs = float64(d.Nanoseconds())
	m.mu.Unlock()
}

// Generation returns the membership generation of the current peer set.
func (m *Monitor) Generation() uint64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.generation
}

// SetPeers resets the monitor for a freshly installed membership: the peer
// set becomes exactly peers (the observer itself excluded by the caller),
// every window is cleared, and every peer counts as heard at now. A restart
// or any reconfiguration therefore never carries stale suspicion across
// generations — the Cassandra GMS "generation" reset.
func (m *Monitor) SetPeers(generation uint64, peers []string, now time.Time) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.generation = generation
	old := m.peers
	m.peers = make(map[string]*peerState, len(peers))
	m.order = m.order[:0]
	for _, p := range peers {
		ps := old[p]
		if ps == nil {
			ps = &peerState{
				samples: make([]int64, m.window),
				gPhi: m.reg.Gauge("health_phi",
					"observe-only phi-accrual suspicion level, in milli-phi",
					metrics.L("node", m.node), metrics.L("peer", p)),
				gInter: m.reg.Gauge("health_interarrival_ns",
					"most recent inter-arrival gap between signals from the peer",
					metrics.L("node", m.node), metrics.L("peer", p)),
				cSuspect: m.reg.Counter("health_suspicions_total",
					"shadow phi threshold crossings against the peer",
					metrics.L("node", m.node), metrics.L("peer", p)),
			}
		}
		// Reset regardless of whether the peer carries over: the new
		// configuration restarts its signal stream.
		for i := range ps.samples {
			ps.samples[i] = 0
		}
		ps.n, ps.idx = 0, 0
		ps.lastHeard = now
		ps.suspected = false
		ps.suspectedAt = time.Time{}
		ps.gPhi.Set(0)
		m.peers[p] = ps
		m.order = append(m.order, p)
	}
	for p, ps := range old {
		if m.peers[p] == nil {
			ps.gPhi.Set(0)
		}
	}
	sortStrings(m.order)
	m.mu.Unlock()
}

// Observe records a signal (heartbeat, token) from peer at now. It is the
// steady-state hot path and performs no allocation for known peers; unknown
// peers are ignored.
func (m *Monitor) Observe(peer string, now time.Time) {
	if m == nil {
		return
	}
	m.mu.Lock()
	ps := m.peers[peer]
	if ps == nil {
		m.mu.Unlock()
		return
	}
	if !ps.lastHeard.IsZero() {
		if d := now.Sub(ps.lastHeard); d > 0 {
			ns := int64(d)
			ps.samples[ps.idx] = ns
			ps.idx++
			if ps.idx == len(ps.samples) {
				ps.idx = 0
			}
			if ps.n < len(ps.samples) {
				ps.n++
			}
			ps.hist[histBucket(uint64(ns))]++
			ps.gInter.Set(ns)
		}
	}
	ps.lastHeard = now
	cleared := ps.suspected
	if cleared {
		ps.suspected = false
		ps.suspectedAt = time.Time{}
		ps.gPhi.Set(0)
	}
	m.mu.Unlock()
	m.cObserve.Inc()
	if cleared && m.tracer.Enabled() {
		m.tracer.Emit(obs.Event{
			Source: obs.SourceHealth, Kind: obs.KindPhiClear,
			Node: m.node, Detail: peer,
		})
	}
}

// Phi returns the current suspicion level against peer, or 0 for unknown
// peers and under-sampled windows.
func (m *Monitor) Phi(peer string, now time.Time) float64 {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ps := m.peers[peer]
	if ps == nil {
		return 0
	}
	return m.phiLocked(ps, now)
}

// Snapshot evaluates every peer at now and returns one row per peer, sorted
// by peer name. Evaluation updates the health_phi gauges and emits a
// phi-suspect trace event on each upward threshold crossing; this is the
// periodic evaluation point (telemetry ticks, status queries).
func (m *Monitor) Snapshot(now time.Time) []PeerHealth {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	out := make([]PeerHealth, 0, len(m.order))
	var crossed []string
	for _, name := range m.order {
		ps := m.peers[name]
		phi := m.phiLocked(ps, now)
		ps.gPhi.Set(int64(phi * 1000))
		if phi >= m.threshold && !ps.suspected {
			ps.suspected = true
			ps.suspectedAt = now
			ps.cSuspect.Inc()
			crossed = append(crossed, name)
		}
		ph := PeerHealth{
			Peer:      name,
			Phi:       phi,
			Samples:   ps.n,
			Suspected: ps.suspected,
			Hist:      ps.hist,
		}
		if !ps.lastHeard.IsZero() {
			ph.LastHeard = now.Sub(ps.lastHeard)
		}
		if mean := m.meanLocked(ps); mean > 0 {
			ph.MeanInterval = time.Duration(mean)
		}
		out = append(out, ph)
	}
	m.mu.Unlock()
	for _, name := range crossed {
		m.emitSuspect(name)
	}
	return out
}

// Detected tells the monitor that the fixed T-timeout detector declared peer
// dead at now. Call it before emitting the heartbeat-miss event so the
// phi-suspect trace event (if the crossing happens only now) HLC-orders
// before the miss. It records the shadow detector's lead time — how much
// earlier phi suspected the peer — or counts a miss if phi had not crossed.
func (m *Monitor) Detected(peer string, now time.Time) {
	if m == nil {
		return
	}
	m.mu.Lock()
	ps := m.peers[peer]
	if ps == nil {
		m.mu.Unlock()
		return
	}
	if ps.n < m.minSamples && !ps.suspected {
		// Under-sampled window: phi is undefined here, so the shadow
		// detector abstains — a miss counted against a detector that never
		// had data (transient boot-time rings) would be noise.
		m.mu.Unlock()
		return
	}
	crossedNow := false
	if !ps.suspected {
		if phi := m.phiLocked(ps, now); phi >= m.threshold {
			ps.suspected = true
			ps.suspectedAt = now
			ps.cSuspect.Inc()
			ps.gPhi.Set(int64(phi * 1000))
			crossedNow = true
		}
	}
	led := ps.suspected
	var lead time.Duration
	if led {
		lead = now.Sub(ps.suspectedAt)
	}
	m.mu.Unlock()
	if crossedNow {
		m.emitSuspect(peer)
	}
	if led {
		m.hLead.ObserveDuration(lead)
	} else {
		m.cMissed.Inc()
	}
}

func (m *Monitor) emitSuspect(peer string) {
	if m.tracer.Enabled() {
		m.tracer.Emit(obs.Event{
			Source: obs.SourceHealth, Kind: obs.KindPhiSuspect,
			Node: m.node, Detail: peer,
		})
	}
}

// meanLocked returns the mean inter-arrival time in nanoseconds, 0 when the
// window is empty.
func (m *Monitor) meanLocked(ps *peerState) float64 {
	if ps.n == 0 {
		return 0
	}
	var sum float64
	for i := 0; i < ps.n; i++ {
		sum += float64(ps.samples[i])
	}
	return sum / float64(ps.n)
}

// phiLocked computes the phi-accrual suspicion level for ps at now.
//
// phi(t) = -log10(P(interval > t)) under a normal model of the window's
// inter-arrival distribution, with two production guards (the Akka/Cassandra
// refinements of the original paper): the mean is inflated by 50% as an
// acceptable-pause allowance, and the standard deviation is floored at
// max(mean/4, MinStdDev) so regular traffic doesn't hair-trigger. With the
// tuned Table 1 heartbeat of 200ms this crosses the default threshold 8
// around 580ms of silence — ahead of the 800ms T timeout — while a single
// lost heartbeat stays near phi ≈ 1.6.
func (m *Monitor) phiLocked(ps *peerState, now time.Time) float64 {
	if ps.n < m.minSamples || ps.lastHeard.IsZero() {
		return 0
	}
	elapsed := float64(now.Sub(ps.lastHeard))
	if elapsed <= 0 {
		return 0
	}
	var sum, sumSq float64
	for i := 0; i < ps.n; i++ {
		v := float64(ps.samples[i])
		sum += v
		sumSq += v * v
	}
	n := float64(ps.n)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	// Model no faster than the guaranteed cadence (see SetMinMean).
	if mean < m.minMeanNs {
		mean = m.minMeanNs
	}
	std := math.Sqrt(variance)
	if floor := mean / 4; std < floor {
		std = floor
	}
	if std < m.minStdNs {
		std = m.minStdNs
	}
	z := (elapsed - mean*1.5) / (std * math.Sqrt2)
	p := 0.5 * math.Erfc(z)
	if p <= 1e-300 {
		return maxPhi
	}
	phi := -math.Log10(p)
	if phi < 0 {
		return 0
	}
	if phi > maxPhi {
		return maxPhi
	}
	return phi
}

// histBucket maps an inter-arrival gap in nanoseconds to its log2 bucket.
func histBucket(ns uint64) int {
	b := bits.Len64(ns)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// HistBucketLow returns the lower bound of log2 bucket i in nanoseconds.
func HistBucketLow(i int) time.Duration {
	if i <= 0 {
		return 0
	}
	return time.Duration(uint64(1) << (i - 1))
}

// PhiMilli converts a phi value to the clamped milli-phi fixed-point used on
// the wire and in the health_phi gauge.
func PhiMilli(phi float64) uint32 {
	if phi <= 0 {
		return 0
	}
	if phi >= maxPhi {
		return uint32(maxPhi * 1000)
	}
	return uint32(phi * 1000)
}

// sortStrings is an allocation-free insertion sort; peer sets are small.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Streaming telemetry: each daemon periodically encodes a compact,
// HLC-stamped health frame — its suspicion vector, membership view, owned
// VIP set, and key protocol counters — and unicasts it to configured
// subscribers over the same env.PacketConn abstraction the protocol uses,
// so it works identically under netsim and real UDP. Frames are fire-and-
// forget datagrams: losing one only delays the dashboard by an interval.
package health

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"wackamole/internal/env"
	"wackamole/internal/metrics"
	"wackamole/internal/obs"
	"wackamole/internal/wire"
)

// Frame wire format constants. The magic deliberately differs from the gcs
// header ('W','G') so a frame mis-delivered to a daemon port is logged and
// dropped as an unknown packet rather than parsed.
const (
	frameMagic0  = 'W'
	frameMagic1  = 'H'
	FrameVersion = 1

	// MaxFrameList bounds every list in a frame (members, owned groups,
	// peers); a decoder rejects larger counts before allocating.
	MaxFrameList = 1024

	// DefaultTelemetryInterval is the publishing period when the
	// configuration leaves telemetry_interval unset.
	DefaultTelemetryInterval = 250 * time.Millisecond
)

// PeerStatus is one entry of a frame's suspicion vector: the publishing
// node's current shadow-detector view of one peer.
type PeerStatus struct {
	// Peer is the observed daemon's identity.
	Peer string `json:"peer"`
	// PhiMilli is the phi suspicion level in fixed-point milli-phi.
	PhiMilli uint32 `json:"phi_milli"`
	// LastHeardNS is the age of the peer's most recent signal when the
	// frame was built, in nanoseconds.
	LastHeardNS uint64 `json:"last_heard_ns"`
	// Samples is the inter-arrival window population.
	Samples uint32 `json:"samples"`
	// Suspected reports an uncleared phi threshold crossing.
	Suspected bool `json:"suspected"`
}

// Phi returns the suspicion level as a float.
func (p PeerStatus) Phi() float64 { return float64(p.PhiMilli) / 1000 }

// Frame is one telemetry datagram: a self-contained snapshot of how one
// daemon sees the cluster. Fields marshal to JSON for NDJSON frame logs.
type Frame struct {
	// Node is the publishing daemon's identity.
	Node string `json:"node"`
	// Seq increments per published frame; gaps reveal datagram loss.
	Seq uint64 `json:"seq"`
	// HLC is the publisher's hybrid logical clock at build time; it totally
	// orders frames across nodes the same way trace events are ordered.
	HLC obs.HLC `json:"hlc"`
	// SkewNS is the largest wall-clock skew the publisher's HLC has
	// absorbed from any peer, in nanoseconds.
	SkewNS int64 `json:"skew_ns"`
	// View is the installed membership view identity.
	View string `json:"view"`
	// State is the daemon's protocol state (gather/run/...).
	State string `json:"state"`
	// Mature reports §3.4 maturity.
	Mature bool `json:"mature"`
	// Generation is the health monitor's membership generation.
	Generation uint64 `json:"generation"`
	// Members lists the installed view's members.
	Members []string `json:"members,omitempty"`
	// Owned lists the VIP groups this node currently claims.
	Owned []string `json:"owned,omitempty"`
	// Peers is the suspicion vector, sorted by peer name.
	Peers []PeerStatus `json:"peers,omitempty"`
	// Installs, Reconfigs and Delivered are the daemon's cumulative
	// counters; subscribers difference consecutive frames for rates.
	Installs  uint64 `json:"installs"`
	Reconfigs uint64 `json:"reconfigs"`
	Delivered uint64 `json:"delivered"`
	// FramesPublished and FramesDropped count this publisher's own sends,
	// so the dashboard can report telemetry-channel loss.
	FramesPublished uint64 `json:"frames_published"`
	FramesDropped   uint64 `json:"frames_dropped"`
}

// AppendFrame encodes f to the telemetry wire format, appending to dst and
// returning the extended slice. With a reused dst of sufficient capacity it
// performs no allocation. Strings longer than 64KB and lists longer than
// MaxFrameList are truncated (never produced by real publishers).
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = append(dst, frameMagic0, frameMagic1, FrameVersion)
	dst = appendString(dst, f.Node)
	dst = binary.BigEndian.AppendUint64(dst, f.Seq)
	dst = binary.BigEndian.AppendUint64(dst, uint64(f.HLC.Wall))
	dst = binary.BigEndian.AppendUint32(dst, f.HLC.Logical)
	dst = binary.BigEndian.AppendUint64(dst, uint64(f.SkewNS))
	dst = appendString(dst, f.View)
	dst = appendString(dst, f.State)
	dst = appendBool(dst, f.Mature)
	dst = binary.BigEndian.AppendUint64(dst, f.Generation)
	dst = appendStringList(dst, f.Members)
	dst = appendStringList(dst, f.Owned)
	peers := f.Peers
	if len(peers) > MaxFrameList {
		peers = peers[:MaxFrameList]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(peers)))
	for i := range peers {
		p := &peers[i]
		dst = appendString(dst, p.Peer)
		dst = binary.BigEndian.AppendUint32(dst, p.PhiMilli)
		dst = binary.BigEndian.AppendUint64(dst, p.LastHeardNS)
		dst = binary.BigEndian.AppendUint32(dst, p.Samples)
		dst = appendBool(dst, p.Suspected)
	}
	dst = binary.BigEndian.AppendUint64(dst, f.Installs)
	dst = binary.BigEndian.AppendUint64(dst, f.Reconfigs)
	dst = binary.BigEndian.AppendUint64(dst, f.Delivered)
	dst = binary.BigEndian.AppendUint64(dst, f.FramesPublished)
	dst = binary.BigEndian.AppendUint64(dst, f.FramesDropped)
	return dst
}

func appendString(dst []byte, s string) []byte {
	if len(s) > 0xffff {
		s = s[:0xffff]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendStringList(dst []byte, ss []string) []byte {
	if len(ss) > MaxFrameList {
		ss = ss[:MaxFrameList]
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(ss)))
	for _, s := range ss {
		dst = appendString(dst, s)
	}
	return dst
}

// IsFrame reports whether data starts with the telemetry frame magic.
func IsFrame(data []byte) bool {
	return len(data) >= 2 && data[0] == frameMagic0 && data[1] == frameMagic1
}

var errNotFrame = errors.New("health: not a telemetry frame")

// DecodeFrame parses one telemetry datagram. All strings are copied out of
// data; hostile length fields fail before any large allocation.
func DecodeFrame(data []byte) (Frame, error) {
	var f Frame
	if len(data) < 3 || !IsFrame(data) {
		return f, errNotFrame
	}
	if data[2] != FrameVersion {
		return f, fmt.Errorf("health: unsupported frame version %d", data[2])
	}
	r := wire.NewReader(data[3:])
	f.Node = r.String()
	f.Seq = r.U64()
	f.HLC.Wall = int64(r.U64())
	f.HLC.Logical = r.U32()
	f.SkewNS = int64(r.U64())
	f.View = r.String()
	f.State = r.String()
	f.Mature = r.Bool()
	f.Generation = r.U64()
	var err error
	if f.Members, err = readStringList(r); err != nil {
		return f, err
	}
	if f.Owned, err = readStringList(r); err != nil {
		return f, err
	}
	n := int(r.U16())
	if n > MaxFrameList {
		return f, fmt.Errorf("health: frame peer count %d exceeds limit", n)
	}
	if n > 0 && r.Err() == nil {
		f.Peers = make([]PeerStatus, 0, n)
		for i := 0; i < n; i++ {
			var p PeerStatus
			p.Peer = r.String()
			p.PhiMilli = r.U32()
			p.LastHeardNS = r.U64()
			p.Samples = r.U32()
			p.Suspected = r.Bool()
			if r.Err() != nil {
				break
			}
			f.Peers = append(f.Peers, p)
		}
	}
	f.Installs = r.U64()
	f.Reconfigs = r.U64()
	f.Delivered = r.U64()
	f.FramesPublished = r.U64()
	f.FramesDropped = r.U64()
	if err := r.Done(); err != nil {
		return Frame{}, err
	}
	return f, nil
}

func readStringList(r *wire.Reader) ([]string, error) {
	n := int(r.U16())
	if n > MaxFrameList {
		return nil, fmt.Errorf("health: frame list count %d exceeds limit", n)
	}
	if n == 0 || r.Err() != nil {
		return nil, nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		s := r.String()
		if r.Err() != nil {
			break
		}
		out = append(out, s)
	}
	return out, nil
}

// PublisherOptions configures a Publisher.
type PublisherOptions struct {
	// Node is the publishing daemon's identity, stamped on every frame.
	Node string
	// Interval is the publishing period (default
	// DefaultTelemetryInterval).
	Interval time.Duration
	// Subscribers are the destination addresses, one datagram each per
	// interval.
	Subscribers []string
	// Clock schedules the publishing timer; its callbacks run on the
	// node's serialized loop, so Frame needs no locking of its own.
	Clock env.Clock
	// Send transmits one encoded frame (typically env.PacketConn.SendTo).
	Send func(to string, payload []byte) error
	// Frame builds the next frame to publish. The publisher fills in Node,
	// Seq, FramesPublished and FramesDropped.
	Frame func(now time.Time) Frame
	// Metrics receives health_frames_published_total /
	// health_frames_dropped_total; nil disables export.
	Metrics *metrics.Registry
}

// Publisher periodically emits telemetry frames. A nil Publisher is a valid
// disabled instrument. All mutation happens on the env clock's serialized
// callback loop; the counters are atomic so status queries from other
// goroutines can read them.
type Publisher struct {
	o       PublisherOptions
	buf     []byte
	seq     uint64
	timer   env.Timer
	stopped bool

	pubN, dropN atomic.Uint64
	cPub, cDrop *metrics.Counter
}

// NewPublisher returns a publisher, or nil when opts names no subscribers —
// callers can wire the result unconditionally.
func NewPublisher(opts PublisherOptions) *Publisher {
	if len(opts.Subscribers) == 0 || opts.Clock == nil || opts.Send == nil || opts.Frame == nil {
		return nil
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultTelemetryInterval
	}
	p := &Publisher{o: opts}
	p.cPub = opts.Metrics.Counter("health_frames_published_total",
		"telemetry frames sent to subscribers",
		metrics.L("node", opts.Node))
	p.cDrop = opts.Metrics.Counter("health_frames_dropped_total",
		"telemetry frame sends that failed",
		metrics.L("node", opts.Node))
	return p
}

// Start arms the publishing timer. Call from the node's loop.
func (p *Publisher) Start() {
	if p == nil || p.timer != nil || p.stopped {
		return
	}
	p.timer = p.o.Clock.AfterFunc(p.o.Interval, p.tick)
}

// Stop cancels publishing; no frames are sent after it returns (on the
// loop).
func (p *Publisher) Stop() {
	if p == nil {
		return
	}
	p.stopped = true
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
}

// Published and Dropped report cumulative send outcomes; safe from any
// goroutine.
func (p *Publisher) Published() uint64 {
	if p == nil {
		return 0
	}
	return p.pubN.Load()
}

// Dropped reports cumulative failed sends; safe from any goroutine.
func (p *Publisher) Dropped() uint64 {
	if p == nil {
		return 0
	}
	return p.dropN.Load()
}

func (p *Publisher) tick() {
	if p.stopped {
		return
	}
	now := p.o.Clock.Now()
	f := p.o.Frame(now)
	f.Node = p.o.Node
	p.seq++
	f.Seq = p.seq
	f.FramesPublished = p.pubN.Load()
	f.FramesDropped = p.dropN.Load()
	p.buf = AppendFrame(p.buf[:0], &f)
	for _, sub := range p.o.Subscribers {
		if err := p.o.Send(sub, p.buf); err != nil {
			p.dropN.Add(1)
			p.cDrop.Inc()
		} else {
			p.pubN.Add(1)
			p.cPub.Inc()
		}
	}
	p.timer = p.o.Clock.AfterFunc(p.o.Interval, p.tick)
}

// Package placement computes the VIP-group → member assignment consumed by
// the core engine's balance and post-gather reallocation paths. It exists
// so the assignment *policy* can vary without touching the replicated state
// machine: every policy is a deterministic pure function of the replicated
// inputs (the canonical group list, the eligible member list in view order,
// and the current allocation table), so by Lemma 1 of the paper all members
// of a view compute the identical plan independently.
//
// Two policies ship:
//
//   - least-loaded: the paper's §3.4 balance rule, byte-for-byte the
//     behaviour the engine had before this package existed (preference
//     grants, capacity shedding, least-loaded hole filling). Every
//     membership change may reshuffle the whole table.
//   - minimal: a rendezvous-hashing (HRW) minimal-repair policy. Owners
//     keep their groups; only over-capacity surplus and uncovered groups
//     move, steered by each group's highest-random-weight affinity. A
//     single join or leave from a balanced state relocates at most
//     ⌈V/N⌉ groups (see MoveBound), making planned churn — scale-out,
//     drain, rolling restart — cheap instead of crash-equivalent.
//
// Policies carry reusable scratch space and are therefore NOT safe for
// concurrent use; the engine calls them from its single callback loop.
package placement

import "fmt"

// Policy names accepted by New and the `placement` config directive.
const (
	NameLeastLoaded = "least-loaded"
	NameMinimal     = "minimal"
)

// Decision assigns one group to one owner. An empty Owner leaves the group
// uncovered (only possible when no member is eligible).
type Decision struct {
	Group string
	Owner string
}

// Input is the replicated state a policy plans over. All fields reflect
// information every member of the view holds identically once GATHER
// completes, which is what makes independent planning safe.
type Input struct {
	// Groups is the configured group universe in canonical (sorted) order.
	Groups []string
	// Members are the members eligible to own addresses (those whose
	// STATE_MSG declared maturity), in view order. New joiners inside the
	// paper's maturity window are absent from this list, so no policy can
	// hand load to a server that is not ready for it.
	Members []string
	// Owner returns the current table owner of a group ("" when
	// uncovered). The returned member need not be eligible — policies
	// decide per mode whether such owners are displaced.
	Owner func(group string) string
	// Prefers reports whether member asked to own group (§3.4 startup
	// preferences). Only the least-loaded policy consults it.
	Prefers func(member, group string) bool
}

// Policy plans VIP-group assignments. Implementations are deterministic in
// their Input and keep internal scratch, so a Policy instance must only be
// used from one goroutine.
type Policy interface {
	// Name returns the config-directive name of the policy.
	Name() string
	// Balance computes the full target allocation for the re-balancing
	// procedure (§3.4): owners that are no longer eligible are displaced
	// and load is evened out policy-fashion. The plan is appended to
	// dst[:0] and covers every group in in.Groups, in order.
	Balance(in Input, dst []Decision) []Decision
	// Fill completes the table after GATHER (Reallocate_IPs): every
	// current owner keeps its groups verbatim — even an owner absent from
	// in.Members, matching the engine's historical hole-filling — and only
	// uncovered groups are assigned. The plan is appended to dst[:0].
	Fill(in Input, dst []Decision) []Decision
	// MoveBound is the worst-case number of groups a single membership
	// change (one join or one leave) relocates, starting from a balanced
	// allocation of vips groups where members is the smaller of the
	// before/after eligible-member counts. The churn oracle arms itself
	// with this bound.
	MoveBound(vips, members int) int
}

// Names lists the accepted policy names.
func Names() []string { return []string{NameLeastLoaded, NameMinimal} }

// New returns the named policy, defaulting to least-loaded for "".
func New(name string) (Policy, error) {
	switch name {
	case "", NameLeastLoaded:
		return NewLeastLoaded(), nil
	case NameMinimal:
		return NewMinimal(), nil
	default:
		return nil, fmt.Errorf("placement: unknown policy %q (want %s or %s)",
			name, NameLeastLoaded, NameMinimal)
	}
}

// memberIndex returns m's position in members, or -1. Linear scan: member
// lists are small (a cluster is a handful of servers) and this keeps
// planning allocation-free.
func memberIndex(members []string, m string) int {
	for i, x := range members {
		if x == m {
			return i
		}
	}
	return -1
}

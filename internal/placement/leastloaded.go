package placement

// leastloaded.go is the paper's §3.4 balance rule, ported verbatim from
// the engine so that `placement least-loaded` (the default) reproduces the
// pre-placement-plane behaviour exactly — Table 1 and the figure-5 numbers
// do not move. Any divergence here is a bug.

// LeastLoaded is the historical policy: preference grants, capacity-based
// shedding onto the least-loaded member, least-loaded hole filling. It is
// oblivious to where groups used to live beyond the current table, so a
// membership change may reshuffle the entire allocation (MoveBound = V).
type LeastLoaded struct{}

// NewLeastLoaded returns the default policy.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Policy.
func (*LeastLoaded) Name() string { return NameLeastLoaded }

// MoveBound implements Policy: the least-loaded rule offers no relocation
// guarantee beyond "every group moves at most once per decision".
func (*LeastLoaded) MoveBound(vips, members int) int { return vips }

// Balance implements Policy. The body mirrors the engine's historical
// balancedAllocation step for step (capacity map keyed by position in the
// eligible list, preference pass with protected grants, two shedding
// passes); only the container types changed.
func (*LeastLoaded) Balance(in Input, dst []Decision) []Decision {
	dst = dst[:0]
	if len(in.Members) == 0 {
		return dst
	}
	// Capacity: n groups over k members; the first n%k members (in the
	// uniquely ordered membership list) may hold one extra.
	n, k := len(in.Groups), len(in.Members)
	capacity := map[string]int{}
	for i, m := range in.Members {
		capacity[m] = n / k
		if i < n%k {
			capacity[m]++
		}
	}

	alloc := map[string]string{}
	count := map[string]int{}
	for _, g := range in.Groups {
		owner := in.Owner(g)
		if memberIndex(in.Members, owner) < 0 {
			owner = "" // departed or immature owner: treat as uncovered
		}
		alloc[g] = owner
		if owner != "" {
			count[owner]++
		}
	}

	move := func(g string, to string) {
		if from := alloc[g]; from != "" {
			count[from]--
		}
		alloc[g] = to
		count[to]++
	}

	// Preference pass: grant each group to a member that asked for it. A
	// member may be granted up to its capacity in preferred groups, even if
	// that temporarily overfills it — the shedding pass below moves its
	// non-preferred groups away. Granted groups are protected from the
	// first shedding pass.
	grantedPref := map[string]int{}
	protected := map[string]bool{}
	for _, g := range in.Groups {
		owner := alloc[g]
		if owner != "" && in.Prefers(owner, g) && grantedPref[owner] < capacity[owner] {
			grantedPref[owner]++
			protected[g] = true
			continue
		}
		for _, m := range in.Members {
			if m != owner && in.Prefers(m, g) && grantedPref[m] < capacity[m] {
				move(g, m)
				grantedPref[m]++
				protected[g] = true
				break
			}
		}
	}

	// Shedding passes: cover holes and drain over-capacity members onto the
	// least-loaded ones — first by moving unprotected groups, then, if an
	// owner is somehow still over capacity, protected ones too.
	shed := func(sparePreferred bool) {
		for _, g := range in.Groups {
			owner := alloc[g]
			if owner != "" && count[owner] <= capacity[owner] {
				continue
			}
			if owner != "" && sparePreferred && protected[g] {
				continue
			}
			best := ""
			for _, m := range in.Members {
				if m == owner || count[m] >= capacity[m] {
					continue
				}
				if best == "" || count[m] < count[best] {
					best = m
				}
			}
			if best != "" {
				move(g, best)
			}
		}
	}
	shed(true)
	shed(false)

	for _, g := range in.Groups {
		dst = append(dst, Decision{Group: g, Owner: alloc[g]})
	}
	return dst
}

// Fill implements Policy, mirroring the engine's historical
// computeReallocation: current owners keep their groups (even owners
// absent from the eligible list), and each hole goes to the least-loaded
// eligible member, first-in-view-order on ties.
func (*LeastLoaded) Fill(in Input, dst []Decision) []Decision {
	dst = dst[:0]
	counts := map[string]int{}
	for _, g := range in.Groups {
		counts[in.Owner(g)]++
	}
	for _, g := range in.Groups {
		owner := in.Owner(g)
		if owner == "" && len(in.Members) > 0 {
			pick := in.Members[0]
			for _, m := range in.Members[1:] {
				if counts[m] < counts[pick] {
					pick = m
				}
			}
			owner = pick
			counts[pick]++
		}
		dst = append(dst, Decision{Group: g, Owner: owner})
	}
	return dst
}

package placement

import (
	"fmt"
	"math/rand"
	"testing"
)

// harness state: a group universe, a member list in "view order", and a
// mutable table the Input closures read.
type world struct {
	groups  []string
	members []string
	table   map[string]string
}

func newWorld(v, k int) *world {
	w := &world{table: map[string]string{}}
	for i := 0; i < v; i++ {
		w.groups = append(w.groups, fmt.Sprintf("vip%02d", i))
	}
	for i := 0; i < k; i++ {
		w.members = append(w.members, fmt.Sprintf("srv-%c", 'a'+i))
	}
	return w
}

func (w *world) input() Input {
	return Input{
		Groups:  w.groups,
		Members: w.members,
		Owner:   func(g string) string { return w.table[g] },
		Prefers: func(string, string) bool { return false },
	}
}

// apply installs a plan as the current table and returns how many groups
// changed owner (counting only groups that had a previous owner — fresh
// assignments of uncovered groups are takeovers, not moves... except the
// leave tests count them deliberately via movesFrom).
func (w *world) apply(plan []Decision) int {
	moves := 0
	for _, d := range plan {
		if prev := w.table[d.Group]; prev != "" && prev != d.Owner {
			moves++
		}
		w.table[d.Group] = d.Owner
	}
	return moves
}

func (w *world) loads() map[string]int {
	out := map[string]int{}
	for _, o := range w.table {
		if o != "" {
			out[o]++
		}
	}
	return out
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// settle runs Balance until stable, verifying it stabilizes immediately
// after one application.
func settle(t *testing.T, p Policy, w *world) {
	t.Helper()
	w.apply(p.Balance(w.input(), nil))
	if again := w.apply(p.Balance(w.input(), nil)); again != 0 {
		t.Fatalf("Balance is not idempotent: %d further moves on second run", again)
	}
}

// TestMinimalBalanceBounds: every member's load lands in [⌊V/K⌋, ⌈V/K⌉]
// and every group is covered, from arbitrary seeded starting tables.
func TestMinimalBalanceBounds(t *testing.T) {
	for _, v := range []int{8, 10, 16, 32} {
		for k := 2; k <= 8; k++ {
			for seed := int64(0); seed < 10; seed++ {
				w := newWorld(v, k)
				rng := rand.New(rand.NewSource(seed))
				for _, g := range w.groups {
					// Random initial owner, sometimes a hole, sometimes a departed member.
					switch rng.Intn(4) {
					case 0:
						w.table[g] = ""
					case 1:
						w.table[g] = "srv-gone"
					default:
						w.table[g] = w.members[rng.Intn(k)]
					}
				}
				p := NewMinimal()
				plan := p.Balance(w.input(), nil)
				if len(plan) != v {
					t.Fatalf("v=%d k=%d seed=%d: plan covers %d groups, want %d", v, k, seed, len(plan), v)
				}
				w.apply(plan)
				floor, ceil := v/k, ceilDiv(v, k)
				loads := w.loads()
				total := 0
				for _, m := range w.members {
					if loads[m] < floor || loads[m] > ceil {
						t.Fatalf("v=%d k=%d seed=%d: member %s load %d outside [%d,%d]", v, k, seed, m, loads[m], floor, ceil)
					}
					total += loads[m]
				}
				if total != v {
					t.Fatalf("v=%d k=%d seed=%d: %d groups assigned to members, want %d", v, k, seed, total, v)
				}
				settle(t, p, w)
			}
		}
	}
}

// TestMinimalMoveBoundJoin: from a balanced table, adding one member moves
// at most ⌈V/(K+1)⌉ ≤ MoveBound(V,K) groups, and every move lands on the
// joiner.
func TestMinimalMoveBoundJoin(t *testing.T) {
	for _, v := range []int{8, 10, 16, 32} {
		for k := 2; k <= 8; k++ {
			for seed := int64(0); seed < 20; seed++ {
				w := newWorld(v, k)
				p := NewMinimal()
				settle(t, p, w)

				rng := rand.New(rand.NewSource(seed))
				joiner := fmt.Sprintf("srv-new%d", seed)
				pos := rng.Intn(k + 1)
				w.members = append(w.members[:pos], append([]string{joiner}, w.members[pos:]...)...)

				before := map[string]string{}
				for g, o := range w.table {
					before[g] = o
				}
				moves := w.apply(p.Balance(w.input(), nil))
				bound := p.MoveBound(v, k)
				if moves > bound {
					t.Fatalf("v=%d k=%d seed=%d: join moved %d groups, bound %d", v, k, seed, moves, bound)
				}
				if tight := ceilDiv(v, k+1); moves > tight {
					t.Fatalf("v=%d k=%d seed=%d: join moved %d groups, tight bound %d", v, k, seed, moves, tight)
				}
				for g, o := range w.table {
					if before[g] != o && o != joiner {
						t.Fatalf("v=%d k=%d seed=%d: join moved %s from %s to %s (not the joiner)", v, k, seed, g, before[g], o)
					}
				}
				settle(t, p, w)
			}
		}
	}
}

// TestMinimalMoveBoundLeave: from a balanced table, one departure is
// repaired by Fill moving exactly the leaver's groups (≤ ⌈V/K⌉), and the
// subsequent Balance has nothing left to do — the whole reconfiguration
// stays within MoveBound(V, K-1).
func TestMinimalMoveBoundLeave(t *testing.T) {
	for _, v := range []int{8, 10, 16, 32} {
		for k := 3; k <= 8; k++ {
			for seed := int64(0); seed < 20; seed++ {
				w := newWorld(v, k)
				p := NewMinimal()
				settle(t, p, w)

				rng := rand.New(rand.NewSource(seed))
				leaver := w.members[rng.Intn(k)]
				orphans := 0
				for g, o := range w.table {
					if o == leaver {
						w.table[g] = "" // the engine rebuilds the table from claims; the leaver's groups are holes
						orphans++
					}
				}
				rest := w.members[:0]
				for _, m := range w.members {
					if m != leaver {
						rest = append(rest, m)
					}
				}
				w.members = rest

				fills := 0
				for _, d := range p.Fill(w.input(), nil) {
					if w.table[d.Group] == "" && d.Owner != "" {
						fills++
					}
					w.table[d.Group] = d.Owner
				}
				if fills != orphans {
					t.Fatalf("v=%d k=%d seed=%d: Fill assigned %d holes, want %d", v, k, seed, fills, orphans)
				}
				if bound := ceilDiv(v, k); orphans > bound {
					t.Fatalf("v=%d k=%d seed=%d: leaver owned %d groups, balanced bound %d", v, k, seed, orphans, bound)
				}
				// The fill already restored balance: no follow-up churn.
				if extra := w.apply(p.Balance(w.input(), nil)); extra != 0 {
					t.Fatalf("v=%d k=%d seed=%d: balance after leave-fill moved %d more groups", v, k, seed, extra)
				}
				if total := orphans; total > p.MoveBound(v, k-1) {
					t.Fatalf("v=%d k=%d seed=%d: leave reconfiguration moved %d, bound %d", v, k, seed, total, p.MoveBound(v, k-1))
				}
			}
		}
	}
}

// TestMinimalDeterminism: the plan is a pure function of the Input — fresh
// instances, reused instances, and re-invocations all agree.
func TestMinimalDeterminism(t *testing.T) {
	w := newWorld(16, 5)
	reused := NewMinimal()
	// Dirty the reused instance's scratch with unrelated work.
	big := newWorld(32, 7)
	reused.Balance(big.input(), nil)

	rng := rand.New(rand.NewSource(42))
	for _, g := range w.groups {
		w.table[g] = w.members[rng.Intn(len(w.members))]
	}
	ref := NewMinimal().Balance(w.input(), nil)
	for trial := 0; trial < 5; trial++ {
		got := reused.Balance(w.input(), nil)
		if len(got) != len(ref) {
			t.Fatalf("trial %d: plan length %d, want %d", trial, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d: decision %d = %v, want %v", trial, i, got[i], ref[i])
			}
		}
	}
}

// TestMinimalMaturityAdmission: a member absent from Input.Members (still
// inside the maturity window) is handed nothing; once admitted it receives
// at least the floor share.
func TestMinimalMaturityAdmission(t *testing.T) {
	w := newWorld(10, 3)
	p := NewMinimal()
	settle(t, p, w)

	newcomer := "srv-young"
	// Immature: not in Members. The plan must not mention it.
	for _, d := range p.Balance(w.input(), nil) {
		if d.Owner == newcomer {
			t.Fatalf("immature member %s was assigned %s", newcomer, d.Group)
		}
	}
	// Matured: admitted to Members, takes its floor share.
	w.members = append(w.members, newcomer)
	w.apply(p.Balance(w.input(), nil))
	if got, floor := w.loads()[newcomer], 10/4; got < floor {
		t.Fatalf("matured member owns %d groups, want at least the floor %d", got, floor)
	}
}

// TestMinimalAffinityStickiness: a member that leaves and returns (same
// name, same view position) gets its old groups back — the HRW affinity
// remembers, so a rolling restart converges to the original layout.
func TestMinimalAffinityStickiness(t *testing.T) {
	w := newWorld(12, 4)
	p := NewMinimal()
	settle(t, p, w)
	orig := map[string]string{}
	for g, o := range w.table {
		orig[g] = o
	}

	leaver := w.members[1]
	for g, o := range w.table {
		if o == leaver {
			w.table[g] = ""
		}
	}
	w.members = append(w.members[:1], w.members[2:]...)
	w.apply(p.Fill(w.input(), nil))
	w.apply(p.Balance(w.input(), nil))

	w.members = append(w.members[:1], append([]string{leaver}, w.members[1:]...)...)
	w.apply(p.Balance(w.input(), nil))
	back := 0
	for g, o := range w.table {
		if orig[g] == leaver && o == leaver {
			back++
		}
	}
	if origLoad := func() int {
		n := 0
		for _, o := range orig {
			if o == leaver {
				n++
			}
		}
		return n
	}(); back < origLoad-1 {
		t.Fatalf("returning member got back %d of its %d original groups", back, origLoad)
	}
}

// TestLeastLoadedFillKeepsIneligibleOwners mirrors the engine's historical
// post-gather rule: owners outside the eligible list keep their groups.
func TestLeastLoadedFillKeepsIneligibleOwners(t *testing.T) {
	for _, p := range []Policy{NewLeastLoaded(), NewMinimal()} {
		w := newWorld(6, 2)
		w.table["vip00"] = "srv-immature"
		w.table["vip01"] = "srv-a"
		plan := p.Fill(w.input(), nil)
		for _, d := range plan {
			if d.Owner == "" {
				t.Fatalf("%s: Fill left %s uncovered", p.Name(), d.Group)
			}
		}
		if plan[0].Owner != "srv-immature" {
			t.Fatalf("%s: Fill displaced the ineligible owner of vip00 to %s", p.Name(), plan[0].Owner)
		}
	}
}

// TestFillNoEligible: with nobody eligible, owners are kept and holes stay
// holes — no policy invents an owner.
func TestFillNoEligible(t *testing.T) {
	for _, p := range []Policy{NewLeastLoaded(), NewMinimal()} {
		w := newWorld(3, 0)
		w.table["vip01"] = "srv-immature"
		plan := p.Fill(w.input(), nil)
		if plan[0].Owner != "" || plan[2].Owner != "" {
			t.Fatalf("%s: Fill with no eligible members assigned owners: %v", p.Name(), plan)
		}
		if plan[1].Owner != "srv-immature" {
			t.Fatalf("%s: Fill displaced an owner with no eligible members: %v", p.Name(), plan)
		}
	}
}

func TestNew(t *testing.T) {
	for name, want := range map[string]string{
		"":              NameLeastLoaded,
		NameLeastLoaded: NameLeastLoaded,
		NameMinimal:     NameMinimal,
	} {
		p, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("New(%q).Name() = %s, want %s", name, p.Name(), want)
		}
	}
	if _, err := New("random"); err == nil {
		t.Fatal("New(random) did not fail")
	}
}

func TestMoveBound(t *testing.T) {
	m, ll := NewMinimal(), NewLeastLoaded()
	if got := m.MoveBound(10, 4); got != 3 {
		t.Fatalf("minimal MoveBound(10,4) = %d, want 3", got)
	}
	if got := m.MoveBound(10, 0); got != 10 {
		t.Fatalf("minimal MoveBound(10,0) = %d, want 10", got)
	}
	if got := ll.MoveBound(10, 4); got != 10 {
		t.Fatalf("least-loaded MoveBound(10,4) = %d, want 10", got)
	}
}

// TestMinimalDecisionAllocs pins the steady-state Balance and Fill paths
// at zero allocations per decision (the benchmark gates the same thing in
// CI with -benchmem).
func TestMinimalDecisionAllocs(t *testing.T) {
	w := newWorld(32, 5)
	p := NewMinimal()
	dst := p.Balance(w.input(), nil)
	w.apply(dst)
	in := w.input()
	if n := testing.AllocsPerRun(100, func() {
		dst = p.Balance(in, dst)
	}); n != 0 {
		t.Fatalf("Balance allocates %.1f times per decision, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		dst = p.Fill(in, dst)
	}); n != 0 {
		t.Fatalf("Fill allocates %.1f times per decision, want 0", n)
	}
}

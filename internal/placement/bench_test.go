package placement

import "testing"

// BenchmarkPlacementDecision measures one steady-state balance decision of
// the minimal-move policy — the planning path the representative runs on
// every balance timer tick and view change. Pinned at 0 allocs/op: the
// policy owns reusable scratch and the plan is written into the caller's
// slice, so planning never pressures the GC no matter how often the
// cluster reconfigures.
func BenchmarkPlacementDecision(b *testing.B) {
	w := newWorld(32, 5)
	p := NewMinimal()
	dst := p.Balance(w.input(), nil)
	w.apply(dst)
	in := w.input()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = p.Balance(in, dst)
	}
}
